// Scrubbing: chunk checksums catch silent bit rot at rest, and the
// background task scheduler repairs what the scrubber finds. This demo
// injects corruption directly into one site's stored chunks (using the
// internal fault injector — a real deployment's disks do this for free),
// runs one control-plane round, and shows every damaged chunk detected
// and re-protected. CI greps the scrub_corrupt_detected line to assert
// the scrub plane end to end.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"ecstore/internal/core"
	"ecstore/internal/faults"
	"ecstore/internal/model"
	"ecstore/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := obs.NewRegistry()
	cfg := core.ClusterConfig{
		NumSites:     6,
		EnableRepair: true,
		EnableScrub:  true,
		Metrics:      reg,
	}
	cfg.Client.InlineExact = true
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx := context.Background()

	payloads := make(map[model.BlockID][]byte)
	for i := 0; i < 6; i++ {
		id := model.BlockID(fmt.Sprintf("blk%d", i))
		data := bytes.Repeat([]byte{byte(i + 1)}, 400)
		payloads[id] = data
		if err := cluster.Client.Put(id, data); err != nil {
			return err
		}
	}

	// Bit rot: flip bits in every chunk one site holds, behind the
	// catalog's back. Checksums are the only way anyone finds out.
	victim := model.SiteID(2)
	damaged, err := faults.Corrupt(cluster.Services[victim].Store(), faults.NewInjector(7),
		faults.CorruptionPlan{BitFlipRate: 1})
	if err != nil {
		return err
	}
	fmt.Printf("injected bit rot into %d chunks on site %d\n", len(damaged), victim)

	// One control-plane round: the scrub sweep walks every site,
	// verifies checksums, and enqueues repair for what it finds; the
	// repair executor rewrites the damaged chunks in place.
	cluster.Tick(ctx)

	var detected int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "scrub_corrupt_detected_total" {
			detected = c.Value
		}
	}
	fmt.Printf("scrub_corrupt_detected=%d\n", detected)
	if detected != int64(len(damaged)) {
		return fmt.Errorf("scrub detected %d of %d corrupt chunks", detected, len(damaged))
	}

	// Every damaged chunk verifies clean again, and every block reads
	// back intact.
	for _, ref := range damaged {
		if _, err := cluster.Services[victim].VerifyChunk(ctx, ref); err != nil {
			return fmt.Errorf("chunk %s still damaged after repair: %w", ref, err)
		}
	}
	for id, want := range payloads {
		got, err := cluster.Client.Get(id)
		if err != nil {
			return fmt.Errorf("read %s after repair: %w", id, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("block %s corrupted end to end", id)
		}
	}
	fmt.Println("all chunks re-protected; every block reads back intact")
	return nil
}
