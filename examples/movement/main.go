// Movement: EC-Store learns which blocks are accessed together and
// migrates chunks to co-locate them, reducing the number of sites a read
// must touch (Sections III-IV of the paper).
package main

import (
	"fmt"
	"log"

	"ecstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := ecstore.Open(ecstore.Config{
		NumSites:    12,
		EnableMover: true,
		Seed:        7,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// An "album" of photos that a page always loads together.
	album := []ecstore.BlockID{"album/cover", "album/p1", "album/p2"}
	for i, id := range album {
		data := make([]byte, 4096)
		for j := range data {
			data[j] = byte(i * j)
		}
		if err := cluster.Put(id, data); err != nil {
			return err
		}
	}

	distinct := func() int {
		sites := map[ecstore.SiteID]bool{}
		for _, id := range album {
			locs, err := cluster.ChunkLocations(id)
			if err != nil {
				return -1
			}
			for _, s := range locs {
				sites[s] = true
			}
		}
		return len(sites)
	}
	fmt.Printf("initial random placement spans %d distinct sites\n", distinct())

	// Drive the co-access pattern; every few requests, run one
	// control-plane round (stats + one movement attempt).
	moves := int64(0)
	for i := 0; i < 200; i++ {
		if _, _, err := cluster.GetMulti(album); err != nil {
			return err
		}
		if i%5 == 4 {
			cluster.Tick()
			if m := cluster.Stats().ChunksMoved; m != moves {
				moves = m
				for _, id := range album {
					locs, err := cluster.ChunkLocations(id)
					if err != nil {
						return err
					}
					fmt.Printf("  after move %d: %-12s on %v\n", moves, id, locs)
				}
			}
		}
	}

	fmt.Printf("\nmover executed %d chunk movements\n", moves)
	fmt.Printf("album now spans %d distinct sites\n", distinct())

	// Data is intact throughout.
	for _, id := range album {
		if _, err := cluster.Get(id); err != nil {
			return fmt.Errorf("read %s after movement: %w", id, err)
		}
	}
	fmt.Println("all blocks readable after movement")
	return nil
}
