// Quickstart: store, read and delete blocks on an in-process EC-Store
// cluster, and inspect the response-time breakdown the system tracks for
// every multi-block read.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ecstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Eight storage sites, RS(2,2) erasure coding, cost-model reads:
	// every block tolerates two site failures at 2x storage (3-way
	// replication would need 3x for the same guarantee).
	cluster, err := ecstore.Open(ecstore.Config{NumSites: 8})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Store a few "photos".
	photos := map[ecstore.BlockID][]byte{
		"photo-001": bytes.Repeat([]byte("sunset"), 2000),
		"photo-002": bytes.Repeat([]byte("beach!"), 3000),
		"photo-003": bytes.Repeat([]byte("forest"), 1000),
	}
	for id, data := range photos {
		if err := cluster.Put(id, data); err != nil {
			return fmt.Errorf("put %s: %w", id, err)
		}
		locs, err := cluster.ChunkLocations(id)
		if err != nil {
			return err
		}
		fmt.Printf("stored %s: %5d bytes as 4 chunks on sites %v\n", id, len(data), locs)
	}

	// A web page retrieves all of its images in one multi-block read;
	// EC-Store plans the whole request at once.
	ids := []ecstore.BlockID{"photo-001", "photo-002", "photo-003"}
	blocks, bd, err := cluster.GetMulti(ids)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if !bytes.Equal(blocks[id], photos[id]) {
			return fmt.Errorf("%s corrupted", id)
		}
	}
	fmt.Printf("\nread %d blocks in one request\n", len(blocks))
	fmt.Printf("breakdown: metadata=%.3fms planning=%.3fms retrieval=%.3fms decode=%.3fms\n",
		bd.Metadata*1000, bd.Planning*1000, bd.Retrieve*1000, bd.Decode*1000)

	st := cluster.Stats()
	fmt.Printf("\nstorage: %d bytes stored (%.1fx overhead)\n", st.StoredBytes, st.StorageOverhead)

	if err := cluster.Delete("photo-002"); err != nil {
		return err
	}
	if _, err := cluster.Get("photo-002"); err == nil {
		return fmt.Errorf("photo-002 still readable after delete")
	}
	fmt.Println("photo-002 deleted")
	return nil
}
