// Benchmark: a miniature version of the paper's evaluation, comparing the
// six configurations (R, EC, EC+LB, EC+C, EC+C+M, EC+C+M+LB) on the
// deterministic simulator under the YCSB-E scan workload.
//
// For the full reproduction of every figure and table, run:
//
//	go run ./cmd/ecbench -exp all
package main

import (
	"fmt"
	"log"

	"ecstore/internal/bench"
	"ecstore/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc := bench.QuickScale(42)
	fmt.Printf("YCSB-E, 100 KB blocks, %d blocks, %gs measured (quick scale)\n\n",
		sc.Blocks, sc.Measure)

	var results []*sim.Result
	for _, opt := range bench.Configs() {
		res, err := bench.RunYCSB(opt, sc, bench.BlockSize100KB)
		if err != nil {
			return err
		}
		results = append(results, res)
		fmt.Printf("%-11s mean=%6.2fms  p99=%6.2fms  λ=%5.1f  visits/req=%4.1f  storage=%.1fx\n",
			res.Config,
			res.Mean.Total()*1000,
			res.Metrics.Percentile(99)*1000,
			res.Lambda,
			res.VisitsPerRequest,
			res.StorageOverhead)
	}

	fmt.Println("\nresponse-time breakdown (the paper's Figure 4b):")
	fmt.Print(sim.FormatBreakdownTable(results))
	return nil
}
