// Fault tolerance: RS(2,2) blocks survive any two site failures; the
// repair service reconstructs lost chunks on healthy sites so full
// redundancy returns.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ecstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := ecstore.Open(ecstore.Config{
		NumSites:     8,
		EnableRepair: true,
		RepairGrace:  time.Millisecond, // demo: don't wait 15 minutes
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	payload := bytes.Repeat([]byte("precious data "), 1000)
	if err := cluster.Put("vault", payload); err != nil {
		return err
	}
	locs, err := cluster.ChunkLocations("vault")
	if err != nil {
		return err
	}
	fmt.Printf("vault stored on sites %v (any 2 of 4 chunks reconstruct it)\n", locs)

	// Two sites holding chunks die.
	fmt.Printf("failing sites %d and %d...\n", locs[0], locs[1])
	if err := cluster.FailSite(locs[0]); err != nil {
		return err
	}
	if err := cluster.FailSite(locs[1]); err != nil {
		return err
	}

	// Degraded read: the planner routes around the failures and the
	// decoder reconstructs from the surviving chunks (including parity).
	got, err := cluster.Get("vault")
	if err != nil {
		return fmt.Errorf("degraded read: %w", err)
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("degraded read corrupted")
	}
	fmt.Println("degraded read OK: data reconstructed from surviving chunks")

	// Give the repair service a few rounds: it probes sites, waits out
	// the grace period, and rebuilds the lost chunks elsewhere.
	for i := 0; i < 5; i++ {
		cluster.Tick()
		time.Sleep(2 * time.Millisecond) // let the demo grace period expire
	}
	repaired := cluster.Stats().ChunksRepaired
	after, err := cluster.ChunkLocations("vault")
	if err != nil {
		return err
	}
	fmt.Printf("repair service reconstructed %d chunks; vault now on sites %v\n", repaired, after)

	// Full redundancy is back: two MORE failures are survivable.
	if err := cluster.FailSite(after[2]); err != nil {
		return err
	}
	got, err = cluster.Get("vault")
	if err != nil {
		return fmt.Errorf("post-repair read: %w", err)
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("post-repair read corrupted")
	}
	fmt.Println("post-repair read OK: redundancy restored")
	return nil
}
