// Package-level benchmarks regenerating the paper's evaluation artifacts
// (one benchmark per table and figure; see DESIGN.md's experiment index).
// Each iteration runs the full experiment at quick scale and reports the
// headline metric as custom benchmark units. cmd/ecbench runs the same
// experiments at full scale with complete rendered output.
package ecstore

import (
	"strings"
	"testing"

	"ecstore/internal/bench"
)

const benchSeed = 42

func reportConfigMetric(b *testing.B, results map[string]float64, unit string) {
	b.Helper()
	for cfg, v := range results {
		b.ReportMetric(v, cfg+"_"+unit)
	}
}

// BenchmarkFig1Breakdown regenerates Figure 1 (R vs EC breakdown).
func BenchmarkFig1Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Fig1(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Mean.Retrieve*1000, r.Config+"_retrieve_ms")
			}
		}
	}
}

// BenchmarkFig4aTimeline regenerates Figure 4a (latency over time).
func BenchmarkFig4aTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Fig4a(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				tl := r.Metrics.Timeline()
				if len(tl) > 0 {
					b.ReportMetric(tl[len(tl)-1]*1000, r.Config+"_final_ms")
				}
			}
		}
	}
}

// BenchmarkFig4bYCSB100KB regenerates Figure 4b (YCSB 100 KB, 6 configs).
func BenchmarkFig4bYCSB100KB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Fig4b(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Mean.Total()*1000, r.Config+"_ms")
			}
		}
	}
}

// BenchmarkFig4cTailCDF regenerates Figure 4c (tail latency CDF).
func BenchmarkFig4cTailCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Fig4c(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Metrics.Percentile(99)*1000, r.Config+"_p99_ms")
			}
		}
	}
}

// BenchmarkFig4dSiteIO regenerates Figure 4d (per-site read I/O).
func BenchmarkFig4dSiteIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Fig4d(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				var total float64
				for _, rate := range r.SiteReadRate {
					total += rate
				}
				b.ReportMetric(total/1e6, r.Config+"_MBps")
			}
		}
	}
}

// BenchmarkFig4eYCSB1MB regenerates Figure 4e (YCSB 1 MB, 6 configs).
func BenchmarkFig4eYCSB1MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Fig4e(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Mean.Total()*1000, r.Config+"_ms")
			}
		}
	}
}

// BenchmarkFig4fFailures regenerates Figure 4f (1-2 failed sites).
func BenchmarkFig4fFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.Fig4f(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			flat := make(map[string]float64, len(rows))
			for cfg, row := range rows {
				flat[cfg] = row[2] * 1000 // 2-failure latency
			}
			reportConfigMetric(b, flat, "2fail_ms")
		}
	}
}

// BenchmarkFig4gWikipedia regenerates Figure 4g (Wikipedia breakdown).
func BenchmarkFig4gWikipedia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Fig4g(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Mean.Total()*1000, r.Config+"_ms")
			}
		}
	}
}

// BenchmarkFig4hWikiCDF regenerates Figure 4h (Wikipedia tail CDF).
func BenchmarkFig4hWikiCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Fig4h(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Metrics.Percentile(99)*1000, r.Config+"_p99_ms")
			}
		}
	}
}

// BenchmarkTable2Imbalance regenerates Table II (λ imbalance factors).
func BenchmarkTable2Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, lambdas, err := bench.Table2(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportConfigMetric(b, lambdas, "lambda")
		}
	}
}

// BenchmarkTable3Resources regenerates Table III (service resource usage).
func BenchmarkTable3Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := bench.Table3(bench.QuickScale(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				name := strings.ReplaceAll(r.Service, " ", "_")
				b.ReportMetric(r.MemoryMB, name+"_MB")
			}
		}
	}
}
