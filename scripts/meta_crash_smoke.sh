#!/bin/sh
# Metadata crash smoke: start a real metadata server in WAL mode plus
# four storage sites, put blocks through the full client path, kill -9
# the metadata server mid-load, restart it on the same WAL directory and
# assert that (a) every acknowledged put survives the crash byte-for-byte,
# (b) the catalog block count matches the acknowledged set, and (c) a
# delete + re-register of a pre-crash key lands on a strictly higher
# version — the retired-watermark durability property that makes
# (BlockID, version) cache keys safe across restarts.
set -eux
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WAL=$(mktemp -d)
DATA=$(mktemp -d)
PIDS=""
cleanup() {
  # shellcheck disable=SC2086
  [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
  pkill -f "$BIN/" 2>/dev/null || true
  rm -rf "$BIN" "$WAL" "$DATA"
}
trap cleanup EXIT INT TERM

go build -o "$BIN/" ./cmd/ecstore-meta ./cmd/ecstore-site ./cmd/ecstore-cli

META=127.0.0.1:7400
SITES=127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403,127.0.0.1:7404
CLI="$BIN/ecstore-cli -meta $META -sites $SITES"

for i in 1 2 3 4; do
  "$BIN/ecstore-site" -addr 127.0.0.1:740$i -site $i & PIDS="$PIDS $!"
done

# -wal-fsync-interval defaults to 0: every catalog mutation is fsynced
# before the RPC acks, so an acknowledged put is durable by contract.
"$BIN/ecstore-meta" -addr $META -sites 4 -wal-dir "$WAL" & METAPID=$!
PIDS="$PIDS $METAPID"

up=0
for i in $(seq 1 60); do
  if $CLI stat >/dev/null 2>&1; then up=1; break; fi
  sleep 0.5
done
[ "$up" -eq 1 ] || { echo "metadata server never came up" >&2; exit 1; }

# Ten durable keys, then an open-ended background load that the crash
# interrupts. done.log records only acknowledged puts.
for i in $(seq 1 10); do
  head -c 32768 /dev/urandom > "$DATA/k$i"
  $CLI put "k$i" "$DATA/k$i"
  echo "k$i" >> "$DATA/done.log"
done
(
  for i in $(seq 11 2000); do
    head -c 8192 /dev/urandom > "$DATA/k$i"
    $CLI put "k$i" "$DATA/k$i" >/dev/null 2>&1 || exit 0
    echo "k$i" >> "$DATA/done.log"
  done
) & LOADPID=$!

sleep 2
kill -9 "$METAPID"
wait "$LOADPID" || true

# Restart on the same WAL directory: boot replays the per-partition
# snapshot + WAL tail.
"$BIN/ecstore-meta" -addr $META -sites 4 -wal-dir "$WAL" & METAPID=$!
PIDS="$PIDS $METAPID"
up=0
for i in $(seq 1 60); do
  if $CLI stat >/dev/null 2>&1; then up=1; break; fi
  sleep 0.5
done
[ "$up" -eq 1 ] || { echo "metadata server did not recover" >&2; exit 1; }

# (a) Every acknowledged put survives byte-for-byte.
while read -r k; do
  $CLI get "$k" > "$DATA/out" 2>/dev/null
  cmp "$DATA/out" "$DATA/$k"
done < "$DATA/done.log"

# (b) The recovered catalog holds exactly the acknowledged blocks. An
# unacknowledged in-flight register may legitimately have committed, so
# the count may exceed done.log by at most the one racing put.
acked=$(wc -l < "$DATA/done.log")
blocks=$($CLI stats | sed -n 's/^blocks=\([0-9]*\).*/\1/p')
[ "$blocks" -ge "$acked" ]
[ "$blocks" -le $((acked + 1)) ]

# (c) Delete + re-register across the restart bumps the version past the
# pre-crash incarnation (retired watermark recovered from the WAL).
v0=$($CLI stat k1 | sed -n 's/.*version=\([0-9]*\).*/\1/p')
$CLI del k1
head -c 16384 /dev/urandom > "$DATA/k1"
$CLI put k1 "$DATA/k1"
v1=$($CLI stat k1 | sed -n 's/.*version=\([0-9]*\).*/\1/p')
[ "$v1" -gt "$v0" ]
$CLI get k1 > "$DATA/out" 2>/dev/null
cmp "$DATA/out" "$DATA/k1"

echo "meta crash smoke ok: $acked acked puts recovered, version $v0 -> $v1 across restart"
