#!/bin/sh
# Pre-commit gate: vet and build everything, run the project lint suite
# (internal/lint: context, locking, goroutine-leak, determinism, error
# wrapping, metric naming, lock-order and pool-balance rules), run the
# quick test suite under the
# race detector, then smoke-run the fault-tolerance example end to end
# (degraded reads, repair, recovery), the scrubbing example (injected
# bit rot -> nonzero scrub_corrupt_detected), and a cache on/off
# comparison on a zipfian workload, asserting the decoded-block cache
# actually serves hits, plus the small-object packing ablation, asserting
# a nonzero packed-block count, then the gateway smoke (live open-loop
# sweep through the access daemon: nonzero admissions and at least one
# shed under overload) and the simulated gateway SLO sweep (BENCH_9.json
# must contain overload rows), the metadata crash smoke (kill -9 the
# WAL-backed metadata server mid-load, restart, verify every acked put
# and the re-register version bump), the metadata catalog sweep
# (BENCH_10.json must carry a recovery-replay row with a nonzero
# partition count), and fuzz smokes of the range->stripe window math,
# the lint ignore directive and the WAL record codec.
# The full suite (go test ./...) additionally runs the paper-scale
# simulator experiments and takes several minutes.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go run ./cmd/ecstore-lint ./...
go test -race -short ./...
go test -race ./internal/cache ./internal/core
go run ./examples/faulttolerance
scrub=$(go run ./examples/scrubbing)
echo "$scrub"
echo "$scrub" | grep -Eq 'scrub_corrupt_detected=[1-9]'
out=$(go run ./cmd/ecbench -cache-bytes $((32 << 20)) -scale quick)
echo "$out"
echo "$out" | grep -Eq 'hits=[1-9]'
pack=$(go run ./cmd/ecbench -exp ab-pack -scale quick)
echo "$pack"
echo "$pack" | grep -Eq 'packed=[1-9]'
sh scripts/gateway_smoke.sh
gw=$(go run ./cmd/ecbench -mode ab-gateway -scale quick)
echo "$gw"
echo "$gw" | grep -Eq 'max sustainable: [1-9]'
grep -q '"slo_met": false' BENCH_9.json
sh scripts/meta_crash_smoke.sh
mt=$(go run ./cmd/ecbench -exp ab-meta -scale quick)
echo "$mt"
echo "$mt" | grep -Eq 'recovery: [1-9]'
grep -q '"kind": "recovery-replay"' BENCH_10.json
grep -Eq '"partitions": [1-9]' BENCH_10.json
go test -run FuzzLayoutWindow -fuzz FuzzLayoutWindow -fuzztime 10s ./internal/erasure
go test -run FuzzIgnoreDirective -fuzz FuzzIgnoreDirective -fuzztime 10s ./internal/lint
go test -run FuzzWALRecord -fuzz FuzzWALRecord -fuzztime 10s ./internal/metadata
