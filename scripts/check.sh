#!/bin/sh
# Pre-commit gate: vet everything, run the quick test suite under the
# race detector, then smoke-run the fault-tolerance example end to end
# (degraded reads, repair, recovery). The full suite (go test ./...)
# additionally runs the paper-scale simulator experiments and takes
# several minutes.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race -short ./...
go run ./examples/faulttolerance
