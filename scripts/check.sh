#!/bin/sh
# Pre-commit gate: vet everything, then run the quick test suite under the
# race detector. The full suite (go test ./...) additionally runs the
# paper-scale simulator experiments and takes several minutes.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go test -race -short ./...
