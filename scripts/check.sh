#!/bin/sh
# Pre-commit gate: vet and build everything, run the project lint suite
# (internal/lint: context, locking, goroutine-leak, determinism, error
# wrapping and metric naming rules), run the quick test suite under the
# race detector, then smoke-run the fault-tolerance example end to end
# (degraded reads, repair, recovery). The full suite (go test ./...)
# additionally runs the paper-scale simulator experiments and takes
# several minutes.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go run ./cmd/ecstore-lint ./...
go test -race -short ./...
go run ./examples/faulttolerance
