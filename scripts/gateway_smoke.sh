#!/bin/sh
# Gateway smoke: start a real metadata server, four storage sites and
# the multi-tenant access gateway, drive a short open-loop HTTP sweep
# through it (ecbench -gateway), then assert from the daemon's own
# /metrics that (a) requests were admitted and proxied end to end and
# (b) the deliberately tiny admission queue shed at least one request
# under the overload point — the bounded queue turning overload into
# fast 429s is the property this job guards.
set -eux
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
PIDS=""
cleanup() {
  # shellcheck disable=SC2086
  [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
  # The gateway runs under a retry subshell; killing the subshell
  # orphans the daemon, so sweep the unique binary dir by name too.
  pkill -f "$BIN/" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

go build -o "$BIN/" ./cmd/ecstore-meta ./cmd/ecstore-site \
    ./cmd/ecstore-gateway ./cmd/ecbench

META=127.0.0.1:7300
SITES=127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7303,127.0.0.1:7304
HTTP=127.0.0.1:7310
METRICS=127.0.0.1:7311

"$BIN/ecstore-meta" -addr $META -sites 4 & PIDS="$PIDS $!"
for i in 1 2 3 4; do
  "$BIN/ecstore-site" -addr 127.0.0.1:730$i -site $i & PIDS="$PIDS $!"
done

# The gateway dials meta and every site at startup and exits if any
# dial fails, so retry until the cluster's listeners are up. Tiny
# concurrency and queue so the overload point in the sweep below
# reliably overruns admission; -default-rate -1 admits any tenant name
# with no token-bucket limit, isolating queue shed.
(
  for try in $(seq 1 30); do
    "$BIN/ecstore-gateway" -http $HTTP -meta $META -sites $SITES \
        -concurrency 2 -queue-depth 2 -default-rate -1 \
        -metrics-addr $METRICS && break
    sleep 0.5
  done
) & PIDS="$PIDS $!"

# Wait for the gateway's HTTP front to come up.
up=0
for i in $(seq 1 60); do
  if curl -sf "http://$HTTP/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.5
done
if [ "$up" -ne 1 ]; then echo "gateway never became healthy" >&2; exit 1; fi

# Open-loop sweep: 50 req/s is comfortably sustainable, 2000 req/s
# overruns two slots + two queue entries and must shed.
"$BIN/ecbench" -gateway "http://$HTTP" -gw-tenant smoke \
    -gw-rates 50,2000 -gw-duration 2s

metrics=$(curl -sf "http://$METRICS/metrics")
echo "$metrics" | grep gateway_ || true
# Nonzero admissions: the proxy path worked end to end.
echo "$metrics" | grep -Eq 'gateway_admitted_total [1-9]'
# At least one shed under overload: the bounded queue did its job.
echo "$metrics" | grep -Eq 'gateway_shed_total\{[^}]*\} [1-9]'
echo "gateway smoke ok"
