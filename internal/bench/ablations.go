package bench

import (
	"fmt"
	"strings"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/gf256"
	"ecstore/internal/model"
	"ecstore/internal/placement"
	"ecstore/internal/sim"
	"ecstore/internal/workload"
)

// AblationDelta sweeps the late-binding surplus δ ∈ [0, r] for the cost
// configuration (Section IV-B1 allows 0 < δ ≤ r; δ=0 disables LB).
func AblationDelta(sc Scale) (*Report, map[int]float64, error) {
	out := make(map[int]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "delta", "mean", "p99")
	for delta := 0; delta <= 2; delta++ {
		opt := sim.Options{
			Scheme:   model.SchemeErasure,
			Strategy: placement.StrategyCost,
			Mover:    true,
			Delta:    delta,
		}
		res, err := RunYCSB(opt, sc, BlockSize100KB)
		if err != nil {
			return nil, nil, err
		}
		out[delta] = res.Mean.Total()
		fmt.Fprintf(&b, "%-8d %10.2fms %10.2fms\n",
			delta, res.Mean.Total()*1000, res.Metrics.Percentile(99)*1000)
	}
	rep := &Report{ID: "ab-delta", Title: "Late-binding δ sweep (EC+C+M, YCSB-E 100 KB)", Body: b.String(), Data: out}
	return rep, out, nil
}

// AblationK sweeps the coding parameter k with r=2 (Section V-B3: larger
// k reduces storage overhead but must access more sites in parallel).
func AblationK(sc Scale) (*Report, map[int]float64, error) {
	out := make(map[int]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %12s %12s\n", "k", "overhead", "mean", "p99")
	for _, k := range []int{2, 3, 4, 6} {
		opt := sim.Options{
			Scheme:   model.SchemeErasure,
			K:        k,
			R:        2,
			Strategy: placement.StrategyCost,
		}
		res, err := RunYCSB(opt, sc, BlockSize100KB)
		if err != nil {
			return nil, nil, err
		}
		out[k] = res.Mean.Total()
		fmt.Fprintf(&b, "%-6d %9.2fx %10.2fms %10.2fms\n",
			k, res.StorageOverhead, res.Mean.Total()*1000, res.Metrics.Percentile(99)*1000)
	}
	rep := &Report{ID: "ab-k", Title: "RS(k, 2) parameter sweep (EC+C, YCSB-E 100 KB)", Body: b.String(), Data: out}
	return rep, out, nil
}

// AblationW2 sweeps the movement weight w2 around the paper's chosen value
// (Section V-B3: initial w2 = avg(o_j), tuned to 0.6 of it).
func AblationW2(sc Scale) (*Report, map[float64]float64, error) {
	out := make(map[float64]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %8s\n", "w2/avgO", "mean", "λ")
	for _, w2 := range []float64{0, 0.3, 0.6, 1.0, 2.0} {
		p := sim.DefaultParams(sc.Seed)
		p.MoverW2 = w2
		cl, err := sim.New(p, sim.Options{
			Scheme:   model.SchemeErasure,
			Strategy: placement.StrategyCost,
			Mover:    true,
		})
		if err != nil {
			return nil, nil, err
		}
		if _, err := cl.Populate(sc.Blocks, func(int) int64 { return BlockSize100KB }); err != nil {
			return nil, nil, err
		}
		res := cl.Run(newYCSB(sc), sc.Warmup, sc.Adapt, sc.Measure)
		out[w2] = res.Mean.Total()
		fmt.Fprintf(&b, "%-8.1f %10.2fms %8.1f\n", w2, res.Mean.Total()*1000, res.Lambda)
	}
	rep := &Report{ID: "ab-w2", Title: "Movement weight w2 sweep (EC+C+M, YCSB-E 100 KB)", Body: b.String(), Data: floatKeys(out)}
	return rep, out, nil
}

// AblationMoverRate sweeps the mover throttle (Section VI-C5: movement is
// throttled so data transfer stays negligible).
func AblationMoverRate(sc Scale) (*Report, map[float64]float64, error) {
	out := make(map[float64]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %8s %8s\n", "interval(s)", "mean", "moves", "λ")
	for _, interval := range []float64{0.05, 0.1, 0.5, 2.0} {
		p := sim.DefaultParams(sc.Seed)
		p.MoverInterval = interval
		cl, err := sim.New(p, sim.Options{
			Scheme:   model.SchemeErasure,
			Strategy: placement.StrategyCost,
			Mover:    true,
		})
		if err != nil {
			return nil, nil, err
		}
		if _, err := cl.Populate(sc.Blocks, func(int) int64 { return BlockSize100KB }); err != nil {
			return nil, nil, err
		}
		res := cl.Run(newYCSB(sc), sc.Warmup, sc.Adapt, sc.Measure)
		out[interval] = res.Mean.Total()
		fmt.Fprintf(&b, "%-12.2f %10.2fms %8d %8.1f\n",
			interval, res.Mean.Total()*1000, res.Moves, res.Lambda)
	}
	rep := &Report{ID: "ab-mrate", Title: "Mover throttle sweep (EC+C+M, YCSB-E 100 KB)", Body: b.String(), Data: floatKeys(out)}
	return rep, out, nil
}

// AblationScrub sweeps the background checksum scrubber's per-site read
// rate (the task scheduler's byte-throttle knob): scrub reads share the
// disk queues with client traffic, so an unthrottled scrub trades read
// latency for faster corruption detection. Rate 0 is the no-scrub
// baseline.
func AblationScrub(sc Scale) (*Report, map[float64]float64, error) {
	out := make(map[float64]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %10s\n", "rate(MB/s)", "mean", "p99", "scrub GB")
	for _, rate := range []float64{0, 10e6, 50e6, 150e6} {
		opt := sim.Options{
			Scheme:           model.SchemeErasure,
			Strategy:         placement.StrategyCost,
			Mover:            true,
			ScrubBytesPerSec: rate,
		}
		res, err := RunYCSB(opt, sc, BlockSize100KB)
		if err != nil {
			return nil, nil, err
		}
		out[rate] = res.Mean.Total()
		fmt.Fprintf(&b, "%-12.0f %10.2fms %10.2fms %10.2f\n",
			rate/1e6, res.Mean.Total()*1000, res.Metrics.Percentile(99)*1000,
			res.ScrubBytes/1e9)
	}
	rep := &Report{
		ID:    "ab-scrub",
		Title: "Scrub throttle sweep (EC+C+M, YCSB-E 100 KB)",
		Body:  b.String(),
		Data:  floatKeys(out),
	}
	return rep, out, nil
}

// AblationPlanQuality compares greedy-only planning against ILP-upgraded
// planning, isolating the exact solver's contribution.
func AblationPlanQuality(sc Scale) (*Report, map[string]float64, error) {
	out := make(map[string]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %8s\n", "planner", "mean", "visits")
	for _, mode := range []struct {
		name   string
		solves int
	}{
		{"greedy-only", 0},
		{"greedy+ilp", sim.DefaultParams(sc.Seed).ExactSolvesPerInterval},
	} {
		p := sim.DefaultParams(sc.Seed)
		p.ExactSolvesPerInterval = mode.solves
		cl, err := sim.New(p, sim.Options{
			Scheme:   model.SchemeErasure,
			Strategy: placement.StrategyCost,
		})
		if err != nil {
			return nil, nil, err
		}
		if _, err := cl.Populate(sc.Blocks, func(int) int64 { return BlockSize100KB }); err != nil {
			return nil, nil, err
		}
		res := cl.Run(newYCSB(sc), sc.Warmup, sc.Adapt, sc.Measure)
		out[mode.name] = res.Mean.Total()
		fmt.Fprintf(&b, "%-14s %10.2fms %8.1f\n", mode.name, res.Mean.Total()*1000, res.VisitsPerRequest)
	}
	rep := &Report{ID: "ab-plan", Title: "Greedy vs ILP-upgraded planning (EC+C, YCSB-E 100 KB)", Body: b.String(), Data: out}
	return rep, out, nil
}

// AblationBlockSize sweeps block size (Section VI-C3: the paper also ran
// 10 KB and observed larger relative gains at larger blocks) comparing
// baseline EC against EC+C+M.
func AblationBlockSize(sc Scale) (*Report, map[string]float64, error) {
	out := make(map[string]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %10s\n", "size", "EC", "EC+C+M", "gain")
	for _, size := range []struct {
		name  string
		bytes int64
	}{
		{"10KB", BlockSize10KB},
		{"100KB", BlockSize100KB},
		{"1MB", BlockSize1MB},
	} {
		ec, err := RunYCSB(sim.Options{Scheme: model.SchemeErasure, Strategy: placement.StrategyRandom}, sc, size.bytes)
		if err != nil {
			return nil, nil, err
		}
		ecm, err := RunYCSB(sim.Options{Scheme: model.SchemeErasure, Strategy: placement.StrategyCost, Mover: true}, sc, size.bytes)
		if err != nil {
			return nil, nil, err
		}
		gain := 1 - ecm.Mean.Total()/ec.Mean.Total()
		out[size.name+"/EC"] = ec.Mean.Total()
		out[size.name+"/EC+C+M"] = ecm.Mean.Total()
		fmt.Fprintf(&b, "%-10s %10.2fms %10.2fms %9.1f%%\n",
			size.name, ec.Mean.Total()*1000, ecm.Mean.Total()*1000, 100*gain)
	}
	rep := &Report{ID: "ab-size", Title: "Block-size sweep: EC vs EC+C+M (YCSB-E)", Body: b.String(), Data: out}
	return rep, out, nil
}

// AblationCache sweeps the decoded-block cache budget on the paper's
// best configuration (EC+C+M+LB) under the skewed YCSB-E workload. The
// 0-byte row is the cache-off baseline from the same seed, so the mean
// and p99 columns read directly as the cache tier's contribution;
// hot-cover is the fraction of the statistics service's 64 hottest
// blocks resident in the cache at the end of the run (how well
// stats-driven admission tracks the hot set).
func AblationCache(sc Scale) (*Report, map[int64]float64, error) {
	out := make(map[int64]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %8s %10s\n", "budget", "mean", "p99", "hit", "hot-cover")
	for _, budget := range []int64{0, 8 << 20, 32 << 20, 128 << 20} {
		opt := sim.Options{
			Scheme:     model.SchemeErasure,
			Strategy:   placement.StrategyCost,
			Mover:      true,
			Delta:      1,
			CacheBytes: budget,
		}
		cl, err := sim.New(sim.DefaultParams(sc.Seed), opt)
		if err != nil {
			return nil, nil, err
		}
		if _, err := cl.Populate(sc.Blocks, func(int) int64 { return BlockSize100KB }); err != nil {
			return nil, nil, err
		}
		wl := workload.NewYCSBE(sc.Blocks, 20, 1.0)
		res := cl.Run(wl, sc.Warmup, sc.Adapt, sc.Measure)
		out[budget] = res.Mean.Total()
		label := "off"
		if budget > 0 {
			label = fmt.Sprintf("%dMB", budget>>20)
		}
		fmt.Fprintf(&b, "%-10s %10.2fms %10.2fms %7.1f%% %9.1f%%\n",
			label, res.Mean.Total()*1000, res.Metrics.Percentile(99)*1000,
			100*res.CacheHitRatio(), 100*cl.CacheHotCoverage(64))
	}
	rep := &Report{ID: "ab-cache", Title: "Decoded-block cache budget sweep (EC+C+M+LB, YCSB-E 100 KB)", Body: b.String(), Data: out}
	return rep, out, nil
}

// AblationCodec measures the real erasure codec's throughput on 1 MB
// blocks with the platform wide kernel on versus the scalar fallback —
// unlike the other ablations it exercises the actual data path, not the
// simulator's cost model. Results are wall-clock dependent; the table is
// for relative comparison (the speedup column), not regression pinning.
// The returned map keys are "<op>-kernel" and "<op>-scalar" in MB/s.
func AblationCodec(sc Scale) (*Report, map[string]float64, error) {
	// Scale the measured work with the population knob so -scale quick
	// stays quick; each op moves iters MB per mode.
	iters := sc.Blocks / 200
	if iters < 5 {
		iters = 5
	}
	if iters > 50 {
		iters = 50
	}
	const blockLen = 1 << 20
	data := make([]byte, blockLen)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}

	ops := []struct {
		key, label string
		k, r       int
		mode       string
	}{
		{"encode-rs22", "RS(2,2) encode", 2, 2, "encode"},
		{"decode-healthy-rs22", "RS(2,2) decode healthy", 2, 2, "healthy"},
		{"decode-degraded-rs22", "RS(2,2) decode degraded", 2, 2, "degraded"},
		{"encode-rs63", "RS(6,3) encode", 6, 3, "encode"},
	}
	out := make(map[string]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %8s\n", "operation (1MB block)", "kernel", "scalar", "speedup")
	for _, o := range ops {
		var mbps [2]float64
		for i, accel := range []bool{true, false} {
			prev := gf256.SetAccel(accel)
			v, err := codecThroughput(o.k, o.r, data, o.mode, iters)
			gf256.SetAccel(prev)
			if err != nil {
				return nil, nil, err
			}
			mbps[i] = v
		}
		out[o.key+"-kernel"] = mbps[0]
		out[o.key+"-scalar"] = mbps[1]
		fmt.Fprintf(&b, "%-24s %8.0f MB/s %8.0f MB/s %7.1fx\n", o.label, mbps[0], mbps[1], mbps[0]/mbps[1])
	}
	fmt.Fprintf(&b, "wide kernel: %s\n", gf256.Kernel())
	rep := &Report{ID: "ab-codec", Title: "Erasure codec throughput, wide kernel vs scalar (real codec, not simulated)", Body: b.String(), Data: out}
	return rep, out, nil
}

// codecThroughput times iters runs of one codec operation over data and
// returns MB/s of block bytes processed.
func codecThroughput(k, r int, data []byte, mode string, iters int) (float64, error) {
	codec, err := erasure.NewCodec(k, r)
	if err != nil {
		return 0, err
	}
	dst := make([]byte, len(data))
	var available map[int][]byte
	if mode != "encode" {
		chunks, err := codec.Encode(data)
		if err != nil {
			return 0, err
		}
		available = make(map[int][]byte, k+r)
		for i, ch := range chunks {
			available[i] = ch
		}
		if mode == "degraded" {
			// Losing data chunk 0 forces matrix inversion and k kernel
			// passes for the missing prefix.
			delete(available, 0)
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		switch mode {
		case "encode":
			st, err := codec.EncodePooled(data)
			if err != nil {
				return 0, err
			}
			st.Release()
		default:
			if err := codec.DecodeInto(dst, available); err != nil {
				return 0, err
			}
		}
	}
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	return float64(iters) * float64(len(data)) / (1 << 20) / secs, nil
}

// CacheComparison runs the full EC-Store configuration (EC+C+M+LB) twice
// in a single invocation — cache off, then cache on with the given byte
// budget — over a skewed (zipfian) YCSB-E workload, so the two rows are
// directly comparable. It returns the rendered report plus the two mean
// latencies keyed by budget (0 = off). The body prints raw hit counts so
// scripted smoke tests can assert the cache actually served reads.
func CacheComparison(sc Scale, budget int64) (*Report, map[int64]float64, error) {
	if budget <= 0 {
		return nil, nil, fmt.Errorf("cache comparison needs a positive budget, got %d", budget)
	}
	out := make(map[int64]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %10s %8s\n", "cache", "mean", "p99", "hits", "misses", "ratio")
	for _, bytes := range []int64{0, budget} {
		opt := sim.Options{
			Scheme:     model.SchemeErasure,
			Strategy:   placement.StrategyCost,
			Mover:      true,
			Delta:      1,
			CacheBytes: bytes,
		}
		cl, err := sim.New(sim.DefaultParams(sc.Seed), opt)
		if err != nil {
			return nil, nil, err
		}
		if _, err := cl.Populate(sc.Blocks, func(int) int64 { return BlockSize100KB }); err != nil {
			return nil, nil, err
		}
		wl := workload.NewYCSBE(sc.Blocks, 20, 1.0)
		res := cl.Run(wl, sc.Warmup, sc.Adapt, sc.Measure)
		out[bytes] = res.Mean.Total()
		label := "off"
		if bytes > 0 {
			label = fmt.Sprintf("%dMB", bytes>>20)
		}
		fmt.Fprintf(&b, "%-10s %10.2fms %10.2fms hits=%-6d misses=%-6d %6.1f%%\n",
			label, res.Mean.Total()*1000, res.Metrics.Percentile(99)*1000,
			res.CacheHits, res.CacheMisses, 100*res.CacheHitRatio())
	}
	rep := &Report{
		ID:    "cache-cmp",
		Title: fmt.Sprintf("Block cache on/off comparison (%d MB budget, EC+C+M+LB, zipfian YCSB-E)", budget>>20),
		Body:  b.String(),
	}
	return rep, out, nil
}
