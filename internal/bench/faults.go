package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/faults"
	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/storage"
)

// DegradedMode measures real (wall-clock) read latency on an in-process
// cluster while faults are injected into individual sites, contrasting
// the client's fault-tolerance machinery:
//
//	healthy        no faults: the baseline.
//	slow site      one site answers with a latency spike; no hedging.
//	slow + hedge   the same spike, but slow planned reads are hedged
//	               with a chunk from another site after HedgeDelay.
//	hung site      one site accepts requests and never responds; the
//	               per-chunk deadline bounds the first read and the
//	               site's breaker keeps it out of later plans.
//
// Unlike the figure experiments this is not simulated time: latencies
// below are measured microseconds on real goroutines, so absolute
// numbers vary by machine while the relative shape (tail behaviour per
// scenario) is the point.
func DegradedMode(sc Scale) (*Report, error) {
	const numSites = 8
	blocks := sc.Blocks / 50
	if blocks < 20 {
		blocks = 20
	}
	if blocks > 400 {
		blocks = 400
	}
	reads := blocks * 2

	type scenario struct {
		name  string
		cfg   core.Config
		fault faults.Plan // applied to one chunk-holding site
		hang  bool
	}
	scenarios := []scenario{
		{name: "healthy"},
		{
			name:  "slow site",
			fault: faults.Plan{Latency: 10 * time.Millisecond, Jitter: 10 * time.Millisecond},
		},
		{
			name:  "slow site + hedge",
			cfg:   core.Config{HedgeDelay: 2 * time.Millisecond},
			fault: faults.Plan{Latency: 10 * time.Millisecond, Jitter: 10 * time.Millisecond},
		},
		{
			name:  "hung site + breaker",
			cfg:   core.Config{ChunkTimeout: 40 * time.Millisecond},
			fault: faults.Plan{Hang: true},
			hang:  true,
		},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s\n", "scenario", "p50", "p95", "p99", "max")
	for _, s := range scenarios {
		lat, err := runDegraded(sc.Seed, numSites, blocks, reads, s.cfg, s.fault)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s\n", s.name,
			quantileDur(lat, 0.50), quantileDur(lat, 0.95),
			quantileDur(lat, 0.99), quantileDur(lat, 1.0))
	}
	b.WriteString("\n(one faulty site of 8; RS(2,2); wall-clock latency, machine-dependent)\n")
	return &Report{ID: "faults", Title: "degraded-mode read latency", Body: b.String()}, nil
}

// runDegraded builds a fresh faults-wrapped cluster, loads it, applies
// the fault plan to the first block's first chunk site, then measures
// sequential read latencies across the whole population.
func runDegraded(seed int64, numSites, blocks, reads int, cfg core.Config, fault faults.Plan) ([]time.Duration, error) {
	inj := faults.NewInjector(seed)
	siteIDs := make([]model.SiteID, numSites)
	for i := range siteIDs {
		siteIDs[i] = model.SiteID(i + 1)
	}
	catalog := metadata.NewCatalog(siteIDs)
	wrapped := make(map[model.SiteID]*faults.Site, numSites)
	apis := make(map[model.SiteID]storage.SiteAPI, numSites)
	for _, id := range siteIDs {
		svc := storage.NewService(storage.ServiceConfig{Site: id}, storage.NewMemStore())
		wrapped[id] = faults.NewSite(svc, inj)
		apis[id] = wrapped[id]
	}
	cfg.K, cfg.R = 2, 2
	cfg.Seed = seed
	cfg.InlineExact = true
	client, err := core.NewClient(cfg, core.Deps{
		Meta:   catalog,
		Sites:  apis,
		Health: health.NewTracker(health.Config{}),
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	ids := make([]model.BlockID, blocks)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := range ids {
		ids[i] = model.BlockID(fmt.Sprintf("blk-%04d", i))
		if err := client.Put(ids[i], payload); err != nil {
			return nil, err
		}
	}

	// Fault one site that definitely holds chunks: the first block's
	// first placement.
	meta, ok := catalog.BlockMeta(ids[0])
	if !ok {
		return nil, fmt.Errorf("block %s not registered", ids[0])
	}
	wrapped[meta.Sites[0]].Set(fault)

	lat := make([]time.Duration, 0, reads)
	for i := 0; i < reads; i++ {
		id := ids[i%len(ids)]
		start := time.Now()
		if _, err := client.Get(id); err != nil {
			return nil, fmt.Errorf("read %s: %w", id, err)
		}
		lat = append(lat, time.Since(start))
	}
	return lat, nil
}

// quantileDur returns the q-quantile of the (unsorted) samples.
func quantileDur(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
