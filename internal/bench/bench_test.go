package bench

import (
	"strings"
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/placement"
	"ecstore/internal/sim"
)

// tinyScale keeps unit tests fast: enough traffic for stable means, small
// enough to run in seconds.
func tinyScale(seed int64) Scale {
	return Scale{
		Name:      "tiny",
		Blocks:    1000,
		Warmup:    1,
		Adapt:     3,
		Measure:   3,
		WikiPages: 80,
		Seed:      seed,
	}
}

func TestConfigsCoverPaperMatrix(t *testing.T) {
	cfgs := Configs()
	want := []string{"R", "EC", "EC+LB", "EC+C", "EC+C+M", "EC+C+M+LB"}
	if len(cfgs) != len(want) {
		t.Fatalf("got %d configs", len(cfgs))
	}
	for i, opt := range cfgs {
		if got := opt.Name(); got != want[i] {
			t.Errorf("config %d = %s, want %s", i, got, want[i])
		}
	}
}

func TestFig1RetrievalDominates(t *testing.T) {
	rep, results, err := Fig1(tinyScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig1" || rep.Body == "" {
		t.Fatalf("bad report: %+v", rep)
	}
	for _, r := range results {
		bd := r.Mean
		if bd.Retrieve < bd.Metadata || bd.Retrieve < bd.Planning || bd.Retrieve < bd.Decode {
			t.Errorf("%s: retrieval (%.4f) does not dominate breakdown %+v", r.Config, bd.Retrieve, bd)
		}
	}
	// Erasure coding slower than replication under random access, and
	// replication stores 50% more data (the paper's motivating gap).
	r, ec := results[0], results[1]
	if ec.Mean.Total() <= r.Mean.Total() {
		t.Errorf("EC (%.4f) not slower than R (%.4f)", ec.Mean.Total(), r.Mean.Total())
	}
	if r.StorageOverhead != 3.0 || ec.StorageOverhead != 2.0 {
		t.Errorf("overheads = %v, %v", r.StorageOverhead, ec.StorageOverhead)
	}
	// Replication never decodes.
	if r.Mean.Decode != 0 {
		t.Errorf("replication decode = %v", r.Mean.Decode)
	}
	if ec.Mean.Decode <= 0 {
		t.Errorf("erasure decode = %v", ec.Mean.Decode)
	}
}

func TestFig4aTimelineShape(t *testing.T) {
	rep, results, err := Fig4a(tinyScale(2))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "EC+C+M") {
		t.Fatal("report missing EC+C+M column")
	}
	for _, r := range results {
		if len(r.Metrics.Timeline()) == 0 {
			t.Fatalf("%s: empty timeline", r.Config)
		}
	}
}

func TestFig4fFailuresIncreaseLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("18 simulation runs; skipped in -short mode")
	}
	sc := tinyScale(3)
	rep, rows, err := Fig4f(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig4f" {
		t.Fatal("bad report id")
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for cfg, row := range rows {
		if len(row) != 3 {
			t.Fatalf("%s: %d columns", cfg, len(row))
		}
		for _, v := range row {
			if v <= 0 {
				t.Fatalf("%s: non-positive latency %v", cfg, v)
			}
		}
		// Two failures should not be cheaper than none (allowing a
		// little simulation noise).
		if row[2] < row[0]*0.9 {
			t.Errorf("%s: 2-failure latency %.4f markedly below 0-failure %.4f", cfg, row[2], row[0])
		}
	}
}

func TestTable2Lambdas(t *testing.T) {
	rep, lambdas, err := Table2(tinyScale(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(lambdas) != 6 {
		t.Fatalf("lambdas = %v", lambdas)
	}
	for cfg, l := range lambdas {
		if l < 0 {
			t.Errorf("%s: negative λ %v", cfg, l)
		}
	}
	if !strings.Contains(rep.Body, "EC+C+M") {
		t.Fatal("report missing configs")
	}
}

func TestTable3Rows(t *testing.T) {
	rep, rows, err := Table3(tinyScale(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Service] = true
		if r.MemoryMB < 0 {
			t.Errorf("%s: negative memory", r.Service)
		}
	}
	if !names["Statistics"] || !names["Chunk read optimizer"] || !names["Chunk mover"] {
		t.Fatalf("services = %v", names)
	}
	if rep.Body == "" {
		t.Fatal("empty report")
	}
}

func TestWikipediaRun(t *testing.T) {
	sc := tinyScale(6)
	res, err := RunWikipedia(sim.Options{
		Scheme:   model.SchemeErasure,
		Strategy: placement.StrategyCost,
	}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests measured")
	}
}

func TestAblationDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("3 simulation runs; skipped in -short mode")
	}
	_, out, err := AblationDelta(tinyScale(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("deltas = %v", out)
	}
}

func TestAblationK(t *testing.T) {
	if testing.Short() {
		t.Skip("4 simulation runs; skipped in -short mode")
	}
	_, out, err := AblationK(tinyScale(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("ks = %v", out)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "x", Title: "t", Body: "b\n"}
	s := rep.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "b") {
		t.Fatalf("report rendering: %q", s)
	}
}

func TestDegradedModeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock fault injection runs; skipped in -short mode")
	}
	rep, err := DegradedMode(tinyScale(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"healthy", "slow site + hedge", "hung site + breaker"} {
		if !strings.Contains(rep.Body, want) {
			t.Fatalf("report missing scenario %q:\n%s", want, rep.Body)
		}
	}
}

func TestAblationCache(t *testing.T) {
	rep, out, err := AblationCache(tinyScale(23))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d budgets, want 4", len(out))
	}
	base, ok := out[0]
	if !ok || base <= 0 {
		t.Fatalf("missing cache-off baseline: %v", out)
	}
	// A generous budget on the skewed workload must beat cache-off.
	if cached := out[128<<20]; cached >= base {
		t.Fatalf("128MB cache mean %.4f >= baseline %.4f", cached, base)
	}
	if !strings.Contains(rep.Body, "hot-cover") || !strings.Contains(rep.Body, "off") {
		t.Fatalf("report body missing columns:\n%s", rep.Body)
	}
}

func TestAblationRange(t *testing.T) {
	rep, out, err := AblationRange(QuickScale(42))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "ab-range" {
		t.Fatalf("id = %s", rep.ID)
	}
	// The acceptance criterion: a range covering 1/8 of a 1 MiB block
	// must decode only its touched stripes (<= 2 of 8 at unaligned
	// offsets) and beat the whole-block read.
	if s := out["range-1/8/stripes"]; s <= 0 || s > 2 {
		t.Fatalf("range-1/8 decoded %.1f stripes/read, want (0,2]", s)
	}
	if out["whole-get/stripes"] != 8 {
		t.Fatalf("whole-get stripes = %.1f, want 8", out["whole-get/stripes"])
	}
	if out["range-1/8/mean-ms"] >= out["whole-get/mean-ms"] {
		t.Fatalf("range-1/8 mean %.2fms did not beat whole-get %.2fms",
			out["range-1/8/mean-ms"], out["whole-get/mean-ms"])
	}
}

func TestAblationPack(t *testing.T) {
	rep, out, err := AblationPack(QuickScale(42))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "packed=") {
		t.Fatal("report lacks packed= smoke token")
	}
	if out["packed/chunk-rpcs"] >= out["unpacked/chunk-rpcs"] {
		t.Fatalf("packing did not reduce chunk writes: %v vs %v",
			out["packed/chunk-rpcs"], out["unpacked/chunk-rpcs"])
	}
	if out["packed/catalog"] >= out["unpacked/catalog"] {
		t.Fatalf("packing did not reduce catalog entries: %v vs %v",
			out["packed/catalog"], out["unpacked/catalog"])
	}
}

func TestAblationMeta(t *testing.T) {
	if testing.Short() {
		t.Skip("fsync-bound durable sweeps")
	}
	rep, sweep, err := AblationMeta(tinyScale(11))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "ab-meta" {
		t.Fatalf("id = %s", rep.ID)
	}
	kinds := map[string]int{}
	for _, row := range sweep.Rows {
		kinds[row.Kind]++
		if row.Partitions <= 0 {
			t.Fatalf("%s row with %d partitions", row.Kind, row.Partitions)
		}
		if row.OpsPerSec <= 0 {
			t.Fatalf("%s row with %.0f ops/s", row.Kind, row.OpsPerSec)
		}
	}
	if kinds["partition-sweep"] != 6 || kinds["fsync-sweep"] != 3 || kinds["recovery-replay"] != 1 {
		t.Fatalf("row kinds = %v", kinds)
	}
	for _, row := range sweep.Rows {
		if row.Kind == "recovery-replay" && row.ReplayedRecords < int64(row.Blocks) {
			t.Fatalf("recovery replayed %d records for %d blocks", row.ReplayedRecords, row.Blocks)
		}
	}
}
