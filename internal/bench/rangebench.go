package bench

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/storage"
)

// rangeCluster is a real (not simulated) in-process cluster sized for
// the data-path ablations: MemStore-backed sites with an emulated
// storage medium, one client, one shared metrics registry.
type rangeCluster struct {
	client  *core.Client
	catalog *metadata.Catalog
	reg     *obs.Registry
}

func newRangeCluster(seed int64, numSites int, cfg core.Config, perByte, fixed time.Duration) (*rangeCluster, error) {
	siteIDs := make([]model.SiteID, numSites)
	for i := range siteIDs {
		siteIDs[i] = model.SiteID(i + 1)
	}
	reg := obs.NewRegistry()
	catalog := metadata.NewCatalog(siteIDs)
	apis := make(map[model.SiteID]storage.SiteAPI, numSites)
	for _, id := range siteIDs {
		apis[id] = storage.NewService(storage.ServiceConfig{
			Site:             id,
			ReadDelayPerByte: perByte,
			ReadDelayFixed:   fixed,
			Metrics:          reg,
		}, storage.NewMemStore())
	}
	cfg.Seed = seed
	cfg.InlineExact = true
	client, err := core.NewClient(cfg, core.Deps{
		Meta:    catalog,
		Sites:   apis,
		Health:  health.NewTracker(health.Config{}),
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	return &rangeCluster{client: client, catalog: catalog, reg: reg}, nil
}

func (rc *rangeCluster) counter(name string) int64 {
	return rc.reg.Snapshot().CounterValue(name, "")
}

// siteCounterSum sums a site-labeled storage counter across all sites.
func (rc *rangeCluster) siteCounterSum(name string, numSites int) int64 {
	snap := rc.reg.Snapshot()
	var total int64
	for i := 1; i <= numSites; i++ {
		total += snap.CounterValue(name, fmt.Sprintf("%d", i))
	}
	return total
}

// AblationRange contrasts whole-block Get against GetRange on the real
// data path: 1 MiB blocks written through the streaming pipeline (RS(2,2),
// 64 KiB stripe unit, 8 stripes) and read back whole or at 1/64, 1/8 and
// 1/2 of the block, with the storage medium emulated by a per-byte read
// delay so transferred bytes dominate latency exactly as on a disk. The
// stripes/read column comes from range_stripes_decoded_total and is the
// acceptance signal: a range touching 1/8 of the block decodes 1 stripe
// of 8. Returned map keys: "<row>/mean-ms" and "<row>/stripes".
func AblationRange(sc Scale) (*Report, map[string]float64, error) {
	const (
		numSites  = 8
		blockSize = 1 << 20
		unit      = 64 << 10
	)
	nblocks := sc.Blocks / 500
	if nblocks < 4 {
		nblocks = 4
	}
	if nblocks > 16 {
		nblocks = 16
	}
	readsPerRow := nblocks * 3

	rc, err := newRangeCluster(sc.Seed, numSites, core.Config{
		K: 2, R: 2,
		StripeUnit: unit,
	}, 10*time.Nanosecond, 100*time.Microsecond)
	if err != nil {
		return nil, nil, err
	}
	defer rc.client.Close()

	//lint:ignore ctxfirst benchmark harness entrypoint: measured runs are not cancellable by design
	ctx := context.Background()
	payload := make([]byte, blockSize)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	ids := make([]model.BlockID, nblocks)
	for i := range ids {
		ids[i] = model.BlockID(fmt.Sprintf("rb-%03d", i))
		if _, err := rc.client.PutReader(ctx, ids[i], bytes.NewReader(payload)); err != nil {
			return nil, nil, err
		}
	}

	rows := []struct {
		name string
		n    int64 // 0 = whole-block Get
	}{
		{"whole-get", 0},
		{"range-1/64", blockSize / 64},
		{"range-1/8", blockSize / 8},
		{"range-1/2", blockSize / 2},
	}
	out := make(map[string]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %14s %14s\n", "read", "mean", "bytes/read", "stripes/read")
	for _, row := range rows {
		stripesBefore := rc.counter("range_stripes_decoded_total")
		bytesBefore := rc.siteCounterSum("storage_read_bytes_total", numSites)
		start := time.Now()
		for i := 0; i < readsPerRow; i++ {
			id := ids[i%len(ids)]
			if row.n == 0 {
				if _, err := rc.client.GetContext(ctx, id); err != nil {
					return nil, nil, fmt.Errorf("%s: %w", row.name, err)
				}
				continue
			}
			// Deterministic offsets marching through the block.
			off := (int64(i) * 37 * unit / 8) % (blockSize - row.n + 1)
			got, err := rc.client.GetRange(ctx, id, off, row.n)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", row.name, err)
			}
			if !bytes.Equal(got, payload[off:off+row.n]) {
				return nil, nil, fmt.Errorf("%s: bytes mismatch at off %d", row.name, off)
			}
		}
		mean := time.Since(start).Seconds() / float64(readsPerRow)
		stripes := float64(rc.counter("range_stripes_decoded_total")-stripesBefore) / float64(readsPerRow)
		if row.n == 0 {
			// Whole-block Get decodes every stripe; report the layout's
			// stripe count for the comparison column.
			stripes = float64(blockSize) / float64(2*unit)
		}
		readBytes := float64(rc.siteCounterSum("storage_read_bytes_total", numSites)-bytesBefore) / float64(readsPerRow)
		out[row.name+"/mean-ms"] = mean * 1000
		out[row.name+"/stripes"] = stripes
		fmt.Fprintf(&b, "%-12s %10.2fms %13.0fB %14.1f\n", row.name, mean*1000, readBytes, stripes)
	}
	b.WriteString("\n(real data path: RS(2,2), 64 KiB stripe unit, 1 MiB blocks, 8 stripes;\n emulated medium 10 ns/B + 100 µs/read; wall-clock, machine-dependent)\n")
	rep := &Report{ID: "ab-range", Title: "Whole-block Get vs GetRange (real data path)", Body: b.String(), Data: out}
	return rep, out, nil
}

// AblationPack contrasts per-object writes against small-object packing
// on the real data path: 4 KiB objects stored one block each versus
// staged and sealed into shared 256 KiB pack containers. Packing trades
// a redirect on reads (member -> container stripe window) for far fewer
// catalog entries and chunk-write RPCs; reads stay fixed-cost dominated
// either way. The body prints `packed=N` so scripted smoke tests can
// assert containers actually sealed. Returned map keys: "packed/...",
// "unpacked/..." for writes, catalog entries and mean read ms.
func AblationPack(sc Scale) (*Report, map[string]float64, error) {
	const (
		numSites = 8
		objSize  = 4096
	)
	nobj := sc.Blocks / 8
	if nobj < 128 {
		nobj = 128
	}
	if nobj > 512 {
		nobj = 512
	}

	type mode struct {
		name string
		cfg  core.Config
	}
	modes := []mode{
		{"unpacked", core.Config{K: 2, R: 2, StripeUnit: 64 << 10}},
		{"packed", core.Config{K: 2, R: 2, StripeUnit: 64 << 10, PackThreshold: objSize, PackCapacity: 256 << 10}},
	}

	out := make(map[string]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %12s\n", "mode", "objects", "chunk-RPCs", "catalog", "read-mean")
	var packedBlocks, packedContainers int64
	for _, m := range modes {
		rc, err := newRangeCluster(sc.Seed, numSites, m.cfg, 0, 50*time.Microsecond)
		if err != nil {
			return nil, nil, err
		}
		//lint:ignore ctxfirst benchmark harness entrypoint: measured runs are not cancellable by design
		ctx := context.Background()
		payload := make([]byte, objSize)
		for i := range payload {
			payload[i] = byte(i*13 + 1)
		}
		ids := make([]model.BlockID, nobj)
		for i := range ids {
			ids[i] = model.BlockID(fmt.Sprintf("obj-%05d", i))
			if err := rc.client.PutContext(ctx, ids[i], payload); err != nil {
				rc.client.Close()
				return nil, nil, err
			}
		}
		if err := rc.client.FlushPacked(ctx); err != nil {
			rc.client.Close()
			return nil, nil, err
		}

		writes := rc.siteCounterSum("storage_writes_total", numSites)
		catalogEntries := 0
		rc.catalog.ForEach(func(*model.BlockMeta) bool { catalogEntries++; return true })

		start := time.Now()
		for i := 0; i < nobj; i++ {
			got, err := rc.client.GetContext(ctx, ids[(i*17)%nobj])
			if err != nil {
				rc.client.Close()
				return nil, nil, fmt.Errorf("%s read: %w", m.name, err)
			}
			if !bytes.Equal(got, payload) {
				rc.client.Close()
				return nil, nil, fmt.Errorf("%s read: bytes mismatch", m.name)
			}
		}
		mean := time.Since(start).Seconds() / float64(nobj)

		if m.name == "packed" {
			packedBlocks = rc.counter("pack_packed_blocks_total")
			packedContainers = rc.counter("pack_sealed_total")
		}
		out[m.name+"/chunk-rpcs"] = float64(writes)
		out[m.name+"/catalog"] = float64(catalogEntries)
		out[m.name+"/read-mean-ms"] = mean * 1000
		fmt.Fprintf(&b, "%-10s %10d %12d %12d %10.2fms\n", m.name, nobj, writes, catalogEntries, mean*1000)
		rc.client.Close()
	}
	fmt.Fprintf(&b, "\npacked=%d blocks in %d containers\n", packedBlocks, packedContainers)
	b.WriteString("(real data path: 4 KiB objects, RS(2,2); packed mode seals 256 KiB\n containers; chunk-RPCs counts storage write operations; wall-clock)\n")
	rep := &Report{ID: "ab-pack", Title: "Small-object packing vs per-object blocks (real data path)", Body: b.String(), Data: out}
	return rep, out, nil
}
