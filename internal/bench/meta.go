package bench

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
)

// The ab-meta ablation exercises the metadata catalog at catalog scale
// (10^6 blocks at the full scale, smaller at quick/mid) along the three
// axes the sharded-WAL redesign introduces:
//
//   - partition count: concurrent UpdatePlacement throughput on a
//     volatile catalog, sweeping the shard count (1 reproduces the old
//     single-lock catalog, so the row's speedup column is the direct
//     before/after of the refactor);
//   - fsync interval: durable Register throughput through the WAL,
//     comparing per-op fsync against group commit;
//   - recovery replay: crash a loaded durable catalog and measure the
//     wall time and record count of snapshot+WAL-tail recovery.
//
// Update throughput numbers are wall-clock on whatever machine runs the
// bench; on a single-CPU container the partition sweep measures lock
// hand-off overhead rather than parallelism, so expect modest speedups
// there and real ones only with GOMAXPROCS > 1.

// metaSites is the modelled cluster size for the catalog benches; 16
// sites leaves every 4-chunk block two spare destinations per move.
const metaSites = 16

// MetaRow is one measured configuration in the ab-meta sweep.
type MetaRow struct {
	// Kind is "partition-sweep", "fsync-sweep" or "recovery-replay".
	Kind string `json:"kind"`
	// Partitions is the catalog shard count for this row.
	Partitions int `json:"partitions"`
	// Blocks is the preloaded catalog size.
	Blocks int `json:"blocks"`
	// Ops is the number of operations timed (updates or registers).
	Ops int `json:"ops"`
	// OpsPerSec is the measured throughput.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Speedup is OpsPerSec relative to the partitions=1 row of the same
	// kind (partition-sweep rows only).
	Speedup float64 `json:"speedup,omitempty"`
	// FsyncIntervalMS is the group-commit window (fsync-sweep rows; 0
	// means fsync on every operation).
	FsyncIntervalMS float64 `json:"fsync_interval_ms"`
	// ReplayedRecords and RecoverySec describe the recovery-replay row.
	ReplayedRecords int64   `json:"replayed_records,omitempty"`
	RecoverySec     float64 `json:"recovery_sec,omitempty"`
}

// MetaSweep is the machine-readable Data payload of the ab-meta report.
type MetaSweep struct {
	Rows []MetaRow `json:"rows"`
}

// metaCatalogBlocks maps the bench scale to the catalog-scale axis: the
// full scale hits the paper-sized 10^6-block catalog, quick and mid stay
// proportional so CI smokes finish in seconds.
func metaCatalogBlocks(sc Scale) int {
	if sc.Blocks >= FullScale(0).Blocks {
		return 1_000_000
	}
	return sc.Blocks * 25
}

func metaSiteIDs() []model.SiteID {
	ids := make([]model.SiteID, metaSites)
	for i := range ids {
		ids[i] = model.SiteID(i + 1)
	}
	return ids
}

// metaBlockID names block i; the hash-routed partitions see a uniform
// id distribution.
func metaBlockID(i int) model.BlockID {
	return model.BlockID(fmt.Sprintf("blk-%07d", i))
}

// metaBlockSlots returns the four site slots (0-based) block i's chunks
// start on. Slots b..b+3 leave b+8 and b+9 free as move targets.
func metaBlockSlots(i int) int {
	return (i * 7) % metaSites
}

func metaPreload(c *metadata.Catalog, blocks int) error {
	for i := 0; i < blocks; i++ {
		b := metaBlockSlots(i)
		sites := []model.SiteID{
			model.SiteID(b%metaSites + 1),
			model.SiteID((b+1)%metaSites + 1),
			model.SiteID((b+2)%metaSites + 1),
			model.SiteID((b+3)%metaSites + 1),
		}
		meta := &model.BlockMeta{
			ID:        metaBlockID(i),
			Scheme:    model.SchemeErasure,
			Size:      4 << 20,
			K:         2,
			R:         2,
			ChunkSize: 2 << 20,
			Sites:     sites,
		}
		if err := c.Register(meta); err != nil {
			return fmt.Errorf("preload %s: %w", meta.ID, err)
		}
	}
	return nil
}

// metaUpdateThroughput runs ops UpdatePlacement calls across workers on
// a preloaded catalog and returns operations per second. Each worker
// owns a disjoint id range and tracks versions locally, so every CAS
// succeeds and the measurement isolates catalog-lock and WAL cost.
func metaUpdateThroughput(c *metadata.Catalog, blocks, ops, workers int) (float64, error) {
	if workers > blocks {
		workers = blocks
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * blocks / workers
			hi := (w + 1) * blocks / workers
			n := ops / workers
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			versions := make(map[int]uint64, hi-lo)
			for op := 0; op < n; op++ {
				i := lo + rng.Intn(hi-lo)
				b := metaBlockSlots(i)
				// Bounce chunk 0 between two slots outside the
				// block's initial placement.
				slot := (b + 8 + op%2) % metaSites
				v, err := c.UpdatePlacement(metaBlockID(i), 0, model.SiteID(slot+1), versions[i])
				if err != nil {
					errs[w] = fmt.Errorf("update %s: %w", metaBlockID(i), err)
					return
				}
				versions[i] = v
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(ops) / elapsed, nil
}

// AblationMeta measures the metadata catalog at catalog scale: partition
// count versus concurrent update throughput, WAL fsync interval versus
// durable register throughput, and crash-recovery replay time.
func AblationMeta(sc Scale) (*Report, *MetaSweep, error) {
	blocks := metaCatalogBlocks(sc)
	updateOps := blocks / 2
	if updateOps > 250_000 {
		updateOps = 250_000
	}
	workers := 8
	sweep := &MetaSweep{}
	var b strings.Builder

	fmt.Fprintf(&b, "catalog scale: %d blocks, %d update ops, %d workers\n\n", blocks, updateOps, workers)
	fmt.Fprintf(&b, "%-12s %14s %10s\n", "partitions", "updates/s", "speedup")
	var base float64
	for _, parts := range []int{1, 2, 4, 8, 16, 32} {
		c := metadata.NewCatalogParts(metaSiteIDs(), parts)
		if err := metaPreload(c, blocks); err != nil {
			return nil, nil, err
		}
		tput, err := metaUpdateThroughput(c, blocks, updateOps, workers)
		if err != nil {
			return nil, nil, err
		}
		if parts == 1 {
			base = tput
		}
		speedup := tput / base
		sweep.Rows = append(sweep.Rows, MetaRow{
			Kind: "partition-sweep", Partitions: parts, Blocks: blocks,
			Ops: updateOps, OpsPerSec: tput, Speedup: speedup,
		})
		fmt.Fprintf(&b, "%-12d %14.0f %9.2fx\n", parts, tput, speedup)
	}

	// Durable register throughput: the catalog-scale preload would make
	// this sweep fsync-bound for minutes at interval 0, so it registers
	// a fixed slice of the id space per configuration.
	regOps := blocks / 50
	if regOps > 5000 {
		regOps = 5000
	}
	if regOps < 500 {
		regOps = 500
	}
	fmt.Fprintf(&b, "\n%-16s %14s   (%d registers, %d partitions)\n", "fsync interval", "registers/s", regOps, metadata.DefaultPartitions)
	for _, iv := range []time.Duration{0, time.Millisecond, 10 * time.Millisecond} {
		dir, err := os.MkdirTemp("", "ab-meta-fsync-*")
		if err != nil {
			return nil, nil, err
		}
		tput, err := metaRegisterThroughput(dir, iv, regOps)
		_ = os.RemoveAll(dir)
		if err != nil {
			return nil, nil, err
		}
		sweep.Rows = append(sweep.Rows, MetaRow{
			Kind: "fsync-sweep", Partitions: metadata.DefaultPartitions,
			Blocks: regOps, Ops: regOps, OpsPerSec: tput,
			FsyncIntervalMS: float64(iv) / float64(time.Millisecond),
		})
		label := "every op"
		if iv > 0 {
			label = iv.String()
		}
		fmt.Fprintf(&b, "%-16s %14.0f\n", label, tput)
	}

	recRow, err := metaRecoveryReplay(blocks)
	if err != nil {
		return nil, nil, err
	}
	sweep.Rows = append(sweep.Rows, *recRow)
	fmt.Fprintf(&b, "\nrecovery: %d blocks, %d WAL records replayed in %.3fs (%d partitions)\n",
		recRow.Blocks, recRow.ReplayedRecords, recRow.RecoverySec, recRow.Partitions)

	rep := &Report{
		ID:    "ab-meta",
		Title: fmt.Sprintf("Metadata catalog scale sweep (%d blocks: partitions, fsync interval, recovery)", blocks),
		Body:  b.String(),
		Data:  sweep,
	}
	return rep, sweep, nil
}

// metaRegisterThroughput measures durable Register throughput through a
// fresh WAL directory at the given group-commit interval.
func metaRegisterThroughput(dir string, fsyncInterval time.Duration, ops int) (float64, error) {
	c, err := metadata.Open(dir, metaSiteIDs(), metadata.WALOptions{
		FsyncInterval: fsyncInterval,
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := metaPreload(c, ops); err != nil {
		_ = c.Close()
		return 0, err
	}
	if err := c.Sync(); err != nil {
		_ = c.Close()
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if err := c.Close(); err != nil {
		return 0, err
	}
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(ops) / elapsed, nil
}

// metaRecoveryReplay loads a durable catalog, closes it uncompacted (so
// the whole load is WAL tail), reopens it and times recovery. The boot
// path replays the records, rebuilds the derived indexes and compacts,
// which is exactly the post-crash critical path.
func metaRecoveryReplay(blocks int) (*MetaRow, error) {
	recBlocks := blocks / 10
	if recBlocks > 100_000 {
		recBlocks = 100_000
	}
	if recBlocks < 1000 {
		recBlocks = 1000
	}
	dir, err := os.MkdirTemp("", "ab-meta-recover-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	opts := metadata.WALOptions{
		FsyncInterval: 2 * time.Millisecond,
		// Keep the load out of the compactor so recovery replays the
		// full op log rather than loading a snapshot.
		CompactBytes: 1 << 40,
	}
	c, err := metadata.Open(dir, metaSiteIDs(), opts)
	if err != nil {
		return nil, err
	}
	if err := metaPreload(c, recBlocks); err != nil {
		_ = c.Close()
		return nil, err
	}
	if err := c.Close(); err != nil {
		return nil, err
	}

	start := time.Now()
	rc, err := metadata.Open(dir, metaSiteIDs(), opts)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()
	replayed, _ := rc.ReplayStats()
	n := rc.Len()
	if err := rc.Close(); err != nil {
		return nil, err
	}
	if n != recBlocks {
		return nil, fmt.Errorf("recovery lost blocks: have %d, want %d", n, recBlocks)
	}
	if replayed < int64(recBlocks) {
		return nil, fmt.Errorf("recovery replayed %d records for %d registers", replayed, recBlocks)
	}
	return &MetaRow{
		Kind: "recovery-replay", Partitions: metadata.DefaultPartitions,
		Blocks: recBlocks, Ops: recBlocks,
		OpsPerSec:       float64(recBlocks) / elapsed,
		ReplayedRecords: replayed,
		RecoverySec:     elapsed,
	}, nil
}
