// Package bench is the experiment harness regenerating every table and
// figure of the paper's evaluation (Section VI). Each experiment has a
// runner returning both the raw simulation results (for tests and
// assertions) and a rendered text report (for cmd/ecbench and
// EXPERIMENTS.md).
//
// Experiments run on the deterministic simulator at two scales: Quick
// (seconds of wall-clock time, for go test -bench) and Full (minutes,
// approximating the paper's 20-minute measurement windows after time
// compression).
package bench

import (
	"fmt"
	"strconv"
	"strings"

	"ecstore/internal/model"
	"ecstore/internal/placement"
	"ecstore/internal/sim"
	"ecstore/internal/workload"
)

// Scale fixes the population and durations of an experiment run.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// Blocks is the loaded block population (the paper loads 1M; the
	// simulator preserves the popularity shape at smaller populations).
	Blocks int
	// Warmup, Adapt and Measure are the phase durations in simulated
	// seconds (uniform warm-up, post-workload-change adaptation,
	// measurement).
	Warmup  float64
	Adapt   float64
	Measure float64
	// WikiPages sizes the Wikipedia trace.
	WikiPages int
	// Seed drives the whole run.
	Seed int64
}

// QuickScale is sized for go test -bench: a few wall-clock seconds per
// configuration.
func QuickScale(seed int64) Scale {
	return Scale{
		Name:      "quick",
		Blocks:    4000,
		Warmup:    2,
		Adapt:     10,
		Measure:   6,
		WikiPages: 300,
		Seed:      seed,
	}
}

// MidScale balances fidelity and wall-clock time: large enough for the
// movement dynamics to converge, small enough that one six-configuration
// experiment finishes in minutes on a laptop core.
func MidScale(seed int64) Scale {
	return Scale{
		Name:      "mid",
		Blocks:    12000,
		Warmup:    5,
		Adapt:     40,
		Measure:   15,
		WikiPages: 1200,
		Seed:      seed,
	}
}

// FullScale approximates the paper's runs after time compression
// (20 simulated minutes -> 20+60 simulated seconds with a proportionally
// faster mover).
func FullScale(seed int64) Scale {
	return Scale{
		Name:      "full",
		Blocks:    20000,
		Warmup:    10,
		Adapt:     60,
		Measure:   20,
		WikiPages: 2000,
		Seed:      seed,
	}
}

// Configs returns the paper's six evaluated configurations in Figure 4's
// order: R, EC, EC+LB, EC+C, EC+C+M, EC+C+M+LB.
func Configs() []sim.Options {
	return []sim.Options{
		{Scheme: model.SchemeReplicated, Strategy: placement.StrategyRandom},
		{Scheme: model.SchemeErasure, Strategy: placement.StrategyRandom},
		{Scheme: model.SchemeErasure, Strategy: placement.StrategyRandom, Delta: 1},
		{Scheme: model.SchemeErasure, Strategy: placement.StrategyCost},
		{Scheme: model.SchemeErasure, Strategy: placement.StrategyCost, Mover: true},
		{Scheme: model.SchemeErasure, Strategy: placement.StrategyCost, Mover: true, Delta: 1},
	}
}

// Report is a rendered experiment. Data optionally carries the raw
// machine-readable results behind the text body (sweep maps, gateway
// sweep points); ecbench -json marshals the whole report, so Data must
// hold only JSON-encodable values — number-keyed sweep maps go through
// floatKeys first.
type Report struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Body  string `json:"body"`
	Data  any    `json:"data,omitempty"`
}

// floatKeys converts a float-keyed sweep map into the string-keyed form
// encoding/json can marshal (float64 map keys are unsupported).
func floatKeys(in map[float64]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[strconv.FormatFloat(k, 'g', -1, 64)] = v
	}
	return out
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	b.WriteString(r.Body)
	return b.String()
}

// RunYCSB executes one configuration under the YCSB-E workload with the
// given block size.
func RunYCSB(opt sim.Options, sc Scale, blockSize int64) (*sim.Result, error) {
	cl, err := sim.New(sim.DefaultParams(sc.Seed), opt)
	if err != nil {
		return nil, err
	}
	if _, err := cl.Populate(sc.Blocks, func(int) int64 { return blockSize }); err != nil {
		return nil, err
	}
	wl := workload.NewYCSBE(sc.Blocks, 20, 1.0)
	return cl.Run(wl, sc.Warmup, sc.Adapt, sc.Measure), nil
}

// RunWikipedia executes one configuration under the synthetic Wikipedia
// image trace.
func RunWikipedia(opt sim.Options, sc Scale) (*sim.Result, error) {
	trace := workload.NewWikipedia(workload.WikipediaConfig{
		NumPages: sc.WikiPages,
		Seed:     sc.Seed + 17,
	})
	cl, err := sim.New(sim.DefaultParams(sc.Seed), opt)
	if err != nil {
		return nil, err
	}
	if _, err := cl.Populate(trace.NumBlocks(), trace.SizeFor); err != nil {
		return nil, err
	}
	return cl.Run(trace, sc.Warmup, sc.Adapt, sc.Measure), nil
}

// runAll runs every configuration through the given runner.
func runAll(sc Scale, runner func(sim.Options) (*sim.Result, error)) ([]*sim.Result, error) {
	var out []*sim.Result
	for _, opt := range Configs() {
		res, err := runner(opt)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", opt.Name(), err)
		}
		out = append(out, res)
	}
	return out, nil
}
