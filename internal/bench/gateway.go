package bench

import (
	"fmt"
	"strings"

	"ecstore/internal/sim"
	"ecstore/internal/workload"
)

// GatewayPoint is one offered-load level of the gateway sweep.
type GatewayPoint struct {
	OfferedRPS   float64 `json:"offered_rps"`
	CarriedRPS   float64 `json:"carried_rps"`
	ShedFraction float64 `json:"shed_fraction"`
	P50Millis    float64 `json:"p50_ms"`
	P99Millis    float64 `json:"p99_ms"`
	Admitted     int     `json:"admitted"`
	Shed         int     `json:"shed"`
	Completed    int     `json:"completed"`
	Failed       int     `json:"failed"`
	// SLOMet marks a sustainable point: p99 within the SLO and the shed
	// fraction at most 1%.
	SLOMet bool `json:"slo_met"`
}

// GatewaySweep is the machine-readable ab-gateway result (BENCH_9.json).
type GatewaySweep struct {
	SLOMillis         float64        `json:"slo_ms"`
	Concurrency       int            `json:"concurrency"`
	QueueDepth        int            `json:"queue_depth"`
	Points            []GatewayPoint `json:"points"`
	MaxSustainableRPS float64        `json:"max_sustainable_rps"`
}

// gatewaySLOMillis is the p99 sojourn objective the sweep holds the
// gateway to. The unloaded request path costs a few milliseconds
// (metadata + planning + parallel chunk fetch), so 50 ms of headroom
// admits healthy queueing while still failing a collapsed tail.
const gatewaySLOMillis = 50

// AblationGateway sweeps offered load through the simulated gateway
// (internal/sim RunOpenLoop): a Poisson arrival process drives a bounded
// admission stage in front of the cluster, the rate doubling each point
// until the gateway is visibly past saturation (shed fraction > 20% or
// p99 beyond 4× the SLO) or the point budget runs out. The headline
// number is the max sustainable throughput: the highest offered rate
// whose p99 sojourn meets the SLO with at most 1% shed. Overload points
// demonstrate the design goal — p99 stays bounded by the finite queue
// while the shed fraction absorbs the excess.
func AblationGateway(sc Scale) (*Report, *GatewaySweep, error) {
	gp := sim.GatewayParams{Concurrency: 16, QueueDepth: 32}
	sweep := &GatewaySweep{
		SLOMillis:   gatewaySLOMillis,
		Concurrency: gp.Concurrency,
		QueueDepth:  gp.QueueDepth,
	}

	var b strings.Builder
	fmt.Fprintf(&b, "gateway: concurrency=%d queue=%d SLO p99<=%.0fms (shed<=1%%)\n",
		gp.Concurrency, gp.QueueDepth, sweep.SLOMillis)
	fmt.Fprintf(&b, "%-12s %-12s %8s %10s %10s %6s\n",
		"offered/s", "carried/s", "shed", "p50", "p99", "SLO")

	const maxPoints = 8
	rate := 100.0
	for i := 0; i < maxPoints; i++ {
		cl, err := sim.New(sim.DefaultParams(sc.Seed), sim.Options{})
		if err != nil {
			return nil, nil, err
		}
		if _, err := cl.Populate(sc.Blocks, func(int) int64 { return BlockSize100KB }); err != nil {
			return nil, nil, err
		}
		wl := workload.NewYCSBE(sc.Blocks, 4, 1.0)
		res := cl.RunOpenLoop(wl, workload.Poisson{Rate: rate}, gp, sc.Warmup, sc.Measure)
		res.OfferedRate = rate

		pt := GatewayPoint{
			OfferedRPS:   rate,
			CarriedRPS:   res.Throughput,
			ShedFraction: res.ShedFraction(),
			P50Millis:    res.P50Sojourn * 1000,
			P99Millis:    res.P99Sojourn * 1000,
			Admitted:     res.Admitted,
			Shed:         res.Shed,
			Completed:    res.Completed,
			Failed:       res.Failed,
		}
		pt.SLOMet = pt.P99Millis <= sweep.SLOMillis && pt.ShedFraction <= 0.01
		sweep.Points = append(sweep.Points, pt)
		if pt.SLOMet && rate > sweep.MaxSustainableRPS {
			sweep.MaxSustainableRPS = rate
		}

		mark := "miss"
		if pt.SLOMet {
			mark = "ok"
		}
		fmt.Fprintf(&b, "%-12.0f %-12.1f %7.1f%% %8.2fms %8.2fms %6s\n",
			pt.OfferedRPS, pt.CarriedRPS, 100*pt.ShedFraction, pt.P50Millis, pt.P99Millis, mark)

		// Past saturation: the remaining points would only repeat the
		// overload story.
		if pt.ShedFraction > 0.20 || pt.P99Millis > 4*sweep.SLOMillis {
			break
		}
		rate *= 2
	}
	fmt.Fprintf(&b, "max sustainable: %.0f req/s at p99<=%.0fms\n",
		sweep.MaxSustainableRPS, sweep.SLOMillis)

	rep := &Report{
		ID:    "ab-gateway",
		Title: "Gateway offered-load sweep: throughput under a p99 SLO (open loop)",
		Body:  b.String(),
		Data:  sweep,
	}
	return rep, sweep, nil
}
