package bench

import (
	"fmt"
	"math"
	"strings"

	"ecstore/internal/model"
	"ecstore/internal/placement"
	"ecstore/internal/sim"
	"ecstore/internal/workload"
)

// Block sizes used by the paper's YCSB experiments.
const (
	BlockSize10KB  = 10 * 1024
	BlockSize100KB = 100 * 1024
	BlockSize1MB   = 1024 * 1024
)

// Fig1 reproduces Figure 1: the response-time breakdown of replication vs
// baseline erasure coding under skewed access, showing retrieval dominating.
func Fig1(sc Scale) (*Report, []*sim.Result, error) {
	var results []*sim.Result
	for _, opt := range []sim.Options{
		{Scheme: model.SchemeReplicated, Strategy: placement.StrategyRandom},
		{Scheme: model.SchemeErasure, Strategy: placement.StrategyRandom},
	} {
		res, err := RunYCSB(opt, sc, BlockSize100KB)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)
	}
	rep := &Report{
		ID:    "fig1",
		Title: "Response time breakdown, replication vs erasure coding (YCSB-E, 100 KB, skewed)",
		Body:  sim.FormatBreakdownTable(results),
	}
	return rep, results, nil
}

// Fig4a reproduces Figure 4a: response time over time for EC+C and EC+C+M
// after the workload change, exposing the mover's convergence.
func Fig4a(sc Scale) (*Report, []*sim.Result, error) {
	var results []*sim.Result
	for _, opt := range []sim.Options{
		{Scheme: model.SchemeErasure, Strategy: placement.StrategyCost},
		{Scheme: model.SchemeErasure, Strategy: placement.StrategyCost, Mover: true},
	} {
		// No adaptation gap: measure straight through the transient,
		// like the paper's 20-minute window after workload change.
		scT := sc
		scT.Measure += scT.Adapt
		scT.Adapt = 0
		res, err := RunYCSB(opt, scT, BlockSize100KB)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)
	}
	var b strings.Builder
	width := results[0].Metrics.BucketWidth()
	fmt.Fprintf(&b, "%-8s", "t(s)")
	for _, r := range results {
		fmt.Fprintf(&b, " %10s", r.Config)
	}
	b.WriteString("\n")
	n := len(results[0].Metrics.Timeline())
	if m := len(results[1].Metrics.Timeline()); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-8.0f", float64(i)*width)
		for _, r := range results {
			fmt.Fprintf(&b, " %8.2fms", r.Metrics.Timeline()[i]*1000)
		}
		b.WriteString("\n")
	}
	rep := &Report{ID: "fig4a", Title: "Response time over time (YCSB-E, 100 KB)", Body: b.String()}
	return rep, results, nil
}

// Fig4b reproduces Figure 4b: the six-configuration response-time
// breakdown for YCSB-E with 100 KB blocks.
func Fig4b(sc Scale) (*Report, []*sim.Result, error) {
	results, err := runAll(sc, func(opt sim.Options) (*sim.Result, error) {
		return RunYCSB(opt, sc, BlockSize100KB)
	})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:    "fig4b",
		Title: "YCSB-E breakdown, 100 KB blocks, all configurations",
		Body:  sim.FormatBreakdownTable(results),
	}
	return rep, results, nil
}

// Fig4c reproduces Figure 4c: the tail-latency CDF (percentiles 80-100)
// for the Figure 4b run.
func Fig4c(sc Scale) (*Report, []*sim.Result, error) {
	results, err := runAll(sc, func(opt sim.Options) (*sim.Result, error) {
		return RunYCSB(opt, sc, BlockSize100KB)
	})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:    "fig4c",
		Title: "Tail latency CDF (YCSB-E, 100 KB), percentiles 80-100",
		Body:  formatCDF(results, 80, 2),
	}
	return rep, results, nil
}

// Fig4d reproduces Figure 4d: per-site read I/O rates during the YCSB
// 100 KB experiment.
func Fig4d(sc Scale) (*Report, []*sim.Result, error) {
	results, err := runAll(sc, func(opt sim.Options) (*sim.Result, error) {
		return RunYCSB(opt, sc, BlockSize100KB)
	})
	if err != nil {
		return nil, nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "site")
	for _, r := range results {
		fmt.Fprintf(&b, " %10s", r.Config)
	}
	b.WriteString("   (MB/s)\n")
	sites := results[0].SortedSiteRates()
	for i := range sites {
		fmt.Fprintf(&b, "%-6d", sites[i].Site)
		for _, r := range results {
			fmt.Fprintf(&b, " %10.2f", r.SiteReadRate[sites[i].Site]/1e6)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-6s", "total")
	for _, r := range results {
		var sum float64
		for _, rate := range r.SiteReadRate {
			sum += rate
		}
		fmt.Fprintf(&b, " %10.2f", sum/1e6)
	}
	b.WriteString("\n")
	rep := &Report{ID: "fig4d", Title: "Per-site read I/O (YCSB-E, 100 KB)", Body: b.String()}
	return rep, results, nil
}

// Fig4e reproduces Figure 4e: the six-configuration breakdown with 1 MB
// blocks.
func Fig4e(sc Scale) (*Report, []*sim.Result, error) {
	results, err := runAll(sc, func(opt sim.Options) (*sim.Result, error) {
		return RunYCSB(opt, sc, BlockSize1MB)
	})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:    "fig4e",
		Title: "YCSB-E breakdown, 1 MB blocks, all configurations",
		Body:  sim.FormatBreakdownTable(results),
	}
	return rep, results, nil
}

// Fig4f reproduces Figure 4f: mean response times with 0, 1 and 2 failed
// sites (failures injected before measurement, repair disabled, as in
// Section VI-C4).
func Fig4f(sc Scale) (*Report, map[string][]float64, error) {
	out := make(map[string][]float64)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "config", "0 failed", "1 failed", "2 failed")
	for _, opt := range Configs() {
		var row []float64
		for _, failures := range []int{0, 1, 2} {
			cl, err := sim.New(sim.DefaultParams(sc.Seed), opt)
			if err != nil {
				return nil, nil, err
			}
			if _, err := cl.Populate(sc.Blocks, func(int) int64 { return BlockSize100KB }); err != nil {
				return nil, nil, err
			}
			if failures > 0 {
				cl.FailSites(failures)
			}
			wl := newYCSB(sc)
			res := cl.Run(wl, sc.Warmup, sc.Adapt, sc.Measure)
			row = append(row, res.Mean.Total())
		}
		out[opt.Name()] = row
		fmt.Fprintf(&b, "%-12s %10.2fms %10.2fms %10.2fms\n",
			opt.Name(), row[0]*1000, row[1]*1000, row[2]*1000)
	}
	rep := &Report{ID: "fig4f", Title: "Response time with failed sites (YCSB-E, 100 KB)", Body: b.String()}
	return rep, out, nil
}

// Fig4g reproduces Figure 4g: the Wikipedia-trace breakdown for all six
// configurations.
func Fig4g(sc Scale) (*Report, []*sim.Result, error) {
	results, err := runAll(sc, func(opt sim.Options) (*sim.Result, error) {
		return RunWikipedia(opt, sc)
	})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:    "fig4g",
		Title: "Wikipedia image-trace breakdown, all configurations",
		Body:  sim.FormatBreakdownTable(results),
	}
	return rep, results, nil
}

// Fig4h reproduces Figure 4h: the Wikipedia tail-latency CDF
// (percentiles 90-100).
func Fig4h(sc Scale) (*Report, []*sim.Result, error) {
	results, err := runAll(sc, func(opt sim.Options) (*sim.Result, error) {
		return RunWikipedia(opt, sc)
	})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		ID:    "fig4h",
		Title: "Tail latency CDF (Wikipedia), percentiles 90-100",
		Body:  formatCDF(results, 90, 1),
	}
	return rep, results, nil
}

// Table2 reproduces Table II: the I/O load-imbalance factor λ per
// configuration under YCSB-E 100 KB.
func Table2(sc Scale) (*Report, map[string]float64, error) {
	results, err := runAll(sc, func(opt sim.Options) (*sim.Result, error) {
		return RunYCSB(opt, sc, BlockSize100KB)
	})
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]float64, len(results))
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s\n", "config", "λ")
	for _, r := range results {
		out[r.Config] = r.Lambda
		fmt.Fprintf(&b, "%-12s %8.1f\n", r.Config, r.Lambda)
	}
	rep := &Report{ID: "tab2", Title: "I/O load imbalance factor λ (YCSB-E, 100 KB)", Body: b.String()}
	return rep, out, nil
}

// Table3Row is one service's resource accounting.
type Table3Row struct {
	Service  string
	MemoryMB float64
	// NetworkKBs is control-plane traffic per second attributable to
	// the service.
	NetworkKBs float64
	// Detail carries service-specific counters.
	Detail string
}

// Table3 reproduces Table III: physical resources used by the statistics
// service, chunk read optimizer and chunk mover during a YCSB run with
// 1 MB blocks.
func Table3(sc Scale) (*Report, []Table3Row, error) {
	opt := sim.Options{Scheme: model.SchemeErasure, Strategy: placement.StrategyCost, Mover: true}
	cl, err := sim.New(sim.DefaultParams(sc.Seed), opt)
	if err != nil {
		return nil, nil, err
	}
	if _, err := cl.Populate(sc.Blocks, func(int) int64 { return BlockSize1MB }); err != nil {
		return nil, nil, err
	}
	wl := newYCSB(sc)
	res := cl.Run(wl, sc.Warmup, sc.Adapt, sc.Measure)

	duration := sc.Measure + sc.Adapt
	usage := cl.ResourceUsage()
	moveBytes := float64(res.Moves) * float64(BlockSize1MB) / 2 // RS(2,2) chunk = half a block
	totalRead := 0.0
	for _, rate := range res.SiteReadRate {
		totalRead += rate
	}

	rows := []Table3Row{
		{
			Service:    "Statistics",
			MemoryMB:   float64(usage.StatsBytes) / 1e6,
			NetworkKBs: float64(usage.StatsReports) * 64 / duration / 1e3,
			Detail:     fmt.Sprintf("%d tracked blocks, window %d reqs", usage.TrackedBlocks, usage.WindowRequests),
		},
		{
			Service:    "Chunk read optimizer",
			MemoryMB:   float64(usage.PlannerBytes) / 1e6,
			NetworkKBs: 0.1, // plan exchange is piggybacked on reads
			Detail:     fmt.Sprintf("%d cached plans, hit rate %.2f", usage.CachedPlans, res.Planner.HitRate()),
		},
		{
			Service:    "Chunk mover",
			MemoryMB:   2,
			NetworkKBs: moveBytes / duration / 1e3,
			Detail: fmt.Sprintf("%d moves; %.2f%% of total read traffic",
				res.Moves, 100*moveBytes/math.Max(totalRead*duration, 1)),
		},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %12s  %s\n", "service", "memory", "network", "detail")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %8.1fMB %10.1fKB/s  %s\n", r.Service, r.MemoryMB, r.NetworkKBs, r.Detail)
	}
	rep := &Report{ID: "tab3", Title: "Resources used by EC-Store services (YCSB, 1 MB blocks)", Body: b.String()}
	return rep, rows, nil
}

// formatCDF renders tail CDFs side by side.
func formatCDF(results []*sim.Result, from, step float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "pct")
	for _, r := range results {
		fmt.Fprintf(&b, " %10s", r.Config)
	}
	b.WriteString("   (ms)\n")
	for p := from; p <= 100+1e-9; p += step {
		q := math.Min(p, 100)
		fmt.Fprintf(&b, "%-6.0f", q)
		for _, r := range results {
			fmt.Fprintf(&b, " %10.2f", r.Metrics.Percentile(q)*1000)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// newYCSB builds the standard YCSB-E generator for a scale.
func newYCSB(sc Scale) *workload.YCSBE {
	return workload.NewYCSBE(sc.Blocks, 20, 1.0)
}
