package bench

import (
	"encoding/json"
	"testing"
)

func tinyGatewayScale() Scale {
	return Scale{Name: "tiny", Blocks: 1000, Warmup: 1, Measure: 2, Seed: 42}
}

func TestAblationGatewaySweep(t *testing.T) {
	rep, sweep, err := AblationGateway(tinyGatewayScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "ab-gateway" || rep.Data == nil {
		t.Fatalf("report = %+v", rep)
	}
	if len(sweep.Points) < 2 {
		t.Fatalf("sweep produced %d points, want an actual ladder", len(sweep.Points))
	}
	if sweep.MaxSustainableRPS <= 0 {
		t.Fatalf("no sustainable rate found: %+v", sweep.Points)
	}
	last := sweep.Points[len(sweep.Points)-1]
	if last.Shed == 0 {
		t.Fatalf("final overload point shed nothing: %+v", last)
	}
	// The finite queue must bound the overload tail: the sweep stops at
	// 4× the SLO, and even that point's p99 must be finite and recorded.
	if last.P99Millis <= 0 || last.P99Millis > 20*sweep.SLOMillis {
		t.Fatalf("overload p99 %vms not bounded", last.P99Millis)
	}
	for _, pt := range sweep.Points {
		if pt.SLOMet && pt.OfferedRPS > sweep.MaxSustainableRPS {
			t.Fatalf("max sustainable %v below SLO-met point %v", sweep.MaxSustainableRPS, pt.OfferedRPS)
		}
	}
}

func TestAblationGatewayDeterministic(t *testing.T) {
	_, a, err := AblationGateway(tinyGatewayScale())
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := AblationGateway(tinyGatewayScale())
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("sweep not deterministic:\n%s\n%s", aj, bj)
	}
}

func TestReportJSONWithFloatKeyedData(t *testing.T) {
	rep := &Report{ID: "ab-w2", Title: "t", Body: "b",
		Data: floatKeys(map[float64]float64{0.6: 0.012, 2: 0.015})}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("float-keyed sweep must marshal: %v", err)
	}
	var back struct {
		Data map[string]float64 `json:"data"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Data["0.6"] != 0.012 || back.Data["2"] != 0.015 {
		t.Fatalf("round-trip = %+v", back.Data)
	}
}
