// Package ilp provides a small exact optimization substrate: a dense
// two-phase simplex solver for linear programs and a branch-and-bound
// integer solver layered on top of it. EC-Store's access planner (the
// paper uses the SCIP solver) formulates Equations 1-4 of the paper as an
// integer program over binary chunk-selection and site-access variables and
// solves it here.
//
// The solver is intentionally dense and simple: access-planning instances
// have tens of variables (one per existing chunk of a requested block plus
// one per candidate site), so robustness and exactness matter far more
// than asymptotics.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota + 1 // sum <= rhs
	GE               // sum >= rhs
	EQ               // sum == rhs
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	StatusOptimal Status = iota + 1
	StatusInfeasible
	StatusUnbounded
	StatusNodeLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors returned by the solvers.
var (
	ErrInfeasible = errors.New("ilp: problem is infeasible")
	ErrUnbounded  = errors.New("ilp: problem is unbounded")
	ErrBadProblem = errors.New("ilp: malformed problem")
)

// Constraint is a single linear constraint sum_j Coeffs[Vars[j]]*x_j Op RHS.
// Vars and Coeffs are parallel slices; a variable may appear at most once.
type Constraint struct {
	Vars   []int
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a minimization linear program over non-negative variables.
// Upper bounds are expressed via UpperBounds (one entry per variable;
// math.Inf(1) means unbounded above).
type Problem struct {
	// NumVars is the number of structural variables.
	NumVars int
	// Objective holds the cost coefficient of each variable (minimized).
	Objective []float64
	// Constraints is the constraint set.
	Constraints []Constraint
	// UpperBounds optionally bounds variables above. Nil means all
	// variables are unbounded above.
	UpperBounds []float64
}

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars = %d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("%w: objective has %d coefficients, want %d", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	if p.UpperBounds != nil && len(p.UpperBounds) != p.NumVars {
		return fmt.Errorf("%w: upper bounds has %d entries, want %d", ErrBadProblem, len(p.UpperBounds), p.NumVars)
	}
	for ci, c := range p.Constraints {
		if len(c.Vars) != len(c.Coeffs) {
			return fmt.Errorf("%w: constraint %d has %d vars but %d coeffs", ErrBadProblem, ci, len(c.Vars), len(c.Coeffs))
		}
		if c.Op != LE && c.Op != GE && c.Op != EQ {
			return fmt.Errorf("%w: constraint %d has invalid op", ErrBadProblem, ci)
		}
		seen := make(map[int]bool, len(c.Vars))
		for _, v := range c.Vars {
			if v < 0 || v >= p.NumVars {
				return fmt.Errorf("%w: constraint %d references variable %d", ErrBadProblem, ci, v)
			}
			if seen[v] {
				return fmt.Errorf("%w: constraint %d references variable %d twice", ErrBadProblem, ci, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// LPSolution is the result of an LP solve.
type LPSolution struct {
	Status    Status
	Objective float64
	X         []float64
}

const eps = 1e-9

// SolveLP solves the linear relaxation of p (ignoring any integrality
// intent) with a two-phase dense simplex using Bland's anti-cycling rule.
func SolveLP(p *Problem) (*LPSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t, err := newTableau(p)
	if err != nil {
		return nil, err
	}
	return t.solve()
}

// tableau is a dense simplex tableau in standard form:
// minimize c*x subject to Ax = b, x >= 0, with b >= 0.
type tableau struct {
	m, n int // constraints, total columns (structural+slack+artificial)

	nStruct int   // structural variable count
	art     []int // artificial variable column indices

	a     [][]float64 // m x n coefficient rows
	b     []float64   // m right-hand sides (>= 0)
	c     []float64   // n phase-2 costs
	basis []int       // m basic-variable column indices
}

// newTableau converts a Problem into standard form. Each structural upper
// bound becomes an explicit <= row; GE rows get surplus+artificial columns;
// EQ rows get an artificial column.
func newTableau(p *Problem) (*tableau, error) {
	rows := make([]Constraint, 0, len(p.Constraints)+p.NumVars)
	rows = append(rows, p.Constraints...)
	if p.UpperBounds != nil {
		for v, ub := range p.UpperBounds {
			if math.IsInf(ub, 1) {
				continue
			}
			if ub < 0 {
				return nil, fmt.Errorf("%w: variable %d has negative upper bound %v", ErrBadProblem, v, ub)
			}
			rows = append(rows, Constraint{Vars: []int{v}, Coeffs: []float64{1}, Op: LE, RHS: ub})
		}
	}

	m := len(rows)
	// Count extra columns.
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		rhs := r.RHS
		op := r.Op
		if rhs < 0 { // flipping the row flips the relation
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := p.NumVars + nSlack + nArt

	t := &tableau{
		m:       m,
		n:       n,
		nStruct: p.NumVars,
		a:       make([][]float64, m),
		b:       make([]float64, m),
		c:       make([]float64, n),
		basis:   make([]int, m),
	}
	copy(t.c, p.Objective)

	slackCol := p.NumVars
	artCol := p.NumVars + nSlack
	for i, r := range rows {
		row := make([]float64, n)
		sign := 1.0
		rhs := r.RHS
		op := r.Op
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		for j, v := range r.Vars {
			row[v] = sign * r.Coeffs[j]
		}
		switch op {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			t.art = append(t.art, artCol)
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			t.art = append(t.art, artCol)
			artCol++
		}
		t.a[i] = row
		t.b[i] = rhs
	}
	return t, nil
}

// solve runs phase 1 (if artificials exist) then phase 2, returning the
// structural solution.
func (t *tableau) solve() (*LPSolution, error) {
	if len(t.art) > 0 {
		phase1 := make([]float64, t.n)
		for _, col := range t.art {
			phase1[col] = 1
		}
		obj, status := t.optimize(phase1)
		if status == StatusUnbounded {
			// Phase-1 objective is bounded below by 0; unbounded
			// indicates a numerical breakdown.
			return nil, fmt.Errorf("ilp: phase-1 simplex reported unbounded")
		}
		if obj > 1e-7 {
			return &LPSolution{Status: StatusInfeasible}, nil
		}
		t.driveOutArtificials()
	}
	obj, status := t.optimize(t.c)
	if status == StatusUnbounded {
		return &LPSolution{Status: StatusUnbounded}, nil
	}
	x := make([]float64, t.nStruct)
	for i, col := range t.basis {
		if col < t.nStruct {
			x[col] = t.b[i]
		}
	}
	return &LPSolution{Status: StatusOptimal, Objective: obj, X: x}, nil
}

// optimize runs primal simplex minimizing cost over the current basis.
// It returns the final objective value.
func (t *tableau) optimize(cost []float64) (float64, Status) {
	// reduced[j] = cost[j] - cB * B^-1 A_j, maintained implicitly by
	// recomputing from the tableau rows each iteration; with m,n in the
	// low hundreds this is fast enough and numerically transparent.
	for iter := 0; iter < 50000; iter++ {
		// y = cB applied to rows; reduced cost r_j = cost_j - sum_i cB_i a_ij.
		entering := -1
		for j := 0; j < t.n; j++ {
			if t.isBasic(j) {
				continue
			}
			rj := cost[j]
			for i := 0; i < t.m; i++ {
				cb := cost[t.basis[i]]
				if cb != 0 {
					rj -= cb * t.a[i][j]
				}
			}
			if rj < -eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering < 0 {
			var obj float64
			for i := 0; i < t.m; i++ {
				obj += cost[t.basis[i]] * t.b[i]
			}
			return obj, StatusOptimal
		}

		// Ratio test, Bland tie-break on smallest basis column.
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][entering]
			if aij > eps {
				ratio := t.b[i] / aij
				if ratio < best-eps || (ratio < best+eps && (leaving < 0 || t.basis[i] < t.basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving < 0 {
			return 0, StatusUnbounded
		}
		t.pivot(leaving, entering)
	}
	// Iteration limit: treat as numerical failure; report current value.
	var obj float64
	for i := 0; i < t.m; i++ {
		obj += cost[t.basis[i]] * t.b[i]
	}
	return obj, StatusOptimal
}

// driveOutArtificials pivots remaining artificial variables out of the
// basis (or verifies their rows are redundant) after phase 1.
func (t *tableau) driveOutArtificials() {
	artSet := make(map[int]bool, len(t.art))
	for _, col := range t.art {
		artSet[col] = true
	}
	for i := 0; i < t.m; i++ {
		if !artSet[t.basis[i]] {
			continue
		}
		// The artificial is basic at value 0; pivot in any
		// non-artificial column with a non-zero coefficient.
		pivoted := false
		for j := 0; j < t.n; j++ {
			if artSet[j] || t.isBasic(j) {
				continue
			}
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so the artificial stays basic
			// at 0 and can never re-enter with non-zero value.
			for j := range t.a[i] {
				if !artSet[j] {
					t.a[i][j] = 0
				}
			}
			t.b[i] = 0
		}
	}
	// Make artificial columns unattractive for phase 2.
	for _, col := range t.art {
		for i := 0; i < t.m; i++ {
			if t.basis[i] != col {
				t.a[i][col] = 0
			}
		}
	}
}

func (t *tableau) isBasic(col int) bool {
	for _, b := range t.basis {
		if b == col {
			return true
		}
	}
	return false
}

// pivot performs a Gauss-Jordan pivot making column `col` basic in row `row`.
func (t *tableau) pivot(row, col int) {
	t.basis[row] = col
	pv := t.a[row][col]
	inv := 1 / pv
	for j := 0; j < t.n; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	t.a[row][col] = 1 // exact

	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.b[i] -= f * t.b[row]
		t.a[i][col] = 0 // exact
		if t.b[i] < 0 && t.b[i] > -1e-9 {
			t.b[i] = 0
		}
	}
}
