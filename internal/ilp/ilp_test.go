package ilp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
		ok   bool
	}{
		{
			name: "valid",
			p: Problem{
				NumVars:   2,
				Objective: []float64{1, 1},
				Constraints: []Constraint{
					{Vars: []int{0, 1}, Coeffs: []float64{1, 1}, Op: GE, RHS: 1},
				},
			},
			ok: true,
		},
		{name: "no vars", p: Problem{NumVars: 0}, ok: false},
		{
			name: "objective length",
			p:    Problem{NumVars: 2, Objective: []float64{1}},
			ok:   false,
		},
		{
			name: "bad var index",
			p: Problem{
				NumVars:   1,
				Objective: []float64{1},
				Constraints: []Constraint{
					{Vars: []int{1}, Coeffs: []float64{1}, Op: LE, RHS: 1},
				},
			},
			ok: false,
		},
		{
			name: "duplicate var",
			p: Problem{
				NumVars:   1,
				Objective: []float64{1},
				Constraints: []Constraint{
					{Vars: []int{0, 0}, Coeffs: []float64{1, 1}, Op: LE, RHS: 1},
				},
			},
			ok: false,
		},
		{
			name: "ragged constraint",
			p: Problem{
				NumVars:   1,
				Objective: []float64{1},
				Constraints: []Constraint{
					{Vars: []int{0}, Coeffs: []float64{1, 2}, Op: LE, RHS: 1},
				},
			},
			ok: false,
		},
		{
			name: "invalid op",
			p: Problem{
				NumVars:   1,
				Objective: []float64{1},
				Constraints: []Constraint{
					{Vars: []int{0}, Coeffs: []float64{1}, Op: 0, RHS: 1},
				},
			},
			ok: false,
		},
		{
			name: "bounds length",
			p:    Problem{NumVars: 2, Objective: []float64{1, 1}, UpperBounds: []float64{1}},
			ok:   false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if ok := err == nil; ok != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
			if err != nil && !errors.Is(err, ErrBadProblem) {
				t.Fatalf("err = %v, want ErrBadProblem", err)
			}
		})
	}
}

func TestSolveLPSimple(t *testing.T) {
	// min x+y s.t. x+y >= 3, x <= 2 -> optimum 3 (e.g. x=2, y=1).
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Vars: []int{0, 1}, Coeffs: []float64{1, 1}, Op: GE, RHS: 3},
		},
		UpperBounds: []float64{2, math.Inf(1)},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
	if sol.X[0] > 2+1e-9 {
		t.Fatalf("x exceeds upper bound: %v", sol.X[0])
	}
}

func TestSolveLPClassic(t *testing.T) {
	// Maximize 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 (classic Dantzig
	// example): optimum 36 at (2, 6). We minimize the negation.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Constraints: []Constraint{
			{Vars: []int{0}, Coeffs: []float64{1}, Op: LE, RHS: 4},
			{Vars: []int{1}, Coeffs: []float64{2}, Op: LE, RHS: 12},
			{Vars: []int{0, 1}, Coeffs: []float64{3, 2}, Op: LE, RHS: 18},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective+36) > 1e-6 {
		t.Fatalf("objective = %v, want -36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v, want (2, 6)", sol.X)
	}
}

func TestSolveLPEquality(t *testing.T) {
	// min 2x+y s.t. x+y = 5, x >= 1 -> x=1? No: min 2x+y with x+y=5
	// means y=5-x, objective x+5, minimized at smallest x => x=1 gives 6.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 1},
		Constraints: []Constraint{
			{Vars: []int{0, 1}, Coeffs: []float64{1, 1}, Op: EQ, RHS: 5},
			{Vars: []int{0}, Coeffs: []float64{1}, Op: GE, RHS: 1},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-6) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 6", sol.Status, sol.Objective)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Vars: []int{0}, Coeffs: []float64{1}, Op: GE, RHS: 5},
			{Vars: []int{0}, Coeffs: []float64{1}, Op: LE, RHS: 2},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	// min -x with x unbounded above.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Vars: []int{0}, Coeffs: []float64{1}, Op: GE, RHS: 0},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// x - y <= -2 with min x+y: flipping to -x + y >= 2 => y=2, x=0.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Vars: []int{0, 1}, Coeffs: []float64{1, -1}, Op: LE, RHS: -2},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestSolveIntKnapsack(t *testing.T) {
	// Maximize 10a+13b+7c s.t. 3a+4b+2c <= 6, binary.
	// Optima: a+c: 3+2=5 weight -> 17; b+c: 4+2=6 -> 20. Want 20.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-10, -13, -7},
		Constraints: []Constraint{
			{Vars: []int{0, 1, 2}, Coeffs: []float64{3, 4, 2}, Op: LE, RHS: 6},
		},
		UpperBounds: []float64{1, 1, 1},
	}
	sol, err := SolveInt(p, []int{0, 1, 2}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective+20) > 1e-6 {
		t.Fatalf("objective = %v, want -20", sol.Objective)
	}
	if sol.X[1] != 1 || sol.X[2] != 1 || sol.X[0] != 0 {
		t.Fatalf("x = %v, want (0,1,1)", sol.X)
	}
}

func TestSolveIntSetCover(t *testing.T) {
	// Elements {1,2,3}; sets A={1,2} cost 3, B={2,3} cost 3, C={1,2,3}
	// cost 5, D={3} cost 1. Optimal: A+D cost 4.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{3, 3, 5, 1},
		Constraints: []Constraint{
			{Vars: []int{0, 2}, Coeffs: []float64{1, 1}, Op: GE, RHS: 1},       // element 1
			{Vars: []int{0, 1, 2}, Coeffs: []float64{1, 1, 1}, Op: GE, RHS: 1}, // element 2
			{Vars: []int{1, 2, 3}, Coeffs: []float64{1, 1, 1}, Op: GE, RHS: 1}, // element 3
		},
		UpperBounds: []float64{1, 1, 1, 1},
	}
	sol, err := SolveInt(p, []int{0, 1, 2, 3}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 4", sol.Status, sol.Objective)
	}
}

func TestSolveIntInfeasible(t *testing.T) {
	// Binary x with x >= 2 is infeasible.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Vars: []int{0}, Coeffs: []float64{1}, Op: GE, RHS: 2},
		},
		UpperBounds: []float64{1},
	}
	sol, err := SolveInt(p, []int{0}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveIntFractionalRelaxation(t *testing.T) {
	// min -(x+y) s.t. 2x+2y <= 3, binary: LP relaxation is fractional
	// (x+y = 1.5); integer optimum is 1 (either var).
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Vars: []int{0, 1}, Coeffs: []float64{2, 2}, Op: LE, RHS: 3},
		},
		UpperBounds: []float64{1, 1},
	}
	sol, err := SolveInt(p, []int{0, 1}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Objective+1) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal -1", sol.Status, sol.Objective)
	}
	if sol.Nodes < 2 {
		t.Fatalf("expected branching, explored %d nodes", sol.Nodes)
	}
}

func TestSolveIntNodeLimit(t *testing.T) {
	// A problem that needs branching, with MaxNodes=1 so the limit hits
	// before an incumbent is found.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Vars: []int{0, 1}, Coeffs: []float64{2, 2}, Op: LE, RHS: 3},
		},
		UpperBounds: []float64{1, 1},
	}
	sol, err := SolveInt(p, []int{0, 1}, SolveOptions{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusNodeLimit {
		t.Fatalf("status = %v, want node-limit", sol.Status)
	}
}

// TestSolveIntMatchesExhaustive cross-checks branch and bound against
// exhaustive enumeration on random binary covering problems of the same
// shape as the paper's access-planning ILP.
func TestSolveIntMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	check := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)  // 3..7 binary variables
		mc := 1 + r.Intn(4) // 1..4 GE cover constraints
		p := &Problem{
			NumVars:     n,
			Objective:   make([]float64, n),
			UpperBounds: make([]float64, n),
		}
		for i := 0; i < n; i++ {
			p.Objective[i] = float64(1 + r.Intn(20))
			p.UpperBounds[i] = 1
		}
		for c := 0; c < mc; c++ {
			var vars []int
			var coeffs []float64
			for v := 0; v < n; v++ {
				if r.Intn(2) == 1 {
					vars = append(vars, v)
					coeffs = append(coeffs, 1)
				}
			}
			if len(vars) == 0 {
				continue
			}
			rhs := float64(1 + r.Intn(len(vars)))
			p.Constraints = append(p.Constraints, Constraint{Vars: vars, Coeffs: coeffs, Op: GE, RHS: rhs})
		}

		got, err := SolveInt(p, allVars(n), SolveOptions{})
		if err != nil {
			return false
		}
		want, feasible := exhaustiveBinaryMin(p)
		if !feasible {
			return got.Status == StatusInfeasible
		}
		return got.Status == StatusOptimal && math.Abs(got.Objective-want) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func exhaustiveBinaryMin(p *Problem) (float64, bool) {
	n := p.NumVars
	best := math.Inf(1)
	feasible := false
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, c := range p.Constraints {
			var sum float64
			for i, v := range c.Vars {
				if mask&(1<<v) != 0 {
					sum += c.Coeffs[i]
				}
			}
			switch c.Op {
			case LE:
				ok = ok && sum <= c.RHS+1e-9
			case GE:
				ok = ok && sum >= c.RHS-1e-9
			case EQ:
				ok = ok && math.Abs(sum-c.RHS) < 1e-9
			}
		}
		if !ok {
			continue
		}
		var obj float64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				obj += p.Objective[v]
			}
		}
		if obj < best {
			best = obj
			feasible = true
		}
	}
	return best, feasible
}

func allVars(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	return vs
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Op.String mismatch")
	}
	if StatusOptimal.String() != "optimal" || StatusInfeasible.String() != "infeasible" {
		t.Fatal("Status.String mismatch")
	}
}

func BenchmarkSolveIntAccessShaped(b *testing.B) {
	// 10 blocks x 4 candidate sites each, 16 site variables: the shape
	// of a typical EC-Store access-planning instance.
	rng := rand.New(rand.NewSource(5))
	const blocks, sitesPerBlock, sites = 10, 4, 16
	nVars := blocks*sitesPerBlock + sites
	p := &Problem{
		NumVars:     nVars,
		Objective:   make([]float64, nVars),
		UpperBounds: make([]float64, nVars),
	}
	for i := range p.UpperBounds {
		p.UpperBounds[i] = 1
	}
	for bI := 0; bI < blocks; bI++ {
		vars := make([]int, sitesPerBlock)
		coeffs := make([]float64, sitesPerBlock)
		for c := 0; c < sitesPerBlock; c++ {
			v := bI*sitesPerBlock + c
			vars[c] = v
			coeffs[c] = 1
			p.Objective[v] = 1 + rng.Float64()
		}
		p.Constraints = append(p.Constraints, Constraint{Vars: vars, Coeffs: coeffs, Op: GE, RHS: 2})
	}
	for s := 0; s < sites; s++ {
		v := blocks*sitesPerBlock + s
		p.Objective[v] = 5 * (1 + rng.Float64())
		var vars []int
		var coeffs []float64
		for bI := 0; bI < blocks; bI++ {
			cv := bI*sitesPerBlock + s%sitesPerBlock
			vars = append(vars, cv)
			coeffs = append(coeffs, -1)
		}
		vars = append(vars, v)
		coeffs = append(coeffs, float64(blocks))
		p.Constraints = append(p.Constraints, Constraint{Vars: vars, Coeffs: coeffs, Op: GE, RHS: 0})
	}
	ints := allVars(nVars)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveInt(p, ints, SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
