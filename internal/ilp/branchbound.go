package ilp

import (
	"math"
	"sort"
)

// IntSolution is the result of an integer solve.
type IntSolution struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// SolveOptions tunes the branch-and-bound search.
type SolveOptions struct {
	// MaxNodes caps the number of explored nodes. Zero means the
	// default of 20000. When the cap is hit the best incumbent found so
	// far is returned with StatusNodeLimit (or StatusInfeasible if none).
	MaxNodes int
	// IntTolerance is the distance from an integer at which a value is
	// considered integral. Zero means the default of 1e-6.
	IntTolerance float64
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.MaxNodes == 0 {
		o.MaxNodes = 20000
	}
	if o.IntTolerance == 0 {
		o.IntTolerance = 1e-6
	}
	return o
}

// bbNode is one branch-and-bound subproblem, described by additional
// variable bounds layered over the root problem.
type bbNode struct {
	lower map[int]float64 // variable -> lower bound
	upper map[int]float64 // variable -> upper bound
	bound float64         // parent LP objective (lower bound on this node)
}

// SolveInt minimizes p subject to the additional requirement that every
// variable listed in intVars takes an integral value. It runs best-first
// branch and bound over LP relaxations.
func SolveInt(p *Problem, intVars []int, opts SolveOptions) (*IntSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	intSet := make(map[int]bool, len(intVars))
	for _, v := range intVars {
		intSet[v] = true
	}

	incumbent := math.Inf(1)
	var incumbentX []float64
	nodes := 0
	limited := false

	// Best-first queue ordered by parent bound; ties are fine.
	queue := []bbNode{{bound: math.Inf(-1)}}
	for len(queue) > 0 {
		if nodes >= opts.MaxNodes {
			limited = true
			break
		}
		// Pop the node with the smallest bound.
		bestIdx := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].bound < queue[bestIdx].bound {
				bestIdx = i
			}
		}
		node := queue[bestIdx]
		queue[bestIdx] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if node.bound >= incumbent-1e-9 {
			continue // cannot improve
		}
		nodes++

		sub := applyBounds(p, node)
		sol, err := SolveLP(sub)
		if err != nil {
			return nil, err
		}
		if sol.Status == StatusUnbounded {
			return &IntSolution{Status: StatusUnbounded, Nodes: nodes}, nil
		}
		if sol.Status != StatusOptimal || sol.Objective >= incumbent-1e-9 {
			continue
		}

		branchVar, frac := mostFractional(sol.X, intSet, opts.IntTolerance)
		if branchVar < 0 {
			// Integral: new incumbent.
			incumbent = sol.Objective
			incumbentX = roundIntegral(sol.X, intSet)
			continue
		}
		_ = frac

		val := sol.X[branchVar]
		down := cloneNode(node, sol.Objective)
		setUpper(&down, branchVar, math.Floor(val))
		up := cloneNode(node, sol.Objective)
		setLower(&up, branchVar, math.Ceil(val))
		queue = append(queue, down, up)
	}

	if incumbentX == nil {
		status := StatusInfeasible
		if limited {
			status = StatusNodeLimit
		}
		return &IntSolution{Status: status, Nodes: nodes}, nil
	}
	status := StatusOptimal
	if limited {
		status = StatusNodeLimit
	}
	return &IntSolution{Status: status, Objective: incumbent, X: incumbentX, Nodes: nodes}, nil
}

// applyBounds returns a copy of p with the node's extra bounds folded in:
// upper bounds tighten UpperBounds, lower bounds become GE rows.
func applyBounds(p *Problem, node bbNode) *Problem {
	sub := &Problem{
		NumVars:     p.NumVars,
		Objective:   p.Objective,
		Constraints: p.Constraints,
	}
	if p.UpperBounds != nil || len(node.upper) > 0 {
		ub := make([]float64, p.NumVars)
		for i := range ub {
			if p.UpperBounds != nil {
				ub[i] = p.UpperBounds[i]
			} else {
				ub[i] = math.Inf(1)
			}
		}
		for v, b := range node.upper {
			if b < ub[v] {
				ub[v] = b
			}
		}
		sub.UpperBounds = ub
	}
	if len(node.lower) > 0 {
		cons := make([]Constraint, len(p.Constraints), len(p.Constraints)+len(node.lower))
		copy(cons, p.Constraints)
		// Deterministic order keeps solves reproducible.
		vars := make([]int, 0, len(node.lower))
		for v := range node.lower {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		for _, v := range vars {
			cons = append(cons, Constraint{Vars: []int{v}, Coeffs: []float64{1}, Op: GE, RHS: node.lower[v]})
		}
		sub.Constraints = cons
	}
	return sub
}

// mostFractional returns the integer-constrained variable farthest from an
// integer, or -1 if all are integral within tol.
func mostFractional(x []float64, intSet map[int]bool, tol float64) (int, float64) {
	best := -1
	bestDist := tol
	for v := range x {
		if !intSet[v] {
			continue
		}
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			bestDist = dist
			best = v
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestDist
}

// roundIntegral snaps near-integral entries of integer variables exactly.
func roundIntegral(x []float64, intSet map[int]bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for v := range out {
		if intSet[v] {
			out[v] = math.Round(out[v])
		}
	}
	return out
}

func cloneNode(n bbNode, bound float64) bbNode {
	c := bbNode{bound: bound}
	if len(n.lower) > 0 {
		c.lower = make(map[int]float64, len(n.lower))
		for k, v := range n.lower {
			c.lower[k] = v
		}
	}
	if len(n.upper) > 0 {
		c.upper = make(map[int]float64, len(n.upper))
		for k, v := range n.upper {
			c.upper[k] = v
		}
	}
	return c
}

func setUpper(n *bbNode, v int, b float64) {
	if n.upper == nil {
		n.upper = map[int]float64{}
	}
	if cur, ok := n.upper[v]; !ok || b < cur {
		n.upper[v] = b
	}
}

func setLower(n *bbNode, v int, b float64) {
	if n.lower == nil {
		n.lower = map[int]float64{}
	}
	if cur, ok := n.lower[v]; !ok || b > cur {
		n.lower[v] = b
	}
}
