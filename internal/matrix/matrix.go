// Package matrix provides dense matrix algebra over GF(2^8) as required by
// the Reed-Solomon codec: construction, multiplication, row reduction and
// inversion. Matrices are small (on the order of (k+r) x k), so the
// implementation favours clarity and exact arithmetic over blocking or
// vectorization.
package matrix

import (
	"errors"
	"fmt"
	"strings"

	"ecstore/internal/gf256"
)

// ErrSingular is returned when attempting to invert a singular matrix.
var ErrSingular = errors.New("matrix is singular")

// Matrix is a dense, row-major matrix over GF(2^8).
type Matrix struct {
	rows int
	cols int
	data []byte
}

// New returns a zero matrix with the given dimensions. It panics if either
// dimension is non-positive, since a zero-dimension matrix is always a
// programming error in the codec layer.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("matrix: empty row set")
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols Vandermonde matrix with entry (i, j)
// equal to i^j in GF(2^8). Any k rows of a Vandermonde matrix with distinct
// evaluation points are linearly independent, which is the property the
// erasure codec relies on.
func Vandermonde(rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf256.Pow(byte(i), j))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) byte { return m.data[r*m.cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// Row returns a mutable view of row r.
func (m *Matrix) Row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m * o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	p := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.Row(i)
		prow := p.Row(i)
		for kk := 0; kk < m.cols; kk++ {
			a := mrow[kk]
			if a == 0 {
				continue
			}
			gf256.MulAddSlice(a, o.Row(kk), prow)
		}
	}
	return p, nil
}

// SubMatrix returns a copy of the rectangular region [r0, r1) x [c0, c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) (*Matrix, error) {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		return nil, fmt.Errorf("matrix: invalid sub-matrix [%d:%d, %d:%d) of %dx%d", r0, r1, c0, c1, m.rows, m.cols)
	}
	s := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.Row(i-r0), m.Row(i)[c0:c1])
	}
	return s, nil
}

// SelectRows returns a new matrix assembled from the given row indices,
// in order. Duplicate indices are allowed.
func (m *Matrix) SelectRows(idx []int) (*Matrix, error) {
	if len(idx) == 0 {
		return nil, errors.New("matrix: no rows selected")
	}
	s := New(len(idx), m.cols)
	for i, r := range idx {
		if r < 0 || r >= m.rows {
			return nil, fmt.Errorf("matrix: row index %d out of range [0,%d)", r, m.rows)
		}
		copy(s.Row(i), m.Row(r))
	}
	return s, nil
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// Invert returns the inverse of a square matrix via Gauss-Jordan
// elimination over GF(2^8). It returns ErrSingular if no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	work := m.Clone()
	inv := Identity(n)

	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work.SwapRows(col, pivot)
		inv.SwapRows(col, pivot)

		// Scale the pivot row so the diagonal entry is 1.
		if p := work.At(col, col); p != 1 {
			ip := gf256.Inv(p)
			gf256.MulSlice(ip, work.Row(col), work.Row(col))
			gf256.MulSlice(ip, inv.Row(col), inv.Row(col))
		}

		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			gf256.MulAddSlice(f, work.Row(col), work.Row(r))
			gf256.MulAddSlice(f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%02x", m.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
