package matrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ecstore/internal/gf256"
)

func TestNewPanicsOnInvalidDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected contents:\n%s", m)
	}

	if _, err := FromRows([][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestFromRowsCopies(t *testing.T) {
	row := []byte{1, 2}
	m, err := FromRows([][]byte{row})
	if err != nil {
		t.Fatal(err)
	}
	row[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromRows aliased caller data")
	}
}

func TestIdentityMul(t *testing.T) {
	id := Identity(4)
	m := randomMatrix(rand.New(rand.NewSource(1)), 4, 4)
	p, err := id.Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(m) {
		t.Fatal("I*M != M")
	}
	p2, err := m.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Equal(m) {
		t.Fatal("M*I != M")
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMulAgainstScalarDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 3, 5)
	b := randomMatrix(rng, 5, 2)
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			var want byte
			for kk := 0; kk < 5; kk++ {
				want ^= gf256.Mul(a.At(i, kk), b.At(kk, j))
			}
			if p.At(i, j) != want {
				t.Fatalf("product (%d,%d) = %#x, want %#x", i, j, p.At(i, j), want)
			}
		}
	}
}

func TestInvertIdentity(t *testing.T) {
	id := Identity(5)
	inv, err := id.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(id) {
		t.Fatal("I^-1 != I")
	}
}

func TestInvertSingular(t *testing.T) {
	m, err := FromRows([][]byte{
		{1, 2, 3},
		{2, 4, 6}, // 2 * row 0 in GF(2^8): Mul(2,1)=2, Mul(2,2)=4, Mul(2,3)=6
		{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Invert singular = %v, want ErrSingular", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := New(2, 3).Invert(); err == nil {
		t.Fatal("non-square invert accepted")
	}
}

func TestInvertRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	check := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		m := randomInvertibleMatrix(rng, n)
		inv, err := m.Invert()
		if err != nil {
			return false
		}
		p, err := m.Mul(inv)
		if err != nil {
			return false
		}
		return p.Equal(Identity(n))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVandermondeAnyKRowsInvertible(t *testing.T) {
	// The defining property used by the erasure codec: any k rows of a
	// Vandermonde matrix with distinct evaluation points are independent.
	const k, n = 3, 6
	v := Vandermonde(n, k)
	idx := []int{0, 1, 2}
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			sub, err := v.SelectRows(idx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("rows %v not invertible: %v", idx, err)
			}
			return
		}
		for r := start; r < n; r++ {
			idx[pos] = r
			rec(pos+1, r+1)
		}
	}
	rec(0, 0)
}

func TestSubMatrix(t *testing.T) {
	m := Vandermonde(4, 4)
	s, err := m.SubMatrix(1, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 2 || s.Cols() != 2 {
		t.Fatalf("sub-matrix shape %dx%d", s.Rows(), s.Cols())
	}
	if s.At(0, 0) != m.At(1, 0) || s.At(1, 1) != m.At(2, 1) {
		t.Fatal("sub-matrix contents wrong")
	}
	if _, err := m.SubMatrix(0, 5, 0, 1); err == nil {
		t.Fatal("out-of-range sub-matrix accepted")
	}
}

func TestSelectRows(t *testing.T) {
	m := Vandermonde(4, 2)
	s, err := m.SelectRows([]int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 1) != m.At(3, 1) || s.At(1, 1) != m.At(0, 1) {
		t.Fatal("selected rows wrong")
	}
	if _, err := m.SelectRows([]int{4}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := m.SelectRows(nil); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestSwapRows(t *testing.T) {
	m, err := FromRows([][]byte{{1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	m.SwapRows(0, 1)
	if m.At(0, 0) != 2 || m.At(1, 0) != 1 {
		t.Fatal("rows not swapped")
	}
	m.SwapRows(1, 1) // no-op must not corrupt
	if m.At(1, 0) != 1 {
		t.Fatal("self-swap corrupted row")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Identity(2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = byte(rng.Intn(256))
		}
	}
	return m
}

func randomInvertibleMatrix(rng *rand.Rand, n int) *Matrix {
	for {
		m := randomMatrix(rng, n, n)
		if _, err := m.Invert(); err == nil {
			return m
		}
	}
}
