package storage

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// testChecksumSuite exercises the at-rest integrity contract against any
// store + its RawMutator hook.
func testChecksumSuite(t *testing.T, s Store) {
	t.Helper()
	mut := s.(RawMutator)

	// Whole-chunk Put lands sealed with a matching CRC.
	data := []byte("the quick brown fox jumps over the lazy dog")
	if err := s.Put(ref("b", 0), data); err != nil {
		t.Fatal(err)
	}
	check, err := s.Verify(ref("b", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !check.Sealed || check.Length != int64(len(data)) || check.CRC != Checksum(data) {
		t.Fatalf("Verify = %+v, want sealed len=%d crc=%08x", check, len(data), Checksum(data))
	}

	// A payload bit flip is caught by Get, GetAt(full window), Verify.
	if err := mut.MutateRaw(ref("b", 0), func(raw []byte) []byte {
		raw[FramePayloadOffset(raw)+3] ^= 0x40
		return raw
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref("b", 0)); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("Get after bit flip err = %v, want ErrCorruptChunk", err)
	}
	if _, err := s.GetAt(ref("b", 0), 0, int64(len(data))); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("GetAt full window after bit flip err = %v, want ErrCorruptChunk", err)
	}
	if _, err := s.Verify(ref("b", 0)); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("Verify after bit flip err = %v, want ErrCorruptChunk", err)
	}

	// A partial window that misses the flipped byte is structurally fine
	// (documented: partial-window bit rot is the scrubber's job) …
	if _, err := s.GetAt(ref("b", 0), 8, 4); err != nil {
		t.Fatalf("partial GetAt after bit flip err = %v", err)
	}

	// … but truncation is caught even by partial windows.
	if err := s.Put(ref("b", 1), data); err != nil {
		t.Fatal(err)
	}
	if err := mut.MutateRaw(ref("b", 1), func(raw []byte) []byte {
		return raw[:len(raw)-5]
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetAt(ref("b", 1), 0, 4); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("GetAt after truncation err = %v, want ErrCorruptChunk", err)
	}
	if _, err := s.Get(ref("b", 1)); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("Get after truncation err = %v, want ErrCorruptChunk", err)
	}

	// Streamed chunks are unsealed until Seal; Seal makes them sealed and
	// byte accounting stays in payload coordinates throughout.
	if err := s.PutAt(ref("c", 0), 0, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAt(ref("c", 0), 6, []byte("world")); err != nil {
		t.Fatal(err)
	}
	check, err = s.Verify(ref("c", 0))
	if err != nil {
		t.Fatal(err)
	}
	if check.Sealed {
		t.Fatalf("streamed chunk already sealed: %+v", check)
	}
	got, err := s.Get(ref("c", 0))
	if err != nil || string(got) != "hello world" {
		t.Fatalf("streamed Get = %q, %v", got, err)
	}
	check, err = s.Seal(ref("c", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !check.Sealed || check.CRC != Checksum([]byte("hello world")) {
		t.Fatalf("Seal = %+v", check)
	}
	// Seal is idempotent.
	if again, err := s.Seal(ref("c", 0)); err != nil || again != check {
		t.Fatalf("second Seal = %+v, %v", again, err)
	}

	// Writing into a sealed chunk clears the seal instead of serving a
	// stale CRC.
	if err := s.PutAt(ref("c", 0), 0, []byte("jello")); err != nil {
		t.Fatal(err)
	}
	check, err = s.Verify(ref("c", 0))
	if err != nil || check.Sealed {
		t.Fatalf("Verify after reopen = %+v, %v", check, err)
	}

	// Legacy (headerless) chunks: served as-is, sealable in place.
	if err := s.Put(ref("d", 0), []byte("old data")); err != nil {
		t.Fatal(err)
	}
	if err := mut.MutateRaw(ref("d", 0), func([]byte) []byte {
		return []byte("old data") // strip the frame entirely
	}); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(ref("d", 0))
	if err != nil || string(got) != "old data" {
		t.Fatalf("legacy Get = %q, %v", got, err)
	}
	if got, err := s.GetAt(ref("d", 0), 4, 4); err != nil || string(got) != "data" {
		t.Fatalf("legacy GetAt = %q, %v", got, err)
	}
	check, err = s.Seal(ref("d", 0))
	if err != nil || !check.Sealed || check.CRC != Checksum([]byte("old data")) {
		t.Fatalf("legacy Seal = %+v, %v", check, err)
	}

	// Byte accounting is payload-only for every write path above.
	want := int64(len(data))*2 - 5 + int64(len("hello world")) + int64(len("old data"))
	if b, err := s.Bytes(); err != nil || b != want {
		t.Fatalf("Bytes = %d (%v), want %d", b, err, want)
	}

	// Verify/Seal on a missing chunk.
	if _, err := s.Verify(ref("ghost", 9)); !errors.Is(err, ErrChunkNotFound) {
		t.Fatalf("Verify missing err = %v", err)
	}
	if _, err := s.Seal(ref("ghost", 9)); !errors.Is(err, ErrChunkNotFound) {
		t.Fatalf("Seal missing err = %v", err)
	}
}

func TestMemStoreChecksums(t *testing.T) {
	testChecksumSuite(t, NewMemStore())
}

func TestDiskStoreChecksums(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testChecksumSuite(t, s)
}

func TestServiceVerifyChunk(t *testing.T) {
	store := NewMemStore()
	svc := NewService(ServiceConfig{Site: 1}, store)
	ctx := context.Background()

	payload := bytes.Repeat([]byte("ec"), 512)
	if err := svc.PutChunk(ctx, ref("v", 0), payload); err != nil {
		t.Fatal(err)
	}
	check, err := svc.VerifyChunk(ctx, ref("v", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !check.Sealed || check.Length != int64(len(payload)) {
		t.Fatalf("VerifyChunk = %+v", check)
	}

	// VerifyChunk seals a streamed chunk.
	if err := svc.PutChunkStream(ctx, ref("v", 1), 0, payload); err != nil {
		t.Fatal(err)
	}
	check, err = svc.VerifyChunk(ctx, ref("v", 1))
	if err != nil || !check.Sealed {
		t.Fatalf("VerifyChunk streamed = %+v, %v", check, err)
	}

	// Corruption surfaces as ErrCorruptChunk.
	if err := store.MutateRaw(ref("v", 0), func(raw []byte) []byte {
		raw[len(raw)-1] ^= 1
		return raw
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.VerifyChunk(ctx, ref("v", 0)); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("VerifyChunk corrupt err = %v", err)
	}
	if _, err := svc.VerifyChunk(ctx, ref("ghost", 0)); !errors.Is(err, ErrChunkNotFound) {
		t.Fatalf("VerifyChunk missing err = %v", err)
	}

	// Failed site refuses verifies.
	svc.Fail()
	if _, err := svc.VerifyChunk(ctx, ref("v", 1)); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("VerifyChunk on failed site err = %v", err)
	}
}

func TestGetChunkVerifiesCRC(t *testing.T) {
	store := NewMemStore()
	svc := NewService(ServiceConfig{Site: 1}, store)
	ctx := context.Background()
	if err := svc.PutChunk(ctx, ref("g", 0), []byte("payload bytes")); err != nil {
		t.Fatal(err)
	}
	if err := store.MutateRaw(ref("g", 0), func(raw []byte) []byte {
		raw[FramePayloadOffset(raw)] ^= 0x80
		return raw
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.GetChunk(ctx, ref("g", 0)); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("GetChunk err = %v, want ErrCorruptChunk", err)
	}
}
