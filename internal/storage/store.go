// Package storage implements EC-Store's data plane: per-site chunk stores
// (memory or disk backed), the storage service with I/O accounting, load
// reporting and failure injection, and its RPC server/client bindings.
//
// Invariants the rest of the system depends on:
//
//   - Copy on ingest. Store.Put and Store.PutAt must copy their input:
//     callers routinely hand in pooled stripe buffers (erasure package)
//     or RPC frame tails (wire.Decoder.Rest) that are recycled the
//     moment the call returns.
//
//   - Raw-payload RPC contract. Chunk bodies and chunk segments never
//     pass through an encoder buffer: requests carry them as the
//     frame's unprefixed trailing payload (taken with the single-use
//     Decoder.Rest) and responses return them as the whole response
//     body, vectored onto the socket by the rpc layer.
//
//   - Whole-chunk writes commit atomically (temp + fsync + rename on
//     disk); streamed offset writes (PutAt) do not — a streamed chunk
//     is incomplete until its block's catalog registration, which is
//     the commit point of the streaming put path. Readers that find a
//     chunk only through the catalog never observe a torn chunk.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ecstore/internal/model"
)

// Errors returned by chunk stores and services.
var (
	ErrChunkNotFound = errors.New("storage: chunk not found")
	ErrSiteDown      = errors.New("storage: site unavailable")
	// ErrShortChunk reports a range read past the chunk's stored bytes.
	ErrShortChunk = errors.New("storage: chunk range beyond stored bytes")
)

// Store is a site-local chunk repository.
type Store interface {
	// Put stores a chunk, overwriting any previous contents.
	Put(ref model.ChunkRef, data []byte) error
	// Get returns a copy of a chunk's contents.
	Get(ref model.ChunkRef) ([]byte, error)
	// GetAt returns a copy of the chunk bytes [off, off+n). A range
	// past the stored length fails with ErrShortChunk; a missing chunk
	// with ErrChunkNotFound.
	GetAt(ref model.ChunkRef, off, n int64) ([]byte, error)
	// PutAt writes data at byte offset off, creating the chunk if
	// needed and zero-filling any gap below off. Used by the streaming
	// put path to land one stripe segment at a time.
	PutAt(ref model.ChunkRef, off int64, data []byte) error
	// Delete removes a chunk; deleting a missing chunk is not an error.
	Delete(ref model.ChunkRef) error
	// DeleteBlock removes every chunk of a block.
	DeleteBlock(id model.BlockID) error
	// List returns all stored chunk refs in sorted order.
	List() ([]model.ChunkRef, error)
	// Count returns the number of stored chunks.
	Count() (int, error)
	// Bytes returns the total stored bytes.
	Bytes() (int64, error)
}

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[model.ChunkRef][]byte
	bytes  int64
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{chunks: make(map[model.ChunkRef][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(ref model.ChunkRef, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.chunks[ref]; ok {
		s.bytes -= int64(len(old))
	}
	s.chunks[ref] = cp
	s.bytes += int64(len(cp))
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ref model.ChunkRef) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.chunks[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// GetAt implements Store.
func (s *MemStore) GetAt(ref model.ChunkRef, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("%w: [%d, %d)", ErrShortChunk, off, off+n)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.chunks[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
	}
	if off+n > int64(len(data)) {
		return nil, fmt.Errorf("%w: %s [%d, %d) of %d", ErrShortChunk, ref, off, off+n, len(data))
	}
	cp := make([]byte, n)
	copy(cp, data[off:off+n])
	return cp, nil
}

// PutAt implements Store.
func (s *MemStore) PutAt(ref model.ChunkRef, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("%w: negative offset %d", ErrShortChunk, off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.chunks[ref]
	end := off + int64(len(data))
	cur := old
	if end > int64(len(cur)) {
		// Growing reallocates; stored chunks are private copies, so
		// writes inside the current length may land in place.
		grown := make([]byte, end)
		copy(grown, cur)
		cur = grown
	}
	copy(cur[off:end], data)
	if cur == nil {
		cur = []byte{}
	}
	s.bytes += int64(len(cur)) - int64(len(old))
	s.chunks[ref] = cur
	return nil
}

// Delete implements Store.
func (s *MemStore) Delete(ref model.ChunkRef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.chunks[ref]; ok {
		s.bytes -= int64(len(old))
		delete(s.chunks, ref)
	}
	return nil
}

// DeleteBlock implements Store.
func (s *MemStore) DeleteBlock(id model.BlockID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ref, data := range s.chunks {
		if ref.Block == id {
			s.bytes -= int64(len(data))
			delete(s.chunks, ref)
		}
	}
	return nil
}

// List implements Store.
func (s *MemStore) List() ([]model.ChunkRef, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.ChunkRef, 0, len(s.chunks))
	for ref := range s.chunks {
		out = append(out, ref)
	}
	sortRefs(out)
	return out, nil
}

// Count implements Store.
func (s *MemStore) Count() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks), nil
}

// Bytes implements Store.
func (s *MemStore) Bytes() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes, nil
}

// DiskStore persists chunks as files `<urlencoded-block>.<chunk>` under a
// directory. A coarse mutex serializes metadata operations; chunk I/O
// relies on the filesystem.
type DiskStore struct {
	dir string
	mu  sync.Mutex
}

var _ Store = (*DiskStore)(nil)

// NewDiskStore creates (if needed) and wraps a directory.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create chunk dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

func (s *DiskStore) path(ref model.ChunkRef) string {
	// Escape path separators in block ids.
	name := strings.ReplaceAll(string(ref.Block), "/", "_") + "." + strconv.Itoa(ref.Chunk)
	return filepath.Join(s.dir, name)
}

// tmpSeq makes each Put's staging file name unique process-wide.
var tmpSeq atomic.Uint64

// Put implements Store. Each call stages into its own temp file —
// concurrent puts of the same chunk must not scribble over a shared
// staging path — syncs it to stable storage, then renames it into place
// so readers only ever observe complete chunk contents. The staging
// file is removed on any error.
func (s *DiskStore) Put(ref model.ChunkRef, data []byte) error {
	tmp := fmt.Sprintf("%s.%d.%d.tmp", s.path(ref), os.Getpid(), tmpSeq.Add(1))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("write chunk: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("write chunk: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sync chunk: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("write chunk: %w", err)
	}
	if err := os.Rename(tmp, s.path(ref)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("commit chunk: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *DiskStore) Get(ref model.ChunkRef) ([]byte, error) {
	data, err := os.ReadFile(s.path(ref))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
		}
		return nil, fmt.Errorf("read chunk: %w", err)
	}
	return data, nil
}

// GetAt implements Store. It reads only the requested window from the
// chunk file, so a stripe-range read of a large chunk does not touch the
// rest of the file.
func (s *DiskStore) GetAt(ref model.ChunkRef, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("%w: [%d, %d)", ErrShortChunk, off, off+n)
	}
	f, err := os.Open(s.path(ref))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
		}
		return nil, fmt.Errorf("read chunk range: %w", err)
	}
	defer func() { _ = f.Close() }()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("%w: %s [%d, %d)", ErrShortChunk, ref, off, off+n)
		}
		return nil, fmt.Errorf("read chunk range: %w", err)
	}
	return buf, nil
}

// PutAt implements Store. Unlike Put there is no temp-and-rename: a
// streamed chunk grows in place, one stripe segment per call, and is
// unreachable by readers until the block's catalog registration commits
// the stream (see the package comment). Gaps below off read as zeros.
func (s *DiskStore) PutAt(ref model.ChunkRef, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("%w: negative offset %d", ErrShortChunk, off)
	}
	f, err := os.OpenFile(s.path(ref), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("open chunk for stream: %w", err)
	}
	if _, err := f.WriteAt(data, off); err != nil {
		_ = f.Close()
		return fmt.Errorf("stream chunk segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("stream chunk segment: %w", err)
	}
	return nil
}

// Delete implements Store.
func (s *DiskStore) Delete(ref model.ChunkRef) error {
	err := os.Remove(s.path(ref))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("delete chunk: %w", err)
	}
	return nil
}

// DeleteBlock implements Store.
func (s *DiskStore) DeleteBlock(id model.BlockID) error {
	refs, err := s.List()
	if err != nil {
		return err
	}
	for _, ref := range refs {
		if ref.Block == id {
			if err := s.Delete(ref); err != nil {
				return err
			}
		}
	}
	return nil
}

// List implements Store.
func (s *DiskStore) List() ([]model.ChunkRef, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("list chunks: %w", err)
	}
	var out []model.ChunkRef
	for _, ent := range entries {
		if ent.IsDir() || strings.HasSuffix(ent.Name(), ".tmp") {
			continue
		}
		dot := strings.LastIndexByte(ent.Name(), '.')
		if dot <= 0 {
			continue
		}
		chunk, err := strconv.Atoi(ent.Name()[dot+1:])
		if err != nil {
			continue
		}
		out = append(out, model.ChunkRef{Block: model.BlockID(ent.Name()[:dot]), Chunk: chunk})
	}
	sortRefs(out)
	return out, nil
}

// Count implements Store.
func (s *DiskStore) Count() (int, error) {
	refs, err := s.List()
	if err != nil {
		return 0, err
	}
	return len(refs), nil
}

// Bytes implements Store.
func (s *DiskStore) Bytes() (int64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("stat chunks: %w", err)
	}
	var total int64
	for _, ent := range entries {
		if ent.IsDir() || strings.HasSuffix(ent.Name(), ".tmp") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		total += info.Size()
	}
	return total, nil
}

func sortRefs(refs []model.ChunkRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Block != refs[j].Block {
			return refs[i].Block < refs[j].Block
		}
		return refs[i].Chunk < refs[j].Chunk
	})
}
