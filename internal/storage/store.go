// Package storage implements EC-Store's data plane: per-site chunk stores
// (memory or disk backed), the storage service with I/O accounting, load
// reporting and failure injection, and its RPC server/client bindings.
//
// Invariants the rest of the system depends on:
//
//   - Copy on ingest. Store.Put and Store.PutAt must copy their input:
//     callers routinely hand in pooled stripe buffers (erasure package)
//     or RPC frame tails (wire.Decoder.Rest) that are recycled the
//     moment the call returns.
//
//   - Raw-payload RPC contract. Chunk bodies and chunk segments never
//     pass through an encoder buffer: requests carry them as the
//     frame's unprefixed trailing payload (taken with the single-use
//     Decoder.Rest) and responses return them as the whole response
//     body, vectored onto the socket by the rpc layer.
//
//   - Whole-chunk writes commit atomically (temp + fsync + rename on
//     disk); streamed offset writes (PutAt) do not — a streamed chunk
//     is incomplete until its block's catalog registration, which is
//     the commit point of the streaming put path. Readers that find a
//     chunk only through the catalog never observe a torn chunk.
//
//   - Checksummed at rest. Every chunk is stored framed behind a
//     24-byte header carrying a CRC32-C of the payload (checksum.go).
//     Sizes reported by Bytes and offsets taken by GetAt/PutAt are in
//     payload coordinates; the header is invisible outside this
//     package except through Verify/Seal and the RawMutator hook.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ecstore/internal/model"
)

// Errors returned by chunk stores and services.
var (
	ErrChunkNotFound = errors.New("storage: chunk not found")
	ErrSiteDown      = errors.New("storage: site unavailable")
	// ErrShortChunk reports a range read past the chunk's stored bytes.
	ErrShortChunk = errors.New("storage: chunk range beyond stored bytes")
)

// Store is a site-local chunk repository.
type Store interface {
	// Put stores a chunk, overwriting any previous contents.
	Put(ref model.ChunkRef, data []byte) error
	// Get returns a copy of a chunk's contents.
	Get(ref model.ChunkRef) ([]byte, error)
	// GetAt returns a copy of the chunk bytes [off, off+n). A range
	// past the stored length fails with ErrShortChunk; a missing chunk
	// with ErrChunkNotFound.
	GetAt(ref model.ChunkRef, off, n int64) ([]byte, error)
	// PutAt writes data at byte offset off, creating the chunk if
	// needed and zero-filling any gap below off. Used by the streaming
	// put path to land one stripe segment at a time.
	PutAt(ref model.ChunkRef, off int64, data []byte) error
	// Delete removes a chunk; deleting a missing chunk is not an error.
	Delete(ref model.ChunkRef) error
	// DeleteBlock removes every chunk of a block.
	DeleteBlock(id model.BlockID) error
	// List returns all stored chunk refs in sorted order.
	List() ([]model.ChunkRef, error)
	// Count returns the number of stored chunks.
	Count() (int, error)
	// Bytes returns the total stored payload bytes (headers excluded).
	Bytes() (int64, error)
	// Verify checks a chunk's stored bytes against its header: a sealed
	// chunk's CRC and length must match, an unsealed or legacy chunk is
	// structurally accepted. Corruption fails with ErrCorruptChunk.
	Verify(ref model.ChunkRef) (ChunkCheck, error)
	// Seal verifies a chunk and, if it is unsealed or legacy, computes
	// and persists its authoritative length+CRC. The scrubber calls this
	// to finish chunks landed by the streaming put path.
	Seal(ref model.ChunkRef) (ChunkCheck, error)
}

// MemStore is an in-memory Store, safe for concurrent use. Chunks are
// held as raw frames (header + payload); bytes counts payload only.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[model.ChunkRef][]byte
	bytes  int64
}

var _ Store = (*MemStore)(nil)
var _ RawMutator = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{chunks: make(map[model.ChunkRef][]byte)}
}

func payloadLen(raw []byte) int64 {
	payload, _ := payloadOf(raw)
	return int64(len(payload))
}

// Put implements Store.
func (s *MemStore) Put(ref model.ChunkRef, data []byte) error {
	frame := sealFrame(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.chunks[ref]; ok {
		s.bytes -= payloadLen(old)
	}
	s.chunks[ref] = frame
	s.bytes += int64(len(data))
	return nil
}

// Get implements Store. Sealed chunks are CRC-verified on every read.
func (s *MemStore) Get(ref model.ChunkRef) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	raw, ok := s.chunks[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
	}
	if _, err := checkFrame(ref, raw); err != nil {
		return nil, err
	}
	payload, _ := payloadOf(raw)
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return cp, nil
}

// GetAt implements Store. The window is in payload coordinates. A sealed
// chunk whose stored bytes disagree with its header length (truncation)
// fails with ErrCorruptChunk; a window covering the whole payload is
// additionally CRC-verified.
func (s *MemStore) GetAt(ref model.ChunkRef, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("%w: [%d, %d)", ErrShortChunk, off, off+n)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	raw, ok := s.chunks[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
	}
	payload, info := payloadOf(raw)
	if info.sealed && info.length != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: %s length %d, stored %d bytes",
			ErrCorruptChunk, ref, info.length, len(payload))
	}
	if off+n > int64(len(payload)) {
		return nil, fmt.Errorf("%w: %s [%d, %d) of %d", ErrShortChunk, ref, off, off+n, len(payload))
	}
	if off == 0 && n == int64(len(payload)) {
		if _, err := checkFrame(ref, raw); err != nil {
			return nil, err
		}
	}
	cp := make([]byte, n)
	copy(cp, payload[off:off+n])
	return cp, nil
}

// PutAt implements Store. A fresh chunk is created under an unsealed
// header; writing into an existing chunk clears its seal (the payload is
// changing, so any recorded CRC is stale) until Seal recomputes it.
func (s *MemStore) PutAt(ref model.ChunkRef, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("%w: negative offset %d", ErrShortChunk, off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.chunks[ref]
	var payload []byte
	if ok {
		payload, _ = payloadOf(old)
	}
	oldLen := int64(len(payload))
	end := off + int64(len(data))
	if end < oldLen {
		end = oldLen
	}
	grown := make([]byte, end)
	copy(grown, payload)
	copy(grown[off:], data)
	s.chunks[ref] = unsealedFrame(grown)
	s.bytes += end - oldLen
	return nil
}

// Delete implements Store.
func (s *MemStore) Delete(ref model.ChunkRef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.chunks[ref]; ok {
		s.bytes -= payloadLen(old)
		delete(s.chunks, ref)
	}
	return nil
}

// DeleteBlock implements Store.
func (s *MemStore) DeleteBlock(id model.BlockID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ref, raw := range s.chunks {
		if ref.Block == id {
			s.bytes -= payloadLen(raw)
			delete(s.chunks, ref)
		}
	}
	return nil
}

// List implements Store.
func (s *MemStore) List() ([]model.ChunkRef, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.ChunkRef, 0, len(s.chunks))
	for ref := range s.chunks {
		out = append(out, ref)
	}
	sortRefs(out)
	return out, nil
}

// Count implements Store.
func (s *MemStore) Count() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks), nil
}

// Bytes implements Store.
func (s *MemStore) Bytes() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes, nil
}

// Verify implements Store.
func (s *MemStore) Verify(ref model.ChunkRef) (ChunkCheck, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	raw, ok := s.chunks[ref]
	if !ok {
		return ChunkCheck{}, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
	}
	return checkFrame(ref, raw)
}

// Seal implements Store.
func (s *MemStore) Seal(ref model.ChunkRef) (ChunkCheck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.chunks[ref]
	if !ok {
		return ChunkCheck{}, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
	}
	check, err := checkFrame(ref, raw)
	if err != nil || check.Sealed {
		return check, err
	}
	payload, _ := payloadOf(raw)
	frame := sealFrame(payload)
	s.chunks[ref] = frame
	_, info := payloadOf(frame)
	return ChunkCheck{Sealed: true, Length: int64(len(payload)), CRC: info.crc}, nil
}

// MutateRaw implements RawMutator: the fault injector's corruption hook.
func (s *MemStore) MutateRaw(ref model.ChunkRef, mutate func([]byte) []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.chunks[ref]
	if !ok {
		return fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	out := mutate(cp)
	s.bytes += payloadLen(out) - payloadLen(raw)
	s.chunks[ref] = out
	return nil
}

// DiskStore persists chunks as files `<urlencoded-block>.<chunk>` under a
// directory. A coarse mutex serializes metadata operations; chunk I/O
// relies on the filesystem.
type DiskStore struct {
	dir string
	mu  sync.Mutex
}

var _ Store = (*DiskStore)(nil)
var _ RawMutator = (*DiskStore)(nil)

// NewDiskStore creates (if needed) and wraps a directory.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create chunk dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

func (s *DiskStore) path(ref model.ChunkRef) string {
	// Escape path separators in block ids.
	name := strings.ReplaceAll(string(ref.Block), "/", "_") + "." + strconv.Itoa(ref.Chunk)
	return filepath.Join(s.dir, name)
}

// tmpSeq makes each Put's staging file name unique process-wide.
var tmpSeq atomic.Uint64

// Put implements Store. Each call stages into its own temp file —
// concurrent puts of the same chunk must not scribble over a shared
// staging path — syncs it to stable storage, then renames it into place
// so readers only ever observe complete chunk contents. The staging
// file is removed on any error. The file lands sealed: header first,
// CRC computed before any byte reaches the disk.
func (s *DiskStore) Put(ref model.ChunkRef, data []byte) error {
	frame := sealFrame(data)
	tmp := fmt.Sprintf("%s.%d.%d.tmp", s.path(ref), os.Getpid(), tmpSeq.Add(1))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("write chunk: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("write chunk: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sync chunk: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("write chunk: %w", err)
	}
	if err := os.Rename(tmp, s.path(ref)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("commit chunk: %w", err)
	}
	return nil
}

// Get implements Store. Sealed chunks are CRC-verified on every read.
func (s *DiskStore) Get(ref model.ChunkRef) ([]byte, error) {
	raw, err := os.ReadFile(s.path(ref))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
		}
		return nil, fmt.Errorf("read chunk: %w", err)
	}
	if _, err := checkFrame(ref, raw); err != nil {
		return nil, err
	}
	payload, _ := payloadOf(raw)
	return payload, nil
}

// GetAt implements Store. The window is in payload coordinates, and only
// the header plus the requested window are read from the file — a
// stripe-range read of a large chunk does not touch the rest of it.
// Truncation of a sealed chunk (file shorter than its header claims) is
// caught by comparing sizes; a window covering the whole payload is
// additionally CRC-verified. Bit rot outside the window is the
// scrubber's job (Verify reads everything).
func (s *DiskStore) GetAt(ref model.ChunkRef, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("%w: [%d, %d)", ErrShortChunk, off, off+n)
	}
	f, err := os.Open(s.path(ref))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
		}
		return nil, fmt.Errorf("read chunk range: %w", err)
	}
	defer func() { _ = f.Close() }()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("read chunk range: %w", err)
	}
	payOff := int64(0)
	paySize := st.Size()
	var info frameInfo
	info.legacy = true
	if st.Size() >= headerSize {
		hdr := make([]byte, headerSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			return nil, fmt.Errorf("read chunk header: %w", err)
		}
		info = parseHeader(hdr)
		if !info.legacy {
			payOff = headerSize
			paySize = st.Size() - headerSize
		}
	}
	if info.sealed && info.length != uint64(paySize) {
		return nil, fmt.Errorf("%w: %s length %d, stored %d bytes",
			ErrCorruptChunk, ref, info.length, paySize)
	}
	if off+n > paySize {
		return nil, fmt.Errorf("%w: %s [%d, %d) of %d", ErrShortChunk, ref, off, off+n, paySize)
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, payOff+off); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("%w: %s [%d, %d)", ErrShortChunk, ref, off, off+n)
		}
		return nil, fmt.Errorf("read chunk range: %w", err)
	}
	if info.sealed && off == 0 && n == paySize {
		if got := Checksum(buf); got != info.crc {
			return nil, fmt.Errorf("%w: %s crc %08x, want %08x", ErrCorruptChunk, ref, got, info.crc)
		}
	}
	return buf, nil
}

// PutAt implements Store. Unlike Put there is no temp-and-rename: a
// streamed chunk grows in place under an unsealed header, one stripe
// segment per call, and is unreachable by readers until the block's
// catalog registration commits the stream (see the package comment).
// Gaps below off read as zeros. Writing into an already-sealed chunk
// clears its seal; Seal recomputes the CRC later.
func (s *DiskStore) PutAt(ref model.ChunkRef, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("%w: negative offset %d", ErrShortChunk, off)
	}
	f, err := os.OpenFile(s.path(ref), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("open chunk for stream: %w", err)
	}
	defer func() { _ = f.Close() }()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("stream chunk segment: %w", err)
	}
	payOff := int64(0)
	switch {
	case st.Size() == 0:
		// Fresh streamed chunk: lay down an unsealed header first.
		hdr := make([]byte, headerSize)
		writeHeader(hdr, 0, 0, 0)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			return fmt.Errorf("stream chunk header: %w", err)
		}
		payOff = headerSize
	case st.Size() >= headerSize:
		hdr := make([]byte, headerSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			return fmt.Errorf("stream chunk segment: %w", err)
		}
		if info := parseHeader(hdr); !info.legacy {
			payOff = headerSize
			if info.sealed {
				writeHeader(hdr, 0, 0, 0)
				if _, err := f.WriteAt(hdr, 0); err != nil {
					return fmt.Errorf("stream chunk header: %w", err)
				}
			}
		}
	}
	if _, err := f.WriteAt(data, payOff+off); err != nil {
		return fmt.Errorf("stream chunk segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("stream chunk segment: %w", err)
	}
	return nil
}

// Delete implements Store.
func (s *DiskStore) Delete(ref model.ChunkRef) error {
	err := os.Remove(s.path(ref))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("delete chunk: %w", err)
	}
	return nil
}

// DeleteBlock implements Store.
func (s *DiskStore) DeleteBlock(id model.BlockID) error {
	refs, err := s.List()
	if err != nil {
		return err
	}
	for _, ref := range refs {
		if ref.Block == id {
			if err := s.Delete(ref); err != nil {
				return err
			}
		}
	}
	return nil
}

// List implements Store.
func (s *DiskStore) List() ([]model.ChunkRef, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("list chunks: %w", err)
	}
	var out []model.ChunkRef
	for _, ent := range entries {
		if ent.IsDir() || strings.HasSuffix(ent.Name(), ".tmp") {
			continue
		}
		dot := strings.LastIndexByte(ent.Name(), '.')
		if dot <= 0 {
			continue
		}
		chunk, err := strconv.Atoi(ent.Name()[dot+1:])
		if err != nil {
			continue
		}
		out = append(out, model.ChunkRef{Block: model.BlockID(ent.Name()[:dot]), Chunk: chunk})
	}
	sortRefs(out)
	return out, nil
}

// Count implements Store.
func (s *DiskStore) Count() (int, error) {
	refs, err := s.List()
	if err != nil {
		return 0, err
	}
	return len(refs), nil
}

// Bytes implements Store. Headers are subtracted so the count stays in
// payload bytes, which is what capacity accounting and load reports mean.
func (s *DiskStore) Bytes() (int64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("stat chunks: %w", err)
	}
	var total int64
	for _, ent := range entries {
		if ent.IsDir() || strings.HasSuffix(ent.Name(), ".tmp") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		size := info.Size()
		if size >= headerSize && s.hasHeader(filepath.Join(s.dir, ent.Name())) {
			size -= headerSize
		}
		total += size
	}
	return total, nil
}

// hasHeader reports whether the file at path starts with the chunk magic.
func (s *DiskStore) hasHeader(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer func() { _ = f.Close() }()
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false
	}
	return binary.BigEndian.Uint32(m[:]) == chunkMagic
}

// Verify implements Store.
func (s *DiskStore) Verify(ref model.ChunkRef) (ChunkCheck, error) {
	raw, err := os.ReadFile(s.path(ref))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ChunkCheck{}, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
		}
		return ChunkCheck{}, fmt.Errorf("verify chunk: %w", err)
	}
	return checkFrame(ref, raw)
}

// Seal implements Store. Resealing rewrites the chunk through the atomic
// Put path, so a crash mid-seal leaves the old (unsealed) file intact.
func (s *DiskStore) Seal(ref model.ChunkRef) (ChunkCheck, error) {
	raw, err := os.ReadFile(s.path(ref))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ChunkCheck{}, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
		}
		return ChunkCheck{}, fmt.Errorf("seal chunk: %w", err)
	}
	check, err := checkFrame(ref, raw)
	if err != nil || check.Sealed {
		return check, err
	}
	payload, _ := payloadOf(raw)
	if err := s.Put(ref, payload); err != nil {
		return ChunkCheck{}, err
	}
	return ChunkCheck{Sealed: true, Length: int64(len(payload)), CRC: Checksum(payload)}, nil
}

// MutateRaw implements RawMutator: the fault injector's corruption hook.
// The mutated frame is written straight over the file — deliberately not
// through the atomic Put path, because this models media damage.
func (s *DiskStore) MutateRaw(ref model.ChunkRef, mutate func([]byte) []byte) error {
	raw, err := os.ReadFile(s.path(ref))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
		}
		return fmt.Errorf("mutate chunk: %w", err)
	}
	out := mutate(raw)
	if err := os.WriteFile(s.path(ref), out, 0o644); err != nil {
		return fmt.Errorf("mutate chunk: %w", err)
	}
	return nil
}

func sortRefs(refs []model.ChunkRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Block != refs[j].Block {
			return refs[i].Block < refs[j].Block
		}
		return refs[i].Chunk < refs[j].Chunk
	})
}
