package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ecstore/internal/model"
)

// Every chunk at rest carries a fixed 24-byte header in front of its
// payload (DESIGN.md §14):
//
//	offset 0  magic    u32  0x45434B31 ("ECK1")
//	offset 4  flags    u32  bit0: sealed (length+crc are authoritative)
//	offset 8  length   u64  payload bytes (sealed chunks only; else 0)
//	offset 16 crc      u32  CRC32-C (Castagnoli) of the payload
//	offset 20 reserved u32  zero
//
// Whole-chunk writes (Put) seal immediately: length and CRC are computed
// before the bytes hit the store. Streamed chunks (PutAt) grow under an
// unsealed header — their commit point is the block's catalog
// registration, and the scrubber seals them on its first sweep. Reads
// verify sealed chunks: Get recomputes the CRC, GetAt checks structural
// integrity (magic, stored length vs actual bytes — which catches
// truncation without reading the rest of the chunk) and upgrades to a
// full CRC check when the window covers the whole payload. Bit rot
// inside a partial window is the scrubber's job (Verify reads it all).
//
// Files written before this header existed carry no magic; they are
// served as legacy unsealed payloads so an upgrade never bricks a store.
const (
	chunkMagic   uint32 = 0x45434B31
	headerSize          = 24
	flagSealed   uint32 = 1 << 0
	offFlags            = 4
	offLength           = 8
	offCRC              = 16
)

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptChunk reports a chunk whose stored bytes contradict its
// header: CRC mismatch, truncation, or a mangled header. Callers treat
// it like a missing chunk (reconstruct from peers) after deleting the
// bad copy.
var ErrCorruptChunk = errors.New("storage: chunk corrupt")

// ChunkCheck is the verification record of one stored chunk.
type ChunkCheck struct {
	// Sealed reports whether the header carries an authoritative
	// length+CRC (true for all whole-chunk writes; streamed chunks stay
	// unsealed until scrubbed).
	Sealed bool
	// Length is the payload size in bytes.
	Length int64
	// CRC is the payload's CRC32-C (zero while unsealed).
	CRC uint32
}

// Checksum returns the CRC32-C of a payload — the value stored in chunk
// headers and carried by the verify RPC.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// sealFrame returns a framed copy of payload with a sealed header.
func sealFrame(payload []byte) []byte {
	raw := make([]byte, headerSize+len(payload))
	writeHeader(raw, flagSealed, uint64(len(payload)), Checksum(payload))
	copy(raw[headerSize:], payload)
	return raw
}

// unsealedFrame returns a framed copy of payload with an unsealed header.
func unsealedFrame(payload []byte) []byte {
	raw := make([]byte, headerSize+len(payload))
	writeHeader(raw, 0, 0, 0)
	copy(raw[headerSize:], payload)
	return raw
}

func writeHeader(raw []byte, flags uint32, length uint64, crc uint32) {
	binary.BigEndian.PutUint32(raw[0:], chunkMagic)
	binary.BigEndian.PutUint32(raw[offFlags:], flags)
	binary.BigEndian.PutUint64(raw[offLength:], length)
	binary.BigEndian.PutUint32(raw[offCRC:], crc)
	binary.BigEndian.PutUint32(raw[20:], 0)
}

// frameInfo describes a raw stored frame.
type frameInfo struct {
	legacy bool // no header: the whole frame is the payload
	sealed bool
	length uint64 // header length field (sealed only)
	crc    uint32
}

// parseHeader classifies a raw frame without touching the payload.
func parseHeader(raw []byte) frameInfo {
	if len(raw) < headerSize || binary.BigEndian.Uint32(raw) != chunkMagic {
		return frameInfo{legacy: true}
	}
	flags := binary.BigEndian.Uint32(raw[offFlags:])
	return frameInfo{
		sealed: flags&flagSealed != 0,
		length: binary.BigEndian.Uint64(raw[offLength:]),
		crc:    binary.BigEndian.Uint32(raw[offCRC:]),
	}
}

// payloadOf returns the payload view of a raw frame plus its info.
func payloadOf(raw []byte) ([]byte, frameInfo) {
	info := parseHeader(raw)
	if info.legacy {
		return raw, info
	}
	return raw[headerSize:], info
}

// checkFrame verifies a whole raw frame: structural integrity always,
// CRC when sealed. It returns the verification record.
func checkFrame(ref model.ChunkRef, raw []byte) (ChunkCheck, error) {
	payload, info := payloadOf(raw)
	if info.legacy {
		return ChunkCheck{Length: int64(len(payload))}, nil
	}
	if !info.sealed {
		return ChunkCheck{Length: int64(len(payload))}, nil
	}
	if info.length != uint64(len(payload)) {
		return ChunkCheck{}, fmt.Errorf("%w: %s length %d, stored %d bytes",
			ErrCorruptChunk, ref, info.length, len(payload))
	}
	if got := Checksum(payload); got != info.crc {
		return ChunkCheck{}, fmt.Errorf("%w: %s crc %08x, want %08x",
			ErrCorruptChunk, ref, got, info.crc)
	}
	return ChunkCheck{Sealed: true, Length: int64(len(payload)), CRC: info.crc}, nil
}

// FramePayloadOffset returns the offset of the payload inside a raw
// stored frame: the header size for headered frames, 0 for legacy ones.
// The fault injector uses it to aim bit flips at payload bytes.
func FramePayloadOffset(raw []byte) int {
	if parseHeader(raw).legacy {
		return 0
	}
	return headerSize
}

// RawMutator is the corruption hook the fault injector uses: it hands
// the mutation function the chunk's raw stored frame (header included)
// and stores whatever comes back, bypassing all checksumming — exactly
// what a flipped bit on a disk platter does. Both built-in stores
// implement it; it is deliberately not part of the Store interface.
type RawMutator interface {
	MutateRaw(ref model.ChunkRef, mutate func([]byte) []byte) error
}
