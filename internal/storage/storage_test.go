package storage

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/transport"
)

func ref(block string, chunk int) model.ChunkRef {
	return model.ChunkRef{Block: model.BlockID(block), Chunk: chunk}
}

func testStoreSuite(t *testing.T, s Store) {
	t.Helper()

	// Put/Get round trip.
	if err := s.Put(ref("a", 0), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ref("a", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q", got)
	}

	// Overwrite updates contents and byte accounting.
	if err := s.Put(ref("a", 0), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(ref("a", 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hi" {
		t.Fatalf("after overwrite = %q", got)
	}
	if b, err := s.Bytes(); err != nil || b != 2 {
		t.Fatalf("Bytes = %d (%v), want 2", b, err)
	}

	// Missing chunk.
	if _, err := s.Get(ref("ghost", 0)); !errors.Is(err, ErrChunkNotFound) {
		t.Fatalf("missing Get err = %v", err)
	}

	// List and Count.
	if err := s.Put(ref("a", 1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ref("b", 0), []byte("y")); err != nil {
		t.Fatal(err)
	}
	refs, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 || refs[0] != ref("a", 0) || refs[2] != ref("b", 0) {
		t.Fatalf("List = %v", refs)
	}
	if n, err := s.Count(); err != nil || n != 3 {
		t.Fatalf("Count = %d (%v)", n, err)
	}

	// Delete is idempotent.
	if err := s.Delete(ref("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ref("a", 1)); err != nil {
		t.Fatal(err)
	}

	// DeleteBlock removes all chunks of the block only.
	if err := s.DeleteBlock("a"); err != nil {
		t.Fatal(err)
	}
	refs, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0] != ref("b", 0) {
		t.Fatalf("after DeleteBlock List = %v", refs)
	}
}

func TestMemStore(t *testing.T) {
	testStoreSuite(t, NewMemStore())
}

func TestDiskStore(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreSuite(t, s)
}

func TestMemStoreGetReturnsCopy(t *testing.T) {
	s := NewMemStore()
	_ = s.Put(ref("a", 0), []byte{1, 2})
	got, _ := s.Get(ref("a", 0))
	got[0] = 99
	again, _ := s.Get(ref("a", 0))
	if again[0] != 1 {
		t.Fatal("Get aliases stored data")
	}
}

func TestMemStorePutCopies(t *testing.T) {
	s := NewMemStore()
	data := []byte{1, 2}
	_ = s.Put(ref("a", 0), data)
	data[0] = 99
	got, _ := s.Get(ref("a", 0))
	if got[0] != 1 {
		t.Fatal("Put aliases caller data")
	}
}

func TestDiskStoreBlockIDWithSlash(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := ref("dir/evil", 0)
	if err := s.Put(r, []byte("z")); err != nil {
		t.Fatal(err)
	}
	// The chunk is retrievable through the same (escaped) path.
	got, err := s.Get(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "z" {
		t.Fatalf("Get = %q", got)
	}
}

func TestDiskStoreConcurrentPutsSameChunk(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent puts of the same ref each stage through a unique temp
	// file; with a shared .tmp path these used to corrupt each other
	// (one goroutine renames a half-written file away under another).
	r := ref("contended", 0)
	payloads := make([][]byte, 8)
	var wg sync.WaitGroup
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 4096)
		wg.Add(1)
		go func(p []byte) {
			defer wg.Done()
			if err := s.Put(r, p); err != nil {
				t.Error(err)
			}
		}(payloads[i])
	}
	wg.Wait()

	// Whatever write won, the stored chunk is exactly one complete
	// payload — never a torn mix.
	got, err := s.Get(r)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range payloads {
		if bytes.Equal(got, p) {
			found = true
		}
	}
	if !found {
		t.Fatalf("stored chunk (%d bytes) matches no complete payload", len(got))
	}

	// No staging files survive.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			t.Fatalf("leftover staging file %s", ent.Name())
		}
	}
	if n, _ := s.Count(); n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}
}

func TestDiskStorePutCleansUpTempOnError(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the store so the staged write
	// fails before the rename.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ref("a", 0), []byte("x")); err == nil {
		t.Fatal("Put into a removed directory succeeded")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("directory not clean after failed put: %v", entries)
	}
}

func TestServiceFailureInjection(t *testing.T) {
	svc := NewService(ServiceConfig{Site: 1}, NewMemStore())
	if err := svc.PutChunk(context.Background(), ref("a", 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	svc.Fail()
	if !svc.Failed() {
		t.Fatal("Failed() = false after Fail")
	}
	if _, err := svc.GetChunk(context.Background(), ref("a", 0)); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("Get on failed site err = %v", err)
	}
	if err := svc.PutChunk(context.Background(), ref("a", 1), nil); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("Put on failed site err = %v", err)
	}
	if err := svc.Probe(context.Background()); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("Probe on failed site err = %v", err)
	}
	if _, err := svc.LoadReport(context.Background()); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("LoadReport on failed site err = %v", err)
	}
	svc.Recover()
	if _, err := svc.GetChunk(context.Background(), ref("a", 0)); err != nil {
		t.Fatalf("Get after recover: %v", err)
	}
}

func TestServiceLoadReportWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	svc := NewService(ServiceConfig{Site: 1, Clock: clock}, NewMemStore())
	_ = svc.PutChunk(context.Background(), ref("a", 0), make([]byte, 1000))

	now = now.Add(time.Second)
	if _, err := svc.GetChunk(context.Background(), ref("a", 0)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Second) // window = 2s, 1000 bytes read
	load, err := svc.LoadReport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if load.IOBytesPerSec != 500 {
		t.Fatalf("IO rate = %v, want 500", load.IOBytesPerSec)
	}
	if load.Chunks != 1 {
		t.Fatalf("chunks = %d", load.Chunks)
	}
	// Window reset: immediate second report sees no reads.
	now = now.Add(time.Second)
	load2, err := svc.LoadReport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if load2.IOBytesPerSec != 0 {
		t.Fatalf("second window IO = %v", load2.IOBytesPerSec)
	}
}

func TestServiceReadThrottle(t *testing.T) {
	var slept time.Duration
	svc := NewService(ServiceConfig{
		Site:             1,
		ReadDelayFixed:   time.Millisecond,
		ReadDelayPerByte: time.Microsecond,
		Sleep:            func(d time.Duration) { slept += d },
	}, NewMemStore())
	_ = svc.PutChunk(context.Background(), ref("a", 0), make([]byte, 100))
	if _, err := svc.GetChunk(context.Background(), ref("a", 0)); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + 100*time.Microsecond
	if slept != want {
		t.Fatalf("throttle slept %v, want %v", slept, want)
	}
}

func TestServiceTotals(t *testing.T) {
	svc := NewService(ServiceConfig{Site: 1}, NewMemStore())
	_ = svc.PutChunk(context.Background(), ref("a", 0), []byte("x"))
	_, _ = svc.GetChunk(context.Background(), ref("a", 0))
	_, _ = svc.GetChunk(context.Background(), ref("a", 0))
	r, w := svc.Totals()
	if r != 2 || w != 1 {
		t.Fatalf("Totals = (%d, %d), want (2, 1)", r, w)
	}
}

func startStorageRPC(t *testing.T, svc *Service) (*Client, func()) {
	t.Helper()
	net := transport.NewMemory()
	l, err := net.Listen("site")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(NewRPCServer(svc))
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	conn, err := net.Dial("site")
	if err != nil {
		t.Fatal(err)
	}
	rc := rpc.NewClient(conn)
	cleanup := func() {
		_ = rc.Close()
		_ = srv.Close()
		<-done
		net.Close()
	}
	return NewRPCClient(rc), cleanup
}

func TestStorageRPCRoundTrip(t *testing.T) {
	svc := NewService(ServiceConfig{Site: 3}, NewMemStore())
	client, cleanup := startStorageRPC(t, svc)
	defer cleanup()

	if err := client.PutChunk(context.Background(), ref("blk", 1), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetChunk(context.Background(), ref("blk", 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("GetChunk = %q", got)
	}

	refs, err := client.ListChunks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0] != ref("blk", 1) {
		t.Fatalf("ListChunks = %v", refs)
	}

	if err := client.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	load, err := client.LoadReport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if load.Chunks != 1 {
		t.Fatalf("load.Chunks = %d", load.Chunks)
	}

	if err := client.DeleteChunk(context.Background(), ref("blk", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetChunk(context.Background(), ref("blk", 1)); err == nil {
		t.Fatal("GetChunk succeeded after delete")
	}

	if err := client.PutChunk(context.Background(), ref("blk", 0), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteBlock(context.Background(), "blk"); err != nil {
		t.Fatal(err)
	}
	refs, err = client.ListChunks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 0 {
		t.Fatalf("chunks remain after DeleteBlock: %v", refs)
	}
}

func TestStorageRPCFailurePropagates(t *testing.T) {
	svc := NewService(ServiceConfig{Site: 3}, NewMemStore())
	client, cleanup := startStorageRPC(t, svc)
	defer cleanup()

	svc.Fail()
	if err := client.Probe(context.Background()); err == nil {
		t.Fatal("probe of failed site succeeded over RPC")
	}
	if _, err := client.GetChunk(context.Background(), ref("x", 0)); err == nil {
		t.Fatal("get from failed site succeeded over RPC")
	}
}

func TestStorageRPCGetMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	svc := NewService(ServiceConfig{Site: 3, Metrics: reg}, NewMemStore())
	client, cleanup := startStorageRPC(t, svc)
	defer cleanup()

	if err := client.PutChunk(context.Background(), ref("blk", 0), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetChunk(context.Background(), ref("blk", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetChunk(context.Background(), ref("missing", 0)); err == nil {
		t.Fatal("read of missing chunk succeeded")
	}

	snap, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if n := snap.CounterValue("storage_reads_total", "3"); n != 1 {
		t.Fatalf(`storage_reads_total{site="3"} = %d, want 1`, n)
	}
	if n := snap.CounterValue("storage_writes_total", "3"); n != 1 {
		t.Fatalf(`storage_writes_total{site="3"} = %d, want 1`, n)
	}
	if n := snap.CounterValue("storage_errors_total", "3"); n != 1 {
		t.Fatalf(`storage_errors_total{site="3"} = %d, want 1`, n)
	}
	if n := snap.CounterValue("storage_write_bytes_total", "3"); n != 7 {
		t.Fatalf(`storage_write_bytes_total{site="3"} = %d, want 7`, n)
	}
	h, ok := snap.Histogram("storage_read_seconds", "3")
	if !ok || h.Count != 1 {
		t.Fatalf(`storage_read_seconds{site="3"}: count = %d (present=%v), want 1`, h.Count, ok)
	}
}

func TestStorageMetricsDisabledIsNoOp(t *testing.T) {
	svc := NewService(ServiceConfig{Site: 1}, NewMemStore())
	if err := svc.PutChunk(context.Background(), ref("a", 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.GetChunk(context.Background(), ref("a", 0)); err != nil {
		t.Fatal(err)
	}
	snap := svc.MetricsSnapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("disabled service exported metrics: %+v", snap)
	}
}
