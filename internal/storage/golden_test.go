package storage

import (
	"bytes"
	"context"
	"encoding/hex"
	"strings"
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/wire"
)

// mustHex decodes a spaced hex string like the DESIGN.md §13 diagrams.
func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.ReplaceAll(s, " ", ""))
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestGoldenRangeWireFormat pins the GetChunkRange / PutChunkStream
// request bodies to the byte-level diagrams in DESIGN.md §13. If this
// test breaks, either the wire format changed (bump the docs and the
// method contract) or the docs drifted (fix them).
func TestGoldenRangeWireFormat(t *testing.T) {
	if methodGetChunkRange != 9 || methodPutChunkStream != 10 {
		t.Fatalf("method ids moved: GetChunkRange=%d PutChunkStream=%d, docs say 9/10", methodGetChunkRange, methodPutChunkStream)
	}

	// GetChunkRange request for chunk {b1,3}, off=65536, n=131072 —
	// the exact example documented in §13.
	goldenGet := mustHex(t,
		"00 00 00 02 62 31"+ // block id: u32 len 2, "b1"
			" 00 00 00 03"+ // chunk index u32
			" 00 00 00 00 00 01 00 00"+ // off u64 = 65536
			" 00 02 00 00") // n u32 = 131072
	e := wire.NewEncoder(32)
	encodeRef(e, model.ChunkRef{Block: "b1", Chunk: 3})
	e.Uint64(65536)
	e.Uint32(131072)
	if !bytes.Equal(e.Bytes(), goldenGet) {
		t.Fatalf("GetChunkRange request body drifted from §13:\n got %x\nwant %x", e.Bytes(), goldenGet)
	}
	// And the decode side reads the documented bytes back.
	d := wire.NewDecoder(goldenGet)
	ref := decodeRef(d)
	off, n := d.Uint64(), d.Uint32()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if ref.Block != "b1" || ref.Chunk != 3 || off != 65536 || n != 131072 {
		t.Fatalf("decoded ref=%v off=%d n=%d", ref, off, n)
	}

	// PutChunkStream request for the same chunk at off=65536 carrying
	// the 2-byte payload "hi" as the raw frame tail (§13).
	goldenPut := mustHex(t,
		"00 00 00 02 62 31"+
			" 00 00 00 03"+
			" 00 00 00 00 00 01 00 00"+
			" 68 69") // raw payload "hi", no length prefix
	e2 := wire.NewEncoder(32)
	encodeRef(e2, model.ChunkRef{Block: "b1", Chunk: 3})
	e2.Uint64(65536)
	e2.Raw([]byte("hi"))
	if !bytes.Equal(e2.Bytes(), goldenPut) {
		t.Fatalf("PutChunkStream request body drifted from §13:\n got %x\nwant %x", e2.Bytes(), goldenPut)
	}
	d2 := wire.NewDecoder(goldenPut)
	ref2 := decodeRef(d2)
	off2 := d2.Uint64()
	if err := d2.Err(); err != nil {
		t.Fatal(err)
	}
	payload := d2.Rest()
	if ref2.Block != "b1" || off2 != 65536 || string(payload) != "hi" {
		t.Fatalf("decoded ref=%v off=%d payload=%q", ref2, off2, payload)
	}
}

// TestRangeRPCRoundTrip drives the two new methods end to end through
// the real server dispatch, including the sparse-write then range-read
// contract at a nonzero chunk offset.
func TestRangeRPCRoundTrip(t *testing.T) {
	svc := NewService(ServiceConfig{Site: 1}, NewMemStore())
	ctx := context.Background()
	ref := model.ChunkRef{Block: "blk", Chunk: 0}
	if err := svc.PutChunkStream(ctx, ref, 0, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := svc.PutChunkStream(ctx, ref, 10, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	got, err := svc.GetChunkRange(ctx, ref, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "89abc" {
		t.Fatalf("range read = %q", got)
	}
	if _, err := svc.GetChunkRange(ctx, ref, 14, 10); err == nil {
		t.Fatal("read past chunk end succeeded")
	}
}

// TestRangeRPCOverTransport exercises GetChunkRange / PutChunkStream
// through the framed RPC client and server, pinning the raw-payload
// response contract (the segment is the whole body, no length prefix).
func TestRangeRPCOverTransport(t *testing.T) {
	svc := NewService(ServiceConfig{Site: 3}, NewMemStore())
	client, cleanup := startStorageRPC(t, svc)
	defer cleanup()
	ctx := context.Background()
	cref := model.ChunkRef{Block: "blk", Chunk: 2}

	if err := client.PutChunkStream(ctx, cref, 4, []byte("wxyz")); err != nil {
		t.Fatal(err)
	}
	if err := client.PutChunkStream(ctx, cref, 0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetChunkRange(ctx, cref, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "cdwx" {
		t.Fatalf("GetChunkRange over RPC = %q", got)
	}
	// Zero-length range: valid, empty body.
	if got, err := client.GetChunkRange(ctx, cref, 0, 0); err != nil || len(got) != 0 {
		t.Fatalf("zero-length range = %q, %v", got, err)
	}
}
