package storage

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/stats"
	"ecstore/internal/wire"
)

// ServiceConfig tunes one storage service (one site of the data plane).
type ServiceConfig struct {
	// Site is this service's identity.
	Site model.SiteID
	// ReadDelayPerByte optionally throttles reads to emulate a storage
	// medium (m_j) in real-mode experiments; zero disables throttling.
	ReadDelayPerByte time.Duration
	// ReadDelayFixed is a per-read fixed latency; zero disables it.
	ReadDelayFixed time.Duration
	// Clock abstracts time for tests; nil uses the wall clock.
	Clock func() time.Time
	// Sleep abstracts throttling for tests; nil uses a context-aware
	// timer so a canceled read stops throttling early.
	Sleep func(time.Duration)
	// Metrics optionally exports per-site instrumentation into a shared
	// registry (families are labeled by site id). Nil disables it with
	// zero overhead on the data path.
	Metrics *obs.Registry
}

// siteMetrics is one storage service's instrument set, labeled by site.
// Every field is nil-safe, so a disabled registry costs nothing.
type siteMetrics struct {
	reads        *obs.Counter
	writes       *obs.Counter
	deletes      *obs.Counter
	errors       *obs.Counter
	readBytes    *obs.Counter
	writeBytes   *obs.Counter
	rangeReads   *obs.Counter
	streamWrites *obs.Counter
	verifies     *obs.Counter
	corrupt      *obs.Counter
	readLatency  *obs.Histogram
	failed       *obs.Gauge
}

func newSiteMetrics(reg *obs.Registry, site model.SiteID) siteMetrics {
	if reg == nil {
		return siteMetrics{}
	}
	label := strconv.FormatInt(int64(site), 10)
	return siteMetrics{
		reads:        reg.CounterVec("storage_reads_total", "site", "chunk reads served").With(label),
		writes:       reg.CounterVec("storage_writes_total", "site", "chunk writes served").With(label),
		deletes:      reg.CounterVec("storage_deletes_total", "site", "chunk/block deletes served").With(label),
		errors:       reg.CounterVec("storage_errors_total", "site", "failed storage operations (including failure injection)").With(label),
		readBytes:    reg.CounterVec("storage_read_bytes_total", "site", "bytes read from the store").With(label),
		writeBytes:   reg.CounterVec("storage_write_bytes_total", "site", "bytes written to the store").With(label),
		rangeReads:   reg.CounterVec("storage_range_reads_total", "site", "stripe-range chunk reads served (GetChunkRange)").With(label),
		streamWrites: reg.CounterVec("storage_stream_writes_total", "site", "streamed chunk segment writes served (PutChunkStream)").With(label),
		verifies:     reg.CounterVec("storage_verifies_total", "site", "chunk checksum verifications served (VerifyChunk)").With(label),
		corrupt:      reg.CounterVec("storage_corrupt_total", "site", "chunks found corrupt (CRC/length mismatch) by reads or verifies").With(label),
		readLatency:  reg.HistogramVec("storage_read_seconds", "site", "chunk read service time including media throttle (m_j)").With(label),
		failed:       reg.Gauge("storage_failed_sites", "sites currently failure-injected"),
	}
}

// Service wraps a Store with the behaviours the control plane depends on:
// read/write accounting for load reports (Section V-A), load-status probes
// that expose queueing delay (o_j estimation), and failure injection for
// the fault-tolerance experiments (Section VI-C4).
type Service struct {
	cfg   ServiceConfig
	store Store
	obs   siteMetrics
	reg   *obs.Registry

	mu         sync.Mutex
	failed     bool
	bytesRead  int64
	bytesWrite int64
	reads      int64
	writes     int64
	busy       time.Duration
	windowFrom time.Time
}

// NewService wraps a store.
func NewService(cfg ServiceConfig, store Store) *Service {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Service{
		cfg:        cfg,
		store:      store,
		obs:        newSiteMetrics(cfg.Metrics, cfg.Site),
		reg:        cfg.Metrics,
		windowFrom: cfg.Clock(),
	}
}

// MetricsSnapshot captures the service's registry (empty when metrics are
// disabled). Served remotely by the GetMetrics RPC method.
func (s *Service) MetricsSnapshot() *obs.Snapshot {
	return s.reg.Snapshot()
}

// Site returns the service's site id.
func (s *Service) Site() model.SiteID { return s.cfg.Site }

// Fail marks the site unavailable: every data operation errors until
// Recover is called.
func (s *Service) Fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.failed {
		s.obs.failed.Add(1)
	}
	s.failed = true
}

// Recover marks the site available again.
func (s *Service) Recover() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		s.obs.failed.Add(-1)
	}
	s.failed = false
}

// Failed reports whether the site is failed.
func (s *Service) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

func (s *Service) checkUp(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return fmt.Errorf("%w: site %d", ErrSiteDown, s.cfg.Site)
	}
	return nil
}

// sleep applies the media throttle, honoring the caller's deadline. A
// custom Sleep (tests) runs unconditionally, then the context is checked.
func (s *Service) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if s.cfg.Sleep != nil {
		s.cfg.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PutChunk stores a chunk.
func (s *Service) PutChunk(ctx context.Context, ref model.ChunkRef, data []byte) error {
	if err := s.checkUp(ctx); err != nil {
		s.obs.errors.Inc()
		return err
	}
	if err := s.store.Put(ref, data); err != nil {
		s.obs.errors.Inc()
		return err
	}
	s.mu.Lock()
	s.bytesWrite += int64(len(data))
	s.writes++
	s.mu.Unlock()
	s.obs.writes.Inc()
	s.obs.writeBytes.Add(int64(len(data)))
	return nil
}

// GetChunk reads a chunk, applying the configured media throttle and
// accounting the read for load reports. The throttle respects the
// caller's context, so an abandoned read stops occupying the medium.
func (s *Service) GetChunk(ctx context.Context, ref model.ChunkRef) ([]byte, error) {
	if err := s.checkUp(ctx); err != nil {
		s.obs.errors.Inc()
		return nil, err
	}
	start := s.cfg.Clock()
	data, err := s.store.Get(ref)
	if err != nil {
		s.obs.errors.Inc()
		if errors.Is(err, ErrCorruptChunk) {
			s.obs.corrupt.Inc()
		}
		return nil, err
	}
	if err := s.sleep(ctx, s.cfg.ReadDelayFixed+time.Duration(len(data))*s.cfg.ReadDelayPerByte); err != nil {
		s.obs.errors.Inc()
		return nil, err
	}
	elapsed := s.cfg.Clock().Sub(start)
	s.mu.Lock()
	s.bytesRead += int64(len(data))
	s.reads++
	s.busy += elapsed
	s.mu.Unlock()
	s.obs.reads.Inc()
	s.obs.readBytes.Add(int64(len(data)))
	s.obs.readLatency.ObserveDuration(elapsed)
	return data, nil
}

// GetChunkRange reads n bytes of a chunk starting at byte offset off —
// the per-chunk window a stripe-range read needs. The media throttle is
// scaled by the bytes actually served, so a range read occupies the
// medium proportionally less than a whole-chunk read; accounting feeds
// the same load-report window as GetChunk.
func (s *Service) GetChunkRange(ctx context.Context, ref model.ChunkRef, off, n int64) ([]byte, error) {
	if err := s.checkUp(ctx); err != nil {
		s.obs.errors.Inc()
		return nil, err
	}
	start := s.cfg.Clock()
	data, err := s.store.GetAt(ref, off, n)
	if err != nil {
		s.obs.errors.Inc()
		if errors.Is(err, ErrCorruptChunk) {
			s.obs.corrupt.Inc()
		}
		return nil, err
	}
	if err := s.sleep(ctx, s.cfg.ReadDelayFixed+time.Duration(len(data))*s.cfg.ReadDelayPerByte); err != nil {
		s.obs.errors.Inc()
		return nil, err
	}
	elapsed := s.cfg.Clock().Sub(start)
	s.mu.Lock()
	s.bytesRead += int64(len(data))
	s.reads++
	s.busy += elapsed
	s.mu.Unlock()
	s.obs.reads.Inc()
	s.obs.rangeReads.Inc()
	s.obs.readBytes.Add(int64(len(data)))
	s.obs.readLatency.ObserveDuration(elapsed)
	return data, nil
}

// PutChunkStream writes one segment of a chunk at byte offset off — the
// streaming put path delivers each stripe's chunk segment as it is
// encoded, so a chunk accumulates across calls. Unlike PutChunk the
// write is not atomic for the chunk as a whole; the block becomes
// visible only when the catalog registration commits it (see the
// package doc).
func (s *Service) PutChunkStream(ctx context.Context, ref model.ChunkRef, off int64, data []byte) error {
	if err := s.checkUp(ctx); err != nil {
		s.obs.errors.Inc()
		return err
	}
	if err := s.store.PutAt(ref, off, data); err != nil {
		s.obs.errors.Inc()
		return err
	}
	s.mu.Lock()
	s.bytesWrite += int64(len(data))
	s.writes++
	s.mu.Unlock()
	s.obs.writes.Inc()
	s.obs.streamWrites.Inc()
	s.obs.writeBytes.Add(int64(len(data)))
	return nil
}

// DeleteChunk removes a chunk.
func (s *Service) DeleteChunk(ctx context.Context, ref model.ChunkRef) error {
	if err := s.checkUp(ctx); err != nil {
		s.obs.errors.Inc()
		return err
	}
	if err := s.store.Delete(ref); err != nil {
		s.obs.errors.Inc()
		return err
	}
	s.obs.deletes.Inc()
	return nil
}

// DeleteBlock removes every chunk of a block.
func (s *Service) DeleteBlock(ctx context.Context, id model.BlockID) error {
	if err := s.checkUp(ctx); err != nil {
		s.obs.errors.Inc()
		return err
	}
	if err := s.store.DeleteBlock(id); err != nil {
		s.obs.errors.Inc()
		return err
	}
	s.obs.deletes.Inc()
	return nil
}

// ListChunks lists stored chunks (used by repair and the scrubber).
func (s *Service) ListChunks(ctx context.Context) ([]model.ChunkRef, error) {
	if err := s.checkUp(ctx); err != nil {
		return nil, err
	}
	return s.store.List()
}

// VerifyChunk checks one chunk's stored bytes against its checksum
// header, sealing it first if the streaming put path left it unsealed.
// The media throttle is scaled by the chunk's length — a verify reads
// the whole payload off the medium, and the scrubber's own byte throttle
// rides on top. Corruption fails with ErrCorruptChunk; the caller (the
// scrubber) deletes the bad copy and enqueues repair.
func (s *Service) VerifyChunk(ctx context.Context, ref model.ChunkRef) (ChunkCheck, error) {
	if err := s.checkUp(ctx); err != nil {
		s.obs.errors.Inc()
		return ChunkCheck{}, err
	}
	start := s.cfg.Clock()
	check, err := s.store.Seal(ref)
	s.obs.verifies.Inc()
	if err != nil {
		s.obs.errors.Inc()
		if errors.Is(err, ErrCorruptChunk) {
			s.obs.corrupt.Inc()
		}
		return ChunkCheck{}, err
	}
	if err := s.sleep(ctx, s.cfg.ReadDelayFixed+time.Duration(check.Length)*s.cfg.ReadDelayPerByte); err != nil {
		s.obs.errors.Inc()
		return ChunkCheck{}, err
	}
	elapsed := s.cfg.Clock().Sub(start)
	s.mu.Lock()
	s.bytesRead += check.Length
	s.reads++
	s.busy += elapsed
	s.mu.Unlock()
	s.obs.readBytes.Add(check.Length)
	return check, nil
}

// Store exposes the underlying chunk store. The fault injector uses it
// to reach the RawMutator corruption hook; nothing on the data path does.
func (s *Service) Store() Store { return s.store }

// Probe is the load-status endpoint: it returns an error when failed and
// nil otherwise. Its round-trip time, measured by the caller, feeds the
// o_j estimate.
func (s *Service) Probe(ctx context.Context) error {
	return s.checkUp(ctx)
}

// LoadReport drains the accounting window and returns a stats.SiteLoad:
// CPU is approximated by the busy fraction of the window, I/O by the read
// rate.
func (s *Service) LoadReport(ctx context.Context) (stats.SiteLoad, error) {
	if err := s.checkUp(ctx); err != nil {
		return stats.SiteLoad{}, err
	}
	count, err := s.store.Count()
	if err != nil {
		return stats.SiteLoad{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	window := now.Sub(s.windowFrom)
	load := stats.SiteLoad{Chunks: count}
	if window > 0 {
		load.CPU = float64(s.busy) / float64(window)
		if load.CPU > 1 {
			load.CPU = 1
		}
		load.IOBytesPerSec = float64(s.bytesRead) / window.Seconds()
	}
	s.bytesRead = 0
	s.bytesWrite = 0
	s.reads = 0
	s.writes = 0
	s.busy = 0
	s.windowFrom = now
	return load, nil
}

// StoredBytes returns the total bytes held by the underlying store (even
// while failed, for experiment accounting).
func (s *Service) StoredBytes() (int64, error) {
	return s.store.Bytes()
}

// Totals returns cumulative (reads, writes) counters since construction.
func (s *Service) Totals() (reads, writes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// RPC method numbers of the storage service. New methods are appended at
// the end of the iota block — numbers are part of the wire protocol and
// must never be reordered (see DESIGN.md, "RPC method numbering").
const (
	methodPutChunk rpc.Method = iota + 1
	methodGetChunk
	methodDeleteChunk
	methodDeleteBlock
	methodListChunks
	methodProbe
	methodLoadReport
	methodGetMetrics
	methodGetChunkRange
	methodPutChunkStream
	methodVerifyChunk
)

// VerifyChunk response status codes. Corruption and absence are results,
// not transport errors: rpc flattens application errors into strings
// (rpc.RemoteError), so sentinel identity would not survive the wire.
const (
	verifyOK       = 0
	verifyCorrupt  = 1
	verifyNotFound = 2
)

// Server exposes a Service over RPC.
type Server struct {
	svc *Service
}

// NewRPCServer wraps a storage service.
func NewRPCServer(svc *Service) *Server { return &Server{svc: svc} }

var _ rpc.Handler = (*Server)(nil)

func decodeRef(d *wire.Decoder) model.ChunkRef {
	return model.ChunkRef{Block: model.BlockID(d.String()), Chunk: int(d.Uint32())}
}

func encodeRef(e *wire.Encoder, ref model.ChunkRef) {
	e.String(string(ref.Block))
	e.Uint32(uint32(ref.Chunk))
}

// Handle dispatches one storage RPC, threading the connection context into
// the service so dropped callers stop occupying the site.
func (s *Server) Handle(ctx context.Context, method rpc.Method, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	switch method {
	case methodPutChunk:
		// The chunk is the request's raw trailing payload: Rest aliases
		// the request frame (no copy), and the store's Put contract is to
		// copy on ingest, so the frame buffer is not retained.
		ref := decodeRef(d)
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, s.svc.PutChunk(ctx, ref, d.Rest())

	case methodGetChunk:
		ref := decodeRef(d)
		if err := d.Err(); err != nil {
			return nil, err
		}
		// The chunk is the whole response body; the rpc server writes it
		// as a vectored payload without an intermediate encoder copy.
		return s.svc.GetChunk(ctx, ref)

	case methodDeleteChunk:
		ref := decodeRef(d)
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, s.svc.DeleteChunk(ctx, ref)

	case methodDeleteBlock:
		id := model.BlockID(d.String())
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, s.svc.DeleteBlock(ctx, id)

	case methodListChunks:
		refs, err := s.svc.ListChunks(ctx)
		if err != nil {
			return nil, err
		}
		e := wire.NewEncoder(24 * len(refs))
		e.Uint32(uint32(len(refs)))
		for _, ref := range refs {
			encodeRef(e, ref)
		}
		return e.Bytes(), nil

	case methodGetChunkRange:
		// Request: ref | off u64 | n u32. Response: the segment as the
		// whole body, vectored like GetChunk.
		ref := decodeRef(d)
		off := d.Uint64()
		n := d.Uint32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return s.svc.GetChunkRange(ctx, ref, int64(off), int64(n))

	case methodPutChunkStream:
		// Request: ref | off u64 | segment as the raw trailing payload.
		// Rest aliases the request frame; the store copies on ingest.
		ref := decodeRef(d)
		off := d.Uint64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, s.svc.PutChunkStream(ctx, ref, int64(off), d.Rest())

	case methodVerifyChunk:
		// Response: status u8 | sealed u8 | length u64 | crc u32. The
		// status byte carries corrupt/not-found across the wire so the
		// client can rebuild the sentinel errors locally.
		ref := decodeRef(d)
		if err := d.Err(); err != nil {
			return nil, err
		}
		check, err := s.svc.VerifyChunk(ctx, ref)
		status := uint8(verifyOK)
		switch {
		case errors.Is(err, ErrCorruptChunk):
			status = verifyCorrupt
		case errors.Is(err, ErrChunkNotFound):
			status = verifyNotFound
		case err != nil:
			return nil, err
		}
		e := wire.NewEncoder(16)
		e.Uint8(status)
		sealed := uint8(0)
		if check.Sealed {
			sealed = 1
		}
		e.Uint8(sealed)
		e.Uint64(uint64(check.Length))
		e.Uint32(check.CRC)
		return e.Bytes(), nil

	case methodProbe:
		return nil, s.svc.Probe(ctx)

	case methodGetMetrics:
		return obs.MarshalSnapshot(s.svc.MetricsSnapshot()), nil

	case methodLoadReport:
		load, err := s.svc.LoadReport(ctx)
		if err != nil {
			return nil, err
		}
		e := wire.NewEncoder(24)
		e.Float64(load.CPU)
		e.Float64(load.IOBytesPerSec)
		e.Uint32(uint32(load.Chunks))
		return e.Bytes(), nil

	default:
		return nil, fmt.Errorf("storage: unknown method %d", method)
	}
}

// Client is the RPC-backed view of one remote storage service.
type Client struct {
	rc *rpc.Client
}

// NewRPCClient wraps an RPC client connected to a storage server.
func NewRPCClient(rc *rpc.Client) *Client { return &Client{rc: rc} }

// PutChunk stores a chunk remotely. data is sent as the request's raw
// trailing payload (vectored onto the socket, never copied into an
// encoder buffer) and must stay immutable until PutChunk returns.
func (c *Client) PutChunk(ctx context.Context, ref model.ChunkRef, data []byte) error {
	e := wire.GetEncoder()
	encodeRef(e, ref)
	_, err := c.rc.CallContextPayload(ctx, methodPutChunk, e.Bytes(), data)
	wire.PutEncoder(e)
	return err
}

// GetChunk reads a chunk remotely. The response body is the chunk; it is
// returned as-is, aliasing the client's private per-response frame
// buffer, so the caller owns it without a copy.
func (c *Client) GetChunk(ctx context.Context, ref model.ChunkRef) ([]byte, error) {
	e := wire.GetEncoder()
	encodeRef(e, ref)
	resp, err := c.rc.CallContext(ctx, methodGetChunk, e.Bytes())
	wire.PutEncoder(e)
	return resp, err
}

// GetChunkRange reads a chunk segment remotely. Like GetChunk, the
// response body is the segment itself and aliases the client's private
// per-response frame buffer.
func (c *Client) GetChunkRange(ctx context.Context, ref model.ChunkRef, off, n int64) ([]byte, error) {
	e := wire.GetEncoder()
	encodeRef(e, ref)
	e.Uint64(uint64(off))
	e.Uint32(uint32(n))
	resp, err := c.rc.CallContext(ctx, methodGetChunkRange, e.Bytes())
	wire.PutEncoder(e)
	return resp, err
}

// PutChunkStream writes a chunk segment remotely at the given offset.
// The segment rides as the request's raw trailing payload and must stay
// immutable until the call returns.
func (c *Client) PutChunkStream(ctx context.Context, ref model.ChunkRef, off int64, data []byte) error {
	e := wire.GetEncoder()
	encodeRef(e, ref)
	e.Uint64(uint64(off))
	_, err := c.rc.CallContextPayload(ctx, methodPutChunkStream, e.Bytes(), data)
	wire.PutEncoder(e)
	return err
}

// DeleteChunk removes a chunk remotely.
func (c *Client) DeleteChunk(ctx context.Context, ref model.ChunkRef) error {
	e := wire.NewEncoder(24)
	encodeRef(e, ref)
	_, err := c.rc.CallContext(ctx, methodDeleteChunk, e.Bytes())
	return err
}

// DeleteBlock removes every chunk of a block remotely.
func (c *Client) DeleteBlock(ctx context.Context, id model.BlockID) error {
	e := wire.NewEncoder(16)
	e.String(string(id))
	_, err := c.rc.CallContext(ctx, methodDeleteBlock, e.Bytes())
	return err
}

// ListChunks lists remotely stored chunks.
func (c *Client) ListChunks(ctx context.Context) ([]model.ChunkRef, error) {
	resp, err := c.rc.CallContext(ctx, methodListChunks, nil)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	out := make([]model.ChunkRef, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, decodeRef(d))
	}
	return out, d.Err()
}

// VerifyChunk verifies a chunk remotely, reconstructing the corrupt /
// not-found sentinels from the response's status byte.
func (c *Client) VerifyChunk(ctx context.Context, ref model.ChunkRef) (ChunkCheck, error) {
	e := wire.NewEncoder(24)
	encodeRef(e, ref)
	resp, err := c.rc.CallContext(ctx, methodVerifyChunk, e.Bytes())
	if err != nil {
		return ChunkCheck{}, err
	}
	d := wire.NewDecoder(resp)
	status := d.Uint8()
	sealed := d.Uint8()
	length := d.Uint64()
	crc := d.Uint32()
	if err := d.Err(); err != nil {
		return ChunkCheck{}, err
	}
	switch status {
	case verifyCorrupt:
		return ChunkCheck{}, fmt.Errorf("%w: %s", ErrCorruptChunk, ref)
	case verifyNotFound:
		return ChunkCheck{}, fmt.Errorf("%w: %s", ErrChunkNotFound, ref)
	}
	return ChunkCheck{Sealed: sealed != 0, Length: int64(length), CRC: crc}, nil
}

// Probe checks liveness.
func (c *Client) Probe(ctx context.Context) error {
	_, err := c.rc.CallContext(ctx, methodProbe, nil)
	return err
}

// Metrics fetches the remote service's metrics snapshot.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	resp, err := c.rc.Call(methodGetMetrics, nil)
	if err != nil {
		return nil, err
	}
	return obs.UnmarshalSnapshot(resp)
}

// LoadReport fetches and resets the site's accounting window.
func (c *Client) LoadReport(ctx context.Context) (stats.SiteLoad, error) {
	resp, err := c.rc.CallContext(ctx, methodLoadReport, nil)
	if err != nil {
		return stats.SiteLoad{}, err
	}
	d := wire.NewDecoder(resp)
	load := stats.SiteLoad{
		CPU:           d.Float64(),
		IOBytesPerSec: d.Float64(),
		Chunks:        int(d.Uint32()),
	}
	return load, d.Err()
}

// SiteAPI is the storage-site surface shared by the local Service and the
// RPC Client so the client service and repair service work in both modes.
// Every method takes a context so callers can bound and cancel site
// operations (per-chunk deadlines, hedged reads, parallel probes).
type SiteAPI interface {
	PutChunk(ctx context.Context, ref model.ChunkRef, data []byte) error
	GetChunk(ctx context.Context, ref model.ChunkRef) ([]byte, error)
	GetChunkRange(ctx context.Context, ref model.ChunkRef, off, n int64) ([]byte, error)
	PutChunkStream(ctx context.Context, ref model.ChunkRef, off int64, data []byte) error
	DeleteChunk(ctx context.Context, ref model.ChunkRef) error
	DeleteBlock(ctx context.Context, id model.BlockID) error
	ListChunks(ctx context.Context) ([]model.ChunkRef, error)
	VerifyChunk(ctx context.Context, ref model.ChunkRef) (ChunkCheck, error)
	Probe(ctx context.Context) error
	LoadReport(ctx context.Context) (stats.SiteLoad, error)
}

var (
	_ SiteAPI = (*Service)(nil)
	_ SiteAPI = (*Client)(nil)
)
