// Package repair implements EC-Store's repair service (Section V-C): it
// probes every storage service, marks unresponsive sites unavailable, waits
// a grace period (15 minutes in GFS and the paper; configurable here), and
// then reconstructs the lost chunks on healthy sites, choosing destinations
// with the same load-aware logic as the chunk mover.
//
// The service no longer owns a goroutine: the unified scheduler in
// internal/tasks drives CheckOnce as a periodic source and runs
// RepairSite/RepairChunk as repair-priority tasks (see internal/core for
// the wiring).
package repair

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
)

// Errors returned by the repair service.
var (
	ErrUnrepairable = errors.New("repair: not enough surviving chunks")
	ErrNoDestination = errors.New("repair: no eligible destination site")
)

// Config tunes the repair service.
type Config struct {
	// Grace is how long a site must stay unresponsive before repair
	// begins (the paper waits 15 minutes, following GFS). Zero means
	// 15 minutes.
	Grace time.Duration
	// ProbeInterval is the polling period. Zero means 5 seconds.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each liveness probe so one hung site cannot
	// stall a sweep. Zero means 2 seconds.
	ProbeTimeout time.Duration
	// OpTimeout bounds each chunk read/write/delete issued during
	// repair and garbage collection. Zero means 30 seconds.
	OpTimeout time.Duration
	// Clock abstracts time for tests; nil uses time.Now.
	Clock func() time.Time
	// Health optionally shares the per-site breaker set with the client
	// and mover: probe outcomes feed it, and repair destinations are
	// restricted to sites whose breaker is closed. Nil keeps repair's
	// private probe-based availability view.
	Health *health.Tracker
	// Throttle optionally rate-limits repair I/O: it is called with the
	// byte count of every chunk read or written during reconstruction.
	// The task plane wires the scheduler's shared background token
	// bucket here so repair, scrub and drain draw from one budget. Nil
	// disables throttling.
	Throttle func(ctx context.Context, n int64) error
	// SiteInfo optionally supplies the zone and drain-state view
	// (catalog SiteInfos). When set, repair destinations skip draining
	// and decommissioned sites and avoid zones already holding
	// model.MaxChunksPerZone(r) chunks of the block (best-effort: the
	// zone cap relaxes before the repair fails for want of sites). Nil
	// disables both constraints.
	SiteInfo func() map[model.SiteID]model.SiteInfo
	// Metrics optionally exports repair instrumentation (check/repair/GC
	// counters, failed-site gauge) into a shared registry. Nil disables it.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Grace == 0 {
		c.Grace = 15 * time.Minute
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 5 * time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Service is the repair daemon.
type Service struct {
	cfg   Config
	meta  metadata.Service
	sites map[model.SiteID]storage.SiteAPI
	loads *stats.LoadTracker

	mu          sync.Mutex
	failedSince map[model.SiteID]time.Time
	repaired    int64
	codecs      map[[2]int]*erasure.Codec

	obs repairObs
}

// repairObs is the repair service's instrument set; every field is nil-safe.
type repairObs struct {
	checks      *obs.Counter
	repairedC   *obs.Counter
	errorsC     *obs.Counter
	gcCollected *obs.Counter
	failedSites *obs.Gauge
}

func newRepairObs(reg *obs.Registry) repairObs {
	if reg == nil {
		return repairObs{}
	}
	return repairObs{
		checks:      reg.Counter("repair_checks_total", "probe sweeps over all sites"),
		repairedC:   reg.Counter("repair_repaired_chunks_total", "chunks reconstructed onto healthy sites"),
		errorsC:     reg.Counter("repair_errors_total", "failed repair attempts (first error per sweep)"),
		gcCollected: reg.Counter("repair_gc_collected_total", "orphaned chunks garbage-collected"),
		failedSites: reg.Gauge("repair_failed_sites", "sites currently marked unavailable by the repair prober"),
	}
}

// NewService wires a repair service. loads may be nil (destinations then
// fall back to chunk-count balancing only).
func NewService(cfg Config, meta metadata.Service, sites map[model.SiteID]storage.SiteAPI, loads *stats.LoadTracker) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:         cfg,
		meta:        meta,
		sites:       sites,
		loads:       loads,
		failedSince: make(map[model.SiteID]time.Time),
		codecs:      make(map[[2]int]*erasure.Codec),
		obs:         newRepairObs(cfg.Metrics),
	}
}

// Repaired returns the number of chunks reconstructed so far.
func (s *Service) Repaired() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repaired
}

// FailedSites lists sites currently marked unavailable.
func (s *Service) FailedSites() []model.SiteID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]model.SiteID, 0, len(s.failedSince))
	for id := range s.failedSince {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// errProbeSuppressed marks a site whose breaker refused a probe this
// sweep: the site still counts as down for grace accounting, but no RPC
// was issued and no outcome was reported to the breaker.
var errProbeSuppressed = errors.New("repair: probe suppressed by breaker")

// probeAll probes every site in parallel, each under the per-probe
// timeout, and returns the probe error per site (nil for healthy ones).
// With a shared breaker set attached, the breaker gates the sweep: an
// open breaker means the site is known-down and is synthesized as failed
// without an RPC, and a half-open site with a client recovery probe
// already in flight is not double-probed — AllowProbe hands out exactly
// one probation slot, and reporting a second outcome would corrupt the
// breaker's probation accounting. Probe outcomes feed the breaker only
// when the probe was actually admitted.
func (s *Service) probeAll(ctx context.Context) map[model.SiteID]error {
	out := make(map[model.SiteID]error, len(s.sites))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, api := range s.sites {
		if s.cfg.Health != nil && !s.cfg.Health.AllowProbe(id) {
			mu.Lock()
			out[id] = errProbeSuppressed
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(id model.SiteID, api storage.SiteAPI) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
			defer cancel()
			err := api.Probe(ctx)
			if s.cfg.Health != nil {
				if err != nil {
					s.cfg.Health.ReportFailure(id)
				} else {
					s.cfg.Health.ReportSuccess(id)
				}
			}
			mu.Lock()
			out[id] = err
			mu.Unlock()
		}(id, api)
	}
	wg.Wait()
	return out
}

// DueForRepair probes every site, updates failure marks, and returns the
// sites whose grace period has expired, sorted. Returned sites have their
// failure clock reset so a still-down site comes due again only a full
// grace period later — the caller owns repairing (or enqueueing repair
// for) each returned site exactly once.
func (s *Service) DueForRepair(ctx context.Context) []model.SiteID {
	now := s.cfg.Clock()
	var due []model.SiteID
	s.obs.checks.Inc()

	probes := s.probeAll(ctx)
	s.mu.Lock()
	for id, probeErr := range probes {
		if probeErr != nil {
			if _, already := s.failedSince[id]; !already {
				s.failedSince[id] = now
			}
			if now.Sub(s.failedSince[id]) >= s.cfg.Grace {
				due = append(due, id)
				// Reset the clock so the site is not re-repaired every
				// probe while still down.
				s.failedSince[id] = now
			}
		} else {
			delete(s.failedSince, id)
		}
	}
	s.obs.failedSites.Set(int64(len(s.failedSince)))
	s.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	return due
}

// CheckOnce probes every site, updates failure marks, and repairs sites
// whose grace period has expired. It returns the first repair error, if
// any; probing continues regardless. The scheduler wiring in
// internal/core uses DueForRepair + repair-site tasks instead, so site
// repairs obey the task plane's concurrency caps and byte throttle.
func (s *Service) CheckOnce(ctx context.Context) error {
	var firstErr error
	for _, id := range s.DueForRepair(ctx) {
		if _, err := s.RepairSite(ctx, id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		s.obs.errorsC.Inc()
	}
	return firstErr
}

// RepairSite reconstructs every chunk the failed site held onto healthy
// sites. It returns the number of chunks reconstructed.
func (s *Service) RepairSite(ctx context.Context, failed model.SiteID) (int, error) {
	ids := s.meta.BlocksOnSite(failed)
	repaired := 0
	var firstErr error
	for _, id := range ids {
		n, err := s.repairBlock(ctx, id, failed)
		repaired += n
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repair %s: %w", id, err)
		}
	}
	s.mu.Lock()
	s.repaired += int64(repaired)
	s.mu.Unlock()
	s.obs.repairedC.Add(int64(repaired))
	return repaired, firstErr
}

// RepairChunk re-protects a single chunk whose stored copy is corrupt or
// missing (the scrubber's repair unit): it reconstructs the chunk from
// the surviving peers and rewrites it, preferring the site the placement
// already names so the catalog stays untouched; if that site is gone the
// chunk lands on a fresh destination via the usual load-aware pick plus a
// placement CAS. A stale ref (chunk since moved or block deleted) is not
// an error — the damage no longer exists.
func (s *Service) RepairChunk(ctx context.Context, ref model.ChunkRef, onSite model.SiteID) error {
	metas, err := s.meta.Lookup([]model.BlockID{ref.Block})
	if err != nil {
		return nil // block deleted since the scrub: nothing to re-protect
	}
	meta := metas[ref.Block]
	if ref.Chunk < 0 || ref.Chunk >= len(meta.Sites) || meta.Sites[ref.Chunk] != onSite {
		return nil // chunk moved since the scrub: the bad copy is unreachable
	}

	// Gather k survivors, excluding the damaged copy itself.
	available := make(map[int][]byte)
	for chunk, site := range meta.Sites {
		if chunk == ref.Chunk || len(available) >= meta.RequiredChunks() {
			continue
		}
		api := s.sites[site]
		if api == nil {
			continue
		}
		data, err := s.getChunk(ctx, api, model.ChunkRef{Block: ref.Block, Chunk: chunk})
		if err != nil {
			continue
		}
		available[chunk] = data
	}
	if len(available) < meta.RequiredChunks() {
		return fmt.Errorf("%w: %d of %d", ErrUnrepairable, len(available), meta.RequiredChunks())
	}
	data, err := s.reconstruct(meta, available, ref.Chunk)
	if err != nil {
		return err
	}

	// Rewrite in place when the owning site still accepts writes; Put
	// replaces the damaged frame with a freshly sealed one.
	if api := s.sites[onSite]; api != nil && (s.cfg.Health == nil || s.cfg.Health.Available(onSite)) {
		if err := s.putChunk(ctx, api, ref, data); err == nil {
			s.mu.Lock()
			s.repaired++
			s.mu.Unlock()
			s.obs.repairedC.Inc()
			return nil
		}
	}

	// Owning site unavailable: place the rebuilt chunk elsewhere.
	dst, err := s.pickDestination(ctx, meta)
	if err != nil {
		return err
	}
	if err := s.putChunk(ctx, s.sites[dst], ref, data); err != nil {
		return fmt.Errorf("store reconstructed chunk: %w", err)
	}
	if _, err := s.meta.UpdatePlacement(ref.Block, ref.Chunk, dst, meta.Version); err != nil {
		_ = s.deleteChunk(ctx, s.sites[dst], ref)
		return fmt.Errorf("commit reconstructed chunk: %w", err)
	}
	s.mu.Lock()
	s.repaired++
	s.mu.Unlock()
	s.obs.repairedC.Inc()
	return nil
}

// repairBlock reconstructs the chunks of one block lost at `failed`.
func (s *Service) repairBlock(ctx context.Context, id model.BlockID, failed model.SiteID) (int, error) {
	metas, err := s.meta.Lookup([]model.BlockID{id})
	if err != nil {
		return 0, err
	}
	meta := metas[id]

	lost := meta.ChunksAt(failed)
	if len(lost) == 0 {
		return 0, nil
	}

	// Gather surviving chunks (k suffice; fetch opportunistically).
	available := make(map[int][]byte)
	for chunk, site := range meta.Sites {
		if site == failed || len(available) >= meta.RequiredChunks() {
			continue
		}
		api := s.sites[site]
		if api == nil {
			continue
		}
		data, err := s.getChunk(ctx, api, model.ChunkRef{Block: id, Chunk: chunk})
		if err != nil {
			continue
		}
		available[chunk] = data
	}
	if len(available) < meta.RequiredChunks() {
		return 0, fmt.Errorf("%w: %d of %d", ErrUnrepairable, len(available), meta.RequiredChunks())
	}

	repaired := 0
	for _, chunk := range lost {
		data, err := s.reconstruct(meta, available, chunk)
		if err != nil {
			return repaired, err
		}
		dst, err := s.pickDestination(ctx, meta)
		if err != nil {
			return repaired, err
		}
		ref := model.ChunkRef{Block: id, Chunk: chunk}
		if err := s.putChunk(ctx, s.sites[dst], ref, data); err != nil {
			return repaired, fmt.Errorf("store reconstructed chunk: %w", err)
		}
		newVersion, err := s.meta.UpdatePlacement(id, chunk, dst, meta.Version)
		if err != nil {
			_ = s.deleteChunk(ctx, s.sites[dst], ref)
			return repaired, fmt.Errorf("commit reconstructed chunk: %w", err)
		}
		meta.Sites[chunk] = dst
		meta.Version = newVersion
		repaired++
	}
	return repaired, nil
}

// getChunk, putChunk and deleteChunk run one site operation under the
// configured OpTimeout so a hung site cannot stall a repair sweep.
func (s *Service) getChunk(ctx context.Context, api storage.SiteAPI, ref model.ChunkRef) ([]byte, error) {
	opCtx, cancel := context.WithTimeout(ctx, s.cfg.OpTimeout)
	defer cancel()
	data, err := api.GetChunk(opCtx, ref)
	if err == nil && s.cfg.Throttle != nil {
		// Charged after the read (the size is unknown before); the
		// bucket still bounds the average background rate.
		if terr := s.cfg.Throttle(ctx, int64(len(data))); terr != nil {
			return nil, terr
		}
	}
	return data, err
}

func (s *Service) putChunk(ctx context.Context, api storage.SiteAPI, ref model.ChunkRef, data []byte) error {
	if s.cfg.Throttle != nil {
		if err := s.cfg.Throttle(ctx, int64(len(data))); err != nil {
			return err
		}
	}
	opCtx, cancel := context.WithTimeout(ctx, s.cfg.OpTimeout)
	defer cancel()
	return api.PutChunk(opCtx, ref, data)
}

func (s *Service) deleteChunk(ctx context.Context, api storage.SiteAPI, ref model.ChunkRef) error {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.OpTimeout)
	defer cancel()
	return api.DeleteChunk(ctx, ref)
}

// reconstruct rebuilds one chunk from survivors.
func (s *Service) reconstruct(meta *model.BlockMeta, available map[int][]byte, chunk int) ([]byte, error) {
	if meta.Scheme == model.SchemeReplicated {
		for _, data := range available {
			cp := make([]byte, len(data))
			copy(cp, data)
			return cp, nil
		}
		return nil, ErrUnrepairable
	}
	codec, err := s.codec(meta.K, meta.R)
	if err != nil {
		return nil, err
	}
	return codec.ReconstructChunk(available, chunk)
}

func (s *Service) codec(k, r int) (*erasure.Codec, error) {
	key := [2]int{k, r}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.codecs[key]; ok {
		return c, nil
	}
	c, err := erasure.NewCodec(k, r)
	if err != nil {
		return nil, err
	}
	s.codecs[key] = c
	return c, nil
}

// GCOnce scans every healthy site for orphaned chunks — chunks whose block
// no longer exists or whose placement no longer references the site (e.g.
// after a best-effort delete raced a failure, or a mover rollback) — and
// removes them. It returns the number of chunks collected.
func (s *Service) GCOnce(ctx context.Context) (int, error) {
	collected := 0
	var firstErr error
	for siteID, api := range s.sites {
		listCtx, listCancel := context.WithTimeout(ctx, s.cfg.OpTimeout)
		refs, err := api.ListChunks(listCtx)
		listCancel()
		if err != nil {
			continue // failed sites are repaired, not collected
		}
		for _, ref := range refs {
			metas, err := s.meta.Lookup([]model.BlockID{ref.Block})
			orphan := false
			if err != nil {
				// Block unknown: deleted.
				orphan = true
			} else {
				meta := metas[ref.Block]
				orphan = ref.Chunk < 0 || ref.Chunk >= len(meta.Sites) ||
					meta.Sites[ref.Chunk] != siteID
			}
			if !orphan {
				continue
			}
			if err := s.deleteChunk(ctx, api, ref); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("gc %s at site %d: %w", ref, siteID, err)
				}
				continue
			}
			collected++
		}
	}
	s.obs.gcCollected.Add(int64(collected))
	return collected, firstErr
}

// pickDestination chooses a healthy site that holds no chunk of the block,
// preferring lightly loaded sites. With a shared health tracker, only
// sites whose breaker is closed qualify; otherwise a bounded probe decides.
// With a site-info view, draining and decommissioned sites never qualify,
// and sites whose zone is already at the block's per-zone cap are avoided
// unless no other candidate exists.
func (s *Service) pickDestination(ctx context.Context, meta *model.BlockMeta) (model.SiteID, error) {
	var infos map[model.SiteID]model.SiteInfo
	if s.cfg.SiteInfo != nil {
		infos = s.cfg.SiteInfo()
	}
	// Chunks already in each zone: a candidate pushing its zone past the
	// cap would let one zone outage exceed the erasure margin.
	zoneCap := model.MaxChunksPerZone(meta.R)
	perZone := make(map[string]int)
	holding := meta.SiteSet()
	if infos != nil {
		for id := range holding {
			if z := infos[id].Zone; z != "" {
				perZone[z]++
			}
		}
	}

	var candidates, overCap []model.SiteID
	for id, api := range s.sites {
		if holding[id] {
			continue
		}
		if infos != nil && infos[id].State != model.SiteActive {
			continue
		}
		if s.cfg.Health != nil {
			if !s.cfg.Health.Available(id) {
				continue
			}
		} else {
			probeCtx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
			err := api.Probe(probeCtx)
			cancel()
			if err != nil {
				continue
			}
		}
		if z := infos[id].Zone; z != "" && perZone[z] >= zoneCap {
			overCap = append(overCap, id)
			continue
		}
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		candidates = overCap // zone cap is best-effort, availability wins
	}
	if len(candidates) == 0 {
		return model.NoSite, ErrNoDestination
	}
	sort.Slice(candidates, func(i, j int) bool {
		if s.loads != nil {
			wi := s.loads.Omega(candidates[i])
			wj := s.loads.Omega(candidates[j])
			if wi != wj {
				return wi < wj
			}
		}
		return candidates[i] < candidates[j]
	})
	return candidates[0], nil
}
