package repair_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/model"
	"ecstore/internal/repair"
	"ecstore/internal/storage"
)

// buildCluster creates a cluster with some data and returns it.
func buildCluster(t *testing.T, numSites int) *core.Cluster {
	t.Helper()
	cfg := core.ClusterConfig{NumSites: numSites}
	cfg.Client.InlineExact = true
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func data(n int, seed byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i)*seed + 1
	}
	return d
}

func TestRepairSiteReconstructsChunks(t *testing.T) {
	c := buildCluster(t, 8)
	payload := data(1200, 3)
	if err := c.Client.Put("blk", payload); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	victim := meta.Sites[1]
	c.FailSite(victim)

	apis := toAPIs(c)
	svc := repair.NewService(repair.Config{Grace: time.Minute}, c.Catalog, apis, c.Loads)
	n, err := svc.RepairSite(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("repaired %d chunks, want 1", n)
	}
	if svc.Repaired() != 1 {
		t.Fatalf("Repaired() = %d", svc.Repaired())
	}

	// Metadata no longer references the failed site.
	after, _ := c.Catalog.BlockMeta("blk")
	for _, s := range after.Sites {
		if s == victim {
			t.Fatalf("placement still references failed site: %v", after.Sites)
		}
	}
	// No two chunks share a site.
	seen := map[model.SiteID]bool{}
	for _, s := range after.Sites {
		if seen[s] {
			t.Fatalf("fault tolerance violated after repair: %v", after.Sites)
		}
		seen[s] = true
	}
	// Data readable even with the failed site still down.
	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("repaired block corrupted")
	}
	// Full redundancy restored: the block survives r more failures.
	c.FailSite(after.Sites[0])
	c.FailSite(after.Sites[1])
	got, err = c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("post-repair redundancy insufficient")
	}
}

func TestRepairReplicatedBlock(t *testing.T) {
	cfg := core.ClusterConfig{NumSites: 8}
	cfg.Client.Scheme = model.SchemeReplicated
	cfg.Client.InlineExact = true
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	payload := data(500, 5)
	if err := c.Client.Put("blk", payload); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	victim := meta.Sites[0]
	c.FailSite(victim)

	svc := repair.NewService(repair.Config{}, c.Catalog, toAPIs(c), c.Loads)
	n, err := svc.RepairSite(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("repaired %d copies, want 1", n)
	}
	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("repaired replica corrupted")
	}
}

func TestRepairUnrepairable(t *testing.T) {
	c := buildCluster(t, 8)
	if err := c.Client.Put("blk", data(400, 2)); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	// Fail 3 of 4 chunk sites: only 1 chunk survives < k=2.
	c.FailSite(meta.Sites[0])
	c.FailSite(meta.Sites[1])
	c.FailSite(meta.Sites[2])

	svc := repair.NewService(repair.Config{}, c.Catalog, toAPIs(c), c.Loads)
	if _, err := svc.RepairSite(context.Background(), meta.Sites[0]); !errors.Is(err, repair.ErrUnrepairable) {
		t.Fatalf("err = %v, want repair.ErrUnrepairable", err)
	}
}

func TestCheckOnceHonorsGracePeriod(t *testing.T) {
	c := buildCluster(t, 8)
	if err := c.Client.Put("blk", data(600, 4)); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	victim := meta.Sites[0]

	now := time.Unix(10_000, 0)
	clock := func() time.Time { return now }
	svc := repair.NewService(repair.Config{Grace: 15 * time.Minute, Clock: clock}, c.Catalog, toAPIs(c), c.Loads)

	c.FailSite(victim)
	// First check: marks the failure but must not repair yet.
	if err := svc.CheckOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := svc.FailedSites(); len(got) != 1 || got[0] != victim {
		t.Fatalf("FailedSites = %v", got)
	}
	after, _ := c.Catalog.BlockMeta("blk")
	if after.Version != meta.Version {
		t.Fatal("repair ran before the grace period expired")
	}

	// Advance past the grace period: repair runs.
	now = now.Add(16 * time.Minute)
	if err := svc.CheckOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	after, _ = c.Catalog.BlockMeta("blk")
	for _, s := range after.Sites {
		if s == victim {
			t.Fatal("chunk not relocated after grace expiry")
		}
	}
}

func TestCheckOnceClearsRecoveredSite(t *testing.T) {
	c := buildCluster(t, 6)
	now := time.Unix(0, 0)
	svc := repair.NewService(repair.Config{Clock: func() time.Time { return now }}, c.Catalog, toAPIs(c), c.Loads)
	c.FailSite(3)
	_ = svc.CheckOnce(context.Background())
	if len(svc.FailedSites()) != 1 {
		t.Fatal("failure not tracked")
	}
	c.RecoverSite(3)
	_ = svc.CheckOnce(context.Background())
	if len(svc.FailedSites()) != 0 {
		t.Fatal("recovered site still tracked as failed")
	}
}

func TestRepairRunsUnderScheduler(t *testing.T) {
	cfg := core.ClusterConfig{NumSites: 6, EnableRepair: true, RepairGrace: -1}
	cfg.Client.InlineExact = true
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Client.Put("blk", data(400, 9)); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	victim := meta.Sites[0]
	c.FailSite(victim)
	c.Tick(context.Background())
	after, _ := c.Catalog.BlockMeta("blk")
	for _, s := range after.Sites {
		if s == victim {
			t.Fatal("chunk not relocated by scheduler-driven repair")
		}
	}
	done := false
	for _, rec := range c.Catalog.ListTasks() {
		if rec.Type == model.TaskTypeRepairSite && rec.State == model.TaskDone {
			done = true
		}
	}
	if !done {
		t.Fatal("no completed repair-site task recorded in the catalog")
	}
}

// toAPIs converts the cluster's concrete services to the SiteAPI map the
// repair service expects.
func toAPIs(c *core.Cluster) map[model.SiteID]storage.SiteAPI {
	out := make(map[model.SiteID]storage.SiteAPI, len(c.Services))
	for id, svc := range c.Services {
		out[id] = svc
	}
	return out
}

func TestGCOnceCollectsOrphans(t *testing.T) {
	c := buildCluster(t, 6)
	payload := data(400, 6)
	if err := c.Client.Put("keep", payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Put("gone", payload); err != nil {
		t.Fatal(err)
	}

	// Orphan type 1: a block deleted from metadata but whose chunks
	// were left behind (simulates a best-effort delete that lost the
	// race). Delete metadata directly, bypassing chunk cleanup.
	if _, err := c.Catalog.Delete("gone"); err != nil {
		t.Fatal(err)
	}

	// Orphan type 2: a stale copy left on the old site after a move.
	meta, _ := c.Catalog.BlockMeta("keep")
	oldSite := meta.Sites[0]
	var newSite model.SiteID = model.NoSite
	for _, s := range c.Catalog.Sites() {
		if !meta.SiteSet()[s] {
			newSite = s
			break
		}
	}
	chunkData, err := c.Services[oldSite].GetChunk(context.Background(), model.ChunkRef{Block: "keep", Chunk: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Services[newSite].PutChunk(context.Background(), model.ChunkRef{Block: "keep", Chunk: 0}, chunkData); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Catalog.UpdatePlacement("keep", 0, newSite, meta.Version); err != nil {
		t.Fatal(err)
	}
	// The old copy at oldSite is now an orphan (normally the mover
	// deletes it; pretend it crashed first).

	svc := repair.NewService(repair.Config{}, c.Catalog, toAPIs(c), c.Loads)
	collected, err := svc.GCOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 4 chunks of "gone" + 1 stale chunk of "keep".
	if collected != 5 {
		t.Fatalf("collected %d orphans, want 5", collected)
	}
	// Live data untouched.
	got, err := c.Client.Get("keep")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("GC corrupted live block")
	}
	// Second pass finds nothing.
	collected, err = svc.GCOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if collected != 0 {
		t.Fatalf("second GC collected %d", collected)
	}
}
