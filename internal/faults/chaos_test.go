package faults_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/faults"
	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/storage"
)

// chaosCluster wires a core.Client to real in-process storage services,
// each behind a faults.Site wrapper so tests can inject failures per
// site. Everything is seeded, so fault schedules replay deterministically.
type chaosCluster struct {
	catalog  *metadata.Catalog
	services map[model.SiteID]*storage.Service
	wrapped  map[model.SiteID]*faults.Site
	client   *core.Client
	reg      *obs.Registry
}

func newChaosCluster(t *testing.T, numSites int, cfg core.Config, hcfg health.Config) *chaosCluster {
	t.Helper()
	inj := faults.NewInjector(cfg.Seed)
	siteIDs := make([]model.SiteID, numSites)
	for i := range siteIDs {
		siteIDs[i] = model.SiteID(i + 1)
	}
	catalog := metadata.NewCatalog(siteIDs)
	reg := obs.NewRegistry()
	services := make(map[model.SiteID]*storage.Service, numSites)
	wrapped := make(map[model.SiteID]*faults.Site, numSites)
	apis := make(map[model.SiteID]storage.SiteAPI, numSites)
	for _, id := range siteIDs {
		svc := storage.NewService(storage.ServiceConfig{Site: id, Metrics: reg}, storage.NewMemStore())
		services[id] = svc
		wrapped[id] = faults.NewSite(svc, inj)
		apis[id] = wrapped[id]
	}
	cfg.InlineExact = true
	hcfg.Metrics = reg
	client, err := core.NewClient(cfg, core.Deps{
		Meta:    catalog,
		Sites:   apis,
		Health:  health.NewTracker(hcfg),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return &chaosCluster{catalog: catalog, services: services, wrapped: wrapped, client: client, reg: reg}
}

func chaosData(n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i * 31)
	}
	return d
}

// TestGetMultiHungSitesWithinTimeoutBudget is the headline chaos
// scenario: r sites hang mid-request (they accept chunk reads but never
// respond). Per-chunk deadlines must bound each hung read to one
// ChunkTimeout, hedged reads must race the stalled ones so a partially
// hung plan completes without waiting out the timeout, the breakers must
// take the hung sites out of the replan, and the whole degraded GetMulti
// must return correct data within twice the per-chunk timeout.
func TestGetMultiHungSitesWithinTimeoutBudget(t *testing.T) {
	const chunkTimeout = 250 * time.Millisecond
	c := newChaosCluster(t, 6, core.Config{
		K: 2, R: 2, Seed: 11,
		ChunkTimeout: chunkTimeout,
		HedgeDelay:   25 * time.Millisecond,
	}, health.Config{})

	data := chaosData(4096)
	if err := c.client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	meta, ok := c.catalog.BlockMeta("blk")
	if !ok {
		t.Fatal("blk not registered")
	}
	// Hang r=2 of the chunk-holding sites: the worst case a correct
	// RS(2,2) read must still survive.
	hung := []model.SiteID{meta.Sites[0], meta.Sites[1]}
	for _, id := range hung {
		c.wrapped[id].Set(faults.Plan{Hang: true})
	}

	start := time.Now()
	blocks, _, err := c.client.GetMulti([]model.BlockID{"blk"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degraded GetMulti failed after %v: %v", elapsed, err)
	}
	if !bytes.Equal(blocks["blk"], data) {
		t.Fatal("degraded read returned wrong data")
	}
	if elapsed >= 2*chunkTimeout {
		t.Fatalf("degraded read took %v, want < 2x chunk timeout (%v)", elapsed, 2*chunkTimeout)
	}
	// The hung sites' breakers opened, keeping them out of fresh plans.
	for _, id := range hung {
		if st := c.client.Health().State(id); st != health.Open {
			t.Fatalf("hung site %d breaker = %v, want Open", id, st)
		}
	}
}

// TestFlappingSiteBreakerRecovery drives one site through a full
// fail -> open -> half-open -> closed cycle and checks the planner sees
// it leave and rejoin, all from a seeded injector and explicit plan
// swaps (no real outages), so the schedule is deterministic.
func TestFlappingSiteBreakerRecovery(t *testing.T) {
	const backoff = 40 * time.Millisecond
	c := newChaosCluster(t, 4, core.Config{
		K: 2, R: 2, Seed: 23,
		ChunkTimeout: time.Second,
	}, health.Config{OpenBackoff: backoff})

	data := chaosData(2048)
	if err := c.client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.catalog.BlockMeta("blk")
	flapper := meta.Sites[0]

	// Site starts flapping: every operation fails.
	c.wrapped[flapper].Set(faults.Plan{ErrorRate: 1})
	got, err := c.client.Get("blk")
	if err != nil {
		t.Fatalf("read during flap: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read during flap returned wrong data")
	}
	tr := c.client.Health()
	if st := tr.State(flapper); st != health.Open {
		t.Fatalf("flapping site breaker = %v, want Open", st)
	}
	if tr.Available(flapper) {
		t.Fatal("open breaker still reports the site available to planning")
	}

	// While open, probes are suppressed entirely (no half-open until the
	// backoff elapses), so a failed probe storm cannot keep it open.
	c.client.ProbeAll()
	if st := tr.State(flapper); st != health.Open {
		t.Fatalf("breaker = %v after early probe, want still Open", st)
	}

	// The site heals; once the backoff expires a half-open probe from
	// ProbeAll closes the breaker again.
	c.wrapped[flapper].Set(faults.Plan{})
	deadline := time.Now().Add(5 * time.Second)
	for tr.State(flapper) != health.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed; state = %v", tr.State(flapper))
		}
		time.Sleep(backoff / 2)
		c.client.ProbeAll()
	}
	if !tr.Available(flapper) {
		t.Fatal("closed breaker should report the site available")
	}

	// Reads keep working after recovery.
	if got, err := c.client.Get("blk"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-recovery read: %v", err)
	}

	// The whole cycle is visible in metrics: at least one transition to
	// open, one to half-open and one back to closed, and no breaker
	// remains open.
	snap := c.reg.Snapshot()
	for _, to := range []string{"open", "half-open", "closed"} {
		if n := snap.CounterValue("health_transitions_total", to); n < 1 {
			t.Fatalf("health_transitions_total{to=%q} = %d, want >= 1", to, n)
		}
	}
	if g := snap.GaugeValue("health_open_sites"); g != 0 {
		t.Fatalf("health_open_sites = %d, want 0 after recovery", g)
	}
}

// TestHedgedReadRacesSlowSite checks deadline-triggered hedging: when
// every planned read is slower than the hedge delay, the client fetches
// a not-yet-planned chunk from another site and the hedge metrics show
// the race.
func TestHedgedReadRacesSlowSite(t *testing.T) {
	c := newChaosCluster(t, 6, core.Config{
		K: 2, R: 2, Seed: 31,
		HedgeDelay:   20 * time.Millisecond,
		ChunkTimeout: 2 * time.Second,
	}, health.Config{})

	data := chaosData(4096)
	if err := c.client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.catalog.BlockMeta("blk")
	// Every chunk-holding site is slow; the hedge fires and races them.
	for _, id := range meta.Sites {
		c.wrapped[id].Set(faults.Plan{Latency: 120 * time.Millisecond})
	}
	// One parity site stays fast: hedged reads pick the cheapest
	// unplanned chunk, which must come from one of the slow-free sites.
	fast := meta.Sites[len(meta.Sites)-1]
	c.wrapped[fast].Set(faults.Plan{})

	got, err := c.client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hedged read returned wrong data")
	}
	snap := c.reg.Snapshot()
	if n := snap.CounterValue("client_hedged_reads_total", ""); n < 1 {
		t.Fatalf("client_hedged_reads_total = %d, want >= 1", n)
	}
	won := snap.CounterValue("client_hedges_won_total", "")
	lost := snap.CounterValue("client_hedges_lost_total", "")
	if won+lost != snap.CounterValue("client_hedged_reads_total", "") {
		t.Fatalf("hedges won(%d)+lost(%d) != launched(%d)", won, lost,
			snap.CounterValue("client_hedged_reads_total", ""))
	}
}

// TestRetriesRecoverFromTransientErrors checks the retry loop: a site
// that fails exactly once per operation succeeds on the second attempt,
// so reads complete without replanning and the retry counter advances.
func TestRetriesRecoverFromTransientErrors(t *testing.T) {
	c := newChaosCluster(t, 4, core.Config{
		K: 2, R: 2, Seed: 47,
		Retry: core.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond},
	}, health.Config{FailureThreshold: 10})

	data := chaosData(1024)
	if err := c.client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.catalog.BlockMeta("blk")
	// Half the operations fail; with 4 attempts per chunk the read still
	// converges (deterministically, from the shared seeded injector).
	for _, id := range meta.Sites {
		c.wrapped[id].Set(faults.Plan{ErrorRate: 0.5})
	}
	got, err := c.client.Get("blk")
	if err != nil {
		t.Fatalf("read with transient errors: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read with transient errors returned wrong data")
	}
	snap := c.reg.Snapshot()
	if n := snap.CounterValue("client_retries_total", ""); n < 1 {
		t.Fatalf("client_retries_total = %d, want >= 1", n)
	}
}

// TestZoneOutageReadsStayAvailable is the whole-zone chaos scenario:
// every site in one zone dies at once while reader goroutines hammer the
// cluster. Reads must stay available throughout the outage (degraded,
// reconstructing from surviving zones), repair must migrate every lost
// chunk onto healthy zones, and reads must still be correct afterward.
// Run under -race this also exercises the scheduler's concurrency caps
// against the foreground read path.
func TestZoneOutageReadsStayAvailable(t *testing.T) {
	cfg := core.ClusterConfig{
		NumSites:     6,
		Zones:        3,
		EnableRepair: true,
		RepairGrace:  -1, // repair immediately after the first failed probe
	}
	cfg.Client.InlineExact = true
	cfg.Client.Seed = 53
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	payloads := make(map[model.BlockID][]byte)
	for i := 0; i < 8; i++ {
		id := model.BlockID(string(rune('a'+i)) + "-blk")
		payloads[id] = chaosData(600 + i)
		if err := c.Client.Put(id, payloads[id]); err != nil {
			t.Fatal(err)
		}
	}

	// Readers hammer every block for the whole outage + repair window.
	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for id, want := range payloads {
					got, err := c.Client.Get(id)
					if err != nil {
						select {
						case errs <- fmt.Errorf("read %s during outage: %w", id, err):
						default:
						}
						continue
					}
					if !bytes.Equal(got, want) {
						select {
						case errs <- fmt.Errorf("read %s returned wrong data", id):
						default:
						}
					}
				}
			}
		}()
	}

	// The whole zone drops mid-traffic.
	failed := map[model.SiteID]bool{}
	for _, id := range c.ZoneSites("z0") {
		failed[id] = true
	}
	c.FailZone("z0")
	if len(failed) == 0 {
		t.Fatal("zone z0 held no sites")
	}

	// Drive control-plane rounds until repair has moved every chunk off
	// the dead zone (retries absorb CAS conflicts between repair tasks).
	ctx := context.Background()
	converged := false
	for round := 0; round < 10 && !converged; round++ {
		c.Tick(ctx)
		converged = true
		for id := range payloads {
			meta, _ := c.Catalog.BlockMeta(id)
			for _, s := range meta.Sites {
				if failed[s] {
					converged = false
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if !converged {
		t.Fatal("repair did not migrate all chunks off the failed zone")
	}
	// Post-repair reads are correct with the zone still down.
	for id, want := range payloads {
		got, err := c.Client.Get(id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %s unreadable after zone repair: %v", id, err)
		}
	}
}
