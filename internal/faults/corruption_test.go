package faults

import (
	"errors"
	"fmt"
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/storage"
)

func fillStore(t *testing.T, n int) *storage.MemStore {
	t.Helper()
	st := storage.NewMemStore()
	for i := 0; i < n; i++ {
		ref := model.ChunkRef{Block: model.BlockID(fmt.Sprintf("blk-%03d", i/4)), Chunk: i % 4}
		data := make([]byte, 256+i)
		for j := range data {
			data[j] = byte(i + j)
		}
		if err := st.Put(ref, data); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestCorruptDetectedByVerify(t *testing.T) {
	st := fillStore(t, 40)
	damaged, err := Corrupt(st, NewInjector(7), CorruptionPlan{BitFlipRate: 0.5, TruncateRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := st.List()
	if len(damaged) != len(refs) {
		t.Fatalf("damaged %d of %d chunks, want all", len(damaged), len(refs))
	}
	// Every damaged chunk must be caught: sealed CRCs catch flips,
	// sealed lengths catch truncation. 100% detection is the acceptance
	// bar for the scrubber.
	for _, ref := range damaged {
		if _, err := st.Verify(ref); !errors.Is(err, storage.ErrCorruptChunk) {
			t.Fatalf("Verify(%s) = %v, want ErrCorruptChunk", ref, err)
		}
	}
}

func TestCorruptPartialAndDeterministic(t *testing.T) {
	run := func(seed int64) []model.ChunkRef {
		st := fillStore(t, 60)
		damaged, err := Corrupt(st, NewInjector(seed), CorruptionPlan{BitFlipRate: 0.3, TruncateRate: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		return damaged
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 60 {
		t.Fatalf("partial plan damaged %d of 60 chunks", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed damaged %d vs %d chunks", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	if c := run(43); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical damage sets")
		}
	}
}

func TestCorruptRequiresRawMutator(t *testing.T) {
	if _, err := Corrupt(plainStore{}, NewInjector(1), CorruptionPlan{BitFlipRate: 1}); err == nil {
		t.Fatal("expected error for store without RawMutator")
	}
}

// plainStore is a Store with no raw-mutation hook.
type plainStore struct{ storage.Store }

func (plainStore) List() ([]model.ChunkRef, error) { return nil, nil }
