// Package faults provides deterministic fault injection for EC-Store's
// data plane. Two wrappers cover the layers the client talks through:
//
//   - Site wraps a storage.SiteAPI and injects refusals, latency spikes,
//     hangs (the site "accepts" the request but never responds), and
//     error returns into individual storage operations.
//   - Network wraps a transport.Network and injects connection refusals,
//     dial latency, one-way partitions (this dialer cannot reach an
//     address while the reverse direction still works), and mid-stream
//     stalls on established connections.
//
// All probabilistic decisions come from one seeded Injector, so a chaos
// test that fixes the seed replays the exact same fault schedule every
// run. Wrappers are safe for concurrent use and their fault plans can be
// swapped at runtime (to flap a site up and down, heal a partition, or
// release a stall).
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

// ErrInjected is the default error returned by probabilistic error
// injection. Chaos tests can match it with errors.Is.
var ErrInjected = errors.New("faults: injected error")

// Plan describes the faults active on a wrapped component. The zero
// value injects nothing and forwards every operation untouched.
type Plan struct {
	// Refuse fails every operation immediately: storage calls return
	// Err (default ErrInjected), dials return transport.ErrConnRefused.
	// Models a crashed process whose host actively resets connections.
	Refuse bool
	// Hang blocks every operation until the caller's context is done,
	// then returns the context error. Models a site that accepts
	// requests but never responds — the worst case for tail latency,
	// because only the caller's own deadline gets it unstuck.
	Hang bool
	// ErrorRate in [0,1] is the probability that an operation fails
	// with Err after any latency has been applied. Zero never injects.
	ErrorRate float64
	// Err overrides the injected error for Refuse and ErrorRate.
	Err error
	// Latency delays every operation before it is forwarded; Jitter
	// adds a uniformly distributed extra delay in [0, Jitter). The
	// sleep honors the caller's context.
	Latency time.Duration
	Jitter  time.Duration
}

func (p Plan) err() error {
	if p.Err != nil {
		return p.Err
	}
	return ErrInjected
}

// Injector is a seeded source of fault decisions shared by any number of
// wrappers. One injector per test keeps the whole fault schedule
// reproducible from a single seed.
type Injector struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewInjector seeds an injector. The same seed yields the same decision
// sequence given the same order of operations.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// roll reports whether an event with probability rate fires.
func (in *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < rate
}

// jitter returns a uniform duration in [0, d).
func (in *Injector) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return time.Duration(in.rng.Int63n(int64(d)))
}

// pick returns a uniform int64 in [0, n); 0 when n <= 0.
func (in *Injector) pick(n int64) int64 {
	if n <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Int63n(n)
}

// sleep waits for d, honoring ctx.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Site wraps a storage.SiteAPI with fault injection. It implements
// storage.SiteAPI itself, so it can stand in anywhere a real site client
// does: core.Client deps, mover and repair site maps, cluster wiring.
type Site struct {
	api storage.SiteAPI
	inj *Injector

	mu   sync.Mutex
	plan Plan
}

var _ storage.SiteAPI = (*Site)(nil)

// NewSite wraps api. A nil injector gets seed 0.
func NewSite(api storage.SiteAPI, inj *Injector) *Site {
	if inj == nil {
		inj = NewInjector(0)
	}
	return &Site{api: api, inj: inj}
}

// Set swaps the active fault plan. Operations already in flight keep the
// plan they started with.
func (s *Site) Set(p Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = p
}

// Plan returns the active fault plan.
func (s *Site) Plan() Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// before applies the active plan to one operation. A non-nil return is
// the injected failure; nil means the call should be forwarded.
func (s *Site) before(ctx context.Context) error {
	p := s.Plan()
	if p.Refuse {
		return fmt.Errorf("faults: site refused: %w", p.err())
	}
	if p.Hang {
		<-ctx.Done()
		return ctx.Err()
	}
	if d := p.Latency + s.inj.jitter(p.Jitter); d > 0 {
		if err := sleep(ctx, d); err != nil {
			return err
		}
	}
	if s.inj.roll(p.ErrorRate) {
		return p.err()
	}
	return ctx.Err()
}

func (s *Site) PutChunk(ctx context.Context, ref model.ChunkRef, data []byte) error {
	if err := s.before(ctx); err != nil {
		return err
	}
	return s.api.PutChunk(ctx, ref, data)
}

func (s *Site) GetChunk(ctx context.Context, ref model.ChunkRef) ([]byte, error) {
	if err := s.before(ctx); err != nil {
		return nil, err
	}
	return s.api.GetChunk(ctx, ref)
}

func (s *Site) GetChunkRange(ctx context.Context, ref model.ChunkRef, off, n int64) ([]byte, error) {
	if err := s.before(ctx); err != nil {
		return nil, err
	}
	return s.api.GetChunkRange(ctx, ref, off, n)
}

func (s *Site) PutChunkStream(ctx context.Context, ref model.ChunkRef, off int64, data []byte) error {
	if err := s.before(ctx); err != nil {
		return err
	}
	return s.api.PutChunkStream(ctx, ref, off, data)
}

func (s *Site) DeleteChunk(ctx context.Context, ref model.ChunkRef) error {
	if err := s.before(ctx); err != nil {
		return err
	}
	return s.api.DeleteChunk(ctx, ref)
}

func (s *Site) DeleteBlock(ctx context.Context, id model.BlockID) error {
	if err := s.before(ctx); err != nil {
		return err
	}
	return s.api.DeleteBlock(ctx, id)
}

func (s *Site) ListChunks(ctx context.Context) ([]model.ChunkRef, error) {
	if err := s.before(ctx); err != nil {
		return nil, err
	}
	return s.api.ListChunks(ctx)
}

func (s *Site) VerifyChunk(ctx context.Context, ref model.ChunkRef) (storage.ChunkCheck, error) {
	if err := s.before(ctx); err != nil {
		return storage.ChunkCheck{}, err
	}
	return s.api.VerifyChunk(ctx, ref)
}

func (s *Site) Probe(ctx context.Context) error {
	if err := s.before(ctx); err != nil {
		return err
	}
	return s.api.Probe(ctx)
}

func (s *Site) LoadReport(ctx context.Context) (stats.SiteLoad, error) {
	if err := s.before(ctx); err != nil {
		return stats.SiteLoad{}, err
	}
	return s.api.LoadReport(ctx)
}

// Network wraps a transport.Network with fault injection on dials and on
// the connections they produce. Because the wrapper sits on the dialing
// side only, partitions are one-way by construction: blocking an address
// here severs this dialer's path while the reverse direction (or another
// dialer) still works.
type Network struct {
	inner transport.Network
	inj   *Injector

	mu      sync.Mutex
	plan    Plan
	blocked map[string]bool
	stall   *stallCtl // non-nil while new conns should stall mid-stream
	conns   []*faultConn
}

var _ transport.Network = (*Network)(nil)

// NewNetwork wraps inner. A nil injector gets seed 0.
func NewNetwork(inner transport.Network, inj *Injector) *Network {
	if inj == nil {
		inj = NewInjector(0)
	}
	return &Network{inner: inner, inj: inj, blocked: make(map[string]bool)}
}

// Set swaps the dial fault plan.
func (n *Network) Set(p Plan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.plan = p
}

// PartitionTo blocks dials from this wrapper to addr with
// transport.ErrConnRefused. The reverse direction is unaffected.
func (n *Network) PartitionTo(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[addr] = true
}

// HealTo lifts a one-way partition.
func (n *Network) HealTo(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, addr)
}

// StallConns controls mid-stream hangs: while on, every connection
// dialed through this wrapper blocks in Read and Write (bytes neither
// flow nor error) until the stall is released or the connection closed.
// Turning it off releases all currently stalled connections.
func (n *Network) StallConns(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if on {
		if n.stall == nil {
			n.stall = newStallCtl()
			for _, c := range n.conns {
				c.setStall(n.stall)
			}
		}
		return
	}
	if n.stall != nil {
		n.stall.release()
		n.stall = nil
	}
}

// Listen passes through to the wrapped network.
func (n *Network) Listen(addr string) (net.Listener, error) {
	return n.inner.Listen(addr)
}

// Dial connects with a background context.
//
//lint:ignore ctxfirst implements transport.Network's context-free Dial; injected decisions stay seeded either way
func (n *Network) Dial(addr string) (net.Conn, error) {
	return n.DialContext(context.Background(), addr)
}

// DialContext applies the dial plan and partition set, then dials
// through the wrapped network and wraps the connection for stalling.
func (n *Network) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	n.mu.Lock()
	p := n.plan
	partitioned := n.blocked[addr]
	n.mu.Unlock()

	if p.Refuse || partitioned {
		return nil, fmt.Errorf("%w: %s (injected)", transport.ErrConnRefused, addr)
	}
	if p.Hang {
		<-ctx.Done()
		return nil, fmt.Errorf("%w: %s (injected hang: %w)", transport.ErrConnRefused, addr, ctx.Err())
	}
	if d := p.Latency + n.inj.jitter(p.Jitter); d > 0 {
		if err := sleep(ctx, d); err != nil {
			return nil, fmt.Errorf("%w: %s (injected latency: %w)", transport.ErrConnRefused, addr, err)
		}
	}
	if n.inj.roll(p.ErrorRate) {
		return nil, fmt.Errorf("faults: dial %s: %w", addr, p.err())
	}
	conn, err := n.inner.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: conn, done: make(chan struct{})}
	n.mu.Lock()
	fc.setStall(n.stall)
	n.conns = append(n.conns, fc)
	n.mu.Unlock()
	return fc, nil
}

// stallCtl is a broadcast gate: wait blocks until release.
type stallCtl struct {
	ch chan struct{}
}

func newStallCtl() *stallCtl { return &stallCtl{ch: make(chan struct{})} }

func (s *stallCtl) release() { close(s.ch) }

// faultConn wraps a net.Conn so an active stallCtl blocks Read/Write.
type faultConn struct {
	net.Conn
	mu    sync.Mutex
	stall *stallCtl
	done  chan struct{}
	once  sync.Once
}

func (c *faultConn) setStall(s *stallCtl) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stall = s
}

// gate blocks while a stall is active; it returns an error once the
// connection is closed so a stalled peer cannot leak goroutines.
func (c *faultConn) gate() error {
	c.mu.Lock()
	s := c.stall
	c.mu.Unlock()
	if s == nil {
		return nil
	}
	select {
	case <-s.ch:
		return nil
	case <-c.done:
		return net.ErrClosed
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return c.Conn.Close()
}
