package faults

import (
	"fmt"

	"ecstore/internal/model"
	"ecstore/internal/storage"
)

// CorruptionPlan describes seeded media damage for one site's chunk
// store. Each chunk is damaged independently: first a bit-flip roll,
// then (if that misses) a truncation roll, so BitFlipRate+TruncateRate
// up to 1.0 partitions the chunk population.
//
// Flips target payload bytes, never the 24-byte header: a flipped magic
// would demote the frame to a legacy (pre-checksum) chunk, which is
// indistinguishable from genuine legacy data by design and therefore
// escapes CRC detection — see DESIGN.md §14 for why that window is
// accepted. Truncation removes tail payload bytes, which a sealed
// header's length field catches without reading the payload.
type CorruptionPlan struct {
	// BitFlipRate in [0,1] is the per-chunk probability of flipping one
	// uniformly chosen payload bit.
	BitFlipRate float64
	// TruncateRate in [0,1] is the per-chunk probability (given the flip
	// roll missed) of truncating the chunk's payload tail.
	TruncateRate float64
}

// Corrupt sweeps st's chunks in sorted-ref order and damages each
// according to plan, drawing every decision from in — a fixed seed
// replays the exact same damage set. It returns the refs damaged.
//
// The store must implement storage.RawMutator (both built-ins do);
// damage is applied to raw frames below the checksum layer, exactly
// like real bit rot. Chunks with empty payloads are skipped.
func Corrupt(st storage.Store, in *Injector, plan CorruptionPlan) ([]model.ChunkRef, error) {
	mut, ok := st.(storage.RawMutator)
	if !ok {
		return nil, fmt.Errorf("faults: store %T has no raw mutation hook", st)
	}
	refs, err := st.List()
	if err != nil {
		return nil, err
	}
	var damaged []model.ChunkRef
	for _, ref := range refs {
		flip := in.roll(plan.BitFlipRate)
		trunc := !flip && in.roll(plan.TruncateRate)
		if !flip && !trunc {
			continue
		}
		hit := false
		err := mut.MutateRaw(ref, func(raw []byte) []byte {
			payOff := storage.FramePayloadOffset(raw)
			payLen := int64(len(raw)) - int64(payOff)
			if payLen <= 0 {
				return raw
			}
			hit = true
			if trunc {
				cut := 1 + in.pick(payLen)
				return raw[:int64(len(raw))-cut]
			}
			bit := in.pick(payLen * 8)
			raw[int64(payOff)+bit/8] ^= 1 << uint(bit%8)
			return raw
		})
		if err != nil {
			return damaged, err
		}
		if hit {
			damaged = append(damaged, ref)
		}
	}
	return damaged, nil
}
