package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

func newSvc(t *testing.T) *storage.Service {
	t.Helper()
	return storage.NewService(storage.ServiceConfig{Site: 1}, storage.NewMemStore())
}

func TestSitePassthrough(t *testing.T) {
	site := NewSite(newSvc(t), nil)
	ctx := context.Background()
	ref := model.ChunkRef{Block: "a", Chunk: 0}
	if err := site.PutChunk(ctx, ref, []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, err := site.GetChunk(ctx, ref)
	if err != nil || string(data) != "x" {
		t.Fatalf("GetChunk = %q, %v", data, err)
	}
	if err := site.Probe(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSiteInjectsErrors(t *testing.T) {
	site := NewSite(newSvc(t), NewInjector(7))
	site.Set(Plan{ErrorRate: 1})
	_, err := site.GetChunk(context.Background(), model.ChunkRef{Block: "a"})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	custom := errors.New("boom")
	site.Set(Plan{ErrorRate: 1, Err: custom})
	if err := site.Probe(context.Background()); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom error", err)
	}
	site.Set(Plan{})
	if err := site.Probe(context.Background()); err != nil {
		t.Fatalf("healed site still failing: %v", err)
	}
}

func TestSiteRefuse(t *testing.T) {
	site := NewSite(newSvc(t), nil)
	site.Set(Plan{Refuse: true})
	if err := site.Probe(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestSiteHangHonorsContext(t *testing.T) {
	site := NewSite(newSvc(t), nil)
	site.Set(Plan{Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := site.GetChunk(ctx, model.ChunkRef{Block: "a"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hung call took %v despite deadline", elapsed)
	}
}

func TestSiteLatency(t *testing.T) {
	site := NewSite(newSvc(t), NewInjector(1))
	site.Set(Plan{Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := site.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency injection too fast: %v", elapsed)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	a, b := NewInjector(42), NewInjector(42)
	for i := 0; i < 100; i++ {
		if a.roll(0.5) != b.roll(0.5) {
			t.Fatalf("roll %d diverged for identical seeds", i)
		}
		if a.jitter(time.Second) != b.jitter(time.Second) {
			t.Fatalf("jitter %d diverged for identical seeds", i)
		}
	}
}

func TestNetworkPartitionOneWay(t *testing.T) {
	mem := transport.NewMemory()
	l, err := mem.Listen("site")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	a := NewNetwork(mem, NewInjector(1))
	b := NewNetwork(mem, NewInjector(2))
	a.PartitionTo("site")

	if _, err := a.Dial("site"); !errors.Is(err, transport.ErrConnRefused) {
		t.Fatalf("partitioned dial err = %v, want ErrConnRefused", err)
	}
	conn, err := b.Dial("site") // reverse path unaffected: one-way partition
	if err != nil {
		t.Fatalf("unpartitioned dialer failed: %v", err)
	}
	conn.Close()

	a.HealTo("site")
	conn, err = a.Dial("site")
	if err != nil {
		t.Fatalf("healed dial failed: %v", err)
	}
	conn.Close()
}

func TestNetworkRefuseAndErrors(t *testing.T) {
	mem := transport.NewMemory()
	n := NewNetwork(mem, NewInjector(3))
	n.Set(Plan{Refuse: true})
	if _, err := n.Dial("nowhere"); !errors.Is(err, transport.ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
	n.Set(Plan{ErrorRate: 1})
	if _, err := n.Dial("nowhere"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestNetworkStallConns(t *testing.T) {
	mem := transport.NewMemory()
	l, err := mem.Listen("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()

	n := NewNetwork(mem, nil)
	conn, err := n.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Healthy round trip first.
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	// Stalled: the write neither completes nor errors.
	n.StallConns(true)
	done := make(chan error, 1)
	go func() {
		_, err := conn.Write([]byte("pong"))
		if err == nil {
			_, err = conn.Read(make([]byte, 4))
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled conn made progress (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Released: the blocked operation resumes and completes.
	n.StallConns(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released conn failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("released conn never made progress")
	}
}

func TestStalledConnUnblocksOnClose(t *testing.T) {
	mem := transport.NewMemory()
	l, err := mem.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			_ = conn
		}
	}()

	n := NewNetwork(mem, nil)
	conn, err := n.Dial("sink")
	if err != nil {
		t.Fatal(err)
	}
	n.StallConns(true)
	done := make(chan error, 1)
	go func() {
		_, err := conn.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read on closed stalled conn returned nil error")
		}
	case <-time.After(time.Second):
		t.Fatal("closing a stalled conn did not unblock its reader")
	}
}
