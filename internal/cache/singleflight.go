package cache

import (
	"context"
	"sync"

	"ecstore/internal/model"
)

// flightKey identifies one fetch+decode in flight: the block and the
// placement version it is being fetched under. Versions are part of the
// key so a request issued after a move never piggybacks on bytes fetched
// under the old placement.
type flightKey struct {
	id      model.BlockID
	version uint64
}

// Flight is one in-flight fetch+decode. The leader performs the work
// and calls Complete; followers Wait for the result (or their context).
type Flight struct {
	group *FlightGroup
	key   flightKey

	done chan struct{}
	data []byte
	err  error
}

// FlightGroup deduplicates concurrent fetch+decode work per
// (block, version): the first caller becomes the leader, later callers
// share its result instead of issuing redundant remote reads.
type FlightGroup struct {
	mu      sync.Mutex
	flights map[flightKey]*Flight
}

// NewFlightGroup returns an empty group.
func NewFlightGroup() *FlightGroup {
	return &FlightGroup{flights: make(map[flightKey]*Flight)}
}

// Join returns the flight for (id, version) and whether the caller is
// its leader. The leader MUST call Complete exactly once (typically via
// defer), even on error, or followers block until their contexts expire.
func (g *FlightGroup) Join(id model.BlockID, version uint64) (*Flight, bool) {
	key := flightKey{id: id, version: version}
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f, false
	}
	f := &Flight{group: g, key: key, done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// Complete publishes the leader's result and wakes all followers. The
// flight is removed from the group first, so a request arriving after
// completion starts a fresh flight rather than observing a settled one.
func (f *Flight) Complete(data []byte, err error) {
	f.group.mu.Lock()
	delete(f.group.flights, f.key)
	f.group.mu.Unlock()
	f.data = data
	f.err = err
	close(f.done)
}

// Wait blocks until the leader completes the flight or ctx expires. On
// success the returned bytes are a private copy: followers and the
// leader's caller must not share a mutable backing array.
func (f *Flight) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-f.done:
	}
	if f.err != nil {
		return nil, f.err
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}
