package cache

// sketch is a small count-min sketch used for TinyLFU-style admission:
// it approximates how often each block has been requested recently so
// the cache can refuse to evict a popular resident entry for a one-hit
// wonder. Counters are 4-bit-equivalent (capped uint8) and the whole
// sketch is periodically halved ("aged") so estimates track the recent
// window rather than all of history.
//
// The sketch is deterministic: row seeds derive from the configured
// cache seed via splitmix64, so identical access sequences produce
// identical admission decisions (the determinism lint rule covers this
// package).
type sketch struct {
	rows  [sketchDepth][]uint8
	seeds [sketchDepth]uint64
	mask  uint64
	// adds counts Add calls since the last aging pass; when it reaches
	// sampleCap every counter is halved.
	adds      int
	sampleCap int
}

const (
	sketchDepth = 4
	// counterCap bounds each counter; TinyLFU needs only coarse
	// frequency ranks, and a low cap makes aging cheap and keeps
	// recently-hot entries from dominating forever.
	counterCap = 15
)

// newSketch sizes the sketch for roughly the given number of tracked
// entries (rounded up to a power of two, minimum 64 slots per row).
func newSketch(entries int, seed int64) *sketch {
	width := 64
	for width < entries {
		width *= 2
	}
	s := &sketch{
		mask:      uint64(width - 1),
		sampleCap: width * 8,
	}
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := range s.rows {
		s.rows[i] = make([]uint8, width)
		x = splitmix64(x)
		s.seeds[i] = x | 1 // odd multiplier
	}
	return s
}

// splitmix64 is the SplitMix64 finalizer; it spreads the seed into
// independent per-row multipliers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// slot maps a block hash to row i's counter index.
func (s *sketch) slot(i int, h uint64) uint64 {
	return (h * s.seeds[i]) >> 17 & s.mask
}

// add records one access of the block with hash h.
func (s *sketch) add(h uint64) {
	for i := range s.rows {
		c := &s.rows[i][s.slot(i, h)]
		if *c < counterCap {
			*c++
		}
	}
	s.adds++
	if s.adds >= s.sampleCap {
		s.age()
	}
}

// estimate returns the minimum counter across rows — the usual
// count-min upper bound on the block's recent access count.
func (s *sketch) estimate(h uint64) int {
	est := counterCap
	for i := range s.rows {
		if c := int(s.rows[i][s.slot(i, h)]); c < est {
			est = c
		}
	}
	return est
}

// age halves every counter, decaying history so the sketch tracks the
// recent access window (the "reset" operation from the TinyLFU paper).
func (s *sketch) age() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
	s.adds = 0
}

// hashID is FNV-1a over the block id, the shared hash for sketch slots
// and shard selection.
func hashID(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}
