package cache

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/stats"
)

// fakeClock is an injectable deterministic clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func newTestCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c := New(cfg)
	if c == nil {
		t.Fatalf("New(%+v) = nil", cfg)
	}
	t.Cleanup(c.Close)
	return c
}

func TestHitMissAndCopySemantics(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 1 << 20, Shards: 1, Seed: 1})
	id := model.BlockID("block-0001")
	payload := []byte("decoded bytes")

	if _, ok := c.Get(id, 3); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Put(id, 3, payload) {
		t.Fatal("put rejected with empty cache")
	}
	payload[0] = 'X' // caller mutates its slice after Put; cache must hold a copy

	got, ok := c.Get(id, 3)
	if !ok {
		t.Fatal("miss after put")
	}
	if string(got) != "decoded bytes" {
		t.Fatalf("got %q, want %q (cache shared the caller's backing array)", got, "decoded bytes")
	}
	got[0] = 'Y' // mutating a hit must not corrupt the cache
	again, ok := c.Get(id, 3)
	if !ok || string(again) != "decoded bytes" {
		t.Fatalf("after mutating a returned hit: got %q ok=%v", again, ok)
	}

	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 entry", s)
	}
	if s.HitRatio() < 0.6 || s.HitRatio() > 0.7 {
		t.Fatalf("hit ratio = %v, want 2/3", s.HitRatio())
	}
}

func TestVersionMismatchInvalidates(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 1 << 20, Shards: 1, Seed: 1})
	id := model.BlockID("moved-block")
	c.Put(id, 1, []byte("old placement"))

	// The block moved: version bumped to 2. The old entry must not hit.
	if _, ok := c.Get(id, 2); ok {
		t.Fatal("stale version served as a hit")
	}
	// StaleTTL is 0, so the mismatch dropped the entry outright: even the
	// old version is gone now.
	if _, ok := c.Get(id, 1); ok {
		t.Fatal("entry survived a version invalidation with StaleTTL=0")
	}
	if s := c.Stats(); s.Invalidations != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 invalidation, 0 entries", s)
	}
}

func TestStaleIfError(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache(t, Config{MaxBytes: 1 << 20, Shards: 1, Seed: 1, StaleTTL: time.Minute, Clock: clk.Now})
	id := model.BlockID("degraded-block")
	c.Put(id, 1, []byte("last good bytes"))

	// Version bump marks the entry stale instead of dropping it.
	if _, ok := c.Get(id, 2); ok {
		t.Fatal("stale version served as a regular hit")
	}
	// A stale entry never satisfies Get, even for its own version.
	if _, ok := c.Get(id, 1); ok {
		t.Fatal("stale entry served as a regular hit")
	}
	data, ver, ok := c.GetStale(id)
	if !ok || string(data) != "last good bytes" || ver != 1 {
		t.Fatalf("GetStale = %q v%d ok=%v, want last good bytes v1", data, ver, ok)
	}

	clk.Advance(2 * time.Minute)
	if _, _, ok := c.GetStale(id); ok {
		t.Fatal("stale entry served beyond StaleTTL")
	}
	if dropped := c.Sweep(); dropped != 1 {
		t.Fatalf("Sweep dropped %d, want 1", dropped)
	}
	if s := c.Stats(); s.StaleServes != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 stale serve, 0 entries", s)
	}
}

func TestGetStaleDisabledByDefault(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 1 << 20, Shards: 1, Seed: 1})
	c.Put("b", 1, []byte("x"))
	if _, _, ok := c.GetStale("b"); ok {
		t.Fatal("GetStale served with StaleTTL=0")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Budget fits exactly 4 of the 100-byte blocks in one shard.
	c := newTestCache(t, Config{MaxBytes: 400, Shards: 1, Seed: 1})
	data := make([]byte, 100)
	ids := []model.BlockID{"a", "b", "c", "d"}
	for _, id := range ids {
		if !c.Put(id, 1, data) {
			t.Fatalf("put %s rejected", id)
		}
	}
	// Touch "a" so "b" is the LRU tail.
	if _, ok := c.Get("a", 1); !ok {
		t.Fatal("miss on resident a")
	}
	if !c.Put("e", 1, data) {
		t.Fatal("put e rejected; equal-frequency candidate should displace the LRU tail")
	}
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("LRU victim b still resident")
	}
	for _, id := range []model.BlockID{"a", "c", "d", "e"} {
		if _, ok := c.Get(id, 1); !ok {
			t.Fatalf("wrongly evicted %s", id)
		}
	}
}

func TestAdmissionProtectsHotResidents(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 200, Shards: 1, Seed: 1})
	data := make([]byte, 100)
	// Make both residents hot: several sketch increments each.
	for i := 0; i < 6; i++ {
		c.Get("hot-1", 1)
		c.Get("hot-2", 1)
	}
	c.Put("hot-1", 1, data)
	c.Put("hot-2", 1, data)

	// A block seen once must not displace them.
	if c.Put("one-hit-wonder", 1, data) {
		t.Fatal("cold candidate displaced a hot resident")
	}
	if s := c.Stats(); s.AdmissionRejects == 0 {
		t.Fatalf("stats = %+v, want an admission reject", s)
	}
	for _, id := range []model.BlockID{"hot-1", "hot-2"} {
		if _, ok := c.Get(id, 1); !ok {
			t.Fatalf("hot resident %s was evicted", id)
		}
	}
}

func TestHotnessBoostAdmitsTrackedBlock(t *testing.T) {
	tr := stats.NewCoAccessTracker(64)
	// The tracker has seen "popular" in every request window.
	for i := 0; i < 50; i++ {
		tr.Record([]model.BlockID{"popular", model.BlockID(fmt.Sprintf("noise-%d", i))})
	}
	c := newTestCache(t, Config{MaxBytes: 100, Shards: 1, Seed: 1, Hotness: tr})
	data := make([]byte, 100)

	// Resident was directly requested a few times (sketch count 3).
	for i := 0; i < 3; i++ {
		c.Get("resident", 1)
	}
	c.Put("resident", 1, data)

	// "popular" has only one sketch touch, but Frequency≈1 from the
	// statistics service lifts its score past the resident's.
	if !c.Put("popular", 1, data) {
		t.Fatal("stats-hot block was refused admission")
	}
	if _, ok := c.Get("popular", 1); !ok {
		t.Fatal("stats-hot block not resident after put")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 100, Shards: 1, Seed: 1})
	if c.Put("huge", 1, make([]byte, 101)) {
		t.Fatal("entry larger than the budget was admitted")
	}
	if s := c.Stats(); s.AdmissionRejects != 1 {
		t.Fatalf("stats = %+v, want 1 admission reject", s)
	}
}

func TestPutRefreshesInPlace(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 1 << 20, Shards: 1, Seed: 1})
	c.Put("b", 1, []byte("v1 bytes"))
	c.Put("b", 2, []byte("v2 bytes"))
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("old version still hits after refresh")
	}
	got, ok := c.Get("b", 2)
	if !ok || string(got) != "v2 bytes" {
		t.Fatalf("refresh lost: got %q ok=%v", got, ok)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("stats = %+v, want a single refreshed entry", s)
	}
}

func TestInvalidate(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 1 << 20, Shards: 1, Seed: 1})
	c.Put("b", 7, []byte("x"))
	c.Invalidate("b")
	if _, ok := c.Get("b", 7); ok {
		t.Fatal("entry survived Invalidate")
	}
	c.Invalidate("b") // absent id is a no-op
	if s := c.Stats(); s.Invalidations != 1 {
		t.Fatalf("stats = %+v, want exactly 1 invalidation", s)
	}
}

func TestPutSizedTracksBudgetWithoutPayload(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 250, Shards: 1, Seed: 1})
	if !c.PutSized("a", 1, nil, 100) || !c.PutSized("b", 1, nil, 100) {
		t.Fatal("sized puts rejected under budget")
	}
	if got, ok := c.Get("a", 1); !ok || got == nil || len(got) != 0 {
		// A nil-payload entry still hits; the copy of nil data is empty.
		if !ok {
			t.Fatal("sized entry missed")
		}
	}
	if s := c.Stats(); s.Bytes != 200 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 200 bytes / 2 entries", s)
	}
	// Third entry forces an eviction to fit.
	c.Get("c", 1) // give c a second touch so it outranks the tail
	if !c.PutSized("c", 1, nil, 100) {
		t.Fatal("third sized put rejected")
	}
	if s := c.Stats(); s.Bytes > 250 {
		t.Fatalf("budget exceeded: %+v", s)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("nil cache hit")
	}
	if c.Put("b", 1, []byte("x")) || c.PutSized("b", 1, nil, 8) {
		t.Fatal("nil cache admitted")
	}
	if _, _, ok := c.GetStale("b"); ok {
		t.Fatal("nil cache stale hit")
	}
	c.Invalidate("b")
	c.Sweep()
	c.StartMaintenance(time.Second)
	c.DedupObserved(3)
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	c.Close()
}

func TestDisabledByZeroBudget(t *testing.T) {
	if New(Config{MaxBytes: 0}) != nil {
		t.Fatal("MaxBytes=0 should disable the cache")
	}
}

func TestMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCache(t, Config{MaxBytes: 1 << 20, Shards: 1, Seed: 1, Metrics: reg})
	c.Put("b", 1, []byte("payload"))
	c.Get("b", 1)
	c.Get("absent", 1)
	c.Stats()

	want := map[string]int64{
		"cache_hits_total":    1,
		"cache_misses_total":  1,
		"cache_inserts_total": 1,
		"cache_entries":       1,
		"cache_bytes":         7,
	}
	snap := reg.Snapshot()
	got := make(map[string]int64)
	for _, m := range snap.Counters {
		got[m.Name] = m.Value
	}
	for _, m := range snap.Gauges {
		got[m.Name] = m.Value
	}
	for name, val := range want {
		if got[name] != val {
			t.Errorf("%s = %d, want %d", name, got[name], val)
		}
	}
}

func TestMaintenanceSweepsAndCloseStops(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxBytes: 1 << 20, Shards: 1, Seed: 1, StaleTTL: time.Millisecond, Clock: clk.Now})
	c.Put("b", 1, []byte("x"))
	c.Get("b", 2) // mark stale
	clk.Advance(time.Hour)

	c.StartMaintenance(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := c.Stats(); s.Entries == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("maintenance goroutine never swept the expired entry")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	c.Close() // idempotent
	c.StartMaintenance(time.Millisecond) // no-op after Close
}

func TestConcurrentAccess(t *testing.T) {
	c := newTestCache(t, Config{MaxBytes: 1 << 16, Seed: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := model.BlockID(fmt.Sprintf("blk-%d", i%37))
				ver := uint64(i % 3)
				switch i % 4 {
				case 0:
					c.Put(id, ver, []byte("payload"))
				case 1:
					c.Get(id, ver)
				case 2:
					c.Invalidate(id)
				default:
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFlightGroupDeduplicates(t *testing.T) {
	g := NewFlightGroup()
	lead, isLeader := g.Join("b", 1)
	if !isLeader {
		t.Fatal("first joiner is not the leader")
	}
	follow, isLeader2 := g.Join("b", 1)
	if isLeader2 || follow != lead {
		t.Fatal("second joiner did not share the leader's flight")
	}
	if _, other := g.Join("b", 2); !other {
		t.Fatal("different version shared a flight")
	}

	done := make(chan struct{})
	var got []byte
	var err error
	go func() {
		defer close(done)
		got, err = follow.Wait(context.Background())
	}()
	lead.Complete([]byte("result"), nil)
	<-done
	if err != nil || string(got) != "result" {
		t.Fatalf("Wait = %q, %v", got, err)
	}

	// After completion the key is free: a new joiner leads a new flight.
	if _, again := g.Join("b", 1); !again {
		t.Fatal("completed flight still registered")
	}
}

func TestFlightWaitHonorsContext(t *testing.T) {
	g := NewFlightGroup()
	lead, _ := g.Join("b", 1)
	defer lead.Complete(nil, context.Canceled)
	follow, _ := g.Join("b", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := follow.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

func TestFlightResultIsCopied(t *testing.T) {
	g := NewFlightGroup()
	lead, _ := g.Join("b", 1)
	follow, _ := g.Join("b", 1)
	src := []byte("shared")
	lead.Complete(src, nil)
	got, err := follow.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	if string(src) != "shared" {
		t.Fatal("follower mutation reached the leader's slice")
	}
}
