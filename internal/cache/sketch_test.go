package cache

import "testing"

func TestSketchCountsAndCaps(t *testing.T) {
	s := newSketch(128, 42)
	h := hashID("block-0001")
	if got := s.estimate(h); got != 0 {
		t.Fatalf("fresh estimate = %d, want 0", got)
	}
	for i := 0; i < 5; i++ {
		s.add(h)
	}
	if got := s.estimate(h); got < 5 {
		t.Fatalf("estimate = %d, want >= 5 (count-min never undercounts)", got)
	}
	for i := 0; i < 100; i++ {
		s.add(h)
	}
	if got := s.estimate(h); got > counterCap {
		t.Fatalf("estimate = %d exceeds cap %d", got, counterCap)
	}
}

func TestSketchAgingHalves(t *testing.T) {
	s := newSketch(64, 7)
	h := hashID("hot")
	for i := 0; i < 8; i++ {
		s.add(h)
	}
	before := s.estimate(h)
	s.age()
	after := s.estimate(h)
	if after != before/2 {
		t.Fatalf("aged estimate = %d, want %d", after, before/2)
	}
}

func TestSketchAgesAutomatically(t *testing.T) {
	s := newSketch(1, 3) // width 64, sampleCap 512
	h := hashID("x")
	for i := 0; i < s.sampleCap; i++ {
		s.add(h)
	}
	if s.adds != 0 {
		t.Fatalf("adds = %d after hitting sampleCap, want 0 (aged)", s.adds)
	}
	if got := s.estimate(h); got >= counterCap {
		t.Fatalf("estimate = %d, want halved below cap", got)
	}
}

func TestSketchDeterministicAcrossInstances(t *testing.T) {
	a, b := newSketch(128, 99), newSketch(128, 99)
	ids := []string{"a", "b", "c", "block-0001", "block-0002"}
	for i, id := range ids {
		for j := 0; j <= i; j++ {
			a.add(hashID(id))
			b.add(hashID(id))
		}
	}
	for _, id := range ids {
		if a.estimate(hashID(id)) != b.estimate(hashID(id)) {
			t.Fatalf("same seed, different estimates for %q", id)
		}
	}
	// A different seed maps ids to different slots (estimates may differ
	// on collision-heavy loads); just assert it constructs distinctly.
	c := newSketch(128, 100)
	if c.seeds == a.seeds {
		t.Fatal("different seeds produced identical row multipliers")
	}
}
