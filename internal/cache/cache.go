// Package cache is ecstore's decoded-block cache tier. EC-Store's read
// path always reassembles a block from k remote chunks; for the skewed
// hot set that the statistics service already tracks, keeping a small
// budget of fully decoded blocks beside the erasure-coded cold data
// removes the network round trips and the decode entirely ("Optimal
// Caching for Low Latency in Distributed Coded Storage Systems", Liu et
// al.; LEGOStore, Zare et al.).
//
// Design:
//
//   - Sharded, byte-budgeted store: FNV-1a(BlockID) picks one of N
//     shards, each a mutex + map + intrusive LRU list, so concurrent
//     readers rarely contend.
//   - TinyLFU admission: a seeded count-min sketch estimates each
//     block's recent request frequency; a candidate only displaces the
//     LRU victim if its estimate (plus a co-access hotness boost from
//     stats.CoAccessTracker) is at least the victim's. One-hit wonders
//     never churn the hot set.
//   - Version-tagged invalidation: entries are keyed (BlockID,
//     meta.Version). Chunk movement and overwrites bump the version
//     through the catalog's CAS, so a hit requires an exact version
//     match — moved or rewritten blocks are never served stale.
//   - Stale-if-error: when StaleTTL > 0, a version-mismatched entry is
//     retained (marked stale) for the TTL instead of dropped, and
//     GetStale can serve it as a last resort when enough sites are down
//     that the block cannot be reconstructed at all.
//
// The package is covered by the determinism lint rule: time comes from
// an injected clock and all hashing/admission randomness derives from
// the configured seed, so simulator runs stay reproducible.
package cache

import (
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/stats"
)

// Hotness supplies the statistics service's view of how hot a block is.
// *stats.CoAccessTracker implements it; nil disables the boost.
type Hotness interface {
	// Frequency returns P(block ∈ request) over the sliding window.
	Frequency(b model.BlockID) float64
	// Partners returns the strongest co-access partners of b.
	Partners(b model.BlockID, max int) []stats.Partner
}

// Config tunes the cache.
type Config struct {
	// MaxBytes is the total decoded-byte budget across all shards.
	// Required; New returns nil when it is <= 0 (cache disabled).
	MaxBytes int64
	// Shards is the number of independent LRU shards; 0 means 16.
	Shards int
	// StaleTTL bounds stale-if-error serving: a version-mismatched
	// entry is kept (marked stale) this long for GetStale. 0 disables
	// stale serving entirely — mismatches are dropped on sight.
	StaleTTL time.Duration
	// Clock supplies time for stale bookkeeping; nil means time.Now.
	// The simulator injects virtual time here.
	Clock func() time.Time
	// Seed drives the admission sketch's hashing.
	Seed int64
	// Hotness optionally boosts admission for blocks the statistics
	// service considers hot. Nil disables the boost.
	Hotness Hotness
	// Metrics optionally exports cache instrumentation into a shared
	// registry. Nil disables it.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// entry is one cached decoded block; entries form per-shard intrusive
// doubly-linked LRU lists (head = most recent).
type entry struct {
	id      model.BlockID
	version uint64
	data    []byte
	size    int64
	stale   bool
	staleAt time.Time

	prev, next *entry
}

// shard is one lock domain: a map for lookup plus an LRU list for
// eviction order and a running byte count against its budget share.
type shard struct {
	mu         sync.Mutex
	byID       map[model.BlockID]*entry
	head, tail *entry
	bytes      int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits             int64
	Misses           int64
	Inserts          int64
	Evictions        int64
	AdmissionRejects int64
	Invalidations    int64
	StaleServes      int64
	Entries          int
	Bytes            int64
	MaxBytes         int64
}

// HitRatio returns hits / (hits+misses), or 0 when unused.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheObs is the cache's instrument set; every field is nil-safe.
type cacheObs struct {
	hits          *obs.Counter
	misses        *obs.Counter
	inserts       *obs.Counter
	evictions     *obs.Counter
	rejects       *obs.Counter
	invalidations *obs.Counter
	staleServes   *obs.Counter
	dedup         *obs.Counter
	bytes         *obs.Gauge
	entries       *obs.Gauge
}

func newCacheObs(reg *obs.Registry) cacheObs {
	if reg == nil {
		return cacheObs{}
	}
	return cacheObs{
		hits:          reg.Counter("cache_hits_total", "block reads served from the decoded-block cache"),
		misses:        reg.Counter("cache_misses_total", "block reads not served by the cache"),
		inserts:       reg.Counter("cache_inserts_total", "decoded blocks admitted into the cache"),
		evictions:     reg.Counter("cache_evictions_total", "cached blocks evicted for capacity"),
		rejects:       reg.Counter("cache_admission_rejects_total", "candidate blocks refused admission by the frequency sketch"),
		invalidations: reg.Counter("cache_invalidations_total", "entries invalidated by version change or explicit drop"),
		staleServes:   reg.Counter("cache_stale_serves_total", "stale entries served because the block was unreadable"),
		dedup:         reg.Counter("cache_singleflight_dedup_total", "fetch+decode calls coalesced onto an in-flight leader"),
		bytes:         reg.Gauge("cache_bytes", "decoded bytes currently cached"),
		entries:       reg.Gauge("cache_entries", "blocks currently cached"),
	}
}

// Cache is a sharded, byte-budgeted decoded-block cache with
// stats-driven admission and version-tagged invalidation. The zero
// value is not usable; a nil *Cache is: every method no-ops (misses),
// so callers thread an optional cache without nil checks.
type Cache struct {
	cfg            Config
	shards         []*shard
	budgetPerShard int64
	clock          func() time.Time
	hot            Hotness
	obs            cacheObs

	sketchMu sync.Mutex
	sketch   *sketch

	// Flights deduplicates concurrent fetch+decode of the same
	// (block, version) across callers that miss the cache.
	Flights *FlightGroup

	hits          atomic.Int64
	misses        atomic.Int64
	inserts       atomic.Int64
	evictions     atomic.Int64
	rejects       atomic.Int64
	invalidations atomic.Int64
	staleServes   atomic.Int64

	lifecycle sync.Mutex
	started   bool
	closed    bool
	stop      chan struct{}
	done      chan struct{}
}

// New builds a cache from cfg, or returns nil (a valid, always-miss
// cache) when cfg.MaxBytes <= 0.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	c := &Cache{
		cfg:            cfg,
		shards:         make([]*shard, cfg.Shards),
		budgetPerShard: cfg.MaxBytes / int64(cfg.Shards),
		clock:          cfg.Clock,
		hot:            cfg.Hotness,
		obs:            newCacheObs(cfg.Metrics),
		Flights:        NewFlightGroup(),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	if c.budgetPerShard <= 0 {
		c.budgetPerShard = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{byID: make(map[model.BlockID]*entry)}
	}
	// Size the sketch for the plausible entry population assuming 4 KiB
	// blocks as a floor; oversizing only costs a few KiB.
	est := int(cfg.MaxBytes / 4096)
	if est < 256 {
		est = 256
	}
	c.sketch = newSketch(est, cfg.Seed)
	return c
}

func (c *Cache) shard(h uint64) *shard {
	return c.shards[h%uint64(len(c.shards))]
}

// touch records an access in the admission sketch and returns the
// block's hash.
func (c *Cache) touch(id model.BlockID) uint64 {
	h := hashID(string(id))
	c.sketchMu.Lock()
	c.sketch.add(h)
	c.sketchMu.Unlock()
	return h
}

// estimate reads the sketch's frequency estimate for hash h.
func (c *Cache) estimate(h uint64) int {
	c.sketchMu.Lock()
	defer c.sketchMu.Unlock()
	return c.sketch.estimate(h)
}

// score is the admission score for a candidate block: the sketch
// estimate plus a boost when the statistics service marks the block (or
// its co-access partnership) hot. Victim scores use the raw sketch
// estimate, so hot blocks win ties against cold residents.
func (c *Cache) score(id model.BlockID, h uint64) int {
	s := c.estimate(h)
	if c.hot == nil {
		return s
	}
	if f := c.hot.Frequency(id); f > 0 {
		// Frequency is P(block ∈ request) ∈ [0,1]; scale into sketch
		// counter units so a block in ~12% of requests gains +1.
		s += 1 + int(f*8)
	}
	if ps := c.hot.Partners(id, 1); len(ps) > 0 && ps[0].Lambda > 0 {
		s++
	}
	return s
}

// Get returns the cached decoded bytes for (id, version). The returned
// slice is a private copy. A resident entry with a different version is
// invalidated (dropped, or marked stale when StaleTTL > 0) and reported
// as a miss.
func (c *Cache) Get(id model.BlockID, version uint64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	h := c.touch(id)
	now := c.clock()
	sh := c.shard(h)
	sh.mu.Lock()
	e, ok := sh.byID[id]
	if ok && e.version == version && !e.stale {
		sh.moveFront(e)
		out := make([]byte, len(e.data))
		copy(out, e.data)
		sh.mu.Unlock()
		c.hits.Add(1)
		c.obs.hits.Inc()
		return out, true
	}
	var invalidated, expired bool
	if ok {
		switch {
		case !e.stale && e.version < version:
			// The resident decode predates the requested placement
			// version: the block moved or was rewritten since. Drop it,
			// or keep it around as a stale-if-error candidate.
			invalidated = true
			if c.cfg.StaleTTL > 0 {
				e.stale = true
				e.staleAt = now
			} else {
				c.removeLocked(sh, e)
			}
		case !e.stale:
			// e.version > version: the caller's metadata is older than
			// the resident entry. Miss without touching the entry.
		case now.Sub(e.staleAt) > c.cfg.StaleTTL:
			expired = true
			c.removeLocked(sh, e)
		}
	}
	sh.mu.Unlock()
	if invalidated {
		c.invalidations.Add(1)
		c.obs.invalidations.Inc()
	}
	if expired {
		c.evictions.Add(1)
		c.obs.evictions.Inc()
	}
	c.misses.Add(1)
	c.obs.misses.Inc()
	return nil, false
}

// GetStale returns the resident bytes for id regardless of version
// match, provided any stale entry is still within StaleTTL. It is the
// stale-if-error path: callers use it only after establishing that the
// block cannot currently be reconstructed from its sites. The returned
// version is the placement version the bytes were decoded under.
func (c *Cache) GetStale(id model.BlockID) (data []byte, version uint64, ok bool) {
	if c == nil || c.cfg.StaleTTL <= 0 {
		return nil, 0, false
	}
	h := hashID(string(id))
	now := c.clock()
	sh := c.shard(h)
	sh.mu.Lock()
	e, found := sh.byID[id]
	if !found || (e.stale && now.Sub(e.staleAt) > c.cfg.StaleTTL) {
		sh.mu.Unlock()
		return nil, 0, false
	}
	out := make([]byte, len(e.data))
	copy(out, e.data)
	ver := e.version
	sh.mu.Unlock()
	c.staleServes.Add(1)
	c.obs.staleServes.Inc()
	return out, ver, true
}

// Put offers the decoded bytes of (id, version) for admission. The
// cache keeps its own copy. It returns whether the block is resident
// afterwards (admission may refuse it in favour of hotter residents).
func (c *Cache) Put(id model.BlockID, version uint64, data []byte) bool {
	if c == nil {
		return false
	}
	own := make([]byte, len(data))
	copy(own, data)
	return c.putOwned(id, version, own, int64(len(own)))
}

// PutSized admits an entry with an explicit size and no payload copy.
// The simulator uses it to model the cache byte budget (data may be
// nil) without materialising block contents.
func (c *Cache) PutSized(id model.BlockID, version uint64, data []byte, size int64) bool {
	if c == nil {
		return false
	}
	return c.putOwned(id, version, data, size)
}

func (c *Cache) putOwned(id model.BlockID, version uint64, data []byte, size int64) bool {
	if size <= 0 {
		return false
	}
	h := c.touch(id)
	if size > c.budgetPerShard {
		c.rejects.Add(1)
		c.obs.rejects.Inc()
		return false
	}
	cand := c.score(id, h)
	now := c.clock()

	sh := c.shard(h)
	sh.mu.Lock()
	if e, ok := sh.byID[id]; ok {
		// Refresh in place: newer decode wins, staleness clears.
		sh.bytes += size - e.size
		e.version, e.data, e.size = version, data, size
		e.stale = false
		e.staleAt = time.Time{}
		sh.moveFront(e)
		evicted := c.evictOverBudgetLocked(sh, e, cand, now)
		sh.mu.Unlock()
		c.finishPut(true, evicted, 0)
		return true
	}
	evicted, rejected := 0, false
	for sh.bytes+size > c.budgetPerShard {
		victim := sh.tail
		if victim == nil {
			break
		}
		// Expired stale entries are free to drop; live residents are
		// only displaced by an at-least-as-frequent candidate.
		if !(victim.stale && now.Sub(victim.staleAt) > c.cfg.StaleTTL) &&
			c.estimate(hashID(string(victim.id))) > cand {
			rejected = true
			break
		}
		c.removeLocked(sh, victim)
		evicted++
	}
	if rejected {
		sh.mu.Unlock()
		c.rejects.Add(1)
		c.obs.rejects.Inc()
		c.finishPut(false, evicted, 0)
		return false
	}
	e := &entry{id: id, version: version, data: data, size: size}
	sh.byID[id] = e
	sh.pushFront(e)
	sh.bytes += size
	sh.mu.Unlock()
	c.finishPut(true, evicted, 1)
	return true
}

// finishPut updates counters and gauges after a put attempt.
func (c *Cache) finishPut(admitted bool, evicted, inserted int) {
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
		c.obs.evictions.Add(int64(evicted))
	}
	if inserted > 0 {
		c.inserts.Add(int64(inserted))
		c.obs.inserts.Inc()
	}
	if admitted || evicted > 0 {
		c.syncGauges()
	}
}

// Invalidate drops id's entry regardless of version (used on delete and
// overwrite, where the caller knows any cached bytes are wrong).
func (c *Cache) Invalidate(id model.BlockID) {
	if c == nil {
		return
	}
	h := hashID(string(id))
	sh := c.shard(h)
	sh.mu.Lock()
	e, ok := sh.byID[id]
	if ok {
		c.removeLocked(sh, e)
	}
	sh.mu.Unlock()
	if ok {
		c.invalidations.Add(1)
		c.obs.invalidations.Inc()
		c.syncGauges()
	}
}

// Sweep drops stale entries whose TTL has expired. The maintenance
// goroutine calls it periodically; tests and the simulator may call it
// directly (it is deterministic given the injected clock).
func (c *Cache) Sweep() int {
	if c == nil {
		return 0
	}
	now := c.clock()
	dropped := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		for e := sh.tail; e != nil; {
			prev := e.prev
			if e.stale && now.Sub(e.staleAt) > c.cfg.StaleTTL {
				c.removeLocked(sh, e)
				dropped++
			}
			e = prev
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		c.evictions.Add(int64(dropped))
		c.obs.evictions.Add(int64(dropped))
		c.syncGauges()
	}
	return dropped
}

// Stats snapshots the cache counters and current occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Inserts:          c.inserts.Load(),
		Evictions:        c.evictions.Load(),
		AdmissionRejects: c.rejects.Load(),
		Invalidations:    c.invalidations.Load(),
		StaleServes:      c.staleServes.Load(),
		MaxBytes:         c.cfg.MaxBytes,
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Bytes += sh.bytes
		s.Entries += len(sh.byID)
		sh.mu.Unlock()
	}
	c.obs.bytes.Set(s.Bytes)
	c.obs.entries.Set(int64(s.Entries))
	return s
}

// syncGauges refreshes the occupancy gauges from shard state.
func (c *Cache) syncGauges() {
	if c.obs.bytes == nil && c.obs.entries == nil {
		return
	}
	var bytes int64
	var entries int
	for _, sh := range c.shards {
		sh.mu.Lock()
		bytes += sh.bytes
		entries += len(sh.byID)
		sh.mu.Unlock()
	}
	c.obs.bytes.Set(bytes)
	c.obs.entries.Set(int64(entries))
}

// StartMaintenance launches the background sweep goroutine, which
// expires stale entries every interval until Close. It is a no-op on a
// nil cache, after Close, or when called twice.
func (c *Cache) StartMaintenance(interval time.Duration) {
	if c == nil || interval <= 0 {
		return
	}
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	if c.started || c.closed {
		return
	}
	c.started = true
	go c.maintain(interval)
}

func (c *Cache) maintain(interval time.Duration) {
	defer close(c.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.Sweep()
		}
	}
}

// Close stops the maintenance goroutine (if started) and waits for it
// to drain. Idempotent; safe on a nil cache.
func (c *Cache) Close() {
	if c == nil {
		return
	}
	c.lifecycle.Lock()
	if c.closed {
		c.lifecycle.Unlock()
		return
	}
	c.closed = true
	started := c.started
	c.lifecycle.Unlock()
	if started {
		close(c.stop)
		<-c.done
	}
}

// Contains reports whether any version of the block is resident (fresh
// or stale) without touching hit/miss accounting, LRU order or the
// admission sketch. Coverage reporting uses it; the read path never does.
func (c *Cache) Contains(id model.BlockID) bool {
	if c == nil {
		return false
	}
	sh := c.shard(hashID(string(id)))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.byID[id]
	return ok
}

// DedupObserved records n singleflight followers that were coalesced
// onto a leader (the client owns the flight logic; the cache owns the
// metric so all cache instrumentation lives in one registry family).
func (c *Cache) DedupObserved(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.obs.dedup.Add(int64(n))
}

// --- intrusive LRU list plumbing (shard.mu held) ---

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// removeLocked unlinks and deletes e from the shard (shard.mu held).
func (c *Cache) removeLocked(sh *shard, e *entry) {
	sh.unlink(e)
	delete(sh.byID, e.id)
	sh.bytes -= e.size
	e.data = nil
}

// evictOverBudgetLocked drops tail entries while the shard is over
// budget, sparing keep and respecting admission scores as in putOwned.
func (c *Cache) evictOverBudgetLocked(sh *shard, keep *entry, cand int, now time.Time) int {
	evicted := 0
	for sh.bytes > c.budgetPerShard {
		victim := sh.tail
		if victim == nil || victim == keep {
			break
		}
		if !(victim.stale && now.Sub(victim.staleAt) > c.cfg.StaleTTL) &&
			c.estimate(hashID(string(victim.id))) > cand {
			break
		}
		c.removeLocked(sh, victim)
		evicted++
	}
	return evicted
}
