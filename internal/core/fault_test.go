package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/storage"
)

func TestIsSiteFailureClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{storage.ErrChunkNotFound, false},
		{fmt.Errorf("read chunk: %w", storage.ErrChunkNotFound), false},
		{storage.ErrSiteDown, true},
		{context.DeadlineExceeded, true},
		{errors.New("connection reset"), true},
	}
	for _, tc := range cases {
		if got := isSiteFailure(tc.err); got != tc.want {
			t.Errorf("isSiteFailure(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{storage.ErrChunkNotFound, false}, // stale metadata: retrying cannot help
		{context.Canceled, false},         // caller is gone
		{context.DeadlineExceeded, false}, // attempt consumed its deadline
		{storage.ErrSiteDown, true},
		{errors.New("connection reset"), true},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestPutCleansUpOrphanedChunks: a partial write failure must roll back
// the chunks that did land, so an aborted Put cannot leak storage.
func TestPutCleansUpOrphanedChunks(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{NumSites: 4, Metrics: reg})
	c.Services[3].Fail() // k+r=4 of 4 sites: the placement must include it

	err := c.Client.Put("blk", blockData(1200, 5))
	if err == nil {
		t.Fatal("Put with a dead site succeeded, want error")
	}
	for id, n := range c.SiteChunkCounts(context.Background()) {
		if n != 0 {
			t.Fatalf("site %d kept %d orphaned chunks after failed Put", id, n)
		}
	}
	if n := reg.Snapshot().CounterValue("client_put_cleanups_total", ""); n != 1 {
		t.Fatalf("client_put_cleanups_total = %d, want 1", n)
	}
	// The block never became readable.
	if _, err := c.Client.Get("blk"); err == nil {
		t.Fatal("Get after failed Put succeeded")
	}
}

// TestReplanStopsWhenFailureSetStable: a fetch failure that does not
// implicate any site (stale metadata: the chunk is simply gone) leaves
// the failure set unchanged, so the replan loop must exit immediately
// instead of replaying the same plan len(sites) times.
func TestReplanStopsWhenFailureSetStable(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{NumSites: 4, Metrics: reg})
	data := blockData(1000, 3)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	// Delete 3 of the 4 chunks behind the catalog's back; any plan now
	// trips ErrChunkNotFound, which is not a site failure.
	for i := 0; i < 3; i++ {
		ref := model.ChunkRef{Block: "blk", Chunk: i}
		if err := c.Services[meta.Sites[i]].DeleteChunk(context.Background(), ref); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	_, err := c.Client.Get("blk")
	if !errors.Is(err, ErrBlockUnavailable) {
		t.Fatalf("err = %v, want ErrBlockUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stable-failure read took %v, replan loop did not stop early", elapsed)
	}
	snap := reg.Snapshot()
	if n := snap.CounterValue("client_replans_total", ""); n != 0 {
		t.Fatalf("client_replans_total = %d, want 0 (failure set never changed)", n)
	}
	if un := c.Client.Health().Unavailable(); len(un) != 0 {
		t.Fatalf("missing chunks opened breakers for %v", un)
	}
}

// TestReplanBoundedWhenAllSitesFail: when every site is down, the loop
// replans only while breakers keep opening, then stops on the planner's
// error — it must not iterate once per site with identical plans.
func TestReplanBoundedWhenAllSitesFail(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{NumSites: 6, Metrics: reg})
	if err := c.Client.Put("blk", blockData(1000, 7)); err != nil {
		t.Fatal(err)
	}
	for _, svc := range c.Services {
		svc.Fail() // behind the client's back: breakers learn per fetch
	}
	_, err := c.Client.Get("blk")
	if err == nil {
		t.Fatal("Get with every site down succeeded")
	}
	replans := reg.Snapshot().CounterValue("client_replans_total", "")
	if replans >= 6 {
		t.Fatalf("client_replans_total = %d, want < NumSites (loop must stop early)", replans)
	}
}

// TestMarkFailedExcludesSiteUntilRecovery exercises the breaker /
// planner contract: a site marked failed never appears in a fresh plan,
// and after recovery it is planned again.
func TestMarkFailedExcludesSiteUntilRecovery(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 6})
	data := blockData(1400, 9)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	excluded := meta.Sites[0]

	c.Client.MarkFailed(excluded)
	if c.Client.available(excluded) {
		t.Fatal("marked-failed site still available to the planner")
	}
	for i := 0; i < 5; i++ {
		got, err := c.Client.Get("blk")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("read mismatch while site excluded")
		}
	}
	if reads, _ := c.Services[excluded].Totals(); reads != 0 {
		t.Fatalf("failed site served %d reads, want 0 (must not be planned)", reads)
	}

	// Recovery: the site becomes plannable again. Excluding every other
	// chunk holder forces the next plan to use it.
	c.Client.MarkAvailable(excluded)
	if !c.Client.available(excluded) {
		t.Fatal("recovered site still unavailable to the planner")
	}
	for _, s := range meta.Sites[2:] {
		c.Client.MarkFailed(s)
	}
	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch after recovery")
	}
	if reads, _ := c.Services[excluded].Totals(); reads == 0 {
		t.Fatal("recovered site never rejoined planning")
	}
}

// TestHealthTrackerSharedAcrossComponents: the cluster wires one breaker
// set into client, mover and repair, so a failure seen by one component
// is respected by all.
func TestHealthTrackerSharedAcrossComponents(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 4, EnableMover: true, EnableRepair: true})
	if c.Health == nil {
		t.Fatal("cluster has no shared health tracker")
	}
	if c.Client.Health() != c.Health {
		t.Fatal("client does not share the cluster health tracker")
	}
	c.Client.MarkFailed(2)
	if c.Mover.env(context.Background()).Available(2) {
		t.Fatal("mover plans onto a site whose breaker the client opened")
	}
	if c.Mover.env(context.Background()).Available(1) {
		// Site 1 is healthy; the mover must still see it.
		// (Available uses the shared tracker when Health is set.)
	} else {
		t.Fatal("mover rejects a healthy site")
	}
}

// TestRequestTimeoutExpires: a request-level deadline must abort a
// GetMulti whose sites never respond, and count the expiration.
func TestRequestTimeoutExpires(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		NumSites: 4,
		Client: Config{
			RequestTimeout: 80 * time.Millisecond,
			// Per-chunk reads are allowed to outlive the request so only
			// the request deadline can end it.
			ChunkTimeout: 10 * time.Second,
		},
		ReadDelayFixed: time.Second, // every read is slower than the request budget
		Metrics:        reg,
	})
	if err := c.Client.Put("blk", blockData(800, 2)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Client.Get("blk")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request ran %v past its 80ms deadline", elapsed)
	}
	if n := reg.Snapshot().CounterValue("client_deadline_expirations_total", ""); n < 1 {
		t.Fatalf("client_deadline_expirations_total = %d, want >= 1", n)
	}
}
