package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ecstore/internal/erasure"
	"ecstore/internal/model"
)

// PutReader stores a block of unknown length from r through the
// streaming pipeline: the reader is consumed one stripe (K*StripeUnit
// bytes) at a time, each stripe is erasure-encoded as soon as it is
// read, and its k+r chunk segments are shipped to the sites via
// PutChunkStream while the next stripe is already being read and
// encoded. At most cfg.StreamDepth stripes are in flight at once, so
// memory stays bounded at depth pooled stripe buffers regardless of the
// block's size. The resulting block is stripe-interleaved
// (BlockMeta.StripeUnit > 0): whole-block reads reassemble it
// transparently, and GetRange fetches only the stripes a byte range
// touches.
//
// The write commits atomically at metadata registration: until Register
// succeeds no reader can observe the block, and on any failure the
// partially written chunks are rolled back best-effort, exactly like
// PutContext. Replicated clients fall back to buffering the reader and
// writing whole copies (replication has no stripes to pipeline).
//
// It returns the number of payload bytes consumed from r.
func (c *Client) PutReader(ctx context.Context, id model.BlockID, r io.Reader) (int64, error) {
	if id == "" {
		return 0, errors.New("core: empty block id")
	}
	if c.cfg.Scheme == model.SchemeReplicated {
		data, err := io.ReadAll(r)
		if err != nil {
			return 0, fmt.Errorf("read stream for %s: %w", id, err)
		}
		if err := c.PutContext(ctx, id, data); err != nil {
			return 0, err
		}
		return int64(len(data)), nil
	}
	return c.streamPut(ctx, id, r, nil)
}

// streamPut is the erasure streaming write shared by PutReader and the
// packer's container seal (which additionally registers the members).
func (c *Client) streamPut(ctx context.Context, id model.BlockID, r io.Reader, members []model.PackedMember) (int64, error) {
	ctx, cancel := c.requestCtx(ctx)
	defer cancel()
	unit := c.cfg.StripeUnit
	k := c.cfg.K
	stripeBytes := int(unit) * k

	chosen, err := c.place(c.totalChunks())
	if err != nil {
		return 0, fmt.Errorf("place %s: %w", id, err)
	}

	// The write pipeline: the loop below reads and encodes stripe N
	// while up to StreamDepth earlier stripes' segment writes drain in
	// background goroutines. The first write error cancels wctx, which
	// both stops in-flight writes and unblocks the semaphore wait.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	sem := make(chan struct{}, c.cfg.StreamDepth)
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failErr error // first pipeline error (read, encode or write)

	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
			wcancel()
		}
		failMu.Unlock()
	}

	var total int64
	var stripes int64
	for done := false; !done; {
		// One pooled buffer per stripe: EncodePooled over an exactly
		// stripe-sized input aliases every data chunk into it, so the
		// buffer must live until the stripe's writes finish.
		pbuf := erasure.AcquireBuffer(stripeBytes)
		buf := (*pbuf)[:stripeBytes]
		n, rerr := io.ReadFull(r, buf)
		switch {
		case rerr == nil:
			// Full stripe; a later zero-length read will end the loop.
		case errors.Is(rerr, io.ErrUnexpectedEOF) || (errors.Is(rerr, io.EOF) && (n > 0 || stripes == 0)):
			// Tail stripe (or an empty block's single all-zero stripe):
			// zero the pooled remainder, which doubles as RS padding.
			clear(buf[n:])
			done = true
		case errors.Is(rerr, io.EOF):
			erasure.ReleaseBuffer(pbuf)
			done = true
			continue
		default:
			erasure.ReleaseBuffer(pbuf)
			fail(fmt.Errorf("read stream for %s: %w", id, rerr))
			done = true
			continue
		}
		total += int64(n)

		stripe, eerr := c.codec.EncodePooled(buf)
		if eerr != nil {
			erasure.ReleaseBuffer(pbuf)
			fail(fmt.Errorf("encode stripe %d of %s: %w", stripes, id, eerr))
			break
		}

		select {
		case sem <- struct{}{}:
		case <-wctx.Done():
			stripe.Release()
			erasure.ReleaseBuffer(pbuf)
			done = true
			continue
		}
		wg.Add(1)
		go func(t int64, pbuf *[]byte, stripe *erasure.Stripe) {
			defer wg.Done()
			defer func() {
				stripe.Release()
				erasure.ReleaseBuffer(pbuf)
				<-sem
			}()
			if err := c.writeStripe(wctx, id, chosen, t, stripe.Chunks()); err != nil {
				fail(err)
			}
		}(stripes, pbuf, stripe)
		stripes++
	}
	wg.Wait()

	failMu.Lock()
	err = failErr
	failMu.Unlock()
	if err != nil {
		c.cleanupChunks(ctx, id, chosen, nil)
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		c.cleanupChunks(ctx, id, chosen, nil)
		return 0, fmt.Errorf("core: stream put %s: %w", id, err)
	}

	meta := &model.BlockMeta{
		ID:         id,
		Scheme:     model.SchemeErasure,
		Size:       total,
		K:          k,
		R:          c.cfg.R,
		ChunkSize:  stripes * unit,
		Sites:      chosen,
		StripeUnit: unit,
		Members:    members,
	}
	if err := c.meta.Register(meta); err != nil {
		c.cleanupChunks(ctx, id, chosen, nil)
		return 0, fmt.Errorf("register %s: %w", id, err)
	}
	c.cache.Invalidate(id)
	c.obs.puts.Inc()
	c.obs.streamPuts.Inc()
	c.obs.streamStripes.Add(stripes)
	c.obs.streamBytes.Add(total)
	return total, nil
}

// writeStripe ships one encoded stripe: chunk c's segment lands at
// chunk offset t*StripeUnit on its site, with the same bounded fan-out
// discipline as PutContext (at most PutFanout concurrent writers).
func (c *Client) writeStripe(ctx context.Context, id model.BlockID, chosen []model.SiteID, t int64, chunks [][]byte) error {
	off := t * c.cfg.StripeUnit
	errs := make([]error, len(chunks))
	workers := c.cfg.PutFanout
	if workers < 0 || workers > len(chunks) {
		workers = len(chunks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				site := c.sites[chosen[i]]
				if site == nil {
					errs[i] = fmt.Errorf("%w: site %d", ErrNoSites, chosen[i])
					continue
				}
				cctx, ccancel := c.chunkCtx(ctx)
				errs[i] = site.PutChunkStream(cctx, model.ChunkRef{Block: id, Chunk: i}, off, chunks[i])
				ccancel()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("stream chunk %d stripe %d of %s: %w", i, t, id, err)
		}
	}
	return nil
}
