package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"ecstore/internal/faults"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/storage"
	"ecstore/internal/tasks"
)

func counterValue(reg *obs.Registry, name string) int64 {
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name && c.Label == "" {
			return c.Value
		}
	}
	return 0
}

// TestScrubDetectsAndRepairsCorruption injects bit rot into every chunk on
// one site and checks that a single control-plane round detects 100% of
// the damage, quarantines it, and re-protects every chunk in place.
func TestScrubDetectsAndRepairsCorruption(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		NumSites:     6,
		EnableRepair: true,
		EnableScrub:  true,
		Metrics:      reg,
	})
	ctx := context.Background()

	payloads := make(map[model.BlockID][]byte)
	for i := 0; i < 6; i++ {
		id := model.BlockID(fmt.Sprintf("b%d", i))
		payloads[id] = blockData(400, byte(i+1))
		if err := c.Client.Put(id, payloads[id]); err != nil {
			t.Fatal(err)
		}
	}

	victim := model.SiteID(2)
	damaged, err := faults.Corrupt(c.Services[victim].Store(), faults.NewInjector(7),
		faults.CorruptionPlan{BitFlipRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(damaged) == 0 {
		t.Fatal("corruption injection hit nothing")
	}

	c.Tick(ctx)

	if got := counterValue(reg, "scrub_corrupt_detected_total"); got != int64(len(damaged)) {
		t.Fatalf("scrub detected %d corrupt chunks, injected %d", got, len(damaged))
	}
	// Every damaged chunk must verify clean again after in-place repair.
	for _, ref := range damaged {
		if _, err := c.Services[victim].VerifyChunk(ctx, ref); err != nil {
			t.Fatalf("chunk %s still damaged after repair round: %v", ref, err)
		}
	}
	for id, want := range payloads {
		got, err := c.Client.Get(id)
		if err != nil {
			t.Fatalf("get %s after scrub+repair: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %s corrupted end to end", id)
		}
	}
	// A second round finds nothing new: the damage set is fully healed.
	c.Tick(ctx)
	if got := counterValue(reg, "scrub_corrupt_detected_total"); got != int64(len(damaged)) {
		t.Fatalf("second sweep re-detected corruption: %d total, want %d", got, len(damaged))
	}
}

// TestScrubDetectsMissingChunk deletes a placed chunk behind the catalog's
// back and checks the scrubber's catalog diff finds and re-protects it.
func TestScrubDetectsMissingChunk(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{NumSites: 6, EnableRepair: true, Metrics: reg})
	ctx := context.Background()

	want := blockData(400, 5)
	if err := c.Client.Put("blk", want); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	site := meta.Sites[0]
	ref := model.ChunkRef{Block: "blk", Chunk: 0}
	if err := c.Services[site].DeleteChunk(ctx, ref); err != nil {
		t.Fatal(err)
	}

	if err := c.ScrubSite(site); err != nil {
		t.Fatal(err)
	}
	c.Tasks.RunOnce(ctx)

	if got := counterValue(reg, "scrub_missing_detected_total"); got != 1 {
		t.Fatalf("missing detections = %d, want 1", got)
	}
	if _, err := c.Services[site].VerifyChunk(ctx, ref); err != nil {
		t.Fatalf("missing chunk not re-protected: %v", err)
	}
	if got, err := c.Client.Get("blk"); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("block unreadable after repair: %v", err)
	}
}

// TestDrainSiteDecommissions drains a site and checks its chunks migrate,
// the site ends decommissioned, redundancy invariants hold, and new writes
// avoid it — and that a restarted scheduler does not re-run the finished
// drain task.
func TestDrainSiteDecommissions(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{NumSites: 6, Metrics: reg})
	ctx := context.Background()

	payloads := make(map[model.BlockID][]byte)
	for i := 0; i < 8; i++ {
		id := model.BlockID(fmt.Sprintf("d%d", i))
		payloads[id] = blockData(300, byte(i+1))
		if err := c.Client.Put(id, payloads[id]); err != nil {
			t.Fatal(err)
		}
	}
	var victim model.SiteID
	for id, n := range c.SiteChunkCounts(ctx) {
		if n > 0 {
			victim = id
			break
		}
	}
	if victim == model.NoSite {
		t.Fatal("no site holds chunks")
	}

	if err := c.DrainSite(victim); err != nil {
		t.Fatal(err)
	}
	c.Tick(ctx)

	if st := c.Catalog.SiteInfos()[victim].State; st != model.SiteDecommissioned {
		t.Fatalf("site state = %v, want decommissioned", st)
	}
	if blocks := c.Catalog.BlocksOnSite(victim); len(blocks) != 0 {
		t.Fatalf("%d blocks still placed on drained site", len(blocks))
	}
	if refs, _ := c.Services[victim].ListChunks(ctx); len(refs) != 0 {
		t.Fatalf("%d chunks left on drained site's media", len(refs))
	}
	for id, want := range payloads {
		got, err := c.Client.Get(id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %s unreadable after drain: %v", id, err)
		}
		meta, _ := c.Catalog.BlockMeta(id)
		seen := map[model.SiteID]bool{}
		for _, s := range meta.Sites {
			if seen[s] {
				t.Fatalf("block %s has two chunks on site %d after drain", id, s)
			}
			seen[s] = true
		}
	}
	// New writes must avoid the decommissioned site.
	if err := c.Client.Put("post-drain", blockData(300, 99)); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("post-drain")
	for _, s := range meta.Sites {
		if s == victim {
			t.Fatal("write after drain landed on decommissioned site")
		}
	}

	// Restart the control plane over the same catalog: the Done drain row
	// must not run again.
	var attempts int
	for _, rec := range c.Catalog.ListTasks() {
		if rec.Type == model.TaskTypeDrainSite {
			if rec.State != model.TaskDone {
				t.Fatalf("drain task state = %v, want done", rec.State)
			}
			attempts = rec.Attempts
		}
	}
	sched2 := tasks.New(tasks.Config{Store: c.Catalog})
	apis := make(map[model.SiteID]storage.SiteAPI, len(c.Services))
	for id, svc := range c.Services {
		apis[id] = svc
	}
	BuildTaskPlane(sched2, TaskPlaneOptions{
		Drain: NewDrainer(c.Catalog, apis, c.Loads, c.Health, nil),
	})
	sched2.RunOnce(ctx)
	for _, rec := range c.Catalog.ListTasks() {
		if rec.Type == model.TaskTypeDrainSite && rec.Attempts != attempts {
			t.Fatalf("drain task re-ran after restart: attempts %d -> %d", attempts, rec.Attempts)
		}
	}
}

// TestZoneAwarePlacement checks writes under zone labels never put more
// than MaxChunksPerZone chunks of one block into a single zone.
func TestZoneAwarePlacement(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 6, Zones: 3})
	infos := c.Catalog.SiteInfos()
	cap := model.MaxChunksPerZone(2) // default scheme is RS(2,2)
	for i := 0; i < 12; i++ {
		id := model.BlockID(fmt.Sprintf("z%d", i))
		if err := c.Client.Put(id, blockData(300, byte(i+1))); err != nil {
			t.Fatal(err)
		}
		meta, _ := c.Catalog.BlockMeta(id)
		perZone := map[string]int{}
		for _, s := range meta.Sites {
			perZone[infos[s].Zone]++
		}
		for zone, n := range perZone {
			if n > cap {
				t.Fatalf("block %s has %d chunks in zone %s (cap %d)", id, n, zone, cap)
			}
		}
	}
}

// TestZoneFailureSurvival fails a whole zone: reads must stay available
// throughout (degraded), and repair must re-protect every block onto the
// surviving zones without exceeding their per-zone caps.
func TestZoneFailureSurvival(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{
		NumSites:     6,
		Zones:        3,
		EnableRepair: true,
		RepairGrace:  -1, // repair immediately after the first failed probe
	})
	ctx := context.Background()

	payloads := make(map[model.BlockID][]byte)
	for i := 0; i < 6; i++ {
		id := model.BlockID(fmt.Sprintf("zf%d", i))
		payloads[id] = blockData(400, byte(i+1))
		if err := c.Client.Put(id, payloads[id]); err != nil {
			t.Fatal(err)
		}
	}

	c.FailZone("z0")

	// Degraded reads: every block must still be readable with the zone down.
	for id, want := range payloads {
		got, err := c.Client.Get(id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %s unreadable during zone outage: %v", id, err)
		}
	}

	// Drive control-plane rounds until repair converges (concurrent
	// repair-site tasks on the same block retry on CAS conflicts).
	failedSites := map[model.SiteID]bool{}
	for _, id := range c.ZoneSites("z0") {
		failedSites[id] = true
	}
	infos := c.Catalog.SiteInfos()
	zcap := model.MaxChunksPerZone(2)
	converged := false
	for round := 0; round < 8 && !converged; round++ {
		c.Tick(ctx)
		converged = true
		for id := range payloads {
			meta, _ := c.Catalog.BlockMeta(id)
			for _, s := range meta.Sites {
				if failedSites[s] {
					converged = false
				}
			}
		}
	}
	if !converged {
		t.Fatal("repair did not move all chunks off the failed zone")
	}
	for id, want := range payloads {
		meta, _ := c.Catalog.BlockMeta(id)
		perZone := map[string]int{}
		for _, s := range meta.Sites {
			perZone[infos[s].Zone]++
		}
		for zone, n := range perZone {
			if n > zcap {
				t.Fatalf("block %s has %d chunks in zone %s after repair (cap %d)", id, n, zone, zcap)
			}
		}
		got, err := c.Client.Get(id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %s unreadable after zone repair: %v", id, err)
		}
	}
}
