package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

// distributedCluster wires a full RPC deployment over the in-process
// memory network: one metadata server and N storage servers, with the
// client talking to every service through RPC clients — exactly the
// multi-process topology of the cmd/ binaries.
type distributedCluster struct {
	client   *Client
	services map[model.SiteID]*storage.Service
	cleanup  []func()
}

func (d *distributedCluster) Close() {
	d.client.Close()
	for i := len(d.cleanup) - 1; i >= 0; i-- {
		d.cleanup[i]()
	}
}

func newDistributedCluster(t *testing.T, numSites int, cfg Config) *distributedCluster {
	t.Helper()
	net := transport.NewMemory()
	d := &distributedCluster{services: make(map[model.SiteID]*storage.Service)}
	d.cleanup = append(d.cleanup, net.Close)

	// Metadata service.
	ids := make([]model.SiteID, numSites)
	for i := range ids {
		ids[i] = model.SiteID(i + 1)
	}
	catalog := metadata.NewCatalog(ids)
	metaSrv := rpc.NewServer(metadata.NewServer(catalog))
	l, err := net.Listen("meta")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = metaSrv.Serve(l) }()
	d.cleanup = append(d.cleanup, func() { _ = metaSrv.Close() })

	conn, err := net.Dial("meta")
	if err != nil {
		t.Fatal(err)
	}
	metaRPC := rpc.NewClient(conn)
	d.cleanup = append(d.cleanup, func() { _ = metaRPC.Close() })

	// Storage services.
	sites := make(map[model.SiteID]storage.SiteAPI, numSites)
	for _, id := range ids {
		svc := storage.NewService(storage.ServiceConfig{Site: id}, storage.NewMemStore())
		d.services[id] = svc
		srv := rpc.NewServer(storage.NewRPCServer(svc))
		addr := fmt.Sprintf("site-%d", id)
		l, err := net.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(l) }()
		d.cleanup = append(d.cleanup, func() { _ = srv.Close() })

		conn, err := net.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		rc := rpc.NewClient(conn)
		d.cleanup = append(d.cleanup, func() { _ = rc.Close() })
		sites[id] = storage.NewRPCClient(rc)
	}

	cfg.InlineExact = true
	client, err := NewClient(cfg, Deps{Meta: metadata.NewClient(metaRPC), Sites: sites})
	if err != nil {
		t.Fatal(err)
	}
	d.client = client
	return d
}

func TestDistributedPutGetDelete(t *testing.T) {
	d := newDistributedCluster(t, 6, Config{})
	defer d.Close()

	data := blockData(5000, 3)
	if err := d.client.Put("remote-block", data); err != nil {
		t.Fatal(err)
	}
	got, bd, err := d.client.GetMulti([]model.BlockID{"remote-block"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got["remote-block"], data) {
		t.Fatal("round trip over RPC mismatch")
	}
	if bd.Total() <= 0 {
		t.Fatal("no breakdown recorded")
	}
	if err := d.client.Delete("remote-block"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Get("remote-block"); err == nil {
		t.Fatal("read after delete succeeded over RPC")
	}
}

func TestDistributedDegradedRead(t *testing.T) {
	d := newDistributedCluster(t, 8, Config{})
	defer d.Close()

	data := blockData(3000, 5)
	if err := d.client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	// Fail two sites behind the client's back; the fetch path must
	// learn about them through RPC errors and replan.
	failed := 0
	for id, svc := range d.services {
		refs, err := svc.ListChunks(context.Background())
		if err != nil {
			continue
		}
		if len(refs) > 0 && failed < 2 {
			svc.Fail()
			failed++
			_ = id
		}
	}
	if failed != 2 {
		t.Fatalf("failed %d sites", failed)
	}
	got, err := d.client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read over RPC mismatch")
	}
}

func TestDistributedMultiBlockWorkload(t *testing.T) {
	d := newDistributedCluster(t, 8, Config{})
	defer d.Close()

	var ids []model.BlockID
	for i := 0; i < 12; i++ {
		id := model.BlockID(fmt.Sprintf("wb-%d", i))
		if err := d.client.Put(id, blockData(800+i*37, byte(i+1))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for round := 0; round < 6; round++ {
		shape := ids[(round%3)*2 : (round%3)*2+6] // three repeating shapes
		got, _, err := d.client.GetMulti(shape)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 6 {
			t.Fatalf("round %d: %d blocks", round, len(got))
		}
	}
	// The plan cache should be warming over RPC too.
	if st := d.client.PlannerStats(); st.Hits == 0 {
		t.Error("no plan cache hits in repeated workload")
	}
}
