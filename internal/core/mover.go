package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
)

// ErrNoBeneficialMove reports that the mover found no positive-score plan.
var ErrNoBeneficialMove = errors.New("core: no beneficial movement plan")

// ErrStalePlan reports that a movement plan no longer matches the
// catalog: the chunk moved (or the block was deleted) after the plan was
// selected. Task executors treat it as success — there is nothing left
// to move.
var ErrStalePlan = errors.New("core: movement plan is stale")

// MoverRunnerConfig tunes the background chunk mover (Section V-B2).
type MoverRunnerConfig struct {
	// Mover parameterizes the movement strategy itself.
	Mover placement.MoverConfig
	// Interval is the pause between movement attempts: the paper
	// throttles the mover to under one chunk per second. Zero means 1s.
	// The unified scheduler uses it as the cadence of the move-planning
	// source.
	Interval time.Duration
	// RequestRate is the observed client request rate fed to load-shift
	// estimation; zero means 100 req/s.
	RequestRate float64
	// DefaultO and DefaultM seed the cost model.
	DefaultO float64
	DefaultM float64
	// OpTimeout bounds each chunk read/write/delete and probe issued
	// while executing a move. Zero means 30 seconds.
	OpTimeout time.Duration
	// Health optionally shares the per-site breaker set with the client
	// and repair service: movement plans then avoid sites whose breaker
	// is not closed instead of probing them. Nil probes directly.
	Health *health.Tracker
	// SiteInfo optionally supplies the drain-state view (catalog
	// SiteInfos): draining and decommissioned sites are never movement
	// destinations. Nil disables the check.
	SiteInfo func() map[model.SiteID]model.SiteInfo
	// Metrics optionally exports move counters into a shared registry.
	// Nil disables it.
	Metrics *obs.Registry
}

// MoverRunner is the background chunk mover: it asks the placement.Mover
// for the highest-scoring movement plan, then executes it with the
// copy -> CAS -> delete protocol so concurrent readers never lose access
// to a chunk mid-move. It owns no goroutine — the unified scheduler in
// internal/tasks drives planning as a periodic source and executes each
// plan as a move-priority task (see taskplane.go).
type MoverRunner struct {
	cfg    MoverRunnerConfig
	mover  *placement.Mover
	meta   metadata.Service
	sites  map[model.SiteID]storage.SiteAPI
	co     *stats.CoAccessTracker
	loads  *stats.LoadTracker
	probes *stats.ProbeEstimator

	movesC     *obs.Counter
	moveFailsC *obs.Counter

	mu     sync.Mutex
	moved  int64
	failed int64
}

// NewMoverRunner wires a runner. All dependencies are required.
func NewMoverRunner(cfg MoverRunnerConfig, meta metadata.Service, sites map[model.SiteID]storage.SiteAPI,
	co *stats.CoAccessTracker, loads *stats.LoadTracker, probes *stats.ProbeEstimator) *MoverRunner {
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.RequestRate == 0 {
		cfg.RequestRate = 100
	}
	if cfg.DefaultO == 0 {
		cfg.DefaultO = 5
	}
	if cfg.DefaultM == 0 {
		cfg.DefaultM = 1.0 / (100 * 1024)
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	r := &MoverRunner{
		cfg:    cfg,
		mover:  placement.NewMover(cfg.Mover),
		meta:   meta,
		sites:  sites,
		co:     co,
		loads:  loads,
		probes: probes,
	}
	if cfg.Metrics != nil {
		r.movesC = cfg.Metrics.Counter("mover_moves_total", "chunk movements committed")
		r.moveFailsC = cfg.Metrics.Counter("mover_move_failures_total", "chunk movements that failed or lost a CAS race")
	}
	return r
}

// Moves returns (successful, failed) movement counts.
func (r *MoverRunner) Moves() (int64, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.moved, r.failed
}

// env snapshots the mover's inputs.
func (r *MoverRunner) env(ctx context.Context) placement.MoverEnv {
	catalog := catalogAdapter{meta: r.meta}
	return placement.MoverEnv{
		Catalog:     catalog,
		CoAccess:    r.co,
		Loads:       r.loads,
		Costs:       r.probes.Costs(r.cfg.DefaultO, r.cfg.DefaultM),
		RequestRate: r.cfg.RequestRate,
		Available: func(s model.SiteID) bool {
			api := r.sites[s]
			if api == nil {
				return false
			}
			if r.cfg.SiteInfo != nil && r.cfg.SiteInfo()[s].State != model.SiteActive {
				return false
			}
			if r.cfg.Health != nil {
				return r.cfg.Health.Available(s)
			}
			probeCtx, cancel := context.WithTimeout(ctx, r.cfg.OpTimeout)
			defer cancel()
			return api.Probe(probeCtx) == nil
		},
	}
}

// SelectPlan asks the placement mover for the current highest-scoring
// movement plan without executing it. The task plane's move-planning
// source uses it to turn plans into durable move tasks.
func (r *MoverRunner) SelectPlan(ctx context.Context) (model.MovePlan, bool) {
	return r.mover.SelectMovementPlan(r.env(ctx))
}

// ExecutePlanned runs one previously selected plan and records the
// outcome in the move counters.
func (r *MoverRunner) ExecutePlanned(ctx context.Context, plan model.MovePlan) error {
	if err := r.Execute(ctx, plan); err != nil {
		r.mu.Lock()
		r.failed++
		r.mu.Unlock()
		r.moveFailsC.Inc()
		return err
	}
	r.mu.Lock()
	r.moved++
	r.mu.Unlock()
	r.movesC.Inc()
	return nil
}

// MoveOnce selects and executes one movement plan.
func (r *MoverRunner) MoveOnce(ctx context.Context) (model.MovePlan, error) {
	plan, ok := r.SelectPlan(ctx)
	if !ok {
		return model.MovePlan{}, ErrNoBeneficialMove
	}
	return plan, r.ExecutePlanned(ctx, plan)
}

// Execute performs the copy -> CAS -> delete protocol for one plan.
func (r *MoverRunner) Execute(ctx context.Context, plan model.MovePlan) error {
	metas, err := r.meta.Lookup([]model.BlockID{plan.Block})
	if err != nil {
		return fmt.Errorf("lookup %s: %w", plan.Block, err)
	}
	meta := metas[plan.Block]
	if plan.Chunk < 0 || plan.Chunk >= len(meta.Sites) || meta.Sites[plan.Chunk] != plan.From {
		return fmt.Errorf("%w for %s", ErrStalePlan, plan.Block)
	}
	src := r.sites[plan.From]
	dst := r.sites[plan.To]
	if src == nil || dst == nil {
		return fmt.Errorf("%w: move %d -> %d", ErrNoSites, plan.From, plan.To)
	}

	// Each step of copy -> CAS -> delete is bounded so a hung site fails
	// the move instead of stalling the mover daemon.
	ctx, cancel := context.WithTimeout(ctx, r.cfg.OpTimeout)
	defer cancel()
	ref := model.ChunkRef{Block: plan.Block, Chunk: plan.Chunk}
	data, err := src.GetChunk(ctx, ref)
	if err != nil {
		return fmt.Errorf("read source chunk: %w", err)
	}
	if err := dst.PutChunk(ctx, ref, data); err != nil {
		return fmt.Errorf("write destination chunk: %w", err)
	}
	if _, err := r.meta.UpdatePlacement(plan.Block, plan.Chunk, plan.To, meta.Version); err != nil {
		// Roll back the copy; the move lost a race.
		_ = dst.DeleteChunk(ctx, ref)
		return fmt.Errorf("commit placement: %w", err)
	}
	// Old copy is unreachable once metadata points at the destination.
	_ = src.DeleteChunk(ctx, ref)
	return nil
}

// catalogAdapter exposes a metadata.Service as a placement.CatalogView.
type catalogAdapter struct {
	meta metadata.Service
}

var _ placement.CatalogView = catalogAdapter{}

func (a catalogAdapter) BlockMeta(id model.BlockID) (*model.BlockMeta, bool) {
	metas, err := a.meta.Lookup([]model.BlockID{id})
	if err != nil {
		return nil, false
	}
	return metas[id], true
}

func (a catalogAdapter) Sites() []model.SiteID { return a.meta.Sites() }
