// Package core implements the EC-Store client service (Section V,
// Figure 3): the write path W1-W3 (decide placement, encode, store chunks +
// register metadata) and the read path R1-R3 (look up metadata, plan the
// access, retrieve chunks in parallel and decode), including late binding
// and per-phase response-time breakdowns.
//
// The client is hardened for partial failure: every site operation runs
// under a context with optional per-chunk and per-request deadlines,
// transient errors are retried with jittered exponential backoff, slow
// planned reads are hedged with a not-yet-planned chunk from the
// next-cheapest site, and per-site circuit breakers (package health) keep
// unhealthy sites out of fresh access plans until they recover.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/cache"
	"ecstore/internal/erasure"
	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
	"ecstore/internal/wire"
)

// Errors returned by the client.
var (
	ErrNoSites          = errors.New("core: no storage sites")
	ErrBlockUnavailable = errors.New("core: block unavailable")
)

// RetryPolicy bounds how chunk fetches and probes are retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per chunk or probe
	// (1 = no retries). Zero means 1.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff, plus up to 50% seeded jitter. Zero
	// means 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means 500ms.
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	return p
}

// Config selects the client's fault-tolerance scheme and strategies. Each
// of the paper's six evaluated configurations is expressible:
//
//	R           {Scheme: Replicated, Strategy: Random}
//	EC          {Scheme: Erasure, Strategy: Random}
//	EC+LB       {Scheme: Erasure, Strategy: Random, Delta: 1}
//	EC+C        {Scheme: Erasure, Strategy: Cost}
//	EC+C+M      {Scheme: Erasure, Strategy: Cost} + a running Mover
//	EC+C+M+LB   {Scheme: Erasure, Strategy: Cost, Delta: 1} + Mover
type Config struct {
	// Scheme is erasure coding or replication.
	Scheme model.Scheme
	// K and R are the RS parameters (ignored K for replication: stored
	// copies are R+1 full replicas). Defaults: K=2, R=2.
	K int
	R int
	// Strategy picks random or cost-model access planning.
	Strategy placement.Strategy
	// Delta enables late binding: fetch k+Delta chunks, use the first k.
	Delta int
	// PlaceStrategy governs where new chunks land.
	PlaceStrategy placement.PlaceStrategy
	// InlineExact makes the planner solve ILPs synchronously (tests and
	// simulation); production uses the background worker.
	InlineExact bool
	// Seed drives all client-side randomness.
	Seed int64
	// DefaultO and DefaultM seed the cost model before probes exist
	// (the paper's calibration: m_j = 1 when o_j = 5).
	DefaultO float64
	DefaultM float64

	// RequestTimeout bounds one whole GetMulti/Put/Delete call; zero
	// leaves requests unbounded (the historical behaviour).
	RequestTimeout time.Duration
	// ChunkTimeout bounds each individual chunk read or write attempt,
	// so one hung site costs at most one timeout per fetch round; zero
	// disables per-chunk deadlines.
	ChunkTimeout time.Duration
	// ProbeTimeout bounds each liveness probe. Zero means 2s.
	ProbeTimeout time.Duration
	// Retry tunes per-chunk and per-probe retransmission.
	Retry RetryPolicy
	// HedgeDelay, when positive, hedges planned chunk reads that have
	// not satisfied their block after this fixed delay.
	HedgeDelay time.Duration
	// HedgeQuantile, when in (0,1) and HedgeDelay is zero, derives the
	// hedge delay adaptively from the observed fetch-latency quantile
	// (e.g. 0.95 hedges reads slower than the p95 fetch) once enough
	// requests have been recorded. Requires metrics to be attached.
	HedgeQuantile float64
	// PutFanout bounds how many chunk stores one Put issues concurrently,
	// so a burst of writes cannot spawn an unbounded goroutine swarm
	// (k+r goroutines per in-flight Put). Zero means min(k+r, 8);
	// negative means fully parallel (the historical behaviour).
	PutFanout int

	// CacheBytes enables the decoded-block cache tier with this byte
	// budget: hot blocks are kept fully decoded and served without any
	// site access, with admission driven by the co-access statistics
	// and entries keyed by placement version (a moved or overwritten
	// block never hits). Zero disables the cache.
	CacheBytes int64
	// CacheStaleTTL bounds stale-if-error serving: when a block's sites
	// are too unhealthy to reconstruct it, a cache entry invalidated up
	// to this long ago may be served instead of failing the read. Zero
	// (the default) never serves stale bytes.
	CacheStaleTTL time.Duration

	// StripeUnit is the per-chunk stripe width the streaming write path
	// (PutReader) interleaves blocks at: stripe t holds block bytes
	// [t*K*StripeUnit, (t+1)*K*StripeUnit) and contributes StripeUnit
	// bytes to every chunk. Smaller units let GetRange touch fewer bytes
	// per range; larger units amortize per-stripe overhead. Zero means
	// 64 KiB.
	StripeUnit int64
	// StreamDepth bounds how many encoded stripes one PutReader keeps in
	// flight: stripe N is encoded while up to StreamDepth earlier
	// stripes' chunk writes drain. Zero means 2; 1 disables pipelining.
	StreamDepth int
	// PackThreshold, when positive, stages erasure-coded Puts of at most
	// this many bytes into a shared pack container instead of encoding
	// each tiny block alone (which would pad every chunk). Staged blocks
	// are readable and deletable immediately but reach the sites only
	// when a container seals: at PackCapacity bytes or on FlushPacked.
	// Zero disables packing.
	PackThreshold int64
	// PackCapacity is the staged payload size that seals a pack
	// container. Zero means 1 MiB.
	PackCapacity int64
}

func (c Config) withDefaults() Config {
	if c.Scheme == 0 {
		c.Scheme = model.SchemeErasure
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.R == 0 {
		c.R = 2
	}
	if c.Strategy == 0 {
		c.Strategy = placement.StrategyCost
	}
	if c.PlaceStrategy == 0 {
		c.PlaceStrategy = placement.PlaceRandom
	}
	if c.DefaultO == 0 {
		c.DefaultO = 5
	}
	if c.DefaultM == 0 {
		c.DefaultM = 1.0 / (100 * 1024) // m_j=1 per 100 KB chunk at o_j=5
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.PutFanout == 0 {
		c.PutFanout = 8
	}
	if c.StripeUnit <= 0 {
		c.StripeUnit = 64 << 10
	}
	if c.StreamDepth <= 0 {
		c.StreamDepth = 2
	}
	if c.PackCapacity <= 0 {
		c.PackCapacity = 1 << 20
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// hedgeMinSamples is how many fetch observations the adaptive hedge
// threshold requires before it activates.
const hedgeMinSamples = 20

// Client is the EC-Store client service: the component applications link
// against. It owns the erasure codec, the access planner (plan cache +
// greedy/ILP solvers) and one connection per storage site, and implements
// the paper's read path R1-R3 (GetMulti) and write path W1-W3 (Put).
type Client struct {
	cfg    Config
	codec  *erasure.Codec // nil for replication
	meta   metadata.Service
	sites  map[model.SiteID]storage.SiteAPI
	plan   *placement.Planner
	placer *placement.Placer

	coaccess *stats.CoAccessTracker
	probes   *stats.ProbeEstimator
	sink     AccessSink
	zones    func() map[model.SiteID]model.SiteInfo

	// cache is the optional decoded-block tier (nil-safe: a nil cache
	// misses everything and admits nothing).
	cache *cache.Cache

	// packer stages small blocks into shared containers; nil when
	// packing is disabled (cfg.PackThreshold == 0).
	packer *packer

	obs      clientObs
	tracer   *obs.Tracer
	health   *health.Tracker
	pressure *health.Pressure // nil unless an access tier feeds one

	rngMu sync.Mutex
	rng   *rand.Rand
}

// clientObs is the client's instrument set; every field is nil-safe so an
// unconfigured client pays no instrumentation cost.
type clientObs struct {
	requests      *obs.Counter
	puts          *obs.Counter
	deletes       *obs.Counter
	blocks        *obs.Counter
	chunksFetched *obs.Counter
	fetchErrors   *obs.Counter
	lateDiscarded *obs.Counter
	replans       *obs.Counter
	retries       *obs.Counter
	hedges           *obs.Counter
	hedgesWon        *obs.Counter
	hedgesLost       *obs.Counter
	hedgesSuppressed *obs.Counter
	deadlines     *obs.Counter
	putCleanups   *obs.Counter

	streamPuts    *obs.Counter
	streamStripes *obs.Counter
	streamBytes   *obs.Counter
	rangeReads    *obs.Counter
	rangeBytes    *obs.Counter
	rangeStripes  *obs.Counter
	rangeCacheHit *obs.Counter
	packStaged    *obs.Counter
	packSealed    *obs.Counter
	packBlocks    *obs.Counter
	packBytes     *obs.Counter

	metadataH *obs.Histogram
	planH     *obs.Histogram
	fetchH    *obs.Histogram
	decodeH   *obs.Histogram
	requestH  *obs.Histogram
}

func newClientObs(reg *obs.Registry) clientObs {
	if reg == nil {
		return clientObs{}
	}
	return clientObs{
		requests:      reg.Counter("client_requests_total", "multi-block read requests"),
		puts:          reg.Counter("client_puts_total", "blocks written"),
		deletes:       reg.Counter("client_deletes_total", "blocks deleted"),
		blocks:        reg.Counter("client_blocks_total", "blocks requested across all reads"),
		chunksFetched: reg.Counter("client_chunks_fetched_total", "chunk reads that returned data"),
		fetchErrors:   reg.Counter("client_fetch_errors_total", "chunk reads that failed"),
		lateDiscarded: reg.Counter("client_late_binding_discarded_total", "surplus chunk responses discarded by late binding"),
		replans:       reg.Counter("client_replans_total", "re-planning rounds after mid-read site failures"),
		retries:       reg.Counter("client_retries_total", "chunk and probe attempts retried after transient errors"),
		hedges:        reg.Counter("client_hedged_reads_total", "extra chunk reads issued for slow blocks"),
		hedgesWon:     reg.Counter("client_hedges_won_total", "hedged reads whose chunk was used"),
		hedgesLost:       reg.Counter("client_hedges_lost_total", "hedged reads that arrived too late, failed or were discarded"),
		hedgesSuppressed: reg.Counter("client_hedges_suppressed_total", "hedge opportunities skipped because the access tier reported overload"),
		deadlines:     reg.Counter("client_deadline_expirations_total", "requests abandoned because their deadline expired"),
		putCleanups:   reg.Counter("client_put_cleanups_total", "aborted writes whose stored chunks were rolled back"),
		streamPuts:    reg.Counter("stream_puts_total", "blocks written through the streaming pipeline (PutReader)"),
		streamStripes: reg.Counter("stream_stripes_total", "stripes encoded and shipped by streaming writes"),
		streamBytes:   reg.Counter("stream_bytes_total", "payload bytes ingested by streaming writes"),
		rangeReads:    reg.Counter("range_requests_total", "byte-range read requests (GetRange)"),
		rangeBytes:    reg.Counter("range_bytes_total", "payload bytes served by range reads"),
		rangeStripes:  reg.Counter("range_stripes_decoded_total", "stripes decoded to serve range reads"),
		rangeCacheHit: reg.Counter("range_cache_hits_total", "range reads served from cached decoded blocks"),
		packStaged:    reg.Counter("pack_staged_total", "small blocks staged into pack containers"),
		packSealed:    reg.Counter("pack_sealed_total", "pack containers sealed and registered"),
		packBlocks:    reg.Counter("pack_packed_blocks_total", "small blocks sealed inside pack containers"),
		packBytes:     reg.Counter("pack_bytes_total", "payload bytes staged for packing"),
		metadataH:     reg.Histogram("client_metadata_seconds", "read phase R1: metadata lookup latency"),
		planH:         reg.Histogram("client_plan_seconds", "read phase R2: access planning latency"),
		fetchH:        reg.Histogram("client_fetch_seconds", "read phase R3a: parallel chunk retrieval latency"),
		decodeH:       reg.Histogram("client_decode_seconds", "read phase R3b: erasure decode latency"),
		requestH:      reg.Histogram("client_request_seconds", "end-to-end multi-block read latency"),
	}
}

// newCodecMetrics builds the codec's instrument set and points the wire
// encoder pool's miss hook at the shared buffer_pool_miss_total counter,
// so one metric covers both data-path pools. The hook is process-global;
// with several registries the most recent client's counter wins, which
// is fine for the single-registry deployments the harness runs. A nil
// registry yields nil, disabling codec instrumentation.
func newCodecMetrics(reg *obs.Registry) *erasure.Metrics {
	if reg == nil {
		return nil
	}
	miss := reg.Counter("buffer_pool_miss_total", "data-path buffer pool misses (chunk backing + wire encoders)")
	wire.SetPoolMiss(func() { miss.Add(1) })
	return &erasure.Metrics{
		EncodeBytes: reg.Counter("codec_encode_bytes_total", "block bytes erasure-encoded"),
		DecodeBytes: reg.Counter("codec_decode_bytes_total", "block bytes erasure-decoded"),
		PoolMisses:  miss,
	}
}

// AccessSink receives sampled multi-block requests, e.g. a remote
// statistics service in a distributed deployment.
type AccessSink interface {
	RecordAccess(ids []model.BlockID) error
}

// Deps wires the client to the rest of the system.
type Deps struct {
	Meta  metadata.Service
	Sites map[model.SiteID]storage.SiteAPI
	// CoAccess receives sampled multi-block requests; shared with the
	// chunk mover. Nil creates a private tracker.
	CoAccess *stats.CoAccessTracker
	// Probes supplies o_j estimates; nil creates a private estimator.
	Probes *stats.ProbeEstimator
	// Loads supports load-aware placement; may be nil for PlaceRandom.
	Loads *stats.LoadTracker
	// Health is the per-site breaker set, shared with the mover and
	// repair service so every component skips unhealthy sites
	// consistently. Nil creates a private tracker.
	Health *health.Tracker
	// Sink additionally receives each request's block set (optional),
	// feeding a remote statistics service.
	Sink AccessSink
	// Zones optionally supplies the per-site zone and drain-state view
	// (catalog SiteInfos). When set, writes skip draining and
	// decommissioned sites and cap chunks per failure zone at
	// model.MaxChunksPerZone(R) so one zone outage stays within the
	// erasure margin. Nil places on all connected sites, zone-blind.
	Zones func() map[model.SiteID]model.SiteInfo
	// Pressure optionally feeds access-tier load (the gateway's
	// admission-queue depth) into the read path: while it reports
	// overload, hedged reads are suppressed — duplicate speculative
	// work is the wrong response to a system that is already queueing.
	// Nil disables the coupling.
	Pressure *health.Pressure
	// Metrics optionally exports client instrumentation (request counts,
	// per-phase latency histograms, late-binding waste, plan-cache
	// counters) into a shared registry. Nil disables it at zero cost.
	Metrics *obs.Registry
	// Tracer optionally records a per-request span tree for each
	// GetMulti (metadata/plan/fetch/decode, with per-site fetch child
	// spans). Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

// NewClient builds a client service.
func NewClient(cfg Config, deps Deps) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(deps.Sites) == 0 {
		return nil, ErrNoSites
	}
	var codec *erasure.Codec
	if cfg.Scheme == model.SchemeErasure {
		var err error
		codec, err = erasure.NewCodecWith(cfg.K, cfg.R, erasure.Options{
			Metrics: newCodecMetrics(deps.Metrics),
		})
		if err != nil {
			return nil, fmt.Errorf("build codec: %w", err)
		}
	}
	placer, placerErr := placement.NewPlacer(cfg.PlaceStrategy, deps.Loads, cfg.Seed+1)
	if placerErr != nil {
		return nil, placerErr
	}
	coaccess := deps.CoAccess
	if coaccess == nil {
		coaccess = stats.NewCoAccessTracker(0)
	}
	probes := deps.Probes
	if probes == nil {
		probes = stats.NewProbeEstimator(0.3)
	}
	tracker := deps.Health
	if tracker == nil {
		tracker = health.NewTracker(health.Config{Metrics: deps.Metrics})
	}
	blockCache := cache.New(cache.Config{
		MaxBytes: cfg.CacheBytes,
		StaleTTL: cfg.CacheStaleTTL,
		Seed:     cfg.Seed + 3,
		Hotness:  coaccess,
		Metrics:  deps.Metrics,
	})
	if blockCache != nil {
		// The sweeper only has work when stale-if-error retention is
		// on, but running it unconditionally keeps the lifecycle
		// uniform; Close stops it either way.
		sweep := cfg.CacheStaleTTL
		if sweep <= 0 {
			sweep = 30 * time.Second
		}
		blockCache.StartMaintenance(sweep)
	}
	cl := &Client{
		cfg:   cfg,
		codec: codec,
		meta:  deps.Meta,
		sites: deps.Sites,
		plan: placement.NewPlanner(placement.PlannerConfig{
			Strategy:    cfg.Strategy,
			Delta:       cfg.Delta,
			InlineExact: cfg.InlineExact,
			Seed:        cfg.Seed,
			Metrics:     deps.Metrics,
		}),
		placer:   placer,
		coaccess: coaccess,
		probes:   probes,
		sink:     deps.Sink,
		zones:    deps.Zones,
		cache:    blockCache,
		obs:      newClientObs(deps.Metrics),
		tracer:   deps.Tracer,
		health:   tracker,
		pressure: deps.Pressure,
		rng:      rand.New(rand.NewSource(cfg.Seed + 2)),
	}
	if cfg.PackThreshold > 0 && cfg.Scheme == model.SchemeErasure {
		cl.packer = newPacker(cl)
	}
	return cl, nil
}

// Close releases planner resources and stops the cache's background
// maintenance goroutine, waiting for it to drain.
func (c *Client) Close() {
	c.plan.Close()
	c.cache.Close()
}

// Codec exposes the erasure codec (nil under replication).
func (c *Client) Codec() *erasure.Codec { return c.codec }

// PlannerStats returns plan-cache statistics.
func (c *Client) PlannerStats() placement.PlannerStats { return c.plan.Stats() }

// CacheStats returns decoded-block cache statistics (zero when the
// cache is disabled).
func (c *Client) CacheStats() cache.Stats { return c.cache.Stats() }

// Health exposes the client's site breaker set.
func (c *Client) Health() *health.Tracker { return c.health }

// StorageOverhead returns the configured scheme's storage expansion factor.
func (c *Client) StorageOverhead() float64 {
	if c.cfg.Scheme == model.SchemeReplicated {
		return float64(c.cfg.R + 1)
	}
	return float64(c.cfg.K+c.cfg.R) / float64(c.cfg.K)
}

// MarkFailed records a site as unavailable for planning by forcing its
// breaker open (manual marking; mid-read failures report to the breaker
// instead, which honours the failure threshold).
func (c *Client) MarkFailed(s model.SiteID) { c.health.ForceOpen(s) }

// MarkAvailable clears a site's failed mark by closing its breaker.
func (c *Client) MarkAvailable(s model.SiteID) { c.health.Reset(s) }

// available reports whether a site is believed reachable: only sites
// with a closed breaker join fresh access plans.
func (c *Client) available(s model.SiteID) bool { return c.health.Available(s) }

// costs materializes the current cost model from probe estimates.
func (c *Client) costs() *model.SiteCosts {
	return c.probes.Costs(c.cfg.DefaultO, c.cfg.DefaultM)
}

// totalChunks returns how many chunks (or copies) each block stores.
func (c *Client) totalChunks() int {
	if c.cfg.Scheme == model.SchemeReplicated {
		return c.cfg.R + 1
	}
	return c.cfg.K + c.cfg.R
}

// requestCtx applies the configured per-request deadline.
func (c *Client) requestCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.cfg.RequestTimeout > 0 {
		return context.WithTimeout(ctx, c.cfg.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// chunkCtx applies the configured per-chunk deadline.
func (c *Client) chunkCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.cfg.ChunkTimeout > 0 {
		return context.WithTimeout(ctx, c.cfg.ChunkTimeout)
	}
	return ctx, func() {}
}

// Put stores a block under id (write path W1-W3).
//
//lint:ignore ctxfirst context-free convenience entry over PutContext; timeouts still apply via cfg.RequestTimeout
func (c *Client) Put(id model.BlockID, data []byte) error {
	return c.PutContext(context.Background(), id, data)
}

// PutContext stores a block under a caller-supplied context. If any chunk
// store or the metadata registration fails, the chunks already written are
// deleted best-effort so an aborted write does not orphan storage.
func (c *Client) PutContext(ctx context.Context, id model.BlockID, data []byte) error {
	if id == "" {
		return errors.New("core: empty block id")
	}
	// Small-block packing: below the threshold the block is staged into
	// a shared container instead of being encoded alone (a lone tiny
	// block pads every chunk to the 64-byte kernel boundary and pays k+r
	// RPCs for a handful of bytes). Staged blocks read and delete
	// normally; their bytes hit the sites when the container seals.
	if c.packer != nil && int64(len(data)) <= c.cfg.PackThreshold {
		return c.packer.put(ctx, id, data)
	}
	ctx, cancel := c.requestCtx(ctx)
	defer cancel()
	chosen, err := c.place(c.totalChunks())
	if err != nil {
		return fmt.Errorf("place %s: %w", id, err)
	}

	var chunks [][]byte
	var chunkSize int64
	var stripe *erasure.Stripe
	if c.cfg.Scheme == model.SchemeReplicated {
		chunks = make([][]byte, c.cfg.R+1)
		for i := range chunks {
			chunks[i] = data
		}
		chunkSize = int64(len(data))
	} else {
		// EncodePooled avoids copying the data path: full data chunks
		// alias data, and padding + parity live in one pooled backing
		// released below. Safe because every consumer copies on ingest:
		// the local Service's store copies on Put, and the RPC client
		// finishes writing the chunk to the socket before returning.
		stripe, err = c.codec.EncodePooled(data)
		if err != nil {
			return fmt.Errorf("encode %s: %w", id, err)
		}
		chunks = stripe.Chunks()
		chunkSize = int64(len(chunks[0]))
	}

	// Store chunks with bounded fan-out: at most cfg.PutFanout workers
	// drain the chunk list, so concurrent Puts cannot multiply into an
	// unbounded goroutine swarm while one slow site backs writes up.
	errs := make([]error, len(chunks))
	workers := c.cfg.PutFanout
	if workers < 0 || workers > len(chunks) {
		workers = len(chunks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				site := c.sites[chosen[i]]
				if site == nil {
					errs[i] = fmt.Errorf("%w: site %d", ErrNoSites, chosen[i])
					continue
				}
				cctx, ccancel := c.chunkCtx(ctx)
				errs[i] = site.PutChunk(cctx, model.ChunkRef{Block: id, Chunk: i}, chunks[i])
				ccancel()
			}
		}()
	}
	wg.Wait()
	// Every site has ingested (or failed) its chunk; recycle the pooled
	// stripe before the slower metadata and rollback steps.
	if stripe != nil {
		stripe.Release()
		chunks = nil
	}
	for i, err := range errs {
		if err != nil {
			c.cleanupChunks(ctx, id, chosen, errs)
			return fmt.Errorf("store chunk %d of %s: %w", i, id, err)
		}
	}

	k := c.cfg.K
	if c.cfg.Scheme == model.SchemeReplicated {
		k = 1
	}
	meta := &model.BlockMeta{
		ID:        id,
		Scheme:    c.cfg.Scheme,
		Size:      int64(len(data)),
		K:         k,
		R:         c.cfg.R,
		ChunkSize: chunkSize,
		Sites:     chosen,
	}
	if err := c.meta.Register(meta); err != nil {
		c.cleanupChunks(ctx, id, chosen, nil)
		return fmt.Errorf("register %s: %w", id, err)
	}
	// A re-created id must never be served from bytes cached under a
	// previous incarnation.
	c.cache.Invalidate(id)
	c.obs.puts.Inc()
	return nil
}

// cleanupChunks best-effort deletes the chunks an aborted Put already
// wrote: every position whose error entry is nil (a nil errs deletes all
// of them). Without this, a failed write would leak orphaned chunks until
// a repair scrub finds them. The rollback detaches from the request's
// cancellation — the Put that triggered it may have failed precisely
// because its context expired — but stays bounded by its own timeout.
func (c *Client) cleanupChunks(ctx context.Context, id model.BlockID, chosen []model.SiteID, errs []error) {
	timeout := c.cfg.ChunkTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for i, siteID := range chosen {
		if errs != nil && errs[i] != nil {
			continue
		}
		api := c.sites[siteID]
		if api == nil {
			continue
		}
		wg.Add(1)
		go func(api storage.SiteAPI, ref model.ChunkRef) {
			defer wg.Done()
			_ = api.DeleteChunk(ctx, ref)
		}(api, model.ChunkRef{Block: id, Chunk: i})
	}
	wg.Wait()
	c.obs.putCleanups.Inc()
}

// Get retrieves one block.
//
//lint:ignore ctxfirst context-free convenience entry over GetContext; timeouts still apply via cfg.RequestTimeout
func (c *Client) Get(id model.BlockID) ([]byte, error) {
	return c.GetContext(context.Background(), id)
}

// GetContext retrieves one block under a caller-supplied context.
func (c *Client) GetContext(ctx context.Context, id model.BlockID) ([]byte, error) {
	res, _, err := c.GetMultiContext(ctx, []model.BlockID{id})
	if err != nil {
		return nil, err
	}
	return res[id], nil
}

// GetMulti retrieves a set of blocks (read path R1-R3) and returns the
// per-phase response-time breakdown the paper's evaluation reports.
//
//lint:ignore ctxfirst context-free convenience entry over GetMultiContext; timeouts still apply via cfg.RequestTimeout
func (c *Client) GetMulti(ids []model.BlockID) (map[model.BlockID][]byte, model.Breakdown, error) {
	return c.GetMultiContext(context.Background(), ids)
}

// GetMultiContext is GetMulti under a caller-supplied context; the
// configured RequestTimeout is additionally applied when set.
func (c *Client) GetMultiContext(ctx context.Context, ids []model.BlockID) (map[model.BlockID][]byte, model.Breakdown, error) {
	var bd model.Breakdown
	if len(ids) == 0 {
		return nil, bd, nil
	}
	ctx, cancel := c.requestCtx(ctx)
	defer cancel()
	c.obs.requests.Inc()
	c.obs.blocks.Add(int64(len(ids)))
	tstart := time.Now()
	defer func() { c.obs.requestH.ObserveSince(tstart) }()
	tr := c.tracer.Start("get")
	defer tr.Finish()

	// Small blocks still staged for packing live only in this client's
	// packer — the catalog has never heard of them, so they must be
	// served (read-through) before the all-or-nothing Lookup.
	out := make(map[model.BlockID][]byte, len(ids))
	if c.packer != nil {
		remaining := make([]model.BlockID, 0, len(ids))
		for _, id := range ids {
			if data, ok := c.packer.get(id); ok {
				out[id] = data
			} else {
				remaining = append(remaining, id)
			}
		}
		ids = remaining
		if len(ids) == 0 {
			return out, bd, nil
		}
	}

	// R1: metadata access.
	t0 := time.Now()
	sp := tr.StartSpan("metadata")
	metas, err := c.meta.Lookup(ids)
	sp.End()
	if err != nil {
		return nil, bd, fmt.Errorf("metadata lookup: %w", err)
	}
	bd.Metadata = time.Since(t0).Seconds()
	c.obs.metadataH.Observe(bd.Metadata)

	// Feed co-access statistics (sampled request stream); statistics
	// loss must never fail a read, so sink errors degrade silently.
	c.coaccess.Record(ids)
	if c.sink != nil {
		_ = c.sink.RecordAccess(ids)
	}

	// Sealed pack members resolve to synthesized metadata (PackedIn set):
	// their bytes are a sub-range of the container, served through the
	// stripe-range path instead of a whole-chunk access plan.
	for id, meta := range metas {
		if !meta.Packed() {
			continue
		}
		data, rerr := c.rangeRead(ctx, containerView(meta), meta.PackedOff, meta.Size)
		if rerr != nil {
			return nil, bd, fmt.Errorf("read packed %s: %w", id, rerr)
		}
		out[id] = data
		delete(metas, id)
	}
	if len(metas) == 0 {
		return out, bd, nil
	}
	req := placement.PlanRequest{Metas: metas, Available: c.available}

	// Cache tier: serve decoded hits from local memory and strip them
	// from the plan request — a hit accesses no sites at all, which can
	// only lower the request's Eq. 1 cost. Entries are keyed by the
	// placement version just looked up, so a block moved or rewritten
	// since it was cached misses here and is re-fetched.
	if c.cache != nil {
		sp = tr.StartSpan("cache")
		var hits []model.BlockID
		for id, meta := range metas {
			if data, ok := c.cache.Get(id, meta.Version); ok {
				out[id] = data
				hits = append(hits, id)
			}
		}
		req = req.Without(hits)
		sp.End()
		if len(req.Metas) == 0 {
			return out, bd, nil
		}
	}

	got, err := c.readMisses(ctx, req, tr, &bd)
	for id, data := range got {
		out[id] = data
	}
	if err != nil {
		// Stale-if-error: when a missing block currently cannot be
		// reconstructed (too few of its sites are healthy), a
		// bounded-stale cache entry beats failing the whole request.
		// Any other failure — or any missing block without a fresh
		// enough entry — still fails the read.
		for id, meta := range req.Metas {
			if _, ok := out[id]; ok {
				continue
			}
			if !c.blockUnreadable(meta) {
				return nil, bd, err
			}
			data, _, ok := c.cache.GetStale(id)
			if !ok {
				return nil, bd, err
			}
			out[id] = data
		}
	}
	return out, bd, nil
}

// readMisses retrieves the blocks the cache could not serve. With the
// cache enabled, concurrent requests for the same (block, version)
// coalesce onto one leader fetch+decode through the singleflight group;
// followers whose leader failed get one direct fetch round of their
// own. On error the returned map may hold the blocks that did succeed.
func (c *Client) readMisses(ctx context.Context, req placement.PlanRequest, tr *obs.Trace, bd *model.Breakdown) (map[model.BlockID][]byte, error) {
	if c.cache == nil {
		return c.fetchBlocks(ctx, req, tr, bd)
	}

	leaders := placement.PlanRequest{Metas: make(map[model.BlockID]*model.BlockMeta, len(req.Metas)), Available: req.Available}
	flights := make(map[model.BlockID]*cache.Flight, len(req.Metas))
	followers := make(map[model.BlockID]*cache.Flight)
	for id, meta := range req.Metas {
		f, leader := c.cache.Flights.Join(id, meta.Version)
		if leader {
			leaders.Metas[id] = meta
			flights[id] = f
		} else {
			followers[id] = f
		}
	}
	c.cache.DedupObserved(len(followers))

	out := make(map[model.BlockID][]byte, len(req.Metas))
	var fetchErr error
	if len(leaders.Metas) > 0 {
		data, err := c.fetchBlocks(ctx, leaders, tr, bd)
		for id, f := range flights {
			f.Complete(data[id], err)
		}
		if err != nil {
			fetchErr = err
		} else {
			for id, meta := range leaders.Metas {
				out[id] = data[id]
				c.cache.Put(id, meta.Version, data[id])
			}
		}
	}

	// Collect follower results; a failed or expired leader leaves its
	// followers to one direct fetch round for the remaining blocks.
	direct := placement.PlanRequest{Metas: make(map[model.BlockID]*model.BlockMeta), Available: req.Available}
	for id, f := range followers {
		data, err := f.Wait(ctx)
		if err != nil {
			direct.Metas[id] = req.Metas[id]
			continue
		}
		out[id] = data
	}
	if len(direct.Metas) > 0 {
		data, err := c.fetchBlocks(ctx, direct, tr, bd)
		if err != nil {
			if fetchErr == nil {
				fetchErr = err
			}
		} else {
			for id, meta := range direct.Metas {
				out[id] = data[id]
				c.cache.Put(id, meta.Version, data[id])
			}
		}
	}
	return out, fetchErr
}

// fetchBlocks runs read phases R2 (access planning) and R3 (parallel
// retrieval + decode) for the blocks in req, accumulating phase
// durations into bd. Cache hits never reach this path.
func (c *Client) fetchBlocks(ctx context.Context, req placement.PlanRequest, tr *obs.Trace, bd *model.Breakdown) (map[model.BlockID][]byte, error) {
	metas := req.Metas

	// R2: access planning.
	t1 := time.Now()
	sp := tr.StartSpan("plan")
	plan, _, err := c.plan.Plan(req, c.costs())
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("plan access: %w", err)
	}
	bd.Planning += time.Since(t1).Seconds()
	c.obs.planH.Observe(time.Since(t1).Seconds())

	// R3: retrieval and decode. Site failures are discovered one fetch
	// at a time (an RPC error opens the site's breaker), so replanning
	// retries while the failure set keeps changing; once it stops
	// changing, another round would reproduce the same plan, so the
	// loop exits with the terminal error instead of spinning.
	t2 := time.Now()
	sp = tr.StartSpan("fetch")
	prevFailed := c.unavailableKey()
	chunks, err := c.fetch(ctx, plan, metas, sp)
	for attempt := 0; err != nil && attempt < len(c.sites); attempt++ {
		if ctx.Err() != nil {
			break // request deadline reached: replanning cannot help
		}
		nowFailed := c.unavailableKey()
		if nowFailed == prevFailed {
			break // failure set stopped changing
		}
		prevFailed = nowFailed
		c.obs.replans.Inc()
		var planErr error
		plan, _, planErr = c.plan.Plan(req, c.costs())
		if planErr != nil {
			sp.End()
			return nil, fmt.Errorf("replan access: %w", planErr)
		}
		chunks, err = c.fetch(ctx, plan, metas, sp)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	bd.Retrieve += time.Since(t2).Seconds()
	c.obs.fetchH.Observe(time.Since(t2).Seconds())

	t3 := time.Now()
	sp = tr.StartSpan("decode")
	out := make(map[model.BlockID][]byte, len(metas))
	for id, meta := range metas {
		data, err := c.assemble(meta, chunks[id])
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("decode %s: %w", id, err)
		}
		out[id] = data
	}
	sp.End()
	bd.Decode += time.Since(t3).Seconds()
	c.obs.decodeH.Observe(time.Since(t3).Seconds())
	return out, nil
}

// blockUnreadable reports whether meta's block currently cannot be
// reconstructed: fewer healthy sites hold its chunks than a decode
// needs. Only then may a stale cache entry stand in for the block.
func (c *Client) blockUnreadable(meta *model.BlockMeta) bool {
	return c.health.CountAvailable(meta.Sites) < meta.RequiredChunks()
}

// unavailableKey fingerprints the current failure set for the replan
// loop's early-stop check.
func (c *Client) unavailableKey() string {
	return fmt.Sprint(c.health.Unavailable())
}

// fetchResult carries one chunk retrieval outcome.
type fetchResult struct {
	ref   model.ChunkRef
	site  model.SiteID
	data  []byte
	err   error
	hedge bool
}

// fetch executes an access plan: one goroutine per accessed site issues
// that site's chunk reads sequentially (modelling one connection per site),
// and the caller completes as soon as every block has k chunks. In-flight
// reads are canceled the moment the request is satisfied or fails, and
// surplus late-binding responses are discarded as they trickle in. When
// hedging is enabled, blocks still unsatisfied after the hedge threshold
// get one extra chunk read from the cheapest not-yet-planned site.
func (c *Client) fetch(ctx context.Context, plan *model.AccessPlan, metas map[model.BlockID]*model.BlockMeta, span obs.SpanRef) (map[model.BlockID]map[int][]byte, error) {
	total := plan.ChunkCount()
	fetchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Buffered for every planned read plus one hedge per block, so
	// goroutines never block sending after the collector has returned.
	results := make(chan fetchResult, total+len(metas))
	for _, site := range plan.SortedSites() {
		refs := plan.Reads[site]
		var siteSpan obs.SpanRef
		if span.Active() {
			siteSpan = span.Child("site " + strconv.FormatInt(int64(site), 10))
		}
		go c.fetchSite(fetchCtx, site, refs, siteSpan, results)
	}

	planned := make(map[model.BlockID]map[int]bool, len(metas))
	for _, refs := range plan.Reads {
		for _, ref := range refs {
			m := planned[ref.Block]
			if m == nil {
				m = make(map[int]bool)
				planned[ref.Block] = m
			}
			m[ref.Chunk] = true
		}
	}

	need := make(map[model.BlockID]int, len(metas))
	for id, meta := range metas {
		need[id] = meta.RequiredChunks()
	}
	got := make(map[model.BlockID]map[int][]byte, len(metas))
	satisfied := 0
	failures := 0
	fetched := 0
	plannedSeen := 0
	hedgesLaunched := 0
	hedgesWon := 0

	var hedgeC <-chan time.Time
	if d := c.hedgeThreshold(); d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		hedgeC = timer.C
	}

	flush := func() {
		c.obs.chunksFetched.Add(int64(fetched))
		c.obs.fetchErrors.Add(int64(failures))
		c.obs.lateDiscarded.Add(int64(total - plannedSeen))
		c.obs.hedges.Add(int64(hedgesLaunched))
		c.obs.hedgesWon.Add(int64(hedgesWon))
		c.obs.hedgesLost.Add(int64(hedgesLaunched - hedgesWon))
	}

	outstanding := total
	for outstanding > 0 && satisfied < len(metas) {
		select {
		case res := <-results:
			outstanding--
			if !res.hedge {
				plannedSeen++
			}
			if res.err != nil {
				if errors.Is(res.err, context.Canceled) && ctx.Err() == nil {
					continue // canceled by our own completion; not a failure
				}
				failures++
				if isSiteFailure(res.err) {
					c.health.ReportFailure(res.site)
				}
				continue
			}
			c.health.ReportSuccess(res.site)
			fetched++
			m := got[res.ref.Block]
			if m == nil {
				m = make(map[int][]byte)
				got[res.ref.Block] = m
			}
			if _, dup := m[res.ref.Chunk]; dup {
				continue
			}
			wasSatisfied := len(m) >= need[res.ref.Block]
			m[res.ref.Chunk] = res.data
			if res.hedge && !wasSatisfied {
				hedgesWon++
			}
			if !wasSatisfied && len(m) == need[res.ref.Block] {
				satisfied++
			}

		case <-hedgeC:
			hedgeC = nil
			n := c.launchHedges(fetchCtx, metas, planned, got, need, results)
			hedgesLaunched += n
			outstanding += n

		case <-ctx.Done():
			c.obs.deadlines.Inc()
			flush()
			return nil, fmt.Errorf("core: fetch: %w", ctx.Err())
		}
	}
	flush()

	if satisfied < len(metas) {
		for id := range metas {
			if len(got[id]) < need[id] {
				return nil, fmt.Errorf("%w: %s has %d of %d chunks", ErrBlockUnavailable, id, len(got[id]), need[id])
			}
		}
	}
	return got, nil
}

// fetchSite issues one site's planned reads sequentially (one connection
// per site). After a site-level failure, the remaining refs fail fast
// instead of being attempted, so a hung site costs at most one per-chunk
// timeout per fetch round rather than one per planned read.
func (c *Client) fetchSite(ctx context.Context, site model.SiteID, refs []model.ChunkRef, siteSpan obs.SpanRef, results chan<- fetchResult) {
	defer siteSpan.End()
	api := c.sites[site]
	var down error
	if api == nil {
		down = fmt.Errorf("%w: site %d", ErrNoSites, site)
	}
	for _, ref := range refs {
		if down == nil && ctx.Err() != nil {
			down = ctx.Err()
		}
		if down != nil {
			results <- fetchResult{ref: ref, site: site, err: down}
			continue
		}
		data, err := c.readChunk(ctx, api, ref)
		results <- fetchResult{ref: ref, site: site, data: data, err: err}
		if err != nil && !errors.Is(err, context.Canceled) && isSiteFailure(err) {
			down = err
		}
	}
}

// hedgeThreshold returns the current hedge trigger delay: HedgeDelay when
// fixed, else the observed fetch-latency quantile once enough requests
// have been recorded. Zero disables hedging.
func (c *Client) hedgeThreshold() time.Duration {
	th := time.Duration(0)
	if c.cfg.HedgeDelay > 0 {
		th = c.cfg.HedgeDelay
	} else if c.cfg.HedgeQuantile > 0 && c.cfg.HedgeQuantile < 1 && c.obs.fetchH.Count() >= hedgeMinSamples {
		if q := c.obs.fetchH.Quantile(c.cfg.HedgeQuantile); q > 0 {
			th = time.Duration(q * float64(time.Second))
		}
	}
	// Under access-tier overload (gateway queue occupied), speculative
	// duplicate reads only add load; shed them first.
	if th > 0 && c.pressure.Overloaded() {
		c.obs.hedgesSuppressed.Inc()
		return 0
	}
	return th
}

// launchHedges issues at most one extra chunk read per unsatisfied block,
// extending late binding: the hedge targets a chunk the plan did not
// select, fetched from the cheapest available holder under the Eq. 1 cost
// model (o_j + m_j x chunk size). Returns how many hedges were started.
func (c *Client) launchHedges(ctx context.Context, metas map[model.BlockID]*model.BlockMeta, planned map[model.BlockID]map[int]bool, got map[model.BlockID]map[int][]byte, need map[model.BlockID]int, results chan<- fetchResult) int {
	costs := c.costs()
	launched := 0
	for id, meta := range metas {
		if len(got[id]) >= need[id] {
			continue
		}
		best := -1
		var bestCost float64
		for chunk, site := range meta.Sites {
			if site == model.NoSite || planned[id][chunk] {
				continue
			}
			if _, have := got[id][chunk]; have {
				continue
			}
			if c.sites[site] == nil || !c.available(site) {
				continue
			}
			cost := costs.OCost(site) + costs.MCost(site)*float64(meta.ChunkSize)
			if best == -1 || cost < bestCost {
				best, bestCost = chunk, cost
			}
		}
		if best == -1 {
			continue // no unplanned chunk left on an available site
		}
		ref := model.ChunkRef{Block: id, Chunk: best}
		site := meta.Sites[best]
		api := c.sites[site]
		launched++
		go func(site model.SiteID, api storage.SiteAPI, ref model.ChunkRef) {
			data, err := c.readChunk(ctx, api, ref)
			// The request may have been satisfied (or expired) while
			// this hedge was in flight; never block on a collector
			// that already went away.
			select {
			case results <- fetchResult{ref: ref, site: site, data: data, err: err, hedge: true}:
			case <-ctx.Done():
			}
		}(site, api, ref)
	}
	return launched
}

// readChunk performs one chunk read under the per-attempt deadline and
// retry policy. Missing chunks and deadline errors are never retried on
// the same site: the former cannot improve, and the latter already cost a
// full ChunkTimeout, so the site is left to the breaker and replanning.
func (c *Client) readChunk(ctx context.Context, api storage.SiteAPI, ref model.ChunkRef) ([]byte, error) {
	var data []byte
	var err error
	for attempt := 0; attempt < c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.obs.retries.Inc()
			if !c.backoff(ctx, attempt) {
				return nil, ctx.Err()
			}
		}
		data, err = c.readChunkOnce(ctx, api, ref)
		if err == nil || !retryable(err) {
			return data, err
		}
	}
	return nil, err
}

func (c *Client) readChunkOnce(ctx context.Context, api storage.SiteAPI, ref model.ChunkRef) ([]byte, error) {
	cctx, cancel := c.chunkCtx(ctx)
	defer cancel()
	return api.GetChunk(cctx, ref)
}

// backoff sleeps the jittered exponential retry delay for the given
// attempt (1-based); false when the context expired first.
func (c *Client) backoff(ctx context.Context, attempt int) bool {
	d := c.cfg.Retry.BaseBackoff << uint(attempt-1)
	if d > c.cfg.Retry.MaxBackoff || d <= 0 {
		d = c.cfg.Retry.MaxBackoff
	}
	c.rngMu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	t := time.NewTimer(d + jitter)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryable reports whether an error is worth retrying against the same
// site: transient transport and site errors are, while missing chunks
// (stale metadata) and context expiry (the attempt already consumed its
// deadline, or the caller is gone) are not.
func retryable(err error) bool {
	return !errors.Is(err, storage.ErrChunkNotFound) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// assemble turns fetched chunks into the original block. Striped blocks
// (written by PutReader) interleave the data across chunks, so the
// chunks are decoded into one k*ChunkSize window and the block gathered
// out of it; contiguous blocks decode directly.
func (c *Client) assemble(meta *model.BlockMeta, chunks map[int][]byte) ([]byte, error) {
	if meta.Scheme == model.SchemeReplicated {
		for _, data := range chunks {
			return data, nil
		}
		return nil, fmt.Errorf("%w: no replica fetched", ErrBlockUnavailable)
	}
	if meta.StripeUnit > 0 {
		lay := layoutOf(meta)
		win := make([]byte, int64(meta.K)*meta.ChunkSize)
		if err := c.codec.DecodeInto(win, chunks); err != nil {
			return nil, err
		}
		data := make([]byte, meta.Size)
		if err := lay.Gather(data, win, 0, 0); err != nil {
			return nil, err
		}
		return data, nil
	}
	return c.codec.Decode(chunks, int(meta.Size))
}

// layoutOf builds the range-addressing view of a block's chunk layout.
func layoutOf(meta *model.BlockMeta) erasure.Layout {
	return erasure.Layout{
		K:          meta.K,
		BlockSize:  meta.Size,
		ChunkSize:  meta.ChunkSize,
		StripeUnit: meta.StripeUnit,
	}
}

// Delete removes a block and its chunks.
//
//lint:ignore ctxfirst context-free convenience entry over DeleteContext; timeouts still apply via cfg.RequestTimeout
func (c *Client) Delete(id model.BlockID) error {
	return c.DeleteContext(context.Background(), id)
}

// DeleteContext removes a block and its chunks under a caller context.
// A block still staged for packing is simply unstaged; a sealed pack
// member is unregistered from its container's member table, whose
// chunks stay put until the container itself is deleted (the catalog
// returns its metadata with no sites, so the chunk loop is a no-op).
func (c *Client) DeleteContext(ctx context.Context, id model.BlockID) error {
	ctx, cancel := c.requestCtx(ctx)
	defer cancel()
	if c.packer != nil && c.packer.unstage(id) {
		c.obs.deletes.Inc()
		return nil
	}
	meta, err := c.meta.Delete(id)
	if err != nil {
		return fmt.Errorf("unregister %s: %w", id, err)
	}
	c.cache.Invalidate(id)
	var wg sync.WaitGroup
	for chunk, site := range meta.Sites {
		api := c.sites[site]
		if api == nil {
			continue
		}
		wg.Add(1)
		go func(api storage.SiteAPI, ref model.ChunkRef) {
			defer wg.Done()
			cctx, ccancel := c.chunkCtx(ctx)
			defer ccancel()
			// Best effort: repair garbage-collects orphans.
			_ = api.DeleteChunk(cctx, ref)
		}(api, model.ChunkRef{Block: id, Chunk: chunk})
	}
	wg.Wait()
	c.obs.deletes.Inc()
	return nil
}

// ProbeAll measures a load-status round trip to every probeable site in
// parallel, feeding o_j estimates and breaker state (Section V-B3).
// Closed breakers are always probed; open ones only once their backoff
// admits a half-open recovery probe, so a down site is not hammered.
//
//lint:ignore ctxfirst context-free convenience entry over ProbeAllContext; each probe still carries cfg.ProbeTimeout
func (c *Client) ProbeAll() { c.ProbeAllContext(context.Background()) }

// ProbeAllContext is ProbeAll under a caller-supplied context. Each probe
// additionally carries the configured ProbeTimeout.
func (c *Client) ProbeAllContext(ctx context.Context) {
	var wg sync.WaitGroup
	for _, id := range c.siteIDs() {
		api := c.sites[id]
		if api == nil || !c.health.AllowProbe(id) {
			continue
		}
		wg.Add(1)
		go func(id model.SiteID, api storage.SiteAPI) {
			defer wg.Done()
			c.probeSite(ctx, id, api)
		}(id, api)
	}
	wg.Wait()
}

// probeSite runs one site's probe with the retry policy and per-probe
// timeout, reporting the outcome to the breaker and, on success, the
// measured RTT to the o_j estimator.
func (c *Client) probeSite(ctx context.Context, id model.SiteID, api storage.SiteAPI) {
	var err error
	for attempt := 0; attempt < c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.obs.retries.Inc()
			if !c.backoff(ctx, attempt) {
				break
			}
		}
		start := time.Now()
		err = c.probeOnce(ctx, api)
		if err == nil {
			c.health.ReportSuccess(id)
			c.probes.Observe(id, scaleRTT(time.Since(start).Seconds(), c.cfg.DefaultO))
			return
		}
		if !retryable(err) {
			break
		}
	}
	c.health.ReportFailure(id)
}

func (c *Client) probeOnce(ctx context.Context, api storage.SiteAPI) error {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	return api.Probe(pctx)
}

// scaleRTT converts a measured probe RTT in seconds into cost-model units,
// normalizing so an idle-probe RTT of ~1ms maps near DefaultO.
func scaleRTT(rttSeconds, defaultO float64) float64 {
	return rttSeconds / 0.001 * defaultO
}

// place selects destination sites for a new block's chunks. With a zone
// view wired (Deps.Zones), draining and decommissioned sites take no new
// chunks and zone caps apply; without one, all connected sites qualify.
func (c *Client) place(chunks int) ([]model.SiteID, error) {
	sites := c.siteIDs()
	if c.zones == nil {
		return c.placer.Place(sites, chunks)
	}
	infos := c.zones()
	eligible := make([]model.SiteID, 0, len(sites))
	for _, s := range sites {
		if info, ok := infos[s]; ok && info.State != model.SiteActive {
			continue
		}
		eligible = append(eligible, s)
	}
	zone := func(s model.SiteID) string { return infos[s].Zone }
	return c.placer.PlaceZoned(eligible, chunks, zone, model.MaxChunksPerZone(c.cfg.R))
}

func (c *Client) siteIDs() []model.SiteID {
	out := make([]model.SiteID, 0, len(c.sites))
	for id := range c.sites {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// isSiteFailure classifies an error as a site-level failure (as opposed to
// a missing chunk, which indicates stale metadata rather than an outage).
func isSiteFailure(err error) bool {
	return !errors.Is(err, storage.ErrChunkNotFound)
}
