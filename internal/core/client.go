// Package core implements the EC-Store client service (Section V,
// Figure 3): the write path W1-W3 (decide placement, encode, store chunks +
// register metadata) and the read path R1-R3 (look up metadata, plan the
// access, retrieve chunks in parallel and decode), including late binding
// and per-phase response-time breakdowns.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
)

// Errors returned by the client.
var (
	ErrNoSites          = errors.New("core: no storage sites")
	ErrBlockUnavailable = errors.New("core: block unavailable")
)

// Config selects the client's fault-tolerance scheme and strategies. Each
// of the paper's six evaluated configurations is expressible:
//
//	R           {Scheme: Replicated, Strategy: Random}
//	EC          {Scheme: Erasure, Strategy: Random}
//	EC+LB       {Scheme: Erasure, Strategy: Random, Delta: 1}
//	EC+C        {Scheme: Erasure, Strategy: Cost}
//	EC+C+M      {Scheme: Erasure, Strategy: Cost} + a running Mover
//	EC+C+M+LB   {Scheme: Erasure, Strategy: Cost, Delta: 1} + Mover
type Config struct {
	// Scheme is erasure coding or replication.
	Scheme model.Scheme
	// K and R are the RS parameters (ignored K for replication: stored
	// copies are R+1 full replicas). Defaults: K=2, R=2.
	K int
	R int
	// Strategy picks random or cost-model access planning.
	Strategy placement.Strategy
	// Delta enables late binding: fetch k+Delta chunks, use the first k.
	Delta int
	// PlaceStrategy governs where new chunks land.
	PlaceStrategy placement.PlaceStrategy
	// InlineExact makes the planner solve ILPs synchronously (tests and
	// simulation); production uses the background worker.
	InlineExact bool
	// Seed drives all client-side randomness.
	Seed int64
	// DefaultO and DefaultM seed the cost model before probes exist
	// (the paper's calibration: m_j = 1 when o_j = 5).
	DefaultO float64
	DefaultM float64
}

func (c Config) withDefaults() Config {
	if c.Scheme == 0 {
		c.Scheme = model.SchemeErasure
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.R == 0 {
		c.R = 2
	}
	if c.Strategy == 0 {
		c.Strategy = placement.StrategyCost
	}
	if c.PlaceStrategy == 0 {
		c.PlaceStrategy = placement.PlaceRandom
	}
	if c.DefaultO == 0 {
		c.DefaultO = 5
	}
	if c.DefaultM == 0 {
		c.DefaultM = 1.0 / (100 * 1024) // m_j=1 per 100 KB chunk at o_j=5
	}
	return c
}

// Client is the EC-Store client service: the component applications link
// against. It owns the erasure codec, the access planner (plan cache +
// greedy/ILP solvers) and one connection per storage site, and implements
// the paper's read path R1-R3 (GetMulti) and write path W1-W3 (Put).
type Client struct {
	cfg    Config
	codec  *erasure.Codec // nil for replication
	meta   metadata.Service
	sites  map[model.SiteID]storage.SiteAPI
	plan   *placement.Planner
	placer *placement.Placer

	coaccess *stats.CoAccessTracker
	probes   *stats.ProbeEstimator
	sink     AccessSink

	obs    clientObs
	tracer *obs.Tracer

	mu     sync.Mutex
	failed map[model.SiteID]bool
}

// clientObs is the client's instrument set; every field is nil-safe so an
// unconfigured client pays no instrumentation cost.
type clientObs struct {
	requests      *obs.Counter
	puts          *obs.Counter
	deletes       *obs.Counter
	blocks        *obs.Counter
	chunksFetched *obs.Counter
	fetchErrors   *obs.Counter
	lateDiscarded *obs.Counter
	replans       *obs.Counter

	metadataH *obs.Histogram
	planH     *obs.Histogram
	fetchH    *obs.Histogram
	decodeH   *obs.Histogram
	requestH  *obs.Histogram
}

func newClientObs(reg *obs.Registry) clientObs {
	if reg == nil {
		return clientObs{}
	}
	return clientObs{
		requests:      reg.Counter("client_requests_total", "multi-block read requests"),
		puts:          reg.Counter("client_puts_total", "blocks written"),
		deletes:       reg.Counter("client_deletes_total", "blocks deleted"),
		blocks:        reg.Counter("client_blocks_total", "blocks requested across all reads"),
		chunksFetched: reg.Counter("client_chunks_fetched_total", "chunk reads that returned data"),
		fetchErrors:   reg.Counter("client_fetch_errors_total", "chunk reads that failed"),
		lateDiscarded: reg.Counter("client_late_binding_discarded_total", "surplus chunk responses discarded by late binding"),
		replans:       reg.Counter("client_replans_total", "re-planning rounds after mid-read site failures"),
		metadataH:     reg.Histogram("client_metadata_seconds", "read phase R1: metadata lookup latency"),
		planH:         reg.Histogram("client_plan_seconds", "read phase R2: access planning latency"),
		fetchH:        reg.Histogram("client_fetch_seconds", "read phase R3a: parallel chunk retrieval latency"),
		decodeH:       reg.Histogram("client_decode_seconds", "read phase R3b: erasure decode latency"),
		requestH:      reg.Histogram("client_request_seconds", "end-to-end multi-block read latency"),
	}
}

// AccessSink receives sampled multi-block requests, e.g. a remote
// statistics service in a distributed deployment.
type AccessSink interface {
	RecordAccess(ids []model.BlockID) error
}

// Deps wires the client to the rest of the system.
type Deps struct {
	Meta  metadata.Service
	Sites map[model.SiteID]storage.SiteAPI
	// CoAccess receives sampled multi-block requests; shared with the
	// chunk mover. Nil creates a private tracker.
	CoAccess *stats.CoAccessTracker
	// Probes supplies o_j estimates; nil creates a private estimator.
	Probes *stats.ProbeEstimator
	// Loads supports load-aware placement; may be nil for PlaceRandom.
	Loads *stats.LoadTracker
	// Sink additionally receives each request's block set (optional),
	// feeding a remote statistics service.
	Sink AccessSink
	// Metrics optionally exports client instrumentation (request counts,
	// per-phase latency histograms, late-binding waste, plan-cache
	// counters) into a shared registry. Nil disables it at zero cost.
	Metrics *obs.Registry
	// Tracer optionally records a per-request span tree for each
	// GetMulti (metadata/plan/fetch/decode, with per-site fetch child
	// spans). Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

// NewClient builds a client service.
func NewClient(cfg Config, deps Deps) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(deps.Sites) == 0 {
		return nil, ErrNoSites
	}
	var codec *erasure.Codec
	if cfg.Scheme == model.SchemeErasure {
		var err error
		codec, err = erasure.NewCodec(cfg.K, cfg.R)
		if err != nil {
			return nil, fmt.Errorf("build codec: %w", err)
		}
	}
	placer, err := placement.NewPlacer(cfg.PlaceStrategy, deps.Loads, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	coaccess := deps.CoAccess
	if coaccess == nil {
		coaccess = stats.NewCoAccessTracker(0)
	}
	probes := deps.Probes
	if probes == nil {
		probes = stats.NewProbeEstimator(0.3)
	}
	return &Client{
		cfg:   cfg,
		codec: codec,
		meta:  deps.Meta,
		sites: deps.Sites,
		plan: placement.NewPlanner(placement.PlannerConfig{
			Strategy:    cfg.Strategy,
			Delta:       cfg.Delta,
			InlineExact: cfg.InlineExact,
			Seed:        cfg.Seed,
			Metrics:     deps.Metrics,
		}),
		placer:   placer,
		coaccess: coaccess,
		probes:   probes,
		sink:     deps.Sink,
		obs:      newClientObs(deps.Metrics),
		tracer:   deps.Tracer,
		failed:   make(map[model.SiteID]bool),
	}, nil
}

// Close releases planner resources.
func (c *Client) Close() { c.plan.Close() }

// Codec exposes the erasure codec (nil under replication).
func (c *Client) Codec() *erasure.Codec { return c.codec }

// PlannerStats returns plan-cache statistics.
func (c *Client) PlannerStats() placement.PlannerStats { return c.plan.Stats() }

// StorageOverhead returns the configured scheme's storage expansion factor.
func (c *Client) StorageOverhead() float64 {
	if c.cfg.Scheme == model.SchemeReplicated {
		return float64(c.cfg.R + 1)
	}
	return float64(c.cfg.K+c.cfg.R) / float64(c.cfg.K)
}

// MarkFailed records a site as unavailable for planning.
func (c *Client) MarkFailed(s model.SiteID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failed[s] = true
}

// MarkAvailable clears a site's failed mark.
func (c *Client) MarkAvailable(s model.SiteID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.failed, s)
}

// available reports whether a site is believed reachable.
func (c *Client) available(s model.SiteID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.failed[s]
}

// costs materializes the current cost model from probe estimates.
func (c *Client) costs() *model.SiteCosts {
	return c.probes.Costs(c.cfg.DefaultO, c.cfg.DefaultM)
}

// totalChunks returns how many chunks (or copies) each block stores.
func (c *Client) totalChunks() int {
	if c.cfg.Scheme == model.SchemeReplicated {
		return c.cfg.R + 1
	}
	return c.cfg.K + c.cfg.R
}

// Put stores a block under id (write path W1-W3).
func (c *Client) Put(id model.BlockID, data []byte) error {
	if id == "" {
		return errors.New("core: empty block id")
	}
	siteList := c.siteIDs()
	chosen, err := c.placer.Place(siteList, c.totalChunks())
	if err != nil {
		return fmt.Errorf("place %s: %w", id, err)
	}

	var chunks [][]byte
	var chunkSize int64
	if c.cfg.Scheme == model.SchemeReplicated {
		chunks = make([][]byte, c.cfg.R+1)
		for i := range chunks {
			chunks[i] = data
		}
		chunkSize = int64(len(data))
	} else {
		chunks, err = c.codec.Encode(data)
		if err != nil {
			return fmt.Errorf("encode %s: %w", id, err)
		}
		chunkSize = int64(len(chunks[0]))
	}

	// Store chunks in parallel.
	var wg sync.WaitGroup
	errs := make([]error, len(chunks))
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			site := c.sites[chosen[i]]
			if site == nil {
				errs[i] = fmt.Errorf("%w: site %d", ErrNoSites, chosen[i])
				return
			}
			errs[i] = site.PutChunk(model.ChunkRef{Block: id, Chunk: i}, chunks[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("store chunk %d of %s: %w", i, id, err)
		}
	}

	k := c.cfg.K
	if c.cfg.Scheme == model.SchemeReplicated {
		k = 1
	}
	meta := &model.BlockMeta{
		ID:        id,
		Scheme:    c.cfg.Scheme,
		Size:      int64(len(data)),
		K:         k,
		R:         c.cfg.R,
		ChunkSize: chunkSize,
		Sites:     chosen,
	}
	if err := c.meta.Register(meta); err != nil {
		return fmt.Errorf("register %s: %w", id, err)
	}
	c.obs.puts.Inc()
	return nil
}

// Get retrieves one block.
func (c *Client) Get(id model.BlockID) ([]byte, error) {
	res, _, err := c.GetMulti([]model.BlockID{id})
	if err != nil {
		return nil, err
	}
	return res[id], nil
}

// GetMulti retrieves a set of blocks (read path R1-R3) and returns the
// per-phase response-time breakdown the paper's evaluation reports.
func (c *Client) GetMulti(ids []model.BlockID) (map[model.BlockID][]byte, model.Breakdown, error) {
	var bd model.Breakdown
	if len(ids) == 0 {
		return nil, bd, nil
	}
	c.obs.requests.Inc()
	c.obs.blocks.Add(int64(len(ids)))
	tstart := time.Now()
	defer func() { c.obs.requestH.ObserveSince(tstart) }()
	tr := c.tracer.Start("get")
	defer tr.Finish()

	// R1: metadata access.
	t0 := time.Now()
	sp := tr.StartSpan("metadata")
	metas, err := c.meta.Lookup(ids)
	sp.End()
	if err != nil {
		return nil, bd, fmt.Errorf("metadata lookup: %w", err)
	}
	bd.Metadata = time.Since(t0).Seconds()
	c.obs.metadataH.Observe(bd.Metadata)

	// Feed co-access statistics (sampled request stream); statistics
	// loss must never fail a read, so sink errors degrade silently.
	c.coaccess.Record(ids)
	if c.sink != nil {
		_ = c.sink.RecordAccess(ids)
	}

	// R2: access planning.
	t1 := time.Now()
	sp = tr.StartSpan("plan")
	plan, _, err := c.plan.Plan(placement.PlanRequest{Metas: metas, Available: c.available}, c.costs())
	sp.End()
	if err != nil {
		return nil, bd, fmt.Errorf("plan access: %w", err)
	}
	bd.Planning = time.Since(t1).Seconds()
	c.obs.planH.Observe(bd.Planning)

	// R3: retrieval and decode. Site failures are discovered one fetch
	// at a time (an RPC error marks the site), so replanning retries
	// until the request succeeds or the failure set stops growing the
	// feasible space.
	t2 := time.Now()
	sp = tr.StartSpan("fetch")
	chunks, err := c.fetch(plan, metas, sp)
	for attempt := 0; err != nil && attempt < len(c.sites); attempt++ {
		c.obs.replans.Inc()
		var planErr error
		plan, _, planErr = c.plan.Plan(placement.PlanRequest{Metas: metas, Available: c.available}, c.costs())
		if planErr != nil {
			sp.End()
			return nil, bd, fmt.Errorf("replan access: %w", planErr)
		}
		chunks, err = c.fetch(plan, metas, sp)
	}
	sp.End()
	if err != nil {
		return nil, bd, err
	}
	bd.Retrieve = time.Since(t2).Seconds()
	c.obs.fetchH.Observe(bd.Retrieve)

	t3 := time.Now()
	sp = tr.StartSpan("decode")
	out := make(map[model.BlockID][]byte, len(ids))
	for id, meta := range metas {
		data, err := c.assemble(meta, chunks[id])
		if err != nil {
			sp.End()
			return nil, bd, fmt.Errorf("decode %s: %w", id, err)
		}
		out[id] = data
	}
	sp.End()
	bd.Decode = time.Since(t3).Seconds()
	c.obs.decodeH.Observe(bd.Decode)
	return out, bd, nil
}

// fetchResult carries one chunk retrieval outcome.
type fetchResult struct {
	ref  model.ChunkRef
	site model.SiteID
	data []byte
	err  error
}

// fetch executes an access plan: one goroutine per accessed site issues
// that site's chunk reads sequentially (modelling one connection per site),
// and the caller completes as soon as every block has k chunks — surplus
// late-binding responses are discarded as they trickle in.
func (c *Client) fetch(plan *model.AccessPlan, metas map[model.BlockID]*model.BlockMeta, span obs.SpanRef) (map[model.BlockID]map[int][]byte, error) {
	total := plan.ChunkCount()
	results := make(chan fetchResult, total)
	for _, site := range plan.SortedSites() {
		refs := plan.Reads[site]
		var siteSpan obs.SpanRef
		if span.Active() {
			siteSpan = span.Child("site " + strconv.FormatInt(int64(site), 10))
		}
		go func(site model.SiteID, refs []model.ChunkRef, siteSpan obs.SpanRef) {
			defer siteSpan.End()
			api := c.sites[site]
			for _, ref := range refs {
				if api == nil {
					results <- fetchResult{ref: ref, site: site, err: fmt.Errorf("%w: site %d", ErrNoSites, site)}
					continue
				}
				data, err := api.GetChunk(ref)
				results <- fetchResult{ref: ref, site: site, data: data, err: err}
			}
		}(site, refs, siteSpan)
	}

	need := make(map[model.BlockID]int, len(metas))
	for id, meta := range metas {
		need[id] = meta.RequiredChunks()
	}
	got := make(map[model.BlockID]map[int][]byte, len(metas))
	satisfied := 0
	failures := 0
	fetched := 0

	received := 0
	for ; received < total && satisfied < len(metas); received++ {
		res := <-results
		if res.err != nil {
			failures++
			if isSiteFailure(res.err) {
				c.MarkFailed(res.site)
			}
			continue
		}
		fetched++
		m := got[res.ref.Block]
		if m == nil {
			m = make(map[int][]byte)
			got[res.ref.Block] = m
		}
		if _, dup := m[res.ref.Chunk]; dup {
			continue
		}
		m[res.ref.Chunk] = res.data
		if len(m) == need[res.ref.Block] {
			satisfied++
		}
	}
	c.obs.chunksFetched.Add(int64(fetched))
	c.obs.fetchErrors.Add(int64(failures))
	// Late-binding waste: planned reads whose responses the request did
	// not wait for (the paper's surplus k+δ responses).
	c.obs.lateDiscarded.Add(int64(total - received))

	if satisfied < len(metas) {
		for id := range metas {
			if len(got[id]) < need[id] {
				return nil, fmt.Errorf("%w: %s has %d of %d chunks", ErrBlockUnavailable, id, len(got[id]), need[id])
			}
		}
	}
	return got, nil
}

// assemble turns fetched chunks into the original block.
func (c *Client) assemble(meta *model.BlockMeta, chunks map[int][]byte) ([]byte, error) {
	if meta.Scheme == model.SchemeReplicated {
		for _, data := range chunks {
			return data, nil
		}
		return nil, fmt.Errorf("%w: no replica fetched", ErrBlockUnavailable)
	}
	return c.codec.Decode(chunks, int(meta.Size))
}

// Delete removes a block and its chunks.
func (c *Client) Delete(id model.BlockID) error {
	meta, err := c.meta.Delete(id)
	if err != nil {
		return fmt.Errorf("unregister %s: %w", id, err)
	}
	var wg sync.WaitGroup
	for chunk, site := range meta.Sites {
		api := c.sites[site]
		if api == nil {
			continue
		}
		wg.Add(1)
		go func(api storage.SiteAPI, ref model.ChunkRef) {
			defer wg.Done()
			// Best effort: repair garbage-collects orphans.
			_ = api.DeleteChunk(ref)
		}(api, model.ChunkRef{Block: id, Chunk: chunk})
	}
	wg.Wait()
	c.obs.deletes.Inc()
	return nil
}

// ProbeAll measures a load-status round trip to every site, feeding o_j
// estimates and availability marks (Section V-B3).
func (c *Client) ProbeAll() {
	for _, id := range c.siteIDs() {
		api := c.sites[id]
		start := time.Now()
		err := api.Probe()
		rtt := time.Since(start).Seconds()
		if err != nil {
			c.MarkFailed(id)
			continue
		}
		c.MarkAvailable(id)
		c.probes.Observe(id, scaleRTT(rtt, c.cfg.DefaultO))
	}
}

// scaleRTT converts a measured probe RTT in seconds into cost-model units,
// normalizing so an idle-probe RTT of ~1ms maps near DefaultO.
func scaleRTT(rttSeconds, defaultO float64) float64 {
	return rttSeconds / 0.001 * defaultO
}

func (c *Client) siteIDs() []model.SiteID {
	out := make([]model.SiteID, 0, len(c.sites))
	for id := range c.sites {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// isSiteFailure classifies an error as a site-level failure (as opposed to
// a missing chunk, which indicates stale metadata rather than an outage).
func isSiteFailure(err error) bool {
	return !errors.Is(err, storage.ErrChunkNotFound)
}
