package core

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/storage"
)

// TestEmptyBlockPutGetRoundTrip pins the ChunkSize(0) fix end to end: an
// empty block pads to 1-byte chunks (ChunkSize reports 1, matching what
// Split stores), round-trips through Put/Get, and registers consistent
// metadata.
func TestEmptyBlockPutGetRoundTrip(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	if err := c.Client.Put("empty", nil); err != nil {
		t.Fatalf("put empty block: %v", err)
	}
	got, err := c.Client.Get("empty")
	if err != nil {
		t.Fatalf("get empty block: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty block read back %d bytes", len(got))
	}
	metas, err := c.Catalog.Lookup([]model.BlockID{"empty"})
	if err != nil {
		t.Fatal(err)
	}
	meta := metas["empty"]
	if meta == nil {
		t.Fatal("no metadata registered for empty block")
	}
	if meta.Size != 0 {
		t.Fatalf("meta.Size = %d, want 0", meta.Size)
	}
	if meta.ChunkSize != 1 {
		t.Fatalf("meta.ChunkSize = %d, want 1 (empty blocks pad to 1-byte chunks)", meta.ChunkSize)
	}
}

// gatedSite blocks every PutChunk until release is closed, reporting
// arrivals so the test can count how many stores run concurrently.
type gatedSite struct {
	storage.SiteAPI
	arrive  chan struct{}
	release chan struct{}
	puts    *atomic.Int64
}

func (g *gatedSite) PutChunk(ctx context.Context, ref model.ChunkRef, data []byte) error {
	g.puts.Add(1)
	g.arrive <- struct{}{}
	<-g.release
	return g.SiteAPI.PutChunk(ctx, ref, data)
}

// TestPutFanoutBounded is the goroutine regression test for the write
// path: a Put of k+r=9 chunks with PutFanout=2 must issue at most 2
// concurrent chunk stores and spawn a bounded number of goroutines —
// the historical path spawned one goroutine per chunk unconditionally.
func TestPutFanoutBounded(t *testing.T) {
	const fanout = 2
	siteIDs := make([]model.SiteID, 12)
	sites := make(map[model.SiteID]storage.SiteAPI, len(siteIDs))
	arrive := make(chan struct{}, 32)
	release := make(chan struct{})
	var puts atomic.Int64
	for i := range siteIDs {
		id := model.SiteID(i + 1)
		siteIDs[i] = id
		svc := storage.NewService(storage.ServiceConfig{Site: id}, storage.NewMemStore())
		sites[id] = &gatedSite{SiteAPI: svc, arrive: arrive, release: release, puts: &puts}
	}
	client, err := NewClient(Config{
		K: 6, R: 3,
		InlineExact: true,
		PutFanout:   fanout,
	}, Deps{
		Meta:  metadata.NewCatalog(siteIDs),
		Sites: sites,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	base := runtime.NumGoroutine()
	putDone := make(chan error, 1)
	go func() { putDone <- client.Put("blk", blockData(4096, 5)) }()

	// Exactly fanout stores should reach the gate; a third arrival
	// within the grace window means the bound is broken.
	for i := 0; i < fanout; i++ {
		select {
		case <-arrive:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d workers reached PutChunk", i, fanout)
		}
	}
	select {
	case <-arrive:
		t.Fatal("more than PutFanout chunk stores ran concurrently")
	case <-time.After(100 * time.Millisecond):
	}
	// One Put goroutine plus fanout workers, with slack for runtime
	// bookkeeping; the unbounded path would add k+r+1 = 10 goroutines.
	if n := runtime.NumGoroutine(); n > base+fanout+3 {
		t.Fatalf("goroutines grew from %d to %d during Put; fan-out not bounded", base, n)
	}

	close(release)
	if err := <-putDone; err != nil {
		t.Fatal(err)
	}
	if got := puts.Load(); got != 9 {
		t.Fatalf("stored %d chunks, want 9", got)
	}
}
