package core

import (
	"testing"
	"time"

	"ecstore/internal/health"
	"ecstore/internal/obs"
)

// TestHedgeSuppressionUnderPressure pins the access-tier coupling: a
// client with a fixed hedge delay stops hedging the moment the gateway
// reports admission-queue pressure, and resumes when it clears.
func TestHedgeSuppressionUnderPressure(t *testing.T) {
	pressure := health.NewPressure(1)
	reg := obs.NewRegistry()
	cl := newTestCluster(t, ClusterConfig{
		Client: Config{
			K: 2, R: 1, Delta: 1,
			HedgeDelay: 5 * time.Millisecond,
		},
		Metrics:  reg,
		Pressure: pressure,
	})
	c := cl.Client

	if got := c.hedgeThreshold(); got != 5*time.Millisecond {
		t.Fatalf("unpressured hedgeThreshold = %v, want 5ms", got)
	}
	pressure.SetQueueDepth(3)
	if got := c.hedgeThreshold(); got != 0 {
		t.Fatalf("overloaded hedgeThreshold = %v, want 0 (suppressed)", got)
	}
	if reg.Snapshot().CounterValue("client_hedges_suppressed_total", "") == 0 {
		t.Fatal("client_hedges_suppressed_total should count the suppression")
	}
	pressure.SetQueueDepth(0)
	if got := c.hedgeThreshold(); got != 5*time.Millisecond {
		t.Fatalf("recovered hedgeThreshold = %v, want 5ms", got)
	}
}
