package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"ecstore/internal/faults"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/storage"
)

// slowReader delivers its payload in small uneven pieces, forcing
// PutReader's io.ReadFull loop to cross read boundaries.
type slowReader struct {
	data []byte
	step int
}

func (r *slowReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.step
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func TestPutReaderRoundTrip(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{
		Client: Config{StripeUnit: 256, StreamDepth: 3},
	})
	// 5 full stripes (k=2, unit=256 => 512 B/stripe) plus a partial tail.
	data := blockData(5*512+123, 9)
	nw, err := c.Client.PutReader(context.Background(), "s1", &slowReader{data: append([]byte(nil), data...), step: 300})
	if err != nil {
		t.Fatal(err)
	}
	if nw != int64(len(data)) {
		t.Fatalf("PutReader wrote %d bytes, want %d", nw, len(data))
	}

	meta, ok := c.Catalog.BlockMeta("s1")
	if !ok {
		t.Fatal("block not registered")
	}
	if meta.StripeUnit != 256 || meta.ChunkSize != 6*256 || meta.Size != int64(len(data)) {
		t.Fatalf("meta = unit %d chunk %d size %d, want 256/%d/%d", meta.StripeUnit, meta.ChunkSize, meta.Size, 6*256, len(data))
	}

	got, err := c.Client.Get("s1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped whole-block read mismatch")
	}
}

func TestPutReaderEmptyBlock(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Client: Config{StripeUnit: 128}})
	nw, err := c.Client.PutReader(context.Background(), "empty", bytes.NewReader(nil))
	if err != nil || nw != 0 {
		t.Fatalf("PutReader(empty) = %d, %v", nw, err)
	}
	meta, ok := c.Catalog.BlockMeta("empty")
	if !ok || meta.Size != 0 || meta.ChunkSize != 128 {
		t.Fatalf("empty block meta: ok=%v %+v", ok, meta)
	}
	got, err := c.Client.Get("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("Get(empty) = %d bytes, %v", len(got), err)
	}
	if _, err := c.Client.GetRange(context.Background(), "empty", 0, 0); err != nil {
		t.Fatalf("zero-length range of empty block: %v", err)
	}
	if _, err := c.Client.GetRange(context.Background(), "empty", 0, 1); !errors.Is(err, ErrRangeOutOfBounds) {
		t.Fatalf("read past empty block: %v", err)
	}
}

func TestPutReaderReplicatedFallback(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Client: Config{Scheme: model.SchemeReplicated}})
	data := blockData(700, 2)
	if _, err := c.Client.PutReader(context.Background(), "r1", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Client.Get("r1")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replicated PutReader round trip failed: %v", err)
	}
	if got, err := c.Client.GetRange(context.Background(), "r1", 100, 50); err != nil || !bytes.Equal(got, data[100:150]) {
		t.Fatalf("replicated GetRange: %v", err)
	}
}

// TestGetRangeFetchesOnlyTouchedStripes is the acceptance check: a
// range covering 1/8 of a striped block must decode only the stripes it
// touches, observable via range_stripes_decoded_total.
func TestGetRangeFetchesOnlyTouchedStripes(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		Metrics: reg,
		Client:  Config{StripeUnit: 64 << 10},
	})
	data := blockData(1<<20, 5) // 1 MiB, k=2, unit 64 KiB => 8 stripes
	if _, err := c.Client.PutReader(context.Background(), "big", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("big")
	totalStripes := meta.ChunkSize / meta.StripeUnit
	if totalStripes != 8 {
		t.Fatalf("block has %d stripes, want 8", totalStripes)
	}

	cases := []struct {
		off, n      int64
		wantStripes int64
	}{
		{0, 128 << 10, 1},            // 1/8 of the block = one stripe
		{0, 1 << 14, 1},              // 1/64
		{1 << 20 / 2, 1 << 19, 4},    // second half
		{(128 << 10) - 7, 14, 2},     // stripe-crossing sliver
		{int64(len(data)) - 1, 1, 1}, // last byte
		{0, int64(len(data)), 8},     // whole block via range path
	}
	for _, tc := range cases {
		before := reg.Snapshot().CounterValue("range_stripes_decoded_total", "")
		got, err := c.Client.GetRange(context.Background(), "big", tc.off, tc.n)
		if err != nil {
			t.Fatalf("GetRange(%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(got, data[tc.off:tc.off+tc.n]) {
			t.Fatalf("GetRange(%d,%d) bytes mismatch", tc.off, tc.n)
		}
		decoded := reg.Snapshot().CounterValue("range_stripes_decoded_total", "") - before
		if decoded != tc.wantStripes {
			t.Errorf("GetRange(%d,%d) decoded %d stripes, want %d (of %d total)", tc.off, tc.n, decoded, tc.wantStripes, totalStripes)
		}
	}
}

// TestGetRangeContiguousBlock pins the legacy-layout degradation: a
// range inside one data chunk stays tight, and PutContext blocks keep
// serving ranges without any stripe metadata.
func TestGetRangeContiguousBlock(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	data := blockData(10000, 11)
	if err := c.Client.Put("legacy", data); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ off, n int64 }{{0, 100}, {4000, 3000}, {9999, 1}, {0, 10000}} {
		got, err := c.Client.GetRange(context.Background(), "legacy", tc.off, tc.n)
		if err != nil {
			t.Fatalf("GetRange(%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(got, data[tc.off:tc.off+tc.n]) {
			t.Fatalf("GetRange(%d,%d) mismatch", tc.off, tc.n)
		}
	}
}

// TestGetRangeDegradedSite forces the range path through a parity
// decode: with one site failed, segments must come from a surviving
// data + parity pair and still gather the exact bytes.
func TestGetRangeDegradedSite(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 4, Client: Config{StripeUnit: 512}})
	data := blockData(6000, 3)
	if _, err := c.Client.PutReader(context.Background(), "deg", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("deg")
	// Fail the site holding data chunk 0.
	c.Services[meta.Sites[0]].Fail()

	for _, tc := range []struct{ off, n int64 }{{0, 512}, {1000, 2048}, {5990, 10}} {
		got, err := c.Client.GetRange(context.Background(), "deg", tc.off, tc.n)
		if err != nil {
			t.Fatalf("degraded GetRange(%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(got, data[tc.off:tc.off+tc.n]) {
			t.Fatalf("degraded GetRange(%d,%d) mismatch", tc.off, tc.n)
		}
	}
}

// TestStreamRangeUnderFaultInjection is the e2e chaos check: PutReader
// and GetRange keep their contracts with every site behind a seeded
// fault injector mixing latency and transient errors.
func TestStreamRangeUnderFaultInjection(t *testing.T) {
	siteIDs := []model.SiteID{1, 2, 3, 4, 5, 6}
	catalog := metadata.NewCatalog(siteIDs)
	inj := faults.NewInjector(42)
	apis := make(map[model.SiteID]storage.SiteAPI, len(siteIDs))
	for _, id := range siteIDs {
		svc := storage.NewService(storage.ServiceConfig{Site: id}, storage.NewMemStore())
		fs := faults.NewSite(svc, inj)
		fs.Set(faults.Plan{ErrorRate: 0.05})
		apis[id] = fs
	}
	client, err := NewClient(Config{
		StripeUnit:  256,
		InlineExact: true,
		Retry:       RetryPolicy{MaxAttempts: 6, BaseBackoff: 1, MaxBackoff: 2},
	}, Deps{Meta: catalog, Sites: apis})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := blockData(4*512+100, 7)
	for attempt := 0; ; attempt++ {
		// A write may legitimately fail when the injector outlasts the
		// retry budget; it must fail atomically (no registration) and a
		// later attempt must succeed.
		_, err := client.PutReader(context.Background(), "chaos", bytes.NewReader(data))
		if err == nil {
			break
		}
		if _, ok := catalog.BlockMeta("chaos"); ok {
			t.Fatal("failed PutReader left the block registered")
		}
		if attempt > 50 {
			t.Fatalf("PutReader never succeeded: %v", err)
		}
	}
	for i := 0; i < 30; i++ {
		off := int64(i * 71 % 2000)
		n := int64(i*37%300 + 1)
		got, err := client.GetRange(context.Background(), "chaos", off, n)
		if err != nil {
			t.Fatalf("GetRange(%d,%d) under faults: %v", off, n, err)
		}
		if !bytes.Equal(got, data[off:off+n]) {
			t.Fatalf("GetRange(%d,%d) under faults: bytes mismatch", off, n)
		}
	}
}

func TestGetRangeCacheHit(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		Metrics: reg,
		Client:  Config{StripeUnit: 256, CacheBytes: 1 << 20},
	})
	data := blockData(3000, 13)
	if _, err := c.Client.PutReader(context.Background(), "hot", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	// Whole-block reads warm the decoded cache (admission needs hotness).
	for i := 0; i < 5; i++ {
		if _, err := c.Client.Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Client.GetRange(context.Background(), "hot", 100, 200)
	if err != nil || !bytes.Equal(got, data[100:300]) {
		t.Fatalf("range after warmup: %v", err)
	}
	if hits := reg.Snapshot().CounterValue("range_cache_hits_total", ""); hits == 0 {
		t.Skip("decoded block not admitted; admission is stats-driven")
	}
	// A cache-served range decodes no stripes.
	before := reg.Snapshot().CounterValue("range_stripes_decoded_total", "")
	if _, err := c.Client.GetRange(context.Background(), "hot", 0, 50); err != nil {
		t.Fatal(err)
	}
	if after := reg.Snapshot().CounterValue("range_stripes_decoded_total", ""); after != before {
		t.Fatalf("cache-served range decoded %d stripes", after-before)
	}
}

func TestPackingLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		Metrics: reg,
		Client:  Config{StripeUnit: 256, PackThreshold: 4096, PackCapacity: 16 << 10},
	})
	ctx := context.Background()

	// Stage a handful of 4 KiB blocks; under capacity nothing seals.
	blocks := map[model.BlockID][]byte{}
	for i := 0; i < 3; i++ {
		id := model.BlockID(string(rune('a'+i)) + "-small")
		blocks[id] = blockData(4096, byte(i+1))
		if err := c.Client.Put(id, blocks[id]); err != nil {
			t.Fatal(err)
		}
	}
	if n := reg.Snapshot().CounterValue("pack_sealed_total", ""); n != 0 {
		t.Fatalf("sealed %d containers before capacity", n)
	}
	// Staged blocks read through the packer, whole and by range.
	for id, want := range blocks {
		got, err := c.Client.GetContext(ctx, id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("staged read %s: %v", id, err)
		}
		gr, err := c.Client.GetRange(ctx, id, 10, 100)
		if err != nil || !bytes.Equal(gr, want[10:110]) {
			t.Fatalf("staged range %s: %v", id, err)
		}
	}
	// A staged delete unstages without touching the catalog.
	if err := c.Client.DeleteContext(ctx, "a-small"); err != nil {
		t.Fatal(err)
	}
	delete(blocks, "a-small")
	if _, err := c.Client.GetContext(ctx, "a-small"); err == nil {
		t.Fatal("deleted staged block still readable")
	}

	// Seal and verify members resolve through the catalog's range path.
	if err := c.Client.FlushPacked(ctx); err != nil {
		t.Fatal(err)
	}
	if n := reg.Snapshot().CounterValue("pack_sealed_total", ""); n != 1 {
		t.Fatalf("pack_sealed_total = %d, want 1", n)
	}
	if n := reg.Snapshot().CounterValue("pack_packed_blocks_total", ""); n != 2 {
		t.Fatalf("pack_packed_blocks_total = %d, want 2", n)
	}
	for id, want := range blocks {
		meta, ok := c.Catalog.BlockMeta(id)
		if !ok || !meta.Packed() {
			t.Fatalf("sealed member %s not resolvable as packed (%+v)", id, meta)
		}
		got, err := c.Client.GetContext(ctx, id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("sealed read %s: %v", id, err)
		}
		gr, err := c.Client.GetRange(ctx, id, 1000, 256)
		if err != nil || !bytes.Equal(gr, want[1000:1256]) {
			t.Fatalf("sealed range %s: %v", id, err)
		}
	}

	// Deleting a sealed member unregisters it; the container survives
	// for the remaining member.
	if err := c.Client.DeleteContext(ctx, "b-small"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.GetContext(ctx, "b-small"); err == nil {
		t.Fatal("deleted sealed member still readable")
	}
	if got, err := c.Client.GetContext(ctx, "c-small"); err != nil || !bytes.Equal(got, blocks["c-small"]) {
		t.Fatalf("surviving member unreadable after sibling delete: %v", err)
	}
}

func TestPackingCapacitySealsAutomatically(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		Metrics: reg,
		Client:  Config{StripeUnit: 256, PackThreshold: 4096, PackCapacity: 8 << 10},
	})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		id := model.BlockID(string(rune('p'+i)) + "-auto")
		if err := c.Client.PutContext(ctx, id, blockData(4096, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// 16 KiB staged at 8 KiB capacity: at least one container sealed.
	if n := reg.Snapshot().CounterValue("pack_sealed_total", ""); n == 0 {
		t.Fatal("no container sealed at capacity")
	}
}
