package core

import (
	"bytes"
	"context"
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// TestClusterObservabilityEndToEnd drives a real cluster through Put and
// two Gets and checks that the shared registry saw the whole read path:
// nonzero fetch/decode span counts, per-site storage counters, and the
// plan cache going miss-then-hit (InlineExact installs the exact plan
// synchronously, so the second Get must hit).
func TestClusterObservabilityEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{Metrics: reg})

	data := blockData(2000, 5)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}

	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}

	snap := reg.Snapshot()
	if h := snap.CounterValue("plan_cache_misses_total", ""); h != 1 {
		t.Fatalf("after first Get: misses = %d, want 1", h)
	}
	if h := snap.CounterValue("plan_cache_hits_total", ""); h != 0 {
		t.Fatalf("after first Get: hits = %d, want 0", h)
	}

	if _, err := c.Client.Get("blk"); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if h := snap.CounterValue("plan_cache_hits_total", ""); h != 1 {
		t.Fatalf("after second Get: hits = %d, want 1", h)
	}

	// Both reads fetched k chunks from real sites.
	if n := snap.SumCounters("storage_reads_total"); n < 4 {
		t.Fatalf("storage_reads_total = %d, want >= 4 (2 reads x k=2)", n)
	}
	if n := snap.CounterValue("client_requests_total", ""); n != 2 {
		t.Fatalf("client_requests_total = %d, want 2", n)
	}
	if n := snap.CounterValue("client_puts_total", ""); n != 1 {
		t.Fatalf("client_puts_total = %d, want 1", n)
	}
	if n := snap.CounterValue("client_chunks_fetched_total", ""); n < 4 {
		t.Fatalf("client_chunks_fetched_total = %d, want >= 4", n)
	}

	// Per-request tracing: every finished Get folded its spans into the
	// trace_span_seconds family.
	for _, span := range []string{"metadata", "plan", "fetch", "decode"} {
		h, ok := snap.Histogram("trace_span_seconds", span)
		if !ok || h.Count != 2 {
			t.Fatalf("trace_span_seconds{span=%q}: count = %d (present=%v), want 2", span, h.Count, ok)
		}
	}
	if n := snap.CounterValue("traces_total", ""); n != 2 {
		t.Fatalf("traces_total = %d, want 2", n)
	}

	// The most recent trace carries per-site fetch child spans.
	traces := c.Tracer.Recent(1)
	if len(traces) != 1 {
		t.Fatalf("Recent(1) = %d traces", len(traces))
	}
	var siteSpans int
	for _, sp := range traces[0].Spans() {
		if sp.Depth == 2 {
			siteSpans++
		}
	}
	if siteSpans == 0 {
		t.Fatalf("trace has no per-site fetch spans:\n%s", traces[0])
	}

	// Per-phase client histograms observed both reads.
	for _, name := range []string{"client_metadata_seconds", "client_plan_seconds",
		"client_fetch_seconds", "client_decode_seconds", "client_request_seconds"} {
		h, ok := snap.Histogram(name, "")
		if !ok || h.Count != 2 {
			t.Fatalf("%s: count = %d (present=%v), want 2", name, h.Count, ok)
		}
	}
}

// TestLateBindingDiscardCounter checks that a δ>0 read accounts its surplus
// responses as late-binding waste.
func TestLateBindingDiscardCounter(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		NumSites: 8,
		Client:   Config{Delta: 2},
		Metrics:  reg,
	})
	if err := c.Client.Put("blk", blockData(1200, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Get("blk"); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	discarded := snap.CounterValue("client_late_binding_discarded_total", "")
	fetched := snap.CounterValue("client_chunks_fetched_total", "")
	if discarded+fetched < 4 { // k + δ planned reads accounted one way or the other
		t.Fatalf("fetched=%d discarded=%d, want total >= k+δ = 4", fetched, discarded)
	}
}

// TestMoverMetricsCount checks mover move counters against the runner's own
// counts after a forced co-location workload.
func TestMoverMetricsCount(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		NumSites:    6,
		EnableMover: true,
		Metrics:     reg,
	})
	for i := 0; i < 4; i++ {
		id := model.BlockID(blockName(i))
		if err := c.Client.Put(id, blockData(800, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Drive co-access so the mover has a reason to move, then tick.
	for i := 0; i < 50; i++ {
		if _, _, err := c.Client.GetMulti([]model.BlockID{blockName(0), blockName(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		c.Tick(context.Background())
	}
	moved, failed := c.Mover.Moves()
	snap := reg.Snapshot()
	if n := snap.CounterValue("mover_moves_total", ""); n != moved {
		t.Fatalf("mover_moves_total = %d, runner says %d", n, moved)
	}
	if n := snap.CounterValue("mover_move_failures_total", ""); n != failed {
		t.Fatalf("mover_move_failures_total = %d, runner says %d", n, failed)
	}
}

func blockName(i int) model.BlockID {
	return model.BlockID([]byte{'b', 'l', 'k', byte('0' + i)})
}
