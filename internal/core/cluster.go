package core

import (
	"context"
	"fmt"
	"time"

	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/repair"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
)

// ClusterConfig assembles a complete single-process EC-Store deployment:
// N storage services, a metadata catalog, the statistics trackers, a
// client, and optionally the chunk mover and repair service.
type ClusterConfig struct {
	// NumSites is the data-plane size (the paper's testbed uses 32).
	NumSites int
	// Client configures scheme and strategies.
	Client Config
	// EnableMover runs the background chunk mover (the +M configs).
	EnableMover bool
	// MoverInterval throttles movement; zero means 1s.
	MoverInterval time.Duration
	// EnableRepair runs the repair service.
	EnableRepair bool
	// RepairGrace overrides the 15-minute default grace period.
	RepairGrace time.Duration
	// StatsInterval is the load-report collection period; zero means 2s.
	StatsInterval time.Duration
	// ReadDelayPerByte/ReadDelayFixed emulate storage media on each site.
	ReadDelayPerByte time.Duration
	ReadDelayFixed   time.Duration
	// Health tunes the shared per-site breaker set (failure thresholds,
	// recovery backoff). The zero value uses the package defaults; the
	// Metrics field is always overridden with the cluster registry.
	Health health.Config
	// Metrics optionally instruments every component (sites, catalog,
	// client, planner, mover, repair) with one shared registry and
	// enables per-request tracing. Nil disables observability at zero
	// cost on the hot path.
	Metrics *obs.Registry
}

// Cluster is a fully wired in-process EC-Store instance: every paper
// component (storage sites, metadata catalog, statistics trackers, client,
// chunk mover, repair service) sharing one address space. Examples and
// integration tests use it directly; cmd/ binaries wire the same pieces
// over RPC instead.
type Cluster struct {
	Catalog  *metadata.Catalog
	Services map[model.SiteID]*storage.Service
	Client   *Client
	CoAccess *stats.CoAccessTracker
	Loads    *stats.LoadTracker
	Probes   *stats.ProbeEstimator
	Mover    *MoverRunner
	Repair   *repair.Service
	// Health is the breaker set shared by client, mover and repair.
	Health *health.Tracker
	// Metrics is the shared registry (nil when observability is off) and
	// Tracer the per-request trace collector backed by it.
	Metrics *obs.Registry
	Tracer  *obs.Tracer

	statsInterval time.Duration
	stop          chan struct{}
	done          chan struct{}
	started       bool
}

// NewCluster builds and wires a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumSites < 2 {
		return nil, fmt.Errorf("core: need at least 2 sites, got %d", cfg.NumSites)
	}
	siteIDs := make([]model.SiteID, cfg.NumSites)
	for i := range siteIDs {
		siteIDs[i] = model.SiteID(i + 1)
	}

	var tracer *obs.Tracer
	if cfg.Metrics != nil {
		tracer = obs.NewTracer(128, cfg.Metrics)
	}

	catalog := metadata.NewCatalog(siteIDs)
	if cfg.Metrics != nil {
		catalog.EnableMetrics(cfg.Metrics)
	}
	services := make(map[model.SiteID]*storage.Service, cfg.NumSites)
	apis := make(map[model.SiteID]storage.SiteAPI, cfg.NumSites)
	for _, id := range siteIDs {
		svc := storage.NewService(storage.ServiceConfig{
			Site:             id,
			ReadDelayPerByte: cfg.ReadDelayPerByte,
			ReadDelayFixed:   cfg.ReadDelayFixed,
			Metrics:          cfg.Metrics,
		}, storage.NewMemStore())
		services[id] = svc
		apis[id] = svc
	}

	coaccess := stats.NewCoAccessTracker(0)
	loads := stats.NewLoadTracker()
	probes := stats.NewProbeEstimator(0.3)
	healthCfg := cfg.Health
	healthCfg.Metrics = cfg.Metrics
	tracker := health.NewTracker(healthCfg)

	client, err := NewClient(cfg.Client, Deps{
		Meta:     catalog,
		Sites:    apis,
		CoAccess: coaccess,
		Probes:   probes,
		Loads:    loads,
		Health:   tracker,
		Metrics:  cfg.Metrics,
		Tracer:   tracer,
	})
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		Catalog:       catalog,
		Services:      services,
		Client:        client,
		CoAccess:      coaccess,
		Loads:         loads,
		Probes:        probes,
		Health:        tracker,
		Metrics:       cfg.Metrics,
		Tracer:        tracer,
		statsInterval: cfg.StatsInterval,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	if c.statsInterval == 0 {
		c.statsInterval = 2 * time.Second
	}

	if cfg.EnableMover {
		c.Mover = NewMoverRunner(MoverRunnerConfig{
			Interval: cfg.MoverInterval,
			DefaultO: cfg.Client.DefaultO,
			DefaultM: cfg.Client.DefaultM,
			Health:   tracker,
			Metrics:  cfg.Metrics,
		}, catalog, apis, coaccess, loads, probes)
	}
	if cfg.EnableRepair {
		c.Repair = repair.NewService(repair.Config{
			Grace:   cfg.RepairGrace,
			Health:  tracker,
			Metrics: cfg.Metrics,
		}, catalog, apis, loads)
	}
	return c, nil
}

// Start launches the background control loops (stats collection, mover,
// repair). ctx bounds the site operations the loops perform; shutdown
// remains Close's job. The cluster is usable without Start; Tick drives
// the loops synchronously instead.
func (c *Cluster) Start(ctx context.Context) {
	if c.started {
		return
	}
	c.started = true
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.statsInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				c.CollectStats(ctx)
			case <-c.stop:
				return
			}
		}
	}()
	if c.Mover != nil {
		c.Mover.Start(ctx)
	}
	if c.Repair != nil {
		c.Repair.Start(ctx)
	}
}

// Close stops all background loops and releases resources.
func (c *Cluster) Close() {
	if c.started {
		close(c.stop)
		<-c.done
		c.started = false
	}
	if c.Mover != nil {
		c.Mover.Stop()
	}
	if c.Repair != nil {
		c.Repair.Stop()
	}
	c.Client.Close()
}

// CollectStats performs one statistics round: every live site's load
// report feeds the load tracker, and a probe round refreshes o_j.
func (c *Cluster) CollectStats(ctx context.Context) {
	for id, svc := range c.Services {
		load, err := svc.LoadReport(ctx)
		if err != nil {
			continue // failed sites keep their last report
		}
		c.Loads.Report(id, load)
	}
	c.Client.ProbeAllContext(ctx)
}

// Tick drives one synchronous control-plane round: stats collection, one
// movement attempt (if the mover is enabled), and one repair check (if
// repair is enabled). Deterministic alternative to Start for tests.
func (c *Cluster) Tick(ctx context.Context) {
	c.CollectStats(ctx)
	if c.Mover != nil {
		_, _ = c.Mover.MoveOnce(ctx)
	}
	if c.Repair != nil {
		_ = c.Repair.CheckOnce(ctx)
	}
}

// FailSite injects a failure at a site.
func (c *Cluster) FailSite(id model.SiteID) {
	if svc, ok := c.Services[id]; ok {
		svc.Fail()
		c.Client.MarkFailed(id)
	}
}

// RecoverSite heals a previously failed site.
func (c *Cluster) RecoverSite(id model.SiteID) {
	if svc, ok := c.Services[id]; ok {
		svc.Recover()
		c.Client.MarkAvailable(id)
	}
}

// TotalStoredBytes sums stored bytes across sites.
func (c *Cluster) TotalStoredBytes() int64 {
	var total int64
	for _, svc := range c.Services {
		n, err := svc.StoredBytes()
		if err == nil {
			total += n
		}
	}
	return total
}

// SiteChunkCounts returns the number of chunks per site.
func (c *Cluster) SiteChunkCounts(ctx context.Context) map[model.SiteID]int {
	out := make(map[model.SiteID]int, len(c.Services))
	for id, svc := range c.Services {
		refs, err := svc.ListChunks(ctx)
		if err != nil {
			out[id] = 0
			continue
		}
		out[id] = len(refs)
	}
	return out
}

// Strategy returns the client's access strategy (for reporting).
func (c *Cluster) Strategy() placement.Strategy { return c.Client.plan.Strategy() }
