package core

import (
	"context"
	"fmt"
	"time"

	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/repair"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
	"ecstore/internal/tasks"
)

// ClusterConfig assembles a complete single-process EC-Store deployment:
// N storage services, a metadata catalog, the statistics trackers, a
// client, and optionally the chunk mover and repair service.
type ClusterConfig struct {
	// NumSites is the data-plane size (the paper's testbed uses 32).
	NumSites int
	// Client configures scheme and strategies.
	Client Config
	// EnableMover runs the background chunk mover (the +M configs).
	EnableMover bool
	// MoverInterval throttles movement; zero means 1s.
	MoverInterval time.Duration
	// EnableRepair runs the repair service.
	EnableRepair bool
	// RepairGrace overrides the 15-minute default grace period.
	RepairGrace time.Duration
	// RepairProbeInterval is the liveness sweep cadence; zero means 5s.
	RepairProbeInterval time.Duration
	// EnableScrub runs the periodic checksum scrubber over every active
	// site. Scrub-site tasks can also be enqueued on demand (ScrubSite)
	// without the periodic sweep.
	EnableScrub bool
	// ScrubInterval is the scrub sweep cadence; zero means 1 minute.
	ScrubInterval time.Duration
	// TaskBytesPerSec caps background task I/O (repair, scrub, drain)
	// via the scheduler's shared token bucket; zero disables throttling.
	TaskBytesPerSec int64
	// Zones spreads the sites round-robin over this many failure zones
	// ("z0".."zN-1") and enables zone-aware placement: writes, repair
	// and drain then cap chunks per zone at model.MaxChunksPerZone(R).
	// Zero leaves every site zone-less.
	Zones int
	// StatsInterval is the load-report collection period; zero means 2s.
	StatsInterval time.Duration
	// ReadDelayPerByte/ReadDelayFixed emulate storage media on each site.
	ReadDelayPerByte time.Duration
	ReadDelayFixed   time.Duration
	// Health tunes the shared per-site breaker set (failure thresholds,
	// recovery backoff). The zero value uses the package defaults; the
	// Metrics field is always overridden with the cluster registry.
	Health health.Config
	// Metrics optionally instruments every component (sites, catalog,
	// client, planner, mover, repair) with one shared registry and
	// enables per-request tracing. Nil disables observability at zero
	// cost on the hot path.
	Metrics *obs.Registry
	// Pressure optionally couples the client's hedging policy to an
	// access tier (see Deps.Pressure). Nil disables it.
	Pressure *health.Pressure
}

// Cluster is a fully wired in-process EC-Store instance: every paper
// component (storage sites, metadata catalog, statistics trackers, client,
// chunk mover, repair service) sharing one address space. Examples and
// integration tests use it directly; cmd/ binaries wire the same pieces
// over RPC instead.
type Cluster struct {
	Catalog  *metadata.Catalog
	Services map[model.SiteID]*storage.Service
	Client   *Client
	CoAccess *stats.CoAccessTracker
	Loads    *stats.LoadTracker
	Probes   *stats.ProbeEstimator
	Mover    *MoverRunner
	Repair   *repair.Service
	// Tasks is the unified background scheduler: repair, movement,
	// scrubbing and drains all run as its task types.
	Tasks *tasks.Scheduler
	// Scrub verifies at-rest checksums site by site (scrub-site tasks).
	Scrub *Scrubber
	// Health is the breaker set shared by client, mover and repair.
	Health *health.Tracker
	// Metrics is the shared registry (nil when observability is off) and
	// Tracer the per-request trace collector backed by it.
	Metrics *obs.Registry
	Tracer  *obs.Tracer

	drainer       *Drainer
	sources       []func(ctx context.Context)
	statsInterval time.Duration
	moverInterval time.Duration
	started       bool
}

// NewCluster builds and wires a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumSites < 2 {
		return nil, fmt.Errorf("core: need at least 2 sites, got %d", cfg.NumSites)
	}
	siteIDs := make([]model.SiteID, cfg.NumSites)
	for i := range siteIDs {
		siteIDs[i] = model.SiteID(i + 1)
	}

	var tracer *obs.Tracer
	if cfg.Metrics != nil {
		tracer = obs.NewTracer(128, cfg.Metrics)
	}

	catalog := metadata.NewCatalog(siteIDs)
	if cfg.Metrics != nil {
		catalog.EnableMetrics(cfg.Metrics)
	}
	services := make(map[model.SiteID]*storage.Service, cfg.NumSites)
	apis := make(map[model.SiteID]storage.SiteAPI, cfg.NumSites)
	for _, id := range siteIDs {
		svc := storage.NewService(storage.ServiceConfig{
			Site:             id,
			ReadDelayPerByte: cfg.ReadDelayPerByte,
			ReadDelayFixed:   cfg.ReadDelayFixed,
			Metrics:          cfg.Metrics,
		}, storage.NewMemStore())
		services[id] = svc
		apis[id] = svc
	}

	coaccess := stats.NewCoAccessTracker(0)
	loads := stats.NewLoadTracker()
	probes := stats.NewProbeEstimator(0.3)
	healthCfg := cfg.Health
	healthCfg.Metrics = cfg.Metrics
	tracker := health.NewTracker(healthCfg)

	client, err := NewClient(cfg.Client, Deps{
		Meta:     catalog,
		Sites:    apis,
		CoAccess: coaccess,
		Probes:   probes,
		Loads:    loads,
		Health:   tracker,
		Pressure: cfg.Pressure,
		Metrics:  cfg.Metrics,
		Tracer:   tracer,
		Zones:    catalog.SiteInfos,
	})
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		Catalog:       catalog,
		Services:      services,
		Client:        client,
		CoAccess:      coaccess,
		Loads:         loads,
		Probes:        probes,
		Health:        tracker,
		Metrics:       cfg.Metrics,
		Tracer:        tracer,
		statsInterval: cfg.StatsInterval,
		moverInterval: cfg.MoverInterval,
	}
	if c.statsInterval == 0 {
		c.statsInterval = 2 * time.Second
	}
	if c.moverInterval == 0 {
		c.moverInterval = time.Second
	}

	// The unified scheduler coordinates through the catalog's durable
	// task table, so tasks survive restarts and CLIs can enqueue work.
	c.Tasks = tasks.New(tasks.Config{
		Store:       catalog,
		BytesPerSec: cfg.TaskBytesPerSec,
		Metrics:     cfg.Metrics,
	})

	if cfg.EnableMover {
		c.Mover = NewMoverRunner(MoverRunnerConfig{
			Interval: cfg.MoverInterval,
			DefaultO: cfg.Client.DefaultO,
			DefaultM: cfg.Client.DefaultM,
			Health:   tracker,
			SiteInfo: catalog.SiteInfos,
			Metrics:  cfg.Metrics,
		}, catalog, apis, coaccess, loads, probes)
	}
	if cfg.EnableRepair {
		c.Repair = repair.NewService(repair.Config{
			Grace:         cfg.RepairGrace,
			ProbeInterval: cfg.RepairProbeInterval,
			Health:        tracker,
			SiteInfo:      catalog.SiteInfos,
			Throttle:      c.Tasks.Throttle,
			Metrics:       cfg.Metrics,
		}, catalog, apis, loads)
	}
	c.Scrub = NewScrubber(catalog, apis, c.Tasks.Enqueue, cfg.Metrics)
	c.drainer = NewDrainer(catalog, apis, loads, tracker, cfg.Metrics)
	scrubEvery := time.Duration(0)
	if cfg.EnableScrub {
		scrubEvery = cfg.ScrubInterval
		if scrubEvery <= 0 {
			scrubEvery = time.Minute
		}
	}
	c.sources = BuildTaskPlane(c.Tasks, TaskPlaneOptions{
		Repair:              c.Repair,
		RepairProbeInterval: cfg.RepairProbeInterval,
		Mover:               c.Mover,
		MoverInterval:       c.moverInterval,
		Scrub:               c.Scrub,
		ScrubInterval:       scrubEvery,
		Meta:                catalog,
		Drain:               c.drainer,
		Stats:               c.CollectStats,
		StatsInterval:       c.statsInterval,
	})

	if cfg.Zones > 0 {
		if err := c.SetZones(cfg.Zones); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Start launches the background control plane: one scheduler loop whose
// sources (stats collection, repair sweeps, move planning, scrub sweeps)
// fire at their own cadence and whose tasks run under the shared
// concurrency caps and byte throttle. The cluster is usable without
// Start; Tick drives one full round synchronously instead. The ctx
// parameter is retained for signature compatibility; task contexts come
// from the scheduler.
func (c *Cluster) Start(ctx context.Context) {
	_ = ctx
	if c.started {
		return
	}
	c.started = true
	c.Tasks.Start()
}

// Close stops the background control plane and releases resources.
func (c *Cluster) Close() {
	if c.started {
		c.Tasks.Stop()
		c.started = false
	}
	c.Client.Close()
}

// CollectStats performs one statistics round: every live site's load
// report feeds the load tracker, and a probe round refreshes o_j.
func (c *Cluster) CollectStats(ctx context.Context) {
	for id, svc := range c.Services {
		load, err := svc.LoadReport(ctx)
		if err != nil {
			continue // failed sites keep their last report
		}
		c.Loads.Report(id, load)
	}
	c.Client.ProbeAllContext(ctx)
}

// Tick drives one synchronous control-plane round: every source fires
// regardless of cadence (stats collection, repair sweep, move planning,
// scrub sweep — duplicate enqueues deduplicate against live task rows),
// then the scheduler runs the queue to quiescence. Deterministic
// alternative to Start for tests.
func (c *Cluster) Tick(ctx context.Context) {
	for _, fn := range c.sources {
		fn(ctx)
	}
	c.Tasks.RunOnce(ctx)
}

// FailSite injects a failure at a site.
func (c *Cluster) FailSite(id model.SiteID) {
	if svc, ok := c.Services[id]; ok {
		svc.Fail()
		c.Client.MarkFailed(id)
	}
}

// RecoverSite heals a previously failed site.
func (c *Cluster) RecoverSite(id model.SiteID) {
	if svc, ok := c.Services[id]; ok {
		svc.Recover()
		c.Client.MarkAvailable(id)
	}
}

// TotalStoredBytes sums stored bytes across sites.
func (c *Cluster) TotalStoredBytes() int64 {
	var total int64
	for _, svc := range c.Services {
		n, err := svc.StoredBytes()
		if err == nil {
			total += n
		}
	}
	return total
}

// SiteChunkCounts returns the number of chunks per site.
func (c *Cluster) SiteChunkCounts(ctx context.Context) map[model.SiteID]int {
	out := make(map[model.SiteID]int, len(c.Services))
	for id, svc := range c.Services {
		refs, err := svc.ListChunks(ctx)
		if err != nil {
			out[id] = 0
			continue
		}
		out[id] = len(refs)
	}
	return out
}

// Strategy returns the client's access strategy (for reporting).
func (c *Cluster) Strategy() placement.Strategy { return c.Client.plan.Strategy() }
