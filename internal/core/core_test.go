package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
)

func newTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	if cfg.NumSites == 0 {
		cfg.NumSites = 8
	}
	cfg.Client.InlineExact = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func blockData(n int, seed byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i)*seed + seed
	}
	return d
}

func TestPutGetRoundTripErasure(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	data := blockData(1000, 3)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
}

func TestPutGetRoundTripReplication(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{
		Client: Config{Scheme: model.SchemeReplicated, Strategy: placement.StrategyRandom},
	})
	data := blockData(512, 7)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	// 3 copies stored.
	counts := c.SiteChunkCounts(context.Background())
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 3 {
		t.Fatalf("stored %d copies, want 3", total)
	}
}

func TestStorageOverheadMatchesPaper(t *testing.T) {
	ec := newTestCluster(t, ClusterConfig{})
	rep := newTestCluster(t, ClusterConfig{
		Client: Config{Scheme: model.SchemeReplicated, Strategy: placement.StrategyRandom},
	})
	data := blockData(4096, 1)
	if err := ec.Client.Put("b", data); err != nil {
		t.Fatal(err)
	}
	if err := rep.Client.Put("b", data); err != nil {
		t.Fatal(err)
	}
	// RS(2,2) stores 2x; replication stores 3x: replication stores 50%
	// more, exactly the paper's comparison.
	ecBytes := ec.TotalStoredBytes()
	repBytes := rep.TotalStoredBytes()
	if ecBytes != 2*int64(len(data)) {
		t.Fatalf("EC stored %d bytes, want %d", ecBytes, 2*len(data))
	}
	if repBytes != 3*int64(len(data)) {
		t.Fatalf("R stored %d bytes, want %d", repBytes, 3*len(data))
	}
	if ec.Client.StorageOverhead() != 2.0 || rep.Client.StorageOverhead() != 3.0 {
		t.Fatal("StorageOverhead values wrong")
	}
}

func TestGetMultiBreakdown(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	var ids []model.BlockID
	for i := 0; i < 5; i++ {
		id := model.BlockID(fmt.Sprintf("b%d", i))
		if err := c.Client.Put(id, blockData(300, byte(i+1))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	got, bd, err := c.Client.GetMulti(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d blocks", len(got))
	}
	if bd.Total() <= 0 {
		t.Fatalf("breakdown total = %v", bd.Total())
	}
	for _, id := range ids {
		if !bytes.Equal(got[id], blockData(300, byte(id[1]-'0'+1))) {
			t.Fatalf("block %s corrupted", id)
		}
	}
}

func TestGetMultiEmptyAndMissing(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	got, _, err := c.Client.GetMulti(nil)
	if err != nil || got != nil {
		t.Fatalf("empty GetMulti = (%v, %v)", got, err)
	}
	if _, _, err := c.Client.GetMulti([]model.BlockID{"ghost"}); err == nil {
		t.Fatal("missing block read succeeded")
	}
}

func TestDeleteRemovesChunks(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	if err := c.Client.Put("blk", blockData(100, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Delete("blk"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Get("blk"); err == nil {
		t.Fatal("read succeeded after delete")
	}
	counts := c.SiteChunkCounts(context.Background())
	for id, n := range counts {
		if n != 0 {
			t.Fatalf("site %d still holds %d chunks", id, n)
		}
	}
	if err := c.Client.Delete("blk"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestReadSurvivesRFailures(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 8})
	data := blockData(2000, 5)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	meta, ok := c.Catalog.BlockMeta("blk")
	if !ok {
		t.Fatal("metadata missing")
	}
	// Fail r=2 of the 4 chunk sites: the block must stay readable.
	c.FailSite(meta.Sites[0])
	c.FailSite(meta.Sites[2])
	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}
	// Failing a third chunk site makes it unreadable.
	c.FailSite(meta.Sites[1])
	if _, err := c.Client.Get("blk"); err == nil {
		t.Fatal("read succeeded with k-1 chunks")
	}
	// Recovery restores access.
	c.RecoverSite(meta.Sites[0])
	if _, err := c.Client.Get("blk"); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestReadReplansAroundUnknownFailure(t *testing.T) {
	// The client does NOT know about the failure in advance: the first
	// fetch fails, availability is learned, and the retry succeeds.
	c := newTestCluster(t, ClusterConfig{NumSites: 8})
	data := blockData(1500, 9)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	c.Services[meta.Sites[0]].Fail() // fail behind the client's back
	c.Services[meta.Sites[1]].Fail()
	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch after transparent replan")
	}
}

func TestLateBindingFetchesExtraChunks(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		NumSites: 8,
		Client:   Config{Delta: 1, Strategy: placement.StrategyCost},
		Metrics:  reg,
	})
	data := blockData(900, 4)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("late-binding read mismatch")
	}
	// k+delta = 3 chunk reads were planned. The read returns as soon as
	// any k of them land; the surplus request is then either already
	// complete or canceled and discarded, so fetched + discarded must
	// account for all 3 planned reads.
	snap := reg.Snapshot()
	fetched := snap.CounterValue("client_chunks_fetched_total", "")
	discarded := snap.CounterValue("client_late_binding_discarded_total", "")
	if fetched < 2 {
		t.Fatalf("client_chunks_fetched_total = %d, want >= k=2", fetched)
	}
	if fetched+discarded != 3 {
		t.Fatalf("fetched(%d) + discarded(%d) = %d planned reads accounted, want 3",
			fetched, discarded, fetched+discarded)
	}
	// No more than k+delta storage reads were ever issued.
	var reads int64
	for _, svc := range c.Services {
		r, _ := svc.Totals()
		reads += r
	}
	if reads < 2 || reads > 3 {
		t.Fatalf("late binding issued %d chunk reads, want 2..3", reads)
	}
}

func TestMoverRunnerCoLocatesAndPreservesData(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 10, EnableMover: true})
	// Two co-accessed blocks initially scattered.
	a := blockData(800, 1)
	b := blockData(800, 2)
	if err := c.Client.Put("a", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Put("b", b); err != nil {
		t.Fatal(err)
	}
	// Drive a co-access workload and control-plane rounds.
	for i := 0; i < 60; i++ {
		if _, _, err := c.Client.GetMulti([]model.BlockID{"a", "b"}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			c.Tick(context.Background())
		}
	}
	moved, _ := c.Mover.Moves()
	if moved == 0 {
		t.Skip("no beneficial move found on this layout (placement already co-located)")
	}
	// Data survives movement.
	got, _, err := c.Client.GetMulti([]model.BlockID{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got["a"], a) || !bytes.Equal(got["b"], b) {
		t.Fatal("data corrupted by movement")
	}
	// Fault tolerance preserved.
	for _, id := range []model.BlockID{"a", "b"} {
		meta, _ := c.Catalog.BlockMeta(id)
		seen := map[model.SiteID]bool{}
		for _, s := range meta.Sites {
			if seen[s] {
				t.Fatalf("block %s has two chunks on site %d", id, s)
			}
			seen[s] = true
		}
	}
}

func TestMoverExecuteStalePlan(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 6, EnableMover: true})
	if err := c.Client.Put("a", blockData(100, 1)); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("a")
	stale := model.MovePlan{Block: "a", Chunk: 0, From: 99, To: 5} // wrong From
	if err := c.Mover.Execute(context.Background(), stale); err == nil {
		t.Fatal("stale plan executed")
	}
	_ = meta
}

func TestClusterSchedulerStartStop(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 6, EnableMover: true, MoverInterval: time.Millisecond})
	c.Start(context.Background())
	c.Start(context.Background()) // idempotent
	time.Sleep(5 * time.Millisecond)
	c.Close()
	c.Close() // idempotent
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{NumSites: 1}); err == nil {
		t.Fatal("1-site cluster accepted")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient(Config{}, Deps{}); !errors.Is(err, ErrNoSites) {
		t.Fatalf("err = %v, want ErrNoSites", err)
	}
}

func TestPutEmptyID(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{})
	if err := c.Client.Put("", nil); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestClusterStartStop(t *testing.T) {
	cfg := ClusterConfig{NumSites: 6, EnableMover: true, EnableRepair: true,
		StatsInterval: time.Millisecond, MoverInterval: time.Millisecond}
	cfg.Client.InlineExact = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Put("x", blockData(64, 1)); err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	time.Sleep(10 * time.Millisecond)
	c.Close()
}

func TestPlanCacheHitRateUnderRepeatedAccess(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 8})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		id := model.BlockID(fmt.Sprintf("b%d", i))
		if err := c.Client.Put(id, blockData(128, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Repeatedly read a small set of request shapes.
	shapes := [][]model.BlockID{
		{"b0", "b1"}, {"b2", "b3"}, {"b4", "b5", "b6"},
	}
	for i := 0; i < 60; i++ {
		q := shapes[rng.Intn(len(shapes))]
		if _, _, err := c.Client.GetMulti(q); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Client.PlannerStats()
	if st.HitRate() < 0.8 {
		t.Fatalf("plan cache hit rate = %.2f, want >= 0.8 (paper reports ~0.9)", st.HitRate())
	}
}

func TestProbeAllUpdatesCostsAndAvailability(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{NumSites: 4})
	c.FailSite(2)
	c.Client.MarkAvailable(2) // pretend we don't know yet
	c.Client.ProbeAll()
	if c.Client.available(2) {
		t.Fatal("probe did not detect failed site")
	}
	if !c.Client.available(1) {
		t.Fatal("healthy site marked failed")
	}
	c.RecoverSite(2)
	c.Client.ProbeAll()
	if !c.Client.available(2) {
		t.Fatal("probe did not clear recovered site")
	}
}
