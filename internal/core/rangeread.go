package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"ecstore/internal/model"
	"ecstore/internal/storage"
)

// ErrRangeOutOfBounds reports a byte range outside a block.
var ErrRangeOutOfBounds = errors.New("core: range outside block")

// GetRange reads n bytes of a block starting at byte offset off without
// assembling the whole block: the range is mapped to the per-chunk
// window of stripes it touches (erasure.Layout.Window), only those
// chunk segments are fetched via GetChunkRange, and the window is
// decoded and gathered into the requested bytes. For a striped block a
// small range therefore reads and decodes a small fraction of its
// stripes; a legacy contiguous block degrades gracefully (a range
// inside one data chunk stays tight, a chunk-crossing range reads whole
// chunks). Range reads of cached decoded blocks are sliced from the
// cache without any site access.
func (c *Client) GetRange(ctx context.Context, id model.BlockID, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("%w: [%d,+%d)", ErrRangeOutOfBounds, off, n)
	}
	ctx, cancel := c.requestCtx(ctx)
	defer cancel()
	c.obs.rangeReads.Inc()

	// Read-through for blocks still staged in the packer.
	if c.packer != nil {
		if data, ok := c.packer.get(id); ok {
			if off+n > int64(len(data)) {
				return nil, fmt.Errorf("%w: [%d,%d) of %d-byte staged block %s", ErrRangeOutOfBounds, off, off+n, len(data), id)
			}
			c.obs.rangeBytes.Add(n)
			return data[off : off+n : off+n], nil
		}
	}

	metas, err := c.meta.Lookup([]model.BlockID{id})
	if err != nil {
		return nil, fmt.Errorf("metadata lookup: %w", err)
	}
	meta := metas[id]
	if off+n > meta.Size {
		return nil, fmt.Errorf("%w: [%d,%d) of %d-byte block %s", ErrRangeOutOfBounds, off, off+n, meta.Size, id)
	}
	// A pack member's bytes are a sub-range of its container: shift the
	// offset and read the container's chunks instead.
	if meta.Packed() {
		off += meta.PackedOff
		meta = containerView(meta)
	}
	return c.rangeRead(ctx, meta, off, n)
}

// containerView turns a synthesized pack-member meta into a readable
// view of its container: chunk refs must name the container, and the
// member's end offset is a valid lower bound for the container size in
// the window math (registration guarantees PackedOff+Size fits).
func containerView(meta *model.BlockMeta) *model.BlockMeta {
	v := meta.Clone()
	v.ID = meta.PackedIn
	v.Size = meta.PackedOff + meta.Size
	v.PackedIn, v.PackedOff = "", 0
	return v
}

// rangeRead serves [off, off+n) of the (non-packed) block described by
// meta. The caller has bounds-checked the range against meta.Size.
func (c *Client) rangeRead(ctx context.Context, meta *model.BlockMeta, off, n int64) ([]byte, error) {
	if n == 0 {
		return []byte{}, nil
	}
	// A cached decoded block already holds every byte: slice it without
	// touching any site. Entries are version-keyed, so a moved or
	// rewritten block cannot serve stale ranges.
	if c.cache != nil {
		if data, ok := c.cache.Get(meta.ID, meta.Version); ok && off+n <= int64(len(data)) {
			c.obs.rangeCacheHit.Inc()
			c.obs.rangeBytes.Add(n)
			return data[off : off+n : off+n], nil
		}
	}
	if meta.Scheme == model.SchemeReplicated {
		return c.rangeReplica(ctx, meta, off, n)
	}

	lay := layoutOf(meta)
	lo, hi, err := lay.Window(off, n)
	if err != nil {
		return nil, err
	}
	segs, err := c.fetchSegments(ctx, meta, lo, hi)
	if err != nil {
		return nil, err
	}
	win := make([]byte, int64(meta.K)*(hi-lo))
	if err := c.codec.DecodeInto(win, segs); err != nil {
		return nil, fmt.Errorf("decode range of %s: %w", meta.ID, err)
	}
	dst := make([]byte, n)
	if err := lay.Gather(dst, win, lo, off); err != nil {
		return nil, fmt.Errorf("gather range of %s: %w", meta.ID, err)
	}
	c.obs.rangeStripes.Add(lay.WindowStripes(lo, hi))
	c.obs.rangeBytes.Add(n)
	return dst, nil
}

// rangeReplica serves a range of a replicated block: every copy holds
// the whole block, so the bytes come straight from the first healthy
// replica that answers.
func (c *Client) rangeReplica(ctx context.Context, meta *model.BlockMeta, off, n int64) ([]byte, error) {
	var lastErr error
	for chunk := 0; chunk < len(meta.Sites); chunk++ {
		site := meta.Sites[chunk]
		api := c.sites[site]
		if site == model.NoSite || api == nil || !c.available(site) {
			continue
		}
		data, err := c.readSegment(ctx, api, model.ChunkRef{Block: meta.ID, Chunk: chunk}, off, n)
		if err != nil {
			c.obs.fetchErrors.Inc()
			if isSiteFailure(err) {
				c.health.ReportFailure(site)
			}
			lastErr = err
			continue
		}
		c.health.ReportSuccess(site)
		c.obs.chunksFetched.Inc()
		c.obs.rangeBytes.Add(n)
		return data, nil
	}
	if lastErr == nil {
		lastErr = ErrNoSites
	}
	return nil, fmt.Errorf("%w: %s: %w", ErrBlockUnavailable, meta.ID, lastErr)
}

// segResult carries one chunk-segment retrieval outcome.
type segResult struct {
	chunk int
	site  model.SiteID
	data  []byte
	err   error
}

// fetchSegments retrieves the window [lo, hi) of any k of meta's chunks
// in parallel. Data chunks are preferred (present data segments decode
// by memcpy; every parity segment costs k kernel passes), breaker-open
// sites are tried only as spares, and each failure promotes the next
// candidate until k segments arrive or the candidates run out.
func (c *Client) fetchSegments(ctx context.Context, meta *model.BlockMeta, lo, hi int64) (map[int][]byte, error) {
	need := meta.K
	var primary, spare []int
	for chunk, site := range meta.Sites {
		if site == model.NoSite || c.sites[site] == nil {
			continue
		}
		if c.available(site) {
			primary = append(primary, chunk)
		} else {
			spare = append(spare, chunk)
		}
	}
	sort.Ints(primary)
	sort.Ints(spare)
	candidates := append(primary, spare...)
	if len(candidates) < need {
		return nil, fmt.Errorf("%w: %s has %d reachable chunks, need %d", ErrBlockUnavailable, meta.ID, len(candidates), need)
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan segResult, len(candidates))
	launch := func(chunk int) {
		site := meta.Sites[chunk]
		api := c.sites[site]
		go func() {
			data, err := c.readSegment(fctx, api, model.ChunkRef{Block: meta.ID, Chunk: chunk}, lo, hi-lo)
			select {
			case results <- segResult{chunk: chunk, site: site, data: data, err: err}:
			case <-fctx.Done():
			}
		}()
	}
	next := 0
	inflight := 0
	for ; next < need; next++ {
		launch(candidates[next])
		inflight++
	}

	segs := make(map[int][]byte, need)
	var lastErr error
	for len(segs) < need && inflight > 0 {
		select {
		case res := <-results:
			inflight--
			if res.err != nil {
				c.obs.fetchErrors.Inc()
				if isSiteFailure(res.err) {
					c.health.ReportFailure(res.site)
				}
				lastErr = res.err
				if next < len(candidates) {
					launch(candidates[next])
					next++
					inflight++
				}
				continue
			}
			c.health.ReportSuccess(res.site)
			c.obs.chunksFetched.Inc()
			segs[res.chunk] = res.data
		case <-ctx.Done():
			c.obs.deadlines.Inc()
			return nil, fmt.Errorf("core: range fetch: %w", ctx.Err())
		}
	}
	if len(segs) < need {
		return nil, fmt.Errorf("%w: %s range fetch got %d of %d segments: %w", ErrBlockUnavailable, meta.ID, len(segs), need, lastErr)
	}
	return segs, nil
}

// readSegment performs one chunk-range read under the per-attempt
// deadline and retry policy, mirroring readChunk's classification of
// which failures are worth a second attempt on the same site.
func (c *Client) readSegment(ctx context.Context, api storage.SiteAPI, ref model.ChunkRef, off, n int64) ([]byte, error) {
	var data []byte
	var err error
	for attempt := 0; attempt < c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.obs.retries.Inc()
			if !c.backoff(ctx, attempt) {
				return nil, ctx.Err()
			}
		}
		cctx, cancel := c.chunkCtx(ctx)
		data, err = api.GetChunkRange(cctx, ref, off, n)
		cancel()
		if err == nil && int64(len(data)) != n {
			// A short segment means the stored chunk disagrees with the
			// metadata's layout; retrying the same site cannot help.
			return nil, fmt.Errorf("%w: %s [%d,+%d) returned %d bytes", storage.ErrShortChunk, ref, off, n, len(data))
		}
		if err == nil || !retryable(err) {
			return data, err
		}
	}
	return nil, err
}
