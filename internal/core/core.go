package core
