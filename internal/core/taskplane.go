package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ecstore/internal/health"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/repair"
	"ecstore/internal/stats"
	"ecstore/internal/storage"
	"ecstore/internal/tasks"
)

// This file wires every background activity — repair, chunk movement,
// scrubbing, drain/decommission — onto the unified scheduler in
// internal/tasks. The repair service and mover own no goroutines anymore:
// periodic sources turn their planning steps into durable task rows, and
// executors registered here run them under the scheduler's concurrency
// caps and shared byte throttle.

// Task ID builders. IDs are stable per target so a sweep firing twice
// enqueues once (tasks.Scheduler.Enqueue dedupes against live rows).
func repairSiteTaskID(s model.SiteID) string { return fmt.Sprintf("repair-site-%d", s) }
func scrubSiteTaskID(s model.SiteID) string  { return fmt.Sprintf("scrub-site-%d", s) }
func drainSiteTaskID(s model.SiteID) string  { return fmt.Sprintf("drain-site-%d", s) }
func repairChunkTaskID(ref model.ChunkRef) string {
	return fmt.Sprintf("repair-chunk-%s.%d", ref.Block, ref.Chunk)
}
func moveTaskID(p model.MovePlan) string {
	return fmt.Sprintf("move-%s.%d", p.Block, p.Chunk)
}

// scrubKey is the scrubber's cursor coordinate: refs are swept in
// ascending key order and the cursor stores the last key verified, so a
// resumed sweep skips straight past completed work.
func scrubKey(ref model.ChunkRef) string {
	return fmt.Sprintf("%s#%08d", ref.Block, ref.Chunk)
}

// scrubObs is the scrubber's instrument set; every field is nil-safe.
type scrubObs struct {
	sweeps   *obs.Counter
	chunks   *obs.Counter
	corrupt  *obs.Counter
	missing  *obs.Counter
	enqueued *obs.Counter
}

func newScrubObs(reg *obs.Registry) scrubObs {
	if reg == nil {
		return scrubObs{}
	}
	return scrubObs{
		sweeps:   reg.Counter("scrub_sweeps_total", "completed site scrub sweeps"),
		chunks:   reg.Counter("scrub_chunks_total", "chunks checksum-verified by the scrubber"),
		corrupt:  reg.Counter("scrub_corrupt_detected_total", "corrupt chunks detected (and quarantined) by the scrubber"),
		missing:  reg.Counter("scrub_missing_detected_total", "placed chunks found missing from their site by the scrubber"),
		enqueued: reg.Counter("scrub_repairs_enqueued_total", "chunk repairs enqueued by the scrubber"),
	}
}

// Scrubber sweeps one site's chunks per task, verifying the at-rest
// checksum of each under the scheduler's byte throttle. Corrupt copies
// are deleted (quarantined — the surviving peers still reach k) and a
// repair-chunk task is enqueued; so are chunks the catalog places on the
// site that the site no longer holds. The sweep cursor persists after
// every chunk, so a scrub interrupted by a crash resumes where it
// stopped instead of rescanning the site.
type Scrubber struct {
	meta    metadata.Service
	sites   map[model.SiteID]storage.SiteAPI
	enqueue func(*model.TaskRecord) (bool, error)
	obs     scrubObs
}

// NewScrubber builds a scrubber that reports damage through enqueue
// (normally tasks.Scheduler.Enqueue).
func NewScrubber(meta metadata.Service, sites map[model.SiteID]storage.SiteAPI,
	enqueue func(*model.TaskRecord) (bool, error), reg *obs.Registry) *Scrubber {
	return &Scrubber{meta: meta, sites: sites, enqueue: enqueue, obs: newScrubObs(reg)}
}

// Run executes one scrub-site task.
//
//lint:ignore ctxfirst tasks.Ctx embeds the task's context.Context
func (s *Scrubber) Run(c *tasks.Ctx) error {
	site := c.Record().Site
	api := s.sites[site]
	if api == nil {
		return fmt.Errorf("core: scrub of unknown site %d", site)
	}
	refs, err := api.ListChunks(c)
	if err != nil {
		return fmt.Errorf("scrub list site %d: %w", site, err)
	}
	sort.Slice(refs, func(i, j int) bool { return scrubKey(refs[i]) < scrubKey(refs[j]) })

	held := make(map[model.ChunkRef]bool, len(refs))
	cursor := c.Record().Cursor
	for _, ref := range refs {
		held[ref] = true
		if cursor != "" && scrubKey(ref) <= cursor {
			continue // already verified before the restart
		}
		check, err := api.VerifyChunk(c, ref)
		s.obs.chunks.Inc()
		switch {
		case errors.Is(err, storage.ErrCorruptChunk):
			s.obs.corrupt.Inc()
			// Quarantine the damaged copy, then re-protect from peers.
			_ = api.DeleteChunk(c, ref)
			s.enqueueRepair(ref, site)
		case errors.Is(err, storage.ErrChunkNotFound):
			// Deleted between listing and verify; the catalog diff below
			// decides whether that is damage.
		case err != nil:
			return fmt.Errorf("scrub verify %s at site %d: %w", ref, site, err)
		default:
			if err := c.Throttle(check.Length); err != nil {
				return err
			}
		}
		if err := c.SaveCursor(scrubKey(ref)); err != nil {
			return err
		}
	}

	// Catalog diff: chunks placed on this site that the site does not
	// hold are silent losses a read would only discover under failure.
	for _, blockID := range s.meta.BlocksOnSite(site) {
		metas, err := s.meta.Lookup([]model.BlockID{blockID})
		if err != nil {
			continue // block deleted mid-sweep
		}
		for chunk, placed := range metas[blockID].Sites {
			ref := model.ChunkRef{Block: blockID, Chunk: chunk}
			if placed == site && !held[ref] {
				s.obs.missing.Inc()
				s.enqueueRepair(ref, site)
			}
		}
	}
	s.obs.sweeps.Inc()
	return nil
}

func (s *Scrubber) enqueueRepair(ref model.ChunkRef, site model.SiteID) {
	ok, err := s.enqueue(&model.TaskRecord{
		ID:       repairChunkTaskID(ref),
		Type:     model.TaskTypeRepairChunk,
		Site:     site,
		Block:    ref.Block,
		Chunk:    ref.Chunk,
		Priority: model.PriorityRepair,
	})
	if err == nil && ok {
		s.obs.enqueued.Inc()
	}
}

// Drainer empties a site for decommissioning: the drain-site task marks
// the site draining (no new chunks land on it from that point), migrates
// every chunk it holds to active sites with the mover's copy -> CAS ->
// delete protocol under the task throttle, and finally marks the site
// decommissioned. The task is re-entrant: progress is the catalog's
// placement state itself, so a resumed drain just continues with
// whatever chunks remain.
type Drainer struct {
	meta   metadata.Service
	sites  map[model.SiteID]storage.SiteAPI
	loads  *stats.LoadTracker
	health *health.Tracker
	obs    drainObs
}

type drainObs struct {
	moved   *obs.Counter
	drained *obs.Counter
}

func newDrainObs(reg *obs.Registry) drainObs {
	if reg == nil {
		return drainObs{}
	}
	return drainObs{
		moved:   reg.Counter("drain_chunks_moved_total", "chunks migrated off draining sites"),
		drained: reg.Counter("drain_sites_completed_total", "sites fully drained and decommissioned"),
	}
}

// NewDrainer builds a drainer. loads and health may be nil.
func NewDrainer(meta metadata.Service, sites map[model.SiteID]storage.SiteAPI,
	loads *stats.LoadTracker, health *health.Tracker, reg *obs.Registry) *Drainer {
	return &Drainer{meta: meta, sites: sites, loads: loads, health: health, obs: newDrainObs(reg)}
}

// Run executes one drain-site task.
func (d *Drainer) Run(c *tasks.Ctx) error {
	site := c.Record().Site
	src := d.sites[site]
	if src == nil {
		return fmt.Errorf("core: drain of unknown site %d", site)
	}
	info := d.meta.SiteInfos()[site]
	info.ID = site
	if info.State == model.SiteActive {
		info.State = model.SiteDraining
		if err := d.meta.SetSiteInfo(info); err != nil {
			return err
		}
	}

	for _, blockID := range d.meta.BlocksOnSite(site) {
		metas, err := d.meta.Lookup([]model.BlockID{blockID})
		if err != nil {
			continue // deleted mid-drain
		}
		meta := metas[blockID]
		for chunk, placed := range meta.Sites {
			if placed != site {
				continue
			}
			if err := d.moveChunk(c, meta, chunk, site); err != nil {
				return fmt.Errorf("drain site %d: %w", site, err)
			}
			meta.Version++ // moveChunk committed a CAS bump
			d.obs.moved.Inc()
		}
	}

	if rest := d.meta.BlocksOnSite(site); len(rest) != 0 {
		return fmt.Errorf("core: drain of site %d left %d blocks", site, len(rest))
	}
	info.State = model.SiteDecommissioned
	if err := d.meta.SetSiteInfo(info); err != nil {
		return err
	}
	d.obs.drained.Inc()
	return nil
}

// moveChunk migrates one chunk off the draining site: copy to the chosen
// destination, CAS the placement, delete the source copy.
func (d *Drainer) moveChunk(c *tasks.Ctx, meta *model.BlockMeta, chunk int, from model.SiteID) error {
	ref := model.ChunkRef{Block: meta.ID, Chunk: chunk}
	data, err := d.sites[from].GetChunk(c, ref)
	if err != nil {
		return fmt.Errorf("read %s: %w", ref, err)
	}
	if err := c.Throttle(int64(len(data))); err != nil {
		return err
	}
	dst, err := d.pickDestination(meta)
	if err != nil {
		return err
	}
	if err := d.sites[dst].PutChunk(c, ref, data); err != nil {
		return fmt.Errorf("write %s to site %d: %w", ref, dst, err)
	}
	if _, err := d.meta.UpdatePlacement(meta.ID, chunk, dst, meta.Version); err != nil {
		_ = d.sites[dst].DeleteChunk(c, ref)
		return fmt.Errorf("commit %s: %w", ref, err)
	}
	meta.Sites[chunk] = dst
	_ = d.sites[from].DeleteChunk(c, ref)
	return nil
}

// pickDestination chooses an active, healthy site not yet holding a chunk
// of the block, under the block's per-zone cap (best-effort) and
// preferring light load — the drain-side twin of repair's destination
// logic.
func (d *Drainer) pickDestination(meta *model.BlockMeta) (model.SiteID, error) {
	infos := d.meta.SiteInfos()
	zoneCap := model.MaxChunksPerZone(meta.R)
	perZone := make(map[string]int)
	holding := meta.SiteSet()
	for id := range holding {
		if z := infos[id].Zone; z != "" {
			perZone[z]++
		}
	}
	var candidates, overCap []model.SiteID
	for id := range d.sites {
		if holding[id] || infos[id].State != model.SiteActive {
			continue
		}
		if d.health != nil && !d.health.Available(id) {
			continue
		}
		if z := infos[id].Zone; z != "" && perZone[z] >= zoneCap {
			overCap = append(overCap, id)
			continue
		}
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		candidates = overCap
	}
	if len(candidates) == 0 {
		return model.NoSite, errors.New("core: no destination for drained chunk")
	}
	sort.Slice(candidates, func(i, j int) bool {
		if d.loads != nil {
			wi, wj := d.loads.Omega(candidates[i]), d.loads.Omega(candidates[j])
			if wi != wj {
				return wi < wj
			}
		}
		return candidates[i] < candidates[j]
	})
	return candidates[0], nil
}

// TaskPlaneOptions selects which components BuildTaskPlane wires onto a
// scheduler. Nil components are skipped.
type TaskPlaneOptions struct {
	// Repair enables repair-site/repair-chunk executors plus the
	// liveness sweep source (cadence RepairProbeInterval, default 5s).
	Repair              *repair.Service
	RepairProbeInterval time.Duration
	// Mover enables the move executor plus the planning source (cadence
	// MoverInterval, default 1s).
	Mover         *MoverRunner
	MoverInterval time.Duration
	// Scrub enables the scrub-site executor. ScrubInterval > 0
	// additionally installs the periodic sweep source enqueueing a scrub
	// of every active site (Meta supplies the site list); zero leaves
	// scrubbing on-demand only.
	Scrub         *Scrubber
	ScrubInterval time.Duration
	Meta          metadata.Service
	// Drain enables the drain-site executor.
	Drain *Drainer
	// Stats optionally runs as a source every StatsInterval (default 2s).
	Stats         func(ctx context.Context)
	StatsInterval time.Duration
}

// BuildTaskPlane registers every executor and periodic source on the
// scheduler and returns the source functions, so a synchronous driver
// (Cluster.Tick, tests) can force them regardless of cadence. Both the
// in-process Cluster and ecstore-control (which runs against RPC clients)
// wire their control planes through it.
func BuildTaskPlane(s *tasks.Scheduler, o TaskPlaneOptions) []func(ctx context.Context) {
	var sources []func(ctx context.Context)
	addSource := func(name string, every time.Duration, fn func(ctx context.Context)) {
		s.AddSource(name, every, fn)
		sources = append(sources, fn)
	}

	if o.Stats != nil {
		every := o.StatsInterval
		if every <= 0 {
			every = 2 * time.Second
		}
		addSource("stats", every, o.Stats)
	}

	if o.Repair != nil {
		rep := o.Repair
		s.Register(model.TaskTypeRepairSite, func(tc *tasks.Ctx) error {
			_, err := rep.RepairSite(tc, tc.Record().Site)
			return err
		})
		s.Register(model.TaskTypeRepairChunk, func(tc *tasks.Ctx) error {
			rec := tc.Record()
			ref := model.ChunkRef{Block: rec.Block, Chunk: rec.Chunk}
			return rep.RepairChunk(tc, ref, rec.Site)
		})
		probeEvery := o.RepairProbeInterval
		if probeEvery <= 0 {
			probeEvery = 5 * time.Second
		}
		addSource("repair-sweep", probeEvery, func(ctx context.Context) {
			for _, id := range rep.DueForRepair(ctx) {
				_, _ = s.Enqueue(&model.TaskRecord{
					ID:       repairSiteTaskID(id),
					Type:     model.TaskTypeRepairSite,
					Site:     id,
					Priority: model.PriorityRepair,
				})
			}
		})
	}

	if o.Mover != nil {
		mover := o.Mover
		s.Register(model.TaskTypeMove, func(tc *tasks.Ctx) error {
			rec := tc.Record()
			plan := model.MovePlan{
				Block: rec.Block,
				Chunk: rec.Chunk,
				From:  rec.Site,
				To:    rec.Dest,
			}
			err := mover.ExecutePlanned(tc, plan)
			if errors.Is(err, ErrStalePlan) {
				return nil // the chunk moved first; nothing left to do
			}
			return err
		})
		moveEvery := o.MoverInterval
		if moveEvery <= 0 {
			moveEvery = time.Second
		}
		addSource("move-plan", moveEvery, func(ctx context.Context) {
			plan, ok := mover.SelectPlan(ctx)
			if !ok {
				return
			}
			_, _ = s.Enqueue(&model.TaskRecord{
				ID:       moveTaskID(plan),
				Type:     model.TaskTypeMove,
				Site:     plan.From,
				Dest:     plan.To,
				Block:    plan.Block,
				Chunk:    plan.Chunk,
				Priority: model.PriorityMove,
			})
		})
	}

	if o.Scrub != nil {
		s.Register(model.TaskTypeScrubSite, o.Scrub.Run)
		if o.ScrubInterval > 0 && o.Meta != nil {
			meta := o.Meta
			addSource("scrub-sweep", o.ScrubInterval, func(ctx context.Context) {
				infos := meta.SiteInfos()
				for _, id := range meta.Sites() {
					if infos[id].State != model.SiteActive {
						continue
					}
					_, _ = s.Enqueue(&model.TaskRecord{
						ID:       scrubSiteTaskID(id),
						Type:     model.TaskTypeScrubSite,
						Site:     id,
						Priority: model.PriorityScrub,
					})
				}
			})
		}
	}

	if o.Drain != nil {
		s.Register(model.TaskTypeDrainSite, o.Drain.Run)
	}
	return sources
}

// ScrubSite enqueues an immediate scrub of one site (ahead of the
// periodic sweep).
func (c *Cluster) ScrubSite(id model.SiteID) error {
	if c.Scrub == nil {
		return errors.New("core: scrubbing not enabled")
	}
	_, err := c.Tasks.Enqueue(&model.TaskRecord{
		ID:       scrubSiteTaskID(id),
		Type:     model.TaskTypeScrubSite,
		Site:     id,
		Priority: model.PriorityScrub,
	})
	return err
}

// DrainSite starts draining a site: no new chunks land on it, and a
// drain task migrates its chunks away and finally decommissions it.
func (c *Cluster) DrainSite(id model.SiteID) error {
	if _, ok := c.Services[id]; !ok {
		return fmt.Errorf("core: unknown site %d", id)
	}
	info := c.Catalog.SiteInfos()[id]
	info.ID = id
	if info.State == model.SiteActive {
		info.State = model.SiteDraining
		if err := c.Catalog.SetSiteInfo(info); err != nil {
			return err
		}
	}
	_, err := c.Tasks.Enqueue(&model.TaskRecord{
		ID:       drainSiteTaskID(id),
		Type:     model.TaskTypeDrainSite,
		Site:     id,
		Priority: model.PriorityDrain,
	})
	return err
}

// SetZones labels every site with a zone, round-robin over `zones` names
// ("z0".."zN-1"), enabling zone-aware placement on writes, repair and
// drain destinations.
func (c *Cluster) SetZones(zones int) error {
	if zones <= 0 {
		return nil
	}
	ids := c.Catalog.Sites()
	for i, id := range ids {
		info := c.Catalog.SiteInfos()[id]
		info.ID = id
		info.Zone = fmt.Sprintf("z%d", i%zones)
		if err := c.Catalog.SetSiteInfo(info); err != nil {
			return err
		}
	}
	return nil
}

// ZoneSites returns the sites labeled with the given zone, sorted.
func (c *Cluster) ZoneSites(zone string) []model.SiteID {
	var out []model.SiteID
	infos := c.Catalog.SiteInfos()
	for _, id := range c.Catalog.Sites() {
		if infos[id].Zone == zone {
			out = append(out, id)
		}
	}
	return out
}

// FailZone fails every site in a zone at once (whole-zone outage).
func (c *Cluster) FailZone(zone string) {
	for _, id := range c.ZoneSites(zone) {
		c.FailSite(id)
	}
}

// RecoverZone heals every site in a zone.
func (c *Cluster) RecoverZone(zone string) {
	for _, id := range c.ZoneSites(zone) {
		c.RecoverSite(id)
	}
}
