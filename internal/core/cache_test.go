package core

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// cacheTestConfig returns a client config with the decoded-block cache
// enabled at a budget that comfortably holds every test block.
func cacheTestConfig() Config {
	return Config{CacheBytes: 1 << 20, Seed: 11}
}

// spareSites returns cluster sites that hold none of meta's chunks,
// sorted ascending (NewCluster numbers sites 1..NumSites).
func spareSites(numSites int, meta *model.BlockMeta) []model.SiteID {
	used := make(map[model.SiteID]bool, len(meta.Sites))
	for _, s := range meta.Sites {
		used[s] = true
	}
	var out []model.SiteID
	for i := 1; i <= numSites; i++ {
		if s := model.SiteID(i); !used[s] {
			out = append(out, s)
		}
	}
	return out
}

// TestCacheHitSkipsSiteAccess proves the headline behaviour: the second
// read of a block is served from the decoded-block cache without
// touching any storage site.
func TestCacheHitSkipsSiteAccess(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{Client: cacheTestConfig(), Metrics: reg})
	data := blockData(2000, 5)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}

	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("first read mismatch")
	}
	afterFirst := reg.Snapshot().CounterValue("client_chunks_fetched_total", "")
	if afterFirst == 0 {
		t.Fatal("first read fetched no chunks")
	}

	got, err = c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cached read mismatch")
	}
	if after := reg.Snapshot().CounterValue("client_chunks_fetched_total", ""); after != afterFirst {
		t.Fatalf("cached read fetched chunks: %d -> %d", afterFirst, after)
	}

	st := c.Client.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 insert", st)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", st.HitRatio())
	}

	// The caller owns the returned slice: scribbling on it must not
	// corrupt the cached copy.
	got[0] ^= 0xff
	again, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("cache entry corrupted through a returned slice")
	}
}

// TestCacheStripsHitsFromPlanning checks the partial-hit path of a
// multi-block read: cached blocks are removed from the plan request and
// only the misses are planned and fetched.
func TestCacheStripsHitsFromPlanning(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{Client: cacheTestConfig(), Metrics: reg})
	dataA := blockData(1200, 3)
	dataB := blockData(1500, 9)
	if err := c.Client.Put("a", dataA); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Put("b", dataB); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Get("a"); err != nil { // populate "a"
		t.Fatal(err)
	}
	afterWarm := reg.Snapshot().CounterValue("client_chunks_fetched_total", "")

	got, _, err := c.Client.GetMulti([]model.BlockID{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got["a"], dataA) || !bytes.Equal(got["b"], dataB) {
		t.Fatal("multi-read payload mismatch")
	}
	// Only b's k chunks were fetched; a came from the cache.
	k := int64(2)
	if after := reg.Snapshot().CounterValue("client_chunks_fetched_total", ""); after != afterWarm+k {
		t.Fatalf("mixed read fetched %d extra chunks, want %d", after-afterWarm, k)
	}
	st := c.Client.CacheStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

// TestMovedBlockInvalidatesCacheEntry moves a chunk after the block was
// cached and checks the next read observes the version bump: the stale
// entry is invalidated, the block is re-fetched from its new placement,
// and the refreshed entry hits again.
func TestMovedBlockInvalidatesCacheEntry(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{EnableMover: true, Client: cacheTestConfig()})
	ctx := context.Background()
	data := blockData(2048, 7)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Get("blk"); err != nil { // cache at version 0
		t.Fatal(err)
	}

	meta, ok := c.Catalog.BlockMeta("blk")
	if !ok {
		t.Fatal("block vanished")
	}
	spares := spareSites(8, meta)
	if len(spares) == 0 {
		t.Fatal("no spare site to move to")
	}
	plan := model.MovePlan{Block: "blk", Chunk: 0, From: meta.Sites[0], To: spares[0]}
	if err := c.Mover.Execute(ctx, plan); err != nil {
		t.Fatalf("move: %v", err)
	}

	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-move read mismatch")
	}
	st := c.Client.CacheStats()
	if st.Invalidations < 1 {
		t.Fatalf("stats = %+v, want >= 1 invalidation after the move", st)
	}
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses before re-hit", st)
	}

	// The re-fetched entry is keyed by the new version and hits.
	if _, err := c.Client.Get("blk"); err != nil {
		t.Fatal(err)
	}
	if st := c.Client.CacheStats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit at the new version", st)
	}
}

// TestOverwrittenBlockNeverServedStale deletes and re-creates a block id
// with different contents and checks the cache never resurrects the
// previous incarnation's bytes. This exercises both the client-side
// Invalidate on Put/Delete and the catalog's monotonic versions across a
// block's lifetimes.
func TestOverwrittenBlockNeverServedStale(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Client: cacheTestConfig()})
	oldData := blockData(900, 2)
	newData := blockData(900, 8)

	if err := c.Client.Put("blk", oldData); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Client.Get("blk"); err != nil || !bytes.Equal(got, oldData) {
		t.Fatalf("warm read: err=%v", err)
	}
	oldMeta, _ := c.Catalog.BlockMeta("blk")

	if err := c.Client.Delete("blk"); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Put("blk", newData); err != nil {
		t.Fatal(err)
	}
	newMeta, ok := c.Catalog.BlockMeta("blk")
	if !ok {
		t.Fatal("re-created block missing")
	}
	if newMeta.Version <= oldMeta.Version {
		t.Fatalf("re-created version %d not past retired version %d", newMeta.Version, oldMeta.Version)
	}

	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, oldData) {
		t.Fatal("served the deleted incarnation's bytes")
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("re-created read mismatch")
	}
}

// TestGetMultiRacesWithMoverNoStaleBytes runs readers concurrently with
// the chunk mover (both MoveOnce and a deterministic chunk bounce that
// guarantees version churn) and checks every successful read returns the
// block's exact bytes. Run under -race this also proves the cache's
// internal synchronization.
func TestGetMultiRacesWithMoverNoStaleBytes(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{EnableMover: true, Client: cacheTestConfig()})
	ctx := context.Background()
	data := blockData(2048, 5)
	if err := c.Client.Put("hot", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("hot")
	spares := spareSites(8, meta)
	if len(spares) < 2 {
		t.Fatal("need two spare sites")
	}

	stop := make(chan struct{})
	var moves atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// The paper's mover proper (may or may not find a plan)...
			_, _ = c.Mover.MoveOnce(ctx)
			// ...plus a guaranteed move: bounce chunk 0 between spares.
			m, ok := c.Catalog.BlockMeta("hot")
			if !ok {
				return
			}
			to := spares[i%2]
			if m.Sites[0] == to {
				continue
			}
			plan := model.MovePlan{Block: "hot", Chunk: 0, From: m.Sites[0], To: to}
			if err := c.Mover.Execute(ctx, plan); err == nil {
				moves.Add(1)
			}
		}
	}()

	const readers = 4
	var ok atomic.Int64
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 150; i++ {
				got, _, err := c.Client.GetMulti([]model.BlockID{"hot"})
				if err != nil {
					// A read can land in the copy->CAS->delete window
					// and lose its planned chunk; that fails the read,
					// it must never corrupt it.
					continue
				}
				if !bytes.Equal(got["hot"], data) {
					t.Error("stale or torn bytes returned during movement")
					return
				}
				ok.Add(1)
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no read succeeded during movement")
	}
	if moves.Load() == 0 {
		t.Fatal("no move executed; the race never happened")
	}
}

// TestConcurrentOverwritesNeverServeStaleBytes races readers against
// delete+put cycles that change the block's contents each generation.
// Generation payloads are uniform, so a torn result is detectable, and
// versions are monotonic across incarnations, so a reader that started
// after generation g committed must see generation >= g.
func TestConcurrentOverwritesNeverServeStaleBytes(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Client: cacheTestConfig()})
	payload := func(gen byte) []byte {
		d := make([]byte, 1024)
		for i := range d {
			d[i] = gen
		}
		return d
	}
	var committed atomic.Int64 // highest generation whose Put returned
	if err := c.Client.Put("blk", payload(0)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := byte(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Client.Delete("blk"); err != nil {
				continue
			}
			if err := c.Client.Put("blk", payload(gen)); err != nil {
				t.Errorf("re-put gen %d: %v", gen, err)
				return
			}
			committed.Store(int64(gen))
		}
	}()

	var readerWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 120; i++ {
				low := committed.Load()
				got, err := c.Client.Get("blk")
				if err != nil {
					continue // read raced the delete+put gap
				}
				if len(got) != 1024 {
					t.Errorf("read %d bytes, want 1024", len(got))
					return
				}
				gen := got[0]
				for _, b := range got {
					if b != gen {
						t.Error("torn read: mixed generations in one payload")
						return
					}
				}
				if int64(gen) < low {
					t.Errorf("stale read: got generation %d after %d committed", gen, low)
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	wg.Wait()
}

// TestStaleIfErrorServesCachedBytesWhenSitesDown drives the degraded
// read path: a cached entry is invalidated by a version bump, every site
// holding the block fails, and the read is served from the bounded-stale
// entry instead of failing.
func TestStaleIfErrorServesCachedBytesWhenSitesDown(t *testing.T) {
	cfg := cacheTestConfig()
	cfg.CacheStaleTTL = time.Minute
	c := newTestCluster(t, ClusterConfig{Client: cfg})
	data := blockData(1600, 4)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Get("blk"); err != nil { // cache at version 0
		t.Fatal(err)
	}

	// Bump the version without moving bytes: point chunk 0 at a spare
	// site. The cached entry is now outdated by key.
	meta, _ := c.Catalog.BlockMeta("blk")
	spares := spareSites(8, meta)
	if _, err := c.Catalog.UpdatePlacement("blk", 0, spares[0], meta.Version); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		c.FailSite(model.SiteID(i))
	}

	got, err := c.Client.Get("blk")
	if err != nil {
		t.Fatalf("degraded read failed instead of serving stale: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stale serve returned wrong bytes")
	}
	st := c.Client.CacheStats()
	if st.StaleServes != 1 {
		t.Fatalf("stats = %+v, want exactly 1 stale serve", st)
	}
}

// TestStaleReadRefusedWithoutTTL is the negative of the above: with
// CacheStaleTTL unset (the default), the same degraded read fails
// rather than serving invalidated bytes.
func TestStaleReadRefusedWithoutTTL(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Client: cacheTestConfig()})
	data := blockData(1600, 4)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Get("blk"); err != nil {
		t.Fatal(err)
	}
	meta, _ := c.Catalog.BlockMeta("blk")
	spares := spareSites(8, meta)
	if _, err := c.Catalog.UpdatePlacement("blk", 0, spares[0], meta.Version); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		c.FailSite(model.SiteID(i))
	}
	if _, err := c.Client.Get("blk"); err == nil {
		t.Fatal("degraded read succeeded without a stale TTL")
	}
}

// TestConcurrentSameBlockReadsCoalesce checks the singleflight path:
// concurrent cold reads of one block share a single fetch+decode.
func TestConcurrentSameBlockReadsCoalesce(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, ClusterConfig{
		Client:         cacheTestConfig(),
		Metrics:        reg,
		ReadDelayFixed: 20 * time.Millisecond,
	})
	data := blockData(2000, 6)
	if err := c.Client.Put("blk", data); err != nil {
		t.Fatal(err)
	}

	const readers = 6
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, err := c.Client.Get("blk")
			if err != nil {
				t.Errorf("concurrent read: %v", err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Error("concurrent read mismatch")
			}
		}()
	}
	close(start)
	wg.Wait()

	snap := reg.Snapshot()
	// One leader round fetches k=2 chunks; tolerate one straggler that
	// missed the in-flight window, but not six independent fetches.
	if n := snap.CounterValue("client_chunks_fetched_total", ""); n > 4 {
		t.Fatalf("chunks fetched = %d, want <= 4 (coalesced)", n)
	}
	if n := snap.CounterValue("cache_singleflight_dedup_total", ""); n < 1 {
		t.Fatal("no follower coalesced onto the leader flight")
	}
}

// TestClientCloseStopsCacheMaintenance repeatedly builds and closes
// cache-enabled clusters and checks no maintenance goroutine outlives
// its client.
func TestClientCloseStopsCacheMaintenance(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		cfg := cacheTestConfig()
		cfg.CacheStaleTTL = time.Millisecond
		cfg.InlineExact = true
		c, err := NewCluster(ClusterConfig{NumSites: 4, Client: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Put("blk", blockData(512, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Client.Get("blk"); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
