package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"ecstore/internal/metadata"
	"ecstore/internal/model"
)

// ErrAlreadyStaged reports a Put of a block id already staged for
// packing (ids are single-assignment until the staged block is deleted
// or its container sealed, mirroring the catalog's ErrExists).
var ErrAlreadyStaged = errors.New("core: block already staged for packing")

// packer co-locates small blocks into shared pack containers. Puts
// below cfg.PackThreshold append to a client-side staging buffer; when
// the buffer reaches cfg.PackCapacity (or FlushPacked is called) it is
// sealed: written through the streaming pipeline as one striped
// container block whose metadata carries the member table, after which
// the catalog resolves each member id to a sub-range of the container
// and reads go through GetRange. Until then staged blocks are served
// read-through from the buffer.
type packer struct {
	c *Client

	mu sync.Mutex
	// seq numbers candidate container ids; collisions with previously
	// registered containers (e.g. after a restart against a persisted
	// catalog) skip forward until Register accepts one.
	seq int64
	// buf and members are the open staging batch. Deleting a staged
	// block only removes its member entry; its bytes stay as dead space
	// until the batch seals (members are the source of truth).
	buf     []byte
	members []model.PackedMember
	// sealing holds batches whose container write is in flight, still
	// readable until their registration commits.
	sealing []*sealBatch
}

// sealBatch is one detached staging batch being written out.
type sealBatch struct {
	buf     []byte
	members []model.PackedMember
}

func newPacker(c *Client) *packer { return &packer{c: c} }

// put stages one small block. If staging reaches capacity, the full
// batch is detached and sealed synchronously: the Put that trips the
// threshold pays the container write, every other Put is a memcpy.
func (p *packer) put(ctx context.Context, id model.BlockID, data []byte) error {
	p.mu.Lock()
	for _, m := range p.members {
		if m.ID == id {
			p.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrAlreadyStaged, id)
		}
	}
	p.members = append(p.members, model.PackedMember{ID: id, Off: int64(len(p.buf)), Len: int64(len(data))})
	p.buf = append(p.buf, data...)
	p.c.obs.packStaged.Inc()
	p.c.obs.packBytes.Add(int64(len(data)))
	var batch *sealBatch
	if int64(len(p.buf)) >= p.c.cfg.PackCapacity {
		batch = p.detachLocked()
	}
	p.mu.Unlock()
	if batch == nil {
		return nil
	}
	return p.seal(ctx, batch)
}

// detachLocked moves the open batch into the sealing list and resets
// staging. Caller holds p.mu.
func (p *packer) detachLocked() *sealBatch {
	if len(p.members) == 0 {
		return nil
	}
	batch := &sealBatch{buf: p.buf, members: p.members}
	p.buf = nil
	p.members = nil
	p.sealing = append(p.sealing, batch)
	return batch
}

// seal writes one detached batch as a pack container. On failure the
// batch is merged back into staging, so its blocks stay readable and a
// later Put or FlushPacked retries the seal.
func (p *packer) seal(ctx context.Context, batch *sealBatch) error {
	err := p.writeContainer(ctx, batch)
	p.mu.Lock()
	for i, b := range p.sealing {
		if b == batch {
			p.sealing = append(p.sealing[:i], p.sealing[i+1:]...)
			break
		}
	}
	if err != nil {
		p.restageLocked(batch)
	}
	p.mu.Unlock()
	if err != nil {
		return fmt.Errorf("core: seal pack container: %w", err)
	}
	p.c.obs.packSealed.Inc()
	p.c.obs.packBlocks.Add(int64(len(batch.members)))
	return nil
}

// restageLocked prepends a failed batch back into staging, rebasing the
// current staging members after it. Caller holds p.mu.
func (p *packer) restageLocked(batch *sealBatch) {
	shift := int64(len(batch.buf))
	for i := range p.members {
		p.members[i].Off += shift
	}
	p.members = append(batch.members, p.members...)
	p.buf = append(batch.buf, p.buf...)
}

// writeContainer streams one batch out under a fresh container id,
// skipping ids some earlier incarnation already registered.
func (p *packer) writeContainer(ctx context.Context, batch *sealBatch) error {
	for {
		p.mu.Lock()
		p.seq++
		id := model.BlockID(fmt.Sprintf("pack-%08d", p.seq))
		p.mu.Unlock()
		_, err := p.c.streamPut(ctx, id, bytes.NewReader(batch.buf), batch.members)
		if errors.Is(err, metadata.ErrExists) {
			continue
		}
		return err
	}
}

// get serves a staged or mid-seal block's bytes (read-through). The
// returned slice is a private copy.
func (p *packer) get(id model.BlockID) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if data, ok := sliceMember(p.buf, p.members, id); ok {
		return data, true
	}
	for _, b := range p.sealing {
		if data, ok := sliceMember(b.buf, b.members, id); ok {
			return data, true
		}
	}
	return nil, false
}

func sliceMember(buf []byte, members []model.PackedMember, id model.BlockID) ([]byte, bool) {
	for _, m := range members {
		if m.ID == id {
			out := make([]byte, m.Len)
			copy(out, buf[m.Off:m.Off+m.Len])
			return out, true
		}
	}
	return nil, false
}

// unstage removes a block still in staging; false if the id is not
// staged (it may be sealed, mid-seal, or never packed — the caller
// falls through to the catalog then).
func (p *packer) unstage(id model.BlockID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, m := range p.members {
		if m.ID == id {
			p.members = append(p.members[:i], p.members[i+1:]...)
			return true
		}
	}
	return false
}

// FlushPacked seals the packer's open staging batch, making every
// staged small block durable and catalog-resolvable. A no-op when
// nothing is staged or packing is disabled.
func (c *Client) FlushPacked(ctx context.Context) error {
	if c.packer == nil {
		return nil
	}
	c.packer.mu.Lock()
	batch := c.packer.detachLocked()
	c.packer.mu.Unlock()
	if batch == nil {
		return nil
	}
	return c.packer.seal(ctx, batch)
}
