package sim

import (
	"math"
	"testing"

	"ecstore/internal/workload"
)

func runOpenLoop(t *testing.T, seed int64, rate float64, gp GatewayParams, blocks int, warm, measure float64) *OpenLoopResult {
	t.Helper()
	c, err := New(tinyParams(seed), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Populate(blocks, func(int) int64 { return 100 * 1024 }); err != nil {
		t.Fatal(err)
	}
	wl := workload.NewYCSBE(blocks, 4, 1.0)
	res := c.RunOpenLoop(wl, workload.Poisson{Rate: rate}, gp, warm, measure)
	res.OfferedRate = rate
	return res
}

func TestOpenLoopLightLoad(t *testing.T) {
	// Far below capacity: nothing sheds and carried ≈ offered.
	res := runOpenLoop(t, 1, 50, GatewayParams{}, 300, 1, 4)
	if res.Arrivals == 0 || res.Completed == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.Shed != 0 {
		t.Fatalf("light load shed %d requests", res.Shed)
	}
	if res.Throughput < 0.8*res.OfferedRate {
		t.Fatalf("carried %v for offered %v", res.Throughput, res.OfferedRate)
	}
	if res.P99Sojourn <= 0 {
		t.Fatalf("p99 sojourn = %v", res.P99Sojourn)
	}
}

func TestOpenLoopOverloadShedsWithBoundedTail(t *testing.T) {
	// A tiny gateway (2 in service, 4 queued) against a huge offered
	// rate: the queue bound must cap sojourn and convert the excess to
	// shed rather than collapse.
	gp := GatewayParams{Concurrency: 2, QueueDepth: 4}
	res := runOpenLoop(t, 2, 2000, gp, 300, 1, 3)
	if res.Shed == 0 {
		t.Fatalf("overload shed nothing: %+v", res)
	}
	if res.ShedFraction() < 0.2 {
		t.Fatalf("shed fraction %v too low for 2000/s offered", res.ShedFraction())
	}
	if res.MaxQueueDepth > gp.QueueDepth {
		t.Fatalf("queue grew to %d past bound %d", res.MaxQueueDepth, gp.QueueDepth)
	}
	// Bounded sojourn: at most (queue ahead + self) service times at
	// millisecond scale — order 100 ms, never the unbounded queueing an
	// open loop without admission control would produce. 1 s is a
	// generous ceiling that still proves boundedness.
	if res.P99Sojourn > 1.0 {
		t.Fatalf("p99 sojourn %v not bounded by the finite queue", res.P99Sojourn)
	}
	if res.Completed == 0 {
		t.Fatal("overloaded gateway should still carry admitted load")
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	gp := GatewayParams{Concurrency: 8, QueueDepth: 8}
	a := runOpenLoop(t, 7, 400, gp, 300, 1, 2)
	b := runOpenLoop(t, 7, 400, gp, 300, 1, 2)
	if a.Arrivals != b.Arrivals || a.Admitted != b.Admitted || a.Shed != b.Shed ||
		a.Completed != b.Completed || a.Failed != b.Failed || a.MaxQueueDepth != b.MaxQueueDepth {
		t.Fatalf("counters differ:\n%+v\n%+v", a, b)
	}
	if math.Abs(a.P99Sojourn-b.P99Sojourn) > 1e-12 || math.Abs(a.MeanSojourn-b.MeanSojourn) > 1e-12 {
		t.Fatalf("sojourns differ: %v/%v vs %v/%v", a.MeanSojourn, a.P99Sojourn, b.MeanSojourn, b.P99Sojourn)
	}
}

func TestOpenLoopSeedChangesOutcome(t *testing.T) {
	gp := GatewayParams{Concurrency: 8, QueueDepth: 8}
	a := runOpenLoop(t, 7, 400, gp, 300, 1, 2)
	b := runOpenLoop(t, 8, 400, gp, 300, 1, 2)
	if a.Arrivals == b.Arrivals && a.MeanSojourn == b.MeanSojourn {
		t.Fatal("different seeds produced identical open-loop runs")
	}
}

func TestOpenLoopConstantArrival(t *testing.T) {
	c, err := New(tinyParams(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Populate(200, func(int) int64 { return 64 * 1024 }); err != nil {
		t.Fatal(err)
	}
	wl := workload.NewYCSBE(200, 4, 1.0)
	res := c.RunOpenLoop(wl, workload.Constant{Rate: 100}, GatewayParams{}, 1, 2)
	// A constant schedule offers exactly rate*measure arrivals.
	if res.Arrivals < 190 || res.Arrivals > 210 {
		t.Fatalf("constant 100/s over 2s gave %d arrivals", res.Arrivals)
	}
	if res.Shed != 0 || res.Completed == 0 {
		t.Fatalf("unexpected outcome: %+v", res)
	}
}
