package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(2, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(3, func() { order = append(order, 3) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10 (run boundary)", e.Now())
	}
}

func TestEngineEqualTimesRunInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of order: %v", order)
		}
	}
}

func TestEngineRunUntilStopsEarly(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(5, func() { ran = true })
	e.Run(4)
	if ran {
		t.Fatal("event past `until` executed")
	}
	if e.Now() != 4 {
		t.Fatalf("Now = %v, want 4", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run(6)
	if !ran {
		t.Fatal("event not executed on resumed run")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	var recur func()
	recur = func() {
		hits++
		if hits < 5 {
			e.After(1, recur)
		}
	}
	e.At(0, recur)
	e.Run(100)
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	// With the queue drained, the clock advances to `until`.
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.At(5, func() {
		e.At(1, func() { at = e.Now() }) // in the past: runs "now"
	})
	e.Run(10)
	if at != 5 {
		t.Fatalf("past-scheduled event ran at %v, want 5", at)
	}
}

func TestEngineAdvancesToUntilWhenEmpty(t *testing.T) {
	e := NewEngine()
	e.Run(7)
	if e.Now() != 7 {
		t.Fatalf("Now = %v, want 7", e.Now())
	}
}

func TestSiteQueueing(t *testing.T) {
	s := &site{overhead: 1, diskRate: 1, servers: make([]float64, 1)}
	// Two back-to-back unit reads: second waits for the first.
	d1 := s.serviceRead(0, 0) // svc = 1
	d2 := s.serviceRead(0, 0)
	if d1 != 1 || d2 != 2 {
		t.Fatalf("completions = %v, %v; want 1, 2", d1, d2)
	}
	if got := s.queueDelay(0); got != 2 {
		t.Fatalf("queueDelay = %v, want 2", got)
	}
	if got := s.queueDelay(5); got != 0 {
		t.Fatalf("queueDelay after drain = %v, want 0", got)
	}
}

func TestSiteMultiServerParallelism(t *testing.T) {
	s := &site{overhead: 1, diskRate: 1, servers: make([]float64, 2)}
	d1 := s.serviceRead(0, 0)
	d2 := s.serviceRead(0, 0) // second server takes it in parallel
	d3 := s.serviceRead(0, 0) // queues behind the earlier of the two
	if d1 != 1 || d2 != 1 || d3 != 2 {
		t.Fatalf("completions = %v, %v, %v; want 1, 1, 2", d1, d2, d3)
	}
}

func TestSiteServiceBytes(t *testing.T) {
	s := &site{overhead: 0.5, diskRate: 100, servers: make([]float64, 1)}
	done := s.serviceRead(0, 50) // svc = 0.5 + 0.5 = 1
	if done != 1 {
		t.Fatalf("done = %v, want 1", done)
	}
	if s.totalBytes != 50 || s.totalRequests != 1 {
		t.Fatalf("accounting = (%v, %d)", s.totalBytes, s.totalRequests)
	}
}

func TestSiteDrainWindow(t *testing.T) {
	s := &site{overhead: 1, diskRate: 1e6, servers: make([]float64, 2)}
	_ = s.serviceRead(0, 1e6) // svc = 2
	cpu, io := s.drainWindow(4)
	// busy 2s over 4s window with 2 servers = 25% utilization.
	if cpu != 0.25 {
		t.Fatalf("cpu = %v, want 0.25", cpu)
	}
	if io != 250000 {
		t.Fatalf("io = %v, want 250000", io)
	}
	// Window reset.
	cpu, io = s.drainWindow(5)
	if cpu != 0 || io != 0 {
		t.Fatalf("window not reset: (%v, %v)", cpu, io)
	}
}

func TestSiteSlowFactor(t *testing.T) {
	s := &site{overhead: 1, diskRate: 1, servers: make([]float64, 1), slowFactor: 3}
	if done := s.serviceRead(0, 0); done != 3 {
		t.Fatalf("degraded service done = %v, want 3", done)
	}
}
