package sim

import (
	"fmt"
	"sort"
	"strings"

	"ecstore/internal/cache"
	"ecstore/internal/model"
	"ecstore/internal/placement"
)

// Result summarizes one simulated experiment run, carrying every quantity
// the paper's tables and figures report.
type Result struct {
	// Config is the paper's configuration label (R, EC, EC+C, ...).
	Config string

	// Requests is the number of measured requests.
	Requests int
	// Mean is the average per-phase breakdown (seconds).
	Mean model.Breakdown
	// Metrics retains the full latency sample for percentiles and CDFs.
	Metrics *Metrics

	// SiteReadRate maps each site to its measured read rate in bytes/s
	// (Figure 4d).
	SiteReadRate map[model.SiteID]float64
	// Lambda is the I/O load imbalance factor of Table II:
	// (Lmax - Lavg)/Lavg * 100 over per-site read I/O.
	Lambda float64

	// VisitsPerRequest is the average number of site visits per request.
	VisitsPerRequest float64
	// Throughput is measured requests per simulated second.
	Throughput float64
	// Moves counts executed chunk movements.
	Moves int
	// ScrubBytes is the total scrub read traffic injected across sites
	// (zero when Options.ScrubBytesPerSec is zero).
	ScrubBytes float64
	// Planner carries plan-cache statistics.
	Planner placement.PlannerStats
	// StorageOverhead is the scheme's storage expansion factor.
	StorageOverhead float64

	// CacheHits/CacheMisses count decoded-block cache outcomes in the
	// measured window; Cache is the end-of-run cache snapshot. All zero
	// when the cache is disabled.
	CacheHits   int64
	CacheMisses int64
	Cache       cache.Stats

	// RangeRequests counts measured requests served through the
	// stripe-range path (Options.RangeFraction > 0).
	RangeRequests int64
}

// CacheHitRatio returns the measured-window hit ratio, or 0 when the
// cache is off or unused.
func (r *Result) CacheHitRatio() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// ResourceUsage reports the control-plane resource accounting used by the
// Table III reproduction.
type ResourceUsage struct {
	// StatsBytes approximates the statistics service's live memory.
	StatsBytes int
	// TrackedBlocks counts blocks with co-access statistics.
	TrackedBlocks int
	// WindowRequests is the sliding window's current occupancy.
	WindowRequests int
	// StatsReports counts load reports received.
	StatsReports int64
	// PlannerBytes approximates the chunk read optimizer's cache memory.
	PlannerBytes int
	// CachedPlans counts cached access plans.
	CachedPlans int
}

// CacheHotCoverage returns the fraction of the n hottest blocks (by
// sliding-window access count) currently resident in the decoded-block
// cache — a direct measure of how well stats-driven admission tracks
// the statistics service's hot set. Zero when the cache is disabled.
func (c *Cluster) CacheHotCoverage(n int) float64 {
	if c.blockCache == nil {
		return 0
	}
	hot := c.co.HottestBlocks(n)
	if len(hot) == 0 {
		return 0
	}
	resident := 0
	for _, id := range hot {
		if c.blockCache.Contains(id) {
			resident++
		}
	}
	return float64(resident) / float64(len(hot))
}

// ResourceUsage snapshots control-plane resource consumption.
func (c *Cluster) ResourceUsage() ResourceUsage {
	return ResourceUsage{
		StatsBytes:     c.co.MemoryFootprint(),
		TrackedBlocks:  c.co.TrackedBlocks(),
		WindowRequests: c.co.TotalRequests(),
		StatsReports:   c.statsReports,
		PlannerBytes:   c.planner.MemoryFootprint(),
		CachedPlans:    c.planner.CacheLen(),
	}
}

// result assembles the Result after a run.
func (c *Cluster) result(measure float64) *Result {
	r := &Result{
		Config:       c.opt.Name(),
		Requests:     c.metrics.Count(),
		Mean:         c.metrics.MeanBreakdown(),
		Metrics:      c.metrics,
		SiteReadRate: make(map[model.SiteID]float64, len(c.sites)),
		Moves:        c.moves,
		ScrubBytes:   c.scrubBytes,
		Planner:      c.planner.Stats(),
	}
	if c.opt.Scheme == model.SchemeReplicated {
		r.StorageOverhead = float64(c.opt.R + 1)
	} else {
		r.StorageOverhead = float64(c.opt.K+c.opt.R) / float64(c.opt.K)
	}
	if measure > 0 {
		r.Throughput = float64(r.Requests) / measure
	}
	if c.fetchTotal > 0 {
		r.VisitsPerRequest = float64(c.visitsTotal) / float64(c.fetchTotal)
	}
	if c.blockCache != nil {
		r.Cache = c.blockCache.Stats()
		r.CacheHits = r.Cache.Hits - c.cacheStatsAt.Hits
		r.CacheMisses = r.Cache.Misses - c.cacheStatsAt.Misses
	}
	r.RangeRequests = c.rangeReqs

	// Per-site measured I/O and the λ imbalance factor (Table II).
	// Iterate sites in ID order: rates feeds a float sum, and float
	// addition is order-sensitive, so map order would leak into λ.
	var rates []float64
	for _, id := range c.siteIDs {
		s := c.sites[id]
		if s == nil || s.failed {
			continue
		}
		rate := (s.totalBytes - c.siteBytesAt[id]) / measure
		r.SiteReadRate[id] = rate
		rates = append(rates, rate)
	}
	r.Lambda = imbalanceFactor(rates)
	return r
}

// imbalanceFactor computes λ = (Lmax - Lavg)/Lavg * 100 (Section VI-C2).
func imbalanceFactor(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	avg := sum / float64(len(loads))
	if avg == 0 {
		return 0
	}
	return (max - avg) / avg * 100
}

// MeanMillis returns the mean breakdown scaled to milliseconds.
func (r *Result) MeanMillis() model.Breakdown {
	bd := r.Mean
	bd.Scale(1000)
	return bd
}

// String renders a one-line summary.
func (r *Result) String() string {
	bd := r.MeanMillis()
	s := fmt.Sprintf("%-11s total=%6.2fms meta=%5.2f plan=%5.2f retrieve=%6.2f decode=%5.2f p99=%6.2fms λ=%5.1f visits=%4.1f reqs=%d",
		r.Config, bd.Total(), bd.Metadata, bd.Planning, bd.Retrieve, bd.Decode,
		r.Metrics.Percentile(99)*1000, r.Lambda, r.VisitsPerRequest, r.Requests)
	if r.CacheHits+r.CacheMisses > 0 {
		s += fmt.Sprintf(" hit=%.0f%%", 100*r.CacheHitRatio())
	}
	return s
}

// SortedSiteRates returns (site, rate) pairs in site order (Figure 4d).
func (r *Result) SortedSiteRates() []struct {
	Site model.SiteID
	Rate float64
} {
	out := make([]struct {
		Site model.SiteID
		Rate float64
	}, 0, len(r.SiteReadRate))
	ids := make([]model.SiteID, 0, len(r.SiteReadRate))
	for id := range r.SiteReadRate {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out = append(out, struct {
			Site model.SiteID
			Rate float64
		}{id, r.SiteReadRate[id]})
	}
	return out
}

// FormatBreakdownTable renders results as the paper's breakdown bars
// (Figures 1, 4b, 4e, 4g) in text form.
func FormatBreakdownTable(results []*Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s %9s\n", "config", "metadata", "planning", "retrieve", "decode", "total")
	for _, r := range results {
		bd := r.MeanMillis()
		fmt.Fprintf(&b, "%-12s %8.2f %9.2f %9.2f %9.2f %9.2f   (ms)\n",
			r.Config, bd.Metadata, bd.Planning, bd.Retrieve, bd.Decode, bd.Total())
	}
	return b.String()
}
