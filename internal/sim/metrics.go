package sim

import (
	"math"
	"sort"

	"ecstore/internal/model"
)

// Metrics accumulates per-request measurements during the measurement
// window of a simulation run.
type Metrics struct {
	measureFrom float64
	bucketWidth float64

	latencies []float64
	sum       model.Breakdown
	count     int

	buckets []bucket
}

type bucket struct {
	sum   float64
	count int
}

func newMetrics(bucketWidth float64) *Metrics {
	if bucketWidth <= 0 {
		bucketWidth = 5
	}
	return &Metrics{measureFrom: math.Inf(1), bucketWidth: bucketWidth}
}

// startMeasuring opens the measurement window at virtual time t.
func (m *Metrics) startMeasuring(t float64) { m.measureFrom = t }

// record adds one completed request.
func (m *Metrics) record(completedAt float64, bd model.Breakdown) {
	if completedAt < m.measureFrom {
		return
	}
	m.latencies = append(m.latencies, bd.Total())
	m.sum.Add(bd)
	m.count++

	idx := int((completedAt - m.measureFrom) / m.bucketWidth)
	for len(m.buckets) <= idx {
		m.buckets = append(m.buckets, bucket{})
	}
	m.buckets[idx].sum += bd.Total()
	m.buckets[idx].count++
}

// Count returns the number of measured requests.
func (m *Metrics) Count() int { return m.count }

// MeanBreakdown returns the average per-phase breakdown in seconds.
func (m *Metrics) MeanBreakdown() model.Breakdown {
	if m.count == 0 {
		return model.Breakdown{}
	}
	avg := m.sum
	avg.Scale(1 / float64(m.count))
	return avg
}

// MeanLatency returns the average response time in seconds.
func (m *Metrics) MeanLatency() float64 { return m.MeanBreakdown().Total() }

// Percentile returns the p-th latency percentile (p in [0, 100]).
func (m *Metrics) Percentile(p float64) float64 {
	if len(m.latencies) == 0 {
		return 0
	}
	sorted := append([]float64(nil), m.latencies...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TailCDF returns (percentile, latency) pairs from `from` to 100 in the
// given step, the form of Figures 4c and 4h.
func (m *Metrics) TailCDF(from, step float64) [][2]float64 {
	var out [][2]float64
	for p := from; p <= 100+1e-9; p += step {
		q := math.Min(p, 100)
		out = append(out, [2]float64{q, m.Percentile(q)})
	}
	return out
}

// Timeline returns mean latency per bucket of the measurement window, the
// form of Figure 4a. Empty buckets yield NaN.
func (m *Metrics) Timeline() []float64 {
	out := make([]float64, len(m.buckets))
	for i, b := range m.buckets {
		if b.count == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = b.sum / float64(b.count)
		}
	}
	return out
}

// BucketWidth returns the timeline bucket width in seconds.
func (m *Metrics) BucketWidth() float64 { return m.bucketWidth }
