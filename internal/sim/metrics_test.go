package sim

import (
	"math"
	"testing"

	"ecstore/internal/model"
)

func TestMetricsIgnoresPreMeasurement(t *testing.T) {
	m := newMetrics(5)
	m.record(1, model.Breakdown{Retrieve: 1}) // before measurement window
	m.startMeasuring(10)
	m.record(5, model.Breakdown{Retrieve: 1}) // still before
	m.record(11, model.Breakdown{Retrieve: 2})
	if m.Count() != 1 {
		t.Fatalf("Count = %d, want 1", m.Count())
	}
	if got := m.MeanLatency(); got != 2 {
		t.Fatalf("MeanLatency = %v, want 2", got)
	}
}

func TestMetricsMeanBreakdown(t *testing.T) {
	m := newMetrics(5)
	m.startMeasuring(0)
	m.record(1, model.Breakdown{Metadata: 1, Planning: 2, Retrieve: 3, Decode: 4})
	m.record(2, model.Breakdown{Metadata: 3, Planning: 2, Retrieve: 1, Decode: 0})
	avg := m.MeanBreakdown()
	if avg.Metadata != 2 || avg.Planning != 2 || avg.Retrieve != 2 || avg.Decode != 2 {
		t.Fatalf("mean breakdown = %+v", avg)
	}
	empty := newMetrics(5)
	if got := empty.MeanBreakdown(); got.Total() != 0 {
		t.Fatalf("empty mean = %+v", got)
	}
}

func TestMetricsPercentiles(t *testing.T) {
	m := newMetrics(5)
	m.startMeasuring(0)
	for i := 1; i <= 100; i++ {
		m.record(float64(i)*0.01, model.Breakdown{Retrieve: float64(i)})
	}
	if got := m.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := m.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := m.Percentile(50); math.Abs(got-50.5) > 1 {
		t.Fatalf("p50 = %v, want ~50.5", got)
	}
	if got := m.Percentile(99); got < 99 || got > 100 {
		t.Fatalf("p99 = %v", got)
	}
	if got := newMetrics(5).Percentile(50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestMetricsTailCDF(t *testing.T) {
	m := newMetrics(5)
	m.startMeasuring(0)
	for i := 1; i <= 10; i++ {
		m.record(0.1, model.Breakdown{Retrieve: float64(i)})
	}
	cdf := m.TailCDF(80, 5)
	if len(cdf) != 5 { // 80, 85, 90, 95, 100
		t.Fatalf("CDF has %d points", len(cdf))
	}
	if cdf[0][0] != 80 || cdf[len(cdf)-1][0] != 100 {
		t.Fatalf("CDF range [%v, %v]", cdf[0][0], cdf[len(cdf)-1][0])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i][1] < cdf[i-1][1] {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestMetricsTimeline(t *testing.T) {
	m := newMetrics(10)
	m.startMeasuring(100)
	m.record(101, model.Breakdown{Retrieve: 1})
	m.record(105, model.Breakdown{Retrieve: 3})
	m.record(115, model.Breakdown{Retrieve: 5})
	tl := m.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline has %d buckets", len(tl))
	}
	if tl[0] != 2 {
		t.Fatalf("bucket 0 = %v, want 2", tl[0])
	}
	if tl[1] != 5 {
		t.Fatalf("bucket 1 = %v, want 5", tl[1])
	}
	if m.BucketWidth() != 10 {
		t.Fatalf("bucket width = %v", m.BucketWidth())
	}
}

func TestImbalanceFactor(t *testing.T) {
	if got := imbalanceFactor(nil); got != 0 {
		t.Fatalf("empty λ = %v", got)
	}
	if got := imbalanceFactor([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("balanced λ = %v", got)
	}
	// max 10, avg 5: λ = 100.
	if got := imbalanceFactor([]float64{10, 5, 0}); math.Abs(got-100) > 1e-9 {
		t.Fatalf("λ = %v, want 100", got)
	}
	if got := imbalanceFactor([]float64{0, 0}); got != 0 {
		t.Fatalf("zero-load λ = %v", got)
	}
}
