package sim

import (
	"math/rand"

	"ecstore/internal/model"
)

// site models one storage machine as a FIFO single-server queue: chunk
// reads are serviced in arrival order, each taking
// overhead + bytes/diskRate seconds, perturbed by service-time noise
// (disk seeks, page-cache misses, OS hiccups — the "sources of tail
// latency" of Li et al. [26] that the paper's straggler analysis builds
// on). Queue buildup under skew plus these hiccups is what produces
// straggling chunks.
type site struct {
	id       model.SiteID
	overhead float64 // per-request processing time (seconds)
	diskRate float64 // bytes/second

	// jitter multiplies each service time by U[1-jitter, 1+jitter];
	// with probability slowProb a visit additionally stalls for
	// U[slowMin, slowMax] seconds (a hiccup).
	jitter   float64
	slowProb float64
	slowMin  float64
	slowMax  float64
	rng      *rand.Rand

	// servers holds the per-server busy-until times: a site is a
	// c-server FIFO queue (the testbed machines serve requests from
	// multiple cores and disk queues concurrently).
	servers []float64
	failed  bool

	// slowFactor scales service times while the site is in a degraded
	// phase (compaction, co-located compute bursts, OS interference —
	// the persistent per-site slowness that makes some sites "unable to
	// keep up with the rate that other sites service retrieval
	// requests", Section III). 1 when healthy.
	slowFactor float64

	// Accounting for the statistics service (windowed) and experiment
	// metrics (cumulative).
	windowBytes   float64
	windowBusy    float64
	windowStart   float64
	totalBytes    float64
	totalRequests int64
	chunkCount    int
}

// serviceRead enqueues a read of `bytes` arriving at `arrive` and returns
// the completion time (when the last byte leaves the disk).
func (s *site) serviceRead(arrive, bytes float64) float64 {
	// Earliest-free server takes the visit (FIFO across the site).
	srv := 0
	for i := 1; i < len(s.servers); i++ {
		if s.servers[i] < s.servers[srv] {
			srv = i
		}
	}
	start := arrive
	if s.servers[srv] > start {
		start = s.servers[srv]
	}
	svc := s.overhead + bytes/s.diskRate
	if s.jitter > 0 {
		svc *= 1 + s.jitter*(2*s.rng.Float64()-1)
	}
	if s.slowProb > 0 && s.rng.Float64() < s.slowProb {
		svc += s.slowMin + (s.slowMax-s.slowMin)*s.rng.Float64()
	}
	if s.slowFactor > 1 {
		svc *= s.slowFactor
	}
	s.servers[srv] = start + svc

	s.windowBytes += bytes
	s.windowBusy += svc
	s.totalBytes += bytes
	s.totalRequests++
	return s.servers[srv]
}

// serviceWrite models a chunk write (movement/repair traffic) occupying
// the disk like a read of the same size.
func (s *site) serviceWrite(arrive, bytes float64) float64 {
	return s.serviceRead(arrive, bytes)
}

// queueDelay returns how long a probe arriving now would wait before being
// serviced: the o_j signal.
func (s *site) queueDelay(now float64) float64 {
	earliest := s.servers[0]
	for _, b := range s.servers[1:] {
		if b < earliest {
			earliest = b
		}
	}
	if earliest <= now {
		return 0
	}
	return earliest - now
}

// drainWindow returns (cpuUtil, ioBytesPerSec) over the accounting window
// and resets it. Utilization is normalized by the server count.
func (s *site) drainWindow(now float64) (float64, float64) {
	dt := now - s.windowStart
	var cpu, io float64
	if dt > 0 {
		cpu = s.windowBusy / (dt * float64(len(s.servers)))
		if cpu > 1 {
			cpu = 1
		}
		io = s.windowBytes / dt
	}
	s.windowBytes = 0
	s.windowBusy = 0
	s.windowStart = now
	return cpu, io
}
