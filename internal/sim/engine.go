// Package sim is a deterministic discrete-event simulator of an EC-Store
// deployment. It runs the *real* strategy code — the cost-model planner,
// plan cache, chunk mover and statistics trackers — against a queueing
// model of sites, disks and the network, so the paper's 20-minute
// 36-machine experiments reproduce in seconds of wall-clock time on one
// core with bit-identical results across runs.
//
// Straggling chunks, the phenomenon EC-Store attacks, emerge naturally:
// skewed block popularity concentrates requests on a few sites, their FIFO
// disk queues build up, and any read touching a hot site stalls until the
// queue drains — exactly the dynamic of Section III.
package sim

import "container/heap"

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
}

// eventHeap is a min-heap ordered by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the virtual clock and event queue.
type Engine struct {
	now  float64
	seq  uint64
	heap eventHeap
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute virtual time t. Scheduling in the past runs
// the event at the current time instead (never rewinds the clock).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the queue empties or the next event is past
// `until`. The clock always ends at `until` (or beyond it if already
// there), so consecutive Run calls partition virtual time cleanly.
func (e *Engine) Run(until float64) {
	for e.heap.Len() > 0 {
		next := e.heap[0]
		if next.at > until {
			e.now = until
			return
		}
		heap.Pop(&e.heap)
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.heap.Len() }
