package sim

import (
	"math"
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/placement"
	"ecstore/internal/workload"
)

// tinyParams returns a small, fast configuration for unit tests.
func tinyParams(seed int64) Params {
	p := DefaultParams(seed)
	p.NumSites = 8
	p.NumClients = 10
	p.TimelineBucket = 1
	return p
}

func runTiny(t *testing.T, p Params, opt Options, blocks int, warm, adapt, measure float64) *Result {
	t.Helper()
	c, err := New(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Populate(blocks, func(int) int64 { return 100 * 1024 }); err != nil {
		t.Fatal(err)
	}
	wl := workload.NewYCSBE(blocks, 10, 1.0)
	return c.Run(wl, warm, adapt, measure)
}

func TestSimCompletesRequests(t *testing.T) {
	res := runTiny(t, tinyParams(1), Options{}, 500, 1, 0, 3)
	if res.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if res.Mean.Total() <= 0 {
		t.Fatalf("mean latency = %v", res.Mean.Total())
	}
	if res.Config != "EC" {
		t.Fatalf("config = %s", res.Config)
	}
	if res.StorageOverhead != 2.0 {
		t.Fatalf("overhead = %v", res.StorageOverhead)
	}
}

func TestSimDeterministic(t *testing.T) {
	a := runTiny(t, tinyParams(7), Options{Strategy: placement.StrategyCost}, 300, 1, 0, 2)
	b := runTiny(t, tinyParams(7), Options{Strategy: placement.StrategyCost}, 300, 1, 0, 2)
	if a.Requests != b.Requests {
		t.Fatalf("request counts differ: %d vs %d", a.Requests, b.Requests)
	}
	if math.Abs(a.Mean.Total()-b.Mean.Total()) > 1e-12 {
		t.Fatalf("mean latencies differ: %v vs %v", a.Mean.Total(), b.Mean.Total())
	}
	if a.Lambda != b.Lambda {
		t.Fatalf("λ differs: %v vs %v", a.Lambda, b.Lambda)
	}
}

func TestSimSeedChangesOutcome(t *testing.T) {
	a := runTiny(t, tinyParams(1), Options{}, 300, 1, 0, 2)
	b := runTiny(t, tinyParams(2), Options{}, 300, 1, 0, 2)
	if a.Requests == b.Requests && a.Mean.Total() == b.Mean.Total() {
		t.Fatal("different seeds produced identical results")
	}
}

func TestSimReplicationConfig(t *testing.T) {
	res := runTiny(t, tinyParams(3), Options{Scheme: model.SchemeReplicated}, 300, 1, 0, 2)
	if res.Config != "R" {
		t.Fatalf("config = %s", res.Config)
	}
	if res.Mean.Decode != 0 {
		t.Fatalf("replication decode = %v, want 0", res.Mean.Decode)
	}
	if res.StorageOverhead != 3.0 {
		t.Fatalf("overhead = %v", res.StorageOverhead)
	}
}

func TestSimLateBindingIssuesMoreVisits(t *testing.T) {
	base := runTiny(t, tinyParams(4), Options{}, 300, 1, 0, 2)
	lb := runTiny(t, tinyParams(4), Options{Delta: 1}, 300, 1, 0, 2)
	if lb.VisitsPerRequest <= base.VisitsPerRequest {
		t.Fatalf("LB visits %v <= base %v", lb.VisitsPerRequest, base.VisitsPerRequest)
	}
	if lb.Config != "EC+LB" {
		t.Fatalf("config = %s", lb.Config)
	}
}

func TestSimMoverMovesChunks(t *testing.T) {
	p := tinyParams(5)
	p.MoverInterval = 0.05
	res := runTiny(t, p, Options{Strategy: placement.StrategyCost, Mover: true}, 300, 1, 2, 2)
	if res.Config != "EC+C+M" {
		t.Fatalf("config = %s", res.Config)
	}
	if res.Moves == 0 {
		t.Fatal("mover executed no moves")
	}
}

func TestSimCostStrategyUsesCache(t *testing.T) {
	res := runTiny(t, tinyParams(6), Options{Strategy: placement.StrategyCost}, 200, 1, 0, 3)
	st := res.Planner
	if st.Hits == 0 {
		t.Fatal("plan cache never hit")
	}
	if st.Exact == 0 {
		t.Fatal("background exact solver never ran")
	}
}

func TestSimFailSites(t *testing.T) {
	p := tinyParams(8)
	c, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Populate(300, func(int) int64 { return 100 * 1024 }); err != nil {
		t.Fatal(err)
	}
	failed := c.FailSites(2)
	if len(failed) != 2 {
		t.Fatalf("failed = %v", failed)
	}
	wl := workload.NewYCSBE(300, 10, 1.0)
	res := c.Run(wl, 1, 0, 3)
	if res.Requests == 0 {
		t.Fatal("no requests completed with 2 failed sites")
	}
	// Failed sites served nothing.
	for _, f := range failed {
		if rate, ok := res.SiteReadRate[f]; ok && rate > 0 {
			t.Fatalf("failed site %d read rate %v", f, rate)
		}
	}
}

func TestSimTooFewSites(t *testing.T) {
	p := tinyParams(1)
	p.NumSites = 3
	if _, err := New(p, Options{}); err == nil { // k+r = 4 > 3
		t.Fatal("3-site RS(2,2) cluster accepted")
	}
}

func TestSimPopulateSizes(t *testing.T) {
	p := tinyParams(9)
	c, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c.Populate(10, func(i int) int64 { return int64(1000 * (i + 1)) })
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("populated %d blocks", len(ids))
	}
	meta, ok := c.catalog.BlockMeta(ids[4])
	if !ok {
		t.Fatal("block missing from catalog")
	}
	if meta.Size != 5000 {
		t.Fatalf("size = %d, want 5000", meta.Size)
	}
	if meta.ChunkSize != 2500 { // k=2
		t.Fatalf("chunk size = %d, want 2500", meta.ChunkSize)
	}
}

func TestOptionsName(t *testing.T) {
	cases := []struct {
		opt  Options
		want string
	}{
		{Options{Scheme: model.SchemeReplicated}, "R"},
		{Options{}, "EC"},
		{Options{Delta: 1}, "EC+LB"},
		{Options{Strategy: placement.StrategyCost}, "EC+C"},
		{Options{Strategy: placement.StrategyCost, Mover: true}, "EC+C+M"},
		{Options{Strategy: placement.StrategyCost, Mover: true, Delta: 1}, "EC+C+M+LB"},
	}
	for _, tc := range cases {
		if got := tc.opt.withDefaults().Name(); got != tc.want {
			t.Errorf("Name() = %s, want %s", got, tc.want)
		}
	}
}

func TestResultString(t *testing.T) {
	res := runTiny(t, tinyParams(10), Options{}, 200, 1, 0, 1)
	if res.String() == "" {
		t.Fatal("empty result string")
	}
	rates := res.SortedSiteRates()
	if len(rates) == 0 {
		t.Fatal("no site rates")
	}
	for i := 1; i < len(rates); i++ {
		if rates[i].Site < rates[i-1].Site {
			t.Fatal("site rates not sorted")
		}
	}
	table := FormatBreakdownTable([]*Result{res})
	if table == "" {
		t.Fatal("empty breakdown table")
	}
}

func TestSimDegradedPhasesSlowService(t *testing.T) {
	// With heavy degradation, mean latency must exceed the undegraded
	// baseline under the same seed and workload.
	base := tinyParams(11)
	base.DegradedEvery = 0 // disabled
	degraded := tinyParams(11)
	degraded.DegradedEvery = 2 // near-constant degradation
	degraded.DegradedMin = 1
	degraded.DegradedMax = 2
	degraded.DegradedFactor = 4

	a := runTiny(t, base, Options{}, 300, 1, 0, 3)
	b := runTiny(t, degraded, Options{}, 300, 1, 0, 3)
	if b.Mean.Total() <= a.Mean.Total() {
		t.Fatalf("degraded run (%v) not slower than baseline (%v)", b.Mean.Total(), a.Mean.Total())
	}
}

func TestSimMoverW2Override(t *testing.T) {
	p := tinyParams(12)
	p.MoverW2 = 2.5
	c, err := New(p, Options{Strategy: placement.StrategyCost, Mover: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Populate(200, func(int) int64 { return 1024 }); err != nil {
		t.Fatal(err)
	}
	// Construction with an override must not panic and runs normally.
	wl := workload.NewYCSBE(200, 5, 1.0)
	res := c.Run(wl, 0.5, 0.5, 1)
	if res.Requests == 0 {
		t.Fatal("no requests")
	}
}

func TestSimResourceUsage(t *testing.T) {
	p := tinyParams(13)
	c, err := New(p, Options{Strategy: placement.StrategyCost})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Populate(300, func(int) int64 { return 2048 }); err != nil {
		t.Fatal(err)
	}
	wl := workload.NewYCSBE(300, 5, 1.0)
	_ = c.Run(wl, 1, 0, 2)
	u := c.ResourceUsage()
	if u.StatsBytes <= 0 || u.TrackedBlocks <= 0 || u.WindowRequests <= 0 {
		t.Fatalf("stats usage = %+v", u)
	}
	if u.StatsReports <= 0 {
		t.Fatalf("no stats reports: %+v", u)
	}
	if u.CachedPlans <= 0 || u.PlannerBytes <= 0 {
		t.Fatalf("planner usage = %+v", u)
	}
}

func TestSimCacheServesHitsAndStaysDeterministic(t *testing.T) {
	opt := Options{Strategy: placement.StrategyCost, CacheBytes: 32 << 20}
	a := runTiny(t, tinyParams(9), opt, 300, 1, 0, 2)
	if a.Config != "EC+C+CACHE" {
		t.Fatalf("config = %s", a.Config)
	}
	if a.CacheHits == 0 {
		t.Fatal("zipfian workload produced no cache hits")
	}
	if a.CacheHitRatio() <= 0 || a.CacheHitRatio() > 1 {
		t.Fatalf("hit ratio = %v", a.CacheHitRatio())
	}
	if a.Cache.Bytes <= 0 || a.Cache.Bytes > 32<<20 {
		t.Fatalf("cache bytes = %d, want within budget", a.Cache.Bytes)
	}

	b := runTiny(t, tinyParams(9), opt, 300, 1, 0, 2)
	if a.Requests != b.Requests || a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses {
		t.Fatalf("cache run not deterministic: %d/%d/%d vs %d/%d/%d",
			a.Requests, a.CacheHits, a.CacheMisses, b.Requests, b.CacheHits, b.CacheMisses)
	}
	if math.Abs(a.Mean.Total()-b.Mean.Total()) > 1e-12 {
		t.Fatalf("mean latencies differ: %v vs %v", a.Mean.Total(), b.Mean.Total())
	}
}

func TestSimCacheLowersLatencyOnSkewedWorkload(t *testing.T) {
	base := runTiny(t, tinyParams(10), Options{Strategy: placement.StrategyCost}, 300, 1, 0, 3)
	cached := runTiny(t, tinyParams(10), Options{Strategy: placement.StrategyCost, CacheBytes: 32 << 20}, 300, 1, 0, 3)
	if cached.CacheHits == 0 {
		t.Fatal("no hits; comparison meaningless")
	}
	if cached.Mean.Total() >= base.Mean.Total() {
		t.Fatalf("cache did not lower mean latency: %.4f vs %.4f ms",
			cached.Mean.Total()*1000, base.Mean.Total()*1000)
	}
	if cached.Throughput <= base.Throughput {
		t.Fatalf("cache did not raise throughput: %.1f vs %.1f req/s",
			cached.Throughput, base.Throughput)
	}
}

func TestSimRangeReadsLowerRetrieveAndDecode(t *testing.T) {
	whole := runTiny(t, tinyParams(11), Options{}, 300, 1, 0, 3)
	ranged := runTiny(t, tinyParams(11), Options{RangeFraction: 1.0}, 300, 1, 0, 3)
	if ranged.Config != "EC+RANGE" {
		t.Fatalf("config = %s", ranged.Config)
	}
	if ranged.RangeRequests == 0 {
		t.Fatal("no range requests counted")
	}
	// Every request reads ~1/8 of each block: both the stripe-window
	// transfer and the window decode must shrink versus whole blocks.
	if ranged.Mean.Retrieve >= whole.Mean.Retrieve {
		t.Fatalf("range retrieve %.4f >= whole %.4f", ranged.Mean.Retrieve, whole.Mean.Retrieve)
	}
	if ranged.Mean.Decode >= whole.Mean.Decode {
		t.Fatalf("range decode %.6f >= whole %.6f", ranged.Mean.Decode, whole.Mean.Decode)
	}
}

func TestSimRangeReadsDeterministic(t *testing.T) {
	opt := Options{RangeFraction: 0.5, RangeMeanFrac: 0.25}
	a := runTiny(t, tinyParams(13), opt, 200, 1, 0, 2)
	b := runTiny(t, tinyParams(13), opt, 200, 1, 0, 2)
	if a.RangeRequests != b.RangeRequests || a.Mean.Total() != b.Mean.Total() {
		t.Fatalf("range runs diverge: %d/%v vs %d/%v", a.RangeRequests, a.Mean.Total(), b.RangeRequests, b.Mean.Total())
	}
}

func TestSimZonePlacementCap(t *testing.T) {
	p := tinyParams(11)
	c, err := New(p, Options{Zones: 4})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c.Populate(200, func(int) int64 { return 100 * 1024 })
	if err != nil {
		t.Fatal(err)
	}
	cap := model.MaxChunksPerZone(2) // RS(2,2) default
	for _, id := range ids {
		meta, _ := c.catalog.BlockMeta(id)
		perZone := map[string]int{}
		for _, s := range meta.Sites {
			perZone[c.zoneOf(s)]++
		}
		for zone, n := range perZone {
			if n > cap {
				t.Fatalf("block %s: %d chunks in zone %s (cap %d)", id, n, zone, cap)
			}
		}
	}
}

func TestSimZoneFailureKeepsReadsAvailable(t *testing.T) {
	p := tinyParams(12)
	c, err := New(p, Options{Zones: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Populate(300, func(int) int64 { return 100 * 1024 }); err != nil {
		t.Fatal(err)
	}
	failed := c.FailZone("z0")
	if len(failed) != 2 { // 8 sites round-robin over 4 zones
		t.Fatalf("z0 = %v, want 2 sites", failed)
	}
	wl := workload.NewYCSBE(300, 10, 1.0)
	res := c.Run(wl, 1, 0, 3)
	if res.Requests == 0 {
		t.Fatal("no requests completed during whole-zone outage")
	}
	for _, f := range failed {
		if rate, ok := res.SiteReadRate[f]; ok && rate > 0 {
			t.Fatalf("failed site %d served reads", f)
		}
	}
}

func TestSimZoneFailureDeterministic(t *testing.T) {
	run := func() *Result {
		p := tinyParams(13)
		c, err := New(p, Options{Zones: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Populate(200, func(int) int64 { return 100 * 1024 }); err != nil {
			t.Fatal(err)
		}
		c.FailZone("z1")
		return c.Run(workload.NewYCSBE(200, 10, 1.0), 1, 0, 2)
	}
	a, b := run(), run()
	if a.Requests != b.Requests || a.Mean.Total() != b.Mean.Total() {
		t.Fatalf("zone-failure sim not deterministic: %d/%v vs %d/%v",
			a.Requests, a.Mean.Total(), b.Requests, b.Mean.Total())
	}
}

func TestSimScrubLoadLengthensTail(t *testing.T) {
	run := func(rate float64) *Result {
		p := tinyParams(14)
		c, err := New(p, Options{ScrubBytesPerSec: rate})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Populate(300, func(int) int64 { return 100 * 1024 }); err != nil {
			t.Fatal(err)
		}
		return c.Run(workload.NewYCSBE(300, 10, 1.0), 1, 0, 3)
	}
	quiet := run(0)
	noisy := run(100e6) // 2/3 of each site's disk bandwidth
	if noisy.ScrubBytes == 0 {
		t.Fatal("scrub model injected no load")
	}
	if quiet.ScrubBytes != 0 {
		t.Fatal("scrub load active with rate 0")
	}
	if noisy.Mean.Total() <= quiet.Mean.Total() {
		t.Fatalf("unthrottled scrub did not slow reads: %v vs %v",
			noisy.Mean.Total(), quiet.Mean.Total())
	}
}
