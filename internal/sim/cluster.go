package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ecstore/internal/cache"
	"ecstore/internal/metadata"
	"ecstore/internal/model"
	"ecstore/internal/placement"
	"ecstore/internal/stats"
)

// Params model the simulated hardware and control-plane cadence. The
// defaults approximate the paper's testbed: a 10 GbE LAN, commodity SATA
// disks, 32 storage sites and dedicated control machines (Section VI-A).
type Params struct {
	Seed       int64
	NumSites   int
	NumClients int

	// NetOneWay is the one-way network latency in seconds; NetJitter is
	// the half-width of its uniform jitter.
	NetOneWay float64
	NetJitter float64

	// SiteOverhead is the per-site-visit request processing time; a
	// visit retrieving several chunks pays it once, which is why
	// co-locating co-accessed data reduces total work (Section III).
	SiteOverhead float64
	// DiskBytesPerSec is the per-server storage read rate.
	DiskBytesPerSec float64
	// ServersPerSite is the site's service parallelism (cores + disk
	// queue depth); the testbed machines have 12 cores.
	ServersPerSite int
	// ServiceJitter is the multiplicative service-time noise half-width.
	ServiceJitter float64
	// SlowProb is the per-visit probability of a service hiccup of
	// U[SlowMin, SlowMax] seconds (seeks, cache misses, OS noise):
	// the unpredictable component of straggling chunks.
	SlowProb float64
	SlowMin  float64
	SlowMax  float64

	// Degraded phases are the predictable component: a site entering a
	// degraded phase serves everything DegradedFactor times slower for
	// U[DegradedMin, DegradedMax] seconds (compactions, co-located
	// compute bursts). Phases start per site as a Poisson process with
	// mean inter-arrival DegradedEvery seconds; load-aware strategies
	// detect them through o_j probes and route around them.
	DegradedEvery  float64
	DegradedMin    float64
	DegradedMax    float64
	DegradedFactor float64

	// MetaAccessTime is the full metadata access latency (RTT +
	// lookup); the paper measures ~1.6-1.9 ms.
	MetaAccessTime float64
	// PlanTime is the access-planning latency (~0.8-0.9 ms measured).
	PlanTime float64
	// DecodeBytesPerSec is the erasure-decode throughput (~0.8 ms per
	// 1 MB in Figure 1).
	DecodeBytesPerSec float64

	// StatsInterval is the statistics reporting period (5-10 s in the
	// paper; compressed runs use a shorter one).
	StatsInterval float64
	// ProbeInterval is the load-status probe period feeding o_j.
	ProbeInterval float64
	// MoverInterval throttles the chunk mover (<1 chunk/s in the
	// paper).
	MoverInterval float64
	// MoverW2 is the movement load-balance weight relative to avg(o_j)
	// (the paper's w2=3 at avg(o_j)=5, i.e. 0.6); zero means 0.6.
	MoverW2 float64
	// MoverBatch is how many movement plans execute per mover tick; the
	// compressed timescale scales the paper's <1 chunk/s throttle.
	// Zero means 4.
	MoverBatch int
	// ExactSolvesPerInterval bounds background ILP solves per stats
	// interval, modelling the background worker's finite throughput.
	ExactSolvesPerInterval int
	// CoAccessSampleEvery records every Nth request into the co-access
	// tracker (the statistics service samples requests, Section V-A);
	// zero means 4.
	CoAccessSampleEvery int

	// TimelineBucket is the Figure-4a bucket width in seconds.
	TimelineBucket float64
}

// DefaultParams returns the calibrated testbed model.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:                   seed,
		NumSites:               32,
		NumClients:             100,
		NetOneWay:              0.00015,
		NetJitter:              0.00005,
		SiteOverhead:           0.0004,
		DiskBytesPerSec:        150e6,
		ServersPerSite:         12,
		ServiceJitter:          0.3,
		SlowProb:               0.05,
		SlowMin:                0.004,
		SlowMax:                0.025,
		DegradedEvery:          80,
		DegradedMin:            2,
		DegradedMax:            6,
		DegradedFactor:         1.4,
		MetaAccessTime:         0.0016,
		PlanTime:               0.0008,
		DecodeBytesPerSec:      2.5e9,
		StatsInterval:          1.0,
		ProbeInterval:          0.5,
		MoverInterval:          0.1,
		ExactSolvesPerInterval: 6,
		CoAccessSampleEvery:    4,
		TimelineBucket:         5,
	}
}

// Options pick one of the paper's evaluated configurations.
type Options struct {
	// Scheme is erasure coding or replication.
	Scheme model.Scheme
	// K, R are the coding parameters (RS(2,2) and 3-way replication by
	// default, as in Section VI-A).
	K, R int
	// Strategy selects random (baselines) or cost-model access.
	Strategy placement.Strategy
	// Delta enables late binding.
	Delta int
	// Mover enables dynamic chunk movement.
	Mover bool
	// CacheBytes enables the client-side decoded-block cache with this
	// byte budget; a hit serves the block without any site visit.
	CacheBytes int64
	// RangeFraction is the probability in [0,1] that a request reads a
	// sub-range of each block through the stripe-range path (GetRange):
	// site visits then transfer only the stripe window the range touches
	// and the decode covers only those bytes. Zero disables range reads.
	RangeFraction float64
	// RangeStripes models each block's stripe count — the granularity a
	// range rounds up to, as in the real layout (ChunkSize/StripeUnit).
	// Zero means 8 (1 MiB blocks at k=2, 64 KiB units).
	RangeStripes int
	// RangeMeanFrac is the mean fraction of a block a range covers,
	// sampled uniformly in (0, 2*mean]. Zero means 1/8.
	RangeMeanFrac float64
	// Zones spreads the sites round-robin over this many failure zones
	// and makes Populate zone-aware: at most model.MaxChunksPerZone(r)
	// chunks of a block land in one zone, so a whole-zone outage never
	// exceeds the erasure margin. Zero disables zones.
	Zones int
	// ScrubBytesPerSec models the background checksum scrubber as extra
	// sequential read load: every scrub tick each live site services
	// that many bytes per second of scrub reads, competing with client
	// traffic on the same disk queues. This is the sim twin of the task
	// scheduler's byte throttle — the ab-scrub ablation sweeps it. Zero
	// disables scrub load.
	ScrubBytesPerSec float64
	// CatalogPartitions shards the metadata catalog into this many
	// independently locked partitions (metadata.DefaultPartitions when
	// zero). The ab-meta ablation sweeps it to expose metadata-plane
	// contention at catalog scale.
	CatalogPartitions int
}

func (o Options) withDefaults() Options {
	if o.Scheme == 0 {
		o.Scheme = model.SchemeErasure
	}
	if o.K == 0 {
		o.K = 2
	}
	if o.R == 0 {
		o.R = 2
	}
	if o.Strategy == 0 {
		o.Strategy = placement.StrategyRandom
	}
	if o.RangeStripes <= 0 {
		o.RangeStripes = 8
	}
	if o.RangeMeanFrac <= 0 {
		o.RangeMeanFrac = 0.125
	}
	return o
}

// Name returns the paper's label for the configuration (R, EC, EC+LB,
// EC+C, EC+C+M, EC+C+M+LB).
func (o Options) Name() string {
	if o.Scheme == model.SchemeReplicated {
		return "R"
	}
	name := "EC"
	if o.Strategy == placement.StrategyCost {
		name += "+C"
	}
	if o.Mover {
		name += "+M"
	}
	if o.Delta > 0 {
		name += "+LB"
	}
	if o.CacheBytes > 0 {
		name += "+CACHE"
	}
	if o.RangeFraction > 0 {
		name += "+RANGE"
	}
	return name
}

// Cluster is one simulated EC-Store deployment running real strategy code
// over modelled hardware.
type Cluster struct {
	eng *Engine
	p   Params
	opt Options

	rng     *rand.Rand
	netRNG  *rand.Rand
	sites   map[model.SiteID]*site
	siteIDs []model.SiteID

	catalog *metadata.Catalog
	planner *placement.Planner
	co      *stats.CoAccessTracker
	loads   *stats.LoadTracker
	probes  *stats.ProbeEstimator
	mover   *placement.Mover
	// blockCache models the decoded-block tier: entries carry sizes but
	// no payloads (PutSized), and its clock is the engine's virtual time
	// so runs stay deterministic. Nil when Options.CacheBytes is zero.
	blockCache *cache.Cache

	metrics *Metrics

	// measured-window accounting.
	siteBytesAt  map[model.SiteID]float64
	measureFrom  float64
	reqInWindow  int
	moves        int
	lastWindow   float64
	reqRate      float64
	scrubBytes   float64
	visitsTotal  int64
	fetchTotal   int64
	rangeReqs    int64
	reqSeen      int64
	statsReports int64
	cacheStatsAt cache.Stats

	sizes map[model.BlockID]int64
}

// New builds a simulated cluster.
func New(p Params, opt Options) (*Cluster, error) {
	opt = opt.withDefaults()
	if p.NumSites < opt.K+opt.R {
		return nil, fmt.Errorf("sim: %d sites cannot hold %d chunks", p.NumSites, opt.K+opt.R)
	}
	c := &Cluster{
		eng:         NewEngine(),
		p:           p,
		opt:         opt,
		rng:         rand.New(rand.NewSource(p.Seed)),
		netRNG:      rand.New(rand.NewSource(p.Seed + 1)),
		sites:       make(map[model.SiteID]*site, p.NumSites),
		co:          stats.NewCoAccessTracker(0),
		loads:       stats.NewLoadTracker(),
		probes:      stats.NewProbeEstimator(0.3),
		metrics:     newMetrics(p.TimelineBucket),
		siteBytesAt: make(map[model.SiteID]float64),
		sizes:       make(map[model.BlockID]int64),
		measureFrom: math.Inf(1),
	}
	servers := p.ServersPerSite
	if servers <= 0 {
		servers = 1
	}
	for i := 0; i < p.NumSites; i++ {
		id := model.SiteID(i + 1)
		c.siteIDs = append(c.siteIDs, id)
		c.sites[id] = &site{
			id:       id,
			overhead: p.SiteOverhead,
			diskRate: p.DiskBytesPerSec,
			jitter:   p.ServiceJitter,
			slowProb: p.SlowProb,
			slowMin:  p.SlowMin,
			slowMax:  p.SlowMax,
			rng:      rand.New(rand.NewSource(p.Seed + 1000 + int64(i))),
			servers:  make([]float64, servers),
		}
	}
	parts := opt.CatalogPartitions
	if parts <= 0 {
		parts = metadata.DefaultPartitions
	}
	c.catalog = metadata.NewCatalogParts(c.siteIDs, parts)
	c.planner = placement.NewPlanner(placement.PlannerConfig{
		Strategy:          opt.Strategy,
		Delta:             opt.Delta,
		ManualExact:       true,
		CacheGreedyOnMiss: true,
		MaxExactNodes:     12,
		CacheSize:         1 << 15,
		Seed:              p.Seed + 2,
	})
	if opt.Mover {
		// Paper calibration: w2 = 3 when avg(o_j) = 5, i.e. w2 =
		// 0.6*avg(o_j); adaptive scaling tracks o_j in seconds.
		w2 := p.MoverW2
		if w2 == 0 {
			w2 = 0.6
		}
		c.mover = placement.NewMover(placement.MoverConfig{
			W1:                 placement.DefaultW1,
			W2:                 w2,
			W2Adaptive:         true,
			MaxCandidateBlocks: 8,
			MaxPartners:        4,
			MaxEvaluations:     48,
			MinScoreFracOfAvgO: 0.1,
			Seed:               p.Seed + 3,
		})
	}
	if c.p.CoAccessSampleEvery <= 0 {
		c.p.CoAccessSampleEvery = 1
	}
	if opt.CacheBytes > 0 {
		c.blockCache = cache.New(cache.Config{
			MaxBytes: opt.CacheBytes,
			Seed:     p.Seed + 6,
			Hotness:  c.co,
			Clock: func() time.Time {
				return time.Unix(0, 0).Add(time.Duration(c.eng.Now() * float64(time.Second)))
			},
		})
	}
	return c, nil
}

// defaultO is the unloaded probe round trip in seconds, the seed value of
// every o_j estimate.
func (c *Cluster) defaultO() float64 {
	return 2*c.p.NetOneWay + c.p.SiteOverhead
}

// defaultM is the per-byte read cost in seconds.
func (c *Cluster) defaultM() float64 { return 1 / c.p.DiskBytesPerSec }

// costs materializes the current cost model, dithering o_j slightly so
// concurrent planners do not herd onto the momentarily cheapest sites (the
// probe signal in a real deployment is likewise noisy per client).
func (c *Cluster) costs() *model.SiteCosts {
	sc := c.probes.Costs(c.defaultO(), c.defaultM())
	// Deterministic iteration: dither consumes the cluster RNG, so the
	// order must not depend on map layout.
	for _, id := range c.siteIDs {
		if o, ok := sc.O[id]; ok {
			sc.O[id] = o * (1 + 0.3*(c.rng.Float64()-0.5))
		}
	}
	return sc
}

// available reports whether a site is up.
func (c *Cluster) available(s model.SiteID) bool {
	st := c.sites[s]
	return st != nil && !st.failed
}

// net samples a one-way network latency.
func (c *Cluster) net() float64 {
	if c.p.NetJitter == 0 {
		return c.p.NetOneWay
	}
	return c.p.NetOneWay + c.p.NetJitter*(2*c.netRNG.Float64()-1)
}

// Populate registers n blocks of the given sizes with random placement
// (all configurations start from the same random layout, as in Section
// VI-A). sizeFor(i) returns block i's size in bytes.
func (c *Cluster) Populate(n int, sizeFor func(int) int64) ([]model.BlockID, error) {
	placer, err := placement.NewPlacer(placement.PlaceRandom, nil, c.p.Seed+4)
	if err != nil {
		return nil, err
	}
	ids := make([]model.BlockID, n)
	total := c.opt.K + c.opt.R
	k := c.opt.K
	if c.opt.Scheme == model.SchemeReplicated {
		total = c.opt.R + 1
		k = 1
	}
	for i := 0; i < n; i++ {
		id := model.BlockID(fmt.Sprintf("b%07d", i))
		ids[i] = id
		size := sizeFor(i)
		chunkSize := (size + int64(k) - 1) / int64(k)
		var sites []model.SiteID
		var err error
		if c.opt.Zones > 0 {
			r := total - k
			sites, err = placer.PlaceZoned(c.siteIDs, total, c.zoneOf, model.MaxChunksPerZone(r))
		} else {
			sites, err = placer.Place(c.siteIDs, total)
		}
		if err != nil {
			return nil, err
		}
		meta := &model.BlockMeta{
			ID:        id,
			Scheme:    c.opt.Scheme,
			Size:      size,
			K:         k,
			R:         c.opt.R,
			ChunkSize: chunkSize,
			Sites:     sites,
		}
		if c.opt.Scheme == model.SchemeReplicated {
			meta.R = total - 1
		}
		if err := c.catalog.Register(meta); err != nil {
			return nil, err
		}
		for _, s := range sites {
			c.sites[s].chunkCount++
		}
		c.sizes[id] = size
	}
	return ids, nil
}

// FailSites marks n distinct sites failed (Figure 4f), chosen by the
// cluster's deterministic RNG.
func (c *Cluster) FailSites(n int) []model.SiteID {
	perm := c.rng.Perm(len(c.siteIDs))
	failed := make([]model.SiteID, 0, n)
	for _, idx := range perm[:n] {
		id := c.siteIDs[idx]
		c.sites[id].failed = true
		failed = append(failed, id)
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	return failed
}

// zoneOf returns a site's failure-zone label ("" without zones).
func (c *Cluster) zoneOf(id model.SiteID) string {
	if c.opt.Zones <= 0 {
		return ""
	}
	return fmt.Sprintf("z%d", (int(id)-1)%c.opt.Zones)
}

// FailZone fails every site in one zone at once (a whole-zone outage)
// and returns the failed sites, sorted.
func (c *Cluster) FailZone(zone string) []model.SiteID {
	var failed []model.SiteID
	for _, id := range c.siteIDs {
		if c.zoneOf(id) == zone {
			c.sites[id].failed = true
			failed = append(failed, id)
		}
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	return failed
}

// Workload produces multi-block read requests.
type Workload interface {
	// NextRequest returns the block ids of one client request.
	NextRequest(rng *rand.Rand) []model.BlockID
}

// request tracks one in-flight client read.
type request struct {
	start     float64
	planDone  float64
	needs     map[model.BlockID]int // remaining chunks per block
	remaining int                   // blocks not yet satisfied
	bytes     float64               // total logical block bytes (decode cost)
	factor    float64               // fraction of each block actually read (1 = whole block)
	done      func(ok bool)         // completion callback (closed loop re-issues, open loop records)
}

// rangeFactor samples what fraction of each block this request reads.
// Whole-block requests return 1; a range request draws a fraction around
// RangeMeanFrac and rounds it up to the stripe grid, exactly as
// erasure.Layout.Window widens a byte range to whole stripes.
func (c *Cluster) rangeFactor(rng *rand.Rand) float64 {
	if c.opt.RangeFraction <= 0 || rng.Float64() >= c.opt.RangeFraction {
		return 1
	}
	frac := rng.Float64() * 2 * c.opt.RangeMeanFrac
	if frac > 1 {
		frac = 1
	}
	stripes := float64(c.opt.RangeStripes)
	return math.Ceil(frac*stripes+1e-9) / stripes
}

// Run executes the simulation in the paper's three phases: `warmup`
// seconds of unmeasured traffic with the workload as constructed (the
// uniform warm-up scan of Section VI-B), then a workload change (the
// measured skewed phase begins), then `adapt` unmeasured seconds for the
// control plane to react, then `measure` measured seconds.
//
// Figure 4a passes adapt=0 to expose the adaptation transient; the
// steady-state comparisons (Figures 4b-4h) give the mover time to
// converge, standing in for the paper's 20-minute runs.
func (c *Cluster) Run(wl Workload, warmup, adapt, measure float64) *Result {
	// Control-plane processes.
	c.scheduleStats()
	if c.mover != nil {
		c.scheduleMover()
	}
	c.scheduleDegradedPhases()
	if c.opt.ScrubBytesPerSec > 0 {
		c.scheduleScrub()
	}
	// Clients.
	for i := 0; i < c.p.NumClients; i++ {
		clientRNG := rand.New(rand.NewSource(c.p.Seed + 100 + int64(i)))
		// Stagger arrival to avoid a thundering herd at t=0.
		c.eng.At(float64(i)*0.001, func() { c.issue(wl, clientRNG) })
	}

	c.eng.Run(warmup)
	// Workload change: uniform warm-up ends, skewed access begins.
	if pa, ok := wl.(phaseAware); ok {
		pa.OnMeasureStart()
	}
	c.eng.Run(warmup + adapt)

	c.measureFrom = c.eng.Now()
	c.metrics.startMeasuring(c.measureFrom)
	for id, s := range c.sites {
		c.siteBytesAt[id] = s.totalBytes
	}
	c.cacheStatsAt = c.blockCache.Stats()
	c.eng.Run(warmup + adapt + measure)
	return c.result(measure)
}

// phaseAware mirrors workload.PhaseAware without importing the package.
type phaseAware interface {
	OnMeasureStart()
}

// scheduleStats runs the statistics service (load reports, request rate,
// background ILP budget) and the faster probe loop feeding o_j.
func (c *Cluster) scheduleStats() {
	var tick func()
	tick = func() {
		now := c.eng.Now()
		for _, id := range c.siteIDs {
			s := c.sites[id]
			cpu, io := s.drainWindow(now)
			if s.failed {
				continue
			}
			c.loads.Report(id, stats.SiteLoad{CPU: cpu, IOBytesPerSec: io, Chunks: s.chunkCount})
			c.statsReports++
		}
		if dt := now - c.lastWindow; dt > 0 {
			c.reqRate = float64(c.reqInWindow) / dt
		}
		c.reqInWindow = 0
		c.lastWindow = now
		c.planner.UpgradePending(c.p.ExactSolvesPerInterval)
		c.eng.After(c.p.StatsInterval, tick)
	}
	c.eng.After(c.p.StatsInterval, tick)

	probeInterval := c.p.ProbeInterval
	if probeInterval <= 0 {
		probeInterval = c.p.StatsInterval
	}
	lastO := make(map[model.SiteID]float64, len(c.siteIDs))
	var probe func()
	probe = func() {
		now := c.eng.Now()
		reload := false
		for _, id := range c.siteIDs {
			s := c.sites[id]
			if s.failed {
				continue
			}
			// The probe experiences the site's current queue and
			// degradation, like any other request.
			factor := s.slowFactor
			if factor < 1 {
				factor = 1
			}
			rtt := 2*c.p.NetOneWay + s.queueDelay(now) + s.overhead*factor
			c.probes.Observe(id, rtt)
			o := c.probes.O(id, c.defaultO())
			if prev, ok := lastO[id]; ok && (o > 1.3*prev || prev > 1.3*o) {
				reload = true
			}
			lastO[id] = o
		}
		// "When the cost parameters in the ILP problem change as a
		// result of new system state, we dynamically reload
		// solutions" (Section V-B1).
		if reload {
			c.planner.InvalidateAll()
		}
		c.eng.After(probeInterval, probe)
	}
	c.eng.After(probeInterval, probe)
}

// scheduleDegradedPhases arms each site's degraded-phase process.
func (c *Cluster) scheduleDegradedPhases() {
	if c.p.DegradedEvery <= 0 || c.p.DegradedFactor <= 1 {
		return
	}
	for i, id := range c.siteIDs {
		s := c.sites[id]
		rng := rand.New(rand.NewSource(c.p.Seed + 5000 + int64(i)))
		var arm func()
		arm = func() {
			wait := rng.ExpFloat64() * c.p.DegradedEvery
			c.eng.After(wait, func() {
				s.slowFactor = c.p.DegradedFactor
				dur := c.p.DegradedMin + (c.p.DegradedMax-c.p.DegradedMin)*rng.Float64()
				c.eng.After(dur, func() {
					s.slowFactor = 1
					arm()
				})
			})
		}
		arm()
	}
}

// scheduleMover runs the chunk mover at its throttled cadence.
func (c *Cluster) scheduleMover() {
	batch := c.p.MoverBatch
	if batch <= 0 {
		batch = 4
	}
	var tick func()
	tick = func() {
		for i := 0; i < batch; i++ {
			c.moveOnce()
		}
		c.eng.After(c.p.MoverInterval, tick)
	}
	c.eng.After(c.p.MoverInterval, tick)
}

// scheduleScrub runs the background checksum scrubber's read load: every
// tick each live site services ScrubBytesPerSec worth of scrub reads on
// the same disk queues as client traffic, so an unthrottled scrubber
// visibly lengthens the tail.
func (c *Cluster) scheduleScrub() {
	const tick = 0.5
	var scrub func()
	scrub = func() {
		now := c.eng.Now()
		bytes := c.opt.ScrubBytesPerSec * tick
		for _, id := range c.siteIDs {
			s := c.sites[id]
			if s.failed {
				continue
			}
			s.serviceRead(now, bytes)
			c.scrubBytes += bytes
		}
		c.eng.After(tick, scrub)
	}
	c.eng.After(tick, scrub)
}

// moveOnce selects and executes one movement plan in the simulated world:
// a read at the source, a write at the destination, and a CAS placement
// update.
func (c *Cluster) moveOnce() {
	env := placement.MoverEnv{
		Catalog:     c.catalog,
		CoAccess:    c.co,
		Loads:       c.loads,
		Costs:       c.costs(),
		Available:   c.available,
		RequestRate: c.reqRate,
	}
	plan, ok := c.mover.SelectMovementPlan(env)
	if !ok {
		return
	}
	meta, okMeta := c.catalog.BlockMeta(plan.Block)
	if !okMeta || meta.Sites[plan.Chunk] != plan.From {
		return
	}
	src, dst := c.sites[plan.From], c.sites[plan.To]
	if src == nil || dst == nil || src.failed || dst.failed {
		return
	}
	if _, err := c.catalog.UpdatePlacement(plan.Block, plan.Chunk, plan.To, meta.Version); err != nil {
		return
	}
	// Movement I/O competes with client traffic on both queues.
	now := c.eng.Now()
	bytes := float64(meta.ChunkSize)
	src.serviceRead(now, bytes)
	dst.serviceWrite(now, bytes)
	src.chunkCount--
	dst.chunkCount++
	c.moves++
	// Proportional load-shift bookkeeping (Section IV-C) so the next
	// selection sees the post-move state before fresh reports arrive.
	chunkRate := c.co.Frequency(plan.Block) * c.reqRate * bytes
	c.loads.ApplyShift(plan.From, plan.To, c.loads.LoadShare(plan.From, chunkRate))
}

// issue starts one client request and schedules the next upon completion
// (closed loop, zero think time). A failed attempt (lookup error,
// infeasible plan, every planned site dead) retries after a beat —
// exactly the historical client behaviour.
func (c *Cluster) issue(wl Workload, rng *rand.Rand) {
	ids := wl.NextRequest(rng)
	if len(ids) == 0 {
		c.eng.After(0.001, func() { c.issue(wl, rng) })
		return
	}
	c.startRequest(rng, ids, func(ok bool) {
		if ok {
			c.issue(wl, rng)
			return
		}
		c.eng.After(0.001, func() { c.issue(wl, rng) })
	})
}

// startRequest drives one request through the full pipeline — metadata,
// cache probe, planning, fetch, decode — and calls done exactly once:
// done(true) on completion, done(false) when the attempt failed and no
// response will ever arrive. Both the closed-loop clients (Run) and the
// open-loop gateway model (RunOpenLoop) share this path.
func (c *Cluster) startRequest(rng *rand.Rand, ids []model.BlockID, done func(ok bool)) {
	start := c.eng.Now()
	c.reqSeen++
	if c.reqSeen%int64(c.p.CoAccessSampleEvery) == 0 {
		c.co.Record(ids)
	}
	c.reqInWindow++

	// Metadata access (R1).
	c.eng.After(c.p.MetaAccessTime, func() {
		metas, err := c.catalog.Lookup(ids)
		if err != nil {
			done(false)
			return
		}
		// Cache phase: hits are served from client memory and stripped
		// from planning; a fully cached request never visits a site.
		if c.blockCache != nil {
			metas = c.cachePhase(metas)
			if len(metas) == 0 {
				c.metrics.record(c.eng.Now(), model.Breakdown{Metadata: c.p.MetaAccessTime})
				done(true)
				return
			}
		}
		// Access planning (R2): real strategy code, constant modelled
		// latency.
		plan, _, err := c.planner.Plan(placement.PlanRequest{Metas: metas, Available: c.available}, c.costs())
		if err != nil {
			// Infeasible under failures.
			done(false)
			return
		}
		factor := c.rangeFactor(rng)
		if factor < 1 && c.eng.Now() >= c.measureFrom {
			c.rangeReqs++
		}
		c.eng.After(c.p.PlanTime, func() {
			c.fetch(start, metas, plan, factor, done)
		})
	})
}

// fetch dispatches the plan's site visits and completes the request when
// every block has k chunks (late binding discards the surplus).
func (c *Cluster) fetch(start float64, metas map[model.BlockID]*model.BlockMeta, plan *model.AccessPlan, factor float64, done func(ok bool)) {
	now := c.eng.Now()
	req := &request{
		start:    start,
		planDone: now,
		needs:    make(map[model.BlockID]int, len(metas)),
		factor:   factor,
		done:     done,
	}
	// Accumulate in sorted block order: req.bytes is a float sum, and
	// float addition is order-sensitive, so map order would leak into
	// the simulated byte counts.
	blockIDs := make([]model.BlockID, 0, len(metas))
	for id := range metas {
		blockIDs = append(blockIDs, id)
	}
	sort.Slice(blockIDs, func(i, j int) bool { return blockIDs[i] < blockIDs[j] })
	for _, id := range blockIDs {
		req.needs[id] = metas[id].RequiredChunks()
		req.bytes += float64(metas[id].Size) * factor
	}
	req.remaining = len(metas)

	dispatched := 0
	for _, siteID := range plan.SortedSites() {
		refs := plan.Reads[siteID]
		s := c.sites[siteID]
		if s == nil || s.failed {
			continue
		}
		dispatched++
		// One site visit: the request arrives after a network hop,
		// occupies one server for its overhead plus all its chunk
		// transfers, and the response returns after another hop.
		var visitBytes float64
		for _, ref := range refs {
			visitBytes += float64(metas[ref.Block].ChunkSize) * req.factor
		}
		arrive := now + c.net()
		refsCopy := append([]model.ChunkRef(nil), refs...)
		c.eng.At(arrive, func() {
			doneAt := s.serviceRead(arrive, visitBytes)
			back := doneAt + c.net()
			c.eng.At(back, func() {
				c.chunkArrived(req, metas, refsCopy)
			})
		})
	}
	if dispatched == 0 {
		// Every planned site failed since planning.
		done(false)
		return
	}
	if c.eng.Now() >= c.measureFrom {
		c.visitsTotal += int64(dispatched)
		c.fetchTotal++
	}
}

// cachePhase probes the decoded-block cache for every looked-up block
// and returns only the misses. Blocks are probed in sorted order: Get
// mutates sketch and LRU state, so map order would leak into admission
// decisions and break run determinism.
func (c *Cluster) cachePhase(metas map[model.BlockID]*model.BlockMeta) map[model.BlockID]*model.BlockMeta {
	ids := make([]model.BlockID, 0, len(metas))
	for id := range metas {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	misses := make(map[model.BlockID]*model.BlockMeta, len(metas))
	for _, id := range ids {
		if _, ok := c.blockCache.Get(id, metas[id].Version); !ok {
			misses[id] = metas[id]
		}
	}
	return misses
}

// cachePopulate admits just-decoded blocks, again in sorted order for
// determinism. Entries carry only sizes (PutSized with a nil payload):
// the simulator never materializes block bytes, but the budget, LRU and
// admission behaviour are exactly the real cache's.
func (c *Cluster) cachePopulate(metas map[model.BlockID]*model.BlockMeta) {
	if c.blockCache == nil {
		return
	}
	ids := make([]model.BlockID, 0, len(metas))
	for id := range metas {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		meta := metas[id]
		c.blockCache.PutSized(id, meta.Version, nil, meta.Size)
	}
}

// chunkArrived processes one site visit's responses.
func (c *Cluster) chunkArrived(req *request, metas map[model.BlockID]*model.BlockMeta, refs []model.ChunkRef) {
	if req.remaining == 0 {
		return // already satisfied: late-binding surplus
	}
	for _, ref := range refs {
		if n := req.needs[ref.Block]; n > 0 {
			req.needs[ref.Block] = n - 1
			if n == 1 {
				req.remaining--
			}
		}
	}
	if req.remaining > 0 {
		return
	}
	// Retrieval complete; decode (R3) and record.
	retrieveDone := c.eng.Now()
	decode := 0.0
	if c.opt.Scheme == model.SchemeErasure {
		decode = req.bytes / c.p.DecodeBytesPerSec
	}
	c.eng.After(decode, func() {
		// Only whole-block reads decode a cacheable block; a range
		// decode yields a window, which the real client never admits.
		if req.factor >= 1 {
			c.cachePopulate(metas)
		}
		bd := model.Breakdown{
			Metadata: c.p.MetaAccessTime,
			Planning: c.p.PlanTime,
			Retrieve: retrieveDone - req.planDone,
			Decode:   decode,
		}
		c.metrics.record(c.eng.Now(), bd)
		req.done(true)
	})
}
