package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ecstore/internal/model"
)

// GatewayParams models the access-tier gateway sitting between an
// open-loop client population and the cluster: a bounded admission
// stage (Concurrency requests in service, QueueDepth waiting) that
// sheds arrivals once both are full — the simulation twin of
// internal/gateway's admission control.
type GatewayParams struct {
	// Concurrency is the number of requests the gateway proxies
	// concurrently; zero means 64, matching the daemon default.
	Concurrency int
	// QueueDepth bounds the admission queue; zero means 2×Concurrency.
	QueueDepth int
}

func (gp GatewayParams) withDefaults() GatewayParams {
	if gp.Concurrency <= 0 {
		gp.Concurrency = 64
	}
	if gp.QueueDepth <= 0 {
		gp.QueueDepth = 2 * gp.Concurrency
	}
	return gp
}

// Arrival mirrors workload.Arrival without importing the package: the
// wait in seconds until the next request arrives. workload.Poisson and
// workload.Constant satisfy it.
type Arrival interface {
	Next(rng *rand.Rand) float64
}

// OpenLoopResult summarizes one open-loop gateway run. All counters
// cover arrivals inside the measurement window; sojourn times span
// arrival at the gateway to completion, so queueing delay is included —
// the latency a tenant actually observes, not just service time.
type OpenLoopResult struct {
	// OfferedRate is the nominal arrival rate in requests/second (as
	// reported by the caller; zero when unknown).
	OfferedRate float64

	// Arrivals counts measured-window arrivals; Admitted the subset
	// that entered service or the queue; Shed the rejected remainder.
	Arrivals int
	Admitted int
	Shed     int
	// Completed counts admitted requests that finished successfully
	// (including during the post-window drain); Failed those whose
	// attempt died (lookup error, infeasible plan, dead sites).
	Completed int
	Failed    int

	// Throughput is completed requests per simulated second of the
	// measurement window — the carried load, not the offered load.
	Throughput float64

	// Sojourn percentiles in seconds (queue wait + service).
	MeanSojourn float64
	P50Sojourn  float64
	P95Sojourn  float64
	P99Sojourn  float64

	// MaxQueueDepth is the admission queue's high-water mark across the
	// whole run (warmup included).
	MaxQueueDepth int
}

// ShedFraction returns the measured-window rejection rate.
func (r *OpenLoopResult) ShedFraction() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Arrivals)
}

// String renders a one-line sweep row.
func (r *OpenLoopResult) String() string {
	return fmt.Sprintf("offered=%7.1f/s carried=%7.1f/s shed=%5.1f%% p50=%6.2fms p99=%7.2fms qmax=%d",
		r.OfferedRate, r.Throughput, 100*r.ShedFraction(),
		r.P50Sojourn*1000, r.P99Sojourn*1000, r.MaxQueueDepth)
}

// openGateway is the simulated admission stage.
type openGateway struct {
	c           *Cluster
	conc, qmax  int
	rng         *rand.Rand
	measureFrom float64
	end         float64

	inflight int
	queue    []openReq

	arrivals, admitted, shed int
	completed, failed        int
	maxQueue                 int
	sojourns                 []float64
}

// openReq is one arrival waiting for or holding a gateway slot.
type openReq struct {
	ids      []model.BlockID
	at       float64
	measured bool
}

// RunOpenLoop executes an open-loop experiment: requests arrive on the
// Arrival schedule regardless of completions (unlike Run's closed loop,
// where each client waits for its previous request), pass the gateway's
// bounded admission stage, and are shed once Concurrency requests are
// in service and QueueDepth are waiting. `warmup` unmeasured seconds
// precede `measure` measured seconds; after the window the arrival
// process stops and admitted requests drain.
//
// This is how the ab-gateway ablation finds the knee: sweep the offered
// rate upward and watch carried throughput saturate, sojourn p99 stay
// bounded by the finite queue, and the shed fraction absorb the excess
// — an overloaded gateway degrades by rejecting, not by collapsing.
func (c *Cluster) RunOpenLoop(wl Workload, arr Arrival, gp GatewayParams, warmup, measure float64) *OpenLoopResult {
	gp = gp.withDefaults()

	// Control-plane processes, as in the closed-loop Run.
	c.scheduleStats()
	if c.mover != nil {
		c.scheduleMover()
	}
	c.scheduleDegradedPhases()
	if c.opt.ScrubBytesPerSec > 0 {
		c.scheduleScrub()
	}

	end := warmup + measure
	g := &openGateway{
		c:    c,
		conc: gp.Concurrency,
		qmax: gp.QueueDepth,
		// Request draws (workload choice, range factor) use their own
		// stream so gateway runs never perturb closed-loop seeds.
		rng:         rand.New(rand.NewSource(c.p.Seed + 9001)),
		measureFrom: math.Inf(1),
		end:         end,
	}

	// The arrival process: self-scheduling chain with its own RNG,
	// terminating once the window closes.
	arrRNG := rand.New(rand.NewSource(c.p.Seed + 9000))
	var nextArrival func()
	nextArrival = func() {
		wait := arr.Next(arrRNG)
		c.eng.After(wait, func() {
			if c.eng.Now() >= end {
				return
			}
			g.arrive(wl)
			nextArrival()
		})
	}
	nextArrival()

	c.eng.Run(warmup)
	if pa, ok := wl.(phaseAware); ok {
		pa.OnMeasureStart()
	}
	c.measureFrom = c.eng.Now()
	c.metrics.startMeasuring(c.measureFrom)
	g.measureFrom = c.measureFrom
	for id, s := range c.sites {
		c.siteBytesAt[id] = s.totalBytes
	}
	c.eng.Run(end)
	// Drain: arrivals have stopped; give admitted requests time to
	// finish so window-arrived completions are counted. Per-request
	// latencies are milliseconds-scale, so this is generous.
	c.eng.Run(end + 30)
	return g.result(measure)
}

// arrive handles one request arrival: service slot, queue slot, or shed.
func (g *openGateway) arrive(wl Workload) {
	now := g.c.eng.Now()
	ids := wl.NextRequest(g.rng)
	if len(ids) == 0 {
		return
	}
	measured := now >= g.measureFrom && now < g.end
	if measured {
		g.arrivals++
	}
	req := openReq{ids: ids, at: now, measured: measured}
	if g.inflight < g.conc {
		if measured {
			g.admitted++
		}
		g.start(req)
		return
	}
	if len(g.queue) < g.qmax {
		if measured {
			g.admitted++
		}
		g.queue = append(g.queue, req)
		if len(g.queue) > g.maxQueue {
			g.maxQueue = len(g.queue)
		}
		return
	}
	if measured {
		g.shed++
	}
}

// start moves a request into service through the shared request path.
func (g *openGateway) start(req openReq) {
	g.inflight++
	g.c.startRequest(g.rng, req.ids, func(ok bool) {
		g.inflight--
		now := g.c.eng.Now()
		if req.measured {
			if ok {
				g.completed++
				g.sojourns = append(g.sojourns, now-req.at)
			} else {
				// Open-loop clients don't retry: a failed attempt is a
				// failed request.
				g.failed++
			}
		}
		g.dequeue()
	})
}

// dequeue promotes the head of the admission queue when a slot frees.
func (g *openGateway) dequeue() {
	if len(g.queue) == 0 || g.inflight >= g.conc {
		return
	}
	req := g.queue[0]
	g.queue = g.queue[1:]
	g.start(req)
}

// result assembles the OpenLoopResult.
func (g *openGateway) result(measure float64) *OpenLoopResult {
	r := &OpenLoopResult{
		Arrivals:      g.arrivals,
		Admitted:      g.admitted,
		Shed:          g.shed,
		Completed:     g.completed,
		Failed:        g.failed,
		MaxQueueDepth: g.maxQueue,
	}
	if measure > 0 {
		r.Throughput = float64(g.completed) / measure
	}
	if len(g.sojourns) > 0 {
		sorted := append([]float64(nil), g.sojourns...)
		sort.Float64s(sorted)
		var sum float64
		for _, s := range sorted {
			sum += s
		}
		r.MeanSojourn = sum / float64(len(sorted))
		r.P50Sojourn = percentileOf(sorted, 50)
		r.P95Sojourn = percentileOf(sorted, 95)
		r.P99Sojourn = percentileOf(sorted, 99)
	}
	return r
}

// percentileOf interpolates the p-th percentile of a sorted sample.
func percentileOf(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
