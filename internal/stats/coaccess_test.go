package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecstore/internal/model"
)

func ids(ss ...string) []model.BlockID {
	out := make([]model.BlockID, len(ss))
	for i, s := range ss {
		out[i] = model.BlockID(s)
	}
	return out
}

func TestLambdaBasic(t *testing.T) {
	tr := NewCoAccessTracker(10)
	tr.Record(ids("a", "b"))
	tr.Record(ids("a", "c"))
	tr.Record(ids("a", "b"))
	tr.Record(ids("d"))

	// a appeared 3 times, {a,b} twice: λ_{a,b} = 2/3.
	if got := tr.Lambda("a", "b"); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Lambda(a,b) = %v, want 2/3", got)
	}
	// b appeared 2 times, both with a: λ_{b,a} = 1.
	if got := tr.Lambda("b", "a"); got != 1 {
		t.Errorf("Lambda(b,a) = %v, want 1", got)
	}
	if got := tr.Lambda("a", "d"); got != 0 {
		t.Errorf("Lambda(a,d) = %v, want 0", got)
	}
	if got := tr.Lambda("zzz", "a"); got != 0 {
		t.Errorf("Lambda(unknown,a) = %v, want 0", got)
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	tr := NewCoAccessTracker(2)
	tr.Record(ids("a", "b"))
	tr.Record(ids("c"))
	if got := tr.Lambda("a", "b"); got != 1 {
		t.Fatalf("Lambda before eviction = %v", got)
	}
	tr.Record(ids("d")) // evicts {a,b}
	if got := tr.Lambda("a", "b"); got != 0 {
		t.Fatalf("Lambda after eviction = %v, want 0", got)
	}
	if got := tr.AccessCount("a"); got != 0 {
		t.Fatalf("AccessCount(a) after eviction = %d", got)
	}
	if got := tr.TotalRequests(); got != 2 {
		t.Fatalf("TotalRequests = %d, want 2", got)
	}
}

func TestRecordDedupsWithinRequest(t *testing.T) {
	tr := NewCoAccessTracker(10)
	tr.Record(ids("a", "a", "b"))
	if got := tr.AccessCount("a"); got != 1 {
		t.Fatalf("AccessCount(a) = %d, want 1", got)
	}
	if got := tr.Lambda("a", "b"); got != 1 {
		t.Fatalf("Lambda(a,b) = %v, want 1", got)
	}
}

func TestRecordIgnoresEmpty(t *testing.T) {
	tr := NewCoAccessTracker(10)
	tr.Record(nil)
	tr.Record(ids())
	if got := tr.TotalRequests(); got != 0 {
		t.Fatalf("TotalRequests = %d, want 0", got)
	}
}

func TestPartnersOrdering(t *testing.T) {
	tr := NewCoAccessTracker(100)
	for i := 0; i < 3; i++ {
		tr.Record(ids("a", "b"))
	}
	tr.Record(ids("a", "c"))
	ps := tr.Partners("a", 0)
	if len(ps) != 2 {
		t.Fatalf("Partners = %v", ps)
	}
	if ps[0].Block != "b" || ps[1].Block != "c" {
		t.Fatalf("Partners order = %v", ps)
	}
	if math.Abs(ps[0].Lambda-0.75) > 1e-12 {
		t.Fatalf("λ(a,b) = %v, want 0.75", ps[0].Lambda)
	}
	if got := tr.Partners("a", 1); len(got) != 1 {
		t.Fatalf("Partners max=1 returned %d", len(got))
	}
	if got := tr.Partners("never", 5); got != nil {
		t.Fatalf("Partners(unknown) = %v", got)
	}
}

func TestFrequency(t *testing.T) {
	tr := NewCoAccessTracker(10)
	tr.Record(ids("a"))
	tr.Record(ids("a", "b"))
	tr.Record(ids("c"))
	if got := tr.Frequency("a"); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Frequency(a) = %v", got)
	}
	empty := NewCoAccessTracker(10)
	if got := empty.Frequency("a"); got != 0 {
		t.Fatalf("Frequency on empty = %v", got)
	}
}

func TestCandidateBlocksFavorsHotBlocks(t *testing.T) {
	tr := NewCoAccessTracker(1000)
	for i := 0; i < 200; i++ {
		tr.Record(ids("hot"))
	}
	tr.Record(ids("cold"))
	rng := rand.New(rand.NewSource(1))
	seenHot := 0
	for trial := 0; trial < 50; trial++ {
		for _, b := range tr.CandidateBlocks(1, rng) {
			if b == "hot" {
				seenHot++
			}
		}
	}
	if seenHot < 25 {
		t.Fatalf("hot block picked only %d/50 times", seenHot)
	}
	if got := tr.CandidateBlocks(0, rng); got != nil {
		t.Fatalf("CandidateBlocks(0) = %v", got)
	}
}

func TestCandidateBlocksDistinct(t *testing.T) {
	tr := NewCoAccessTracker(100)
	tr.Record(ids("a", "b", "c"))
	rng := rand.New(rand.NewSource(2))
	got := tr.CandidateBlocks(10, rng)
	seen := map[model.BlockID]bool{}
	for _, b := range got {
		if seen[b] {
			t.Fatalf("duplicate candidate %s", b)
		}
		seen[b] = true
	}
}

// TestWindowCountsConsistentProperty checks the invariant that counts and
// pair counts always equal a recount over the live window contents.
func TestWindowCountsConsistentProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewCoAccessTracker(8)
		universe := []string{"a", "b", "c", "d", "e"}
		for step := 0; step < 50; step++ {
			n := 1 + rng.Intn(3)
			var q []model.BlockID
			for i := 0; i < n; i++ {
				q = append(q, model.BlockID(universe[rng.Intn(len(universe))]))
			}
			tr.Record(q)
		}
		// Recount from the live window.
		recount := make(map[model.BlockID]int)
		for _, q := range tr.window {
			for _, b := range q {
				recount[b]++
			}
		}
		for b, want := range recount {
			if tr.counts[b] != want {
				return false
			}
		}
		return len(recount) == len(tr.counts)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMemoryFootprintGrowsAndReportsPositive(t *testing.T) {
	tr := NewCoAccessTracker(100)
	if got := tr.MemoryFootprint(); got != 0 {
		t.Fatalf("empty footprint = %d", got)
	}
	tr.Record(ids("a", "b", "c"))
	if got := tr.MemoryFootprint(); got <= 0 {
		t.Fatalf("footprint = %d, want > 0", got)
	}
}

func TestRecentCompaction(t *testing.T) {
	tr := NewCoAccessTracker(10)
	// Force many distinct blocks through to trigger compactRecent.
	for i := 0; i < 10000; i++ {
		tr.Record([]model.BlockID{model.BlockID("b" + string(rune('a'+i%26))), model.BlockID("x")})
	}
	rng := rand.New(rand.NewSource(3))
	got := tr.CandidateBlocks(5, rng)
	if len(got) == 0 {
		t.Fatal("no candidates after compaction")
	}
}

func TestHottestBlocksOrdersByAccessCount(t *testing.T) {
	tr := NewCoAccessTracker(100)
	for i := 0; i < 5; i++ {
		tr.Record(ids("hot"))
	}
	for i := 0; i < 3; i++ {
		tr.Record(ids("warm"))
	}
	tr.Record(ids("cold"))
	tr.Record(ids("chill")) // same count as cold: ties break by id

	got := tr.HottestBlocks(10)
	want := ids("hot", "warm", "chill", "cold")
	if len(got) != len(want) {
		t.Fatalf("HottestBlocks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HottestBlocks = %v, want %v", got, want)
		}
	}
	if top := tr.HottestBlocks(2); len(top) != 2 || top[0] != "hot" || top[1] != "warm" {
		t.Fatalf("HottestBlocks(2) = %v", top)
	}
	if tr.HottestBlocks(0) != nil {
		t.Fatal("HottestBlocks(0) should be nil")
	}
}
