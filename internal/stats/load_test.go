package stats

import (
	"math"
	"testing"

	"ecstore/internal/model"
)

func TestOmegaAndMean(t *testing.T) {
	l := NewLoadTracker()
	l.Report(1, SiteLoad{CPU: 0.5, IOBytesPerSec: 100})
	l.Report(2, SiteLoad{CPU: 0.5, IOBytesPerSec: 50})

	// ioScale adapts to the max rate (100), so ω(1) = 0.5 + 1.0 = 1.5
	// and ω(2) = 0.5 + 0.5 = 1.0.
	if got := l.Omega(1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Omega(1) = %v, want 1.5", got)
	}
	if got := l.Omega(2); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Omega(2) = %v, want 1.0", got)
	}
	if got := l.MeanOmega(); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("MeanOmega = %v, want 1.25", got)
	}
}

func TestBalanceFactor(t *testing.T) {
	l := NewLoadTracker()
	l.Report(1, SiteLoad{CPU: 1.0})
	l.Report(2, SiteLoad{CPU: 1.0})
	if got := l.BalanceFactor(1); got != 0 {
		t.Errorf("balanced factor = %v, want 0", got)
	}

	l.Report(1, SiteLoad{CPU: 2.0})
	// mean = 1.5: Ω(1) = |1-2/1.5| = 1/3, Ω(2) = |1-1/1.5| = 1/3.
	if got := l.BalanceFactor(1); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("Ω(1) = %v, want 1/3", got)
	}

	empty := NewLoadTracker()
	if got := empty.BalanceFactor(7); got != 0 {
		t.Errorf("empty tracker Ω = %v", got)
	}
}

func TestImbalanceGain(t *testing.T) {
	l := NewLoadTracker()
	l.Report(1, SiteLoad{CPU: 2.0})
	l.Report(2, SiteLoad{CPU: 0.0})
	l.Report(3, SiteLoad{CPU: 1.0})

	// mean = 1. Moving 1.0 of ω from site 1 to site 2 perfectly
	// balances: before max(Ω1, Ω2) = 1, after = 0, gain 1.
	if got := l.ImbalanceGain(1, 2, 1.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ImbalanceGain = %v, want 1", got)
	}
	// Moving load from the average site onto the hot site is harmful.
	if got := l.ImbalanceGain(3, 1, 0.5); got >= 0 {
		t.Errorf("harmful move gain = %v, want negative", got)
	}
	// Zero shift changes nothing.
	if got := l.ImbalanceGain(1, 2, 0); got != 0 {
		t.Errorf("zero shift gain = %v", got)
	}
	// Shift is clamped to the source's load.
	if got := l.ImbalanceGain(2, 3, 5.0); !math.IsNaN(got) && got <= 0.0+1e-12 && got >= -1e-9 {
		// site 2 has ω=0, clamped shift = 0, gain = 0
	} else {
		t.Errorf("clamped gain = %v, want 0", got)
	}
}

func TestLoadShare(t *testing.T) {
	l := NewLoadTracker()
	l.Report(1, SiteLoad{CPU: 0.2, IOBytesPerSec: 1000})
	if got := l.LoadShare(1, 250); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("LoadShare = %v, want 0.25", got)
	}
	if got := l.LoadShare(1, 5000); got != 1 {
		t.Errorf("LoadShare clamp = %v, want 1", got)
	}
	if got := l.LoadShare(1, 0); got != 0 {
		t.Errorf("LoadShare zero demand = %v", got)
	}
	if got := l.LoadShare(9, 10); got != 0 {
		t.Errorf("LoadShare unknown site = %v", got)
	}
}

func TestSitesByLoadDesc(t *testing.T) {
	l := NewLoadTracker()
	l.Report(1, SiteLoad{CPU: 0.1})
	l.Report(2, SiteLoad{CPU: 0.9})
	l.Report(3, SiteLoad{CPU: 0.5})
	got := l.SitesByLoadDesc()
	want := []model.SiteID{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SitesByLoadDesc = %v, want %v", got, want)
		}
	}
}

func TestSitesAndRemove(t *testing.T) {
	l := NewLoadTracker()
	l.Report(2, SiteLoad{})
	l.Report(1, SiteLoad{})
	got := l.Sites()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Sites = %v", got)
	}
	l.Remove(1)
	if got := l.Sites(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Sites after remove = %v", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	l := NewLoadTracker()
	l.Report(1, SiteLoad{CPU: 0.5})
	snap := l.Snapshot()
	snap[1] = SiteLoad{CPU: 9}
	if l.Omega(1) == 9 {
		t.Fatal("Snapshot aliases internal map")
	}
}

func TestProbeEstimatorEWMA(t *testing.T) {
	p := NewProbeEstimator(0.5)
	if got := p.O(1, 42); got != 42 {
		t.Errorf("default O = %v, want 42", got)
	}
	p.Observe(1, 10)
	if got := p.O(1, 0); got != 10 {
		t.Errorf("first O = %v, want 10", got)
	}
	p.Observe(1, 20)
	if got := p.O(1, 0); math.Abs(got-15) > 1e-12 {
		t.Errorf("EWMA O = %v, want 15", got)
	}
}

func TestProbeEstimatorBadAlphaFallsBack(t *testing.T) {
	p := NewProbeEstimator(-1)
	p.Observe(1, 10)
	p.Observe(1, 0)
	got := p.O(1, 0)
	if math.Abs(got-7) > 1e-12 { // (1-0.3)*10 + 0.3*0
		t.Errorf("fallback alpha O = %v, want 7", got)
	}
}

func TestProbeEstimatorCostsAndAverage(t *testing.T) {
	p := NewProbeEstimator(1)
	if got := p.AverageO(3.5); got != 3.5 {
		t.Errorf("empty AverageO = %v", got)
	}
	p.Observe(1, 4)
	p.Observe(2, 6)
	if got := p.AverageO(0); math.Abs(got-5) > 1e-12 {
		t.Errorf("AverageO = %v, want 5", got)
	}
	costs := p.Costs(9, 2)
	if got := costs.OCost(1); got != 4 {
		t.Errorf("costs O(1) = %v", got)
	}
	if got := costs.OCost(99); got != 9 {
		t.Errorf("costs O default = %v", got)
	}
	if got := costs.MCost(1); got != 2 {
		t.Errorf("costs M = %v", got)
	}
}

func TestApplyShift(t *testing.T) {
	l := NewLoadTracker()
	l.Report(1, SiteLoad{CPU: 0.8, IOBytesPerSec: 1000, Chunks: 10})
	l.Report(2, SiteLoad{CPU: 0.2, IOBytesPerSec: 200, Chunks: 5})

	l.ApplyShift(1, 2, 0.5)
	snap := l.Snapshot()
	if math.Abs(snap[1].CPU-0.4) > 1e-12 || math.Abs(snap[2].CPU-0.6) > 1e-12 {
		t.Fatalf("CPU after shift: %+v", snap)
	}
	if math.Abs(snap[1].IOBytesPerSec-500) > 1e-9 || math.Abs(snap[2].IOBytesPerSec-700) > 1e-9 {
		t.Fatalf("IO after shift: %+v", snap)
	}
	if snap[1].Chunks != 9 || snap[2].Chunks != 6 {
		t.Fatalf("chunks after shift: %+v", snap)
	}

	// Fractions are clamped; non-positive is a no-op.
	l.ApplyShift(1, 2, 0)
	l.ApplyShift(1, 2, -1)
	snap2 := l.Snapshot()
	if snap2[1].CPU != snap[1].CPU {
		t.Fatal("no-op shift changed state")
	}
	l.ApplyShift(1, 2, 5) // clamped to 1: all load moves
	snap3 := l.Snapshot()
	if snap3[1].CPU != 0 {
		t.Fatalf("full shift left CPU %v", snap3[1].CPU)
	}
}
