// Package stats implements EC-Store's statistics service (Section V-A):
// block co-access likelihood tracking over a sliding window of sampled
// requests, per-site load aggregation, and o_j estimation from load-status
// probe round trips. The same logic backs both the real cluster and the
// discrete-event simulator.
package stats

import (
	"math/rand"
	"sort"
	"sync"

	"ecstore/internal/model"
)

// DefaultWindowSize matches the paper's sliding interval of 5000 requests.
const DefaultWindowSize = 5000

// Partner is a co-accessed block with its conditional likelihood
// λ_{b,i} = P({B_b, B_i} ⊆ Q | B_b ∈ Q).
type Partner struct {
	Block  model.BlockID
	Lambda float64
}

// CoAccessTracker maintains block access and co-access statistics within a
// sliding window of previous requests. It is safe for concurrent use.
type CoAccessTracker struct {
	mu sync.Mutex

	capacity int
	window   [][]model.BlockID // ring buffer of sampled requests
	next     int               // ring index of the next slot to overwrite
	filled   bool

	total  int                              // requests currently in window
	counts map[model.BlockID]int            // # window requests containing b
	pairs  map[model.BlockID]map[model.BlockID]int // # window requests containing both
	// recent holds the most recently seen blocks in LRU order for
	// candidate generation (recently accessed blocks are likely to be
	// accessed again).
	recent    []model.BlockID
	recentPos map[model.BlockID]int
}

// NewCoAccessTracker returns a tracker with the given sliding-window
// capacity (requests). Non-positive capacity uses DefaultWindowSize.
func NewCoAccessTracker(capacity int) *CoAccessTracker {
	if capacity <= 0 {
		capacity = DefaultWindowSize
	}
	return &CoAccessTracker{
		capacity:  capacity,
		window:    make([][]model.BlockID, capacity),
		counts:    make(map[model.BlockID]int),
		pairs:     make(map[model.BlockID]map[model.BlockID]int),
		recentPos: make(map[model.BlockID]int),
	}
}

// Record adds one sampled request to the window, evicting the oldest
// request once the window is full. Duplicate block ids within a request are
// collapsed.
func (t *CoAccessTracker) Record(q []model.BlockID) {
	if len(q) == 0 {
		return
	}
	uniq := dedup(q)

	t.mu.Lock()
	defer t.mu.Unlock()

	if old := t.window[t.next]; old != nil {
		t.remove(old)
	}
	t.window[t.next] = uniq
	t.next++
	if t.next == t.capacity {
		t.next = 0
		t.filled = true
	}
	t.add(uniq)
}

func (t *CoAccessTracker) add(q []model.BlockID) {
	t.total++
	for _, b := range q {
		t.counts[b]++
		t.touchRecent(b)
	}
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			t.bumpPair(q[i], q[j], 1)
			t.bumpPair(q[j], q[i], 1)
		}
	}
}

func (t *CoAccessTracker) remove(q []model.BlockID) {
	t.total--
	for _, b := range q {
		if t.counts[b] <= 1 {
			delete(t.counts, b)
		} else {
			t.counts[b]--
		}
	}
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			t.bumpPair(q[i], q[j], -1)
			t.bumpPair(q[j], q[i], -1)
		}
	}
}

func (t *CoAccessTracker) bumpPair(a, b model.BlockID, delta int) {
	m := t.pairs[a]
	if m == nil {
		if delta <= 0 {
			return
		}
		m = make(map[model.BlockID]int)
		t.pairs[a] = m
	}
	m[b] += delta
	if m[b] <= 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(t.pairs, a)
		}
	}
}

// touchRecent maintains a bounded most-recently-accessed list.
func (t *CoAccessTracker) touchRecent(b model.BlockID) {
	const maxRecent = 4096
	if pos, ok := t.recentPos[b]; ok {
		// Move to the end by appending and tombstoning the old slot.
		t.recent[pos] = ""
	}
	t.recent = append(t.recent, b)
	t.recentPos[b] = len(t.recent) - 1
	if len(t.recent) > 2*maxRecent {
		t.compactRecent(maxRecent)
	}
}

func (t *CoAccessTracker) compactRecent(keep int) {
	live := make([]model.BlockID, 0, keep)
	for i := len(t.recent) - 1; i >= 0 && len(live) < keep; i-- {
		b := t.recent[i]
		if b == "" || t.recentPos[b] != i {
			continue
		}
		live = append(live, b)
	}
	// live is newest-first; rebuild oldest-first.
	t.recent = t.recent[:0]
	t.recentPos = make(map[model.BlockID]int, len(live))
	for i := len(live) - 1; i >= 0; i-- {
		b := live[i]
		t.recent = append(t.recent, b)
		t.recentPos[b] = len(t.recent) - 1
	}
}

// Lambda returns λ_{b,i}: the likelihood that a request containing b also
// contains i, from window statistics. Returns 0 when b is unseen.
func (t *CoAccessTracker) Lambda(b, i model.BlockID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	cb := t.counts[b]
	if cb == 0 {
		return 0
	}
	return float64(t.pairs[b][i]) / float64(cb)
}

// Partners returns up to max co-accessed partners of b ordered by
// descending λ.
func (t *CoAccessTracker) Partners(b model.BlockID, max int) []Partner {
	t.mu.Lock()
	defer t.mu.Unlock()
	cb := t.counts[b]
	if cb == 0 || len(t.pairs[b]) == 0 {
		return nil
	}
	ps := make([]Partner, 0, len(t.pairs[b]))
	for i, n := range t.pairs[b] {
		ps = append(ps, Partner{Block: i, Lambda: float64(n) / float64(cb)})
	}
	sort.Slice(ps, func(x, y int) bool {
		if ps[x].Lambda != ps[y].Lambda {
			return ps[x].Lambda > ps[y].Lambda
		}
		return ps[x].Block < ps[y].Block
	})
	if max > 0 && len(ps) > max {
		ps = ps[:max]
	}
	return ps
}

// Frequency returns P(b ∈ Q) over the window.
func (t *CoAccessTracker) Frequency(b model.BlockID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total == 0 {
		return 0
	}
	return float64(t.counts[b]) / float64(t.total)
}

// AccessCount returns the number of window requests containing b.
func (t *CoAccessTracker) AccessCount(b model.BlockID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[b]
}

// TotalRequests returns the number of requests currently in the window.
func (t *CoAccessTracker) TotalRequests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// CandidateBlocks probabilistically samples up to n distinct candidate
// blocks for movement, weighting recently and frequently accessed blocks
// (Algorithm 1, GETCANDIDATEBLOCKS). Sampling uses the provided rng so
// callers control determinism.
func (t *CoAccessTracker) CandidateBlocks(n int, rng *rand.Rand) []model.BlockID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || len(t.counts) == 0 {
		return nil
	}

	picked := make([]model.BlockID, 0, n)
	seen := make(map[model.BlockID]bool, n)

	// Walk the recency list newest-first; accept each block with
	// probability proportional to its access share (floored so rare
	// blocks still get explored, per the paper's "explore the effect of
	// moving many other different data items").
	maxCount := 1
	for _, c := range t.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i := len(t.recent) - 1; i >= 0 && len(picked) < n; i-- {
		b := t.recent[i]
		if b == "" || t.recentPos[b] != i || seen[b] {
			continue
		}
		p := 0.25 + 0.75*float64(t.counts[b])/float64(maxCount)
		if rng.Float64() <= p {
			picked = append(picked, b)
			seen[b] = true
		}
	}
	return picked
}

// HottestBlocks returns up to n block ids in descending window access
// count (ties broken by id so the result is deterministic). The cache
// ablation uses it to measure how much of the statistics service's hot
// set the decoded-block cache actually holds.
func (t *CoAccessTracker) HottestBlocks(n int) []model.BlockID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || len(t.counts) == 0 {
		return nil
	}
	ids := make([]model.BlockID, 0, len(t.counts))
	for b := range t.counts {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool {
		if t.counts[ids[i]] != t.counts[ids[j]] {
			return t.counts[ids[i]] > t.counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}

// TrackedBlocks returns the number of blocks with live statistics.
func (t *CoAccessTracker) TrackedBlocks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.counts)
}

// MemoryFootprint approximates the tracker's live memory in bytes, used to
// reproduce the resource accounting of Table III.
func (t *CoAccessTracker) MemoryFootprint() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	const (
		blockIDBytes = 24 // string header + short id
		mapEntry     = 48
	)
	bytes := len(t.counts) * (blockIDBytes + mapEntry)
	for _, m := range t.pairs {
		bytes += mapEntry + len(m)*(blockIDBytes+mapEntry)
	}
	for _, q := range t.window {
		bytes += len(q) * blockIDBytes
	}
	bytes += len(t.recent) * blockIDBytes
	return bytes
}

func dedup(q []model.BlockID) []model.BlockID {
	out := make([]model.BlockID, 0, len(q))
	seen := make(map[model.BlockID]bool, len(q))
	for _, b := range q {
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	return out
}
