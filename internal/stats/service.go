package stats

import (
	"context"
	"fmt"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/wire"
)

// Aggregator is the statistics service state: one co-access tracker, one
// load tracker and one probe estimator, as deployed on the paper's
// dedicated statistics machine.
type Aggregator struct {
	CoAccess *CoAccessTracker
	Loads    *LoadTracker
	Probes   *ProbeEstimator

	reg         *obs.Registry
	accesses    *obs.Counter
	loadReports *obs.Counter
	probeObs    *obs.Counter
}

// EnableMetrics exports statistics-service instrumentation into reg (nil
// disables it, which is the default).
func (a *Aggregator) EnableMetrics(reg *obs.Registry) {
	a.reg = reg
	a.accesses = reg.Counter("stats_accesses_total", "sampled multi-block requests recorded")
	a.loadReports = reg.Counter("stats_load_reports_total", "site load windows reported")
	a.probeObs = reg.Counter("stats_probe_observations_total", "probe RTT observations folded into o_j")
}

// MetricsSnapshot captures the aggregator's registry (empty when metrics
// are disabled). Served remotely by the GetMetrics RPC method.
func (a *Aggregator) MetricsSnapshot() *obs.Snapshot {
	return a.reg.Snapshot()
}

// RecordAccess feeds one sampled request into the co-access tracker,
// counting it. Equivalent to calling CoAccess.Record directly, plus
// instrumentation.
func (a *Aggregator) RecordAccess(ids []model.BlockID) {
	a.accesses.Inc()
	a.CoAccess.Record(ids)
}

// ReportLoad feeds one site load window into the load tracker, counting it.
func (a *Aggregator) ReportLoad(site model.SiteID, load SiteLoad) {
	a.loadReports.Inc()
	a.Loads.Report(site, load)
}

// ObserveProbe feeds one probe RTT into the o_j estimator, counting it.
func (a *Aggregator) ObserveProbe(site model.SiteID, rtt float64) {
	a.probeObs.Inc()
	a.Probes.Observe(site, rtt)
}

// NewAggregator builds a statistics service with the given co-access
// window (0 = the paper's 5000 requests).
func NewAggregator(window int) *Aggregator {
	return &Aggregator{
		CoAccess: NewCoAccessTracker(window),
		Loads:    NewLoadTracker(),
		Probes:   NewProbeEstimator(0.3),
	}
}

// RPC method numbers of the statistics service. New methods are appended
// at the end of the iota block — numbers are part of the wire protocol and
// must never be reordered (see DESIGN.md, "RPC method numbering").
const (
	methodRecordAccess rpc.Method = iota + 1
	methodReportLoad
	methodObserveProbe
	methodGetCosts
	methodGetLoads
	methodGetPartners
	methodGetMetrics
)

// Server exposes an Aggregator over RPC.
type Server struct {
	agg *Aggregator
}

// NewServer wraps an aggregator.
func NewServer(agg *Aggregator) *Server { return &Server{agg: agg} }

var _ rpc.Handler = (*Server)(nil)

// Handle dispatches one statistics RPC.
func (s *Server) Handle(_ context.Context, method rpc.Method, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	switch method {
	case methodRecordAccess:
		n := int(d.Uint32())
		ids := make([]model.BlockID, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, model.BlockID(d.String()))
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		s.agg.RecordAccess(ids)
		return nil, nil

	case methodReportLoad:
		site := model.SiteID(d.Int64())
		load := SiteLoad{
			CPU:           d.Float64(),
			IOBytesPerSec: d.Float64(),
			Chunks:        int(d.Uint32()),
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		s.agg.ReportLoad(site, load)
		return nil, nil

	case methodObserveProbe:
		site := model.SiteID(d.Int64())
		rtt := d.Float64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		s.agg.ObserveProbe(site, rtt)
		return nil, nil

	case methodGetCosts:
		defaultO := d.Float64()
		m := d.Float64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		costs := s.agg.Probes.Costs(defaultO, m)
		e := wire.NewEncoder(16 * len(costs.O))
		e.Float64(costs.DefaultO)
		e.Float64(costs.DefaultM)
		e.Uint32(uint32(len(costs.O)))
		for _, site := range sortedSiteKeys(costs.O) {
			e.Int64(int64(site))
			e.Float64(costs.O[site])
		}
		return e.Bytes(), nil

	case methodGetLoads:
		snap := s.agg.Loads.Snapshot()
		e := wire.NewEncoder(32 * len(snap))
		e.Uint32(uint32(len(snap)))
		for _, site := range sortedLoadKeys(snap) {
			load := snap[site]
			e.Int64(int64(site))
			e.Float64(load.CPU)
			e.Float64(load.IOBytesPerSec)
			e.Uint32(uint32(load.Chunks))
		}
		return e.Bytes(), nil

	case methodGetMetrics:
		return obs.MarshalSnapshot(s.agg.MetricsSnapshot()), nil

	case methodGetPartners:
		block := model.BlockID(d.String())
		max := int(d.Uint32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		ps := s.agg.CoAccess.Partners(block, max)
		e := wire.NewEncoder(32 * len(ps))
		e.Uint32(uint32(len(ps)))
		for _, p := range ps {
			e.String(string(p.Block))
			e.Float64(p.Lambda)
		}
		return e.Bytes(), nil

	default:
		return nil, fmt.Errorf("stats: unknown method %d", method)
	}
}

// Client is the RPC-backed view of a remote statistics service.
type Client struct {
	rc *rpc.Client
}

// NewClient wraps an RPC client connected to a statistics server.
func NewClient(rc *rpc.Client) *Client { return &Client{rc: rc} }

// RecordAccess reports one sampled multi-block request.
func (c *Client) RecordAccess(ids []model.BlockID) error {
	e := wire.NewEncoder(16 * len(ids))
	e.Uint32(uint32(len(ids)))
	for _, id := range ids {
		e.String(string(id))
	}
	_, err := c.rc.Call(methodRecordAccess, e.Bytes())
	return err
}

// ReportLoad reports one site's load window.
func (c *Client) ReportLoad(site model.SiteID, load SiteLoad) error {
	e := wire.NewEncoder(32)
	e.Int64(int64(site))
	e.Float64(load.CPU)
	e.Float64(load.IOBytesPerSec)
	e.Uint32(uint32(load.Chunks))
	_, err := c.rc.Call(methodReportLoad, e.Bytes())
	return err
}

// ObserveProbe folds one probe RTT into the remote o_j estimate.
func (c *Client) ObserveProbe(site model.SiteID, rtt float64) error {
	e := wire.NewEncoder(16)
	e.Int64(int64(site))
	e.Float64(rtt)
	_, err := c.rc.Call(methodObserveProbe, e.Bytes())
	return err
}

// GetCosts fetches the current cost model.
func (c *Client) GetCosts(defaultO, m float64) (*model.SiteCosts, error) {
	e := wire.NewEncoder(16)
	e.Float64(defaultO)
	e.Float64(m)
	resp, err := c.rc.Call(methodGetCosts, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	costs := &model.SiteCosts{
		DefaultO: d.Float64(),
		DefaultM: d.Float64(),
		O:        make(map[model.SiteID]float64),
	}
	n := int(d.Uint32())
	for i := 0; i < n; i++ {
		site := model.SiteID(d.Int64())
		costs.O[site] = d.Float64()
	}
	return costs, d.Err()
}

// GetLoads fetches the current per-site load table.
func (c *Client) GetLoads() (map[model.SiteID]SiteLoad, error) {
	resp, err := c.rc.Call(methodGetLoads, nil)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	out := make(map[model.SiteID]SiteLoad, n)
	for i := 0; i < n; i++ {
		site := model.SiteID(d.Int64())
		out[site] = SiteLoad{
			CPU:           d.Float64(),
			IOBytesPerSec: d.Float64(),
			Chunks:        int(d.Uint32()),
		}
	}
	return out, d.Err()
}

// Metrics fetches the remote statistics service's metrics snapshot.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	resp, err := c.rc.Call(methodGetMetrics, nil)
	if err != nil {
		return nil, err
	}
	return obs.UnmarshalSnapshot(resp)
}

// GetPartners fetches a block's co-access partners with λ values.
func (c *Client) GetPartners(block model.BlockID, max int) ([]Partner, error) {
	e := wire.NewEncoder(24)
	e.String(string(block))
	e.Uint32(uint32(max))
	resp, err := c.rc.Call(methodGetPartners, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	out := make([]Partner, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Partner{
			Block:  model.BlockID(d.String()),
			Lambda: d.Float64(),
		})
	}
	return out, d.Err()
}

func sortedSiteKeys(m map[model.SiteID]float64) []model.SiteID {
	out := make([]model.SiteID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sortSites(out)
	return out
}

func sortedLoadKeys(m map[model.SiteID]SiteLoad) []model.SiteID {
	out := make([]model.SiteID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sortSites(out)
	return out
}

func sortSites(s []model.SiteID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
