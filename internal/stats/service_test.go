package stats

import (
	"math"
	"testing"

	"ecstore/internal/rpc"
	"ecstore/internal/transport"
)

func startStatsRPC(t *testing.T) (*Client, *Aggregator, func()) {
	t.Helper()
	agg := NewAggregator(100)
	net := transport.NewMemory()
	l, err := net.Listen("stats")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(NewServer(agg))
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	conn, err := net.Dial("stats")
	if err != nil {
		t.Fatal(err)
	}
	rc := rpc.NewClient(conn)
	cleanup := func() {
		_ = rc.Close()
		_ = srv.Close()
		<-done
		net.Close()
	}
	return NewClient(rc), agg, cleanup
}

func TestStatsRPCRecordAccessAndPartners(t *testing.T) {
	client, agg, cleanup := startStatsRPC(t)
	defer cleanup()

	for i := 0; i < 4; i++ {
		if err := client.RecordAccess(ids("a", "b")); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.RecordAccess(ids("a", "c")); err != nil {
		t.Fatal(err)
	}

	// Server-side state updated.
	if got := agg.CoAccess.Lambda("a", "b"); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("server λ(a,b) = %v, want 0.8", got)
	}
	// Partners over RPC.
	ps, err := client.GetPartners("a", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Block != "b" {
		t.Fatalf("partners = %v", ps)
	}
	if math.Abs(ps[0].Lambda-0.8) > 1e-12 {
		t.Fatalf("λ over RPC = %v", ps[0].Lambda)
	}
}

func TestStatsRPCLoadsAndCosts(t *testing.T) {
	client, _, cleanup := startStatsRPC(t)
	defer cleanup()

	if err := client.ReportLoad(3, SiteLoad{CPU: 0.7, IOBytesPerSec: 1234, Chunks: 42}); err != nil {
		t.Fatal(err)
	}
	loads, err := client.GetLoads()
	if err != nil {
		t.Fatal(err)
	}
	if got := loads[3]; got.CPU != 0.7 || got.IOBytesPerSec != 1234 || got.Chunks != 42 {
		t.Fatalf("loads[3] = %+v", got)
	}

	if err := client.ObserveProbe(3, 0.005); err != nil {
		t.Fatal(err)
	}
	costs, err := client.GetCosts(0.001, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if got := costs.OCost(3); math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("o_3 over RPC = %v", got)
	}
	if got := costs.OCost(9); got != 0.001 {
		t.Fatalf("default o = %v", got)
	}
	if got := costs.MCost(3); got != 1e-8 {
		t.Fatalf("m over RPC = %v", got)
	}
}

func TestStatsRPCEmptyPartners(t *testing.T) {
	client, _, cleanup := startStatsRPC(t)
	defer cleanup()
	ps, err := client.GetPartners("never-seen", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Fatalf("partners = %v", ps)
	}
}

func TestAggregatorDefaults(t *testing.T) {
	agg := NewAggregator(0)
	if agg.CoAccess == nil || agg.Loads == nil || agg.Probes == nil {
		t.Fatal("aggregator components missing")
	}
}
