package stats

import (
	"math"
	"sort"
	"sync"

	"ecstore/internal/model"
)

// SiteLoad is one load report from a storage service (Section V-A): CPU
// utilization in [0, 1], the I/O read rate in bytes/second, and the number
// of chunks stored.
type SiteLoad struct {
	CPU           float64
	IOBytesPerSec float64
	Chunks        int
}

// LoadTracker aggregates per-site load reports and derives the paper's load
// quantities: ω(C, S_j) per site, the mean load ω̄(C), and the balance
// factor Ω(C, S_j) = |1 − ω(C,S_j)/ω̄(C)|. It is safe for concurrent use.
type LoadTracker struct {
	mu    sync.Mutex
	sites map[model.SiteID]SiteLoad
	// ioScale converts an I/O rate into the same unit as CPU utilization
	// when combining the two into ω. It adapts to the maximum observed
	// rate so that ω stays comparable across report rounds.
	ioScale float64
}

// NewLoadTracker returns an empty tracker.
func NewLoadTracker() *LoadTracker {
	return &LoadTracker{sites: make(map[model.SiteID]SiteLoad)}
}

// Report records the latest load sample for a site, replacing the previous
// one (storage services report every few seconds; only the freshest sample
// matters for movement decisions).
func (l *LoadTracker) Report(site model.SiteID, load SiteLoad) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sites[site] = load
	if load.IOBytesPerSec > l.ioScale {
		l.ioScale = load.IOBytesPerSec
	}
}

// Remove drops a site (after permanent failure).
func (l *LoadTracker) Remove(site model.SiteID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.sites, site)
}

// Sites returns the tracked site ids in ascending order.
func (l *LoadTracker) Sites() []model.SiteID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]model.SiteID, 0, len(l.sites))
	for s := range l.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// omegaLocked computes ω for one site. Caller holds l.mu.
func (l *LoadTracker) omegaLocked(load SiteLoad) float64 {
	io := 0.0
	if l.ioScale > 0 {
		io = load.IOBytesPerSec / l.ioScale
	}
	return load.CPU + io
}

// Omega returns ω(C, S_j) for a site; 0 when the site has never reported.
func (l *LoadTracker) Omega(site model.SiteID) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.omegaLocked(l.sites[site])
}

// MeanOmega returns ω̄(C), the average load across tracked sites.
func (l *LoadTracker) MeanOmega() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.meanOmegaLocked()
}

func (l *LoadTracker) meanOmegaLocked() float64 {
	if len(l.sites) == 0 {
		return 0
	}
	var sum float64
	for _, load := range l.sites {
		sum += l.omegaLocked(load)
	}
	return sum / float64(len(l.sites))
}

// BalanceFactor returns Ω(C, S_j) = |1 − ω/ω̄|; 0 when no load has been
// reported anywhere.
func (l *LoadTracker) BalanceFactor(site model.SiteID) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	mean := l.meanOmegaLocked()
	if mean == 0 {
		return 0
	}
	return math.Abs(1 - l.omegaLocked(l.sites[site])/mean)
}

// ImbalanceGain computes I(C, b, s, d) of Equation 7: the reduction of the
// worst balance factor across source s and destination d when `shift` units
// of ω move from s to d. Positive values mean the move improves balance.
func (l *LoadTracker) ImbalanceGain(s, d model.SiteID, shift float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	mean := l.meanOmegaLocked()
	if mean == 0 {
		return 0
	}
	ws := l.omegaLocked(l.sites[s])
	wd := l.omegaLocked(l.sites[d])
	if shift < 0 {
		shift = 0
	}
	if shift > ws {
		shift = ws
	}
	before := math.Max(math.Abs(1-ws/mean), math.Abs(1-wd/mean))
	after := math.Max(math.Abs(1-(ws-shift)/mean), math.Abs(1-(wd+shift)/mean))
	return before - after
}

// LoadShare estimates the fraction of site s's ω attributable to serving a
// chunk with the given bytes-per-second demand, used to size the shift for
// ImbalanceGain. The result is clamped to [0, 1].
func (l *LoadTracker) LoadShare(s model.SiteID, chunkBytesPerSec float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	load := l.sites[s]
	if load.IOBytesPerSec <= 0 || chunkBytesPerSec <= 0 {
		return 0
	}
	share := chunkBytesPerSec / load.IOBytesPerSec
	if share > 1 {
		share = 1
	}
	return share
}

// ApplyShift moves `fraction` of the source site's reported CPU and I/O
// load onto the destination, the paper's proportional-shift bookkeeping
// ("we proportionally shift the CPU utilization and I/O load from the
// source site to the destination site", Section IV-C), applied after a
// movement executes so subsequent decisions see the new state before the
// next report round.
func (l *LoadTracker) ApplyShift(src, dst model.SiteID, fraction float64) {
	if fraction <= 0 {
		return
	}
	if fraction > 1 {
		fraction = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.sites[src]
	d := l.sites[dst]
	dCPU := s.CPU * fraction
	dIO := s.IOBytesPerSec * fraction
	s.CPU -= dCPU
	s.IOBytesPerSec -= dIO
	d.CPU += dCPU
	d.IOBytesPerSec += dIO
	s.Chunks--
	d.Chunks++
	l.sites[src] = s
	l.sites[dst] = d
}

// SitesByLoadDesc returns site ids ordered from most to least loaded, the
// iteration order of Algorithm 1's source-chunk loop.
func (l *LoadTracker) SitesByLoadDesc() []model.SiteID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]model.SiteID, 0, len(l.sites))
	for s := range l.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		wi := l.omegaLocked(l.sites[out[i]])
		wj := l.omegaLocked(l.sites[out[j]])
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	return out
}

// Snapshot returns a copy of the current load table.
func (l *LoadTracker) Snapshot() map[model.SiteID]SiteLoad {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[model.SiteID]SiteLoad, len(l.sites))
	for s, v := range l.sites {
		out[s] = v
	}
	return out
}

// ProbeEstimator derives o_j from load-status probe round trips with an
// exponentially weighted moving average (Section V-B3: o_j is set from the
// average response time of periodic load-status requests).
type ProbeEstimator struct {
	mu    sync.Mutex
	alpha float64
	o     map[model.SiteID]float64
}

// NewProbeEstimator returns an estimator with EWMA factor alpha in (0, 1];
// out-of-range values fall back to 0.3.
func NewProbeEstimator(alpha float64) *ProbeEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &ProbeEstimator{alpha: alpha, o: make(map[model.SiteID]float64)}
}

// Observe folds one probe round-trip time (any consistent unit) into the
// site's o_j estimate.
func (p *ProbeEstimator) Observe(site model.SiteID, rtt float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.o[site]; ok {
		p.o[site] = (1-p.alpha)*cur + p.alpha*rtt
	} else {
		p.o[site] = rtt
	}
}

// O returns the current o_j estimate, or def when the site has no samples.
func (p *ProbeEstimator) O(site model.SiteID, def float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.o[site]; ok {
		return v
	}
	return def
}

// Costs materializes a model.SiteCosts from current estimates: o_j from
// probes and a constant m_j (homogeneous media, as in the paper's testbed).
func (p *ProbeEstimator) Costs(defaultO, m float64) *model.SiteCosts {
	p.mu.Lock()
	defer p.mu.Unlock()
	o := make(map[model.SiteID]float64, len(p.o))
	for s, v := range p.o {
		o[s] = v
	}
	return &model.SiteCosts{O: o, DefaultO: defaultO, DefaultM: m}
}

// AverageO returns the mean o_j estimate across sites (avg(o_j), used to
// initialize the movement weight w2), or def when empty.
func (p *ProbeEstimator) AverageO(def float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.o) == 0 {
		return def
	}
	var sum float64
	for _, v := range p.o {
		sum += v
	}
	return sum / float64(len(p.o))
}
