package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

// echoHandler echoes the body for method 1, errors for method 2, and
// reverses for method 3.
func echoHandler(_ context.Context, method Method, body []byte) ([]byte, error) {
	switch method {
	case 1:
		return body, nil
	case 2:
		return nil, errors.New("boom")
	case 3:
		out := make([]byte, len(body))
		for i, b := range body {
			out[len(body)-1-i] = b
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown method %d", method)
	}
}

// startServer runs a server on the memory network and returns a connected
// client plus a cleanup function.
func startServer(t *testing.T, h Handler) (*Client, func()) {
	t.Helper()
	net := transport.NewMemory()
	l, err := net.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(l)
	}()
	conn, err := net.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn)
	cleanup := func() {
		_ = client.Close()
		_ = srv.Close()
		<-done
		net.Close()
	}
	return client, cleanup
}

func TestCallRoundTrip(t *testing.T) {
	client, cleanup := startServer(t, HandlerFunc(echoHandler))
	defer cleanup()

	resp, err := client.Call(1, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Fatalf("resp = %q", resp)
	}

	rev, err := client.Call(3, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(rev) != "cba" {
		t.Fatalf("rev = %q", rev)
	}
}

func TestCallRemoteError(t *testing.T) {
	client, cleanup := startServer(t, HandlerFunc(echoHandler))
	defer cleanup()

	_, err := client.Call(2, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *RemoteError", err, err)
	}
	if re.Msg != "boom" {
		t.Fatalf("remote msg = %q", re.Msg)
	}
}

func TestConcurrentCalls(t *testing.T) {
	client, cleanup := startServer(t, HandlerFunc(echoHandler))
	defer cleanup()

	const n = 50
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			resp, err := client.Call(1, []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(resp) != want {
				errs <- fmt.Errorf("resp %q != %q", resp, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCallAfterClose(t *testing.T) {
	client, cleanup := startServer(t, HandlerFunc(echoHandler))
	defer cleanup()

	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(1, nil); err == nil {
		t.Fatal("Call succeeded after Close")
	}
}

func TestPendingCallsFailOnConnectionLoss(t *testing.T) {
	block := make(chan struct{})
	slow := HandlerFunc(func(_ context.Context, m Method, body []byte) ([]byte, error) {
		<-block
		return body, nil
	})
	net := transport.NewMemory()
	l, err := net.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(slow)
	go func() { _ = srv.Serve(l) }()
	conn, err := net.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn)

	callErr := make(chan error, 1)
	go func() {
		_, err := client.Call(1, []byte("x"))
		callErr <- err
	}()
	// Kill the transport under the in-flight call.
	_ = conn.Close()
	if err := <-callErr; err == nil {
		t.Fatal("in-flight call survived connection loss")
	}
	close(block)
	_ = srv.Close()
	net.Close()
	_ = client.Close()
}

// TestCallContextDeadline verifies a hung handler cannot stall a caller
// past its deadline, and that the abandoned response is discarded without
// corrupting later calls on the same connection.
func TestCallContextDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	hang := HandlerFunc(func(ctx context.Context, m Method, body []byte) ([]byte, error) {
		if m == 9 {
			select {
			case <-block:
			case <-ctx.Done():
			}
		}
		return body, nil
	})
	client, cleanup := startServer(t, hang)
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.CallContext(ctx, 9, []byte("stuck"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline call took %v", elapsed)
	}
	// The connection stays usable for subsequent calls.
	resp, err := client.Call(1, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "after" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestHandlerContextCanceledOnConnClose verifies the server cancels the
// per-connection handler context when the connection drops.
func TestHandlerContextCanceledOnConnClose(t *testing.T) {
	canceled := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, m Method, body []byte) ([]byte, error) {
		<-ctx.Done()
		close(canceled)
		return nil, ctx.Err()
	})
	net := transport.NewMemory()
	defer net.Close()
	l, err := net.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	go func() { _ = srv.Serve(l) }()
	conn, err := net.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn)
	go func() { _, _ = client.Call(1, nil) }()
	// Give the request a moment to reach the handler, then drop the conn.
	time.Sleep(5 * time.Millisecond)
	_ = conn.Close()
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("handler context never canceled after connection close")
	}
	_ = srv.Close()
	_ = client.Close()
}

func TestServerRejectsMalformedFrame(t *testing.T) {
	net := transport.NewMemory()
	l, err := net.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(HandlerFunc(echoHandler))
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	conn, err := net.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	// A frame shorter than the 9-byte header: server drops the conn.
	if err := wire.WriteFrame(conn, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The connection should be closed by the server; a subsequent read
	// returns an error.
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("server kept malformed connection open")
	}
	_ = conn.Close()
	_ = srv.Close()
	<-done
	net.Close()
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(HandlerFunc(echoHandler))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOverTCP(t *testing.T) {
	tcp := &transport.TCP{}
	l, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(HandlerFunc(echoHandler))
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	conn, err := tcp.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn)
	resp, err := client.Call(1, []byte("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "tcp" {
		t.Fatalf("resp = %q", resp)
	}
	_ = client.Close()
	_ = srv.Close()
	<-done
}
