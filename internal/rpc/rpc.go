// Package rpc implements the remote-procedure-call substrate connecting
// EC-Store's services (the paper's deployment uses Apache Thrift). It
// provides a concurrent client with request pipelining/multiplexing and a
// server that dispatches method handlers, both over any net.Conn.
//
// Protocol (all frames produced by package wire):
//
//	request frame:  uint64 request id | uint8 method | body...
//	response frame: uint64 request id | uint8 status | body-or-error...
package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/wire"
)

// Method identifies an RPC endpoint within a service.
type Method uint8

// Status bytes in response frames.
const (
	statusOK  = 0
	statusErr = 1
)

// Errors returned by the client.
var (
	ErrClientClosed = errors.New("rpc: client closed")
	ErrShortFrame   = errors.New("rpc: malformed frame")
)

// RemoteError is an application error transported from the server.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// Handler dispatches one request. Implementations must be safe for
// concurrent use; the server invokes handlers from multiple goroutines.
// The context is canceled when the request's connection closes or the
// server shuts down, so long-running handlers can abandon work whose
// caller is gone.
type Handler interface {
	Handle(ctx context.Context, method Method, body []byte) ([]byte, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, method Method, body []byte) ([]byte, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, method Method, body []byte) ([]byte, error) {
	return f(ctx, method, body)
}

var _ Handler = (HandlerFunc)(nil)

// Metrics instruments one RPC endpoint (a server or a client). All fields
// are nil-safe, so a nil *Metrics disables instrumentation entirely.
type Metrics struct {
	// Requests counts dispatched requests (server) or issued calls
	// (client).
	Requests *obs.Counter
	// Errors counts handler errors (server) or failed calls (client).
	Errors *obs.Counter
	// Latency is the request service time (server: handler execution;
	// client: full round trip including queueing).
	Latency *obs.Histogram
	// Conns gauges currently open connections (server only).
	Conns *obs.Gauge
}

// NewMetrics registers the standard instrument set under the given name
// prefix (for example "rpc_server" yields rpc_server_requests_total,
// rpc_server_errors_total, rpc_server_seconds, rpc_server_conns). A nil
// registry yields nil, which disables instrumentation.
func NewMetrics(reg *obs.Registry, prefix string) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Requests: reg.Counter(prefix+"_requests_total", "RPC requests dispatched"),
		Errors:   reg.Counter(prefix+"_errors_total", "RPC requests that returned an error"),
		Latency:  reg.Histogram(prefix+"_seconds", "RPC request latency"),
		Conns:    reg.Gauge(prefix+"_conns", "open RPC connections"),
	}
}

// observe records one completed request. Nil-safe.
func (m *Metrics) observe(start time.Time, err error) {
	if m == nil {
		return
	}
	m.Requests.Inc()
	if err != nil {
		m.Errors.Inc()
	}
	m.Latency.ObserveSince(start)
}

func (m *Metrics) connDelta(d int64) {
	if m == nil {
		return
	}
	m.Conns.Add(d)
}

// Server accepts connections and serves requests against a Handler.
type Server struct {
	handler Handler
	metrics *Metrics

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server for the handler.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]bool)}
}

// SetMetrics attaches instrumentation (nil disables it). Call before Serve.
func (s *Server) SetMetrics(m *Metrics) { s.metrics = m }

// Serve accepts connections from l until Close is called or the listener
// fails. It blocks; run it in a goroutine the caller owns.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server closed")
	}
	s.listener = l
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every connection, and waits for in-flight
// requests to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if l != nil {
		err = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// serveConn processes requests from one connection until it closes.
// Requests are handled concurrently; responses are serialized by a write
// mutex so interleaved handlers cannot corrupt framing. Every handler
// shares a per-connection context canceled when the connection drops, so
// abandoned requests stop consuming the server.
func (s *Server) serveConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	s.metrics.connDelta(1)
	defer s.metrics.connDelta(-1)
	//lint:ignore ctxfirst per-connection lifecycle root (canceled when the connection drops); no caller context exists at accept time, matching net/http
	ctx, cancel := context.WithCancel(context.Background())
	var writeMu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()
	// Declared after handlers.Wait so LIFO runs cancel first: in-flight
	// handlers observe the cancellation instead of being waited on.
	defer cancel()

	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		if len(frame) < 9 {
			return // malformed peer; drop the connection
		}
		d := wire.NewDecoder(frame)
		reqID := d.Uint64()
		method := Method(d.Uint8())
		body := frame[9:]

		handlers.Add(1)
		go func() {
			defer handlers.Done()
			start := time.Now()
			result, herr := s.handler.Handle(ctx, method, body)
			s.metrics.observe(start, herr)
			// The response header rides a pooled encoder and the handler's
			// result goes out as the frame's vectored payload, so chunk-sized
			// results are never copied into an encoder buffer.
			e := wire.GetEncoder()
			e.Uint64(reqID)
			if herr != nil {
				e.Uint8(statusErr)
				e.String(herr.Error())
				result = nil
			} else {
				e.Uint8(statusOK)
			}
			writeMu.Lock()
			_ = wire.WriteFrameBuffers(conn, e.Bytes(), result)
			writeMu.Unlock()
			wire.PutEncoder(e)
		}()
	}
}

// Client is a concurrent RPC client over a single connection. Multiple
// goroutines may Call simultaneously; requests are pipelined and responses
// are matched by request id.
type Client struct {
	conn    net.Conn
	metrics *Metrics

	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	closed  bool
	readErr error

	done chan struct{}
}

type response struct {
	body []byte
	err  error
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// SetMetrics attaches instrumentation (nil disables it).
func (c *Client) SetMetrics(m *Metrics) { c.metrics = m }

// Close terminates the connection and fails all pending calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// Call sends one request and waits for its response with no deadline.
//
//lint:ignore ctxfirst context-free convenience entry over CallContext for callers with no deadline policy
func (c *Client) Call(method Method, body []byte) ([]byte, error) {
	return c.CallContext(context.Background(), method, body)
}

// CallContext sends one request and waits for its response until the
// context is done. An abandoned call's response is discarded by the read
// loop when it eventually arrives; the request keeps executing on the
// server (there is no cancel frame in the protocol), matching how a
// network timeout behaves against a slow peer.
func (c *Client) CallContext(ctx context.Context, method Method, body []byte) ([]byte, error) {
	return c.CallContextPayload(ctx, method, body, nil)
}

// CallContextPayload is CallContext with a raw trailing payload that is
// written to the connection directly (vectored, via net.Buffers) instead
// of being copied into the request encoder. On the wire the request body
// is simply body followed by payload; the server cannot tell the two
// apart. Neither slice is retained after the call returns, but payload
// must stay immutable until then — it may be mid-write on the socket.
func (c *Client) CallContextPayload(ctx context.Context, method Method, body, payload []byte) ([]byte, error) {
	start := time.Now()
	resp, err := c.call(ctx, method, body, payload)
	c.metrics.observe(start, err)
	return resp, err
}

func (c *Client) call(ctx context.Context, method Method, body, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan response, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	// Request header and body ride a pooled encoder; payload (chunk
	// data) is attached as the frame's vectored tail without a copy.
	e := wire.GetEncoder()
	e.Uint64(id)
	e.Uint8(uint8(method))
	e.Raw(body)

	c.writeMu.Lock()
	err := wire.WriteFrameBuffers(c.conn, e.Bytes(), payload)
	c.writeMu.Unlock()
	wire.PutEncoder(e)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("send request: %w", err)
	}

	select {
	case resp := <-ch:
		return resp.body, resp.err
	case <-ctx.Done():
		// Abandon the call: drop the pending entry so the read loop
		// treats the eventual response as stale.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// readLoop dispatches responses to waiting callers until the connection
// fails or the client closes.
func (c *Client) readLoop() {
	defer close(c.done)
	for {
		frame, err := wire.ReadFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		if len(frame) < 9 {
			c.failAll(ErrShortFrame)
			return
		}
		d := wire.NewDecoder(frame)
		id := d.Uint64()
		status := d.Uint8()
		body := frame[9:]

		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if !ok {
			continue // stale response for an abandoned request
		}
		if status == statusOK {
			ch <- response{body: body}
		} else {
			msg := wire.NewDecoder(body).String()
			ch <- response{err: &RemoteError{Msg: msg}}
		}
	}
}

// failAll fails every pending call with err and marks the client closed.
// The pending set is detached under the lock and notified after it is
// released: the response channels are buffered, but sending while
// holding c.mu would couple this mutex to every waiter's progress.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
	}
	if c.readErr == nil {
		c.readErr = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan response)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- response{err: fmt.Errorf("rpc: connection failed: %w", err)}
	}
}
