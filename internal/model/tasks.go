package model

import "fmt"

// TaskState is the lifecycle state of one background task. Transitions:
//
//	Pending -> Running -> Done
//	                   \-> Pending (retryable failure, Attempts++)
//	                   \-> Failed  (attempts exhausted)
//
// A Running task found in the catalog at scheduler startup reverts to
// Pending: the process that ran it died mid-task, and every task type is
// designed to be re-entrant from its Cursor.
type TaskState int

// Task lifecycle states.
const (
	TaskPending TaskState = iota + 1
	TaskRunning
	TaskDone
	TaskFailed
)

func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// Background task types understood by the scheduler's executor registry.
// The strings are part of the persisted task state (and the wire format
// of the task RPCs), so they must never be renamed.
const (
	// TaskTypeRepairSite reconstructs every chunk a failed site held.
	TaskTypeRepairSite = "repair-site"
	// TaskTypeRepairChunk reconstructs one corrupt or missing chunk in
	// place (enqueued by the scrubber).
	TaskTypeRepairChunk = "repair-chunk"
	// TaskTypeMove executes one selected chunk movement plan.
	TaskTypeMove = "move"
	// TaskTypeScrubSite sweeps one site's chunks, verifying checksums at
	// a bounded byte rate and enqueueing repair for corrupt/missing data.
	TaskTypeScrubSite = "scrub-site"
	// TaskTypeDrainSite moves every chunk off a draining site, then marks
	// it decommissioned.
	TaskTypeDrainSite = "drain-site"
)

// Task priorities: higher runs first. Repair outranks scrubbing and
// movement because lost redundancy is the only state that loses data.
const (
	PriorityRepair = 100
	PriorityDrain  = 60
	PriorityScrub  = 40
	PriorityMove   = 20
)

// TaskRecord is the persisted state of one background task. It lives in
// the metadata catalog so tasks survive a scheduler restart and any
// control-plane process (or the CLI) can enqueue and inspect them.
//
// The payload fields (Site, Block, Chunk, Dest) are interpreted per
// Type; unused fields hold zero values. Cursor carries resumable
// progress (e.g. the last chunk ref a scrub verified) and is opaque to
// the scheduler.
type TaskRecord struct {
	// ID uniquely names the task. Enqueueing a second task with the same
	// ID while one is pending or running is a no-op, which is how
	// periodic sources stay idempotent across sweeps and restarts.
	ID   string
	Type string
	// Site is the task's locality key: per-site concurrency caps count
	// running tasks by this field. NoSite for tasks without one.
	Site  SiteID
	Block BlockID
	Chunk int
	Dest  SiteID
	// Priority orders the pending queue (higher first; FIFO within a
	// priority by CreatedNanos, then ID).
	Priority int
	State    TaskState
	// Attempts counts executions so far (including the current one when
	// Running).
	Attempts int
	// Cursor is the task's resumable progress marker.
	Cursor string
	// LastError records the most recent failure, for `tasks` listings.
	LastError string
	// CreatedNanos/UpdatedNanos are injected-clock timestamps (UnixNano).
	CreatedNanos int64
	UpdatedNanos int64
}

// Clone returns a deep copy.
func (t *TaskRecord) Clone() *TaskRecord {
	c := *t
	return &c
}

func (t *TaskRecord) String() string {
	return fmt.Sprintf("%s[%s %s]", t.ID, t.Type, t.State)
}

// SiteState is the administrative state of a storage site, orthogonal to
// its health (a draining site may be perfectly healthy; it just stops
// accepting new chunks while the drain task empties it).
type SiteState int

// Site administrative states.
const (
	// SiteActive accepts new chunks (placement, movement, repair).
	SiteActive SiteState = iota
	// SiteDraining serves reads but receives no new chunks; a drain task
	// is moving its chunks elsewhere.
	SiteDraining
	// SiteDecommissioned holds no chunks and receives none.
	SiteDecommissioned
)

func (s SiteState) String() string {
	switch s {
	case SiteActive:
		return "active"
	case SiteDraining:
		return "draining"
	case SiteDecommissioned:
		return "decommissioned"
	default:
		return fmt.Sprintf("SiteState(%d)", int(s))
	}
}

// SiteInfo is the catalog's administrative record for one site: its
// failure-domain zone label and its lifecycle state. Zone "" means the
// site has no zone assignment (zone constraints then ignore it).
type SiteInfo struct {
	ID    SiteID
	Zone  string
	State SiteState
}

// ZoneOf returns the zone of a site given an info set, "" when unknown.
func ZoneOf(infos map[SiteID]SiteInfo, s SiteID) string {
	return infos[s].Zone
}

// MaxChunksPerZone is the zone-placement constraint for a block with r
// parity chunks: losing one whole zone must cost at most r chunks, so
// reads survive at RS(k, r) margins. For replication (r+1 copies, one
// needed) the same bound keeps at least one copy outside any zone.
func MaxChunksPerZone(r int) int {
	if r < 1 {
		return 1
	}
	return r
}
