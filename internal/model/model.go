// Package model defines the shared vocabulary of EC-Store: blocks, chunks,
// sites, placements and access plans. It sits below every service package
// so that the metadata, statistics, placement, storage and client layers
// can exchange state without import cycles.
package model

import (
	"fmt"
	"sort"
)

// BlockID identifies a stored block (the paper's B_i). Blocks are the unit
// of the client API; chunks are the unit of distribution.
type BlockID string

// SiteID identifies a storage site (the paper's S_j, a physical machine).
type SiteID int

// NoSite is the zero SiteID sentinel for "no site chosen".
const NoSite SiteID = -1

// BlockName returns the canonical id of the i-th block of a generated
// population, shared by workload generators and cluster loaders.
func BlockName(i int) BlockID {
	return BlockID(fmt.Sprintf("b%07d", i))
}

// ChunkRef names one chunk of one block.
type ChunkRef struct {
	Block BlockID
	Chunk int
}

func (c ChunkRef) String() string {
	return fmt.Sprintf("%s/%d", c.Block, c.Chunk)
}

// Scheme describes how a block is made fault tolerant.
type Scheme int

// Fault-tolerance schemes.
const (
	// SchemeErasure stores k data + r parity chunks (RS(k, r)).
	SchemeErasure Scheme = iota + 1
	// SchemeReplicated stores r+1 full copies of the block.
	SchemeReplicated
)

func (s Scheme) String() string {
	switch s {
	case SchemeErasure:
		return "erasure"
	case SchemeReplicated:
		return "replicated"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// PackedMember records one small block sealed into a pack container:
// Off/Len locate its bytes inside the container's logical byte stream.
type PackedMember struct {
	ID  BlockID
	Off int64
	Len int64
}

// BlockMeta is the metadata service's record for one block: the system
// state row C_i in the paper's notation. Sites[c] is the site storing chunk
// c; for replicated blocks each "chunk" is a full copy.
type BlockMeta struct {
	ID     BlockID
	Scheme Scheme
	// Size is the original block length in bytes.
	Size int64
	// K and R are the coding parameters. For replication K is 1 and R
	// is the number of additional copies.
	K int
	R int
	// ChunkSize is the stored size of each chunk in bytes (z_i).
	ChunkSize int64
	// Sites maps chunk id -> site. len(Sites) == K+R for erasure coding
	// and R+1 for replication.
	Sites []SiteID
	// Version increments on every placement change so concurrent
	// movement and access can detect stale plans.
	Version uint64

	// StripeUnit, when positive, marks the block as stripe-interleaved:
	// stripe t holds block bytes [t*K*StripeUnit, (t+1)*K*StripeUnit) and
	// contributes StripeUnit bytes at offset t*StripeUnit of every chunk.
	// ChunkSize is then a whole multiple of StripeUnit. Zero means the
	// legacy contiguous layout (chunk c holds block bytes
	// [c*ChunkSize, (c+1)*ChunkSize)).
	StripeUnit int64

	// Members, on a pack container, lists the small blocks sealed into
	// it. Member blocks have no chunks of their own; the catalog
	// synthesizes their metadata from the container's entry.
	Members []PackedMember
	// PackedIn and PackedOff are set only on synthesized member
	// metadata: the block's bytes are [PackedOff, PackedOff+Size) of
	// container PackedIn. Sites then mirrors the container's placement
	// for health accounting, but the member owns no chunks.
	PackedIn  BlockID
	PackedOff int64
}

// TotalChunks returns the number of stored chunks (or copies).
func (m *BlockMeta) TotalChunks() int {
	if m.Scheme == SchemeReplicated {
		return m.R + 1
	}
	return m.K + m.R
}

// RequiredChunks returns how many chunks a reader needs (k_i; 1 for
// replication).
func (m *BlockMeta) RequiredChunks() int {
	if m.Scheme == SchemeReplicated {
		return 1
	}
	return m.K
}

// SiteSet returns the set of sites holding a chunk of this block.
func (m *BlockMeta) SiteSet() map[SiteID]bool {
	s := make(map[SiteID]bool, len(m.Sites))
	for _, site := range m.Sites {
		if site != NoSite {
			s[site] = true
		}
	}
	return s
}

// ChunksAt returns the chunk ids stored at the given site, in order.
func (m *BlockMeta) ChunksAt(site SiteID) []int {
	var ids []int
	for c, s := range m.Sites {
		if s == site {
			ids = append(ids, c)
		}
	}
	return ids
}

// Clone returns a deep copy.
func (m *BlockMeta) Clone() *BlockMeta {
	c := *m
	c.Sites = append([]SiteID(nil), m.Sites...)
	if m.Members != nil {
		c.Members = append([]PackedMember(nil), m.Members...)
	}
	return &c
}

// Packed reports whether this metadata describes a member of a pack
// container rather than a block with chunks of its own.
func (m *BlockMeta) Packed() bool { return m.PackedIn != "" }

// AccessPlan says which chunks to fetch from which sites for one read
// request: the selected s_ij variables of the paper's ILP.
type AccessPlan struct {
	// Reads maps each accessed site to the chunk fetches issued there.
	Reads map[SiteID][]ChunkRef
}

// NewAccessPlan returns an empty plan.
func NewAccessPlan() *AccessPlan {
	return &AccessPlan{Reads: make(map[SiteID][]ChunkRef)}
}

// Add records that chunk ref is read from site.
func (p *AccessPlan) Add(site SiteID, ref ChunkRef) {
	p.Reads[site] = append(p.Reads[site], ref)
}

// SitesAccessed returns the accessed-site count (the paper's Σ a_j).
func (p *AccessPlan) SitesAccessed() int { return len(p.Reads) }

// ChunkCount returns the total number of chunk fetches in the plan.
func (p *AccessPlan) ChunkCount() int {
	n := 0
	for _, refs := range p.Reads {
		n += len(refs)
	}
	return n
}

// ChunksFor returns how many chunks the plan fetches for the given block.
func (p *AccessPlan) ChunksFor(id BlockID) int {
	n := 0
	for _, refs := range p.Reads {
		for _, ref := range refs {
			if ref.Block == id {
				n++
			}
		}
	}
	return n
}

// SortedSites returns accessed sites in ascending order, for deterministic
// iteration.
func (p *AccessPlan) SortedSites() []SiteID {
	sites := make([]SiteID, 0, len(p.Reads))
	for s := range p.Reads {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites
}

// Clone returns a deep copy of the plan.
func (p *AccessPlan) Clone() *AccessPlan {
	c := NewAccessPlan()
	for site, refs := range p.Reads {
		c.Reads[site] = append([]ChunkRef(nil), refs...)
	}
	return c
}

// SiteCosts carries the cost-model parameters of Section IV: O[j] is the
// overhead of accessing site j (o_j) and M[j] the per-byte read cost of its
// storage medium (m_j). Entries default to DefaultO / DefaultM when absent.
type SiteCosts struct {
	O map[SiteID]float64
	M map[SiteID]float64
	// DefaultO and DefaultM apply to sites missing from the maps.
	DefaultO float64
	DefaultM float64
}

// OCost returns o_j for a site.
func (c *SiteCosts) OCost(j SiteID) float64 {
	if c.O != nil {
		if v, ok := c.O[j]; ok {
			return v
		}
	}
	return c.DefaultO
}

// MCost returns m_j for a site.
func (c *SiteCosts) MCost(j SiteID) float64 {
	if c.M != nil {
		if v, ok := c.M[j]; ok {
			return v
		}
	}
	return c.DefaultM
}

// MovePlan is a selected chunk movement (B_b, S_s, S_d) with its estimated
// benefit Δ(C, b, s, d).
type MovePlan struct {
	Block BlockID
	Chunk int
	From  SiteID
	To    SiteID
	Score float64
}

func (m MovePlan) String() string {
	return fmt.Sprintf("move %s/%d: site %d -> site %d (score %.3f)", m.Block, m.Chunk, m.From, m.To, m.Score)
}

// Breakdown is the per-request response-time decomposition used throughout
// the paper's evaluation (Figures 1, 4b, 4e, 4g). All values are seconds.
type Breakdown struct {
	Metadata float64
	Planning float64
	Retrieve float64
	Decode   float64
}

// Total returns the end-to-end response time.
func (b Breakdown) Total() float64 {
	return b.Metadata + b.Planning + b.Retrieve + b.Decode
}

// Add accumulates another breakdown into this one.
func (b *Breakdown) Add(o Breakdown) {
	b.Metadata += o.Metadata
	b.Planning += o.Planning
	b.Retrieve += o.Retrieve
	b.Decode += o.Decode
}

// Scale multiplies every component by f (used for averaging).
func (b *Breakdown) Scale(f float64) {
	b.Metadata *= f
	b.Planning *= f
	b.Retrieve *= f
	b.Decode *= f
}
