package model

import (
	"math"
	"testing"
)

func TestBlockMetaChunkCounts(t *testing.T) {
	cases := []struct {
		name          string
		meta          BlockMeta
		wantTotal     int
		wantRequired  int
	}{
		{
			name:         "erasure RS(2,2)",
			meta:         BlockMeta{Scheme: SchemeErasure, K: 2, R: 2},
			wantTotal:    4,
			wantRequired: 2,
		},
		{
			name:         "erasure RS(4,2)",
			meta:         BlockMeta{Scheme: SchemeErasure, K: 4, R: 2},
			wantTotal:    6,
			wantRequired: 4,
		},
		{
			name:         "replicated 3 copies",
			meta:         BlockMeta{Scheme: SchemeReplicated, K: 1, R: 2},
			wantTotal:    3,
			wantRequired: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.meta.TotalChunks(); got != tc.wantTotal {
				t.Errorf("TotalChunks() = %d, want %d", got, tc.wantTotal)
			}
			if got := tc.meta.RequiredChunks(); got != tc.wantRequired {
				t.Errorf("RequiredChunks() = %d, want %d", got, tc.wantRequired)
			}
		})
	}
}

func TestBlockMetaSiteSet(t *testing.T) {
	m := BlockMeta{Sites: []SiteID{3, 1, NoSite, 3}}
	set := m.SiteSet()
	if len(set) != 2 || !set[3] || !set[1] {
		t.Fatalf("SiteSet() = %v", set)
	}
}

func TestBlockMetaChunksAt(t *testing.T) {
	m := BlockMeta{Sites: []SiteID{5, 2, 5, 9}}
	got := m.ChunksAt(5)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("ChunksAt(5) = %v, want [0 2]", got)
	}
	if got := m.ChunksAt(7); got != nil {
		t.Fatalf("ChunksAt(7) = %v, want nil", got)
	}
}

func TestBlockMetaCloneIsDeep(t *testing.T) {
	m := &BlockMeta{ID: "b", Sites: []SiteID{1, 2}}
	c := m.Clone()
	c.Sites[0] = 9
	if m.Sites[0] != 1 {
		t.Fatal("Clone aliases Sites")
	}
}

func TestAccessPlanCounters(t *testing.T) {
	p := NewAccessPlan()
	p.Add(1, ChunkRef{Block: "a", Chunk: 0})
	p.Add(1, ChunkRef{Block: "a", Chunk: 1})
	p.Add(2, ChunkRef{Block: "b", Chunk: 0})

	if got := p.SitesAccessed(); got != 2 {
		t.Errorf("SitesAccessed() = %d, want 2", got)
	}
	if got := p.ChunkCount(); got != 3 {
		t.Errorf("ChunkCount() = %d, want 3", got)
	}
	if got := p.ChunksFor("a"); got != 2 {
		t.Errorf("ChunksFor(a) = %d, want 2", got)
	}
	if got := p.ChunksFor("missing"); got != 0 {
		t.Errorf("ChunksFor(missing) = %d, want 0", got)
	}
	sites := p.SortedSites()
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 2 {
		t.Errorf("SortedSites() = %v", sites)
	}
}

func TestAccessPlanCloneIsDeep(t *testing.T) {
	p := NewAccessPlan()
	p.Add(1, ChunkRef{Block: "a", Chunk: 0})
	c := p.Clone()
	c.Add(1, ChunkRef{Block: "a", Chunk: 1})
	if p.ChunkCount() != 1 {
		t.Fatal("Clone aliases reads")
	}
}

func TestSiteCostsDefaults(t *testing.T) {
	c := SiteCosts{DefaultO: 5, DefaultM: 1}
	if got := c.OCost(3); got != 5 {
		t.Errorf("OCost default = %v", got)
	}
	if got := c.MCost(3); got != 1 {
		t.Errorf("MCost default = %v", got)
	}
	c.O = map[SiteID]float64{3: 9}
	c.M = map[SiteID]float64{3: 2}
	if got := c.OCost(3); got != 9 {
		t.Errorf("OCost override = %v", got)
	}
	if got := c.MCost(3); got != 2 {
		t.Errorf("MCost override = %v", got)
	}
	if got := c.OCost(4); got != 5 {
		t.Errorf("OCost other site = %v", got)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Metadata: 1, Planning: 2, Retrieve: 3, Decode: 4}
	if got := b.Total(); got != 10 {
		t.Errorf("Total() = %v, want 10", got)
	}
	b.Add(Breakdown{Metadata: 1})
	if b.Metadata != 2 {
		t.Errorf("Add: metadata = %v", b.Metadata)
	}
	b.Scale(0.5)
	if math.Abs(b.Metadata-1) > 1e-12 || math.Abs(b.Decode-2) > 1e-12 {
		t.Errorf("Scale: %+v", b)
	}
}

func TestStringers(t *testing.T) {
	if SchemeErasure.String() != "erasure" || SchemeReplicated.String() != "replicated" {
		t.Fatal("Scheme.String mismatch")
	}
	ref := ChunkRef{Block: "blk", Chunk: 2}
	if ref.String() != "blk/2" {
		t.Fatalf("ChunkRef.String() = %q", ref.String())
	}
	mp := MovePlan{Block: "b", Chunk: 1, From: 2, To: 3, Score: 0.5}
	if mp.String() == "" {
		t.Fatal("MovePlan.String empty")
	}
}
