package health

import "sync/atomic"

// Pressure is a lock-free summary of access-tier load that the gateway
// publishes and latency-sensitive policies consume. The gateway updates
// it on every admission decision; the core client reads it on the hedged
// read path: when the access tier is already queueing, firing duplicate
// speculative reads only deepens the overload, so hedging is suppressed
// while Overloaded reports true (the breakers see the same signal via
// the shared Tracker the client feeds them).
//
// The zero value is usable: no pressure, threshold of 1 queued request.
type Pressure struct {
	// queueDepth is the number of admitted requests currently waiting
	// for a concurrency slot (not the in-flight count).
	queueDepth atomic.Int64
	// threshold is the queue depth at or above which the tier counts as
	// overloaded; 0 means 1.
	threshold atomic.Int64

	admitted atomic.Int64
	shed     atomic.Int64
}

// NewPressure builds a Pressure that reports overload once the published
// queue depth reaches threshold (values below 1 mean 1).
func NewPressure(threshold int) *Pressure {
	p := &Pressure{}
	if threshold > 0 {
		p.threshold.Store(int64(threshold))
	}
	return p
}

// SetQueueDepth publishes the current admission-queue depth.
func (p *Pressure) SetQueueDepth(n int) {
	if p == nil {
		return
	}
	p.queueDepth.Store(int64(n))
}

// QueueDepth returns the last published admission-queue depth.
func (p *Pressure) QueueDepth() int {
	if p == nil {
		return 0
	}
	return int(p.queueDepth.Load())
}

// ReportAdmitted counts an admitted request.
func (p *Pressure) ReportAdmitted() {
	if p == nil {
		return
	}
	p.admitted.Add(1)
}

// ReportShed counts a rejected (shed) request.
func (p *Pressure) ReportShed() {
	if p == nil {
		return
	}
	p.shed.Add(1)
}

// Admitted returns the cumulative admitted-request count.
func (p *Pressure) Admitted() int64 {
	if p == nil {
		return 0
	}
	return p.admitted.Load()
}

// Shed returns the cumulative shed-request count.
func (p *Pressure) Shed() int64 {
	if p == nil {
		return 0
	}
	return p.shed.Load()
}

// Overloaded reports whether the access tier is queueing: the published
// queue depth has reached the threshold. A nil Pressure never reports
// overload, so callers can keep an unconditional check on the hot path.
func (p *Pressure) Overloaded() bool {
	if p == nil {
		return false
	}
	th := p.threshold.Load()
	if th < 1 {
		th = 1
	}
	return p.queueDepth.Load() >= th
}
