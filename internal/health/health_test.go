package health

import (
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestTracker(reg *obs.Registry) (*Tracker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	t := NewTracker(Config{
		FailureThreshold: 2,
		OpenBackoff:      10 * time.Second,
		MaxBackoff:       40 * time.Second,
		BackoffFactor:    2,
		Clock:            clk.Now,
		Metrics:          reg,
	})
	return t, clk
}

func TestBreakerLifecycle(t *testing.T) {
	tr, clk := newTestTracker(nil)
	s := model.SiteID(1)

	if !tr.Available(s) || tr.State(s) != Closed {
		t.Fatal("fresh site not closed")
	}

	// One failure below the threshold keeps the breaker closed.
	tr.ReportFailure(s)
	if !tr.Available(s) {
		t.Fatal("opened below threshold")
	}
	// Second consecutive failure opens it.
	tr.ReportFailure(s)
	if tr.Available(s) || tr.State(s) != Open {
		t.Fatalf("state = %v, want open", tr.State(s))
	}
	if tr.AllowProbe(s) {
		t.Fatal("open breaker admitted a probe before backoff expired")
	}

	// Backoff expiry moves it to half-open: exactly one probe admitted.
	clk.Advance(11 * time.Second)
	if tr.State(s) != HalfOpen {
		t.Fatalf("state = %v, want half-open after backoff", tr.State(s))
	}
	if tr.Available(s) {
		t.Fatal("half-open site offered to the planner")
	}
	if !tr.AllowProbe(s) {
		t.Fatal("half-open breaker refused its probe")
	}
	if tr.AllowProbe(s) {
		t.Fatal("half-open breaker admitted two concurrent probes")
	}

	// Probe success closes the breaker.
	tr.ReportSuccess(s)
	if !tr.Available(s) || tr.State(s) != Closed {
		t.Fatalf("state = %v, want closed after recovery", tr.State(s))
	}
}

func TestBreakerBackoffGrowsAndCaps(t *testing.T) {
	tr, clk := newTestTracker(nil)
	s := model.SiteID(2)

	tr.ReportFailure(s)
	tr.ReportFailure(s) // open, backoff 10s

	fail := func(wantBackoff time.Duration) {
		t.Helper()
		clk.Advance(tr.cfg.MaxBackoff + time.Second) // always past expiry
		if !tr.AllowProbe(s) {
			t.Fatal("probe refused after backoff expiry")
		}
		tr.ReportFailure(s) // failed probation: re-open, longer backoff
		tr.mu.Lock()
		got := tr.sites[s].backoff
		tr.mu.Unlock()
		if got != wantBackoff {
			t.Fatalf("backoff = %v, want %v", got, wantBackoff)
		}
	}
	fail(20 * time.Second)
	fail(40 * time.Second)
	fail(40 * time.Second) // capped at MaxBackoff
}

func TestForceOpenAndReset(t *testing.T) {
	tr, _ := newTestTracker(nil)
	s := model.SiteID(3)
	tr.ForceOpen(s)
	if tr.Available(s) {
		t.Fatal("force-opened site available")
	}
	tr.Reset(s)
	if !tr.Available(s) {
		t.Fatal("reset site unavailable")
	}
	// Reset also restores the base backoff after escalation.
	tr.mu.Lock()
	if tr.sites[s].backoff != 10*time.Second {
		t.Fatalf("backoff after reset = %v", tr.sites[s].backoff)
	}
	tr.mu.Unlock()
}

func TestUnavailableListsOpenSites(t *testing.T) {
	tr, _ := newTestTracker(nil)
	tr.ForceOpen(4)
	tr.ForceOpen(2)
	got := tr.Unavailable()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Unavailable() = %v, want [2 4]", got)
	}
}

func TestTrackerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr, clk := newTestTracker(reg)
	s := model.SiteID(5)

	tr.ReportFailure(s)
	tr.ReportFailure(s) // -> open
	clk.Advance(11 * time.Second)
	_ = tr.AllowProbe(s) // -> half-open
	tr.ReportSuccess(s)  // -> closed

	snap := reg.Snapshot()
	if n := snap.CounterValue("health_transitions_total", "open"); n != 1 {
		t.Fatalf("open transitions = %d, want 1", n)
	}
	if n := snap.CounterValue("health_transitions_total", "half-open"); n != 1 {
		t.Fatalf("half-open transitions = %d, want 1", n)
	}
	if n := snap.CounterValue("health_transitions_total", "closed"); n != 1 {
		t.Fatalf("closed transitions = %d, want 1", n)
	}
	if n := snap.GaugeValue("health_open_sites"); n != 0 {
		t.Fatalf("health_open_sites = %d, want 0 after recovery", n)
	}
}

func TestCountAvailable(t *testing.T) {
	tr, _ := newTestTracker(nil)
	sites := []model.SiteID{1, 2, 3, model.NoSite}
	if n := tr.CountAvailable(sites); n != 3 {
		t.Fatalf("all healthy: CountAvailable = %d, want 3 (NoSite skipped)", n)
	}
	tr.ForceOpen(2)
	if n := tr.CountAvailable(sites); n != 2 {
		t.Fatalf("one open: CountAvailable = %d, want 2", n)
	}
	tr.ForceOpen(1)
	tr.ForceOpen(3)
	if n := tr.CountAvailable(sites); n != 0 {
		t.Fatalf("all open: CountAvailable = %d, want 0", n)
	}
	tr.Reset(2)
	if n := tr.CountAvailable(sites); n != 1 {
		t.Fatalf("after reset: CountAvailable = %d, want 1", n)
	}
}
