package health

import "testing"

func TestPressureZeroValueAndNil(t *testing.T) {
	var nilP *Pressure
	if nilP.Overloaded() {
		t.Fatal("nil Pressure must never report overload")
	}
	nilP.SetQueueDepth(5) // must not panic
	nilP.ReportAdmitted()
	nilP.ReportShed()
	if nilP.QueueDepth() != 0 || nilP.Admitted() != 0 || nilP.Shed() != 0 {
		t.Fatal("nil Pressure accessors must return zero")
	}

	p := &Pressure{}
	if p.Overloaded() {
		t.Fatal("zero value with empty queue must not be overloaded")
	}
	p.SetQueueDepth(1)
	if !p.Overloaded() {
		t.Fatal("zero-value threshold defaults to 1: depth 1 is overloaded")
	}
}

func TestPressureThreshold(t *testing.T) {
	p := NewPressure(4)
	for depth, want := range map[int]bool{0: false, 3: false, 4: true, 9: true} {
		p.SetQueueDepth(depth)
		if got := p.Overloaded(); got != want {
			t.Errorf("depth %d: Overloaded() = %v, want %v", depth, got, want)
		}
	}
	if p.QueueDepth() == 0 {
		t.Fatal("QueueDepth should reflect the last published depth")
	}
}

func TestPressureCounters(t *testing.T) {
	p := NewPressure(1)
	for i := 0; i < 3; i++ {
		p.ReportAdmitted()
	}
	p.ReportShed()
	if p.Admitted() != 3 || p.Shed() != 1 {
		t.Fatalf("counters = (%d, %d), want (3, 1)", p.Admitted(), p.Shed())
	}
}
