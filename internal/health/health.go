// Package health tracks per-site availability with a circuit breaker per
// storage site. The client, chunk mover and repair service share one
// Tracker so access planning, placement and movement all skip unhealthy
// sites consistently (the paper's Section V-C failure handling, hardened
// with the breaker pattern from production erasure-coded stores).
//
// Each site's breaker moves through three states:
//
//	Closed    — healthy: requests flow, failures are counted.
//	Open      — unhealthy: requests are skipped until a backoff expires.
//	HalfOpen  — probation: one probe is admitted; success closes the
//	            breaker, failure re-opens it with a longer backoff.
//
// Backoff grows exponentially (Factor per re-open, capped at MaxBackoff)
// so a flapping site is probed progressively less often. All transitions
// are exported through the obs registry when one is attached.
package health

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// State is a breaker state.
type State int

// Breaker states.
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "State(" + strconv.Itoa(int(s)) + ")"
	}
}

// Config tunes a Tracker.
type Config struct {
	// FailureThreshold is how many consecutive failures open a closed
	// breaker. The default of 1 matches the client's historical behaviour
	// (any fetch error excludes the site from the next plan).
	FailureThreshold int
	// OpenBackoff is how long a freshly opened breaker rejects requests
	// before admitting a half-open probe. Zero means 5s.
	OpenBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means 1 minute.
	MaxBackoff time.Duration
	// BackoffFactor multiplies the backoff on every re-open. Values
	// below 1 are treated as 2.
	BackoffFactor float64
	// SuccessThreshold is how many half-open successes close the breaker.
	// Zero means 1.
	SuccessThreshold int
	// Clock abstracts time for deterministic tests; nil uses time.Now.
	Clock func() time.Time
	// Metrics optionally exports breaker instrumentation. Nil disables it.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 1
	}
	if c.OpenBackoff <= 0 {
		c.OpenBackoff = 5 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Minute
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// trackerObs is the tracker's instrument set; every field is nil-safe.
type trackerObs struct {
	toOpen     *obs.Counter
	toHalfOpen *obs.Counter
	toClosed   *obs.Counter
	openSites  *obs.Gauge
}

func newTrackerObs(reg *obs.Registry) trackerObs {
	if reg == nil {
		return trackerObs{}
	}
	vec := reg.CounterVec("health_transitions_total", "to", "breaker state transitions by target state")
	return trackerObs{
		toOpen:     vec.With("open"),
		toHalfOpen: vec.With("half-open"),
		toClosed:   vec.With("closed"),
		openSites:  reg.Gauge("health_open_sites", "sites whose breaker is currently open or half-open"),
	}
}

// Tracker is a set of per-site breakers. The zero value is not usable;
// construct with NewTracker. All methods are safe for concurrent use.
type Tracker struct {
	cfg Config
	obs trackerObs

	mu    sync.Mutex
	sites map[model.SiteID]*breaker
}

type breaker struct {
	state         State
	consecFails   int
	successes     int
	backoff       time.Duration
	until         time.Time // when an open breaker admits a probe
	probeInFlight bool
}

// NewTracker builds a tracker.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{
		cfg:   cfg.withDefaults(),
		obs:   newTrackerObs(cfg.Metrics),
		sites: make(map[model.SiteID]*breaker),
	}
}

// get returns the breaker for a site, creating a closed one on first use.
// Callers hold t.mu.
func (t *Tracker) get(s model.SiteID) *breaker {
	b := t.sites[s]
	if b == nil {
		b = &breaker{backoff: t.cfg.OpenBackoff}
		t.sites[s] = b
	}
	return b
}

// advance moves an expired open breaker to half-open. Callers hold t.mu.
func (t *Tracker) advance(b *breaker) {
	if b.state == Open && !t.cfg.Clock().Before(b.until) {
		b.state = HalfOpen
		b.probeInFlight = false
		b.successes = 0
		t.obs.toHalfOpen.Inc()
	}
}

// Available reports whether a site should appear in fresh access plans:
// only sites with a closed breaker do. Half-open sites carry probe
// traffic but are kept out of plans until they prove themselves.
func (t *Tracker) Available(s model.SiteID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(s)
	t.advance(b)
	return b.state == Closed
}

// AllowProbe reports whether a recovery probe should be sent to the site
// now. Closed sites always probe (regular o_j estimation); open sites
// only once their backoff expires, and only one probe at a time.
func (t *Tracker) AllowProbe(s model.SiteID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(s)
	t.advance(b)
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probeInFlight {
			return false
		}
		b.probeInFlight = true
		return true
	default:
		return false
	}
}

// ReportSuccess records a successful operation against the site.
func (t *Tracker) ReportSuccess(s model.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(s)
	t.advance(b)
	b.consecFails = 0
	switch b.state {
	case HalfOpen:
		b.probeInFlight = false
		b.successes++
		if b.successes >= t.cfg.SuccessThreshold {
			b.state = Closed
			b.backoff = t.cfg.OpenBackoff
			t.obs.toClosed.Inc()
			t.obs.openSites.Add(-1)
		}
	case Open:
		// A straggler success from before the breaker opened; ignore.
	}
}

// ReportFailure records a failed operation against the site.
func (t *Tracker) ReportFailure(s model.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(s)
	t.advance(b)
	switch b.state {
	case Closed:
		b.consecFails++
		if b.consecFails >= t.cfg.FailureThreshold {
			t.open(b, t.cfg.OpenBackoff)
		}
	case HalfOpen:
		// Failed probation: re-open with a longer backoff.
		next := time.Duration(float64(b.backoff) * t.cfg.BackoffFactor)
		if next > t.cfg.MaxBackoff {
			next = t.cfg.MaxBackoff
		}
		t.obs.openSites.Add(-1) // re-counted by open()
		t.open(b, next)
	}
}

// open transitions a breaker to Open with the given backoff. Callers hold
// t.mu.
func (t *Tracker) open(b *breaker, backoff time.Duration) {
	b.state = Open
	b.backoff = backoff
	b.until = t.cfg.Clock().Add(backoff)
	b.consecFails = 0
	b.successes = 0
	b.probeInFlight = false
	t.obs.toOpen.Inc()
	t.obs.openSites.Add(1)
}

// ForceOpen opens the breaker immediately (manual failure marking, e.g.
// Cluster.FailSite or an operator command).
func (t *Tracker) ForceOpen(s model.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(s)
	t.advance(b)
	if b.state == Closed {
		t.open(b, t.cfg.OpenBackoff)
		return
	}
	// Already open or half-open: restart the window without re-counting.
	prev := b.state
	b.state = Open
	b.until = t.cfg.Clock().Add(b.backoff)
	b.probeInFlight = false
	if prev == HalfOpen {
		t.obs.toOpen.Inc()
	}
}

// Reset closes the breaker immediately (manual recovery marking).
func (t *Tracker) Reset(s model.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(s)
	if b.state != Closed {
		t.obs.toClosed.Inc()
		t.obs.openSites.Add(-1)
	}
	b.state = Closed
	b.consecFails = 0
	b.successes = 0
	b.probeInFlight = false
	b.backoff = t.cfg.OpenBackoff
}

// State returns the site's current breaker state.
func (t *Tracker) State(s model.SiteID) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(s)
	t.advance(b)
	return b.state
}

// CountAvailable returns how many of the given chunk-holding sites are
// currently available, skipping the NoSite sentinel. Callers use it to
// decide whether a block is reconstructible at all — e.g. the client
// only serves a bounded-stale cache entry once fewer healthy sites hold
// the block's chunks than a decode needs.
func (t *Tracker) CountAvailable(sites []model.SiteID) int {
	n := 0
	for _, s := range sites {
		if s != model.NoSite && t.Available(s) {
			n++
		}
	}
	return n
}

// Unavailable lists sites whose breaker is open or half-open, sorted.
func (t *Tracker) Unavailable() []model.SiteID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []model.SiteID
	for id, b := range t.sites {
		t.advance(b)
		if b.state != Closed {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
