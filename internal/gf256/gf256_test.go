package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	cases := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{1, 1, 0},
		{0x53, 0xCA, 0x99},
		{0xFF, 0x0F, 0xF0},
	}
	for _, tc := range cases {
		if got := Add(tc.a, tc.b); got != tc.want {
			t.Errorf("Add(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
		if got := Sub(tc.a, tc.b); got != tc.want {
			t.Errorf("Sub(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Values checked against long-hand carry-less multiplication with
	// reduction by 0x11D.
	cases := []struct {
		a, b, want byte
	}{
		{0, 5, 0},
		{5, 0, 0},
		{1, 0xAB, 0xAB},
		{2, 0x80, 0x1D}, // 0x100 ^ 0x11D = 0x1D
		{2, 2, 4},
		{0x53, 0xCA, 0x8F},
	}
	for _, tc := range cases {
		if got := Mul(tc.a, tc.b); got != tc.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMulBruteForceAgreement(t *testing.T) {
	// Carry-less multiply + polynomial reduction, the definitional form.
	slowMul := func(a, b byte) byte {
		var prod int
		ai := int(a)
		for bi := int(b); bi > 0; bi >>= 1 {
			if bi&1 == 1 {
				prod ^= ai
			}
			ai <<= 1
			if ai&0x100 != 0 {
				ai ^= Polynomial
			}
		}
		return byte(prod)
	}
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if got, want := Mul(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	commutative := func(a, b byte) bool {
		return Mul(a, b) == Mul(b, a) && Add(a, b) == Add(b, a)
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}

	associative := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) &&
			Add(Add(a, b), c) == Add(a, Add(b, c))
	}
	if err := quick.Check(associative, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}

	distributive := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distributive, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}

	identity := func(a byte) bool {
		return Mul(a, 1) == a && Add(a, 0) == a
	}
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}

	inverse := func(a byte) bool {
		if a == 0 {
			return Inv(a) == 0
		}
		return Mul(a, Inv(a)) == 1
	}
	if err := quick.Check(inverse, cfg); err != nil {
		t.Errorf("inverse: %v", err)
	}

	divMulRoundTrip := func(a, b byte) bool {
		if b == 0 {
			return Div(a, b) == 0
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(divMulRoundTrip, cfg); err != nil {
		t.Errorf("div/mul round trip: %v", err)
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < Order; a++ {
		if got := Exp(int(Log(byte(a)))); got != byte(a) {
			t.Fatalf("Exp(Log(%#x)) = %#x", a, got)
		}
	}
}

func TestExpGeneratesWholeGroup(t *testing.T) {
	seen := make(map[byte]bool, Order-1)
	for i := 0; i < Order-1; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != Order-1 {
		t.Fatalf("generator produced %d distinct elements, want %d", len(seen), Order-1)
	}
	if seen[0] {
		t.Fatal("generator produced 0")
	}
}

func TestPow(t *testing.T) {
	cases := []struct {
		a    byte
		n    int
		want byte
	}{
		{0, 0, 1},
		{0, 3, 0},
		{5, 0, 1},
		{2, 1, 2},
		{2, 8, 0x1D},
		{3, 255, 1}, // a^(q-1) = 1 for a != 0
	}
	for _, tc := range cases {
		if got := Pow(tc.a, tc.n); got != tc.want {
			t.Errorf("Pow(%#x, %d) = %#x, want %#x", tc.a, tc.n, got, tc.want)
		}
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	for a := 0; a < Order; a += 7 {
		acc := byte(1)
		for n := 0; n < 20; n++ {
			if got := Pow(byte(a), n); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, n, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0xFF, 0}
	dst := make([]byte, len(src))

	MulSlice(0, src, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("MulSlice(0)[%d] = %d, want 0", i, v)
		}
	}

	MulSlice(1, src, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("MulSlice(1)[%d] = %d, want %d", i, dst[i], src[i])
		}
	}

	MulSlice(7, src, dst)
	for i := range src {
		if want := Mul(7, src[i]); dst[i] != want {
			t.Fatalf("MulSlice(7)[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	dst := []byte{10, 20, 30, 40}
	orig := append([]byte(nil), dst...)

	MulAddSlice(0, src, dst)
	for i := range dst {
		if dst[i] != orig[i] {
			t.Fatalf("MulAddSlice(0) modified dst[%d]", i)
		}
	}

	MulAddSlice(3, src, dst)
	for i := range dst {
		if want := orig[i] ^ Mul(3, src[i]); dst[i] != want {
			t.Fatalf("MulAddSlice(3)[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

func TestAddSlice(t *testing.T) {
	src := []byte{0xF0, 0x0F}
	dst := []byte{0x0F, 0x0F}
	AddSlice(src, dst)
	if dst[0] != 0xFF || dst[1] != 0 {
		t.Fatalf("AddSlice = %v, want [0xFF 0]", dst)
	}
}

func TestSliceOpsPanicOnLengthMismatch(t *testing.T) {
	fns := map[string]func(){
		"MulSlice":    func() { MulSlice(2, []byte{1}, []byte{1, 2}) },
		"MulAddSlice": func() { MulAddSlice(2, []byte{1}, []byte{1, 2}) },
		"AddSlice":    func() { AddSlice([]byte{1}, []byte{1, 2}) },
	}
	for name, fn := range fns {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x1D, src, dst)
	}
}
