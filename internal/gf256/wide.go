package gf256

import "encoding/binary"

// Word-wide GF(2^8) multiply kernels: 8 bytes per iteration via uint64
// loads and XORs, no per-byte table lookups. The source word is consumed
// bit-plane by bit-plane: plane k contributes c*2^k to every byte whose
// bit k is set, and ((v>>k) & lsb) * 0xff expands each such bit into a
// full byte mask. These are the portable fallback for platforms without
// the assembly kernels; on amd64 the AVX2 nibble-shuffle path supersedes
// them (the 256-byte multiplication row is L1-resident there, so the
// scalar loop already outruns the bit-plane arithmetic).

// lsb has the low bit of every byte lane set.
const lsb = 0x0101010101010101

// nibblePatterns fills pat with the replicated products c*2^k for
// k = 0..7, the per-bit-plane contribution words.
func nibblePatterns(c byte, pat *[8]uint64) {
	row := _tables.mul[int(c)*Order:]
	for k := 0; k < 8; k++ {
		pat[k] = lsb * uint64(row[1<<k])
	}
}

// mulWide64 computes dst[i] = c*src[i] for the largest prefix that is a
// multiple of 8 bytes and returns its length. Callers finish the tail
// with the scalar loop.
func mulWide64(c byte, src, dst []byte) int {
	n := len(src) &^ 7
	if n == 0 {
		return 0
	}
	var pat [8]uint64
	nibblePatterns(c, &pat)
	for i := 0; i < n; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:])
		var acc uint64
		for k := 0; k < 8; k++ {
			acc ^= (((v >> k) & lsb) * 0xff) & pat[k]
		}
		binary.LittleEndian.PutUint64(dst[i:], acc)
	}
	return n
}

// mulAddWide64 computes dst[i] ^= c*src[i] for the largest 8-byte-aligned
// prefix and returns its length.
func mulAddWide64(c byte, src, dst []byte) int {
	n := len(src) &^ 7
	if n == 0 {
		return 0
	}
	var pat [8]uint64
	nibblePatterns(c, &pat)
	for i := 0; i < n; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:])
		acc := binary.LittleEndian.Uint64(dst[i:])
		for k := 0; k < 8; k++ {
			acc ^= (((v >> k) & lsb) * 0xff) & pat[k]
		}
		binary.LittleEndian.PutUint64(dst[i:], acc)
	}
	return n
}
