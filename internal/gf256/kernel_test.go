package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// kernelLengths covers every length the ISSUE's differential test pins
// (1..17, all odd and even sub-lane sizes) plus the lane boundaries of
// the 8-byte word kernel and the 32-byte vector kernel.
func kernelLengths() []int {
	ls := []int{0}
	for n := 1; n <= 17; n++ {
		ls = append(ls, n)
	}
	return append(ls, 24, 31, 32, 33, 48, 63, 64, 65, 100, 255, 256, 257, 1024, 1031, 4096)
}

func randomPair(rng *rand.Rand, n int) (src, dst []byte) {
	src = make([]byte, n)
	dst = make([]byte, n)
	rng.Read(src)
	rng.Read(dst)
	return src, dst
}

// TestWideKernelsMatchScalar pins every wide kernel — the platform
// dispatch behind MulSlice/MulAddSlice, the portable uint64 bit-plane
// kernels, and the wide AddSlice — against the scalar row loop over all
// 256 coefficients and the full length grid.
func TestWideKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer SetAccel(SetAccel(true))
	for c := 0; c < Order; c++ {
		for _, n := range kernelLengths() {
			src, dst := randomPair(rng, n)

			wantMul := make([]byte, n)
			mulSliceScalar(byte(c), src, wantMul)
			wantAdd := append([]byte(nil), dst...)
			mulAddSliceScalar(byte(c), src, wantAdd)

			got := make([]byte, n)
			MulSlice(byte(c), src, got)
			if !bytes.Equal(got, wantMul) {
				t.Fatalf("MulSlice(c=%d, n=%d) kernel %q diverges from scalar", c, n, Kernel())
			}
			got = append(got[:0], dst...)
			MulAddSlice(byte(c), src, got)
			if !bytes.Equal(got, wantAdd) {
				t.Fatalf("MulAddSlice(c=%d, n=%d) kernel %q diverges from scalar", c, n, Kernel())
			}

			// The portable word kernels are the fallback on platforms
			// without assembly; check them directly on every platform.
			got = make([]byte, n)
			p := mulWide64(byte(c), src, got)
			mulSliceScalar(byte(c), src[p:], got[p:])
			if !bytes.Equal(got, wantMul) {
				t.Fatalf("mulWide64(c=%d, n=%d) diverges from scalar", c, n)
			}
			got = append(got[:0], dst...)
			p = mulAddWide64(byte(c), src, got)
			mulAddSliceScalar(byte(c), src[p:], got[p:])
			if !bytes.Equal(got, wantAdd) {
				t.Fatalf("mulAddWide64(c=%d, n=%d) diverges from scalar", c, n)
			}

			wantXor := make([]byte, n)
			for i := range wantXor {
				wantXor[i] = src[i] ^ dst[i]
			}
			got = append(got[:0], dst...)
			AddSlice(src, got)
			if !bytes.Equal(got, wantXor) {
				t.Fatalf("AddSlice(n=%d) diverges from byte XOR", n)
			}
		}
	}
}

// TestKernelsUnalignedSlices drives the vector kernel through every
// combination of source and destination misalignment within a 32-byte
// lane; VMOVDQU must not care, and neither may the dispatch arithmetic.
func TestKernelsUnalignedSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer SetAccel(SetAccel(true))
	const n = 257
	srcBuf := make([]byte, n+64)
	dstBuf := make([]byte, n+64)
	for srcOff := 0; srcOff < 4; srcOff++ {
		for dstOff := 0; dstOff < 4; dstOff++ {
			rng.Read(srcBuf)
			rng.Read(dstBuf)
			src := srcBuf[srcOff : srcOff+n]
			dst := dstBuf[dstOff : dstOff+n]
			want := append([]byte(nil), dst...)
			mulAddSliceScalar(0x8e, src, want)
			MulAddSlice(0x8e, src, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSlice misaligned (src+%d, dst+%d) diverges", srcOff, dstOff)
			}
		}
	}
}

func TestSetAccelRestores(t *testing.T) {
	orig := SetAccel(false)
	if Kernel() != "scalar" {
		t.Fatalf("Kernel() = %q after SetAccel(false), want scalar", Kernel())
	}
	SetAccel(orig)
}

func TestSliceKernelsDoNotAllocate(t *testing.T) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for _, c := range []byte{0, 1, 0x1d} {
		c := c
		if n := testing.AllocsPerRun(50, func() { MulAddSlice(c, src, dst) }); n != 0 {
			t.Errorf("MulAddSlice(c=%d) allocates %.1f times per call", c, n)
		}
		if n := testing.AllocsPerRun(50, func() { MulSlice(c, src, dst) }); n != 0 {
			t.Errorf("MulSlice(c=%d) allocates %.1f times per call", c, n)
		}
	}
	if n := testing.AllocsPerRun(50, func() { AddSlice(src, dst) }); n != 0 {
		t.Errorf("AddSlice allocates %.1f times per call", n)
	}
}

func benchmarkMulAdd(b *testing.B, accel bool, n int) {
	defer SetAccel(SetAccel(accel))
	src := make([]byte, n)
	dst := make([]byte, n)
	rand.New(rand.NewSource(3)).Read(src)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x8e, src, dst)
	}
}

func BenchmarkMulAddSliceKernels(b *testing.B) {
	for _, n := range []int{1 << 10, 64 << 10, 512 << 10} {
		b.Run(fmt.Sprintf("kernel-%d", n), func(b *testing.B) { benchmarkMulAdd(b, true, n) })
		b.Run(fmt.Sprintf("scalar-%d", n), func(b *testing.B) { benchmarkMulAdd(b, false, n) })
	}
}
