// AVX2 nibble-split GF(2^8) multiply kernels.
//
// Each coefficient c has two 16-byte tables: lo[x] = c*x and
// hi[x] = c*(x<<4), so a byte product is lo[b&15] ^ hi[b>>4]. Both
// tables are broadcast into the two 128-bit lanes of a YMM register and
// VPSHUFB then performs 32 independent 4-bit table lookups per
// instruction. The Go callers guarantee n is a positive multiple of 32;
// tails run through the scalar loop.

#include "textflag.h"

DATA nibbleMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// func gfMulVecAVX2(lo, hi *[16]byte, src, dst *byte, n int)
// dst[i] = c*src[i] for i in [0, n).
TEXT ·gfMulVecAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1
	VBROADCASTI128 nibbleMask<>(SB), Y2

mulLoop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulLoop
	VZEROUPPER
	RET

// func gfMulAddVecAVX2(lo, hi *[16]byte, src, dst *byte, n int)
// dst[i] ^= c*src[i] for i in [0, n).
TEXT ·gfMulAddVecAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1
	VBROADCASTI128 nibbleMask<>(SB), Y2

mulAddLoop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VPXOR   (DI), Y3, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulAddLoop
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
