//go:build !amd64

package gf256

import "sync/atomic"

// Platforms without assembly kernels use the portable uint64 bit-plane
// kernels from wide.go: 8 bytes per iteration, no per-byte lookups.

// accelOn gates the wide kernels. Atomic so tests and benchmarks can
// flip it while other goroutines encode.
var accelOn atomic.Bool

func init() { accelOn.Store(true) }

// SetAccel enables or disables the wide kernel and returns the previous
// setting. Intended for tests and benchmarks that need the scalar
// oracle on the full slice.
func SetAccel(on bool) bool {
	prev := accelOn.Load()
	accelOn.Store(on)
	return prev
}

// Kernel reports which wide kernel MulSlice and MulAddSlice currently
// dispatch to: "wide64" or "scalar".
func Kernel() string {
	if accelOn.Load() {
		return "wide64"
	}
	return "scalar"
}

// mulKernel applies dst[i] = c*src[i] to the largest 8-byte-aligned
// prefix and returns its length; the caller's scalar loop finishes the
// tail. c must be >= 2.
func mulKernel(c byte, src, dst []byte) int {
	if !accelOn.Load() {
		return 0
	}
	return mulWide64(c, src, dst)
}

// mulAddKernel is the fused-accumulate counterpart of mulKernel.
func mulAddKernel(c byte, src, dst []byte) int {
	if !accelOn.Load() {
		return 0
	}
	return mulAddWide64(c, src, dst)
}
