// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same polynomial used by the
// Reed-Solomon codes in storage systems such as Jerasure and ISA-L. All
// operations are table-driven: multiplication and division go through
// logarithm and exponential tables so that the hot encoding paths reduce to
// table lookups and XORs.
package gf256

// Polynomial is the primitive polynomial used to construct GF(2^8),
// expressed with the implicit x^8 term included (0x11D).
const Polynomial = 0x11D

// Order is the number of elements in the field.
const Order = 256

// tables holds the precomputed log/exp tables for the field.
type tables struct {
	// exp holds alpha^i for i in [0, 510) so products of logs can be
	// looked up without a modular reduction.
	exp [2 * (Order - 1)]byte
	// log holds log_alpha(x) for x in [1, 256). log[0] is unused.
	log [Order]byte
	// mul is the full 256x256 multiplication table, laid out row-major.
	// Row a holds a*b for all b. Flat layout keeps it in one allocation.
	mul []byte
	// inv holds multiplicative inverses; inv[0] is 0 as a sentinel.
	inv [Order]byte
}

// _tables is computed once at package load. The computation is pure and
// deterministic (no I/O, no environment access).
var _tables = buildTables()

func buildTables() *tables {
	t := &tables{mul: make([]byte, Order*Order)}
	x := 1
	for i := 0; i < Order-1; i++ {
		t.exp[i] = byte(x)
		t.log[x] = byte(i)
		x <<= 1
		if x >= Order {
			x ^= Polynomial
		}
	}
	// Duplicate the exp table so Mul can skip the mod-255 reduction.
	for i := Order - 1; i < 2*(Order-1); i++ {
		t.exp[i] = t.exp[i-(Order-1)]
	}
	for a := 1; a < Order; a++ {
		la := int(t.log[a])
		row := t.mul[a*Order:]
		for b := 1; b < Order; b++ {
			row[b] = t.exp[la+int(t.log[b])]
		}
	}
	for a := 1; a < Order; a++ {
		t.inv[a] = t.exp[(Order-1)-int(t.log[a])]
	}
	return t
}

// Add returns a+b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8). Subtraction equals addition (XOR).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	return _tables.mul[int(a)*Order+int(b)]
}

// Div returns a/b in GF(2^8). Division by zero returns 0; callers that can
// receive an attacker- or data-controlled divisor must check for zero first.
func Div(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	la := int(_tables.log[a])
	lb := int(_tables.log[b])
	d := la - lb
	if d < 0 {
		d += Order - 1
	}
	return _tables.exp[d]
}

// Inv returns the multiplicative inverse of a. Inv(0) returns 0 as a
// sentinel; zero has no inverse.
func Inv(a byte) byte { return _tables.inv[a] }

// Exp returns alpha^n where alpha is the generator of the field's
// multiplicative group. n may be any non-negative integer.
func Exp(n int) byte {
	return _tables.exp[n%(Order-1)]
}

// Log returns log_alpha(a) for a != 0. Log(0) returns 0 as a sentinel.
func Log(a byte) byte { return _tables.log[a] }

// Pow returns a raised to the power n in GF(2^8).
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	ln := (int(_tables.log[a]) * n) % (Order - 1)
	return _tables.exp[ln]
}

// MulSlice computes dst[i] = c*src[i] for all i. dst and src must have the
// same length; the function panics otherwise, as mismatched shard lengths
// indicate a programming error in the codec layer.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := _tables.mul[int(c)*Order : int(c)*Order+Order]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// MulAddSlice computes dst[i] ^= c*src[i] for all i, the fused
// multiply-accumulate at the heart of Reed-Solomon encoding. dst and src
// must have the same length.
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	row := _tables.mul[int(c)*Order : int(c)*Order+Order]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// AddSlice computes dst[i] ^= src[i] for all i.
func AddSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddSlice length mismatch")
	}
	for i, s := range src {
		dst[i] ^= s
	}
}
