// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same polynomial used by the
// Reed-Solomon codes in storage systems such as Jerasure and ISA-L. All
// operations are table-driven: multiplication and division go through
// logarithm and exponential tables so that the hot encoding paths reduce to
// table lookups and XORs.
package gf256

import "encoding/binary"

// Polynomial is the primitive polynomial used to construct GF(2^8),
// expressed with the implicit x^8 term included (0x11D).
const Polynomial = 0x11D

// Order is the number of elements in the field.
const Order = 256

// tables holds the precomputed log/exp tables for the field.
type tables struct {
	// exp holds alpha^i for i in [0, 510) so products of logs can be
	// looked up without a modular reduction.
	exp [2 * (Order - 1)]byte
	// log holds log_alpha(x) for x in [1, 256). log[0] is unused.
	log [Order]byte
	// mul is the full 256x256 multiplication table, laid out row-major.
	// Row a holds a*b for all b. Flat layout keeps it in one allocation.
	mul []byte
	// inv holds multiplicative inverses; inv[0] is 0 as a sentinel.
	inv [Order]byte
	// nibLo and nibHi are the 4-bit nibble-split product tables:
	// nibLo[c][x] = c*x for x in [0,16) and nibHi[c][x] = c*(x<<4), so a
	// byte product decomposes as c*b = nibLo[c][b&15] ^ nibHi[c][b>>4].
	// 32 bytes of table state per coefficient is what lets a vector
	// shuffle (or a pair of word-wide table walks) process many bytes per
	// step instead of one lookup per byte.
	nibLo [Order][16]byte
	nibHi [Order][16]byte
}

// _tables is computed once at package load. The computation is pure and
// deterministic (no I/O, no environment access).
var _tables = buildTables()

func buildTables() *tables {
	t := &tables{mul: make([]byte, Order*Order)}
	x := 1
	for i := 0; i < Order-1; i++ {
		t.exp[i] = byte(x)
		t.log[x] = byte(i)
		x <<= 1
		if x >= Order {
			x ^= Polynomial
		}
	}
	// Duplicate the exp table so Mul can skip the mod-255 reduction.
	for i := Order - 1; i < 2*(Order-1); i++ {
		t.exp[i] = t.exp[i-(Order-1)]
	}
	for a := 1; a < Order; a++ {
		la := int(t.log[a])
		row := t.mul[a*Order:]
		for b := 1; b < Order; b++ {
			row[b] = t.exp[la+int(t.log[b])]
		}
	}
	for a := 1; a < Order; a++ {
		t.inv[a] = t.exp[(Order-1)-int(t.log[a])]
	}
	for c := 1; c < Order; c++ {
		row := t.mul[c*Order:]
		for x := 0; x < 16; x++ {
			t.nibLo[c][x] = row[x]
			t.nibHi[c][x] = row[x<<4]
		}
	}
	return t
}

// Add returns a+b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8). Subtraction equals addition (XOR).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	return _tables.mul[int(a)*Order+int(b)]
}

// Div returns a/b in GF(2^8). Division by zero returns 0; callers that can
// receive an attacker- or data-controlled divisor must check for zero first.
func Div(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	la := int(_tables.log[a])
	lb := int(_tables.log[b])
	d := la - lb
	if d < 0 {
		d += Order - 1
	}
	return _tables.exp[d]
}

// Inv returns the multiplicative inverse of a. Inv(0) returns 0 as a
// sentinel; zero has no inverse.
func Inv(a byte) byte { return _tables.inv[a] }

// Exp returns alpha^n where alpha is the generator of the field's
// multiplicative group. n may be any non-negative integer.
func Exp(n int) byte {
	return _tables.exp[n%(Order-1)]
}

// Log returns log_alpha(a) for a != 0. Log(0) returns 0 as a sentinel.
func Log(a byte) byte { return _tables.log[a] }

// Pow returns a raised to the power n in GF(2^8).
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	ln := (int(_tables.log[a]) * n) % (Order - 1)
	return _tables.exp[ln]
}

// MulSlice computes dst[i] = c*src[i] for all i. dst and src must have the
// same length; the function panics otherwise, as mismatched shard lengths
// indicate a programming error in the codec layer. The bulk of the slice
// goes through the platform wide kernel (see Kernel); the scalar loop
// covers the tail.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	n := mulKernel(c, src, dst)
	mulSliceScalar(c, src[n:], dst[n:])
}

// MulAddSlice computes dst[i] ^= c*src[i] for all i, the fused
// multiply-accumulate at the heart of Reed-Solomon encoding. dst and src
// must have the same length. Dispatches like MulSlice.
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		xorSlice(src, dst)
		return
	}
	n := mulAddKernel(c, src, dst)
	mulAddSliceScalar(c, src[n:], dst[n:])
}

// AddSlice computes dst[i] ^= src[i] for all i.
func AddSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddSlice length mismatch")
	}
	xorSlice(src, dst)
}

// mulSliceScalar is the byte-at-a-time reference loop over the full
// multiplication row. It is total over all coefficients (including 0 and
// 1), which makes it the correctness oracle the wide kernels are pinned
// against, and it handles the sub-lane tails the vector units leave.
func mulSliceScalar(c byte, src, dst []byte) {
	row := _tables.mul[int(c)*Order : int(c)*Order+Order]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// mulAddSliceScalar is the fused-accumulate counterpart of
// mulSliceScalar.
func mulAddSliceScalar(c byte, src, dst []byte) {
	row := _tables.mul[int(c)*Order : int(c)*Order+Order]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// xorSlice XORs src into dst eight bytes per iteration via uint64 loads
// and stores, with a scalar tail for the last len%8 bytes.
func xorSlice(src, dst []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:]) ^ binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}
