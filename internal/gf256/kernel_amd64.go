package gf256

import "sync/atomic"

// On amd64 the wide kernel is the AVX2 nibble-shuffle path: each
// coefficient's 16-byte low/high nibble tables are broadcast into YMM
// registers and VPSHUFB performs 32 table lookups per instruction. The
// kernel requires AVX2 plus OS support for saving YMM state, detected
// once at init via CPUID/XGETBV; without it the scalar row loop runs
// (it beats the uint64 bit-plane kernel on x86, where the 256-byte
// multiplication row stays L1-resident).

// accelOn gates the vector kernels. Atomic so tests and benchmarks can
// flip it while other goroutines encode.
var accelOn atomic.Bool

func init() { accelOn.Store(detectAVX2()) }

// SetAccel enables or disables the platform wide kernel and returns the
// previous setting. Enabling is a no-op on hardware without the kernel's
// CPU features. Intended for tests and benchmarks that need the scalar
// oracle on the full slice.
func SetAccel(on bool) bool {
	prev := accelOn.Load()
	if on {
		on = detectAVX2()
	}
	accelOn.Store(on)
	return prev
}

// Kernel reports which wide kernel MulSlice and MulAddSlice currently
// dispatch to: "avx2" or "scalar".
func Kernel() string {
	if accelOn.Load() {
		return "avx2"
	}
	return "scalar"
}

// mulKernel applies dst[i] = c*src[i] to the largest 32-byte-aligned
// prefix the vector unit can take and returns its length; 0 means the
// caller's scalar loop handles everything. c must be >= 2.
func mulKernel(c byte, src, dst []byte) int {
	n := len(src) &^ 31
	if n == 0 || !accelOn.Load() {
		return 0
	}
	gfMulVecAVX2(&_tables.nibLo[c], &_tables.nibHi[c], &src[0], &dst[0], n)
	return n
}

// mulAddKernel is the fused-accumulate counterpart of mulKernel.
func mulAddKernel(c byte, src, dst []byte) int {
	n := len(src) &^ 31
	if n == 0 || !accelOn.Load() {
		return 0
	}
	gfMulAddVecAVX2(&_tables.nibLo[c], &_tables.nibHi[c], &src[0], &dst[0], n)
	return n
}

func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave = 1 << 27
	const avx = 1 << 28
	_, _, c, _ := cpuidAsm(1, 0)
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	// XCR0 bits 1 and 2: the OS saves XMM and YMM state on context switch.
	xa, _ := xgetbvAsm()
	if xa&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuidAsm(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// Implemented in kernel_amd64.s. n must be a positive multiple of 32.

//go:noescape
func gfMulVecAVX2(lo, hi *[16]byte, src, dst *byte, n int)

//go:noescape
func gfMulAddVecAVX2(lo, hi *[16]byte, src, dst *byte, n int)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)
