package metadata

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ecstore/internal/model"
)

// closeSegments sabotages every partition's active segment file so the
// next WAL write fails, simulating an I/O error (ENOSPC, dead disk).
func closeSegments(c *Catalog) {
	for _, p := range c.parts {
		p.log.fileMu.Lock()
		_ = p.log.f.Close()
		p.log.fileMu.Unlock()
	}
}

// TestWALWriteFailureFailStop: a failed WAL write must fail the mutation
// that needed it, latch the catalog into fail-stop (every further
// mutation rejected with ErrWALFailed), and never silently advance the
// synced watermark past the lost records — a restart recovers exactly
// the state that was durable before the failure.
func TestWALWriteFailureFailStop(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 2}) // FsyncInterval 0: sync mode
	if err := c.Register(blockMeta("ok", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	okVersion := mustVersion(t, c, "ok")

	closeSegments(c)
	if err := c.Register(blockMeta("lost", 1, 2, 3, 4)); err == nil {
		t.Fatal("Register acknowledged a mutation whose WAL write failed")
	}

	// Every subsequent mutation is rejected with the latched error.
	if err := c.Register(blockMeta("later", 2, 3, 4, 5)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("Register after failure = %v, want ErrWALFailed", err)
	}
	if _, err := c.Delete("ok"); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("Delete after failure = %v, want ErrWALFailed", err)
	}
	if _, err := c.UpdatePlacement("ok", 0, 5, okVersion); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("UpdatePlacement after failure = %v, want ErrWALFailed", err)
	}
	if err := c.AddSite(9); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("AddSite after failure = %v, want ErrWALFailed", err)
	}
	if err := c.SetSiteInfo(model.SiteInfo{ID: 1, Zone: "z"}); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("SetSiteInfo after failure = %v, want ErrWALFailed", err)
	}
	if err := c.PutTask(taskRec("t1", model.TaskPending)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("PutTask after failure = %v, want ErrWALFailed", err)
	}
	if err := c.DeleteTask("t1"); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("DeleteTask after failure = %v, want ErrWALFailed", err)
	}
	// Reads still work (fail-stop, not crash).
	if _, ok := c.BlockMeta("ok"); !ok {
		t.Fatal("read path broken after fail-stop")
	}

	// Restart: only the pre-failure durable state comes back.
	r := mustOpen(t, dir, WALOptions{Partitions: 2})
	defer func() { _ = r.Close() }()
	if _, ok := r.BlockMeta("ok"); !ok {
		t.Fatal("durable block lost across restart")
	}
	if _, ok := r.BlockMeta("lost"); ok {
		t.Fatal("unacknowledged block resurrected across restart")
	}
}

// TestGroupCommitFlushFailureSurfaces: in group-commit mode the write
// error is hit by the flusher, not the mutation — but the latch must
// still reject every later mutation instead of accepting writes into a
// log that can no longer persist them.
func TestGroupCommitFlushFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 2, FsyncInterval: time.Hour})
	if err := c.Register(blockMeta("buffered", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	closeSegments(c)
	if err := c.Sync(); err == nil {
		t.Fatal("Sync over closed segments succeeded")
	}
	if err := c.Register(blockMeta("later", 1, 2, 3, 4)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("Register after flush failure = %v, want ErrWALFailed", err)
	}
}

func mustVersion(t *testing.T, c *Catalog, id model.BlockID) uint64 {
	t.Helper()
	meta, ok := c.BlockMeta(id)
	if !ok {
		t.Fatalf("block %s missing", id)
	}
	return meta.Version
}

// TestRegisterBoundsRecordSize: metadata that would encode past what
// replay accepts (member count, site count, or raw frame bytes) must be
// rejected at Register — once logged, such a record is unrecoverable.
func TestRegisterBoundsRecordSize(t *testing.T) {
	c := NewCatalog(sites(6))

	over := blockMeta("members", 1, 2, 3, 4)
	over.Members = make([]model.PackedMember, maxPackMembers+1)
	if err := c.Register(over); !errors.Is(err, ErrInvalidMember) {
		t.Fatalf("member-count overflow = %v, want ErrInvalidMember", err)
	}

	wide := &model.BlockMeta{
		ID:        "wide",
		Scheme:    model.SchemeErasure,
		K:         maxBlockSites,
		R:         1,
		Size:      200,
		ChunkSize: 100,
		Sites:     make([]model.SiteID, maxBlockSites+1),
	}
	for i := range wide.Sites {
		wide.Sites[i] = model.SiteID(i + 1)
	}
	if err := c.Register(wide); !errors.Is(err, ErrInvalidBlock) {
		t.Fatalf("site-count overflow = %v, want ErrInvalidBlock", err)
	}

	// ~70 MiB of member ids exceeds the 64 MiB frame bound even though
	// the member count is legal.
	big := blockMeta("big", 1, 2, 3, 4)
	chunk := strings.Repeat("x", 1<<20)
	big.Members = make([]model.PackedMember, 70)
	for i := range big.Members {
		big.Members[i] = model.PackedMember{ID: model.BlockID(fmt.Sprintf("%s-%02d", chunk, i))}
	}
	if err := c.Register(big); !errors.Is(err, ErrInvalidBlock) {
		t.Fatalf("frame-size overflow = %v, want ErrInvalidBlock", err)
	}

	// Sanity: the same shapes under the bounds register fine.
	small := blockMeta("small", 1, 2, 3, 4)
	small.Members = []model.PackedMember{{ID: "m", Off: 0, Len: 10}}
	if err := c.Register(small); err != nil {
		t.Fatal(err)
	}
}

// TestPutTaskBoundsRecordSize: task records are operator/driver input;
// one that cannot be replayed must not be logged.
func TestPutTaskBoundsRecordSize(t *testing.T) {
	c := NewCatalog(sites(2))
	rec := taskRec("big", model.TaskPending)
	rec.LastError = strings.Repeat("e", maxWALBody)
	if err := c.PutTask(rec); !errors.Is(err, ErrInvalidTask) {
		t.Fatalf("oversized task = %v, want ErrInvalidTask", err)
	}
}

// registerPack registers a 2-member container and returns its version.
func registerPack(t *testing.T, c *Catalog) uint64 {
	t.Helper()
	pack := blockMeta("pack", 1, 2, 3, 4)
	pack.Size = 200
	pack.Members = []model.PackedMember{
		{ID: "m1", Off: 0, Len: 100},
		{ID: "m2", Off: 100, Len: 100},
	}
	if err := c.Register(pack); err != nil {
		t.Fatal(err)
	}
	// Bump the version so the derived watermark is distinguishable from
	// the map zero value.
	if _, err := c.UpdatePlacement("pack", 0, 5, mustVersion(t, c, "pack")); err != nil {
		t.Fatal(err)
	}
	return mustVersion(t, c, "pack")
}

// TestDeleteCascadeRetireDerivedOnReplay: the container's delete record
// and its members' retire records commit independently, so a crash
// between them durably deletes the container while losing the member
// watermarks. Replay must re-derive them from the delete record alone —
// otherwise a re-registered member id restarts its version low and
// reopens the (BlockID, version) cache-ABA window.
func TestDeleteCascadeRetireDerivedOnReplay(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 4})
	ver := registerPack(t, c)

	// Simulate the crash window: append ONLY the container's delete
	// record (durable), never the member retires, then abandon the
	// catalog without Close — exactly a kill -9 mid-cascade.
	p := c.part("pack")
	lsn := p.log.appendDelete("pack", ver)
	if err := p.log.flushTo(lsn); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, WALOptions{Partitions: 4})
	defer func() { _ = r.Close() }()
	if _, ok := r.BlockMeta("pack"); ok {
		t.Fatal("container survived its durable delete record")
	}
	for _, m := range []model.BlockID{"m1", "m2"} {
		if _, ok := r.BlockMeta(m); ok {
			t.Fatalf("member %s resolves after container delete", m)
		}
		if v, ok := r.RetiredVersion(m); !ok || v != ver {
			t.Fatalf("member %s watermark = %d, %v; want %d (derived from container delete)", m, v, ok, ver)
		}
	}
	// The watermark keeps a re-registered member id monotonic.
	if err := r.Register(blockMeta("m1", 2, 3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if got := mustVersion(t, r, "m1"); got <= ver {
		t.Fatalf("re-registered member version %d not above watermark %d: cache ABA", got, ver)
	}
}

// TestMemberRemoveRetireDerivedOnReplay: same crash window for the
// single-member detach path (deleteMember's member-remove record lands
// in the container's partition, the retire in the member's).
func TestMemberRemoveRetireDerivedOnReplay(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 4})
	ver := registerPack(t, c)

	p := c.part("pack")
	lsn := p.log.appendMemberRemove("pack", "m1")
	if err := p.log.flushTo(lsn); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, WALOptions{Partitions: 4})
	defer func() { _ = r.Close() }()
	if _, ok := r.BlockMeta("m1"); ok {
		t.Fatal("removed member still resolves")
	}
	if v, ok := r.RetiredVersion("m1"); !ok || v != ver {
		t.Fatalf("removed member watermark = %d, %v; want %d", v, ok, ver)
	}
	if _, ok := r.BlockMeta("m2"); !ok {
		t.Fatal("untouched member lost")
	}
}

// TestDerivedRetireSkipsReregisteredBlock: a member re-registered as a
// plain block after the cascade clears its watermark live; replay's
// derivation must not resurrect it, or recovered state diverges from
// the pre-crash state.
func TestDerivedRetireSkipsReregisteredBlock(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 4})
	ver := registerPack(t, c)
	if _, err := c.Delete("pack"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(blockMeta("m1", 2, 3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	newVer := mustVersion(t, c, "m1")
	if newVer <= ver {
		t.Fatalf("live re-register version %d not above watermark %d", newVer, ver)
	}
	if _, ok := c.RetiredVersion("m1"); ok {
		t.Fatal("live re-register did not clear the watermark")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, WALOptions{Partitions: 4})
	defer func() { _ = r.Close() }()
	if _, ok := r.RetiredVersion("m1"); ok {
		t.Fatal("replay resurrected a watermark the live path had cleared")
	}
	if got := mustVersion(t, r, "m1"); got != newVer {
		t.Fatalf("recovered version %d, want %d", got, newVer)
	}
	// m2 was never re-registered: its derived watermark must be there.
	if v, ok := r.RetiredVersion("m2"); !ok || v != ver {
		t.Fatalf("m2 watermark = %d, %v; want %d", v, ok, ver)
	}
}
