package metadata

import (
	"context"
	"fmt"
	"sort"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/wire"
)

// Service is the metadata API shared by the in-process Catalog and the
// RPC-backed Client, so the client service works identically in
// single-process and distributed deployments.
type Service interface {
	Register(meta *model.BlockMeta) error
	Lookup(ids []model.BlockID) (map[model.BlockID]*model.BlockMeta, error)
	Delete(id model.BlockID) (*model.BlockMeta, error)
	UpdatePlacement(id model.BlockID, chunk int, to model.SiteID, expectVersion uint64) (uint64, error)
	BlocksOnSite(s model.SiteID) []model.BlockID
	Sites() []model.SiteID
	// Background-task coordination (tasks.go): the catalog is the durable
	// store the scheduler and the CLIs share.
	PutTask(t *model.TaskRecord) error
	ListTasks() []*model.TaskRecord
	DeleteTask(id string) error
	// Site administrative state: zone labels and drain/decommission.
	SetSiteInfo(info model.SiteInfo) error
	SiteInfos() map[model.SiteID]model.SiteInfo
}

var (
	_ Service = (*Catalog)(nil)
	_ Service = (*Client)(nil)
)

// RPC method numbers of the metadata service. New methods are appended at
// the end of the iota block — numbers are part of the wire protocol and
// must never be reordered (see DESIGN.md, "RPC method numbering").
const (
	methodRegister rpc.Method = iota + 1
	methodLookup
	methodDelete
	methodUpdatePlacement
	methodBlocksOnSite
	methodSites
	methodGetMetrics
	methodPutTask
	methodListTasks
	methodDeleteTask
	methodSetSiteInfo
	methodSiteInfos
)

// Bounds shared by the encoder's callers and the decoder: Register
// rejects metadata past these caps so that every record the WAL or a
// snapshot accepts is also decodable at replay (the decoder additionally
// bounds counts against the bytes actually present).
const (
	maxBlockSites  = 1 << 16
	maxPackMembers = 1 << 20
)

// encodedBlockMetaSize is the exact byte length EncodeBlockMeta produces
// for m: 65 fixed bytes (3 string prefixes, sites/members counts, the
// scalar fields) plus the variable payloads. Kept in lockstep with
// EncodeBlockMeta so Register can bound a record before logging it.
func encodedBlockMetaSize(m *model.BlockMeta) int {
	n := 65 + len(m.ID) + 8*len(m.Sites) + len(m.PackedIn)
	for _, pm := range m.Members {
		n += 20 + len(pm.ID)
	}
	return n
}

// EncodeBlockMeta serializes block metadata. The layout extends the
// original record in place (appended fields only, never reordered):
// stripe unit, packed-member linkage, and the container member table.
func EncodeBlockMeta(e *wire.Encoder, m *model.BlockMeta) {
	e.String(string(m.ID))
	e.Uint8(uint8(m.Scheme))
	e.Int64(m.Size)
	e.Uint32(uint32(m.K))
	e.Uint32(uint32(m.R))
	e.Int64(m.ChunkSize)
	e.Uint64(m.Version)
	e.Uint32(uint32(len(m.Sites)))
	for _, s := range m.Sites {
		e.Int64(int64(s))
	}
	e.Int64(m.StripeUnit)
	e.String(string(m.PackedIn))
	e.Int64(m.PackedOff)
	e.Uint32(uint32(len(m.Members)))
	for _, pm := range m.Members {
		e.String(string(pm.ID))
		e.Int64(pm.Off)
		e.Int64(pm.Len)
	}
}

// DecodeBlockMeta deserializes block metadata.
func DecodeBlockMeta(d *wire.Decoder) (*model.BlockMeta, error) {
	m := &model.BlockMeta{
		ID:     model.BlockID(d.String()),
		Scheme: model.Scheme(d.Uint8()),
	}
	m.Size = d.Int64()
	m.K = int(d.Uint32())
	m.R = int(d.Uint32())
	m.ChunkSize = d.Int64()
	m.Version = d.Uint64()
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Bound against the bytes actually present (8 per site id), not just
	// an absolute cap: a corrupt count must fail decode, not drive a
	// multi-gigabyte allocation.
	if n > maxBlockSites || n > d.Remaining()/8 {
		return nil, fmt.Errorf("metadata: absurd site count %d", n)
	}
	m.Sites = make([]model.SiteID, n)
	for i := range m.Sites {
		m.Sites[i] = model.SiteID(d.Int64())
	}
	m.StripeUnit = d.Int64()
	m.PackedIn = model.BlockID(d.String())
	m.PackedOff = d.Int64()
	mn := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	// A member encodes to at least 20 bytes (empty id + two i64s).
	if mn > maxPackMembers || mn > d.Remaining()/20 {
		return nil, fmt.Errorf("metadata: absurd member count %d", mn)
	}
	if mn > 0 {
		m.Members = make([]model.PackedMember, mn)
		for i := range m.Members {
			m.Members[i] = model.PackedMember{
				ID:  model.BlockID(d.String()),
				Off: d.Int64(),
				Len: d.Int64(),
			}
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Server exposes a Catalog over RPC.
type Server struct {
	catalog *Catalog
}

// NewServer wraps a catalog.
func NewServer(c *Catalog) *Server { return &Server{catalog: c} }

var _ rpc.Handler = (*Server)(nil)

// Handle dispatches one metadata RPC.
func (s *Server) Handle(_ context.Context, method rpc.Method, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	switch method {
	case methodRegister:
		meta, err := DecodeBlockMeta(d)
		if err != nil {
			return nil, err
		}
		return nil, s.catalog.Register(meta)

	case methodLookup:
		n := int(d.Uint32())
		if n < 0 || n > d.Remaining()/4 {
			return nil, fmt.Errorf("metadata: absurd id count %d", n)
		}
		ids := make([]model.BlockID, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, model.BlockID(d.String()))
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		metas, err := s.catalog.Lookup(ids)
		if err != nil {
			return nil, err
		}
		e := wire.NewEncoder(64 * len(metas))
		e.Uint32(uint32(len(ids)))
		for _, id := range ids {
			EncodeBlockMeta(e, metas[id])
		}
		return e.Bytes(), nil

	case methodDelete:
		id := model.BlockID(d.String())
		if err := d.Err(); err != nil {
			return nil, err
		}
		meta, err := s.catalog.Delete(id)
		if err != nil {
			return nil, err
		}
		e := wire.NewEncoder(64)
		EncodeBlockMeta(e, meta)
		return e.Bytes(), nil

	case methodUpdatePlacement:
		id := model.BlockID(d.String())
		chunk := int(d.Uint32())
		to := model.SiteID(d.Int64())
		expect := d.Uint64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		v, err := s.catalog.UpdatePlacement(id, chunk, to, expect)
		if err != nil {
			return nil, err
		}
		e := wire.NewEncoder(8)
		e.Uint64(v)
		return e.Bytes(), nil

	case methodBlocksOnSite:
		site := model.SiteID(d.Int64())
		if err := d.Err(); err != nil {
			return nil, err
		}
		ids := s.catalog.BlocksOnSite(site)
		e := wire.NewEncoder(16 * len(ids))
		e.Uint32(uint32(len(ids)))
		for _, id := range ids {
			e.String(string(id))
		}
		return e.Bytes(), nil

	case methodGetMetrics:
		return obs.MarshalSnapshot(s.catalog.MetricsSnapshot()), nil

	case methodPutTask:
		t, err := DecodeTaskRecord(d)
		if err != nil {
			return nil, err
		}
		return nil, s.catalog.PutTask(t)

	case methodListTasks:
		tasks := s.catalog.ListTasks()
		e := wire.NewEncoder(64 * len(tasks))
		e.Uint32(uint32(len(tasks)))
		for _, t := range tasks {
			EncodeTaskRecord(e, t)
		}
		return e.Bytes(), nil

	case methodDeleteTask:
		id := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, s.catalog.DeleteTask(id)

	case methodSetSiteInfo:
		info, err := DecodeSiteInfo(d)
		if err != nil {
			return nil, err
		}
		return nil, s.catalog.SetSiteInfo(info)

	case methodSiteInfos:
		infos := s.catalog.SiteInfos()
		ids := make([]model.SiteID, 0, len(infos))
		for id := range infos {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e := wire.NewEncoder(24 * len(infos))
		e.Uint32(uint32(len(infos)))
		for _, id := range ids {
			EncodeSiteInfo(e, infos[id])
		}
		return e.Bytes(), nil

	case methodSites:
		sites := s.catalog.Sites()
		e := wire.NewEncoder(8 * len(sites))
		e.Uint32(uint32(len(sites)))
		for _, s := range sites {
			e.Int64(int64(s))
		}
		return e.Bytes(), nil

	default:
		return nil, fmt.Errorf("metadata: unknown method %d", method)
	}
}

// Client is an RPC-backed Service implementation.
type Client struct {
	rc *rpc.Client
}

// NewClient wraps an RPC client connected to a metadata server.
func NewClient(rc *rpc.Client) *Client { return &Client{rc: rc} }

// Register implements Service.
func (c *Client) Register(meta *model.BlockMeta) error {
	e := wire.NewEncoder(64)
	EncodeBlockMeta(e, meta)
	_, err := c.rc.Call(methodRegister, e.Bytes())
	return err
}

// Lookup implements Service.
func (c *Client) Lookup(ids []model.BlockID) (map[model.BlockID]*model.BlockMeta, error) {
	e := wire.NewEncoder(16 * len(ids))
	e.Uint32(uint32(len(ids)))
	for _, id := range ids {
		e.String(string(id))
	}
	resp, err := c.rc.Call(methodLookup, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	if n < 0 || n > d.Remaining()/45 {
		return nil, fmt.Errorf("metadata: absurd meta count %d", n)
	}
	out := make(map[model.BlockID]*model.BlockMeta, n)
	for i := 0; i < n; i++ {
		meta, err := DecodeBlockMeta(d)
		if err != nil {
			return nil, err
		}
		out[meta.ID] = meta
	}
	return out, nil
}

// Delete implements Service.
func (c *Client) Delete(id model.BlockID) (*model.BlockMeta, error) {
	e := wire.NewEncoder(16)
	e.String(string(id))
	resp, err := c.rc.Call(methodDelete, e.Bytes())
	if err != nil {
		return nil, err
	}
	return DecodeBlockMeta(wire.NewDecoder(resp))
}

// UpdatePlacement implements Service.
func (c *Client) UpdatePlacement(id model.BlockID, chunk int, to model.SiteID, expectVersion uint64) (uint64, error) {
	e := wire.NewEncoder(32)
	e.String(string(id))
	e.Uint32(uint32(chunk))
	e.Int64(int64(to))
	e.Uint64(expectVersion)
	resp, err := c.rc.Call(methodUpdatePlacement, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := wire.NewDecoder(resp)
	v := d.Uint64()
	return v, d.Err()
}

// BlocksOnSite implements Service. RPC failures yield an empty list, as
// this path is advisory (repair rescans).
func (c *Client) BlocksOnSite(s model.SiteID) []model.BlockID {
	e := wire.NewEncoder(8)
	e.Int64(int64(s))
	resp, err := c.rc.Call(methodBlocksOnSite, e.Bytes())
	if err != nil {
		return nil
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	if n < 0 || n > d.Remaining()/4 {
		return nil
	}
	out := make([]model.BlockID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, model.BlockID(d.String()))
	}
	if d.Err() != nil {
		return nil
	}
	return out
}

// PutTask implements Service.
func (c *Client) PutTask(t *model.TaskRecord) error {
	e := wire.NewEncoder(64)
	EncodeTaskRecord(e, t)
	_, err := c.rc.Call(methodPutTask, e.Bytes())
	return err
}

// ListTasks implements Service. RPC failures yield an empty list, as the
// scheduler re-syncs on its next pass.
func (c *Client) ListTasks() []*model.TaskRecord {
	resp, err := c.rc.Call(methodListTasks, nil)
	if err != nil {
		return nil
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	if n < 0 || n > d.Remaining()/45 {
		return nil
	}
	out := make([]*model.TaskRecord, 0, n)
	for i := 0; i < n; i++ {
		t, err := DecodeTaskRecord(d)
		if err != nil {
			return nil
		}
		out = append(out, t)
	}
	return out
}

// DeleteTask implements Service.
func (c *Client) DeleteTask(id string) error {
	e := wire.NewEncoder(16)
	e.String(id)
	_, err := c.rc.Call(methodDeleteTask, e.Bytes())
	return err
}

// SetSiteInfo implements Service.
func (c *Client) SetSiteInfo(info model.SiteInfo) error {
	e := wire.NewEncoder(24)
	EncodeSiteInfo(e, info)
	_, err := c.rc.Call(methodSetSiteInfo, e.Bytes())
	return err
}

// SiteInfos implements Service. RPC failures yield an empty map; callers
// treat missing info as zone-less active sites.
func (c *Client) SiteInfos() map[model.SiteID]model.SiteInfo {
	resp, err := c.rc.Call(methodSiteInfos, nil)
	if err != nil {
		return nil
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	if n < 0 || n > d.Remaining()/13 {
		return nil
	}
	out := make(map[model.SiteID]model.SiteInfo, n)
	for i := 0; i < n; i++ {
		info, err := DecodeSiteInfo(d)
		if err != nil {
			return nil
		}
		out[info.ID] = info
	}
	return out
}

// Metrics fetches the remote metadata service's metrics snapshot.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	resp, err := c.rc.Call(methodGetMetrics, nil)
	if err != nil {
		return nil, err
	}
	return obs.UnmarshalSnapshot(resp)
}

// Sites implements Service. RPC failures yield an empty list.
func (c *Client) Sites() []model.SiteID {
	resp, err := c.rc.Call(methodSites, nil)
	if err != nil {
		return nil
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uint32())
	if n < 0 || n > d.Remaining()/8 {
		return nil
	}
	out := make([]model.SiteID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, model.SiteID(d.Int64()))
	}
	if d.Err() != nil {
		return nil
	}
	return out
}
