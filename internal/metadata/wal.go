package metadata

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/obs"
	"ecstore/internal/wire"
)

// Write-ahead log. Every catalog mutation appends one or more logical
// records, each confined to the partition its key hashes to, so one
// partition's (snapshot + log) is self-contained and recovery never
// needs cross-partition ordering. On disk a record is a length-prefixed
// frame with a CRC32-C over the payload:
//
//	u32 payload length | u32 CRC32-C(payload) | payload
//	payload = u8 record type | u64 LSN | record body
//
// LSNs are per-partition and strictly increasing; a partition snapshot
// records the highest LSN it covers, and replay skips records at or
// below it — which is what makes a crash between snapshot and segment
// truncation harmless. Appends go to an in-memory buffer under the
// partition lock (so buffer order always equals mutation order) and are
// written + fsynced by group commit: every FsyncInterval by the flusher
// goroutine, or synchronously before the operation returns when
// FsyncInterval is zero.
const (
	recRegister     = 1 // body: BlockMeta (stored form, version final)
	recDelete       = 2 // body: id, final version
	recUpdate       = 3 // body: id, chunk, destination site, new version
	recRetire       = 4 // body: id, watermark version (member cascade)
	recMemberRemove = 5 // body: container id, member id
	recSiteAdd      = 6 // body: site id
	recSiteInfo     = 7 // body: SiteInfo
	recTaskPut      = 8 // body: TaskRecord
	recTaskDel      = 9 // body: task id
)

// ErrBadWALRecord reports a corrupt record in the interior of a WAL
// segment (tail corruption is tolerated and truncated instead).
var ErrBadWALRecord = errors.New("metadata: bad WAL record")

// ErrWALFailed marks the catalog fail-stopped: an earlier WAL write or
// fsync failed, so the durable log may be behind the in-memory state and
// every further mutation is rejected. Continuing past a failed fsync
// would silently lose acknowledged records — the kernel may have dropped
// the dirty pages, so a later "successful" fsync proves nothing about
// them. Recovery is a process restart, which replays only what actually
// reached disk.
var ErrWALFailed = errors.New("metadata: WAL write failed, catalog no longer accepts mutations")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walFrameHeader is the on-disk byte overhead per record.
const walFrameHeader = 8

// walRecordOverhead is the payload byte overhead per record (u8 type +
// u64 LSN) ahead of the record body.
const walRecordOverhead = 9

// maxWALBody bounds a record body at append time to what replay accepts:
// replaySegment and loadPartitionSnapshot reject any frame payload above
// wire.MaxFrameSize, so an oversized record that the WAL accepted would
// make an acknowledged mutation unrecoverable (torn-tail truncation in
// the final segment, ErrBadWALRecord elsewhere). Mutations whose encoded
// body can exceed this must reject the input before logging it.
const maxWALBody = wire.MaxFrameSize - walRecordOverhead

// flushThresholdBytes forces an early flush in group-commit mode when a
// partition buffers this much between ticks.
const flushThresholdBytes = 1 << 20

// WALOptions configures a durable catalog opened with Open.
type WALOptions struct {
	// Partitions is the catalog shard count (DefaultPartitions when
	// zero). Changing it across restarts is safe: recovery routes
	// replayed records by key, then rewrites all state under the new
	// layout.
	Partitions int
	// FsyncInterval is the group-commit window. Zero means every
	// operation is fsynced before it returns (full durability); a
	// positive interval bounds the data-loss window on power failure
	// to that duration while batching fsyncs across operations.
	FsyncInterval time.Duration
	// CompactBytes triggers per-partition snapshot + WAL truncation
	// once a partition's log grows past this many bytes since its last
	// snapshot (default 8 MiB).
	CompactBytes int64
}

func (o WALOptions) withDefaults() WALOptions {
	if o.Partitions < 1 {
		o.Partitions = DefaultPartitions
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 8 << 20
	}
	return o
}

// walMetrics holds the meta_wal_* instruments; all obs types are
// nil-safe, so a zero walMetrics silently drops counts until
// EnableMetrics installs real counters.
type walMetrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	flushes     *obs.Counter
	errorsTotal *obs.Counter
	compactions *obs.Counter
	replayRecs  *obs.Counter
	replayTorn  *obs.Counter
	snapBytes   *obs.Counter
}

// walSet owns a durable catalog's per-partition logs, the group-commit
// flusher and compaction.
type walSet struct {
	dir  string
	opts WALOptions
	cat  *Catalog

	// met is installed by EnableMetrics after Open; atomic because the
	// flusher may already be running.
	met atomic.Pointer[walMetrics]

	// failed latches the first write/fsync error (wrapped in
	// ErrWALFailed) for the whole catalog; once set, every mutation
	// entry point returns it before touching any state.
	failed atomic.Pointer[error]

	// Recovery statistics, recorded single-threaded in Open and folded
	// into the counters when metrics are enabled.
	replayedRecords int64
	tornTails       int64

	done chan struct{}
	wg   sync.WaitGroup
}

// noMetrics is the instrument set before EnableMetrics: all-nil obs
// counters, whose methods are nil-safe no-ops.
var noMetrics = &walMetrics{}

func (w *walSet) metrics() *walMetrics {
	if w == nil {
		return noMetrics
	}
	if m := w.met.Load(); m != nil {
		return m
	}
	return noMetrics
}

// fail latches the first WAL failure, flipping the catalog into
// fail-stop mode.
func (w *walSet) fail(err error) {
	if w == nil || err == nil {
		return
	}
	wrapped := fmt.Errorf("%w: %w", ErrWALFailed, err)
	w.failed.CompareAndSwap(nil, &wrapped)
}

// failErr reports the latched WAL failure, nil while the log is healthy
// (and always nil for volatile catalogs, which have no log to fail).
func (w *walSet) failErr() error {
	if w == nil {
		return nil
	}
	if p := w.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// enableMetrics installs the meta_wal_* counters (no-op on volatile
// catalogs).
func (w *walSet) enableMetrics(reg *obs.Registry) {
	if w == nil || reg == nil {
		return
	}
	m := &walMetrics{
		appends:     reg.Counter("meta_wal_appends_total", "WAL records appended"),
		appendBytes: reg.Counter("meta_wal_append_bytes_total", "WAL bytes appended (framed)"),
		fsyncs:      reg.Counter("meta_wal_fsyncs_total", "WAL fsync calls"),
		flushes:     reg.Counter("meta_wal_flushes_total", "WAL group-commit flushes"),
		errorsTotal: reg.Counter("meta_wal_errors_total", "WAL write/fsync failures"),
		compactions: reg.Counter("meta_wal_compactions_total", "partition snapshot+truncate compactions"),
		replayRecs:  reg.Counter("meta_wal_replay_records_total", "WAL records replayed at recovery"),
		replayTorn:  reg.Counter("meta_wal_replay_torn_tails_total", "torn WAL tails truncated at recovery"),
		snapBytes:   reg.Counter("meta_wal_snapshot_bytes_total", "partition snapshot bytes written"),
	}
	m.replayRecs.Add(w.replayedRecords)
	m.replayTorn.Add(w.tornTails)
	w.met.Store(m)
}

// partLog is one partition's write-ahead log: an append buffer ordered
// by the partition lock, an active segment file, and the LSN counter.
type partLog struct {
	set *walSet
	idx int
	dir string

	// mu guards the append buffer and the LSN counter. It nests inside
	// the partition lock and gmu (lock order: partition.mu, gmu,
	// partLog.mu) and is a leaf — nothing is acquired under it.
	mu      sync.Mutex
	pending []byte
	lsn     uint64

	// fileMu guards the segment file, the synced watermark and
	// compaction bookkeeping. File I/O happens only under fileMu, never
	// under the partition lock.
	fileMu    sync.Mutex
	f         *os.File
	segStart  uint64 // lowest LSN that may appear in the active segment
	synced    uint64 // highest LSN durable on disk
	sinceSnap int64  // framed bytes appended since the last snapshot
	lastErr   error

	compacting atomic.Bool
}

// append encodes one record under the buffer lock, assigning the next
// LSN. The caller holds the partition lock (or gmu for control
// records), so buffer order equals mutation order. Returns the record's
// LSN, or 0 on a volatile catalog.
func (l *partLog) append(recType uint8, body func(*wire.Encoder)) uint64 {
	if l == nil {
		return 0
	}
	e := wire.NewEncoder(64)
	e.Uint8(recType)
	e.Uint64(0) // LSN placeholder, patched below
	body(e)
	payload := e.Bytes()
	if len(payload) > wire.MaxFrameSize {
		// Every mutation bounds its input before logging (Register's
		// member caps, PutTask/SetSiteInfo string caps), so this is a
		// backstop: buffering the record would poison replay, so drop
		// it and fail-stop instead — commit surfaces the latched error.
		l.set.fail(fmt.Errorf("metadata: wal p%d record type %d: %d-byte payload exceeds frame bound %d",
			l.idx, recType, len(payload), wire.MaxFrameSize))
		l.set.metrics().errorsTotal.Inc()
		return 0
	}

	l.mu.Lock()
	l.lsn++
	lsn := l.lsn
	binary.BigEndian.PutUint64(payload[1:9], lsn)
	var hdr [walFrameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, payload...)
	l.mu.Unlock()

	m := l.set.metrics()
	m.appends.Inc()
	m.appendBytes.Add(int64(walFrameHeader + len(payload)))
	return lsn
}

func (l *partLog) appendRegister(stored *model.BlockMeta) uint64 {
	return l.append(recRegister, func(e *wire.Encoder) { EncodeBlockMeta(e, stored) })
}

func (l *partLog) appendDelete(id model.BlockID, version uint64) uint64 {
	return l.append(recDelete, func(e *wire.Encoder) { e.String(string(id)); e.Uint64(version) })
}

func (l *partLog) appendUpdate(id model.BlockID, chunk int, to model.SiteID, version uint64) uint64 {
	return l.append(recUpdate, func(e *wire.Encoder) {
		e.String(string(id))
		e.Uint32(uint32(chunk))
		e.Int64(int64(to))
		e.Uint64(version)
	})
}

func (l *partLog) appendRetire(id model.BlockID, version uint64) uint64 {
	return l.append(recRetire, func(e *wire.Encoder) { e.String(string(id)); e.Uint64(version) })
}

func (l *partLog) appendMemberRemove(container, member model.BlockID) uint64 {
	return l.append(recMemberRemove, func(e *wire.Encoder) {
		e.String(string(container))
		e.String(string(member))
	})
}

func (l *partLog) appendSiteAdd(s model.SiteID) uint64 {
	return l.append(recSiteAdd, func(e *wire.Encoder) { e.Int64(int64(s)) })
}

func (l *partLog) appendSiteInfo(info model.SiteInfo) uint64 {
	return l.append(recSiteInfo, func(e *wire.Encoder) { EncodeSiteInfo(e, info) })
}

func (l *partLog) appendTaskPut(t *model.TaskRecord) uint64 {
	return l.append(recTaskPut, func(e *wire.Encoder) { EncodeTaskRecord(e, t) })
}

func (l *partLog) appendTaskDel(id string) uint64 {
	return l.append(recTaskDel, func(e *wire.Encoder) { e.String(id) })
}

// buffered reports the current append-buffer size.
func (l *partLog) buffered() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// flushLocked writes and fsyncs everything buffered. Caller holds
// fileMu. Any failure latches lastErr (and the catalog-wide fail-stop):
// a failed write leaves the segment in an unknown state — a partial
// frame in the middle of what a retry would append — and a failed fsync
// may have dropped the dirty pages entirely, so neither is retried.
func (l *partLog) flushLocked() error {
	if l.lastErr != nil {
		return l.lastErr
	}
	l.mu.Lock()
	buf := l.pending
	l.pending = nil
	mark := l.lsn
	l.mu.Unlock()
	m := l.set.metrics()
	if len(buf) > 0 {
		if _, err := l.f.Write(buf); err != nil {
			// Put the records back so synced can never advance past
			// their LSNs and leave a silent gap in the log; lastErr
			// guarantees they are never re-written either.
			l.mu.Lock()
			l.pending = append(buf, l.pending...)
			l.mu.Unlock()
			l.lastErr = fmt.Errorf("metadata: wal p%d write: %w", l.idx, err)
			l.set.fail(l.lastErr)
			m.errorsTotal.Inc()
			return l.lastErr
		}
		l.sinceSnap += int64(len(buf))
		m.flushes.Inc()
	}
	if mark > l.synced {
		if err := l.f.Sync(); err != nil {
			l.lastErr = fmt.Errorf("metadata: wal p%d fsync: %w", l.idx, err)
			l.set.fail(l.lastErr)
			m.errorsTotal.Inc()
			return l.lastErr
		}
		l.synced = mark
		m.fsyncs.Inc()
	}
	return nil
}

// flushTo makes every record up to lsn durable, batching with whatever
// else is buffered (group commit across concurrent operations).
func (l *partLog) flushTo(lsn uint64) error {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	if l.synced >= lsn {
		return nil
	}
	return l.flushLocked()
}

// commit enforces the durability contract after an append: in sync mode
// the record is fsynced before the operation returns and any failure is
// the mutation's failure; in group-commit mode an oversized buffer is
// flushed early, otherwise the flusher's next tick picks it up. A
// latched WAL failure (from this flush, a flusher tick, or an oversized
// append) is always surfaced so no caller acknowledges a mutation the
// log cannot make durable.
func (w *walSet) commit(p *partition, lsn uint64) error {
	if w == nil {
		return nil
	}
	if err := w.failErr(); err != nil {
		return err
	}
	if lsn == 0 {
		return nil
	}
	l := p.log
	if w.opts.FsyncInterval == 0 || l.buffered() >= flushThresholdBytes {
		if err := l.flushTo(lsn); err != nil {
			return err
		}
	}
	w.maybeCompact(l)
	return nil
}

// maybeCompact runs a partition compaction on the calling goroutine when
// the log outgrew the threshold. At most one compaction per partition
// runs at a time.
func (w *walSet) maybeCompact(l *partLog) {
	l.fileMu.Lock()
	due := l.sinceSnap >= w.opts.CompactBytes
	l.fileMu.Unlock()
	if !due {
		return
	}
	_ = w.compactPartition(l.idx)
}

// segmentName formats an active segment file name from its starting LSN.
func segmentName(start uint64) string {
	return fmt.Sprintf("wal-%016x.log", start)
}

// parseSegmentName extracts the starting LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if len(name) != len("wal-0000000000000000.log") || name[:4] != "wal-" || name[len(name)-4:] != ".log" {
		return 0, false
	}
	v, err := strconv.ParseUint(name[4:20], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// syncDir fsyncs a directory so renames and file creations within it are
// durable (the missing half of "atomic rename" persistence).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("open dir %s: %w", dir, err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("fsync dir %s: %w", dir, syncErr)
	}
	return closeErr
}

// createSegment creates a fresh, empty, durable segment file. O_TRUNC
// rather than O_EXCL: at boot the name can collide with a leftover
// pre-crash segment holding only a torn (already discarded) tail, which
// must not pollute the new segment.
func createSegment(dir string, start uint64) (*os.File, error) {
	path := filepath.Join(dir, segmentName(start))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("create segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("sync segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

// rotate flushes the active segment and switches appends to a fresh one.
// Returns the new segment's starting LSN; every record in older segments
// has a strictly lower LSN.
func (l *partLog) rotate() (uint64, error) {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	if err := l.flushLocked(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	start := l.lsn + 1
	l.mu.Unlock()
	f, err := createSegment(l.dir, start)
	if err != nil {
		return 0, err
	}
	_ = l.f.Close()
	l.f = f
	l.segStart = start
	return start, nil
}

// removeSegmentsBefore deletes every segment older than the active one,
// then makes the deletions durable. Called after a snapshot covering
// those segments has been committed.
func (l *partLog) removeSegmentsBefore(activeStart uint64) error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	removed := false
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		names = append(names, ent.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		start, ok := parseSegmentName(name)
		if !ok || start >= activeStart {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// flusher is the group-commit loop: flush every partition each interval,
// compacting any partition whose log outgrew the threshold.
func (w *walSet) flusher() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.opts.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, p := range w.cat.parts {
				_ = p.log.flushTo(^uint64(0) - 1)
				w.maybeCompact(p.log)
			}
		case <-w.done:
			return
		}
	}
}

// ReplayStats reports how many WAL records boot recovery replayed and
// how many torn segment tails it discarded, for operators (and the
// ab-meta bench) to gauge recovery work. Both are zero for volatile
// catalogs and for boots that loaded only snapshots.
func (c *Catalog) ReplayStats() (records, tornTails int64) {
	if c.wal == nil {
		return 0, 0
	}
	return c.wal.replayedRecords, c.wal.tornTails
}

// Sync forces every buffered record to durable storage.
func (c *Catalog) Sync() error {
	if c.wal == nil {
		return nil
	}
	var first error
	for _, p := range c.parts {
		if err := p.log.flushTo(^uint64(0) - 1); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Compact snapshots every partition and truncates its WAL.
func (c *Catalog) Compact() error {
	if c.wal == nil {
		return nil
	}
	var first error
	for i := range c.parts {
		if err := c.wal.compactPartition(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes the logs, stops the flusher and releases the segment
// files. The catalog remains readable but further mutations are no
// longer made durable; Close is for process shutdown.
func (c *Catalog) Close() error {
	if c.wal == nil {
		return nil
	}
	w := c.wal
	if w.done != nil {
		close(w.done)
		w.wg.Wait()
		w.done = nil
	}
	err := c.Sync()
	for _, p := range c.parts {
		p.log.fileMu.Lock()
		if p.log.f != nil {
			_ = p.log.f.Close()
			p.log.f = nil
		}
		p.log.fileMu.Unlock()
	}
	return err
}

// compactPartition writes one partition's snapshot and truncates its
// log: rotate to a fresh segment, snapshot the partition state (which
// then covers every older segment), commit the snapshot atomically with
// fsync on the file and its directory, and delete the old segments. A
// crash at any point leaves a recoverable combination — the snapshot's
// LSN tells replay which records to skip.
func (w *walSet) compactPartition(idx int) error {
	p := w.cat.parts[idx]
	l := p.log
	if !l.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer l.compacting.Store(false)

	activeStart, err := l.rotate()
	if err != nil {
		return err
	}
	data, err := w.cat.encodePartitionSnapshot(idx)
	if err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, partSnapshotName+".tmp")
	final := filepath.Join(l.dir, partSnapshotName)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("create part snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("write part snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("sync part snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("close part snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("commit part snapshot: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	if err := l.removeSegmentsBefore(activeStart); err != nil {
		return err
	}
	l.fileMu.Lock()
	l.sinceSnap = 0
	l.fileMu.Unlock()
	m := w.metrics()
	m.compactions.Inc()
	m.snapBytes.Add(int64(len(data)))
	return nil
}
