package metadata

import (
	"errors"
	"sync"
	"testing"

	"ecstore/internal/model"
)

func sites(n int) []model.SiteID {
	out := make([]model.SiteID, n)
	for i := range out {
		out[i] = model.SiteID(i + 1)
	}
	return out
}

func blockMeta(id model.BlockID, ss ...model.SiteID) *model.BlockMeta {
	return &model.BlockMeta{
		ID:        id,
		Scheme:    model.SchemeErasure,
		K:         2,
		R:         len(ss) - 2,
		Size:      200,
		ChunkSize: 100,
		Sites:     ss,
	}
}

func TestRegisterAndLookup(t *testing.T) {
	c := NewCatalog(sites(6))
	if err := c.Register(blockMeta("a", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup([]model.BlockID{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if got["a"].Sites[2] != 3 {
		t.Fatalf("lookup sites = %v", got["a"].Sites)
	}
	// Returned metadata is a copy.
	got["a"].Sites[0] = 99
	again, _ := c.BlockMeta("a")
	if again.Sites[0] != 1 {
		t.Fatal("Lookup aliases catalog state")
	}
}

func TestRegisterValidation(t *testing.T) {
	c := NewCatalog(sites(4))
	cases := []struct {
		name string
		meta *model.BlockMeta
		want error
	}{
		{"nil", nil, ErrInvalidBlock},
		{"empty id", blockMeta("", 1, 2, 3), ErrInvalidBlock},
		{"no sites", &model.BlockMeta{ID: "x", Scheme: model.SchemeErasure, K: 2, R: 1}, ErrInvalidBlock},
		{"wrong site count", &model.BlockMeta{ID: "x", Scheme: model.SchemeErasure, K: 2, R: 2, Sites: []model.SiteID{1, 2}}, ErrInvalidBlock},
		{"duplicate site", blockMeta("x", 1, 1, 2), ErrInvalidBlock},
		{"unknown site", blockMeta("x", 1, 2, 9), ErrUnknownSite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := c.Register(tc.meta); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}

	if err := c.Register(blockMeta("dup", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(blockMeta("dup", 1, 2, 3)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate register err = %v", err)
	}
}

func TestLookupMissing(t *testing.T) {
	c := NewCatalog(sites(3))
	if _, err := c.Lookup([]model.BlockID{"ghost"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDelete(t *testing.T) {
	c := NewCatalog(sites(4))
	if err := c.Register(blockMeta("a", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	meta, err := c.Delete("a")
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "a" {
		t.Fatalf("deleted meta id = %s", meta.ID)
	}
	if _, err := c.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	if got := c.BlocksOnSite(1); len(got) != 0 {
		t.Fatalf("site index not cleaned: %v", got)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestUpdatePlacement(t *testing.T) {
	c := NewCatalog(sites(6))
	if err := c.Register(blockMeta("a", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}

	v, err := c.UpdatePlacement("a", 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}
	meta, _ := c.BlockMeta("a")
	if meta.Sites[0] != 5 {
		t.Fatalf("sites = %v", meta.Sites)
	}
	// Index moved.
	if got := c.BlocksOnSite(1); len(got) != 0 {
		t.Fatalf("old site still indexed: %v", got)
	}
	if got := c.BlocksOnSite(5); len(got) != 1 || got[0] != "a" {
		t.Fatalf("new site not indexed: %v", got)
	}
}

func TestUpdatePlacementErrors(t *testing.T) {
	c := NewCatalog(sites(6))
	if err := c.Register(blockMeta("a", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}

	if _, err := c.UpdatePlacement("ghost", 0, 5, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing block err = %v", err)
	}
	if _, err := c.UpdatePlacement("a", 9, 5, 0); !errors.Is(err, ErrInvalidChunk) {
		t.Fatalf("bad chunk err = %v", err)
	}
	if _, err := c.UpdatePlacement("a", 0, 5, 7); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale version err = %v", err)
	}
	// Destination holds another chunk of the block.
	if _, err := c.UpdatePlacement("a", 0, 2, 0); !errors.Is(err, ErrChunkConflict) {
		t.Fatalf("conflict err = %v", err)
	}
	if _, err := c.UpdatePlacement("a", 0, 42, 0); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("unknown site err = %v", err)
	}
	// Same-site move is a no-op preserving version.
	v, err := c.UpdatePlacement("a", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("no-op move bumped version to %d", v)
	}
}

func TestUpdatePlacementKeepsIndexWhenOtherChunkRemains(t *testing.T) {
	// Two blocks so a site hosts chunks from both.
	c := NewCatalog(sites(6))
	if err := c.Register(blockMeta("a", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(blockMeta("b", 1, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdatePlacement("a", 0, 6, 0); err != nil {
		t.Fatal(err)
	}
	// Site 1 still hosts a chunk of b.
	if got := c.BlocksOnSite(1); len(got) != 1 || got[0] != "b" {
		t.Fatalf("site 1 index = %v", got)
	}
}

func TestBlocksOnSiteSorted(t *testing.T) {
	c := NewCatalog(sites(6))
	_ = c.Register(blockMeta("zed", 1, 2, 3))
	_ = c.Register(blockMeta("abc", 1, 4, 5))
	got := c.BlocksOnSite(1)
	if len(got) != 2 || got[0] != "abc" || got[1] != "zed" {
		t.Fatalf("BlocksOnSite = %v", got)
	}
}

func TestForEach(t *testing.T) {
	c := NewCatalog(sites(6))
	_ = c.Register(blockMeta("a", 1, 2, 3))
	_ = c.Register(blockMeta("b", 2, 3, 4))
	count := 0
	c.ForEach(func(m *model.BlockMeta) bool {
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("ForEach visited %d", count)
	}
	// Early stop.
	count = 0
	c.ForEach(func(m *model.BlockMeta) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("ForEach early-stop visited %d", count)
	}
}

func TestConcurrentPlacementUpdates(t *testing.T) {
	c := NewCatalog(sites(32))
	if err := c.Register(blockMeta("a", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	// Many goroutines race CAS updates; exactly the winners chain
	// versions, and the final state must be consistent.
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				meta, ok := c.BlockMeta("a")
				if !ok {
					return
				}
				target := model.SiteID(4 + (g*20+i)%28)
				_, _ = c.UpdatePlacement("a", 0, target, meta.Version)
			}
		}(g)
	}
	wg.Wait()
	meta, _ := c.BlockMeta("a")
	seen := map[model.SiteID]bool{}
	for _, s := range meta.Sites {
		if seen[s] {
			t.Fatalf("fault tolerance violated: %v", meta.Sites)
		}
		seen[s] = true
	}
	// Index agrees with placement.
	for _, s := range meta.Sites {
		found := false
		for _, id := range c.BlocksOnSite(s) {
			if id == "a" {
				found = true
			}
		}
		if !found {
			t.Fatalf("site %d missing from index", s)
		}
	}
}

func TestAddSite(t *testing.T) {
	c := NewCatalog(sites(2))
	if err := c.Register(blockMeta("a", 1, 2, 3)); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("err = %v", err)
	}
	if err := c.AddSite(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(blockMeta("a", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	got := c.Sites()
	if len(got) != 3 {
		t.Fatalf("Sites = %v", got)
	}
}

func TestVersionsStayMonotonicAcrossRecreate(t *testing.T) {
	c := NewCatalog(sites(6))
	if err := c.Register(blockMeta("a", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	// Advance the version past zero, then delete the block.
	if _, err := c.UpdatePlacement("a", 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdatePlacement("a", 0, 6, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}

	// A re-created block must resume numbering after the retired
	// version: a version-keyed cache would otherwise alias entries of
	// the previous incarnation (the ABA problem).
	if err := c.Register(blockMeta("a", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	meta, ok := c.BlockMeta("a")
	if !ok {
		t.Fatal("re-created block missing")
	}
	if meta.Version != 3 {
		t.Fatalf("re-created version = %d, want 3 (after retired 2)", meta.Version)
	}

	// A third lifetime keeps climbing.
	if _, err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(blockMeta("a", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	meta, _ = c.BlockMeta("a")
	if meta.Version != 4 {
		t.Fatalf("third lifetime version = %d, want 4", meta.Version)
	}

	// Unrelated blocks still start at zero.
	if err := c.Register(blockMeta("b", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if meta, _ := c.BlockMeta("b"); meta.Version != 0 {
		t.Fatalf("fresh block version = %d, want 0", meta.Version)
	}
}
