package metadata

import (
	"fmt"
	"sort"

	"ecstore/internal/model"
	"ecstore/internal/wire"
)

// The catalog doubles as the control plane's durable coordination point
// for background work: task records and per-site administrative state
// (zone label, active/draining/decommissioned) live here, persist in
// snapshots and the write-ahead log, and are reachable over RPC — so
// the scheduler survives a restart with its queue intact and the CLI
// can enqueue a drain or a scrub against a running cluster with nothing
// but a metadata connection. The in-memory maps are global (they are
// read by every operation), but each record's durability routes to the
// partition its key hashes to, so all WAL records about one task or one
// site stay totally ordered within a single log.

// ErrInvalidTask reports a task record missing its identity fields.
var ErrInvalidTask = fmt.Errorf("metadata: invalid task record")

// encodedTaskRecordSize is the exact byte length EncodeTaskRecord
// produces for t: 65 fixed bytes (5 string prefixes, 3 u32, 4 i64, u8)
// plus the string payloads.
func encodedTaskRecordSize(t *model.TaskRecord) int {
	return 65 + len(t.ID) + len(t.Type) + len(t.Block) + len(t.Cursor) + len(t.LastError)
}

// PutTask inserts or replaces a task record by ID.
func (c *Catalog) PutTask(t *model.TaskRecord) error {
	if err := c.walFailed(); err != nil {
		return err
	}
	if t == nil || t.ID == "" || t.Type == "" {
		return ErrInvalidTask
	}
	if sz := encodedTaskRecordSize(t); sz > maxWALBody {
		return fmt.Errorf("%w: %d bytes encoded exceeds the %d-byte WAL record bound", ErrInvalidTask, sz, maxWALBody)
	}
	p := c.taskPart(t.ID)
	c.gmu.Lock()
	stored := t.Clone()
	c.tasks[t.ID] = stored
	lsn := p.log.appendTaskPut(stored)
	c.gmu.Unlock()
	return c.wal.commit(p, lsn)
}

// ListTasks returns copies of every task record, sorted by ID.
func (c *Catalog) ListTasks() []*model.TaskRecord {
	c.gmu.RLock()
	defer c.gmu.RUnlock()
	ids := make([]string, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*model.TaskRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.tasks[id].Clone())
	}
	return out
}

// DeleteTask removes a task record; removing a missing id is a no-op.
func (c *Catalog) DeleteTask(id string) error {
	if err := c.walFailed(); err != nil {
		return err
	}
	p := c.taskPart(id)
	c.gmu.Lock()
	if _, ok := c.tasks[id]; !ok {
		c.gmu.Unlock()
		return nil
	}
	delete(c.tasks, id)
	lsn := p.log.appendTaskDel(id)
	c.gmu.Unlock()
	return c.wal.commit(p, lsn)
}

// SetSiteInfo records a site's zone label and administrative state. The
// site must be known to the catalog.
func (c *Catalog) SetSiteInfo(info model.SiteInfo) error {
	if err := c.walFailed(); err != nil {
		return err
	}
	// i64 id + string prefix + u8 state ahead of the zone bytes.
	if sz := 13 + len(info.Zone); sz > maxWALBody {
		return fmt.Errorf("metadata: site %d zone label encodes to %d bytes, exceeding the %d-byte WAL record bound", info.ID, sz, maxWALBody)
	}
	p := c.sitePart(info.ID)
	c.gmu.Lock()
	if !c.sites[info.ID] {
		c.gmu.Unlock()
		return fmt.Errorf("%w: site %d", ErrUnknownSite, info.ID)
	}
	c.siteInfo[info.ID] = info
	lsn := p.log.appendSiteInfo(info)
	c.gmu.Unlock()
	return c.wal.commit(p, lsn)
}

// SiteInfos returns the administrative record of every known site. Sites
// never configured get the zero record (no zone, active).
func (c *Catalog) SiteInfos() map[model.SiteID]model.SiteInfo {
	c.gmu.RLock()
	defer c.gmu.RUnlock()
	out := make(map[model.SiteID]model.SiteInfo, len(c.sites))
	for s := range c.sites {
		info, ok := c.siteInfo[s]
		if !ok {
			info = model.SiteInfo{ID: s}
		}
		out[s] = info
	}
	return out
}

// EncodeTaskRecord serializes a task record (appended fields only, never
// reordered — task frames live in snapshots and on the wire).
func EncodeTaskRecord(e *wire.Encoder, t *model.TaskRecord) {
	e.String(t.ID)
	e.String(t.Type)
	e.Int64(int64(t.Site))
	e.String(string(t.Block))
	e.Uint32(uint32(t.Chunk))
	e.Int64(int64(t.Dest))
	e.Uint32(uint32(t.Priority))
	e.Uint8(uint8(t.State))
	e.Uint32(uint32(t.Attempts))
	e.String(t.Cursor)
	e.String(t.LastError)
	e.Int64(t.CreatedNanos)
	e.Int64(t.UpdatedNanos)
}

// DecodeTaskRecord deserializes a task record.
func DecodeTaskRecord(d *wire.Decoder) (*model.TaskRecord, error) {
	t := &model.TaskRecord{
		ID:   d.String(),
		Type: d.String(),
	}
	t.Site = model.SiteID(d.Int64())
	t.Block = model.BlockID(d.String())
	t.Chunk = int(d.Uint32())
	t.Dest = model.SiteID(d.Int64())
	t.Priority = int(d.Uint32())
	t.State = model.TaskState(d.Uint8())
	t.Attempts = int(d.Uint32())
	t.Cursor = d.String()
	t.LastError = d.String()
	t.CreatedNanos = d.Int64()
	t.UpdatedNanos = d.Int64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodeSiteInfo serializes a site's administrative record.
func EncodeSiteInfo(e *wire.Encoder, info model.SiteInfo) {
	e.Int64(int64(info.ID))
	e.String(info.Zone)
	e.Uint8(uint8(info.State))
}

// DecodeSiteInfo deserializes a site's administrative record.
func DecodeSiteInfo(d *wire.Decoder) (model.SiteInfo, error) {
	info := model.SiteInfo{
		ID:    model.SiteID(d.Int64()),
		Zone:  d.String(),
		State: model.SiteState(d.Uint8()),
	}
	return info, d.Err()
}
