package metadata

import (
	"bytes"
	"errors"
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/wire"
)

func containerMeta(id model.BlockID, members []model.PackedMember) *model.BlockMeta {
	return &model.BlockMeta{
		ID:         id,
		Scheme:     model.SchemeErasure,
		K:          2,
		R:          2,
		Size:       400,
		ChunkSize:  200,
		StripeUnit: 100,
		Sites:      []model.SiteID{1, 2, 3, 4},
		Members:    members,
	}
}

func TestRegisterContainerSynthesizesMembers(t *testing.T) {
	c := NewCatalog(sites(6))
	members := []model.PackedMember{
		{ID: "m1", Off: 0, Len: 150},
		{ID: "m2", Off: 150, Len: 250},
	}
	if err := c.Register(containerMeta("pack-1", members)); err != nil {
		t.Fatal(err)
	}

	// BlockMeta resolves a member to a synthesized view of its container.
	got, ok := c.BlockMeta("m2")
	if !ok {
		t.Fatal("member m2 not resolvable")
	}
	if got.PackedIn != "pack-1" || got.PackedOff != 150 || got.Size != 250 {
		t.Fatalf("member meta = packedIn %s off %d size %d", got.PackedIn, got.PackedOff, got.Size)
	}
	if got.StripeUnit != 100 || got.ChunkSize != 200 || got.K != 2 || len(got.Sites) != 4 {
		t.Fatalf("member does not inherit container geometry: %+v", got)
	}
	if !got.Packed() {
		t.Fatal("synthesized member meta is not Packed()")
	}

	// Lookup mixes containers and members.
	metas, err := c.Lookup([]model.BlockID{"pack-1", "m1"})
	if err != nil {
		t.Fatal(err)
	}
	if metas["pack-1"].Packed() || !metas["m1"].Packed() {
		t.Fatalf("lookup misclassified: container packed=%v member packed=%v", metas["pack-1"].Packed(), metas["m1"].Packed())
	}

	// The synthesized view is a private copy.
	got.Sites[0] = 99
	again, _ := c.BlockMeta("m2")
	if again.Sites[0] != 1 {
		t.Fatal("member meta aliases catalog state")
	}

	// Members never appear in the per-site index: repair and the mover
	// operate on containers only.
	for _, id := range c.BlocksOnSite(1) {
		if id == "m1" || id == "m2" {
			t.Fatalf("member %s indexed by site", id)
		}
	}
}

func TestRegisterMemberValidation(t *testing.T) {
	c := NewCatalog(sites(6))
	if err := c.Register(containerMeta("taken", []model.PackedMember{{ID: "used", Off: 0, Len: 10}})); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		meta *model.BlockMeta
	}{
		{"meta carries PackedIn", func() *model.BlockMeta {
			m := blockMeta("direct", 1, 2, 3, 4)
			m.PackedIn = "somewhere"
			return m
		}()},
		{"empty member id", containerMeta("p1", []model.PackedMember{{ID: "", Off: 0, Len: 1}})},
		{"member id equals container", containerMeta("p1", []model.PackedMember{{ID: "p1", Off: 0, Len: 1}})},
		{"duplicate member ids", containerMeta("p1", []model.PackedMember{{ID: "d", Off: 0, Len: 1}, {ID: "d", Off: 1, Len: 1}})},
		{"negative offset", containerMeta("p1", []model.PackedMember{{ID: "n", Off: -1, Len: 1}})},
		{"member past container size", containerMeta("p1", []model.PackedMember{{ID: "o", Off: 399, Len: 2}})},
		{"member id shadows a block", containerMeta("p1", []model.PackedMember{{ID: "taken", Off: 0, Len: 1}})},
		{"member id shadows another container's member", containerMeta("p1", []model.PackedMember{{ID: "used", Off: 0, Len: 1}})},
	}
	for _, tc := range cases {
		err := c.Register(tc.meta)
		if err == nil {
			t.Errorf("%s: registered", tc.name)
			continue
		}
		if _, ok := c.BlockMeta(tc.meta.ID); ok && tc.meta.ID == "p1" {
			t.Errorf("%s: rejected register left state behind", tc.name)
		}
	}
}

func TestDeleteMemberAndContainer(t *testing.T) {
	c := NewCatalog(sites(6))
	members := []model.PackedMember{
		{ID: "m1", Off: 0, Len: 100},
		{ID: "m2", Off: 100, Len: 100},
	}
	if err := c.Register(containerMeta("pack-1", members)); err != nil {
		t.Fatal(err)
	}

	// Deleting a member detaches it without touching chunks: the
	// returned meta carries no sites, so callers have nothing to erase.
	gone, err := c.Delete("m1")
	if err != nil {
		t.Fatal(err)
	}
	if len(gone.Sites) != 0 {
		t.Fatalf("deleted member returned sites %v", gone.Sites)
	}
	if _, ok := c.BlockMeta("m1"); ok {
		t.Fatal("deleted member still resolvable")
	}
	cm, _ := c.BlockMeta("pack-1")
	if len(cm.Members) != 1 || cm.Members[0].ID != "m2" {
		t.Fatalf("container member table after delete: %+v", cm.Members)
	}
	if _, ok := c.BlockMeta("m2"); !ok {
		t.Fatal("sibling member lost")
	}

	// Deleting the container cascades to its remaining members.
	if _, err := c.Delete("pack-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.BlockMeta("m2"); ok {
		t.Fatal("member survived container delete")
	}

	// Freed ids resume at a higher version than the deleted incarnation.
	reborn := blockMeta("m2", 1, 2, 3, 4)
	if err := c.Register(reborn); err != nil {
		t.Fatal(err)
	}
	got, _ := c.BlockMeta("m2")
	if got.Version <= cm.Version {
		t.Fatalf("reborn member version %d did not advance past container version %d", got.Version, cm.Version)
	}
}

func TestBlockMetaCodecRoundTripMembers(t *testing.T) {
	in := containerMeta("pack-9", []model.PackedMember{
		{ID: "tiny-a", Off: 0, Len: 123},
		{ID: "tiny-b", Off: 123, Len: 277},
	})
	in.Version = 17
	e := wire.NewEncoder(64)
	EncodeBlockMeta(e, in)
	out, err := DecodeBlockMeta(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out.StripeUnit != in.StripeUnit || out.PackedIn != in.PackedIn || out.PackedOff != in.PackedOff {
		t.Fatalf("stripe/pack fields: %+v", out)
	}
	if len(out.Members) != 2 || out.Members[1] != in.Members[1] {
		t.Fatalf("members: %+v", out.Members)
	}

	// A synthesized member view also survives the wire (the RPC lookup
	// path ships them to remote clients).
	mem := in.Clone()
	mem.ID = "tiny-a"
	mem.PackedIn, mem.PackedOff, mem.Size, mem.Members = "pack-9", 0, 123, nil
	e2 := wire.NewEncoder(64)
	EncodeBlockMeta(e2, mem)
	out2, err := DecodeBlockMeta(wire.NewDecoder(e2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out2.PackedIn != "pack-9" || out2.PackedOff != 0 || len(out2.Members) != 0 {
		t.Fatalf("member view round trip: %+v", out2)
	}
}

func TestSnapshotPersistsMembers(t *testing.T) {
	c := NewCatalog(sites(6))
	if err := c.Register(containerMeta("pack-1", []model.PackedMember{{ID: "m1", Off: 0, Len: 400}})); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded.BlockMeta("m1")
	if !ok || got.PackedIn != "pack-1" || got.Size != 400 {
		t.Fatalf("member after reload: ok=%v %+v", ok, got)
	}
	// The member index reloads too: its id stays reserved.
	if err := loaded.Register(blockMeta("m1", 1, 2, 3, 4)); !errors.Is(err, ErrExists) && err == nil {
		t.Fatal("member id re-registrable after reload")
	}
}
