package metadata

import (
	"hash/fnv"
	"sync"

	"ecstore/internal/model"
)

// DefaultPartitions is the catalog's default shard count. Sixteen
// partitions keep lock contention negligible up to millions of blocks
// while costing nothing at small scale (each partition is just a set of
// small maps).
const DefaultPartitions = 16

// partition is one independently locked shard of the catalog. Block
// state routes to a partition by FNV-1a hash of the block id, so every
// record concerning one id lives (and is logged) in exactly one
// partition; the per-partition WAL therefore totally orders the history
// of any single key without any cross-partition coordination.
type partition struct {
	mu sync.RWMutex
	// blocks holds the partition's registered blocks (plain blocks and
	// pack containers whose ids hash here).
	blocks map[model.BlockID]*model.BlockMeta
	// members resolves pack-member ids hashing here to their container
	// (which may live in another partition). Derived state: rebuilt
	// from container member tables on recovery, never persisted.
	members map[model.BlockID]memberRef
	// retired remembers the final placement version of deleted ids
	// hashing here, so re-registered ids resume numbering (the ABA
	// guard version-keyed caches depend on). Persisted in snapshots
	// and WAL retire records — losing it across a restart was the
	// durability hole this layout exists to close.
	retired map[model.BlockID]uint64
	// bySite indexes this partition's blocks by chunk site, for repair
	// scans. Derived state, rebuilt on recovery.
	bySite map[model.SiteID]map[model.BlockID]bool
	// log is the partition's write-ahead log; nil for volatile
	// catalogs (NewCatalog without Open).
	log *partLog
}

func newPartition() *partition {
	return &partition{
		blocks:  make(map[model.BlockID]*model.BlockMeta),
		members: make(map[model.BlockID]memberRef),
		retired: make(map[model.BlockID]uint64),
		bySite:  make(map[model.SiteID]map[model.BlockID]bool),
	}
}

// fnvIndex routes a key to one of n partitions by FNV-1a.
func fnvIndex(key string, n int) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}

// part returns the partition owning a block id.
func (c *Catalog) part(id model.BlockID) *partition {
	return c.parts[fnvIndex(string(id), len(c.parts))]
}

// sitePart returns the partition whose WAL owns records about a site
// (site additions and administrative state). The in-memory site maps
// are global; only durability routes by hash, so that all records for
// one site stay ordered within one log.
func (c *Catalog) sitePart(s model.SiteID) *partition {
	return c.parts[fnvIndex(siteKey(s), len(c.parts))]
}

// taskPart returns the partition whose WAL owns records about a task id.
func (c *Catalog) taskPart(id string) *partition {
	return c.parts[fnvIndex(id, len(c.parts))]
}

func (p *partition) indexLocked(s model.SiteID, id model.BlockID) {
	m := p.bySite[s]
	if m == nil {
		m = make(map[model.BlockID]bool)
		p.bySite[s] = m
	}
	m[id] = true
}

func (p *partition) unindexLocked(s model.SiteID, id model.BlockID) {
	if m := p.bySite[s]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(p.bySite, s)
		}
	}
}

// retireLocked records a deleted incarnation's final version, keeping
// the highest watermark ever seen for the id.
func (p *partition) retireLocked(id model.BlockID, version uint64) {
	if last, ok := p.retired[id]; !ok || version > last {
		p.retired[id] = version
	}
}
