package metadata

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ecstore/internal/model"
	"ecstore/internal/wire"
)

// Snapshot format: a magic header, the site list, then one encoded
// BlockMeta per frame. Length-prefixed frames reuse the wire codec so the
// snapshot survives partial writes detectably (a truncated trailing frame
// fails to decode). V2 extends each block record with the stripe unit,
// packed-member linkage and container member table (see EncodeBlockMeta);
// V1 snapshots are not readable and must be regenerated. V3 inserts two
// frames between the site list and the block frames: the site-info table
// (zones, drain states) and the background-task table, so the scheduler's
// queue survives a restart. V4 adds the retired-version-watermark frame
// after the task frame: without it a restart forgot every deleted block's
// final version, so a re-registered id restarted at version 0 and
// (BlockID, version)-keyed caches could alias the dead incarnation's
// bytes. V3 and V2 snapshots still load (missing tables empty).
var (
	snapshotMagic   = []byte("ECSTORE-META-V4\n")
	snapshotMagicV3 = []byte("ECSTORE-META-V3\n")
	snapshotMagicV2 = []byte("ECSTORE-META-V2\n")
)

// ErrBadSnapshot reports a corrupt or foreign snapshot file.
var ErrBadSnapshot = errors.New("metadata: bad snapshot")

// Save writes the catalog's full state to w.
func (c *Catalog) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return fmt.Errorf("write snapshot header: %w", err)
	}

	sites := c.Sites()
	e := wire.NewEncoder(8 * len(sites))
	e.Uint32(uint32(len(sites)))
	for _, s := range sites {
		e.Int64(int64(s))
	}
	if err := wire.WriteFrame(bw, e.Bytes()); err != nil {
		return fmt.Errorf("write site list: %w", err)
	}

	infos := c.SiteInfos()
	ids := make([]model.SiteID, 0, len(infos))
	for id := range infos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ie := wire.NewEncoder(24 * len(infos))
	ie.Uint32(uint32(len(infos)))
	for _, id := range ids {
		EncodeSiteInfo(ie, infos[id])
	}
	if err := wire.WriteFrame(bw, ie.Bytes()); err != nil {
		return fmt.Errorf("write site infos: %w", err)
	}

	tasks := c.ListTasks()
	te := wire.NewEncoder(64 * len(tasks))
	te.Uint32(uint32(len(tasks)))
	for _, t := range tasks {
		EncodeTaskRecord(te, t)
	}
	if err := wire.WriteFrame(bw, te.Bytes()); err != nil {
		return fmt.Errorf("write tasks: %w", err)
	}

	retiredIDs, retired := c.retiredWatermarks()
	re := wire.NewEncoder(16 * len(retiredIDs))
	re.Uint32(uint32(len(retiredIDs)))
	for _, id := range retiredIDs {
		re.String(string(id))
		re.Uint64(retired[id])
	}
	if err := wire.WriteFrame(bw, re.Bytes()); err != nil {
		return fmt.Errorf("write retired watermarks: %w", err)
	}

	var saveErr error
	count := 0
	c.ForEach(func(meta *model.BlockMeta) bool {
		if meta.Packed() {
			// Synthesized member entries are derived from their
			// container's member table; only containers and plain
			// blocks are persisted.
			return true
		}
		be := wire.NewEncoder(64)
		EncodeBlockMeta(be, meta)
		if err := wire.WriteFrame(bw, be.Bytes()); err != nil {
			saveErr = fmt.Errorf("write block %s: %w", meta.ID, err)
			return false
		}
		count++
		return true
	})
	if saveErr != nil {
		return saveErr
	}
	return bw.Flush()
}

// Load reads a snapshot produced by Save into a fresh catalog.
func Load(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	header := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrBadSnapshot)
	}
	v4 := string(header) == string(snapshotMagic)
	v3 := string(header) == string(snapshotMagicV3)
	if !v4 && !v3 && string(header) != string(snapshotMagicV2) {
		return nil, fmt.Errorf("%w: wrong magic", ErrBadSnapshot)
	}

	frame, err := wire.ReadFrame(br)
	if err != nil {
		return nil, fmt.Errorf("%w: site list: %w", ErrBadSnapshot, err)
	}
	d := wire.NewDecoder(frame)
	n := int(d.Uint32())
	if err := boundedCount(n, d, minSiteEnc, "site"); err != nil {
		return nil, err
	}
	sites := make([]model.SiteID, 0, n)
	for i := 0; i < n; i++ {
		sites = append(sites, model.SiteID(d.Int64()))
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: site list: %w", ErrBadSnapshot, d.Err())
	}
	catalog := NewCatalog(sites)

	if v4 || v3 {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			return nil, fmt.Errorf("%w: site infos: %w", ErrBadSnapshot, err)
		}
		d := wire.NewDecoder(frame)
		ni := int(d.Uint32())
		if err := boundedCount(ni, d, minSiteInfoEnc, "site info"); err != nil {
			return nil, err
		}
		for i := 0; i < ni; i++ {
			info, err := DecodeSiteInfo(d)
			if err != nil {
				return nil, fmt.Errorf("%w: site info: %w", ErrBadSnapshot, err)
			}
			if err := catalog.SetSiteInfo(info); err != nil {
				return nil, fmt.Errorf("%w: site info: %w", ErrBadSnapshot, err)
			}
		}
		frame, err = wire.ReadFrame(br)
		if err != nil {
			return nil, fmt.Errorf("%w: tasks: %w", ErrBadSnapshot, err)
		}
		d = wire.NewDecoder(frame)
		nt := int(d.Uint32())
		if err := boundedCount(nt, d, minTaskEnc, "task"); err != nil {
			return nil, err
		}
		for i := 0; i < nt; i++ {
			t, err := DecodeTaskRecord(d)
			if err != nil {
				return nil, fmt.Errorf("%w: task record: %w", ErrBadSnapshot, err)
			}
			if err := catalog.PutTask(t); err != nil {
				return nil, fmt.Errorf("%w: task %s: %w", ErrBadSnapshot, t.ID, err)
			}
		}
	}

	// Retired watermarks decode now but apply after the block frames:
	// Register consults the watermark of its own id, so seeding first
	// would corrupt versions if a corrupt snapshot listed an id in both
	// tables.
	retired := make(map[model.BlockID]uint64)
	if v4 {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			return nil, fmt.Errorf("%w: retired watermarks: %w", ErrBadSnapshot, err)
		}
		d := wire.NewDecoder(frame)
		nr := int(d.Uint32())
		if err := boundedCount(nr, d, minRetiredEnc, "retired"); err != nil {
			return nil, err
		}
		for i := 0; i < nr; i++ {
			id := model.BlockID(d.String())
			v := d.Uint64()
			if d.Err() != nil {
				return nil, fmt.Errorf("%w: retired watermarks: %w", ErrBadSnapshot, d.Err())
			}
			retired[id] = v
		}
	}

	for {
		frame, err := wire.ReadFrame(br)
		if errors.Is(err, io.EOF) {
			retiredIDs := make([]model.BlockID, 0, len(retired))
			for id := range retired {
				retiredIDs = append(retiredIDs, id)
			}
			sort.Slice(retiredIDs, func(i, j int) bool { return retiredIDs[i] < retiredIDs[j] })
			for _, id := range retiredIDs {
				catalog.restoreRetired(id, retired[id])
			}
			return catalog, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: block frame: %w", ErrBadSnapshot, err)
		}
		meta, err := DecodeBlockMeta(wire.NewDecoder(frame))
		if err != nil {
			return nil, fmt.Errorf("%w: block meta: %w", ErrBadSnapshot, err)
		}
		if err := catalog.Register(meta); err != nil {
			return nil, fmt.Errorf("%w: register %s: %w", ErrBadSnapshot, meta.ID, err)
		}
	}
}

// SaveFile atomically and durably writes a snapshot to path: write a
// temp file, fsync it, fsync the directory (making the temp entry
// durable), rename over the target, fsync the directory again (making
// the rename durable). Without the fsyncs, "atomic" rename snapshots
// could vanish entirely on a crash — the kernel was free to order the
// rename before the data blocks.
func (c *Catalog) SaveFile(path string) error {
	tmp := path + ".tmp"
	dir := filepath.Dir(path)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("create snapshot: %w", err)
	}
	if err := c.Save(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("close snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("commit snapshot: %w", err)
	}
	return syncDir(dir)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open snapshot: %w", err)
	}
	defer func() { _ = f.Close() }()
	return Load(f)
}
