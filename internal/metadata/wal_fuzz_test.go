package metadata

import (
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/wire"
)

// FuzzWALRecord hammers the WAL record decoder with arbitrary payloads.
// The decoder fronts every byte read back from disk after a crash, so it
// must never panic and never let a corrupt count field drive a large
// allocation — bad input fails with ErrBadWALRecord, nothing else.
func FuzzWALRecord(f *testing.F) {
	// Seed with one valid payload per record type, produced by the real
	// encoders via a volatile single-partition log.
	seedLog := &partLog{}
	grab := func(fn func(l *partLog) uint64) {
		before := len(seedLog.pending)
		fn(seedLog)
		frame := seedLog.pending[before:]
		f.Add(append([]byte(nil), frame[walFrameHeader:]...))
	}
	grab(func(l *partLog) uint64 {
		return l.appendRegister(&model.BlockMeta{
			ID: "blk", Scheme: model.SchemeErasure, Size: 200, K: 2, R: 2,
			ChunkSize: 100, Sites: []model.SiteID{1, 2, 3, 4}, Version: 7,
			Members: []model.PackedMember{{ID: "m1", Off: 0, Len: 80}},
		})
	})
	grab(func(l *partLog) uint64 { return l.appendDelete("blk", 7) })
	grab(func(l *partLog) uint64 { return l.appendUpdate("blk", 2, 5, 8) })
	grab(func(l *partLog) uint64 { return l.appendRetire("m1", 7) })
	grab(func(l *partLog) uint64 { return l.appendMemberRemove("blk", "m1") })
	grab(func(l *partLog) uint64 { return l.appendSiteAdd(3) })
	grab(func(l *partLog) uint64 {
		return l.appendSiteInfo(model.SiteInfo{ID: 3, Zone: "z", State: model.SiteDraining})
	})
	grab(func(l *partLog) uint64 {
		return l.appendTaskPut(&model.TaskRecord{ID: "t", Type: model.TaskTypeMove})
	})
	grab(func(l *partLog) uint64 { return l.appendTaskDel("t") })
	f.Add([]byte{})
	f.Add([]byte{recRegister})

	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > wire.MaxFrameSize {
			return
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return
		}
		// A decoded record must round-trip through a fresh log's encoder
		// back to an equal decode (the replay path depends on encode and
		// decode agreeing exactly).
		l := &partLog{}
		switch rec.typ {
		case recRegister:
			l.appendRegister(rec.meta)
		case recDelete:
			l.appendDelete(rec.id, rec.version)
		case recUpdate:
			l.appendUpdate(rec.id, rec.chunk, rec.site, rec.version)
		case recRetire:
			l.appendRetire(rec.id, rec.version)
		case recMemberRemove:
			l.appendMemberRemove(rec.cont, rec.member)
		case recSiteAdd:
			l.appendSiteAdd(rec.site)
		case recSiteInfo:
			l.appendSiteInfo(rec.info)
		case recTaskPut:
			l.appendTaskPut(rec.task)
		case recTaskDel:
			l.appendTaskDel(rec.taskID)
		default:
			t.Fatalf("decoder accepted unknown type %d", rec.typ)
		}
		if _, err := decodeWALRecord(l.pending[walFrameHeader:]); err != nil {
			t.Fatalf("re-encoded record fails decode: %v", err)
		}
	})
}
