package metadata

import (
	"testing"

	"ecstore/internal/model"
	"ecstore/internal/rpc"
	"ecstore/internal/transport"
	"ecstore/internal/wire"
)

func startMetadataRPC(t *testing.T, catalog *Catalog) (*Client, func()) {
	t.Helper()
	net := transport.NewMemory()
	l, err := net.Listen("meta")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(NewServer(catalog))
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	conn, err := net.Dial("meta")
	if err != nil {
		t.Fatal(err)
	}
	rc := rpc.NewClient(conn)
	cleanup := func() {
		_ = rc.Close()
		_ = srv.Close()
		<-done
		net.Close()
	}
	return NewClient(rc), cleanup
}

func TestBlockMetaCodecRoundTrip(t *testing.T) {
	in := &model.BlockMeta{
		ID:        "block-7",
		Scheme:    model.SchemeErasure,
		Size:      102400,
		K:         2,
		R:         2,
		ChunkSize: 51200,
		Version:   9,
		Sites:     []model.SiteID{4, 8, 15, 16},
	}
	e := wire.NewEncoder(64)
	EncodeBlockMeta(e, in)
	out, err := DecodeBlockMeta(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Scheme != in.Scheme || out.Size != in.Size ||
		out.K != in.K || out.R != in.R || out.ChunkSize != in.ChunkSize ||
		out.Version != in.Version || len(out.Sites) != len(in.Sites) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Sites {
		if out.Sites[i] != in.Sites[i] {
			t.Fatalf("site %d: %d != %d", i, out.Sites[i], in.Sites[i])
		}
	}
}

func TestDecodeBlockMetaTruncated(t *testing.T) {
	e := wire.NewEncoder(8)
	e.String("id")
	if _, err := DecodeBlockMeta(wire.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("truncated meta decoded")
	}
}

func TestRPCRegisterLookupDelete(t *testing.T) {
	catalog := NewCatalog(sites(8))
	client, cleanup := startMetadataRPC(t, catalog)
	defer cleanup()

	if err := client.Register(blockMeta("a", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := client.Lookup([]model.BlockID{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if got["a"].Sites[1] != 2 {
		t.Fatalf("lookup = %+v", got["a"])
	}

	meta, err := client.Delete("a")
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "a" {
		t.Fatalf("deleted id = %s", meta.ID)
	}
	if _, err := client.Lookup([]model.BlockID{"a"}); err == nil {
		t.Fatal("lookup succeeded after delete")
	}
}

func TestRPCUpdatePlacementAndIndexes(t *testing.T) {
	catalog := NewCatalog(sites(8))
	client, cleanup := startMetadataRPC(t, catalog)
	defer cleanup()

	if err := client.Register(blockMeta("a", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	v, err := client.UpdatePlacement("a", 2, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d", v)
	}
	if _, err := client.UpdatePlacement("a", 2, 1, 0); err == nil {
		t.Fatal("stale CAS accepted over RPC")
	}

	ids := client.BlocksOnSite(7)
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("BlocksOnSite = %v", ids)
	}
	got := client.Sites()
	if len(got) != 8 {
		t.Fatalf("Sites = %v", got)
	}
}

func TestRPCRegisterValidationError(t *testing.T) {
	catalog := NewCatalog(sites(2))
	client, cleanup := startMetadataRPC(t, catalog)
	defer cleanup()

	err := client.Register(blockMeta("a", 1, 2, 9))
	if err == nil {
		t.Fatal("unknown-site register accepted over RPC")
	}
}
