package metadata

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ecstore/internal/model"
	"ecstore/internal/wire"
)

// stateDump captures a catalog's full logical state in comparable form:
// encoded blocks (sorted by id), sites, site infos, tasks, and the
// retired watermarks of every id in ids.
type stateDump struct {
	Blocks  map[model.BlockID]string
	Sites   []model.SiteID
	Infos   map[model.SiteID]model.SiteInfo
	Tasks   map[string]string
	Retired map[model.BlockID]uint64
	Len     int
}

func dumpState(c *Catalog, ids []model.BlockID) stateDump {
	d := stateDump{
		Blocks:  map[model.BlockID]string{},
		Sites:   c.Sites(),
		Infos:   c.SiteInfos(),
		Tasks:   map[string]string{},
		Retired: map[model.BlockID]uint64{},
		Len:     c.Len(),
	}
	for _, id := range ids {
		if meta, ok := c.BlockMeta(id); ok {
			e := wire.NewEncoder(64)
			EncodeBlockMeta(e, meta)
			d.Blocks[id] = string(e.Bytes())
		}
		if v, ok := c.RetiredVersion(id); ok {
			d.Retired[id] = v
		}
	}
	for _, t := range c.ListTasks() {
		e := wire.NewEncoder(64)
		EncodeTaskRecord(e, t)
		d.Tasks[t.ID] = string(e.Bytes())
	}
	return d
}

func requireEqualState(t *testing.T, want, got stateDump) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("state diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func mustOpen(t *testing.T, dir string, opts WALOptions) *Catalog {
	t.Helper()
	c, err := Open(dir, sites(6), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOpenRecoversFullState(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 4})
	if err := c.Register(blockMeta("a", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(blockMeta("b", 2, 3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdatePlacement("a", 0, 6, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetSiteInfo(model.SiteInfo{ID: 2, Zone: "z-b", State: model.SiteDraining}); err != nil {
		t.Fatal(err)
	}
	if err := c.PutTask(taskRec("t1", model.TaskPending)); err != nil {
		t.Fatal(err)
	}
	ids := []model.BlockID{"a", "b"}
	want := dumpState(c, ids)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, WALOptions{Partitions: 4})
	defer func() { _ = r.Close() }()
	requireEqualState(t, want, dumpState(r, ids))
	if v, ok := r.RetiredVersion("b"); !ok || v != 0 {
		t.Fatalf("retired watermark for b = %d, %v", v, ok)
	}
}

// TestRetiredWatermarkSurvivesRestart is the cache-ABA regression: a
// block deleted at version v, with the metadata service restarted in
// between, must re-register at a version strictly above v — otherwise
// (BlockID, version)-keyed plan and decoded-block caches would serve the
// dead incarnation's bytes for the new one.
func TestRetiredWatermarkSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{})
	if err := c.Register(blockMeta("blk", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	v, err := c.UpdatePlacement("blk", 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, err = c.UpdatePlacement("blk", 1, 6, v); err != nil {
		t.Fatal(err)
	}
	meta, err := c.Delete("blk")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, WALOptions{})
	defer func() { _ = r.Close() }()
	if err := r.Register(blockMeta("blk", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	got, ok := r.BlockMeta("blk")
	if !ok {
		t.Fatal("re-registered block missing")
	}
	if got.Version <= meta.Version {
		t.Fatalf("re-registered version %d not above retired watermark %d: cache ABA", got.Version, meta.Version)
	}
}

// TestRetiredWatermarkSurvivesSnapshotRestart exercises the same ABA
// scenario through the V4 whole-catalog snapshot path (Save/Load), which
// silently dropped watermarks before V4.
func TestRetiredWatermarkSurvivesSnapshotRestart(t *testing.T) {
	c := NewCatalog(sites(6))
	if err := c.Register(blockMeta("blk", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdatePlacement("blk", 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	meta, err := c.Delete("blk")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := loaded.RetiredVersion("blk"); !ok || v != meta.Version {
		t.Fatalf("snapshot lost retired watermark: got %d, %v, want %d", v, ok, meta.Version)
	}
	if err := loaded.Register(blockMeta("blk", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	got, _ := loaded.BlockMeta("blk")
	if got.Version <= meta.Version {
		t.Fatalf("re-registered version %d not above watermark %d after snapshot restart", got.Version, meta.Version)
	}
}

// activeSegment returns the path of partition idx's newest WAL segment.
func activeSegment(t *testing.T, dir string, idx int) string {
	t.Helper()
	pdir := filepath.Join(dir, partDirName(idx))
	entries, err := os.ReadDir(pdir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestStart uint64
	for _, ent := range entries {
		if start, ok := parseSegmentName(ent.Name()); ok && (best == "" || start > bestStart) {
			best, bestStart = filepath.Join(pdir, ent.Name()), start
		}
	}
	if best == "" {
		t.Fatalf("no segment in %s", pdir)
	}
	return best
}

// TestTornTailTruncated covers the two crash-mid-append signatures: the
// final record cut short, and the final record's CRC flipped. Both must
// recover to the state just before the damaged record, and the boot
// compaction must leave a catalog that keeps working.
func TestTornTailTruncated(t *testing.T) {
	for _, mode := range []string{"truncate", "crcflip"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			c := mustOpen(t, dir, WALOptions{Partitions: 1})
			if err := c.Register(blockMeta("keep", 1, 2, 3, 4)); err != nil {
				t.Fatal(err)
			}
			want := dumpState(c, []model.BlockID{"keep", "lost"})
			if err := c.Register(blockMeta("lost", 2, 3, 4, 5)); err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			seg := activeSegment(t, dir, 0)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "truncate":
				// Cut the last record in half.
				if err := os.WriteFile(seg, data[:len(data)-len(data)/4], 0o644); err != nil {
					t.Fatal(err)
				}
			case "crcflip":
				// Flip one bit in the last record's payload.
				data[len(data)-1] ^= 0x40
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			r := mustOpen(t, dir, WALOptions{Partitions: 1})
			defer func() { _ = r.Close() }()
			requireEqualState(t, want, dumpState(r, []model.BlockID{"keep", "lost"}))
			if r.wal.tornTails == 0 {
				t.Fatal("torn tail not counted")
			}
			// The damaged tail must be gone for good: a further restart
			// sees a clean log.
			if err := r.Register(blockMeta("lost", 2, 3, 4, 5)); err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			r2 := mustOpen(t, dir, WALOptions{Partitions: 1})
			defer func() { _ = r2.Close() }()
			if r2.wal.tornTails != 0 {
				t.Fatal("torn tail reported on clean restart")
			}
			if _, ok := r2.BlockMeta("lost"); !ok {
				t.Fatal("block registered after torn-tail recovery was lost")
			}
		})
	}
}

// TestInteriorCorruptionTruncates: once a frame in the final segment is
// damaged, framing past it cannot be trusted — recovery keeps the intact
// prefix, discards the rest, and counts a torn tail.
func TestInteriorCorruptionTruncates(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 1})
	for i := 0; i < 8; i++ {
		if err := c.Register(blockMeta(model.BlockID(fmt.Sprintf("b%d", i)), 1, 2, 3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	seg := activeSegment(t, dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the middle of the file: a record before the last one
	// goes bad while intact bytes follow.
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, WALOptions{Partitions: 1})
	defer func() { _ = r.Close() }()
	if r.wal.tornTails == 0 {
		t.Fatal("interior corruption not counted as torn tail")
	}
	n := r.Len()
	if n == 0 || n >= 8 {
		t.Fatalf("recovered %d of 8 blocks, want a proper prefix", n)
	}
	if _, ok := r.BlockMeta("b0"); !ok {
		t.Fatal("first block lost")
	}
}

// TestKillBetweenSnapshotAndTruncate simulates a compaction that died
// after committing its snapshot but before deleting the old segments:
// the stale segments reappear next to the snapshot, and replay must skip
// their records (all at or below the snapshot LSN) instead of
// double-applying them.
func TestKillBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 2})
	if err := c.Register(blockMeta("a", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(blockMeta("b", 2, 3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdatePlacement("a", 0, 6, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("b"); err != nil {
		t.Fatal(err)
	}

	// Save the pre-compaction segments of every partition.
	type saved struct{ path string; data []byte }
	var stale []saved
	for i := 0; i < 2; i++ {
		pdir := filepath.Join(dir, partDirName(i))
		entries, err := os.ReadDir(pdir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if _, ok := parseSegmentName(ent.Name()); !ok {
				continue
			}
			data, err := os.ReadFile(filepath.Join(pdir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			stale = append(stale, saved{filepath.Join(pdir, ent.Name()), data})
		}
	}

	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	ids := []model.BlockID{"a", "b"}
	want := dumpState(c, ids)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Resurrect the truncated segments: this is exactly the on-disk
	// state of a crash between snapshot commit and segment deletion.
	for _, s := range stale {
		if _, err := os.Stat(s.path); err == nil {
			continue // still present (the active segment)
		}
		if err := os.WriteFile(s.path, s.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r := mustOpen(t, dir, WALOptions{Partitions: 2})
	defer func() { _ = r.Close() }()
	requireEqualState(t, want, dumpState(r, ids))
}

// TestRepartitionAcrossRestart: the partition count is a runtime knob,
// not a format commitment — state written under one layout must recover
// under another.
func TestRepartitionAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 8})
	var ids []model.BlockID
	for i := 0; i < 40; i++ {
		id := model.BlockID(fmt.Sprintf("blk-%03d", i))
		ids = append(ids, id)
		if err := c.Register(blockMeta(id, 1, 2, 3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Delete(ids[7]); err != nil {
		t.Fatal(err)
	}
	want := dumpState(c, ids)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, WALOptions{Partitions: 3})
	if r.Partitions() != 3 {
		t.Fatalf("partitions = %d", r.Partitions())
	}
	requireEqualState(t, want, dumpState(r, ids))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Stale partition directories beyond the new count must be gone.
	for i := 3; i < 8; i++ {
		if _, err := os.Stat(filepath.Join(dir, partDirName(i))); err == nil {
			t.Fatalf("stale partition dir p%04d survived", i)
		}
	}
	r2 := mustOpen(t, dir, WALOptions{Partitions: 16})
	defer func() { _ = r2.Close() }()
	requireEqualState(t, want, dumpState(r2, ids))
}

// TestGroupCommitRecovery drives the flusher path (FsyncInterval > 0) and
// checks Close makes everything durable.
func TestGroupCommitRecovery(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{FsyncInterval: 5 * time.Millisecond})
	for i := 0; i < 50; i++ {
		if err := c.Register(blockMeta(model.BlockID(fmt.Sprintf("g%d", i)), 1, 2, 3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]model.BlockID, 0, 50)
	for i := 0; i < 50; i++ {
		ids = append(ids, model.BlockID(fmt.Sprintf("g%d", i)))
	}
	want := dumpState(c, ids)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, WALOptions{})
	defer func() { _ = r.Close() }()
	requireEqualState(t, want, dumpState(r, ids))
}

// TestCompactionUnderLoad forces a compaction on nearly every commit and
// checks both the live catalog and its recovery stay exact.
func TestCompactionUnderLoad(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 2, CompactBytes: 1})
	var ids []model.BlockID
	for i := 0; i < 30; i++ {
		id := model.BlockID(fmt.Sprintf("c%02d", i))
		ids = append(ids, id)
		if err := c.Register(blockMeta(id, 1, 2, 3, 4)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := c.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := dumpState(c, ids)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, WALOptions{Partitions: 2})
	defer func() { _ = r.Close() }()
	requireEqualState(t, want, dumpState(r, ids))
}

// opLogModel applies one random catalog operation to a catalog; the same
// sequence applied to a durable and a volatile catalog must agree.
func randomOp(rng *rand.Rand, c *Catalog, versions map[model.BlockID]uint64) {
	id := model.BlockID(fmt.Sprintf("r%02d", rng.Intn(30)))
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		ss := make([]model.SiteID, 4)
		perm := rng.Perm(6)
		for i := range ss {
			ss[i] = model.SiteID(perm[i] + 1)
		}
		if c.Register(blockMeta(id, ss...)) == nil {
			if meta, ok := c.BlockMeta(id); ok {
				versions[id] = meta.Version
			}
		}
	case 4, 5:
		if _, err := c.Delete(id); err == nil {
			delete(versions, id)
		}
	case 6, 7:
		v := versions[id]
		if nv, err := c.UpdatePlacement(id, rng.Intn(4), model.SiteID(rng.Intn(6)+1), v); err == nil {
			versions[id] = nv
		}
	case 8:
		_ = c.SetSiteInfo(model.SiteInfo{
			ID:    model.SiteID(rng.Intn(6) + 1),
			Zone:  fmt.Sprintf("z%d", rng.Intn(3)),
			State: model.SiteState(rng.Intn(3)),
		})
	case 9:
		tid := fmt.Sprintf("task%d", rng.Intn(8))
		if rng.Intn(2) == 0 {
			rec := taskRec(tid, model.TaskPending)
			rec.Attempts = rng.Intn(5)
			_ = c.PutTask(rec)
		} else {
			_ = c.DeleteTask(tid)
		}
	}
}

// TestRandomizedOpLogEquivalence is the crash-recovery equivalence
// proof: a random op sequence runs against a durable catalog and a
// volatile shadow; at random points the durable catalog is abandoned
// mid-flight (no Close — the in-memory state is gone, exactly like
// kill -9 with FsyncInterval 0) and recovered from disk. After every
// recovery and at the end, recovered state must equal the shadow's.
func TestRandomizedOpLogEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			durable := mustOpen(t, dir, WALOptions{Partitions: 4})
			shadow := NewCatalog(sites(6))

			var ids []model.BlockID
			for i := 0; i < 30; i++ {
				ids = append(ids, model.BlockID(fmt.Sprintf("r%02d", i)))
			}
			vd := map[model.BlockID]uint64{}
			vs := map[model.BlockID]uint64{}
			for step := 0; step < 400; step++ {
				opSeed := rng.Int63()
				randomOp(rand.New(rand.NewSource(opSeed)), durable, vd)
				randomOp(rand.New(rand.NewSource(opSeed)), shadow, vs)
				if step%97 == 96 {
					// Crash: abandon the durable catalog without Close.
					// Sync-mode commits mean disk already holds every
					// acknowledged op.
					recovered := mustOpen(t, dir, WALOptions{Partitions: 4})
					requireEqualState(t, dumpState(shadow, ids), dumpState(recovered, ids))
					durable = recovered
				}
			}
			requireEqualState(t, dumpState(shadow, ids), dumpState(durable, ids))
			if err := durable.Close(); err != nil {
				t.Fatal(err)
			}
			final := mustOpen(t, dir, WALOptions{Partitions: 4})
			defer func() { _ = final.Close() }()
			requireEqualState(t, dumpState(shadow, ids), dumpState(final, ids))
		})
	}
}

// TestPackRecovery: container/member relationships — derived member
// refs, member deletes, container cascades — must all survive a restart.
func TestPackRecovery(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, WALOptions{Partitions: 4})
	pack := blockMeta("pack", 1, 2, 3, 4)
	pack.Size = 200
	pack.Members = []model.PackedMember{
		{ID: "m1", Off: 0, Len: 80},
		{ID: "m2", Off: 80, Len: 60},
		{ID: "m3", Off: 140, Len: 60},
	}
	if err := c.Register(pack); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("m2"); err != nil {
		t.Fatal(err)
	}
	ids := []model.BlockID{"pack", "m1", "m2", "m3"}
	want := dumpState(c, ids)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, WALOptions{Partitions: 4})
	defer func() { _ = r.Close() }()
	requireEqualState(t, want, dumpState(r, ids))
	if _, ok := r.BlockMeta("m1"); !ok {
		t.Fatal("member m1 unresolvable after recovery")
	}
	if _, ok := r.BlockMeta("m2"); ok {
		t.Fatal("deleted member m2 resolves after recovery")
	}
	// Deleting the container after recovery must cascade to m1/m3.
	if _, err := r.Delete("pack"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.BlockMeta("m3"); ok {
		t.Fatal("member m3 resolves after container delete")
	}
}

// TestBoundedSnapshotCounts: a flipped bit in a count field must fail
// with ErrBadSnapshot, not drive allocation.
func TestBoundedSnapshotCounts(t *testing.T) {
	c := NewCatalog(sites(4))
	if err := c.Register(blockMeta("a", 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The site-count field is the first u32 after the magic and the
	// first frame header: flip its high bit.
	off := len(snapshotMagic) + 4
	data[off] ^= 0x80
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt site count loaded")
	}
}
