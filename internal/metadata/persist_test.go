package metadata

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ecstore/internal/model"
)

func TestSnapshotRoundTrip(t *testing.T) {
	c := NewCatalog(sites(8))
	if err := c.Register(blockMeta("alpha", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(blockMeta("beta", 4, 5, 6, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdatePlacement("alpha", 0, 8, 0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Len() != 2 {
		t.Fatalf("loaded %d blocks", loaded.Len())
	}
	got, ok := loaded.BlockMeta("alpha")
	if !ok {
		t.Fatal("alpha missing")
	}
	if got.Sites[0] != 8 || got.Version != 1 {
		t.Fatalf("alpha state = %+v", got)
	}
	if gotSites := loaded.Sites(); len(gotSites) != 8 {
		t.Fatalf("sites = %v", gotSites)
	}
	// Indexes rebuilt.
	if ids := loaded.BlocksOnSite(8); len(ids) != 1 || ids[0] != "alpha" {
		t.Fatalf("BlocksOnSite(8) = %v", ids)
	}
}

func TestSnapshotEmptyCatalog(t *testing.T) {
	c := NewCatalog(sites(3))
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("loaded %d blocks from empty snapshot", loaded.Len())
	}
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"wrong magic": []byte("NOT-A-SNAPSHOT--\n plus data"),
		"truncated": func() []byte {
			c := NewCatalog(sites(3))
			_ = c.Register(blockMeta("a", 1, 2, 3))
			var buf bytes.Buffer
			_ = c.Save(&buf)
			return buf.Bytes()[:buf.Len()-3]
		}(),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("err = %v, want ErrBadSnapshot", err)
			}
		})
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.snap")

	c := NewCatalog(sites(4))
	if err := c.Register(blockMeta("x", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind")
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.BlockMeta("x"); !ok {
		t.Fatal("block lost through file round trip")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestSnapshotPreservesReplicatedBlocks(t *testing.T) {
	c := NewCatalog(sites(5))
	meta := &model.BlockMeta{
		ID:        "rep",
		Scheme:    model.SchemeReplicated,
		Size:      100,
		K:         1,
		R:         2,
		ChunkSize: 100,
		Sites:     []model.SiteID{1, 3, 5},
	}
	if err := c.Register(meta); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := loaded.BlockMeta("rep")
	if got.Scheme != model.SchemeReplicated || got.RequiredChunks() != 1 {
		t.Fatalf("replicated block mangled: %+v", got)
	}
}
