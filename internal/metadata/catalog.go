// Package metadata implements EC-Store's metadata service (Section V): the
// authoritative catalog mapping each block to the sites storing its encoded
// chunks, with compare-and-swap placement updates so the chunk mover and
// repair service can relocate chunks without racing readers.
package metadata

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// Errors returned by the catalog.
var (
	ErrNotFound       = errors.New("metadata: block not found")
	ErrExists         = errors.New("metadata: block already registered")
	ErrStaleVersion   = errors.New("metadata: placement version conflict")
	ErrChunkConflict  = errors.New("metadata: destination already holds a chunk of this block")
	ErrInvalidChunk   = errors.New("metadata: invalid chunk id")
	ErrInvalidBlock   = errors.New("metadata: invalid block metadata")
	ErrUnknownSite    = errors.New("metadata: unknown site")
)

// Catalog is the in-memory metadata store. It is safe for concurrent use
// and implements placement.CatalogView.
type Catalog struct {
	mu     sync.RWMutex
	blocks map[model.BlockID]*model.BlockMeta
	// bySite indexes blocks by the sites storing their chunks, for
	// repair scans after a site failure.
	bySite map[model.SiteID]map[model.BlockID]bool
	sites  map[model.SiteID]bool
	// retired remembers the final placement version of deleted blocks so
	// a re-registered id resumes numbering instead of restarting at 0:
	// (id, version) pairs are then unique across a block's lifetimes,
	// which version-keyed caches (plan cache, decoded-block cache)
	// depend on to never alias old bytes onto a recreated block.
	retired map[model.BlockID]uint64

	reg         *obs.Registry
	registers   *obs.Counter
	lookups     *obs.Counter
	lookupMiss  *obs.Counter
	deletes     *obs.Counter
	updates     *obs.Counter
	updateFails *obs.Counter
	blocksGauge *obs.Gauge
}

// EnableMetrics exports catalog instrumentation into reg (nil disables it,
// which is the default). Call before serving traffic.
func (c *Catalog) EnableMetrics(reg *obs.Registry) {
	c.reg = reg
	c.registers = reg.Counter("meta_registers_total", "blocks registered")
	c.lookups = reg.Counter("meta_lookups_total", "block metadata lookups")
	c.lookupMiss = reg.Counter("meta_lookup_misses_total", "lookups of unknown blocks")
	c.deletes = reg.Counter("meta_deletes_total", "blocks deleted")
	c.updates = reg.Counter("meta_placement_updates_total", "successful chunk placement CAS updates")
	c.updateFails = reg.Counter("meta_placement_conflicts_total", "placement CAS updates rejected (stale version or conflict)")
	c.blocksGauge = reg.Gauge("meta_blocks", "blocks currently registered")
}

// MetricsSnapshot captures the catalog's registry (empty when metrics are
// disabled). Served remotely by the GetMetrics RPC method.
func (c *Catalog) MetricsSnapshot() *obs.Snapshot {
	return c.reg.Snapshot()
}

// NewCatalog returns an empty catalog aware of the given sites.
func NewCatalog(sites []model.SiteID) *Catalog {
	c := &Catalog{
		blocks:  make(map[model.BlockID]*model.BlockMeta),
		bySite:  make(map[model.SiteID]map[model.BlockID]bool),
		sites:   make(map[model.SiteID]bool, len(sites)),
		retired: make(map[model.BlockID]uint64),
	}
	for _, s := range sites {
		c.sites[s] = true
	}
	return c
}

// AddSite registers an additional site.
func (c *Catalog) AddSite(s model.SiteID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sites[s] = true
}

// Sites lists every known site in ascending order.
func (c *Catalog) Sites() []model.SiteID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]model.SiteID, 0, len(c.sites))
	for s := range c.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Register adds a new block. Every chunk site must be known, chunks of one
// block must land on distinct sites, and the id must be unused.
func (c *Catalog) Register(meta *model.BlockMeta) error {
	if meta == nil || meta.ID == "" || len(meta.Sites) == 0 {
		return ErrInvalidBlock
	}
	if len(meta.Sites) != meta.TotalChunks() {
		return fmt.Errorf("%w: %d sites for %d chunks", ErrInvalidBlock, len(meta.Sites), meta.TotalChunks())
	}
	seen := make(map[model.SiteID]bool, len(meta.Sites))
	for _, s := range meta.Sites {
		if seen[s] {
			return fmt.Errorf("%w: duplicate site %d", ErrInvalidBlock, s)
		}
		seen[s] = true
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range meta.Sites {
		if !c.sites[s] {
			return fmt.Errorf("%w: site %d", ErrUnknownSite, s)
		}
	}
	if _, exists := c.blocks[meta.ID]; exists {
		return fmt.Errorf("%w: %s", ErrExists, meta.ID)
	}
	stored := meta.Clone()
	if last, wasDeleted := c.retired[meta.ID]; wasDeleted && stored.Version <= last {
		// Resume version numbering where the deleted incarnation left
		// off, so version-keyed caches never alias its bytes.
		stored.Version = last + 1
	}
	delete(c.retired, meta.ID)
	c.blocks[meta.ID] = stored
	for _, s := range stored.Sites {
		c.indexLocked(s, stored.ID)
	}
	c.registers.Inc()
	c.blocksGauge.Set(int64(len(c.blocks)))
	return nil
}

func (c *Catalog) indexLocked(s model.SiteID, id model.BlockID) {
	m := c.bySite[s]
	if m == nil {
		m = make(map[model.BlockID]bool)
		c.bySite[s] = m
	}
	m[id] = true
}

func (c *Catalog) unindexLocked(s model.SiteID, id model.BlockID) {
	if m := c.bySite[s]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(c.bySite, s)
		}
	}
}

// BlockMeta returns a copy of a block's metadata. The boolean reports
// existence (satisfying placement.CatalogView).
func (c *Catalog) BlockMeta(id model.BlockID) (*model.BlockMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	meta, ok := c.blocks[id]
	if !ok {
		return nil, false
	}
	return meta.Clone(), true
}

// Lookup returns copies of the metadata for the given ids; missing blocks
// yield ErrNotFound.
func (c *Catalog) Lookup(ids []model.BlockID) (map[model.BlockID]*model.BlockMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.lookups.Inc()
	out := make(map[model.BlockID]*model.BlockMeta, len(ids))
	for _, id := range ids {
		meta, ok := c.blocks[id]
		if !ok {
			c.lookupMiss.Inc()
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		out[id] = meta.Clone()
	}
	return out, nil
}

// Delete removes a block, returning its final metadata so callers can
// delete the chunks.
func (c *Catalog) Delete(id model.BlockID) (*model.BlockMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, ok := c.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(c.blocks, id)
	c.retired[id] = meta.Version
	for _, s := range meta.Sites {
		c.unindexLocked(s, id)
	}
	c.deletes.Inc()
	c.blocksGauge.Set(int64(len(c.blocks)))
	return meta, nil
}

// UpdatePlacement atomically relocates one chunk: it verifies the expected
// version (optimistic concurrency for the mover), rejects destinations
// already holding a chunk of the block (r-fault tolerance), updates the
// index, and returns the new version.
func (c *Catalog) UpdatePlacement(id model.BlockID, chunk int, to model.SiteID, expectVersion uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, ok := c.blocks[id]
	if !ok {
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if chunk < 0 || chunk >= len(meta.Sites) {
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: %d", ErrInvalidChunk, chunk)
	}
	if meta.Version != expectVersion {
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: have %d, expected %d", ErrStaleVersion, meta.Version, expectVersion)
	}
	if !c.sites[to] {
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: site %d", ErrUnknownSite, to)
	}
	for ci, s := range meta.Sites {
		if s == to && ci != chunk {
			c.updateFails.Inc()
			return 0, fmt.Errorf("%w: site %d", ErrChunkConflict, to)
		}
	}
	from := meta.Sites[chunk]
	if from == to {
		return meta.Version, nil
	}
	meta.Sites[chunk] = to
	meta.Version++
	c.unindexLocked(from, id)
	// Keep the index entry if another chunk still lives at `from`.
	for ci, s := range meta.Sites {
		if s == from && ci != chunk {
			c.indexLocked(from, id)
			break
		}
	}
	c.indexLocked(to, id)
	c.updates.Inc()
	return meta.Version, nil
}

// BlocksOnSite lists blocks with at least one chunk at the site, in sorted
// order (used by the repair service).
func (c *Catalog) BlocksOnSite(s model.SiteID) []model.BlockID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]model.BlockID, 0, len(c.bySite[s]))
	for id := range c.bySite[s] {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of registered blocks.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blocks)
}

// ForEach invokes fn with a copy of every block's metadata until fn
// returns false. Iteration order is unspecified.
func (c *Catalog) ForEach(fn func(*model.BlockMeta) bool) {
	c.mu.RLock()
	ids := make([]model.BlockID, 0, len(c.blocks))
	for id := range c.blocks {
		ids = append(ids, id)
	}
	c.mu.RUnlock()
	for _, id := range ids {
		meta, ok := c.BlockMeta(id)
		if !ok {
			continue
		}
		if !fn(meta) {
			return
		}
	}
}
