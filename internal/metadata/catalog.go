// Package metadata implements EC-Store's metadata service (Section V): the
// authoritative catalog mapping each block to the sites storing its encoded
// chunks, with compare-and-swap placement updates so the chunk mover and
// repair service can relocate chunks without racing readers.
//
// The catalog is sharded by block-id hash into independently locked
// partitions (partition.go), each with an optional write-ahead log and
// snapshot compaction (wal.go, recover.go) so a metadata restart replays
// exactly the pre-crash state — including the retired version watermarks
// that keep (BlockID, version) cache keys unique across a block's
// lifetimes.
package metadata

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// Errors returned by the catalog.
var (
	ErrNotFound      = errors.New("metadata: block not found")
	ErrExists        = errors.New("metadata: block already registered")
	ErrStaleVersion  = errors.New("metadata: placement version conflict")
	ErrChunkConflict = errors.New("metadata: destination already holds a chunk of this block")
	ErrInvalidChunk  = errors.New("metadata: invalid chunk id")
	ErrInvalidBlock  = errors.New("metadata: invalid block metadata")
	ErrUnknownSite   = errors.New("metadata: unknown site")
	ErrInvalidMember = errors.New("metadata: invalid pack member")
)

// memberRef locates one packed block inside its container.
type memberRef struct {
	container model.BlockID
	off, size int64
}

// Catalog is the in-memory metadata store. It is safe for concurrent use
// and implements placement.CatalogView.
//
// Block state (blocks, member refs, retired watermarks, the by-site
// index) is sharded over partitions by id hash; each partition has its
// own RWMutex, so updates to unrelated blocks never contend. Control
// state shared by every operation — the site set, site administrative
// records, and background task rows — stays global under gmu, which is
// read-mostly. Lock order, enforced by the lockorder lint: partition.mu
// before gmu before partLog.mu; no operation ever holds two partition
// locks at once (cross-partition work releases one before taking the
// next).
type Catalog struct {
	parts []*partition

	gmu      sync.RWMutex
	sites    map[model.SiteID]bool
	siteInfo map[model.SiteID]model.SiteInfo
	tasks    map[string]*model.TaskRecord

	// nblocks mirrors the total registered block count for the gauge
	// without summing partition lengths on every mutation.
	nblocks atomic.Int64

	// wal is non-nil for catalogs opened with durability (Open); it
	// owns the partition logs, the group-commit flusher and compaction.
	wal *walSet

	reg         *obs.Registry
	registers   *obs.Counter
	lookups     *obs.Counter
	lookupMiss  *obs.Counter
	deletes     *obs.Counter
	updates     *obs.Counter
	updateFails *obs.Counter
	blocksGauge *obs.Gauge
	partsGauge  *obs.Gauge
	partMaxG    *obs.Gauge
}

// EnableMetrics exports catalog instrumentation into reg (nil disables it,
// which is the default). Call before serving traffic.
func (c *Catalog) EnableMetrics(reg *obs.Registry) {
	c.reg = reg
	c.registers = reg.Counter("meta_registers_total", "blocks registered")
	c.lookups = reg.Counter("meta_lookups_total", "block metadata lookups")
	c.lookupMiss = reg.Counter("meta_lookup_misses_total", "lookups of unknown blocks")
	c.deletes = reg.Counter("meta_deletes_total", "blocks deleted")
	c.updates = reg.Counter("meta_placement_updates_total", "successful chunk placement CAS updates")
	c.updateFails = reg.Counter("meta_placement_conflicts_total", "placement CAS updates rejected (stale version or conflict)")
	c.blocksGauge = reg.Gauge("meta_blocks", "blocks currently registered")
	c.partsGauge = reg.Gauge("meta_partition_count", "catalog partition count")
	c.partMaxG = reg.Gauge("meta_partition_blocks_max", "blocks in the fullest partition (hash-skew watch)")
	c.partsGauge.Set(int64(len(c.parts)))
	c.blocksGauge.Set(c.nblocks.Load())
	c.wal.enableMetrics(reg)
}

// MetricsSnapshot captures the catalog's registry (empty when metrics are
// disabled). Served remotely by the GetMetrics RPC method. Scrape-time
// gauges (partition skew) are refreshed here rather than on every
// mutation.
func (c *Catalog) MetricsSnapshot() *obs.Snapshot {
	if c.partMaxG != nil {
		var max int
		for _, p := range c.parts {
			p.mu.RLock()
			if len(p.blocks) > max {
				max = len(p.blocks)
			}
			p.mu.RUnlock()
		}
		c.partMaxG.Set(int64(max))
	}
	return c.reg.Snapshot()
}

// NewCatalog returns an empty volatile catalog aware of the given sites,
// sharded over DefaultPartitions partitions. Use Open for a durable
// catalog backed by per-partition write-ahead logs.
func NewCatalog(sites []model.SiteID) *Catalog {
	return NewCatalogParts(sites, DefaultPartitions)
}

// NewCatalogParts returns an empty volatile catalog with an explicit
// partition count (the ab-meta ablation sweeps it; 1 reproduces the old
// single-lock catalog).
func NewCatalogParts(sites []model.SiteID, partitions int) *Catalog {
	if partitions < 1 {
		partitions = 1
	}
	c := &Catalog{
		parts:    make([]*partition, partitions),
		sites:    make(map[model.SiteID]bool, len(sites)),
		siteInfo: make(map[model.SiteID]model.SiteInfo),
		tasks:    make(map[string]*model.TaskRecord),
	}
	for i := range c.parts {
		c.parts[i] = newPartition()
	}
	for _, s := range sites {
		c.sites[s] = true
	}
	return c
}

// Partitions returns the catalog's shard count.
func (c *Catalog) Partitions() int { return len(c.parts) }

// walFailed gates every mutation entry point: once a WAL write or fsync
// has failed the catalog is fail-stopped and rejects mutations before
// touching any state (always nil for volatile catalogs).
func (c *Catalog) walFailed() error {
	return c.wal.failErr()
}

// AddSite registers an additional site (idempotent).
func (c *Catalog) AddSite(s model.SiteID) error {
	if err := c.walFailed(); err != nil {
		return err
	}
	p := c.sitePart(s)
	c.gmu.Lock()
	if c.sites[s] {
		c.gmu.Unlock()
		return nil
	}
	c.sites[s] = true
	lsn := p.log.appendSiteAdd(s)
	c.gmu.Unlock()
	return c.wal.commit(p, lsn)
}

// Sites lists every known site in ascending order.
func (c *Catalog) Sites() []model.SiteID {
	c.gmu.RLock()
	defer c.gmu.RUnlock()
	out := make([]model.SiteID, 0, len(c.sites))
	for s := range c.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// knownSites checks every site in the list against the global site set.
func (c *Catalog) knownSites(ss []model.SiteID) error {
	c.gmu.RLock()
	defer c.gmu.RUnlock()
	for _, s := range ss {
		if !c.sites[s] {
			return fmt.Errorf("%w: site %d", ErrUnknownSite, s)
		}
	}
	return nil
}

// Register adds a new block. Every chunk site must be known, chunks of one
// block must land on distinct sites, and the id must be unused. A meta
// carrying Members registers a pack container: each member id becomes
// resolvable through Lookup/BlockMeta as a synthesized entry, so member
// ids must be unused too and their byte ranges must fit the container.
func (c *Catalog) Register(meta *model.BlockMeta) error {
	if err := c.walFailed(); err != nil {
		return err
	}
	if meta == nil || meta.ID == "" || len(meta.Sites) == 0 {
		return ErrInvalidBlock
	}
	if meta.Packed() {
		// Synthesized member metadata is derived state; only containers
		// and plain blocks are registered.
		return fmt.Errorf("%w: %s carries PackedIn", ErrInvalidBlock, meta.ID)
	}
	if len(meta.Sites) != meta.TotalChunks() {
		return fmt.Errorf("%w: %d sites for %d chunks", ErrInvalidBlock, len(meta.Sites), meta.TotalChunks())
	}
	// Write-side bounds: anything past what DecodeBlockMeta or the WAL
	// frame limit accepts must be rejected here — once logged, an
	// oversized record would be unreadable at replay.
	if len(meta.Sites) > maxBlockSites {
		return fmt.Errorf("%w: %d sites exceeds bound %d", ErrInvalidBlock, len(meta.Sites), maxBlockSites)
	}
	if len(meta.Members) > maxPackMembers {
		return fmt.Errorf("%w: %d members in %s exceeds bound %d", ErrInvalidMember, len(meta.Members), meta.ID, maxPackMembers)
	}
	if sz := encodedBlockMetaSize(meta); sz > maxWALBody {
		return fmt.Errorf("%w: %s encodes to %d bytes, exceeding the %d-byte WAL record bound", ErrInvalidBlock, meta.ID, sz, maxWALBody)
	}
	seen := make(map[model.SiteID]bool, len(meta.Sites))
	for _, s := range meta.Sites {
		if seen[s] {
			return fmt.Errorf("%w: duplicate site %d", ErrInvalidBlock, s)
		}
		seen[s] = true
	}
	memberIDs := make(map[model.BlockID]bool, len(meta.Members))
	for _, m := range meta.Members {
		if m.ID == "" || m.ID == meta.ID {
			return fmt.Errorf("%w: bad id %q in %s", ErrInvalidMember, m.ID, meta.ID)
		}
		if memberIDs[m.ID] {
			return fmt.Errorf("%w: duplicate id %s in %s", ErrInvalidMember, m.ID, meta.ID)
		}
		memberIDs[m.ID] = true
		if m.Off < 0 || m.Len < 0 || m.Off+m.Len > meta.Size {
			return fmt.Errorf("%w: %s range [%d,%d) outside container of %d bytes", ErrInvalidMember, m.ID, m.Off, m.Off+m.Len, meta.Size)
		}
	}
	if err := c.knownSites(meta.Sites); err != nil {
		return err
	}

	// Reserve every member id in its own partition, one lock at a time.
	// A reservation is a member ref whose container is not registered
	// yet; lookups of it fail until the container lands, and a failure
	// below rolls the reservations back.
	reserved := make([]model.PackedMember, 0, len(meta.Members))
	fail := func(err error) error {
		for _, m := range reserved {
			pm := c.part(m.ID)
			pm.mu.Lock()
			if ref, ok := pm.members[m.ID]; ok && ref.container == meta.ID {
				delete(pm.members, m.ID)
			}
			pm.mu.Unlock()
		}
		return err
	}
	for _, m := range meta.Members {
		pm := c.part(m.ID)
		pm.mu.Lock()
		_, isBlock := pm.blocks[m.ID]
		_, isMember := pm.members[m.ID]
		if isBlock {
			pm.mu.Unlock()
			return fail(fmt.Errorf("%w: member %s", ErrExists, m.ID))
		}
		if isMember {
			pm.mu.Unlock()
			return fail(fmt.Errorf("%w: member %s (already packed)", ErrExists, m.ID))
		}
		pm.members[m.ID] = memberRef{container: meta.ID, off: m.Off, size: m.Len}
		pm.mu.Unlock()
		reserved = append(reserved, m)
	}

	p := c.part(meta.ID)
	p.mu.Lock()
	if _, exists := p.blocks[meta.ID]; exists {
		p.mu.Unlock()
		return fail(fmt.Errorf("%w: %s", ErrExists, meta.ID))
	}
	if ref, exists := p.members[meta.ID]; exists && ref.container != meta.ID {
		p.mu.Unlock()
		return fail(fmt.Errorf("%w: %s (is a pack member)", ErrExists, meta.ID))
	}
	stored := meta.Clone()
	if last, wasDeleted := p.retired[meta.ID]; wasDeleted && stored.Version <= last {
		// Resume version numbering where the deleted incarnation left
		// off, so version-keyed caches never alias its bytes.
		stored.Version = last + 1
	}
	delete(p.retired, meta.ID)
	p.blocks[meta.ID] = stored
	for _, s := range stored.Sites {
		p.indexLocked(s, stored.ID)
	}
	lsn := p.log.appendRegister(stored)
	p.mu.Unlock()
	if err := c.wal.commit(p, lsn); err != nil {
		return err
	}

	c.nblocks.Add(1)
	c.registers.Inc()
	c.blocksGauge.Set(c.nblocks.Load())
	return nil
}

// memberMeta synthesizes a pack member's metadata from its container.
// The member mirrors the container's coding parameters, placement and
// version (so version-keyed caches invalidate with the container) but
// owns no chunks of its own.
func synthMemberMeta(id model.BlockID, cm *model.BlockMeta, ref memberRef) *model.BlockMeta {
	return &model.BlockMeta{
		ID:         id,
		Scheme:     cm.Scheme,
		Size:       ref.size,
		K:          cm.K,
		R:          cm.R,
		ChunkSize:  cm.ChunkSize,
		Sites:      append([]model.SiteID(nil), cm.Sites...),
		Version:    cm.Version,
		StripeUnit: cm.StripeUnit,
		PackedIn:   cm.ID,
		PackedOff:  ref.off,
	}
}

// lookupOne resolves one id — a registered block or a synthesized pack
// member — taking at most two partition locks in sequence, never nested.
func (c *Catalog) lookupOne(id model.BlockID) (*model.BlockMeta, bool) {
	p := c.part(id)
	p.mu.RLock()
	if meta, ok := p.blocks[id]; ok {
		out := meta.Clone()
		p.mu.RUnlock()
		return out, true
	}
	ref, isMember := p.members[id]
	p.mu.RUnlock()
	if !isMember {
		return nil, false
	}
	pc := c.part(ref.container)
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	cm, ok := pc.blocks[ref.container]
	if !ok {
		// A reservation whose container never landed, or a racing
		// container delete: the member does not resolve.
		return nil, false
	}
	return synthMemberMeta(id, cm, ref), true
}

// BlockMeta returns a copy of a block's metadata. The boolean reports
// existence (satisfying placement.CatalogView).
func (c *Catalog) BlockMeta(id model.BlockID) (*model.BlockMeta, bool) {
	return c.lookupOne(id)
}

// Lookup returns copies of the metadata for the given ids; missing blocks
// yield ErrNotFound.
func (c *Catalog) Lookup(ids []model.BlockID) (map[model.BlockID]*model.BlockMeta, error) {
	c.lookups.Inc()
	out := make(map[model.BlockID]*model.BlockMeta, len(ids))
	for _, id := range ids {
		meta, ok := c.lookupOne(id)
		if !ok {
			c.lookupMiss.Inc()
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		out[id] = meta
	}
	return out, nil
}

// Delete removes a block, returning its final metadata so callers can
// delete the chunks.
//
// Deleting a pack member removes it from the container's member list and
// returns its synthesized metadata with Sites set to nil: the member owns
// no chunks, so there is nothing for the caller to delete (the container
// keeps its chunks until it is deleted itself). Deleting a container
// cascades: every remaining member id stops resolving.
func (c *Catalog) Delete(id model.BlockID) (*model.BlockMeta, error) {
	if err := c.walFailed(); err != nil {
		return nil, err
	}
	p := c.part(id)
	p.mu.Lock()
	meta, ok := p.blocks[id]
	if !ok {
		ref, isMember := p.members[id]
		p.mu.Unlock()
		if !isMember {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return c.deleteMember(id, ref)
	}
	delete(p.blocks, id)
	p.retireLocked(id, meta.Version)
	for _, s := range meta.Sites {
		p.unindexLocked(s, id)
	}
	lsn := p.log.appendDelete(id, meta.Version)
	p.mu.Unlock()
	if err := c.wal.commit(p, lsn); err != nil {
		return nil, err
	}

	// Cascade: retire every member id in its own partition. The member
	// refs and watermarks live where the ids hash, so each mutation —
	// and its WAL record — is confined to one partition. The cascade is
	// not crash-atomic with the container record; replay re-derives the
	// member watermarks from the container's delete record (see
	// applyWALRecord), so a crash here loses nothing.
	for _, m := range meta.Members {
		pm := c.part(m.ID)
		pm.mu.Lock()
		if ref, okm := pm.members[m.ID]; okm && ref.container == id {
			delete(pm.members, m.ID)
		}
		pm.retireLocked(m.ID, meta.Version)
		mlsn := pm.log.appendRetire(m.ID, meta.Version)
		pm.mu.Unlock()
		if err := c.wal.commit(pm, mlsn); err != nil {
			return nil, err
		}
	}
	c.nblocks.Add(-1)
	c.deletes.Inc()
	c.blocksGauge.Set(c.nblocks.Load())
	return meta, nil
}

// deleteMember detaches one packed block from its container.
func (c *Catalog) deleteMember(id model.BlockID, ref memberRef) (*model.BlockMeta, error) {
	pc := c.part(ref.container)
	pc.mu.Lock()
	cm, ok := pc.blocks[ref.container]
	if !ok {
		pc.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	for i, m := range cm.Members {
		if m.ID == id {
			cm.Members = append(cm.Members[:i], cm.Members[i+1:]...)
			break
		}
	}
	synth := synthMemberMeta(id, cm, ref)
	lsn := pc.log.appendMemberRemove(ref.container, id)
	pc.mu.Unlock()
	if err := c.wal.commit(pc, lsn); err != nil {
		return nil, err
	}

	// Like Delete's cascade, the member's retire record is separate from
	// the container's member-remove record; replay re-derives the
	// watermark from the latter if a crash lands between them.
	pm := c.part(id)
	pm.mu.Lock()
	if cur, okm := pm.members[id]; okm && cur.container == ref.container {
		delete(pm.members, id)
	}
	pm.retireLocked(id, synth.Version)
	mlsn := pm.log.appendRetire(id, synth.Version)
	pm.mu.Unlock()
	if err := c.wal.commit(pm, mlsn); err != nil {
		return nil, err
	}

	synth.Sites = nil
	c.deletes.Inc()
	return synth, nil
}

// UpdatePlacement atomically relocates one chunk: it verifies the expected
// version (optimistic concurrency for the mover), rejects destinations
// already holding a chunk of the block (r-fault tolerance), updates the
// index, and returns the new version.
func (c *Catalog) UpdatePlacement(id model.BlockID, chunk int, to model.SiteID, expectVersion uint64) (uint64, error) {
	if err := c.walFailed(); err != nil {
		return 0, err
	}
	if err := c.knownSites([]model.SiteID{to}); err != nil {
		c.updateFails.Inc()
		return 0, err
	}
	p := c.part(id)
	p.mu.Lock()
	meta, ok := p.blocks[id]
	if !ok {
		p.mu.Unlock()
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if chunk < 0 || chunk >= len(meta.Sites) {
		p.mu.Unlock()
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: %d", ErrInvalidChunk, chunk)
	}
	if meta.Version != expectVersion {
		have := meta.Version
		p.mu.Unlock()
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: have %d, expected %d", ErrStaleVersion, have, expectVersion)
	}
	for ci, s := range meta.Sites {
		if s == to && ci != chunk {
			p.mu.Unlock()
			c.updateFails.Inc()
			return 0, fmt.Errorf("%w: site %d", ErrChunkConflict, to)
		}
	}
	from := meta.Sites[chunk]
	if from == to {
		v := meta.Version
		p.mu.Unlock()
		return v, nil
	}
	meta.Sites[chunk] = to
	meta.Version++
	p.unindexLocked(from, id)
	// Keep the index entry if another chunk still lives at `from`.
	for ci, s := range meta.Sites {
		if s == from && ci != chunk {
			p.indexLocked(from, id)
			break
		}
	}
	p.indexLocked(to, id)
	version := meta.Version
	lsn := p.log.appendUpdate(id, chunk, to, version)
	p.mu.Unlock()
	if err := c.wal.commit(p, lsn); err != nil {
		return 0, err
	}
	c.updates.Inc()
	return version, nil
}

// BlocksOnSite lists blocks with at least one chunk at the site, in sorted
// order (used by the repair service). Partitions are scanned one at a
// time; the result is a merge of their per-partition indexes.
func (c *Catalog) BlocksOnSite(s model.SiteID) []model.BlockID {
	var out []model.BlockID
	for _, p := range c.parts {
		p.mu.RLock()
		for id := range p.bySite[s] {
			out = append(out, id)
		}
		p.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of registered blocks.
func (c *Catalog) Len() int {
	n := 0
	for _, p := range c.parts {
		p.mu.RLock()
		n += len(p.blocks)
		p.mu.RUnlock()
	}
	return n
}

// ForEach invokes fn with a copy of every block's metadata until fn
// returns false. Iteration order is unspecified.
func (c *Catalog) ForEach(fn func(*model.BlockMeta) bool) {
	for _, p := range c.parts {
		p.mu.RLock()
		ids := make([]model.BlockID, 0, len(p.blocks))
		for id := range p.blocks {
			ids = append(ids, id)
		}
		p.mu.RUnlock()
		for _, id := range ids {
			meta, ok := c.lookupOne(id)
			if !ok {
				continue
			}
			if !fn(meta) {
				return
			}
		}
	}
}

// retiredWatermarks snapshots every partition's retired map (sorted ids)
// for persistence.
func (c *Catalog) retiredWatermarks() ([]model.BlockID, map[model.BlockID]uint64) {
	out := make(map[model.BlockID]uint64)
	for _, p := range c.parts {
		p.mu.RLock()
		for id, v := range p.retired {
			out[id] = v
		}
		p.mu.RUnlock()
	}
	ids := make([]model.BlockID, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, out
}

// restoreRetired seeds a retired watermark during snapshot load and WAL
// replay.
func (c *Catalog) restoreRetired(id model.BlockID, version uint64) {
	p := c.part(id)
	p.mu.Lock()
	p.retireLocked(id, version)
	p.mu.Unlock()
}

// RetiredVersion reports the recorded watermark for a deleted id (zero,
// false when the id was never deleted or has been re-registered).
func (c *Catalog) RetiredVersion(id model.BlockID) (uint64, bool) {
	p := c.part(id)
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, ok := p.retired[id]
	return v, ok
}
