// Package metadata implements EC-Store's metadata service (Section V): the
// authoritative catalog mapping each block to the sites storing its encoded
// chunks, with compare-and-swap placement updates so the chunk mover and
// repair service can relocate chunks without racing readers.
package metadata

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ecstore/internal/model"
	"ecstore/internal/obs"
)

// Errors returned by the catalog.
var (
	ErrNotFound      = errors.New("metadata: block not found")
	ErrExists        = errors.New("metadata: block already registered")
	ErrStaleVersion  = errors.New("metadata: placement version conflict")
	ErrChunkConflict = errors.New("metadata: destination already holds a chunk of this block")
	ErrInvalidChunk  = errors.New("metadata: invalid chunk id")
	ErrInvalidBlock  = errors.New("metadata: invalid block metadata")
	ErrUnknownSite   = errors.New("metadata: unknown site")
	ErrInvalidMember = errors.New("metadata: invalid pack member")
)

// memberRef locates one packed block inside its container.
type memberRef struct {
	container model.BlockID
	off, size int64
}

// Catalog is the in-memory metadata store. It is safe for concurrent use
// and implements placement.CatalogView.
type Catalog struct {
	mu     sync.RWMutex
	blocks map[model.BlockID]*model.BlockMeta
	// bySite indexes blocks by the sites storing their chunks, for
	// repair scans after a site failure. Pack members never appear here:
	// they own no chunks, so repair and movement operate on the container.
	bySite map[model.SiteID]map[model.BlockID]bool
	// members resolves a packed block id to its container and byte range;
	// lookups of member ids synthesize metadata from the container entry.
	members map[model.BlockID]memberRef
	sites   map[model.SiteID]bool
	// retired remembers the final placement version of deleted blocks so
	// a re-registered id resumes numbering instead of restarting at 0:
	// (id, version) pairs are then unique across a block's lifetimes,
	// which version-keyed caches (plan cache, decoded-block cache)
	// depend on to never alias old bytes onto a recreated block.
	retired map[model.BlockID]uint64
	// tasks holds background task records keyed by task ID (tasks.go),
	// and siteInfo per-site administrative state (zone, drain state).
	tasks    map[string]*model.TaskRecord
	siteInfo map[model.SiteID]model.SiteInfo

	reg         *obs.Registry
	registers   *obs.Counter
	lookups     *obs.Counter
	lookupMiss  *obs.Counter
	deletes     *obs.Counter
	updates     *obs.Counter
	updateFails *obs.Counter
	blocksGauge *obs.Gauge
}

// EnableMetrics exports catalog instrumentation into reg (nil disables it,
// which is the default). Call before serving traffic.
func (c *Catalog) EnableMetrics(reg *obs.Registry) {
	c.reg = reg
	c.registers = reg.Counter("meta_registers_total", "blocks registered")
	c.lookups = reg.Counter("meta_lookups_total", "block metadata lookups")
	c.lookupMiss = reg.Counter("meta_lookup_misses_total", "lookups of unknown blocks")
	c.deletes = reg.Counter("meta_deletes_total", "blocks deleted")
	c.updates = reg.Counter("meta_placement_updates_total", "successful chunk placement CAS updates")
	c.updateFails = reg.Counter("meta_placement_conflicts_total", "placement CAS updates rejected (stale version or conflict)")
	c.blocksGauge = reg.Gauge("meta_blocks", "blocks currently registered")
}

// MetricsSnapshot captures the catalog's registry (empty when metrics are
// disabled). Served remotely by the GetMetrics RPC method.
func (c *Catalog) MetricsSnapshot() *obs.Snapshot {
	return c.reg.Snapshot()
}

// NewCatalog returns an empty catalog aware of the given sites.
func NewCatalog(sites []model.SiteID) *Catalog {
	c := &Catalog{
		blocks:   make(map[model.BlockID]*model.BlockMeta),
		bySite:   make(map[model.SiteID]map[model.BlockID]bool),
		members:  make(map[model.BlockID]memberRef),
		sites:    make(map[model.SiteID]bool, len(sites)),
		retired:  make(map[model.BlockID]uint64),
		tasks:    make(map[string]*model.TaskRecord),
		siteInfo: make(map[model.SiteID]model.SiteInfo),
	}
	for _, s := range sites {
		c.sites[s] = true
	}
	return c
}

// AddSite registers an additional site.
func (c *Catalog) AddSite(s model.SiteID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sites[s] = true
}

// Sites lists every known site in ascending order.
func (c *Catalog) Sites() []model.SiteID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]model.SiteID, 0, len(c.sites))
	for s := range c.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Register adds a new block. Every chunk site must be known, chunks of one
// block must land on distinct sites, and the id must be unused. A meta
// carrying Members registers a pack container: each member id becomes
// resolvable through Lookup/BlockMeta as a synthesized entry, so member
// ids must be unused too and their byte ranges must fit the container.
func (c *Catalog) Register(meta *model.BlockMeta) error {
	if meta == nil || meta.ID == "" || len(meta.Sites) == 0 {
		return ErrInvalidBlock
	}
	if meta.Packed() {
		// Synthesized member metadata is derived state; only containers
		// and plain blocks are registered.
		return fmt.Errorf("%w: %s carries PackedIn", ErrInvalidBlock, meta.ID)
	}
	if len(meta.Sites) != meta.TotalChunks() {
		return fmt.Errorf("%w: %d sites for %d chunks", ErrInvalidBlock, len(meta.Sites), meta.TotalChunks())
	}
	seen := make(map[model.SiteID]bool, len(meta.Sites))
	for _, s := range meta.Sites {
		if seen[s] {
			return fmt.Errorf("%w: duplicate site %d", ErrInvalidBlock, s)
		}
		seen[s] = true
	}
	memberIDs := make(map[model.BlockID]bool, len(meta.Members))
	for _, m := range meta.Members {
		if m.ID == "" || m.ID == meta.ID {
			return fmt.Errorf("%w: bad id %q in %s", ErrInvalidMember, m.ID, meta.ID)
		}
		if memberIDs[m.ID] {
			return fmt.Errorf("%w: duplicate id %s in %s", ErrInvalidMember, m.ID, meta.ID)
		}
		memberIDs[m.ID] = true
		if m.Off < 0 || m.Len < 0 || m.Off+m.Len > meta.Size {
			return fmt.Errorf("%w: %s range [%d,%d) outside container of %d bytes", ErrInvalidMember, m.ID, m.Off, m.Off+m.Len, meta.Size)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range meta.Sites {
		if !c.sites[s] {
			return fmt.Errorf("%w: site %d", ErrUnknownSite, s)
		}
	}
	if _, exists := c.blocks[meta.ID]; exists {
		return fmt.Errorf("%w: %s", ErrExists, meta.ID)
	}
	if _, exists := c.members[meta.ID]; exists {
		return fmt.Errorf("%w: %s (is a pack member)", ErrExists, meta.ID)
	}
	for id := range memberIDs {
		if _, exists := c.blocks[id]; exists {
			return fmt.Errorf("%w: member %s", ErrExists, id)
		}
		if _, exists := c.members[id]; exists {
			return fmt.Errorf("%w: member %s (already packed)", ErrExists, id)
		}
	}
	stored := meta.Clone()
	if last, wasDeleted := c.retired[meta.ID]; wasDeleted && stored.Version <= last {
		// Resume version numbering where the deleted incarnation left
		// off, so version-keyed caches never alias its bytes.
		stored.Version = last + 1
	}
	delete(c.retired, meta.ID)
	c.blocks[meta.ID] = stored
	for _, s := range stored.Sites {
		c.indexLocked(s, stored.ID)
	}
	for _, m := range stored.Members {
		c.members[m.ID] = memberRef{container: stored.ID, off: m.Off, size: m.Len}
		delete(c.retired, m.ID)
	}
	c.registers.Inc()
	c.blocksGauge.Set(int64(len(c.blocks)))
	return nil
}

// memberMetaLocked synthesizes a pack member's metadata from its
// container. The member mirrors the container's coding parameters,
// placement and version (so version-keyed caches invalidate with the
// container) but owns no chunks of its own.
func (c *Catalog) memberMetaLocked(id model.BlockID) (*model.BlockMeta, bool) {
	ref, ok := c.members[id]
	if !ok {
		return nil, false
	}
	cm, ok := c.blocks[ref.container]
	if !ok {
		return nil, false
	}
	return &model.BlockMeta{
		ID:         id,
		Scheme:     cm.Scheme,
		Size:       ref.size,
		K:          cm.K,
		R:          cm.R,
		ChunkSize:  cm.ChunkSize,
		Sites:      append([]model.SiteID(nil), cm.Sites...),
		Version:    cm.Version,
		StripeUnit: cm.StripeUnit,
		PackedIn:   cm.ID,
		PackedOff:  ref.off,
	}, true
}

func (c *Catalog) indexLocked(s model.SiteID, id model.BlockID) {
	m := c.bySite[s]
	if m == nil {
		m = make(map[model.BlockID]bool)
		c.bySite[s] = m
	}
	m[id] = true
}

func (c *Catalog) unindexLocked(s model.SiteID, id model.BlockID) {
	if m := c.bySite[s]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(c.bySite, s)
		}
	}
}

// BlockMeta returns a copy of a block's metadata. The boolean reports
// existence (satisfying placement.CatalogView).
func (c *Catalog) BlockMeta(id model.BlockID) (*model.BlockMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	meta, ok := c.blocks[id]
	if !ok {
		return c.memberMetaLocked(id)
	}
	return meta.Clone(), true
}

// Lookup returns copies of the metadata for the given ids; missing blocks
// yield ErrNotFound.
func (c *Catalog) Lookup(ids []model.BlockID) (map[model.BlockID]*model.BlockMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.lookups.Inc()
	out := make(map[model.BlockID]*model.BlockMeta, len(ids))
	for _, id := range ids {
		meta, ok := c.blocks[id]
		if !ok {
			if synth, isMember := c.memberMetaLocked(id); isMember {
				out[id] = synth
				continue
			}
			c.lookupMiss.Inc()
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		out[id] = meta.Clone()
	}
	return out, nil
}

// Delete removes a block, returning its final metadata so callers can
// delete the chunks.
//
// Deleting a pack member removes it from the container's member list and
// returns its synthesized metadata with Sites set to nil: the member owns
// no chunks, so there is nothing for the caller to delete (the container
// keeps its chunks until it is deleted itself). Deleting a container
// cascades: every remaining member id stops resolving.
func (c *Catalog) Delete(id model.BlockID) (*model.BlockMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, ok := c.blocks[id]
	if !ok {
		synth, isMember := c.memberMetaLocked(id)
		if !isMember {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		cm := c.blocks[synth.PackedIn]
		for i, m := range cm.Members {
			if m.ID == id {
				cm.Members = append(cm.Members[:i], cm.Members[i+1:]...)
				break
			}
		}
		delete(c.members, id)
		c.retired[id] = synth.Version
		synth.Sites = nil
		c.deletes.Inc()
		return synth, nil
	}
	delete(c.blocks, id)
	c.retired[id] = meta.Version
	for _, s := range meta.Sites {
		c.unindexLocked(s, id)
	}
	for _, m := range meta.Members {
		delete(c.members, m.ID)
		c.retired[m.ID] = meta.Version
	}
	c.deletes.Inc()
	c.blocksGauge.Set(int64(len(c.blocks)))
	return meta, nil
}

// UpdatePlacement atomically relocates one chunk: it verifies the expected
// version (optimistic concurrency for the mover), rejects destinations
// already holding a chunk of the block (r-fault tolerance), updates the
// index, and returns the new version.
func (c *Catalog) UpdatePlacement(id model.BlockID, chunk int, to model.SiteID, expectVersion uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, ok := c.blocks[id]
	if !ok {
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if chunk < 0 || chunk >= len(meta.Sites) {
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: %d", ErrInvalidChunk, chunk)
	}
	if meta.Version != expectVersion {
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: have %d, expected %d", ErrStaleVersion, meta.Version, expectVersion)
	}
	if !c.sites[to] {
		c.updateFails.Inc()
		return 0, fmt.Errorf("%w: site %d", ErrUnknownSite, to)
	}
	for ci, s := range meta.Sites {
		if s == to && ci != chunk {
			c.updateFails.Inc()
			return 0, fmt.Errorf("%w: site %d", ErrChunkConflict, to)
		}
	}
	from := meta.Sites[chunk]
	if from == to {
		return meta.Version, nil
	}
	meta.Sites[chunk] = to
	meta.Version++
	c.unindexLocked(from, id)
	// Keep the index entry if another chunk still lives at `from`.
	for ci, s := range meta.Sites {
		if s == from && ci != chunk {
			c.indexLocked(from, id)
			break
		}
	}
	c.indexLocked(to, id)
	c.updates.Inc()
	return meta.Version, nil
}

// BlocksOnSite lists blocks with at least one chunk at the site, in sorted
// order (used by the repair service).
func (c *Catalog) BlocksOnSite(s model.SiteID) []model.BlockID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]model.BlockID, 0, len(c.bySite[s]))
	for id := range c.bySite[s] {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of registered blocks.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blocks)
}

// ForEach invokes fn with a copy of every block's metadata until fn
// returns false. Iteration order is unspecified.
func (c *Catalog) ForEach(fn func(*model.BlockMeta) bool) {
	c.mu.RLock()
	ids := make([]model.BlockID, 0, len(c.blocks))
	for id := range c.blocks {
		ids = append(ids, id)
	}
	c.mu.RUnlock()
	for _, id := range ids {
		meta, ok := c.BlockMeta(id)
		if !ok {
			continue
		}
		if !fn(meta) {
			return
		}
	}
}
