package metadata

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ecstore/internal/model"
	"ecstore/internal/wire"
)

// Recovery: a durable catalog's on-disk layout is one directory per
// partition (p0000, p0001, ...), each holding at most one snapshot
// (part.snap) plus WAL segments named by the first LSN they may contain
// (wal-%016x.log). Open loads every partition's snapshot, replays its
// segments in LSN order skipping records at or below the snapshot's
// LSN, rebuilds the derived indexes (member refs, by-site), and then
// compacts everything under the current partition layout — which is
// what makes changing the partition count across restarts safe, and
// what erases a torn tail left by a crash mid-append.
//
// Only the final segment may contain a damaged frame (short header,
// short payload, CRC mismatch): that is the signature of a crash during
// a write, and replay keeps the intact prefix and discards everything
// from the first bad frame on — framing cannot be trusted past it.
// Damage in a non-final segment (one already covered by a later rotate)
// fails recovery with ErrBadWALRecord.

const partSnapshotName = "part.snap"

var partSnapMagic = []byte("ECSTORE-PART-V1\n")

// Minimum encoded sizes, used to bound decoded count fields against the
// bytes actually present — a flipped bit in a count must produce
// ErrBadSnapshot, never a multi-gigabyte make().
const (
	minSiteEnc     = 8  // i64 site id
	minSiteInfoEnc = 13 // i64 id + empty string + u8 state
	minTaskEnc     = 61 // 5 empty strings + 3 u32 + 4 i64 + u8
	minRetiredEnc  = 12 // empty string + u64 version
)

// boundedCount validates a decoded element count against the bytes left
// in the frame.
func boundedCount(n int, d *wire.Decoder, minSize int, what string) error {
	if n < 0 || n > d.Remaining()/minSize {
		return fmt.Errorf("%w: %s count %d exceeds frame", ErrBadSnapshot, what, n)
	}
	return nil
}

// walRecord is one decoded WAL record.
type walRecord struct {
	typ uint8
	lsn uint64

	meta    *model.BlockMeta // recRegister
	id      model.BlockID    // recDelete, recUpdate, recRetire
	version uint64           // recDelete, recUpdate, recRetire
	chunk   int              // recUpdate
	site    model.SiteID     // recUpdate destination, recSiteAdd
	cont    model.BlockID    // recMemberRemove container
	member  model.BlockID    // recMemberRemove member
	info    model.SiteInfo   // recSiteInfo
	task    *model.TaskRecord
	taskID  string // recTaskDel
}

// decodeWALRecord parses one frame payload. It is strict: unknown types,
// short bodies and trailing bytes all fail (the fuzz target leans on
// this never panicking or over-allocating on corrupt input).
func decodeWALRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	d := wire.NewDecoder(payload)
	rec.typ = d.Uint8()
	rec.lsn = d.Uint64()
	if err := d.Err(); err != nil {
		return rec, fmt.Errorf("%w: header: %w", ErrBadWALRecord, err)
	}
	switch rec.typ {
	case recRegister:
		meta, err := DecodeBlockMeta(d)
		if err != nil {
			return rec, fmt.Errorf("%w: register: %w", ErrBadWALRecord, err)
		}
		rec.meta = meta
	case recDelete, recRetire:
		rec.id = model.BlockID(d.String())
		rec.version = d.Uint64()
	case recUpdate:
		rec.id = model.BlockID(d.String())
		rec.chunk = int(d.Uint32())
		rec.site = model.SiteID(d.Int64())
		rec.version = d.Uint64()
	case recMemberRemove:
		rec.cont = model.BlockID(d.String())
		rec.member = model.BlockID(d.String())
	case recSiteAdd:
		rec.site = model.SiteID(d.Int64())
	case recSiteInfo:
		info, err := DecodeSiteInfo(d)
		if err != nil {
			return rec, fmt.Errorf("%w: site info: %w", ErrBadWALRecord, err)
		}
		rec.info = info
	case recTaskPut:
		t, err := DecodeTaskRecord(d)
		if err != nil {
			return rec, fmt.Errorf("%w: task: %w", ErrBadWALRecord, err)
		}
		rec.task = t
	case recTaskDel:
		rec.taskID = d.String()
	default:
		return rec, fmt.Errorf("%w: unknown type %d", ErrBadWALRecord, rec.typ)
	}
	if err := d.Err(); err != nil {
		return rec, fmt.Errorf("%w: type %d: %w", ErrBadWALRecord, rec.typ, err)
	}
	if d.Remaining() != 0 {
		return rec, fmt.Errorf("%w: type %d: %d trailing bytes", ErrBadWALRecord, rec.typ, d.Remaining())
	}
	return rec, nil
}

// applyWALRecord replays one record's state change. Replay is raw state
// application — no validation against the site set or member ranges,
// because the record was validated before it was logged; routing uses
// the *current* partition layout, which may differ from the one that
// wrote the record.
//
// derived collects member retire watermarks implied by container
// delete/member-remove records. The live mutation logs those retires as
// separate records in each member's own partition, so a crash between
// the container record and the member records durably deletes the
// container while losing the watermarks; re-deriving them here closes
// that window. They are collected rather than applied because a member
// re-registered later in the replay clears its watermark (exactly as a
// live Register does) — Open resolves them after every record is in.
func (c *Catalog) applyWALRecord(rec walRecord, derived map[model.BlockID]uint64) {
	derive := func(id model.BlockID, version uint64) {
		if derived == nil {
			return
		}
		if v, ok := derived[id]; !ok || version > v {
			derived[id] = version
		}
	}
	switch rec.typ {
	case recRegister:
		p := c.part(rec.meta.ID)
		p.mu.Lock()
		p.blocks[rec.meta.ID] = rec.meta
		delete(p.retired, rec.meta.ID)
		p.mu.Unlock()
	case recDelete:
		p := c.part(rec.id)
		p.mu.Lock()
		var members []model.PackedMember
		if meta, ok := p.blocks[rec.id]; ok {
			members = append(members, meta.Members...)
		}
		delete(p.blocks, rec.id)
		p.retireLocked(rec.id, rec.version)
		p.mu.Unlock()
		// The live cascade retires every member at the container's final
		// version; reproduce that from the container record alone.
		for _, m := range members {
			derive(m.ID, rec.version)
		}
	case recUpdate:
		p := c.part(rec.id)
		p.mu.Lock()
		if meta, ok := p.blocks[rec.id]; ok && rec.chunk >= 0 && rec.chunk < len(meta.Sites) {
			meta.Sites[rec.chunk] = rec.site
			meta.Version = rec.version
		}
		p.mu.Unlock()
	case recRetire:
		c.restoreRetired(rec.id, rec.version)
	case recMemberRemove:
		p := c.part(rec.cont)
		p.mu.Lock()
		if cm, ok := p.blocks[rec.cont]; ok {
			for i, m := range cm.Members {
				if m.ID == rec.member {
					cm.Members = append(cm.Members[:i], cm.Members[i+1:]...)
					// Live deleteMember retires the member at the
					// container's current version (its synthesized
					// version); re-derive in case the member's own
					// retire record was lost to a crash.
					derive(rec.member, cm.Version)
					break
				}
			}
		}
		p.mu.Unlock()
	case recSiteAdd:
		c.gmu.Lock()
		c.sites[rec.site] = true
		c.gmu.Unlock()
	case recSiteInfo:
		c.gmu.Lock()
		c.siteInfo[rec.info.ID] = rec.info
		c.gmu.Unlock()
	case recTaskPut:
		c.gmu.Lock()
		c.tasks[rec.task.ID] = rec.task
		c.gmu.Unlock()
	case recTaskDel:
		c.gmu.Lock()
		delete(c.tasks, rec.taskID)
		c.gmu.Unlock()
	}
}

// encodePartitionSnapshot serializes one partition's primitive state:
// its blocks and retired watermarks, plus the slices of the global site,
// site-info and task tables whose keys hash to this partition. The
// header carries the highest LSN the snapshot covers; replay skips
// records at or below it.
func (c *Catalog) encodePartitionSnapshot(idx int) ([]byte, error) {
	p := c.parts[idx]
	n := len(c.parts)

	// Lock order: partition.mu, then gmu, then partLog.mu. Holding both
	// read locks excludes every mutation that could append to this
	// partition's log, so lastLSN exactly bounds the captured state.
	p.mu.RLock()
	defer p.mu.RUnlock()
	c.gmu.RLock()
	defer c.gmu.RUnlock()
	var lastLSN uint64
	if l := p.log; l != nil {
		l.mu.Lock()
		lastLSN = l.lsn
		l.mu.Unlock()
	}

	var buf []byte
	var encErr error
	buf = append(buf, partSnapMagic...)
	appendFrame := func(payload []byte) {
		// Mirror loadPartitionSnapshot's read-side bound: a frame it
		// would reject must fail the compaction here (leaving the old
		// snapshot and segments intact) rather than commit a snapshot
		// that makes the partition unrecoverable.
		if len(payload) > wire.MaxFrameSize {
			if encErr == nil {
				encErr = fmt.Errorf("metadata: partition %d snapshot frame %d bytes exceeds %d", idx, len(payload), wire.MaxFrameSize)
			}
			return
		}
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}

	he := wire.NewEncoder(16)
	he.Uint32(uint32(idx))
	he.Uint32(uint32(n))
	he.Uint64(lastLSN)
	appendFrame(he.Bytes())

	var allSites []model.SiteID
	for s := range c.sites {
		allSites = append(allSites, s)
	}
	sort.Slice(allSites, func(i, j int) bool { return allSites[i] < allSites[j] })
	var sites []model.SiteID
	for _, s := range allSites {
		if fnvIndex(siteKey(s), n) == idx {
			sites = append(sites, s)
		}
	}
	se := wire.NewEncoder(8 * len(sites))
	se.Uint32(uint32(len(sites)))
	for _, s := range sites {
		se.Int64(int64(s))
	}
	appendFrame(se.Bytes())

	var allInfos []model.SiteID
	for s := range c.siteInfo {
		allInfos = append(allInfos, s)
	}
	sort.Slice(allInfos, func(i, j int) bool { return allInfos[i] < allInfos[j] })
	var infoIDs []model.SiteID
	for _, s := range allInfos {
		if fnvIndex(siteKey(s), n) == idx {
			infoIDs = append(infoIDs, s)
		}
	}
	ie := wire.NewEncoder(24 * len(infoIDs))
	ie.Uint32(uint32(len(infoIDs)))
	for _, s := range infoIDs {
		EncodeSiteInfo(ie, c.siteInfo[s])
	}
	appendFrame(ie.Bytes())

	var allTasks []string
	for id := range c.tasks {
		allTasks = append(allTasks, id)
	}
	sort.Strings(allTasks)
	var taskIDs []string
	for _, id := range allTasks {
		if fnvIndex(id, n) == idx {
			taskIDs = append(taskIDs, id)
		}
	}
	te := wire.NewEncoder(64 * len(taskIDs))
	te.Uint32(uint32(len(taskIDs)))
	for _, id := range taskIDs {
		EncodeTaskRecord(te, c.tasks[id])
	}
	appendFrame(te.Bytes())

	retiredIDs := make([]model.BlockID, 0, len(p.retired))
	for id := range p.retired {
		retiredIDs = append(retiredIDs, id)
	}
	sort.Slice(retiredIDs, func(i, j int) bool { return retiredIDs[i] < retiredIDs[j] })
	re := wire.NewEncoder(16 * len(retiredIDs))
	re.Uint32(uint32(len(retiredIDs)))
	for _, id := range retiredIDs {
		re.String(string(id))
		re.Uint64(p.retired[id])
	}
	appendFrame(re.Bytes())

	blockIDs := make([]model.BlockID, 0, len(p.blocks))
	for id := range p.blocks {
		blockIDs = append(blockIDs, id)
	}
	sort.Slice(blockIDs, func(i, j int) bool { return blockIDs[i] < blockIDs[j] })
	for _, id := range blockIDs {
		be := wire.NewEncoder(64)
		EncodeBlockMeta(be, p.blocks[id])
		appendFrame(be.Bytes())
	}
	return buf, encErr
}

// siteKey is the partition-routing key for a site id (shared between
// sitePart and snapshot encoding).
func siteKey(s model.SiteID) string {
	return fmt.Sprintf("%d", s)
}

// loadPartitionSnapshot applies one partition snapshot into the catalog
// being recovered, returning the LSN it covers. Counts are bounded
// against remaining frame bytes before any allocation.
func (c *Catalog) loadPartitionSnapshot(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(partSnapMagic) || string(data[:len(partSnapMagic)]) != string(partSnapMagic) {
		return 0, fmt.Errorf("%w: wrong partition magic", ErrBadSnapshot)
	}
	data = data[len(partSnapMagic):]

	nextFrame := func() ([]byte, error) {
		if len(data) == 0 {
			return nil, io.EOF
		}
		if len(data) < 8 {
			return nil, fmt.Errorf("%w: short frame header", ErrBadSnapshot)
		}
		ln := int(binary.BigEndian.Uint32(data[0:4]))
		sum := binary.BigEndian.Uint32(data[4:8])
		if ln > wire.MaxFrameSize || len(data)-8 < ln {
			return nil, fmt.Errorf("%w: frame length %d exceeds file", ErrBadSnapshot, ln)
		}
		payload := data[8 : 8+ln]
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil, fmt.Errorf("%w: frame CRC mismatch", ErrBadSnapshot)
		}
		data = data[8+ln:]
		return payload, nil
	}

	hdr, err := nextFrame()
	if err != nil {
		return 0, fmt.Errorf("%w: header frame: %w", ErrBadSnapshot, err)
	}
	hd := wire.NewDecoder(hdr)
	_ = hd.Uint32() // written-by partition index (informational)
	_ = hd.Uint32() // written-by partition count (informational)
	snapLSN := hd.Uint64()
	if err := hd.Err(); err != nil {
		return 0, fmt.Errorf("%w: header: %w", ErrBadSnapshot, err)
	}

	sf, err := nextFrame()
	if err != nil {
		return 0, fmt.Errorf("%w: site frame: %w", ErrBadSnapshot, err)
	}
	sd := wire.NewDecoder(sf)
	ns := int(sd.Uint32())
	if err := boundedCount(ns, sd, minSiteEnc, "site"); err != nil {
		return 0, err
	}
	c.gmu.Lock()
	for i := 0; i < ns; i++ {
		c.sites[model.SiteID(sd.Int64())] = true
	}
	c.gmu.Unlock()
	if err := sd.Err(); err != nil {
		return 0, fmt.Errorf("%w: sites: %w", ErrBadSnapshot, err)
	}

	inf, err := nextFrame()
	if err != nil {
		return 0, fmt.Errorf("%w: site-info frame: %w", ErrBadSnapshot, err)
	}
	id2 := wire.NewDecoder(inf)
	ni := int(id2.Uint32())
	if err := boundedCount(ni, id2, minSiteInfoEnc, "site info"); err != nil {
		return 0, err
	}
	for i := 0; i < ni; i++ {
		info, err := DecodeSiteInfo(id2)
		if err != nil {
			return 0, fmt.Errorf("%w: site info: %w", ErrBadSnapshot, err)
		}
		c.gmu.Lock()
		c.siteInfo[info.ID] = info
		c.gmu.Unlock()
	}

	tf, err := nextFrame()
	if err != nil {
		return 0, fmt.Errorf("%w: task frame: %w", ErrBadSnapshot, err)
	}
	td := wire.NewDecoder(tf)
	nt := int(td.Uint32())
	if err := boundedCount(nt, td, minTaskEnc, "task"); err != nil {
		return 0, err
	}
	for i := 0; i < nt; i++ {
		t, err := DecodeTaskRecord(td)
		if err != nil {
			return 0, fmt.Errorf("%w: task: %w", ErrBadSnapshot, err)
		}
		c.gmu.Lock()
		c.tasks[t.ID] = t
		c.gmu.Unlock()
	}

	rf, err := nextFrame()
	if err != nil {
		return 0, fmt.Errorf("%w: retired frame: %w", ErrBadSnapshot, err)
	}
	rd := wire.NewDecoder(rf)
	nr := int(rd.Uint32())
	if err := boundedCount(nr, rd, minRetiredEnc, "retired"); err != nil {
		return 0, err
	}
	for i := 0; i < nr; i++ {
		id := model.BlockID(rd.String())
		v := rd.Uint64()
		if rd.Err() != nil {
			return 0, fmt.Errorf("%w: retired: %w", ErrBadSnapshot, rd.Err())
		}
		c.restoreRetired(id, v)
	}

	for {
		bf, err := nextFrame()
		if errors.Is(err, io.EOF) {
			return snapLSN, nil
		}
		if err != nil {
			return 0, err
		}
		meta, err := DecodeBlockMeta(wire.NewDecoder(bf))
		if err != nil {
			return 0, fmt.Errorf("%w: block meta: %w", ErrBadSnapshot, err)
		}
		p := c.part(meta.ID)
		p.mu.Lock()
		p.blocks[meta.ID] = meta
		p.mu.Unlock()
	}
}

// replaySegment replays one WAL segment file, skipping records at or
// below snapLSN. final marks the partition's last segment, the only
// place a torn tail is legal; it is reported (not applied, not an
// error) so Open can count it and boot compaction can erase it.
// derived accumulates cascade-implied member retires (see
// applyWALRecord).
func (c *Catalog) replaySegment(path string, snapLSN uint64, final bool, derived map[model.BlockID]uint64) (applied int64, maxLSN uint64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer func() { _ = f.Close() }()
	br := bufio.NewReaderSize(f, 1<<20)

	tornOrErr := func(what string) (int64, uint64, bool, error) {
		if final {
			return applied, maxLSN, true, nil
		}
		return applied, maxLSN, false, fmt.Errorf("%w: %s in non-final segment %s", ErrBadWALRecord, what, filepath.Base(path))
	}

	var hdr [walFrameHeader]byte
	for {
		_, rerr := io.ReadFull(br, hdr[:])
		if errors.Is(rerr, io.EOF) {
			return applied, maxLSN, false, nil
		}
		if rerr != nil {
			return tornOrErr("short frame header")
		}
		ln := int(binary.BigEndian.Uint32(hdr[0:4]))
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if ln <= 0 || ln > wire.MaxFrameSize {
			return tornOrErr("bad frame length")
		}
		payload := make([]byte, ln)
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			return tornOrErr("short frame payload")
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return tornOrErr("frame CRC mismatch")
		}
		rec, derr := decodeWALRecord(payload)
		if derr != nil {
			return tornOrErr("undecodable record")
		}
		if rec.lsn > maxLSN {
			maxLSN = rec.lsn
		}
		if rec.lsn <= snapLSN {
			continue
		}
		c.applyWALRecord(rec, derived)
		applied++
	}
}

// deriveIndexes rebuilds the catalog's derived state — pack-member refs,
// the by-site index, the block count — from the primitive state loaded
// by snapshots and replay.
func (c *Catalog) deriveIndexes() {
	var total int64
	for _, p := range c.parts {
		p.mu.Lock()
		p.bySite = make(map[model.SiteID]map[model.BlockID]bool)
		p.members = make(map[model.BlockID]memberRef)
		p.mu.Unlock()
	}
	for _, p := range c.parts {
		p.mu.Lock()
		ids := make([]model.BlockID, 0, len(p.blocks))
		for id := range p.blocks {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		total += int64(len(ids))
		for _, id := range ids {
			meta := p.blocks[id]
			for _, s := range meta.Sites {
				p.indexLocked(s, id)
			}
		}
		p.mu.Unlock()
		// Member refs may land in other partitions; take those locks
		// after releasing this one (never two partition locks at once).
		for _, id := range ids {
			p.mu.RLock()
			meta, ok := p.blocks[id]
			var members []model.PackedMember
			if ok {
				members = append(members, meta.Members...)
			}
			p.mu.RUnlock()
			for _, m := range members {
				pm := c.part(m.ID)
				pm.mu.Lock()
				pm.members[m.ID] = memberRef{container: id, off: m.Off, size: m.Len}
				pm.mu.Unlock()
			}
		}
	}
	c.nblocks.Store(total)
}

// partDirName formats the directory name of partition idx.
func partDirName(idx int) string {
	return fmt.Sprintf("p%04d", idx)
}

// parsePartDirName extracts a partition index from a directory name.
func parsePartDirName(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'p' {
		return 0, false
	}
	var idx int
	if _, err := fmt.Sscanf(name[1:], "%d", &idx); err != nil || idx < 0 {
		return 0, false
	}
	return idx, true
}

// Open recovers (or initializes) a durable catalog rooted at dir. The
// given sites are added (idempotently, WAL-logged) on top of whatever
// recovery restores. Recovery is followed by an unconditional compaction
// under the current partition layout: it erases torn tails, rewrites
// state routed by the current hash when opts.Partitions changed, and
// leaves every partition with a fresh snapshot and an empty log tail.
func Open(dir string, sites []model.SiteID, opts WALOptions) (*Catalog, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("metadata: create wal dir: %w", err)
	}

	c := NewCatalogParts(nil, opts.Partitions)

	// Recover old partition directories in index order.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type oldPart struct {
		idx  int
		path string
	}
	var olds []oldPart
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if idx, ok := parsePartDirName(ent.Name()); ok {
			olds = append(olds, oldPart{idx, filepath.Join(dir, ent.Name())})
		}
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i].idx < olds[j].idx })

	var maxLSN uint64
	var replayed, tornTails int64
	derived := make(map[model.BlockID]uint64)
	for _, op := range olds {
		var snapLSN uint64
		snapPath := filepath.Join(op.path, partSnapshotName)
		if _, statErr := os.Stat(snapPath); statErr == nil {
			snapLSN, err = c.loadPartitionSnapshot(snapPath)
			if err != nil {
				return nil, fmt.Errorf("metadata: recover %s: %w", snapPath, err)
			}
		}
		if snapLSN > maxLSN {
			maxLSN = snapLSN
		}
		// A leftover .tmp snapshot is a compaction that died before its
		// rename; the segments it meant to truncate are still here.
		_ = os.Remove(filepath.Join(op.path, partSnapshotName+".tmp"))

		segEntries, err := os.ReadDir(op.path)
		if err != nil {
			return nil, err
		}
		type seg struct {
			start uint64
			path  string
		}
		var segs []seg
		for _, ent := range segEntries {
			if start, ok := parseSegmentName(ent.Name()); ok {
				segs = append(segs, seg{start, filepath.Join(op.path, ent.Name())})
			}
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
		for i, s := range segs {
			applied, segMax, torn, err := c.replaySegment(s.path, snapLSN, i == len(segs)-1, derived)
			if err != nil {
				return nil, fmt.Errorf("metadata: recover %s: %w", s.path, err)
			}
			replayed += applied
			if torn {
				tornTails++
			}
			if segMax > maxLSN {
				maxLSN = segMax
			}
		}
	}

	// Resolve cascade-derived retires now that every record is in: a
	// watermark applies only where the id is not a live block, because a
	// re-register after the cascade clears it (as live Register does).
	// Re-packed members keep theirs — live Register clears only the
	// container's own watermark.
	derivedIDs := make([]model.BlockID, 0, len(derived))
	for id := range derived {
		derivedIDs = append(derivedIDs, id)
	}
	sort.Slice(derivedIDs, func(i, j int) bool { return derivedIDs[i] < derivedIDs[j] })
	for _, id := range derivedIDs {
		p := c.part(id)
		p.mu.Lock()
		if _, live := p.blocks[id]; !live {
			p.retireLocked(id, derived[id])
		}
		p.mu.Unlock()
	}

	c.deriveIndexes()

	// Attach the write-ahead machinery under the current layout. All
	// partitions start their LSN counter at the global maximum so that
	// any key, wherever it rehashed, logs records strictly above every
	// snapshot LSN that might still cover it.
	w := &walSet{dir: dir, opts: opts, cat: c, done: make(chan struct{})}
	w.replayedRecords = replayed
	w.tornTails = tornTails
	c.wal = w
	for i, p := range c.parts {
		pdir := filepath.Join(dir, partDirName(i))
		if err := os.MkdirAll(pdir, 0o755); err != nil {
			return nil, err
		}
		l := &partLog{set: w, idx: i, dir: pdir, lsn: maxLSN, synced: maxLSN, segStart: maxLSN + 1}
		f, err := createSegment(pdir, maxLSN+1)
		if err != nil {
			return nil, err
		}
		l.f = f
		p.log = l
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}

	for _, s := range sites {
		if err := c.AddSite(s); err != nil {
			return nil, fmt.Errorf("metadata: boot site add: %w", err)
		}
	}

	// Boot compaction: re-snapshot everything under the current layout
	// and truncate replayed segments (including torn tails).
	if err := c.Compact(); err != nil {
		return nil, fmt.Errorf("metadata: boot compaction: %w", err)
	}

	// Old partition directories beyond the current count are fully
	// covered by the new snapshots; drop them.
	removedStale := false
	for _, op := range olds {
		if op.idx >= len(c.parts) {
			if err := os.RemoveAll(op.path); err != nil {
				return nil, err
			}
			removedStale = true
		}
	}
	if removedStale {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}

	if opts.FsyncInterval > 0 {
		w.wg.Add(1)
		go w.flusher()
	}
	return c, nil
}
