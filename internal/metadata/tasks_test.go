package metadata

import (
	"bytes"
	"errors"
	"testing"

	"ecstore/internal/model"
)

func taskRec(id string, state model.TaskState) *model.TaskRecord {
	return &model.TaskRecord{
		ID:           id,
		Type:         model.TaskTypeScrubSite,
		Site:         3,
		Priority:     model.PriorityScrub,
		State:        state,
		Cursor:       "blk-007.2",
		CreatedNanos: 1000,
		UpdatedNanos: 2000,
	}
}

func TestTaskStoreCRUD(t *testing.T) {
	c := NewCatalog(sites(4))
	if err := c.PutTask(taskRec("t2", model.TaskPending)); err != nil {
		t.Fatal(err)
	}
	if err := c.PutTask(taskRec("t1", model.TaskRunning)); err != nil {
		t.Fatal(err)
	}
	if err := c.PutTask(&model.TaskRecord{}); !errors.Is(err, ErrInvalidTask) {
		t.Fatalf("empty record err = %v", err)
	}

	got := c.ListTasks()
	if len(got) != 2 || got[0].ID != "t1" || got[1].ID != "t2" {
		t.Fatalf("ListTasks = %v", got)
	}
	// Records are copies: mutating a listing must not touch the store.
	got[0].Cursor = "mutated"
	if c.ListTasks()[0].Cursor != "blk-007.2" {
		t.Fatal("ListTasks leaked internal state")
	}

	// Upsert replaces by ID.
	upd := taskRec("t1", model.TaskDone)
	upd.Attempts = 3
	if err := c.PutTask(upd); err != nil {
		t.Fatal(err)
	}
	if got := c.ListTasks(); len(got) != 2 || got[0].State != model.TaskDone || got[0].Attempts != 3 {
		t.Fatalf("after upsert = %+v", got[0])
	}

	if err := c.DeleteTask("t1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteTask("ghost"); err != nil {
		t.Fatal(err)
	}
	if got := c.ListTasks(); len(got) != 1 || got[0].ID != "t2" {
		t.Fatalf("after delete = %v", got)
	}
}

func TestSiteInfos(t *testing.T) {
	c := NewCatalog(sites(3))
	if err := c.SetSiteInfo(model.SiteInfo{ID: 1, Zone: "z0", State: model.SiteDraining}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetSiteInfo(model.SiteInfo{ID: 99, Zone: "z9"}); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("unknown site err = %v", err)
	}
	infos := c.SiteInfos()
	if len(infos) != 3 {
		t.Fatalf("SiteInfos = %v", infos)
	}
	if infos[1].Zone != "z0" || infos[1].State != model.SiteDraining {
		t.Fatalf("site 1 info = %+v", infos[1])
	}
	// Unconfigured sites read as zone-less active.
	if infos[2].Zone != "" || infos[2].State != model.SiteActive {
		t.Fatalf("site 2 info = %+v", infos[2])
	}
}

func TestSnapshotPersistsTasksAndSiteInfo(t *testing.T) {
	c := NewCatalog(sites(4))
	if err := c.Register(blockMeta("alpha", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.PutTask(taskRec("scrub-3", model.TaskRunning)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetSiteInfo(model.SiteInfo{ID: 2, Zone: "zone-b", State: model.SiteDraining}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tasks := loaded.ListTasks()
	if len(tasks) != 1 || *tasks[0] != *taskRec("scrub-3", model.TaskRunning) {
		t.Fatalf("loaded tasks = %+v", tasks)
	}
	if info := loaded.SiteInfos()[2]; info.Zone != "zone-b" || info.State != model.SiteDraining {
		t.Fatalf("loaded site info = %+v", info)
	}
	if _, ok := loaded.BlockMeta("alpha"); !ok {
		t.Fatal("loaded catalog lost block alpha")
	}
}

func TestLoadAcceptsV2Snapshots(t *testing.T) {
	c := NewCatalog(sites(4))
	if err := c.Register(blockMeta("alpha", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the V4 snapshot as a V2 one: swap the magic and drop the
	// site-info, task and retired frames (frames 2, 3 and 4).
	v4 := buf.Bytes()
	body := v4[len(snapshotMagic):]
	var v2 bytes.Buffer
	v2.Write(snapshotMagicV2)
	// Frame 1 (site list) passes through; frames 2 through 4 are dropped.
	for i := 0; i < 4; i++ {
		flen := int(uint32(body[0])<<24 | uint32(body[1])<<16 | uint32(body[2])<<8 | uint32(body[3]))
		frame := body[:4+flen]
		body = body[4+flen:]
		if i == 0 {
			v2.Write(frame)
		}
	}
	v2.Write(body)

	loaded, err := Load(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.BlockMeta("alpha"); !ok {
		t.Fatal("V2 load lost block alpha")
	}
	if len(loaded.ListTasks()) != 0 {
		t.Fatal("V2 load invented tasks")
	}
}

func TestRPCTasksAndSiteInfo(t *testing.T) {
	catalog := NewCatalog(sites(4))
	client, cleanup := startMetadataRPC(t, catalog)
	defer cleanup()

	rec := taskRec("move-1", model.TaskPending)
	rec.Type = model.TaskTypeMove
	rec.Block = "blk"
	rec.Chunk = 2
	rec.Dest = 3
	rec.LastError = "previous: timeout"
	if err := client.PutTask(rec); err != nil {
		t.Fatal(err)
	}
	got := client.ListTasks()
	if len(got) != 1 || *got[0] != *rec {
		t.Fatalf("ListTasks over RPC = %+v, want %+v", got, rec)
	}
	if err := client.DeleteTask("move-1"); err != nil {
		t.Fatal(err)
	}
	if got := client.ListTasks(); len(got) != 0 {
		t.Fatalf("after RPC delete = %+v", got)
	}

	if err := client.SetSiteInfo(model.SiteInfo{ID: 1, Zone: "z1", State: model.SiteDecommissioned}); err != nil {
		t.Fatal(err)
	}
	infos := client.SiteInfos()
	if len(infos) != 4 || infos[1].Zone != "z1" || infos[1].State != model.SiteDecommissioned {
		t.Fatalf("SiteInfos over RPC = %+v", infos)
	}
	if err := client.SetSiteInfo(model.SiteInfo{ID: 42}); err == nil {
		t.Fatal("unknown site over RPC should fail")
	}
}
