package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// chunkedWriter records each Write call separately so tests can observe
// coalescing vs vectored behavior.
type chunkedWriter struct {
	writes [][]byte
}

func (c *chunkedWriter) Write(p []byte) (int, error) {
	c.writes = append(c.writes, append([]byte(nil), p...))
	return len(p), nil
}

func (c *chunkedWriter) joined() []byte {
	var out []byte
	for _, w := range c.writes {
		out = append(out, w...)
	}
	return out
}

func TestWriteFrameBuffersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ head, payload int }{
		{0, 0},
		{9, 0},
		{0, 10},
		{9, 100},
		{9, coalesceLimit},     // just over the coalesce cutoff with prefix+head
		{9, coalesceLimit * 4}, // vectored
		{40, 512 << 10},        // chunk-sized
	}
	for _, tc := range cases {
		head := make([]byte, tc.head)
		payload := make([]byte, tc.payload)
		rng.Read(head)
		rng.Read(payload)
		var w chunkedWriter
		if err := WriteFrameBuffers(&w, head, payload); err != nil {
			t.Fatalf("WriteFrameBuffers(%d, %d): %v", tc.head, tc.payload, err)
		}
		got, err := ReadFrame(bytes.NewReader(w.joined()))
		if err != nil {
			t.Fatalf("ReadFrame(%d, %d): %v", tc.head, tc.payload, err)
		}
		want := append(append([]byte(nil), head...), payload...)
		if !bytes.Equal(got, want) {
			t.Fatalf("frame(%d, %d) corrupt after round trip", tc.head, tc.payload)
		}
		if total := 4 + tc.head + tc.payload; total <= coalesceLimit && len(w.writes) != 1 {
			t.Errorf("frame of %d bytes used %d writes, want 1 (coalesced)", total, len(w.writes))
		}
	}
}

func TestWriteFrameBuffersTooLarge(t *testing.T) {
	err := WriteFrameBuffers(io.Discard, make([]byte, 8), make([]byte, MaxFrameSize))
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestEncoderPoisonAfterPut(t *testing.T) {
	e := GetEncoder()
	e.Uint64(7)
	PutEncoder(e)
	for name, fn := range map[string]func(){
		"Bytes":  func() { e.Bytes() },
		"Uint8":  func() { e.Uint8(1) },
		"Raw":    func() { e.Raw([]byte{1}) },
		"Reset":  func() { e.Reset() },
		"PutTwo": func() { PutEncoder(e) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after PutEncoder did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGetEncoderIsEmpty(t *testing.T) {
	e := GetEncoder()
	e.Raw(bytes.Repeat([]byte{0xEE}, 100))
	PutEncoder(e)
	e2 := GetEncoder()
	defer PutEncoder(e2)
	if e2.Len() != 0 {
		t.Fatalf("pooled encoder not reset: %d bytes", e2.Len())
	}
}

// TestEncoderPoolConcurrentFrames hammers the pooled-encoder frame path
// from many goroutines sharing one locked writer, the shape the rpc
// layer uses; run under -race this is the satellite's aliasing race
// test, and the frame contents are verified byte-for-byte.
func TestEncoderPoolConcurrentFrames(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	const goroutines = 8
	const frames = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(g)}, 8192)
			for i := 0; i < frames; i++ {
				e := GetEncoder()
				e.Uint64(uint64(g))
				mu.Lock()
				err := WriteFrameBuffers(&buf, e.Bytes(), payload)
				mu.Unlock()
				PutEncoder(e)
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	r := bytes.NewReader(buf.Bytes())
	for i := 0; i < goroutines*frames; i++ {
		frame, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		d := NewDecoder(frame)
		g := d.Uint64()
		rest := d.Rest()
		if len(rest) != 8192 {
			t.Fatalf("frame %d: payload %d bytes", i, len(rest))
		}
		for _, b := range rest {
			if b != byte(g) {
				t.Fatalf("frame %d: interleaved payload (g=%d, byte=%d)", i, g, b)
			}
		}
	}
}

// TestFramePathSteadyStateAllocations pins the pooled encoder + framer
// at zero allocations per coalesced frame once the pool is warm. The
// vectored branch is excluded: building the two-element net.Buffers
// costs one small allocation by design, amortized against the payload
// copy it replaces.
func TestFramePathSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool does not pool under the race detector")
	}
	payload := bytes.Repeat([]byte{7}, 256)
	allocs := testing.AllocsPerRun(200, func() {
		e := GetEncoder()
		e.Uint64(1)
		e.Uint8(2)
		if err := WriteFrameBuffers(io.Discard, e.Bytes(), payload); err != nil {
			t.Fatal(err)
		}
		PutEncoder(e)
	})
	if allocs != 0 {
		t.Fatalf("coalesced frame path allocates %.1f per op, want 0", allocs)
	}
}

func TestDecoderRest(t *testing.T) {
	e := NewEncoder(16)
	e.Uint32(7)
	e.Raw([]byte("payload"))
	d := NewDecoder(e.Bytes())
	if got := d.Uint32(); got != 7 {
		t.Fatalf("Uint32 = %d", got)
	}
	rest := d.Rest()
	if string(rest) != "payload" {
		t.Fatalf("Rest = %q", rest)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d after Rest", d.Remaining())
	}
	if &rest[0] != &e.Bytes()[4] {
		t.Fatal("Rest copied; want alias")
	}
	// Sticky errors surface as nil.
	d2 := NewDecoder([]byte{1})
	d2.Uint64()
	if d2.Rest() != nil {
		t.Fatal("Rest after decode error should be nil")
	}
}

// TestDecoderRestSingleUse is the regression test for the single-use
// contract: a second Rest call must not silently yield an empty payload
// but fail the decoder with a wrapped ErrRestConsumed.
func TestDecoderRestSingleUse(t *testing.T) {
	e := NewEncoder(16)
	e.Uint32(1)
	e.Raw([]byte("tail"))
	d := NewDecoder(e.Bytes())
	_ = d.Uint32()
	if got := d.Rest(); string(got) != "tail" {
		t.Fatalf("first Rest = %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decoder errored after first Rest: %v", err)
	}
	if got := d.Rest(); got != nil {
		t.Fatalf("second Rest = %q, want nil", got)
	}
	if err := d.Err(); !errors.Is(err, ErrRestConsumed) {
		t.Fatalf("Err = %v, want wrapped ErrRestConsumed", err)
	}
	// The sticky error also poisons subsequent reads.
	if got := d.Uint32(); got != 0 {
		t.Fatalf("read after double Rest = %d, want 0", got)
	}

	// An empty tail is still subject to the contract: first call returns
	// the empty remainder, second call errors.
	d2 := NewDecoder(nil)
	if got := d2.Rest(); len(got) != 0 || d2.Err() != nil {
		t.Fatalf("empty Rest = %q err=%v", got, d2.Err())
	}
	if d2.Rest(); !errors.Is(d2.Err(), ErrRestConsumed) {
		t.Fatalf("empty double Rest err = %v", d2.Err())
	}
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("head"), []byte("payload"))
	f.Add([]byte{}, []byte{})
	f.Add(bytes.Repeat([]byte{9}, 5000), bytes.Repeat([]byte{7}, 9000))
	f.Fuzz(func(t *testing.T, head, payload []byte) {
		if len(head)+len(payload) > MaxFrameSize {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrameBuffers(&buf, head, payload); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want := append(append([]byte(nil), head...), payload...)
		if !bytes.Equal(got, want) {
			t.Fatal("frame round-trip mismatch")
		}
	})
}

func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), int64(-3), true, []byte("bytes"), "str", []byte("rest"))
	f.Add(uint64(0), uint32(0), int64(0), false, []byte{}, "", []byte{})
	f.Fuzz(func(t *testing.T, u64 uint64, u32 uint32, i64 int64, b bool, bs []byte, s string, rest []byte) {
		e := GetEncoder()
		defer PutEncoder(e)
		e.Uint64(u64)
		e.Uint32(u32)
		e.Int64(i64)
		e.Bool(b)
		e.Bytes32(bs)
		e.String(s)
		e.Raw(rest)

		d := NewDecoder(e.Bytes())
		if got := d.Uint64(); got != u64 {
			t.Fatalf("Uint64 = %d, want %d", got, u64)
		}
		if got := d.Uint32(); got != u32 {
			t.Fatalf("Uint32 = %d, want %d", got, u32)
		}
		if got := d.Int64(); got != i64 {
			t.Fatalf("Int64 = %d, want %d", got, i64)
		}
		if got := d.Bool(); got != b {
			t.Fatalf("Bool = %v, want %v", got, b)
		}
		if got := d.Bytes32(); !bytes.Equal(got, bs) {
			t.Fatalf("Bytes32 = %q, want %q", got, bs)
		}
		if got := d.String(); got != s {
			t.Fatalf("String = %q, want %q", got, s)
		}
		if got := d.Rest(); !bytes.Equal(got, rest) {
			t.Fatalf("Rest = %q, want %q", got, rest)
		}
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
	})
}

// BenchmarkWireFrameVectored is the zero-copy frame path: pooled header
// encoder, payload attached via net.Buffers.
func BenchmarkWireFrameVectored(b *testing.B) {
	payload := make([]byte, 512<<10)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		e.Uint64(uint64(i))
		e.Uint8(3)
		if err := WriteFrameBuffers(io.Discard, e.Bytes(), payload); err != nil {
			b.Fatal(err)
		}
		PutEncoder(e)
	}
}

// BenchmarkWireFrameLegacyCopy is the pre-PR shape: the payload is
// appended into a fresh encoder buffer before framing.
func BenchmarkWireFrameLegacyCopy(b *testing.B) {
	payload := make([]byte, 512<<10)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		e := NewEncoder(16 + len(payload))
		e.Uint64(uint64(i))
		e.Uint8(3)
		e.Raw(payload)
		if err := WriteFrame(io.Discard, e.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireFrameSmall covers the coalesced control-plane shape.
func BenchmarkWireFrameSmall(b *testing.B) {
	payload := make([]byte, 64)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		e.Uint64(uint64(i))
		if err := WriteFrameBuffers(io.Discard, e.Bytes(), payload); err != nil {
			b.Fatal(err)
		}
		PutEncoder(e)
	}
}
