// Package wire provides the binary encoding substrate for EC-Store's RPC
// layer (the paper uses Apache Thrift): a compact append-only Encoder, a
// sticky-error Decoder, and length-prefixed frame I/O over byte streams.
//
// All integers are big-endian. Strings and byte slices are length-prefixed
// with a uint32. Frames are length-prefixed with a uint32 and bounded by
// MaxFrameSize to protect services from corrupt or hostile peers.
//
// Invariants the data path depends on:
//
//   - Pooled-encoder poisoning. Encoders from GetEncoder are returned
//     with PutEncoder, after which ANY method call panics. Bytes()
//     aliases the encoder's internal buffer, so the bytes must be fully
//     consumed (written to the socket) before release; the poison turns
//     retain-after-release bugs into loud failures instead of corrupted
//     in-flight frames.
//
//   - Raw trailing payloads. Bulk data (chunk bodies, chunk segments)
//     rides as the frame's unprefixed tail: the sender vectors it via
//     WriteFrameBuffers without copying into an encoder, and the
//     receiver takes it with Decoder.Rest, which aliases the frame
//     buffer and may be called at most once per decoder. Whoever calls
//     Rest owns interpreting the tail's length from the frame size.
//
//   - Decoders never copy except Bytes32/String; every other read
//     aliases the caller's buffer, so a frame buffer must outlive all
//     slices decoded from it.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// MaxFrameSize bounds a single frame (64 MiB), comfortably above the
// largest chunk the system ships (1 MB blocks => 512 KB chunks) plus
// headers.
const MaxFrameSize = 64 << 20

// Errors returned by the codec and framer.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortBuffer   = errors.New("wire: decode past end of buffer")
	// ErrRestConsumed reports a second Rest call on the same decoder:
	// the raw trailing payload can be taken exactly once, and a repeat
	// call would silently yield an empty payload.
	ErrRestConsumed = errors.New("wire: Rest called twice")
)

// Encoder builds a binary payload. The zero value is ready to use.
// Pooled encoders (GetEncoder/PutEncoder) are poisoned on release: any
// method call after PutEncoder panics.
type Encoder struct {
	buf      []byte
	released bool
}

// NewEncoder returns an encoder with a hint-sized buffer.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded payload.
//
// Ownership rule: the slice aliases the encoder's internal buffer and
// is valid only until the next mutating call, Reset, or PutEncoder —
// whichever comes first. A caller that hands the slice to a writer
// shared with other goroutines (the rpc layer's pipelined conns) must
// complete the write before reusing or releasing the encoder; a caller
// that needs the bytes beyond that must copy them.
func (e *Encoder) Bytes() []byte {
	e.check()
	return e.buf
}

// Len returns the current encoded length.
func (e *Encoder) Len() int {
	e.check()
	return len(e.buf)
}

// Reset truncates the encoder for reuse, keeping its buffer.
func (e *Encoder) Reset() {
	e.check()
	e.buf = e.buf[:0]
}

func (e *Encoder) check() {
	if e.released {
		panic("wire: Encoder used after PutEncoder")
	}
}

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) {
	e.check()
	e.buf = append(e.buf, v)
}

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Uint32 appends a big-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.check()
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a big-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.check()
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends a big-endian int64 (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Raw appends bytes with no length prefix (for trailing payloads whose
// length is implied by the frame).
func (e *Encoder) Raw(b []byte) {
	e.check()
	e.buf = append(e.buf, b...)
}

// Bytes32 appends a uint32 length prefix followed by the bytes.
func (e *Encoder) Bytes32(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a uint32 length prefix followed by the string bytes.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads a binary payload produced by Encoder. Errors are sticky:
// after the first failure every subsequent read returns the zero value and
// Err() reports the original error.
type Decoder struct {
	buf []byte
	off int
	err error
	// restTaken poisons further Rest calls: the trailing payload is
	// single-use by contract, enforced in Rest.
	restTaken bool
}

// NewDecoder wraps a payload for decoding. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShortBuffer, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a boolean.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a big-endian int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bytes32 reads a uint32-length-prefixed byte slice. The result is a copy.
func (d *Decoder) Bytes32() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if int(n) > d.Remaining() {
		d.err = fmt.Errorf("%w: declared %d bytes, %d remain", ErrShortBuffer, n, d.Remaining())
		return nil
	}
	b := d.take(int(n))
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Rest returns every unread byte without copying and exhausts the
// decoder. The result aliases the decoder's buffer; it is how services
// take a raw trailing payload whose length is implied by the frame.
//
// Rest is single-use: the first call consumes the tail, and any further
// call returns nil and sets the decoder's sticky error to a wrapped
// ErrRestConsumed (a repeat would otherwise silently read an empty
// payload where the caller expected data).
func (d *Decoder) Rest() []byte {
	if d.err != nil {
		return nil
	}
	if d.restTaken {
		d.err = fmt.Errorf("%w: trailing payload already consumed at offset %d", ErrRestConsumed, d.off)
		return nil
	}
	d.restTaken = true
	b := d.buf[d.off:]
	d.off = len(d.buf)
	return b
}

// String reads a uint32-length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint32()
	if d.err != nil {
		return ""
	}
	if int(n) > d.Remaining() {
		d.err = fmt.Errorf("%w: declared %d bytes, %d remain", ErrShortBuffer, n, d.Remaining())
		return ""
	}
	return string(d.take(int(n)))
}

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passthrough signals clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("read frame body: %w", err)
	}
	return payload, nil
}
