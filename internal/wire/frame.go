package wire

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Zero-copy framing: chunk payloads never pass through an encoder
// buffer. A frame goes out as a small pooled header buffer plus the
// caller's payload slice, vectored through net.Buffers so TCP
// connections use writev; small frames coalesce into one Write because
// the in-memory pipe transport turns every Write into a synchronous
// rendezvous.

// coalesceLimit is the total frame size at or below which the payload
// is copied into the header buffer and written in one Write call.
// Copying a few KiB costs less than a second syscall (or a second pipe
// rendezvous); copying a half-MiB chunk does not.
const coalesceLimit = 4 << 10

// maxPooledEncoder caps the buffer capacity returned to the encoder
// pool. Headers and control-plane bodies stay well under this; the rare
// oversized buffer is dropped for the garbage collector so the pool
// never pins chunk-sized memory.
const maxPooledEncoder = 64 << 10

var encoderPool = sync.Pool{
	New: func() any {
		onPoolMiss()
		return &Encoder{buf: make([]byte, 0, 512)}
	},
}

// poolMiss, when set via SetPoolMiss, observes encoder-pool misses.
var poolMiss atomic.Value // func()

// SetPoolMiss installs fn to be called on every encoder-pool miss; the
// core client wires it to the buffer_pool_miss_total counter. fn must
// be safe for concurrent use.
func SetPoolMiss(fn func()) { poolMiss.Store(fn) }

func onPoolMiss() {
	if fn, ok := poolMiss.Load().(func()); ok && fn != nil {
		fn()
	}
}

// GetEncoder returns an empty pooled encoder. Release it with
// PutEncoder once the encoded bytes have been fully consumed — for a
// framed write, after WriteFrame/WriteFrameBuffers returns, since
// Bytes aliases the encoder's buffer.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.released = false
	e.buf = e.buf[:0]
	return e
}

// PutEncoder returns an encoder to the pool. The encoder is poisoned:
// any use after PutEncoder panics, which turns latent aliasing bugs
// (retaining Bytes across release, double release) into loud failures
// instead of corrupted in-flight frames.
func PutEncoder(e *Encoder) {
	if e == nil {
		return
	}
	if e.released {
		panic("wire: PutEncoder called twice")
	}
	e.released = true
	if cap(e.buf) > maxPooledEncoder {
		return
	}
	encoderPool.Put(e)
}

// WriteFrameBuffers writes one length-prefixed frame whose content is
// head followed by payload, without copying payload into an encoder
// buffer (frames above coalesceLimit go out vectored via net.Buffers).
// Neither slice is retained after return. head is typically a pooled
// encoder's Bytes; the caller releases it after this returns.
func WriteFrameBuffers(w io.Writer, head, payload []byte) error {
	total := len(head) + len(payload)
	if total > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, total)
	}
	e := GetEncoder()
	defer PutEncoder(e)
	e.Uint32(uint32(total))
	e.Raw(head)
	if len(payload) == 0 || 4+total <= coalesceLimit {
		e.Raw(payload)
		if _, err := w.Write(e.Bytes()); err != nil {
			return fmt.Errorf("write frame: %w", err)
		}
		return nil
	}
	bufs := net.Buffers{e.Bytes(), payload}
	if _, err := bufs.WriteTo(w); err != nil {
		return fmt.Errorf("write frame buffers: %w", err)
	}
	return nil
}
