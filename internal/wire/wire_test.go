package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint8(7)
	e.Bool(true)
	e.Bool(false)
	e.Uint32(0xDEADBEEF)
	e.Uint64(1 << 60)
	e.Int64(-42)
	e.Float64(3.25)
	e.String("hello")
	e.Bytes32([]byte{1, 2, 3})
	e.Raw([]byte{9, 9})

	d := NewDecoder(e.Bytes())
	if got := d.Uint8(); got != 7 {
		t.Errorf("Uint8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := d.Uint64(); got != 1<<60 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := d.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := d.Float64(); got != 3.25 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := d.Remaining(); got != 2 {
		t.Errorf("Remaining = %d, want 2", got)
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.Uint32() // short
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Fatalf("Err = %v, want ErrShortBuffer", d.Err())
	}
	// Sticky: further reads return zero values, error is preserved.
	if got := d.Uint8(); got != 0 {
		t.Fatalf("post-error Uint8 = %d", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("post-error String = %q", got)
	}
	if got := d.Bytes32(); got != nil {
		t.Fatalf("post-error Bytes32 = %v", got)
	}
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Fatal("error not sticky")
	}
}

func TestDecoderHugeDeclaredLength(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(0xFFFFFFFF) // declared string length far past the buffer
	d := NewDecoder(e.Bytes())
	if got := d.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Fatalf("Err = %v", d.Err())
	}

	d2 := NewDecoder(e.Bytes())
	if got := d2.Bytes32(); got != nil {
		t.Fatalf("Bytes32 = %v", got)
	}
	if !errors.Is(d2.Err(), ErrShortBuffer) {
		t.Fatalf("Err = %v", d2.Err())
	}
}

func TestBytes32Copies(t *testing.T) {
	e := NewEncoder(16)
	e.Bytes32([]byte{5, 6})
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.Bytes32()
	got[0] = 99
	if buf[4] == 99 {
		t.Fatal("Bytes32 aliased the input buffer")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("frame payload")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame = %q", got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("frame = %v", got)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	// Handcraft a header declaring an oversized frame.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	// Truncated body.
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("abcdef"))
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(a uint8, b uint32, c uint64, d int64, f float64, s string, raw []byte) bool {
		e := NewEncoder(0)
		e.Uint8(a)
		e.Uint32(b)
		e.Uint64(c)
		e.Int64(d)
		e.Float64(f)
		e.String(s)
		e.Bytes32(raw)
		dec := NewDecoder(e.Bytes())
		okF := func(got float64) bool {
			return got == f || (got != got && f != f) // NaN-safe
		}
		return dec.Uint8() == a &&
			dec.Uint32() == b &&
			dec.Uint64() == c &&
			dec.Int64() == d &&
			okF(dec.Float64()) &&
			dec.String() == s &&
			bytes.Equal(dec.Bytes32(), raw) &&
			dec.Err() == nil &&
			dec.Remaining() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
