//go:build !race

package wire

// raceEnabled reports whether the race detector is on; allocation
// assertions are skipped under -race because sync.Pool intentionally
// degrades there.
const raceEnabled = false
