package obs

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// Histogram layout: exponential buckets over float64 seconds, striped
// across independent mutex-guarded shards so concurrent writers (one per
// fetch goroutine, typically) rarely contend on the same lock. A stripe is
// picked per observation with the runtime's cheap per-thread random source,
// which spreads load without any shared write between observers.
const (
	histStripes = 8
	histBuckets = 80
	// histLowest is the upper bound of the first bucket (1µs); each later
	// bucket's bound grows by histGrowth, covering 1µs to ~11 hours.
	histLowest = 1e-6
	histGrowth = 1.35
)

// histBounds is the shared per-bucket upper-bound table (identical for
// every histogram, so it is computed once).
var histBounds = func() []float64 {
	b := make([]float64, histBuckets)
	bound := histLowest
	for i := range b {
		b[i] = bound
		bound *= histGrowth
	}
	return b
}()

// Histogram is a lock-striped latency histogram recording float64 seconds.
// The nil histogram discards observations without allocating.
type Histogram struct {
	stripes [histStripes]histStripe
}

type histStripe struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
	// pad the stripe to its own cache lines so adjacent stripes do not
	// false-share under concurrent observation.
	_ [32]byte
}

func newHistogram() *Histogram {
	h := &Histogram{}
	for i := range h.stripes {
		h.stripes[i].min = math.Inf(1)
		h.stripes[i].max = math.Inf(-1)
	}
	return h
}

// Observe records one value (seconds). Negative values are clamped to 0.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	idx := sort.SearchFloat64s(histBounds, v)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	s := &h.stripes[rand.Uint32N(histStripes)]
	s.mu.Lock()
	s.counts[idx]++
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.mu.Unlock()
}

// ObserveDuration records a duration as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		total += s.count
		s.mu.Unlock()
	}
	return total
}

// Quantile returns the q-th (0 < q < 1) observed quantile, approximated
// from the log-scale buckets; zero when nothing has been observed. It is
// nil-safe, so callers can consult a disabled histogram freely (e.g. the
// client's adaptive hedge threshold).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	m := h.merge()
	return m.quantile(q)
}

// merged collapses the stripes into one view.
type mergedHist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

func (h *Histogram) merge() mergedHist {
	m := mergedHist{min: math.Inf(1), max: math.Inf(-1)}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		for b, c := range s.counts {
			m.counts[b] += c
		}
		m.count += s.count
		m.sum += s.sum
		if s.min < m.min {
			m.min = s.min
		}
		if s.max > m.max {
			m.max = s.max
		}
		s.mu.Unlock()
	}
	return m
}

// quantile estimates the q-th quantile (0 < q < 1) by locating the bucket
// containing the target rank and interpolating linearly inside it. Bounds
// are clamped to the exact observed min/max, so single-value histograms
// report that value at every quantile.
func (m *mergedHist) quantile(q float64) float64 {
	if m.count == 0 {
		return 0
	}
	rank := q * float64(m.count)
	var cum uint64
	for i, c := range m.counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = histBounds[i-1]
		}
		upper := histBounds[i]
		frac := (rank - prev) / float64(c)
		v := lower + frac*(upper-lower)
		if v < m.min {
			v = m.min
		}
		if v > m.max {
			v = m.max
		}
		return v
	}
	return m.max
}

// snap renders the histogram into a HistogramSnap.
func (h *Histogram) snap(name, label, labelValue string) HistogramSnap {
	m := h.merge()
	out := HistogramSnap{
		Name:       name,
		Label:      label,
		LabelValue: labelValue,
		Count:      m.count,
		Sum:        m.sum,
	}
	if m.count > 0 {
		out.Min = m.min
		out.Max = m.max
		out.P50 = m.quantile(0.50)
		out.P95 = m.quantile(0.95)
		out.P99 = m.quantile(0.99)
	}
	return out
}
