package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanNesting(t *testing.T) {
	tracer := NewTracer(4, NewRegistry())
	tr := tracer.Start("get")
	if tr.ID == 0 {
		t.Error("trace id not assigned")
	}
	fetch := tr.StartSpan("fetch")
	chunk := fetch.Child("chunk")
	sub := chunk.Child("disk")
	sub.End()
	chunk.End()
	fetch.End()
	decode := tr.StartSpan("decode")
	decode.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["fetch"].Depth != 1 || byName["fetch"].Parent != -1 {
		t.Errorf("fetch span = %+v", byName["fetch"])
	}
	if byName["chunk"].Depth != 2 || spans[byName["chunk"].Parent].Name != "fetch" {
		t.Errorf("chunk span = %+v", byName["chunk"])
	}
	if byName["disk"].Depth != 3 || spans[byName["disk"].Parent].Name != "chunk" {
		t.Errorf("disk span = %+v", byName["disk"])
	}
	if byName["decode"].Depth != 1 {
		t.Errorf("decode span = %+v", byName["decode"])
	}
	for _, sp := range spans {
		if sp.End < sp.Start {
			t.Errorf("span %s ended (%v) before it started (%v)", sp.Name, sp.End, sp.Start)
		}
	}
	if tr.Total() <= 0 {
		t.Error("trace total not recorded")
	}
	if s := tr.String(); !strings.Contains(s, "fetch") || !strings.Contains(s, "get") {
		t.Errorf("trace rendering missing spans: %q", s)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tracer := NewTracer(4, nil)
	tr := tracer.Start("multi")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.StartSpan("site-fetch")
			time.Sleep(time.Millisecond)
			sp.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Spans()); got != 8 {
		t.Errorf("got %d spans, want 8", got)
	}
}

func TestTracerRingAndSpanHistograms(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer(2, reg)
	for i := 0; i < 5; i++ {
		tr := tracer.Start("req")
		tr.StartSpan("fetch").End()
		tr.Finish()
	}
	recent := tracer.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("ring retained %d traces, want 2 (capacity)", len(recent))
	}
	if recent[0].ID < recent[1].ID {
		t.Errorf("Recent not most-recent-first: ids %d, %d", recent[0].ID, recent[1].ID)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("traces_total", ""); got != 5 {
		t.Errorf("traces_total = %d, want 5", got)
	}
	h, ok := snap.Histogram("trace_span_seconds", "fetch")
	if !ok || h.Count != 5 {
		t.Errorf("trace_span_seconds{span=fetch} = %+v ok=%v", h, ok)
	}
}

func TestTraceFinishClosesOpenSpans(t *testing.T) {
	tracer := NewTracer(1, nil)
	tr := tracer.Start("req")
	tr.StartSpan("never-ended")
	tr.Finish()
	sp := tr.Spans()[0]
	if sp.End < 0 || sp.End != tr.Total() {
		t.Errorf("open span not closed at finish: %+v total=%v", sp, tr.Total())
	}
	// Double-finish and post-finish spans are ignored.
	tr.Finish()
	tr.StartSpan("late").End()
	if tracer.Recent(5)[0] != tr {
		t.Error("trace not in ring")
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "").Add(3)
	tracer := NewTracer(4, reg)
	tr := tracer.Start("get")
	tr.StartSpan("fetch").End()
	tr.Finish()

	srv := httptest.NewServer(Handler(reg, tracer))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "counter hits_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/traces"); code != 200 || !strings.Contains(body, "fetch") {
		t.Errorf("/traces = %d %q", code, body)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("/ = %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}

	// Handler without a tracer 404s /traces.
	srv2 := httptest.NewServer(Handler(reg, nil))
	defer srv2.Close()
	resp, err := srv2.Client().Get(srv2.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/traces without tracer = %d, want 404", resp.StatusCode)
	}
}
