package obs

import (
	"fmt"
	"io"

	"ecstore/internal/wire"
)

// CounterSnap is one counter's value at snapshot time. Label/LabelValue
// are empty for plain (unlabeled) counters.
type CounterSnap struct {
	Name       string
	Label      string
	LabelValue string
	Value      int64
}

// GaugeSnap is one gauge's value at snapshot time.
type GaugeSnap struct {
	Name  string
	Value int64
}

// HistogramSnap is one histogram's summary at snapshot time. All values
// are in seconds.
type HistogramSnap struct {
	Name       string
	Label      string
	LabelValue string
	Count      uint64
	Sum        float64
	Min        float64
	Max        float64
	P50        float64
	P95        float64
	P99        float64
}

// Snapshot is a detached, sorted copy of a registry's state, suitable for
// wire transport (GetMetrics RPCs) and programmatic inspection.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistogramSnap
}

// CounterValue returns the value of the (name, labelValue) counter, or 0
// if absent. Pass labelValue "" for unlabeled counters.
func (s *Snapshot) CounterValue(name, labelValue string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name && c.LabelValue == labelValue {
			return c.Value
		}
	}
	return 0
}

// GaugeValue returns the value of the named gauge, or 0 if absent.
func (s *Snapshot) GaugeValue(name string) int64 {
	if s == nil {
		return 0
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the (name, labelValue) histogram summary, if present.
func (s *Snapshot) Histogram(name, labelValue string) (HistogramSnap, bool) {
	if s == nil {
		return HistogramSnap{}, false
	}
	for _, h := range s.Histograms {
		if h.Name == name && h.LabelValue == labelValue {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// SumCounters sums every labeled value of one counter family (for example
// total reads across all sites).
func (s *Snapshot) SumCounters(name string) int64 {
	if s == nil {
		return 0
	}
	var total int64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// snapshotVersion guards the wire layout of marshaled snapshots.
const snapshotVersion = 1

// MarshalSnapshot serializes a snapshot for RPC transport (the GetMetrics
// method of each service returns this encoding).
func MarshalSnapshot(s *Snapshot) []byte {
	e := wire.NewEncoder(64 + 48*(len(s.Counters)+len(s.Gauges)) + 96*len(s.Histograms))
	e.Uint8(snapshotVersion)
	e.Uint32(uint32(len(s.Counters)))
	for _, c := range s.Counters {
		e.String(c.Name)
		e.String(c.Label)
		e.String(c.LabelValue)
		e.Int64(c.Value)
	}
	e.Uint32(uint32(len(s.Gauges)))
	for _, g := range s.Gauges {
		e.String(g.Name)
		e.Int64(g.Value)
	}
	e.Uint32(uint32(len(s.Histograms)))
	for _, h := range s.Histograms {
		e.String(h.Name)
		e.String(h.Label)
		e.String(h.LabelValue)
		e.Uint64(h.Count)
		e.Float64(h.Sum)
		e.Float64(h.Min)
		e.Float64(h.Max)
		e.Float64(h.P50)
		e.Float64(h.P95)
		e.Float64(h.P99)
	}
	return e.Bytes()
}

// UnmarshalSnapshot decodes a snapshot produced by MarshalSnapshot.
func UnmarshalSnapshot(body []byte) (*Snapshot, error) {
	d := wire.NewDecoder(body)
	if v := d.Uint8(); v != snapshotVersion {
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("obs: unsupported snapshot version %d", v)
	}
	s := &Snapshot{}
	nc := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < nc; i++ {
		c := CounterSnap{Name: d.String(), Label: d.String(), LabelValue: d.String(), Value: d.Int64()}
		s.Counters = append(s.Counters, c)
	}
	ng := int(d.Uint32())
	for i := 0; i < ng; i++ {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: d.String(), Value: d.Int64()})
	}
	nh := int(d.Uint32())
	for i := 0; i < nh; i++ {
		h := HistogramSnap{Name: d.String(), Label: d.String(), LabelValue: d.String()}
		h.Count = d.Uint64()
		h.Sum = d.Float64()
		h.Min = d.Float64()
		h.Max = d.Float64()
		h.P50 = d.Float64()
		h.P95 = d.Float64()
		h.P99 = d.Float64()
		s.Histograms = append(s.Histograms, h)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteText renders the snapshot as an expvar-style text dump, one metric
// per line:
//
//	counter storage_reads_total{site="1"} 42
//	gauge repair_failed_sites 0
//	histogram client_fetch_seconds count=3 sum=0.0021 min=0.0005 max=0.0010 p50=0.0006 p95=0.0010 p99=0.0010
func (s *Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", metricID(c.Name, c.Label, c.LabelValue), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w,
			"histogram %s count=%d sum=%.6g min=%.6g max=%.6g p50=%.6g p95=%.6g p99=%.6g\n",
			metricID(h.Name, h.Label, h.LabelValue),
			h.Count, h.Sum, h.Min, h.Max, h.P50, h.P95, h.P99); err != nil {
			return err
		}
	}
	return nil
}

func metricID(name, label, value string) string {
	if label == "" {
		return name
	}
	return fmt.Sprintf("%s{%s=%q}", name, label, value)
}
