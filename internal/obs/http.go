package obs

import (
	"net"
	"net/http"
)

// Handler serves a registry (and optionally a tracer) over HTTP as plain
// text — the daemons' `-metrics-addr` surface:
//
//	GET /metrics   expvar-style text dump of every instrument
//	GET /traces    most recent finished request traces (404 if no tracer)
//
// tracer may be nil.
func Handler(reg *Registry, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, tr := range tracer.Recent(32) {
			_, _ = w.Write([]byte(tr.String()))
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ecstore observability endpoints: /metrics /traces\n"))
	})
	return mux
}

// Serve serves the metrics handler on the listener until the listener is
// closed. Run it in a goroutine the caller owns.
func Serve(l net.Listener, reg *Registry, tracer *Tracer) error {
	srv := &http.Server{Handler: Handler(reg, tracer)}
	return srv.Serve(l)
}
