// Package obs is EC-Store's observability substrate: a dependency-free
// metrics registry (atomic counters and gauges, lock-striped latency
// histograms with p50/p95/p99 estimation, and labeled metric families) plus
// a lightweight per-request trace context (request id and nested span
// timings for the client's plan→fetch→decode pipeline).
//
// Every instrument is nil-safe: a nil *Counter, *Gauge, *Histogram, vector
// or *Trace turns each operation into a no-op without allocating, so
// instrumented code can be compiled in unconditionally and pays nothing
// when the owning *Registry is nil (disabled). Conventions follow the
// Prometheus naming style: cumulative counters end in `_total`, latency
// histograms end in `_seconds` and observe float64 seconds.
//
// The registry is exported three ways: WriteText renders an expvar-style
// text dump (served over HTTP by Handler), MarshalSnapshot/UnmarshalSnapshot
// move point-in-time snapshots across the RPC boundary for each service's
// GetMetrics method, and Snapshot supports programmatic assertions in tests
// and the `ecstore-cli stats` cluster summary.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil counter
// discards updates, so disabled instrumentation costs one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterVec is a labeled family of counters sharing one name (for example
// storage_reads_total{site="3"}).
type CounterVec struct {
	name  string
	label string

	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for one label value, creating it on first use.
// Callers on hot paths should cache the returned *Counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// HistogramVec is a labeled family of histograms sharing one name (for
// example storage_read_seconds{site="3"}).
type HistogramVec struct {
	name  string
	label string

	mu sync.RWMutex
	m  map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.m[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[value]; h == nil {
		h = newHistogram()
		v.m[value] = h
	}
	return h
}

// Registry names and owns a process's instruments. The nil registry hands
// out nil instruments, disabling instrumentation with zero allocation on
// the instrumented paths. All methods are safe for concurrent use;
// requesting an existing name returns the existing instrument (requesting
// it as a different type panics, as that is a programming error).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cvecs    map[string]*CounterVec
	hvecs    map[string]*HistogramVec
	help     map[string]string
	kinds    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		cvecs:    make(map[string]*CounterVec),
		hvecs:    make(map[string]*HistogramVec),
		help:     make(map[string]string),
		kinds:    make(map[string]string),
	}
}

func (r *Registry) claim(name, kind, help string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, prev, kind))
	}
	r.kinds[name] = kind
	if help != "" {
		r.help[name] = help
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter", help)
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge", help)
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it if needed.
// Values are float64 seconds.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram", help)
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named counter family keyed by one label.
func (r *Registry) CounterVec(name, label, help string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "countervec", help)
	v := r.cvecs[name]
	if v == nil {
		v = &CounterVec{name: name, label: label, m: make(map[string]*Counter)}
		r.cvecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family keyed by one label.
func (r *Registry) HistogramVec(name, label, help string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogramvec", help)
	v := r.hvecs[name]
	if v == nil {
		v = &HistogramVec{name: name, label: label, m: make(map[string]*Histogram)}
		r.hvecs[name] = v
	}
	return v
}

// Snapshot captures every instrument's current value. The result is sorted
// by (name, label) and detached from the live registry.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		snap.Histograms = append(snap.Histograms, h.snap(name, "", ""))
	}
	for name, v := range r.cvecs {
		v.mu.RLock()
		for value, c := range v.m {
			snap.Counters = append(snap.Counters, CounterSnap{
				Name: name, Label: v.label, LabelValue: value, Value: c.Value(),
			})
		}
		v.mu.RUnlock()
	}
	for name, v := range r.hvecs {
		v.mu.RLock()
		for value, h := range v.m {
			snap.Histograms = append(snap.Histograms, h.snap(name, v.label, value))
		}
		v.mu.RUnlock()
	}
	snap.sort()
	return snap
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].LabelValue < s.Counters[j].LabelValue
	})
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return s.Histograms[i].LabelValue < s.Histograms[j].LabelValue
	})
}
