package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer mints per-request traces and retains the most recent finished
// ones in a ring buffer. When built over a registry it also folds every
// finished span into the `trace_span_seconds{span=...}` histogram family
// and counts traces in `traces_total`, so span timings are queryable
// through the same metrics surface as everything else.
//
// The nil tracer is disabled: Start returns a nil *Trace whose span
// operations are allocation-free no-ops.
type Tracer struct {
	seq    atomic.Uint64
	spans  *HistogramVec
	traces *Counter

	mu   sync.Mutex
	ring []*Trace
	next int
}

// NewTracer returns a tracer retaining up to capacity finished traces
// (capacity <= 0 means 64). reg may be nil, in which case traces are still
// collected but span histograms are not exported.
func NewTracer(capacity int, reg *Registry) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{
		spans:  reg.HistogramVec("trace_span_seconds", "span", "per-span latency from finished request traces"),
		traces: reg.Counter("traces_total", "finished request traces"),
		ring:   make([]*Trace, 0, capacity),
	}
}

// Start begins a new trace with a fresh request id.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{
		tracer: t,
		ID:     t.seq.Add(1),
		Name:   name,
		Begin:  time.Now(),
	}
}

// Recent returns up to n finished traces, most recent first.
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, n)
	for i := 0; i < len(t.ring) && len(out) < n; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		if tr := t.ring[idx]; tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

func (t *Tracer) record(tr *Trace) {
	t.traces.Inc()
	for i := range tr.spans {
		sp := &tr.spans[i]
		if sp.End >= sp.Start {
			t.spans.With(sp.Name).ObserveDuration(sp.End - sp.Start)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		t.next = len(t.ring) % cap(t.ring)
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
}

// Span is one timed region of a trace. Start/End are offsets from the
// trace's Begin time; Parent is the index of the enclosing span, or -1 for
// spans directly under the request root.
type Span struct {
	Name   string
	Parent int
	Depth  int
	Start  time.Duration
	End    time.Duration
}

// Trace is one request's trace context: a request id plus a tree of spans.
// Spans may be started concurrently from multiple goroutines.
type Trace struct {
	tracer *Tracer
	ID     uint64
	Name   string
	Begin  time.Time

	mu       sync.Mutex
	spans    []Span
	total    time.Duration
	finished bool
}

// StartSpan opens a span directly under the request root. Safe on a nil
// trace (returns a no-op SpanRef without allocating).
func (tr *Trace) StartSpan(name string) SpanRef {
	if tr == nil {
		return SpanRef{idx: -1}
	}
	return tr.startSpan(name, -1, 1)
}

func (tr *Trace) startSpan(name string, parent, depth int) SpanRef {
	now := time.Since(tr.Begin)
	tr.mu.Lock()
	idx := len(tr.spans)
	tr.spans = append(tr.spans, Span{Name: name, Parent: parent, Depth: depth, Start: now, End: -1})
	tr.mu.Unlock()
	return SpanRef{tr: tr, idx: idx}
}

// Finish closes the trace and hands it to the tracer's ring. Further span
// operations are ignored.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.total = time.Since(tr.Begin)
	// Close any spans left open so the ring never holds negative ends.
	for i := range tr.spans {
		if tr.spans[i].End < 0 {
			tr.spans[i].End = tr.total
		}
	}
	tr.mu.Unlock()
	tr.tracer.record(tr)
}

// Total returns the trace's wall-clock duration (zero until Finish).
func (tr *Trace) Total() time.Duration {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Spans returns a copy of the recorded spans.
func (tr *Trace) Spans() []Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Span, len(tr.spans))
	copy(out, tr.spans)
	return out
}

// String renders the trace as an indented span tree for debugging output.
func (tr *Trace) String() string {
	if tr == nil {
		return "<no trace>"
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d %s total=%s\n", tr.ID, tr.Name, tr.total)
	for _, sp := range tr.spans {
		fmt.Fprintf(&b, "%s%s %s\n", strings.Repeat("  ", sp.Depth), sp.Name, sp.End-sp.Start)
	}
	return b.String()
}

// SpanRef addresses one open span of a trace. The zero value (and any ref
// from a nil trace) is a no-op.
type SpanRef struct {
	tr  *Trace
	idx int
}

// Active reports whether the ref addresses a live trace. Callers use it to
// skip building span names (which allocates) when tracing is disabled.
func (s SpanRef) Active() bool { return s.tr != nil }

// End closes the span.
func (s SpanRef) End() {
	if s.tr == nil {
		return
	}
	now := time.Since(s.tr.Begin)
	s.tr.mu.Lock()
	if !s.tr.finished && s.idx >= 0 && s.idx < len(s.tr.spans) && s.tr.spans[s.idx].End < 0 {
		s.tr.spans[s.idx].End = now
	}
	s.tr.mu.Unlock()
}

// Child opens a span nested under this one.
func (s SpanRef) Child(name string) SpanRef {
	if s.tr == nil {
		return SpanRef{idx: -1}
	}
	s.tr.mu.Lock()
	depth := 1
	if s.idx >= 0 && s.idx < len(s.tr.spans) {
		depth = s.tr.spans[s.idx].Depth + 1
	}
	s.tr.mu.Unlock()
	return s.tr.startSpan(name, s.idx, depth)
}
