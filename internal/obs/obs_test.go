package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "test")
	vec := reg.CounterVec("site_ops_total", "site", "test")
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := vec.With("7")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				sc.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("7").Value(); got != 2*workers*perWorker {
		t.Errorf("vec counter = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth", "test")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want 3", g.Value())
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x_total", "") != reg.Counter("x_total", "") {
		t.Error("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "test")
	// 1..1000 ms uniform: p50 ≈ 0.5s, p95 ≈ 0.95s, p99 ≈ 0.99s.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	snap := h.snap("lat_seconds", "", "")
	if snap.Count != 1000 {
		t.Fatalf("count = %d", snap.Count)
	}
	if math.Abs(snap.Sum-500.5) > 0.01 {
		t.Errorf("sum = %v, want 500.5", snap.Sum)
	}
	if snap.Min != 0.001 || snap.Max != 1.0 {
		t.Errorf("min/max = %v/%v", snap.Min, snap.Max)
	}
	// Exponential buckets give ~±(growth-1) relative resolution.
	checks := []struct {
		name string
		got  float64
		want float64
	}{{"p50", snap.P50, 0.5}, {"p95", snap.P95, 0.95}, {"p99", snap.P99, 0.99}}
	for _, c := range checks {
		if rel := math.Abs(c.got-c.want) / c.want; rel > histGrowth-1 {
			t.Errorf("%s = %v, want %v ±%.0f%%", c.name, c.got, c.want, 100*(histGrowth-1))
		}
	}
	// Quantiles must be monotone.
	if !(snap.P50 <= snap.P95 && snap.P95 <= snap.P99) {
		t.Errorf("quantiles not monotone: %v <= %v <= %v", snap.P50, snap.P95, snap.P99)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := newHistogram()
	h.Observe(0.25)
	snap := h.snap("h", "", "")
	if snap.P50 != 0.25 || snap.P95 != 0.25 || snap.P99 != 0.25 {
		t.Errorf("single-value quantiles = %v/%v/%v, want 0.25 (clamped to min/max)",
			snap.P50, snap.P95, snap.P99)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := newHistogram()
	h.Observe(-3)          // clamped to 0
	h.Observe(1e9)         // beyond the last bound: counted in overflow bucket
	h.Observe(math.NaN())  // clamped to 0
	if got := h.Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	snap := h.snap("h", "", "")
	if snap.Max != 1e9 || snap.Min != 0 {
		t.Errorf("min/max = %v/%v", snap.Min, snap.Max)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}

func TestNilInstrumentsAreNoOpsWithoutAllocation(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a_total", "")
	g := reg.Gauge("b", "")
	h := reg.Histogram("c_seconds", "")
	cv := reg.CounterVec("d_total", "site", "")
	hv := reg.HistogramVec("e_seconds", "site", "")
	var tracer *Tracer
	start := time.Now()
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(0.5)
		h.ObserveSince(start)
		cv.With("1").Inc()
		hv.With("1").Observe(0.1)
		tr := tracer.Start("req")
		sp := tr.StartSpan("fetch")
		sp.Child("chunk").End()
		sp.End()
		tr.Finish()
	})
	if allocs != 0 {
		t.Errorf("disabled instrumentation allocated %v times per op, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments recorded values")
	}
	if snap := reg.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry produced a non-empty snapshot")
	}
}

func TestSnapshotRoundTripAndText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "").Add(7)
	reg.Gauge("conns", "").Set(2)
	reg.CounterVec("reads_total", "site", "").With("3").Add(9)
	reg.Histogram("lat_seconds", "").Observe(0.5)
	reg.HistogramVec("site_lat_seconds", "site", "").With("3").Observe(0.25)

	snap := reg.Snapshot()
	body := MarshalSnapshot(snap)
	got, err := UnmarshalSnapshot(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.CounterValue("reqs_total", "") != 7 {
		t.Errorf("reqs_total = %d", got.CounterValue("reqs_total", ""))
	}
	if got.CounterValue("reads_total", "3") != 9 {
		t.Errorf("reads_total{site=3} = %d", got.CounterValue("reads_total", "3"))
	}
	if got.SumCounters("reads_total") != 9 {
		t.Errorf("SumCounters = %d", got.SumCounters("reads_total"))
	}
	if got.GaugeValue("conns") != 2 {
		t.Errorf("conns = %d", got.GaugeValue("conns"))
	}
	h, ok := got.Histogram("site_lat_seconds", "3")
	if !ok || h.Count != 1 || h.P50 != 0.25 {
		t.Errorf("histogram snap = %+v ok=%v", h, ok)
	}

	var buf bytes.Buffer
	if err := got.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`counter reqs_total 7`,
		`counter reads_total{site="3"} 9`,
		`gauge conns 2`,
		`histogram lat_seconds count=1`,
		`histogram site_lat_seconds{site="3"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q in:\n%s", want, text)
		}
	}
}

func TestUnmarshalSnapshotRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSnapshot([]byte{99}); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := UnmarshalSnapshot(nil); err == nil {
		t.Error("empty body accepted")
	}
}
