package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// doneChanName matches the conventional names of shutdown channels; a
// receive from one counts as a cancellation path for goleak.
var doneChanName = regexp.MustCompile(`(?i)^(done|stop|stopped|quit|closed?|exit|cancel)$`)

// GoLeak requires every goroutine to have a bounded lifetime. A `go
// func` literal's body must observe a context (select/receive on
// ctx.Done(), or poll ctx.Err()) or a shutdown channel (a receive from
// a channel named done/stop/quit/close/exit), be tracked by a
// sync.WaitGroup (a call to wg.Done), or signal its own exit by closing
// a conventional done channel an owner waits on. A `go f(...)` into a
// named module function — resolved through the call graph, across
// package boundaries — checks f's body the same way, one level deep. Anything else is a goroutine nothing
// can stop — under heavy traffic those accumulate until the process
// dies. Goroutines bounded some other way carry a //lint:ignore goleak
// directive explaining why.
func GoLeak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "goroutines must be cancelable via context/done channel or WaitGroup-tracked",
		Run:  runGoLeak,
	}
}

func runGoLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !goroutineBounded(pass.Info, lit.Body) {
					pass.Reportf(g.Pos(), "goroutine has no cancellation path: select on ctx.Done()/a done channel or track it with a sync.WaitGroup")
				}
				return true
			}
			// go f(...) into a named module function: inspect f's body
			// in its defining package (one level interprocedural).
			if callees, iface := pass.Mod.Graph().CalleeOf(pass.Package, g.Call); !iface && len(callees) == 1 {
				callee := callees[0]
				if !goroutineBounded(callee.Pkg.Info, callee.Decl.Body) {
					pass.Reportf(g.Pos(), "goroutine %s has no cancellation path: select on ctx.Done()/a done channel or track it with a sync.WaitGroup", callee.Name())
				}
			}
			return true
		})
	}
}

// goroutineBounded reports whether body contains any accepted lifetime
// bound; info must be the go/types results of the package the body was
// declared in.
func goroutineBounded(info *types.Info, body *ast.BlockStmt) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObj(info, n)
			// ctx.Done() or ctx.Err() — selected, received, or polled.
			if obj != nil && (obj.Name() == "Done" || obj.Name() == "Err") {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
						bounded = true
						return false
					}
				}
			}
			// wg.Done() — WaitGroup-tracked goroutine.
			if isMethodOf(obj, "sync", "WaitGroup", "Done") {
				bounded = true
				return false
			}
			// close(done) — the goroutine signals its exit on a
			// conventional shutdown channel an owner waits on (the
			// rpc read-loop pattern: defer close(c.done)).
			if bi, ok := obj.(*types.Builtin); ok && bi.Name() == "close" && len(n.Args) == 1 {
				if doneChanName.MatchString(lastIdentName(n.Args[0])) {
					bounded = true
					return false
				}
			}
		case *ast.UnaryExpr:
			// <-x where x's name marks a shutdown channel.
			if n.Op.String() == "<-" {
				if doneChanName.MatchString(lastIdentName(n.X)) {
					bounded = true
					return false
				}
			}
		}
		return true
	})
	return bounded
}

// lastIdentName returns the final identifier of an expression:
// "stop" for s.stop, "done" for done.
func lastIdentName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
