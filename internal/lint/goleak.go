package lint

import (
	"go/ast"
	"regexp"
)

// doneChanName matches the conventional names of shutdown channels; a
// receive from one counts as a cancellation path for goleak.
var doneChanName = regexp.MustCompile(`(?i)^(done|stop|stopped|quit|closed?|exit|cancel)$`)

// GoLeak requires every `go func` literal to have a bounded lifetime:
// its body must select on a context (ctx.Done()) or a shutdown channel
// (a receive from a channel named done/stop/quit/close/exit), or be
// tracked by a sync.WaitGroup (a call to wg.Done). Anything else is a
// goroutine nothing can stop — under heavy traffic those accumulate
// until the process dies. Goroutines bounded some other way carry a
// //lint:ignore goleak directive explaining why.
func GoLeak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "goroutines must be cancelable via context/done channel or WaitGroup-tracked",
		Run:  runGoLeak,
	}
}

func runGoLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !goroutineBounded(pass, lit.Body) {
				pass.Reportf(g.Pos(), "goroutine has no cancellation path: select on ctx.Done()/a done channel or track it with a sync.WaitGroup")
			}
			return true
		})
	}
}

// goroutineBounded reports whether body contains any accepted lifetime
// bound.
func goroutineBounded(pass *Pass, body *ast.BlockStmt) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObj(pass.Info, n)
			// ctx.Done() — used in a select or a bare receive alike.
			if obj != nil && obj.Name() == "Done" {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if tv, ok := pass.Info.Types[sel.X]; ok && isContextType(tv.Type) {
						bounded = true
						return false
					}
				}
			}
			// wg.Done() — WaitGroup-tracked goroutine.
			if isMethodOf(obj, "sync", "WaitGroup", "Done") {
				bounded = true
				return false
			}
		case *ast.UnaryExpr:
			// <-x where x's name marks a shutdown channel.
			if n.Op.String() == "<-" {
				if doneChanName.MatchString(lastIdentName(n.X)) {
					bounded = true
					return false
				}
			}
		}
		return true
	})
	return bounded
}

// lastIdentName returns the final identifier of an expression:
// "stop" for s.stop, "done" for done.
func lastIdentName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
