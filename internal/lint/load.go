// Module loading for the linter: parse and type-check every package in
// the module using only the standard library (go/parser + go/types with
// the "source" importer), honouring the module's zero-dependency rule.
// The loader resolves intra-module imports from its own cache and
// delegates standard-library imports to the source importer, so the
// whole module is checked from source without invoking the build system.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("ecstore/internal/core").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files holds the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages on demand. It is not
// safe for concurrent use; the linter runs single-threaded.
type Loader struct {
	Fset *token.FileSet

	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod. root may be any directory inside the module.
func NewLoader(root string) (*Loader, error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModulePath returns the module's import path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the module's root directory.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// findModule walks up from dir to the first go.mod and reads its module
// path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// LoadAll loads every package in the module, skipping testdata, hidden
// and vendor directories. Packages are returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs...)
}

// LoadDirs loads the named directories (absolute or module-relative) and
// everything they import from the module, returning only the named
// packages sorted by import path.
func (l *Loader) LoadDirs(dirs ...string) ([]*Package, error) {
	var out []*Package
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.modRoot, dir)
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// knownOS and knownArch mirror the values go/build recognises in file
// name suffixes. Only names in these sets act as implicit constraints —
// kernel_amd64.go is amd64-only, but pool.go's "pool" is not a tag.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// buildTagSatisfied evaluates one build tag against the host platform,
// the only configuration the linter checks (it type-checks the package
// as the local toolchain would build it).
func buildTagSatisfied(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc":
		return true
	case tag == "unix":
		return runtime.GOOS != "windows" && runtime.GOOS != "plan9" &&
			runtime.GOOS != "js" && runtime.GOOS != "wasip1"
	default:
		return false
	}
}

// fileNameIncluded applies go/build's file name constraints: a base name
// ending in _GOOS, _GOARCH or _GOOS_GOARCH only builds on that platform.
// Without this (and buildConstraintsSatisfied) the loader would merge
// mutually exclusive files — e.g. the gf256 package's kernel_amd64.go
// and kernel_noasm.go — into one package and fail on the duplicate
// symbols.
func fileNameIncluded(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	// Trailing _test was already filtered; examine the last two segments.
	if n := len(parts); n >= 2 && knownArch[parts[n-1]] {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		if n >= 3 && knownOS[parts[n-2]] && parts[n-2] != runtime.GOOS {
			return false
		}
		return true
	} else if n >= 2 && knownOS[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// buildConstraintsSatisfied evaluates a parsed file's //go:build line
// (if any) against the host platform.
func buildConstraintsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // only the header comments can hold constraints
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: let the build system complain
			}
			return expr.Eval(buildTagSatisfied)
		}
	}
	return true
}

// importPathFor maps an absolute directory to its module import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

// load parses and type-checks one package, recursively loading module
// dependencies first so the type checker can resolve them.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !fileNameIncluded(name) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildConstraintsSatisfied(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Load module-internal imports first (depth first, cycle checked).
	for _, f := range files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == l.modPath || strings.HasPrefix(ip, l.modPath+"/") {
				sub := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(ip, l.modPath), "/")))
				if _, err := l.load(ip, sub); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter resolves imports during type checking: module packages
// come from the loader's cache, everything else from the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if pkg, ok := l.pkgs[path]; ok {
			return pkg.Types, nil
		}
		sub := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		pkg, err := l.load(path, sub)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
