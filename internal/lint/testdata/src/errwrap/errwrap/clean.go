package errwrap

import (
	"errors"
	"fmt"
)

// wrapW keeps the chain inspectable.
func wrapW(err error) error {
	return fmt.Errorf("refresh: %w", err)
}

// isStaleIs matches through wraps.
func isStaleIs(err error) bool {
	return errors.Is(err, ErrStale)
}

// isNil compares against nil, not a sentinel.
func isNil(err error) bool {
	return err == nil
}

// describe formats a non-error with %v: fine.
func describe(n int) error {
	return fmt.Errorf("bad count %v", n)
}

// legacyFormat keeps a wire-visible rendering and says why.
func legacyFormat(err error) error {
	//lint:ignore errwrap fixture: message is wire format, chain intentionally dropped
	return fmt.Errorf("refresh: %v", err)
}
