// Package errwrap is an errwrap golden-file fixture: error wrapping and
// sentinel comparison idioms.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrStale is the fixture's sentinel.
var ErrStale = errors.New("stale")

// wrapV formats the error with %v, cutting the chain.
func wrapV(err error) error {
	return fmt.Errorf("refresh: %v", err) // want "loses the chain: use %w"
}

// wrapS does the same with %s.
func wrapS(err error) error {
	return fmt.Errorf("refresh: %s", err) // want "loses the chain: use %w"
}

// isStale compares a sentinel with ==.
func isStale(err error) bool {
	return err == ErrStale // want "use errors.Is"
}

// notStale compares with !=, which breaks the same way.
func notStale(err error) bool {
	return err != ErrStale // want "use errors.Is"
}
