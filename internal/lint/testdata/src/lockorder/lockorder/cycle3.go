package lockorder

import "sync"

// X, Y, Z form a three-lock cycle stitched through a call: xy takes X
// then Y directly; yz takes Y and then calls lockZ, which acquires Z
// (the edge is recorded with its call chain); zx takes Z then X. The
// report carries the full acquisition path with one file:line per edge.
type X struct {
	mu sync.Mutex
	n  int
}

type Y struct {
	mu sync.Mutex
	n  int
}

type Z struct {
	mu sync.Mutex
	n  int
}

func xy(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want "lock-order cycle lockorder.X.mu -> lockorder.Y.mu -> lockorder.Z.mu -> lockorder.X.mu" "via lockorder.lockZ"
	defer y.mu.Unlock()
	x.n++
	y.n++
}

func yz(y *Y, z *Z) {
	y.mu.Lock()
	defer y.mu.Unlock()
	lockZ(z)
	y.n++
}

func lockZ(z *Z) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.n++
}

func zx(z *Z, x *X) {
	z.mu.Lock()
	defer z.mu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
	z.n++
	x.n++
}
