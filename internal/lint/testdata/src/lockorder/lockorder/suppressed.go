package lockorder

import "sync"

// D and E cycle like A and B, but the first edge carries a suppression
// with its ordering argument, so nothing is reported.
type D struct {
	mu sync.Mutex
	n  int
}

type E struct {
	mu sync.Mutex
	n  int
}

func de(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	//lint:ignore lockorder fixture: instances are ordered by address before acquisition
	e.mu.Lock()
	defer e.mu.Unlock()
	d.n++
	e.n++
}

func ed(d *D, e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
	e.n++
}
