package lockorder

import "sync"

// P and Q are always acquired in the same order (P before Q), including
// through a helper: a consistent order is acyclic and reports nothing.
type P struct {
	mu sync.Mutex
	n  int
}

type Q struct {
	mu sync.Mutex
	n  int
}

func pq(p *P, q *Q) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	p.n++
	q.n++
}

func pViaHelper(p *P, q *Q) {
	p.mu.Lock()
	defer p.mu.Unlock()
	lockQ(q)
	p.n++
}

func lockQ(q *Q) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
}

// qAlone acquires Q with no other lock held: order edges need a holder.
func qAlone(q *Q) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
}

// released drops P before taking Q in the opposite caller, so there is
// no Q -> P edge: an Unlock earlier in source order releases the lock
// for everything after it.
func released(p *P, q *Q) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}
