// Package lockorder is a lockorder golden-file fixture: lock-order
// cycles the module-wide acquisition graph must report as potential
// deadlocks.
package lockorder

import "sync"

// A and B form a two-lock cycle: ab acquires A then B, ba acquires B
// then A.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock-order cycle lockorder.A.mu -> lockorder.B.mu -> lockorder.A.mu"
	defer b.mu.Unlock()
	a.n++
	b.n++
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	b.n++
}

// N is acquired nested with itself: a self-edge in the graph, a
// deadlock the moment both goroutines pick opposite instances.
type N struct {
	mu sync.Mutex
	n  int
}

func transfer(from, to *N) {
	from.mu.Lock()
	defer from.mu.Unlock()
	to.mu.Lock() // want "N.mu acquired while another lockorder.N.mu is already held"
	defer to.mu.Unlock()
	to.n += from.n
	from.n = 0
}
