//go:build race

package buildtag

// spin is the race-build variant of norace.go's spin: the same symbol,
// the same violation, behind the opposite constraint.
func spin(q *[]int) {
	go func() {
		for {
			*q = (*q)[:0]
		}
	}()
}
