//go:build !race

// Package buildtag is a loader fixture: race.go and norace.go define
// the same symbol under mutually exclusive build constraints. Exactly
// one variant may load — otherwise the type check fails on a duplicate
// symbol, and a violation present in both files would double-report.
package buildtag

func spin(q *[]int) {
	go func() {
		for {
			*q = (*q)[:0]
		}
	}()
}
