package poolbalance

// warmup deliberately keeps a pooled value out of circulation and
// documents why.
func warmup() {
	//lint:ignore poolbalance fixture: warm buffer deliberately left to the GC
	v := pool.Get().(*buf)
	v.b = nil
}
