package poolbalance

import "errors"

// deferred covers every return with one defer.
func deferred(fail bool) error {
	v := pool.Get().(*buf)
	defer pool.Put(v)
	if fail {
		return errFixture
	}
	return nil
}

// branches release on each path separately.
func branches(fail bool) {
	v := getBuf()
	if fail {
		putBuf(v)
		return
	}
	putBuf(v)
}

// errGuarded follows the error-return idiom: encode returns nil on
// error, so the guarded return carries no pooled value.
func errGuarded(data []byte) error {
	v, err := encode(data)
	if err != nil {
		return err
	}
	putBuf(v)
	return nil
}

// encode is a source with an error result: on failure it returns no
// pooled value, on success ownership moves to the caller.
func encode(data []byte) (*buf, error) {
	if len(data) == 0 {
		return nil, errors.New("empty")
	}
	v := pool.Get().(*buf)
	v.b = append(v.b[:0], data...)
	return v, nil
}

// nilGuarded allocates on pool miss, the production getBuf idiom:
// inside the guard the value is returned, past it there is nothing
// pooled to release.
func nilGuarded() *buf {
	if v := pool.Get(); v != nil {
		return v.(*buf)
	}
	return new(buf)
}

// stored hands the value to a struct that owns it from then on.
type owner struct {
	v *buf
}

func (o *owner) fill() {
	o.v = getBuf()
}

// loop balances within each iteration.
func loop(n int) {
	for i := 0; i < n; i++ {
		v := getBuf()
		v.b = v.b[:0]
		putBuf(v)
	}
}

// escapes passes the value to an unknown callee, which owns it after.
func escapes() {
	v := getBuf()
	sink(v)
}

func sink(v *buf) { sunk = v }

var sunk *buf
