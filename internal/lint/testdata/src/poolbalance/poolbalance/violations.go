// Package poolbalance is a poolbalance golden-file fixture: pooled
// values that fail to reach a matching Put/Release on every path.
package poolbalance

import "sync"

type buf struct {
	b []byte
}

var pool = sync.Pool{New: func() any { return new(buf) }}

// getBuf and putBuf are inferred as a pool source and a releaser, the
// way the production helpers (erasure.getBuf, putBuf) are.
func getBuf() *buf {
	return pool.Get().(*buf)
}

func putBuf(b *buf) {
	pool.Put(b)
}

// earlyReturn leaks the pooled value on the error path.
func earlyReturn(fail bool) error {
	v := pool.Get().(*buf)
	if fail {
		return errFixture // want "return without releasing pooled value v"
	}
	pool.Put(v)
	return nil
}

// earlyReturnHelper leaks a helper-sourced value the same way: the
// source and releaser are inferred through the call graph.
func earlyReturnHelper(fail bool) error {
	v := getBuf()
	if fail {
		return errFixture // want "return without releasing pooled value v obtained from poolbalance.getBuf"
	}
	putBuf(v)
	return nil
}

// neverReleased forgets the Put entirely.
func neverReleased() {
	v := pool.Get().(*buf) // want "pooled value v obtained from pool.Get is never released"
	v.b = v.b[:0]
}

// doublePut releases the same value twice: the second Put hands the
// pool two references to one buffer.
func doublePut() {
	v := pool.Get().(*buf)
	pool.Put(v)
	pool.Put(v) // want "pooled value v released twice"
}

// doublePutDeferred double-releases through a defer that already
// covers the value.
func doublePutDeferred() {
	v := getBuf()
	defer putBuf(v)
	putBuf(v) // want "pooled value v released twice"
}

// dropped discards the pooled value at the call site.
func dropped() {
	pool.Get() // want "result of pool source pool.Get is discarded"
}

type fixtureError string

func (e fixtureError) Error() string { return string(e) }

const errFixture = fixtureError("fixture")
