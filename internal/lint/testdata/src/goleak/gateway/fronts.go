// Package gateway is a goleak golden-file fixture in the access tier's
// shape: long-lived front-end serving loops must either carry a
// cancellation path or a deliberate process-lifetime suppression, and
// per-request helpers must be bounded by their done channels.
package gateway

import "context"

// serveFront blocks a goroutine on an accept loop nothing can stop.
func serveFront(accept chan struct{}) {
	go func() { // want "no cancellation path"
		for range accept {
		}
	}()
}

// serveFrontForLifetime is the daemon idiom: the front serves until the
// process exits, and says so.
func serveFrontForLifetime(accept chan struct{}) {
	//lint:ignore goleak fixture: front serves for the process lifetime by design
	go func() {
		for range accept {
		}
	}()
}

// proxyOne is the sanctioned per-request shape: the goroutine itself
// selects on ctx.Done, so an abandoned admission wait cannot strand it.
func proxyOne(ctx context.Context, work func() error) error {
	done := make(chan error, 1)
	go func() {
		select {
		case done <- work():
		case <-ctx.Done():
		}
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}
