package goleak

import (
	"context"
	"sync"
)

// watch is bounded by ctx.Done.
func watch(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// tracked is WaitGroup-tracked.
func tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// stopper is bounded by a conventional shutdown channel.
func stopper(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

// accepter is bounded some other way and says so.
func accepter(work chan int) {
	//lint:ignore goleak fixture: terminates when work is closed by the producer
	go func() {
		for range work {
		}
	}()
}
