package goleak

import (
	"context"
	"sync"
)

// watch is bounded by ctx.Done.
func watch(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// tracked is WaitGroup-tracked.
func tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// stopper is bounded by a conventional shutdown channel.
func stopper(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

// pollNamed is bounded by polling ctx.Err on each step of a finite
// walk; launching it by name is fine.
func pollNamed(ctx context.Context, refs []int) {
	for range refs {
		if ctx.Err() != nil {
			return
		}
	}
}

func launchPoller(ctx context.Context, refs []int) {
	go pollNamed(ctx, refs)
}

// closerNamed signals its own exit by closing a conventional done
// channel the owner waits on (the rpc read-loop pattern).
func closerNamed(done chan struct{}, work chan int) {
	defer close(done)
	for range work {
	}
}

func launchCloser(work chan int) {
	done := make(chan struct{})
	go closerNamed(done, work)
	<-done
}

// accepter is bounded some other way and says so.
func accepter(work chan int) {
	//lint:ignore goleak fixture: terminates when work is closed by the producer
	go func() {
		for range work {
		}
	}()
}
