// Package goleak is a goleak golden-file fixture: goroutines with and
// without a bounded lifetime.
package goleak

// spinForever launches a goroutine nothing can stop.
func spinForever(work chan int) {
	go func() { // want "no cancellation path"
		for v := range work {
			_ = v
		}
	}()
}

// tickForever polls with no way out.
func tickForever(q *[]int) {
	go func() { // want "no cancellation path"
		for {
			*q = (*q)[:0]
		}
	}()
}

// spinNamed loops forever; it only exists to be launched by name.
func spinNamed(q *[]int) {
	for {
		*q = (*q)[:0]
	}
}

// launchNamed starts a named module function whose body has no
// cancellation path: the check follows the static call one level deep.
func launchNamed(q *[]int) {
	go spinNamed(q) // want "goroutine goleak.spinNamed has no cancellation path"
}
