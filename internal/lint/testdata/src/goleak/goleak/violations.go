// Package goleak is a goleak golden-file fixture: goroutines with and
// without a bounded lifetime.
package goleak

// spinForever launches a goroutine nothing can stop.
func spinForever(work chan int) {
	go func() { // want "no cancellation path"
		for v := range work {
			_ = v
		}
	}()
}

// tickForever polls with no way out.
func tickForever(q *[]int) {
	go func() { // want "no cancellation path"
		for {
			*q = (*q)[:0]
		}
	}()
}
