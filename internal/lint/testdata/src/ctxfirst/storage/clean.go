package storage

import (
	"context"
	"time"
)

// GetChunk is the sanctioned shape: context first, honoured while
// blocking.
func GetChunk(ctx context.Context, id string) error {
	_ = id
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Millisecond):
		return nil
	}
}

// Close is a lifecycle method: blocking without a caller context is
// fine, it is bounded by the shutdown protocol.
func Close() error {
	time.Sleep(time.Millisecond)
	return nil
}

// fetchLocal is unexported; the blocking rule covers only the exported
// API surface.
func fetchLocal() {
	time.Sleep(time.Millisecond)
}
