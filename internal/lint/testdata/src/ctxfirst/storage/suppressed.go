package storage

import "context"

// Root returns the component's lifecycle root.
//
//lint:ignore ctxfirst fixture: declaration-scoped suppression
func Root() context.Context {
	return context.Background()
}

// root2 exercises the line-scoped form of the directive.
func root2() context.Context {
	//lint:ignore ctxfirst fixture: line-scoped suppression
	return context.Background()
}
