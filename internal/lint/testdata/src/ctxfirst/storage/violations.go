// Package storage is a ctxfirst golden-file fixture. Its directory's
// final path segment matches the real storage package, so the I/O rules
// apply to it the same way.
package storage

import (
	"context"
	"time"
)

// PutChunk takes its context second.
func PutChunk(id string, ctx context.Context) error { // want "context must be the first parameter"
	_ = id
	_ = ctx
	return nil
}

// Fetch blocks without offering the caller a context.
func Fetch(id string) error { // want "performs blocking I/O"
	time.Sleep(time.Millisecond)
	_ = id
	return nil
}

// Detach manufactures an ambient context in library code.
func Detach() context.Context {
	return context.Background() // want "context.Background in library code"
}
