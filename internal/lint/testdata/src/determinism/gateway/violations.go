package gateway

import (
	"math/rand"
	"time"
)

// bucketAge reads the wall clock directly, so a test cannot pin refill
// arithmetic and the simulator cannot replay an admission trace.
func bucketAge(last time.Time) time.Duration {
	return time.Since(last) // want "time.Since in a deterministic package"
}

// jitteredRetryAfter draws from the process-wide source, making shed
// responses irreproducible across runs.
func jitteredRetryAfter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Second))) // want "global rand.Int63n uses the process-wide source"
}

// shedTable leaks map iteration order into the rendered shed report, so
// identical overloads print different tables every run.
func shedTable(waiting map[string]int) []string {
	var out []string
	for name, n := range waiting { // want "map iteration order reaches output"
		out = append(out, render(name, n))
	}
	return out
}

func render(name string, n int) string { return name + string(rune('0'+n)) }
