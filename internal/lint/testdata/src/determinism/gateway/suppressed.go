package gateway

import "time"

// defaultClock is suppressed: it only seeds Config.Clock's default for
// the production daemon; tests and the simulator always inject their
// own clock.
//
//lint:ignore determinism fixture: production default, tests inject a fake clock
func defaultClock() time.Time {
	return time.Now()
}
