// Package gateway is a determinism golden-file fixture. Its directory's
// final path segment matches the real access-tier gateway, so the
// reproducibility rules apply the same way: rate-limit refills and
// admission decisions must be drivable by an injected clock, never the
// wall clock, so tests and the simulator replay identically.
package gateway

import (
	"sort"
	"time"
)

// contract mirrors a tenant's QoS settings.
type contract struct {
	rate   float64
	tokens float64
	last   time.Time
}

// limiter is a miniature gateway: tenant buckets plus an injected clock.
type limiter struct {
	tenants map[string]*contract
	clock   func() time.Time
}

// refill advances one bucket to the injected now: the sanctioned idiom
// for token arithmetic.
func (l *limiter) refill(c *contract) {
	now := l.clock()
	c.tokens += c.rate * now.Sub(c.last).Seconds()
	c.last = now
}

// names iterates tenants in sorted order before output, the sanctioned
// idiom for rendering per-tenant state.
func (l *limiter) names() []string {
	keys := make([]string, 0, len(l.tenants))
	for k := range l.tenants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
